// kvstore: a persistent key-value store on secure NVM — the paper's
// motivating scenario ("an in-memory database system, where a crash
// occurs right after a transaction is committed... the whole Merkle
// Tree must be recovered first to be able to verify integrity before
// completing any new transactions or enquiries", §1).
//
// The store maps fixed-size keys to values in a hash table laid out
// directly on the protected memory: each 64-byte block holds one
// record, so every Put is an atomic, encrypted, integrity-protected,
// persistent transaction. After a crash, the store is usable again the
// moment Anubis recovery finishes — milliseconds of metadata repair
// instead of hours of Merkle tree reconstruction.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"anubis"
)

const (
	keyBytes   = 20
	valueBytes = 32
	// record layout: [1B state][1B keyLen][1B valLen][1B pad]
	//                [20B key][32B value][8B sequence] = 64B
	stateEmpty = 0
	stateLive  = 1
	stateDead  = 2
)

// KV is a linear-probing hash table over a secure NVM System.
type KV struct {
	mem     *anubis.System
	buckets uint64
	seq     uint64
}

// OpenKV creates (or re-opens after recovery) a store using every block
// of the system as a bucket.
func OpenKV(mem *anubis.System) *KV {
	return &KV{mem: mem, buckets: mem.NumBlocks()}
}

func (kv *KV) hash(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h % kv.buckets
}

func record(state byte, key, val []byte, seq uint64) []byte {
	rec := make([]byte, anubis.BlockSize)
	rec[0] = state
	rec[1] = byte(len(key))
	rec[2] = byte(len(val))
	copy(rec[4:4+keyBytes], key)
	copy(rec[4+keyBytes:4+keyBytes+valueBytes], val)
	binary.LittleEndian.PutUint64(rec[4+keyBytes+valueBytes:], seq)
	return rec
}

// ErrFull reports an out-of-space store.
var ErrFull = errors.New("kvstore: table full")

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kvstore: key not found")

// probe finds the bucket holding key, or the first free bucket.
func (kv *KV) probe(key []byte, stopAtFree bool) (uint64, []byte, error) {
	h := kv.hash(key)
	for i := uint64(0); i < kv.buckets; i++ {
		b := (h + i) % kv.buckets
		rec, err := kv.mem.ReadBlock(b)
		if err != nil {
			return 0, nil, err
		}
		switch rec[0] {
		case stateEmpty:
			if stopAtFree {
				return b, rec, nil
			}
			return 0, nil, ErrNotFound
		case stateLive:
			kl := int(rec[1])
			if kl == len(key) && bytes.Equal(rec[4:4+kl], key) {
				return b, rec, nil
			}
		case stateDead:
			if stopAtFree {
				return b, rec, nil
			}
		}
	}
	return 0, nil, ErrFull
}

// Put inserts or updates a key. Each Put is one atomic block write:
// data, encryption counter, Merkle path, and shadow-table updates
// commit together through the controller's persistent registers.
func (kv *KV) Put(key, val []byte) error {
	if len(key) > keyBytes || len(val) > valueBytes {
		return fmt.Errorf("kvstore: key/value too large")
	}
	// Prefer updating an existing live record.
	b, _, err := kv.probe(key, false)
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			return err
		}
		b, _, err = kv.probe(key, true)
		if err != nil {
			return err
		}
	}
	kv.seq++
	return kv.mem.WriteBlock(b, record(stateLive, key, val, kv.seq))
}

// Get returns the value for a key.
func (kv *KV) Get(key []byte) ([]byte, error) {
	_, rec, err := kv.probe(key, false)
	if err != nil {
		return nil, err
	}
	return rec[4+keyBytes : 4+keyBytes+int(rec[2])], nil
}

// Delete removes a key (tombstone).
func (kv *KV) Delete(key []byte) error {
	b, rec, err := kv.probe(key, false)
	if err != nil {
		return err
	}
	rec[0] = stateDead
	return kv.mem.WriteBlock(b, rec)
}

func main() {
	mem, err := anubis.New(anubis.Config{
		Scheme:      anubis.ASIT, // SGX-style tree: recoverable only with Anubis
		MemoryBytes: 8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	kv := OpenKV(mem)

	fmt.Println("committing 2000 transactions...")
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("user:%05d", i))
		val := []byte(fmt.Sprintf("balance=%08d", i*37))
		if err := kv.Put(key, val); err != nil {
			log.Fatal(err)
		}
	}
	// Update and delete some entries so the store has real churn.
	for i := 0; i < 500; i += 5 {
		if err := kv.Put([]byte(fmt.Sprintf("user:%05d", i)), []byte("balance=updated!")); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i < 200; i += 7 {
		if err := kv.Delete([]byte(fmt.Sprintf("user:%05d", i))); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("power failure right after the last commit!")
	mem.Crash()

	rep, err := mem.Recover()
	if err != nil {
		log.Fatal("recovery failed: ", err)
	}
	fmt.Printf("store recovered in %s (modeled): %d shadow entries, %d nodes restored\n",
		anubis.FormatDuration(rep.ModeledNS), rep.EntriesScanned, rep.NodesRebuilt)

	// Every committed transaction must be intact and verified.
	kv = OpenKV(mem)
	checked, missing := 0, 0
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("user:%05d", i))
		val, err := kv.Get(key)
		deleted := i >= 1 && i < 200 && (i-1)%7 == 0
		switch {
		case deleted:
			if !errors.Is(err, ErrNotFound) {
				log.Fatalf("deleted key %s resurfaced: %v", key, err)
			}
		case err != nil:
			missing++
		default:
			want := fmt.Sprintf("balance=%08d", i*37)
			if i < 500 && i%5 == 0 {
				want = "balance=updated!"
			}
			if string(val[:len(want)]) != want {
				log.Fatalf("key %s corrupted: %q", key, val)
			}
			checked++
		}
	}
	if missing > 0 {
		log.Fatalf("%d committed transactions lost", missing)
	}
	fmt.Printf("all %d surviving records verified after crash recovery ✓\n", checked)
}
