// kvstore: a persistent key-value store on secure NVM — the paper's
// motivating scenario ("an in-memory database system, where a crash
// occurs right after a transaction is committed... the whole Merkle
// Tree must be recovered first to be able to verify integrity before
// completing any new transactions or enquiries", §1).
//
// The store maps fixed-size keys to values in a hash table laid out
// directly on the protected memory: each 64-byte block holds one
// record, so every Put is an atomic, encrypted, integrity-protected,
// persistent transaction. After a crash, the store is usable again the
// moment Anubis recovery finishes — milliseconds of metadata repair
// instead of hours of Merkle tree reconstruction.
//
// Two modes share the same store and workload:
//
//	go run ./examples/kvstore
//	    local mode — the store runs directly on an in-process System
//	    and the crash is a real power-failure simulation.
//
//	go run ./examples/kvstore -addr 127.0.0.1:8080 -tenant alice
//	    HTTP mode — every block read/write is a request to a running
//	    anubis-serve tenant. 429 back-pressure responses are retried
//	    with a bounded backoff (and counted); the crash and recovery
//	    are triggered through the service API while other tenants
//	    keep serving. This doubles as the serve smoke-test client.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"anubis"
)

const (
	keyBytes   = 20
	valueBytes = 32
	// record layout: [1B state][1B keyLen][1B valLen][1B pad]
	//                [20B key][32B value][8B sequence] = 64B
	stateEmpty = 0
	stateLive  = 1
	stateDead  = 2
)

// Mem is the block device the store runs on: the in-process
// anubis.System satisfies it directly, and httpMem adapts a remote
// anubis-serve tenant to it.
type Mem interface {
	ReadBlock(block uint64) ([]byte, error)
	WriteBlock(block uint64, data []byte) error
	NumBlocks() uint64
}

// KV is a linear-probing hash table over a secure NVM block device.
type KV struct {
	mem     Mem
	buckets uint64
	seq     uint64
}

// OpenKV creates (or re-opens after recovery) a store using every block
// of the device as a bucket.
func OpenKV(mem Mem) *KV {
	return &KV{mem: mem, buckets: mem.NumBlocks()}
}

func (kv *KV) hash(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h % kv.buckets
}

func record(state byte, key, val []byte, seq uint64) []byte {
	// Callers validate sizes; truncating here would alias distinct keys
	// (a 276-byte key stores keyLen byte(276)==20 and its first 20
	// bytes — indistinguishable from a legitimate 20-byte key).
	if len(key) > keyBytes || len(val) > valueBytes {
		panic("kvstore: record overflow")
	}
	rec := make([]byte, anubis.BlockSize)
	rec[0] = state
	rec[1] = byte(len(key))
	rec[2] = byte(len(val))
	copy(rec[4:4+keyBytes], key)
	copy(rec[4+keyBytes:4+keyBytes+valueBytes], val)
	binary.LittleEndian.PutUint64(rec[4+keyBytes+valueBytes:], seq)
	return rec
}

// ErrFull reports an out-of-space store.
var ErrFull = errors.New("kvstore: table full")

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrTooLarge reports a key over 20 bytes or a value over 32 bytes —
// the record format cannot hold them, and silently truncating would
// make unrelated keys collide.
var ErrTooLarge = errors.New("kvstore: key or value exceeds record capacity")

// probe finds the bucket holding key, or the first free bucket.
func (kv *KV) probe(key []byte, stopAtFree bool) (uint64, []byte, error) {
	h := kv.hash(key)
	for i := uint64(0); i < kv.buckets; i++ {
		b := (h + i) % kv.buckets
		rec, err := kv.mem.ReadBlock(b)
		if err != nil {
			return 0, nil, err
		}
		switch rec[0] {
		case stateEmpty:
			if stopAtFree {
				return b, rec, nil
			}
			return 0, nil, ErrNotFound
		case stateLive:
			kl := int(rec[1])
			if kl == len(key) && bytes.Equal(rec[4:4+kl], key) {
				return b, rec, nil
			}
		case stateDead:
			if stopAtFree {
				return b, rec, nil
			}
		}
	}
	return 0, nil, ErrFull
}

// Put inserts or updates a key. Each Put is one atomic block write:
// data, encryption counter, Merkle path, and shadow-table updates
// commit together through the controller's persistent registers.
func (kv *KV) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > keyBytes || len(val) > valueBytes {
		return ErrTooLarge
	}
	// Prefer updating an existing live record.
	b, _, err := kv.probe(key, false)
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			return err
		}
		b, _, err = kv.probe(key, true)
		if err != nil {
			return err
		}
	}
	kv.seq++
	return kv.mem.WriteBlock(b, record(stateLive, key, val, kv.seq))
}

// Get returns the value for a key.
func (kv *KV) Get(key []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > keyBytes {
		return nil, ErrTooLarge
	}
	_, rec, err := kv.probe(key, false)
	if err != nil {
		return nil, err
	}
	return rec[4+keyBytes : 4+keyBytes+int(rec[2])], nil
}

// Delete removes a key (tombstone).
func (kv *KV) Delete(key []byte) error {
	if len(key) == 0 || len(key) > keyBytes {
		return ErrTooLarge
	}
	b, rec, err := kv.probe(key, false)
	if err != nil {
		return err
	}
	rec[0] = stateDead
	return kv.mem.WriteBlock(b, rec)
}

// --- HTTP block device (anubis-serve client) -------------------------------

// httpMem adapts one anubis-serve tenant to the Mem interface. Every
// 429 (admission-control shed) is retried with a short bounded backoff
// and counted; other non-2xx responses are errors.
type httpMem struct {
	base   string // e.g. "http://127.0.0.1:8080"
	tenant string
	c      *http.Client
	blocks uint64
	sheds  int
}

// tenantInfo mirrors the service's tenant-info JSON.
type tenantInfo struct {
	Scheme      string `json:"scheme"`
	MemoryBytes uint64 `json:"memory_bytes"`
	Blocks      uint64 `json:"blocks"`
}

// openHTTPMem creates (or reattaches to) the tenant and learns its
// block count from the service.
func openHTTPMem(addr, tenant, scheme string, memBytes uint64) (*httpMem, error) {
	m := &httpMem{
		base:   "http://" + addr,
		tenant: tenant,
		c:      &http.Client{Timeout: 30 * time.Second},
	}
	cfg, _ := json.Marshal(map[string]any{"scheme": scheme, "memory_bytes": memBytes})
	resp, err := m.retrying(func() (*http.Request, error) {
		return http.NewRequest("PUT", m.url("/t/"+tenant), bytes.NewReader(cfg))
	})
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
	case http.StatusConflict: // already exists (e.g. restarted client) — use it
	default:
		return nil, fmt.Errorf("kvstore: create tenant %s: %s (%s)", tenant, resp.Status, body)
	}
	var info tenantInfo
	if err := m.getJSON("/t/"+tenant, &info); err != nil {
		return nil, err
	}
	m.blocks = info.Blocks
	return m, nil
}

func (m *httpMem) url(path string) string { return m.base + path }

// retrying issues the request, retrying 429 responses with a short
// bounded backoff. The factory runs once per attempt so the body
// reader is fresh each time.
func (m *httpMem) retrying(mk func() (*http.Request, error)) (*http.Response, error) {
	const maxAttempts = 50
	for attempt := 1; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := m.c.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		m.sheds++
		if attempt >= maxAttempts {
			return nil, fmt.Errorf("kvstore: tenant %s still shedding after %d attempts", m.tenant, attempt)
		}
		// The Retry-After header carries the modeled drain time; a short
		// real-world pause is plenty (virtual queues drain in virtual time).
		time.Sleep(10 * time.Millisecond)
	}
}

func (m *httpMem) getJSON(path string, v any) error {
	resp, err := m.retrying(func() (*http.Request, error) {
		return http.NewRequest("GET", m.url(path), nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("kvstore: GET %s: %s (%s)", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (m *httpMem) ReadBlock(block uint64) ([]byte, error) {
	resp, err := m.retrying(func() (*http.Request, error) {
		return http.NewRequest("GET", m.url(fmt.Sprintf("/t/%s/block/%d", m.tenant, block)), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("kvstore: read block %d: %s (%s)", block, resp.Status, body)
	}
	return body, nil
}

func (m *httpMem) WriteBlock(block uint64, data []byte) error {
	resp, err := m.retrying(func() (*http.Request, error) {
		return http.NewRequest("PUT", m.url(fmt.Sprintf("/t/%s/block/%d", m.tenant, block)), bytes.NewReader(data))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("kvstore: write block %d: %s (%s)", block, resp.Status, body)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func (m *httpMem) NumBlocks() uint64 { return m.blocks }

// post hits a tenant action endpoint (crash, recover, flush, audit).
func (m *httpMem) post(action string) (string, error) {
	resp, err := m.retrying(func() (*http.Request, error) {
		return http.NewRequest("POST", m.url("/t/"+m.tenant+"/"+action), nil)
	})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("kvstore: POST %s: %s (%s)", action, resp.Status, body)
	}
	return string(bytes.TrimSpace(body)), nil
}

// --- workload --------------------------------------------------------------

// runWorkload commits n transactions with churn: updates to the first
// quarter (every 5th) and tombstones in keys 1..n/10 (every 7th).
func runWorkload(kv *KV, n int) error {
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("user:%05d", i))
		val := []byte(fmt.Sprintf("balance=%08d", i*37))
		if err := kv.Put(key, val); err != nil {
			return fmt.Errorf("put %s: %w", key, err)
		}
	}
	for i := 0; i < n/4; i += 5 {
		if err := kv.Put([]byte(fmt.Sprintf("user:%05d", i)), []byte("balance=updated!")); err != nil {
			return err
		}
	}
	for i := 1; i < n/10; i += 7 {
		if err := kv.Delete([]byte(fmt.Sprintf("user:%05d", i))); err != nil {
			return err
		}
	}
	return nil
}

// verifyWorkload checks every committed transaction against what
// runWorkload(n) wrote. It returns the number of verified live records.
func verifyWorkload(kv *KV, n int) (int, error) {
	checked := 0
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("user:%05d", i))
		val, err := kv.Get(key)
		deleted := i >= 1 && i < n/10 && (i-1)%7 == 0
		switch {
		case deleted:
			if !errors.Is(err, ErrNotFound) {
				return checked, fmt.Errorf("deleted key %s resurfaced: %v", key, err)
			}
		case err != nil:
			return checked, fmt.Errorf("committed key %s lost: %w", key, err)
		default:
			want := fmt.Sprintf("balance=%08d", i*37)
			if i < n/4 && i%5 == 0 {
				want = "balance=updated!"
			}
			if len(val) < len(want) || string(val[:len(want)]) != want {
				return checked, fmt.Errorf("key %s corrupted: %q", key, val)
			}
			checked++
		}
	}
	return checked, nil
}

func main() {
	var (
		addr   = flag.String("addr", "", "anubis-serve address; empty runs the in-process store")
		tenant = flag.String("tenant", "kv", "tenant id (HTTP mode)")
		n      = flag.Int("n", 2000, "transactions to commit")
		scheme = flag.String("scheme", "asit", "persistence scheme")
		mem    = flag.Uint64("mem", 8<<20, "protected capacity in bytes")
		crash  = flag.Bool("crash", true, "power-fail after the workload and recover")
	)
	flag.Parse()
	if *addr == "" {
		runLocal(*scheme, *mem, *n, *crash)
		return
	}
	runHTTP(*addr, *tenant, *scheme, *mem, *n, *crash)
}

func runLocal(scheme string, memBytes uint64, n int, crash bool) {
	sc, err := parseScheme(scheme)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := anubis.New(anubis.Config{Scheme: sc, MemoryBytes: memBytes})
	if err != nil {
		log.Fatal(err)
	}
	kv := OpenKV(mem)

	fmt.Printf("committing %d transactions...\n", n)
	if err := runWorkload(kv, n); err != nil {
		log.Fatal(err)
	}
	if crash {
		fmt.Println("power failure right after the last commit!")
		mem.Crash()
		rep, err := mem.Recover()
		if err != nil {
			log.Fatal("recovery failed: ", err)
		}
		fmt.Printf("store recovered in %s (modeled): %d shadow entries, %d nodes restored\n",
			anubis.FormatDuration(rep.ModeledNS), rep.EntriesScanned, rep.NodesRebuilt)
		kv = OpenKV(mem) // re-open over the recovered memory
	}
	checked, err := verifyWorkload(kv, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d surviving records verified after crash recovery ✓\n", checked)
}

func runHTTP(addr, tenant, scheme string, memBytes uint64, n int, crash bool) {
	m, err := openHTTPMem(addr, tenant, scheme, memBytes)
	if err != nil {
		log.Fatal(err)
	}
	kv := OpenKV(m)

	fmt.Printf("tenant %s: committing %d transactions over HTTP...\n", tenant, n)
	if err := runWorkload(kv, n); err != nil {
		log.Fatal(err)
	}
	if crash {
		fmt.Printf("tenant %s: power failure via API!\n", tenant)
		if _, err := m.post("crash"); err != nil {
			log.Fatal(err)
		}
		rep, err := m.post("recover")
		if err != nil {
			log.Fatal("recovery failed: ", err)
		}
		fmt.Printf("tenant %s recovered: %s\n", tenant, rep)
		kv = OpenKV(m)
	}
	checked, err := verifyWorkload(kv, n)
	if err != nil {
		log.Fatal(err)
	}
	if audit, err := m.post("audit"); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("tenant %s audit: %s\n", tenant, audit)
	}
	fmt.Printf("tenant %s: all %d surviving records verified (%d sheds absorbed) ✓\n",
		tenant, checked, m.sheds)
}

func parseScheme(name string) (anubis.Scheme, error) {
	for _, s := range []anubis.Scheme{
		anubis.WriteBack, anubis.Strict, anubis.Osiris, anubis.AGITRead,
		anubis.AGITPlus, anubis.ASIT, anubis.Selective, anubis.Triad,
	} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("kvstore: unknown scheme %q", name)
}
