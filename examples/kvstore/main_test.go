package main

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"anubis"
	"anubis/internal/serve"
)

func newKV(t *testing.T) *KV {
	t.Helper()
	mem, err := anubis.New(anubis.Config{Scheme: anubis.ASIT, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return OpenKV(mem)
}

func TestPutGetDeleteRoundtrip(t *testing.T) {
	kv := newKV(t)
	if err := kv.Put([]byte("user:1"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, err := kv.Get([]byte("user:1"))
	if err != nil || string(val[:5]) != "hello" {
		t.Fatalf("get: %v %q", err, val)
	}
	if err := kv.Delete([]byte("user:1")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Get([]byte("user:1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

// TestOversizedKeyRejected is the regression test for the silent
// truncation bug: record() used to copy only the first 20 key bytes
// while storing byte(len(key)) — so a 276-byte key (276 % 256 == 20)
// produced a record byte-identical to a legitimate 20-byte key's, and
// the two keys aliased.
func TestOversizedKeyRejected(t *testing.T) {
	kv := newKV(t)
	short := bytes.Repeat([]byte("k"), keyBytes) // exactly 20 bytes: legal
	long := bytes.Repeat([]byte("k"), 276)       // wraps to keyLen 20, same prefix

	if err := kv.Put(short, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(long, []byte("evil")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("276-byte key: %v, want ErrTooLarge", err)
	}
	if _, err := kv.Get(long); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("get 276-byte key: %v, want ErrTooLarge", err)
	}
	if err := kv.Delete(long); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("delete 276-byte key: %v, want ErrTooLarge", err)
	}
	// The legitimate record is untouched — no aliasing.
	val, err := kv.Get(short)
	if err != nil || string(val[:5]) != "legit" {
		t.Fatalf("20-byte key after rejected alias: %v %q", err, val)
	}
	// 21 bytes is over the line too, not just the wrap-around case.
	if err := kv.Put(bytes.Repeat([]byte("k"), keyBytes+1), []byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("21-byte key: %v, want ErrTooLarge", err)
	}
	if err := kv.Put([]byte(""), []byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key: %v, want ErrTooLarge", err)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	kv := newKV(t)
	if err := kv.Put([]byte("k"), bytes.Repeat([]byte("v"), valueBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("33-byte value: %v, want ErrTooLarge", err)
	}
	if err := kv.Put([]byte("k"), bytes.Repeat([]byte("v"), valueBytes)); err != nil {
		t.Fatalf("32-byte value: %v", err)
	}
}

func TestRecordGuardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("record() accepted an oversized key")
		}
	}()
	record(stateLive, bytes.Repeat([]byte("k"), 276), nil, 1)
}

func TestWorkloadSurvivesCrash(t *testing.T) {
	mem, err := anubis.New(anubis.Config{Scheme: anubis.ASIT, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	kv := OpenKV(mem)
	const n = 400
	if err := runWorkload(kv, n); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	if _, err := mem.Recover(); err != nil {
		t.Fatal(err)
	}
	checked, err := verifyWorkload(OpenKV(mem), n)
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("nothing verified")
	}
}

// TestHTTPMemEndToEnd runs the store's HTTP mode against a real
// in-process serve.Server: workload, API-triggered crash, recovery,
// verification, audit — the smoke-test path without the binaries.
func TestHTTPMemEndToEnd(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Shutdown("")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	m, err := openHTTPMem(u.Host, "e2e", "agit-plus", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBlocks() != (1<<20)/64 {
		t.Fatalf("NumBlocks = %d", m.NumBlocks())
	}
	kv := OpenKV(m)
	const n = 300
	if err := runWorkload(kv, n); err != nil {
		t.Fatal(err)
	}
	if _, err := m.post("crash"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.post("recover"); err != nil {
		t.Fatal(err)
	}
	checked, err := verifyWorkload(OpenKV(m), n)
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("nothing verified over HTTP")
	}
	audit, err := m.post("audit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(audit, `"ok":true`) {
		t.Fatalf("audit = %s", audit)
	}
	// Reattach to the existing tenant (409 path) keeps working.
	m2, err := openHTTPMem(u.Host, "e2e", "agit-plus", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifyWorkload(OpenKV(m2), n); err != nil {
		t.Fatal(err)
	}
	t.Logf("e2e complete: %d records verified, %d+%d sheds absorbed", checked, m.sheds, m2.sheds)
}
