// checkpoint: secure NVM across process restarts. The NVM image —
// ciphertext, counters, tree, shadow tables, and the on-chip persistent
// registers — is serialized to a file and reattached by a later run,
// exactly like a real DIMM surviving a machine power cycle. The second
// attach deliberately happens from a *dirty* image (saved mid-crash),
// so Anubis recovery runs during OpenImage; a final fsck audit then
// proves the whole image verifies against the root.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"

	"anubis"
)

func main() {
	cfg := anubis.Config{
		Scheme:             anubis.AGITPlus,
		MemoryBytes:        8 << 20,
		WearLevelingPeriod: 64, // Start-Gap wear leveling on
		PhaseRecovery:      true,
	}

	// --- process 1: create state, crash, save the dirty image ----------
	sys, err := anubis.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("process 1: writing 5000 records...")
	for i := uint64(0); i < 5000; i++ {
		rec := fmt.Sprintf("checkpointed record %05d", i)
		if err := sys.WriteBlock(i*13%sys.NumBlocks(), []byte(rec)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("process 1: power failure (no flush) — saving the dirty NVM image")
	sys.Crash()
	var image bytes.Buffer
	if err := sys.SaveImage(&image); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process 1: image is %d KB\n", image.Len()/1024)

	// --- process 2: reattach, recover, verify, audit -------------------
	fmt.Println("process 2: attaching to the image...")
	sys2, rep, err := anubis.OpenImage(cfg, &image)
	if err != nil {
		log.Fatal("recovery on attach failed: ", err)
	}
	fmt.Printf("process 2: recovered in %s (modeled): %d shadow entries, %d counters fixed\n",
		anubis.FormatDuration(rep.ModeledNS), rep.EntriesScanned, rep.CountersFixed)

	for i := uint64(0); i < 5000; i++ {
		want := fmt.Sprintf("checkpointed record %05d", i)
		// Later writes to the same block win; recompute the expectation.
		addr := i * 13 % sys2.NumBlocks()
		for j := i + 1; j < 5000; j++ {
			if j*13%sys2.NumBlocks() == addr {
				want = fmt.Sprintf("checkpointed record %05d", j)
			}
		}
		got, err := sys2.ReadBlock(addr)
		if err != nil {
			log.Fatalf("record %d: %v", i, err)
		}
		if string(got[:len(want)]) != want {
			log.Fatalf("record %d corrupted across the checkpoint", i)
		}
	}
	fmt.Println("process 2: all 5000 records verified ✓")

	audit, err := sys2.Audit()
	if err != nil {
		log.Fatal(err)
	}
	if !audit.OK() {
		log.Fatalf("audit found violations: %v", audit.Violations)
	}
	fmt.Printf("process 2: full audit clean (%d data blocks, %d counter blocks, %d tree nodes) ✓\n",
		audit.DataBlocks, audit.CounterBlocks, audit.TreeNodes)
}
