// attacks: demonstrates the threat model (§2.1) — an attacker who can
// scan NVM, tamper with its contents, or replay old values. Every
// attack must be detected by the integrity machinery: data MACs, the
// Merkle tree, and the on-chip root.
//
// Run with:
//
//	go run ./examples/attacks
package main

import (
	"fmt"
	"log"

	"anubis"
)

func expectViolation(name string, err error) {
	if err == nil {
		log.Fatalf("%s: attack went UNDETECTED", name)
	}
	if !anubis.IsIntegrityViolation(err) {
		log.Fatalf("%s: unexpected error class: %v", name, err)
	}
	fmt.Printf("  %-28s detected ✓ (%v)\n", name, err)
}

func freshSystem() *anubis.System {
	sys, err := anubis.New(anubis.Config{Scheme: anubis.Strict, MemoryBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	fmt.Println("Threat model: attacker controls the memory bus and the NVM DIMM.")
	fmt.Println()

	// --- 1. Data tampering -------------------------------------------------
	fmt.Println("Attack 1: flip a bit in stored ciphertext")
	sys := freshSystem()
	if err := sys.WriteBlock(7, []byte("sensitive record")); err != nil {
		log.Fatal(err)
	}
	sys.TamperData(7, 3, 0x10)
	_, err := sys.ReadBlock(7)
	expectViolation("ciphertext bit-flip", err)

	// --- 2. Counter tampering ------------------------------------------------
	fmt.Println("Attack 2: modify an encryption counter in NVM")
	sys = freshSystem()
	sys.WriteBlock(7, []byte("sensitive record"))
	sys.Flush()
	sys.Crash() // cold caches force re-fetch + verification
	sys.Recover()
	sys.TamperCounter(0, 9, 0x01)
	_, err = sys.ReadBlock(7)
	expectViolation("counter tampering", err)

	// --- 3. Counter replay ---------------------------------------------------
	// The classic attack on counter-mode encryption: restore an old
	// counter so an old ciphertext would decrypt "correctly". The Merkle
	// tree root pins the counters' freshness.
	fmt.Println("Attack 3: replay an old counter block")
	sys = freshSystem()
	sys.WriteBlock(0, []byte("version 1"))
	sys.Flush()
	old := sys.SnapshotCounter(0)
	for v := 2; v <= 5; v++ {
		sys.WriteBlock(0, []byte(fmt.Sprintf("version %d", v)))
	}
	sys.Flush()
	sys.Crash()
	sys.Recover()
	sys.ReplayCounter(0, old)
	_, err = sys.ReadBlock(0)
	expectViolation("counter replay", err)

	// --- 4. Shadow table tampering (ASIT) -------------------------------------
	// Anubis's own recovery metadata is a target too: ASIT protects the
	// Shadow Table with SHADOW_TREE_ROOT in an on-chip register.
	fmt.Println("Attack 4: corrupt the ASIT shadow table before recovery")
	asys, err := anubis.New(anubis.Config{Scheme: anubis.ASIT, MemoryBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		asys.WriteBlock(i*8, []byte("tracked state"))
	}
	asys.Flush()                                // counter blocks now in NVM
	asys.WriteBlock(3*8, []byte("newer state")) // re-dirty leaf 3: tracked
	asys.Crash()
	// Recovery splices the shadow table's counter LSBs onto the stale
	// in-memory node; flip an MSB of that stale node — the part only the
	// entry's MAC protects.
	if !asys.TamperCounter(3, 6, 0x80) {
		log.Fatal("tamper target missing")
	}
	_, err = asys.Recover()
	if err == nil {
		log.Fatal("shadow/MSB tampering went undetected")
	}
	fmt.Printf("  %-28s detected ✓ (%v)\n", "recovery-path MSB tampering", err)

	fmt.Println()
	fmt.Println("All attacks detected.")
}
