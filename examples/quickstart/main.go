// Quickstart: create a secure NVM, write data, pull the plug, recover,
// and read the data back — the core promise of Anubis in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anubis"
)

func main() {
	// An AGIT-Plus system: split-counter encryption, Bonsai Merkle tree,
	// and Anubis shadow-tracking of the metadata caches (the paper's
	// best general-tree scheme: ~3.4% overhead, ~0.03 s recovery).
	sys, err := anubis.New(anubis.Config{
		Scheme:      anubis.AGITPlus,
		MemoryBytes: 16 << 20, // 16 MB for the demo
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every write is encrypted (counter mode), integrity-protected
	// (Merkle tree + data MAC + ECC), and atomically persisted together
	// with its metadata updates.
	fmt.Println("writing 1000 blocks...")
	for i := uint64(0); i < 1000; i++ {
		msg := fmt.Sprintf("record %04d: secure and persistent", i)
		if err := sys.WriteBlock(i*17%sys.NumBlocks(), []byte(msg)); err != nil {
			log.Fatal(err)
		}
	}

	// Power failure: the metadata caches — hundreds of not-yet-persisted
	// counter and tree updates — are gone. Only NVM, the WPQ, and a few
	// on-chip persistent registers survive.
	fmt.Println("power failure!")
	sys.Crash()

	// Anubis recovery: scan the shadow tables, repair only the tracked
	// counters (Osiris ECC trials) and tree nodes, verify the root.
	rep, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d shadow entries scanned, %d counters fixed, %d nodes rebuilt\n",
		rep.EntriesScanned, rep.CountersFixed, rep.NodesRebuilt)
	fmt.Printf("modeled recovery time: %s (vs hours for a full-memory rebuild)\n",
		anubis.FormatDuration(rep.ModeledNS))

	// Everything written before the crash decrypts and verifies.
	for i := uint64(0); i < 1000; i++ {
		want := fmt.Sprintf("record %04d: secure and persistent", i)
		got, err := sys.ReadBlock(i * 17 % sys.NumBlocks())
		if err != nil {
			log.Fatalf("block %d: %v", i, err)
		}
		if string(got[:len(want)]) != want {
			log.Fatalf("block %d corrupted", i)
		}
	}
	fmt.Println("all 1000 blocks verified after recovery ✓")
}
