// recoverycompare: runs the same workload under every scheme, crashes,
// and compares actual recovery work and modeled recovery time — the
// paper's central claim (10^7 recovery speedup) at demo scale, plus the
// analytic model at production scale.
//
// Run with:
//
//	go run ./examples/recoverycompare
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"anubis"
)

func main() {
	schemes := []anubis.Scheme{
		anubis.Strict, anubis.Osiris, anubis.AGITRead, anubis.AGITPlus, anubis.ASIT,
	}

	fmt.Println("Workload: 3000 random writes over 32 MB, then power failure.")
	fmt.Printf("%-11s %-12s %10s %10s %12s %14s\n",
		"scheme", "outcome", "fetchOps", "fixed", "recovery", "run time")

	for _, scheme := range schemes {
		sys, err := anubis.New(anubis.Config{
			Scheme:            scheme,
			MemoryBytes:       32 << 20,
			CounterCacheBytes: 32 << 10,
			TreeCacheBytes:    32 << 10,
			MetaCacheBytes:    64 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		expect := map[uint64]byte{}
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(int(sys.NumBlocks())))
			tag := byte(i)
			if err := sys.WriteBlock(addr, []byte{tag, 0xA5}); err != nil {
				log.Fatal(err)
			}
			expect[addr] = tag
		}
		elapsed := sys.Stats().ElapsedNS

		sys.Crash()
		rep, err := sys.Recover()
		outcome := "recovered"
		if errors.Is(err, anubis.ErrNotRecoverable) {
			outcome = "no-recovery"
		} else if err != nil {
			outcome = "FAILED"
		}
		if outcome == "recovered" {
			for addr, tag := range expect {
				got, rerr := sys.ReadBlock(addr)
				if rerr != nil || got[0] != tag {
					log.Fatalf("%v: block %d lost after recovery (%v)", scheme, addr, rerr)
				}
			}
		}
		fmt.Printf("%-11s %-12s %10d %10d %12s %11.2f ms\n",
			scheme, outcome, rep.FetchOps, rep.CountersFixed,
			anubis.FormatDuration(rep.ModeledNS), float64(elapsed)/1e6)
	}

	fmt.Println()
	fmt.Println("Analytic model at production scale (paper's headline):")
	fmt.Printf("  %-38s %s\n", "Osiris full rebuild, 8 TB NVM:",
		anubis.FormatDuration(anubis.EstimateRecoveryNS(anubis.Osiris, 8<<40, 0, 0)))
	fmt.Printf("  %-38s %s\n", "Anubis AGIT, 256 KB + 256 KB caches:",
		anubis.FormatDuration(anubis.EstimateRecoveryNS(anubis.AGITPlus, 8<<40, 256<<10, 256<<10)))
	fmt.Printf("  %-38s %s\n", "Anubis ASIT, 512 KB combined cache:",
		anubis.FormatDuration(anubis.EstimateRecoveryNS(anubis.ASIT, 8<<40, 256<<10, 256<<10)))
	osiris := anubis.EstimateRecoveryNS(anubis.Osiris, 8<<40, 0, 0)
	agit := anubis.EstimateRecoveryNS(anubis.AGITPlus, 8<<40, 256<<10, 256<<10)
	fmt.Printf("  %-38s %.1e×\n", "speedup:", float64(osiris)/float64(agit))
}
