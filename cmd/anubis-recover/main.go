// Command anubis-recover demonstrates crash recovery end-to-end: it
// runs a workload against a secure memory, verifies a sample of the
// data, pulls the plug, recovers, and verifies again — printing the
// recovery report and the modeled recovery time for each scheme.
//
// Usage:
//
//	anubis-recover                     # compare all recoverable schemes
//	anubis-recover -scheme asit -w 5000
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/recmodel"
	"anubis/internal/sim"
)

func main() {
	var (
		schemeName = flag.String("scheme", "", "restrict to one scheme (strict, osiris, agit-read, agit-plus, asit)")
		writes     = flag.Int("w", 2000, "writes before the crash")
		mem        = flag.Uint64("mem", 32<<20, "memory size in bytes")
		verbose    = flag.Bool("v", false, "print the per-phase recovery-time breakdown under each scheme")
		jsonOut    = flag.Bool("json", false, "emit one JSON object per scheme instead of the table")
	)
	flag.Parse()

	type entry struct {
		name   string
		scheme memctrl.Scheme
		family sim.Family
	}
	all := []entry{
		{"strict", memctrl.SchemeStrict, sim.FamilyBonsai},
		{"osiris", memctrl.SchemeOsiris, sim.FamilyBonsai},
		{"agit-read", memctrl.SchemeAGITRead, sim.FamilyBonsai},
		{"agit-plus", memctrl.SchemeAGITPlus, sim.FamilyBonsai},
		{"asit", memctrl.SchemeASIT, sim.FamilySGX},
		{"selective", memctrl.SchemeSelective, sim.FamilyBonsai},
		{"triad-2", memctrl.SchemeTriad, sim.FamilyBonsai},
		{"writeback", memctrl.SchemeWriteBack, sim.FamilyBonsai},
		{"osiris-sgx", memctrl.SchemeOsiris, sim.FamilySGX},
	}
	var list []entry
	for _, e := range all {
		if *schemeName == "" || e.name == *schemeName {
			list = append(list, e)
		}
	}
	if len(list) == 0 {
		fmt.Fprintf(os.Stderr, "anubis-recover: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	if !*jsonOut {
		fmt.Printf("%-12s %-12s %10s %10s %10s %12s  %s\n",
			"scheme", "result", "fetchOps", "cryptoOps", "fixed", "modeled", "data")
	}
	enc := json.NewEncoder(os.Stdout)
	for _, e := range list {
		row := runOne(e.name, e.scheme, e.family, *writes, *mem, *jsonOut, *verbose)
		if *jsonOut && row != nil {
			_ = enc.Encode(row)
		}
	}
	if *jsonOut {
		return
	}

	fmt.Println()
	fmt.Println("For scale: analytic recovery-time model at production sizes —")
	fmt.Printf("  Osiris, 8 TB NVM:                 %s\n",
		recmodel.FormatDuration(recmodel.OsirisFullNS(8<<40, 1.05)))
	fmt.Printf("  Anubis AGIT, 256 KB caches:       %s\n",
		recmodel.FormatDuration(recmodel.AGITNS(256<<10, 256<<10)))
	fmt.Printf("  Anubis ASIT, 512 KB cache:        %s\n",
		recmodel.FormatDuration(recmodel.ASITNS(512<<10)))
}

// recoverRow is the -json shape of one scheme's run.
type recoverRow struct {
	Scheme        string         `json:"scheme"`
	Result        string         `json:"result"`
	FetchOps      uint64         `json:"fetch_ops"`
	CryptoOps     uint64         `json:"crypto_ops"`
	CountersFixed uint64         `json:"counters_fixed"`
	ModeledNS     uint64         `json:"modeled_ns"`
	Phases        *obs.RecLedger `json:"recovery_phase_ns"`
	DataVerified  int            `json:"data_blocks_verified"`
	DataBad       int            `json:"data_blocks_bad"`
}

func runOne(name string, scheme memctrl.Scheme, family sim.Family, writes int, mem uint64, jsonOut, verbose bool) *recoverRow {
	cfg := memctrl.DefaultConfig(scheme)
	cfg.MemoryBytes = mem
	cfg.TriadLevels = 2
	cfg.CounterCacheBlocks = 512
	cfg.TreeCacheBlocks = 512
	cfg.MetaCacheBlocks = 1024
	ctrl, err := sim.NewController(family, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%-12s error: %v\n", name, err)
		return nil
	}

	rng := rand.New(rand.NewSource(7))
	expect := map[uint64][64]byte{}
	for i := 0; i < writes; i++ {
		addr := uint64(rng.Intn(int(ctrl.NumBlocks())))
		var d [64]byte
		rng.Read(d[:])
		if err := ctrl.WriteBlock(addr, d); err != nil {
			fmt.Fprintf(os.Stderr, "%-12s write error: %v\n", name, err)
			return nil
		}
		expect[addr] = d
	}

	ctrl.Crash()
	rep, err := ctrl.Recover()

	result := "RECOVERED"
	switch {
	case errors.Is(err, memctrl.ErrNotRecoverable):
		result = "no-recovery"
	case err != nil:
		result = "FAILED"
	}

	dataOK := 0
	dataBad := 0
	if err == nil || errors.Is(err, memctrl.ErrNotRecoverable) {
		for addr, want := range expect {
			got, rerr := ctrl.ReadBlock(addr)
			if rerr != nil || got != want {
				dataBad++
			} else {
				dataOK++
			}
		}
	}
	row := &recoverRow{
		Scheme: name, Result: result,
		FetchOps: rep.FetchOps, CryptoOps: rep.CryptoOps,
		CountersFixed: rep.CountersFixed, ModeledNS: rep.ModeledNS(),
		Phases: &rep.Phases, DataVerified: dataOK, DataBad: dataBad,
	}
	if jsonOut {
		return row
	}
	dataStr := fmt.Sprintf("%d/%d blocks verified", dataOK, dataOK+dataBad)
	fmt.Printf("%-12s %-12s %10d %10d %10d %12s  %s\n",
		name, result, rep.FetchOps, rep.CryptoOps, rep.CountersFixed,
		recmodel.FormatDuration(rep.ModeledNS()), dataStr)
	if verbose {
		printPhases(rep.Phases)
	}
	return row
}

// printPhases renders the non-zero recovery phases as an indented
// table with a share-of-total column; the phase values sum exactly to
// the modeled recovery time by construction (DESIGN.md §16).
func printPhases(l obs.RecLedger) {
	total := l.Total()
	if total == 0 {
		fmt.Printf("             %-22s (no modeled recovery work)\n", "phases:")
		return
	}
	for _, p := range obs.RecPhases() {
		v := l.Get(p)
		if v == 0 {
			continue
		}
		fmt.Printf("             %-22s %12s  %5.1f%%\n",
			p.String(), recmodel.FormatDuration(v), 100*float64(v)/float64(total))
	}
}
