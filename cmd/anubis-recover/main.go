// Command anubis-recover demonstrates crash recovery end-to-end: it
// runs a workload against a secure memory, verifies a sample of the
// data, pulls the plug, recovers, and verifies again — printing the
// recovery report and the modeled recovery time for each scheme.
//
// Usage:
//
//	anubis-recover                     # compare all recoverable schemes
//	anubis-recover -scheme asit -w 5000
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"anubis/internal/memctrl"
	"anubis/internal/recmodel"
	"anubis/internal/sim"
)

func main() {
	var (
		schemeName = flag.String("scheme", "", "restrict to one scheme (strict, osiris, agit-read, agit-plus, asit)")
		writes     = flag.Int("w", 2000, "writes before the crash")
		mem        = flag.Uint64("mem", 32<<20, "memory size in bytes")
	)
	flag.Parse()

	type entry struct {
		name   string
		scheme memctrl.Scheme
		family sim.Family
	}
	all := []entry{
		{"strict", memctrl.SchemeStrict, sim.FamilyBonsai},
		{"osiris", memctrl.SchemeOsiris, sim.FamilyBonsai},
		{"agit-read", memctrl.SchemeAGITRead, sim.FamilyBonsai},
		{"agit-plus", memctrl.SchemeAGITPlus, sim.FamilyBonsai},
		{"asit", memctrl.SchemeASIT, sim.FamilySGX},
		{"selective", memctrl.SchemeSelective, sim.FamilyBonsai},
		{"triad-2", memctrl.SchemeTriad, sim.FamilyBonsai},
		{"writeback", memctrl.SchemeWriteBack, sim.FamilyBonsai},
		{"osiris-sgx", memctrl.SchemeOsiris, sim.FamilySGX},
	}
	var list []entry
	for _, e := range all {
		if *schemeName == "" || e.name == *schemeName {
			list = append(list, e)
		}
	}
	if len(list) == 0 {
		fmt.Fprintf(os.Stderr, "anubis-recover: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	fmt.Printf("%-12s %-12s %10s %10s %10s %12s  %s\n",
		"scheme", "result", "fetchOps", "cryptoOps", "fixed", "modeled", "data")
	for _, e := range list {
		runOne(e.name, e.scheme, e.family, *writes, *mem)
	}

	fmt.Println()
	fmt.Println("For scale: analytic recovery-time model at production sizes —")
	fmt.Printf("  Osiris, 8 TB NVM:                 %s\n",
		recmodel.FormatDuration(recmodel.OsirisFullNS(8<<40, 1.05)))
	fmt.Printf("  Anubis AGIT, 256 KB caches:       %s\n",
		recmodel.FormatDuration(recmodel.AGITNS(256<<10, 256<<10)))
	fmt.Printf("  Anubis ASIT, 512 KB cache:        %s\n",
		recmodel.FormatDuration(recmodel.ASITNS(512<<10)))
}

func runOne(name string, scheme memctrl.Scheme, family sim.Family, writes int, mem uint64) {
	cfg := memctrl.DefaultConfig(scheme)
	cfg.MemoryBytes = mem
	cfg.TriadLevels = 2
	cfg.CounterCacheBlocks = 512
	cfg.TreeCacheBlocks = 512
	cfg.MetaCacheBlocks = 1024
	ctrl, err := sim.NewController(family, cfg)
	if err != nil {
		fmt.Printf("%-12s error: %v\n", name, err)
		return
	}

	rng := rand.New(rand.NewSource(7))
	expect := map[uint64][64]byte{}
	for i := 0; i < writes; i++ {
		addr := uint64(rng.Intn(int(ctrl.NumBlocks())))
		var d [64]byte
		rng.Read(d[:])
		if err := ctrl.WriteBlock(addr, d); err != nil {
			fmt.Printf("%-12s write error: %v\n", name, err)
			return
		}
		expect[addr] = d
	}

	ctrl.Crash()
	rep, err := ctrl.Recover()

	result := "RECOVERED"
	switch {
	case errors.Is(err, memctrl.ErrNotRecoverable):
		result = "no-recovery"
	case err != nil:
		result = "FAILED"
	}

	dataOK := 0
	dataBad := 0
	if err == nil || errors.Is(err, memctrl.ErrNotRecoverable) {
		for addr, want := range expect {
			got, rerr := ctrl.ReadBlock(addr)
			if rerr != nil || got != want {
				dataBad++
			} else {
				dataOK++
			}
		}
	}
	dataStr := fmt.Sprintf("%d/%d blocks verified", dataOK, dataOK+dataBad)
	fmt.Printf("%-12s %-12s %10d %10d %10d %12s  %s\n",
		name, result, rep.FetchOps, rep.CryptoOps, rep.CountersFixed,
		recmodel.FormatDuration(rep.ModeledNS()), dataStr)
}
