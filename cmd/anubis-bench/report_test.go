package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestReportRecordAndWrite(t *testing.T) {
	rep := newReport(4, 1000, 1<<20, 99, []string{"mcf"})
	err := rep.record("fig10", 15, func() (map[string]float64, error) {
		return map[string]float64{"avg_osiris": 1.01}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 || rep.TotalCells != 15 {
		t.Fatalf("report totals wrong: %+v", rep)
	}
	ft := rep.Figures[0]
	if ft.Name != "fig10" || ft.Metrics["avg_osiris"] != 1.01 {
		t.Fatalf("figure entry wrong: %+v", ft)
	}
	if ft.Cells > 0 && ft.CellsPerSec <= 0 {
		t.Fatalf("cells/sec not derived: %+v", ft)
	}

	path := filepath.Join(t.TempDir(), "out", "bench.json")
	if err := rep.write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Parallel != 4 || back.Seed != 99 || len(back.Figures) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestReportRecordPropagatesError(t *testing.T) {
	rep := newReport(1, 1, 1, 1, nil)
	boom := errors.New("boom")
	if err := rep.record("x", 1, func() (map[string]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(rep.Figures) != 0 {
		t.Fatal("failed section recorded")
	}
}

func TestResolvePath(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	if got := resolvePath(dir, now); filepath.Dir(got) != dir || !strings.HasPrefix(filepath.Base(got), "BENCH_") {
		t.Fatalf("directory arg: %q", got)
	}
	if got := resolvePath(dir+string(os.PathSeparator), now); filepath.Dir(got) != dir {
		t.Fatalf("trailing-separator arg: %q", got)
	}
	if got := resolvePath("explicit.json", now); got != "explicit.json" {
		t.Fatalf("file arg: %q", got)
	}
	if got := resolvePath("", now); got != "BENCH_20260806T120000Z.json" {
		t.Fatalf("empty arg: %q", got)
	}
}
