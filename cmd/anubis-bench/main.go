// Command anubis-bench regenerates the paper's evaluation artifacts:
// Table 1 and Figures 5, 7, 10, 11, 12 and 13, plus the headline
// recovery comparison.
//
// Usage:
//
//	anubis-bench -all                 # everything (minutes)
//	anubis-bench -fig10 -n 40000      # one figure at a given scale
//	anubis-bench -fig10 -apps mcf,lbm # restrict the benchmark list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anubis/internal/figures"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		table1   = flag.Bool("table1", false, "print Table 1 (system configuration)")
		fig5     = flag.Bool("fig5", false, "Figure 5: Osiris recovery time vs memory size")
		fig7     = flag.Bool("fig7", false, "Figure 7: clean counter-cache evictions per app")
		fig10    = flag.Bool("fig10", false, "Figure 10: AGIT performance")
		fig11    = flag.Bool("fig11", false, "Figure 11: ASIT performance")
		fig12    = flag.Bool("fig12", false, "Figure 12: Anubis recovery time vs cache size")
		fig13    = flag.Bool("fig13", false, "Figure 13: performance sensitivity to cache size")
		headline = flag.Bool("headline", false, "headline recovery comparison")
		ablation = flag.Bool("ablations", false, "design-choice ablations (stop-loss, recovery backend, endurance)")
		n        = flag.Int("n", 40000, "requests per (app, scheme) simulation")
		mem      = flag.Uint64("mem", 256<<20, "simulated memory bytes for performance runs")
		apps     = flag.String("apps", "", "comma-separated app subset (default: all 11)")
		seed     = flag.Int64("seed", 99, "trace generator seed")
	)
	flag.Parse()

	rc := figures.DefaultRunConfig()
	rc.Requests = *n
	rc.MemoryBytes = *mem
	rc.Seed = *seed
	if *apps != "" {
		rc.Apps = strings.Split(*apps, ",")
	}

	any := false
	out := os.Stdout
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "anubis-bench:", err)
		os.Exit(1)
	}

	if *all || *table1 {
		any = true
		figures.Table1(out)
		fmt.Fprintln(out)
	}
	if *all || *fig5 {
		any = true
		figures.PrintFig5(out)
		fmt.Fprintln(out)
	}
	if *all || *fig7 {
		any = true
		if err := figures.PrintFig7(out, rc); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if *all || *fig10 {
		any = true
		rows, avg, err := figures.Fig10(rc)
		if err != nil {
			fail(err)
		}
		figures.PrintPerf(out, "Figure 10: AGIT Performance (normalized to write-back)", rows, avg, figures.Fig10Schemes)
		fmt.Fprintln(out)
	}
	if *all || *fig11 {
		any = true
		rows, avg, err := figures.Fig11(rc)
		if err != nil {
			fail(err)
		}
		figures.PrintPerf(out, "Figure 11: ASIT Performance (normalized to write-back)", rows, avg, figures.Fig11Schemes)
		fmt.Fprintln(out)
	}
	if *all || *fig12 {
		any = true
		figures.PrintFig12(out)
		fmt.Fprintln(out)
	}
	if *all || *fig13 {
		any = true
		if err := figures.PrintFig13(out, rc); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if *all || *ablation {
		any = true
		if err := figures.PrintAblationStopLoss(out, rc); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
		if err := figures.PrintAblationRecoveryBackend(out, rc); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
		if err := figures.PrintAblationEndurance(out, rc); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
		if err := figures.PrintAblationTriad(out, rc); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if *all || *headline {
		any = true
		figures.PrintHeadline(out)
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
