// Command anubis-bench regenerates the paper's evaluation artifacts:
// Table 1 and Figures 5, 7, 10, 11, 12 and 13, plus the headline
// recovery comparison.
//
// Simulation cells — each (scheme, app, cache-size) run — fan out on
// the parallel evaluation engine (internal/parallel); the output is
// identical for every -parallel value (see DESIGN.md § Parallel
// evaluation).
//
// Usage:
//
//	anubis-bench -all                 # everything (minutes)
//	anubis-bench -fig10 -n 40000      # one figure at a given scale
//	anubis-bench -fig10 -apps mcf,lbm # restrict the benchmark list
//	anubis-bench -all -parallel 8     # 8 concurrent simulation cells
//	anubis-bench -all -json perf/     # write BENCH_<ts>.json report
//	anubis-bench -recovery -trials 200  # crash-point sweep off one warm fork
//	anubis-bench -suite -json results/  # PR-tracking benchmark matrix (make bench-json)
//
// Observability (see DESIGN.md § Observability):
//
//	anubis-bench -all -metrics-addr :9090        # live Prometheus /metrics + /vars
//	anubis-bench -fig10 -trace-events out.json   # Chrome trace of sampled requests
//	anubis-bench -fig10 -trace-events out.json -trace-sample 1  # every request
//
// Profiling (for performance work on the simulator itself):
//
//	anubis-bench -fig10 -cpuprofile cpu.pprof   # go tool pprof cpu.pprof
//	anubis-bench -fig10 -memprofile mem.pprof   # allocation profile
//	anubis-bench -fig10 -trace trace.out        # go tool trace trace.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"anubis/internal/figures"
	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/recmodel"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		table1   = flag.Bool("table1", false, "print Table 1 (system configuration)")
		fig5     = flag.Bool("fig5", false, "Figure 5: Osiris recovery time vs memory size")
		fig7     = flag.Bool("fig7", false, "Figure 7: clean counter-cache evictions per app")
		fig10    = flag.Bool("fig10", false, "Figure 10: AGIT performance")
		fig11    = flag.Bool("fig11", false, "Figure 11: ASIT performance")
		fig12    = flag.Bool("fig12", false, "Figure 12: Anubis recovery time vs cache size")
		fig13    = flag.Bool("fig13", false, "Figure 13: performance sensitivity to cache size")
		headline = flag.Bool("headline", false, "headline recovery comparison")
		ablation = flag.Bool("ablations", false, "design-choice ablations (stop-loss, recovery backend, endurance)")
		recovery = flag.Bool("recovery", false, "recovery-time distribution from many crash points (forked warm state)")
		suite    = flag.Bool("suite", false,
			"run the PR-tracking benchmark matrix (quick+full scale, seq+parallel, forked-vs-cold recovery sweep) — see `make bench-json`")
		trials = flag.Int("trials", 100,
			"crash points per recovery sweep (forking a warm controller makes 10x the old per-trial-fill count affordable)")
		n     = flag.Int("n", 40000, "requests per (app, scheme) simulation")
		epoch = flag.Int("epoch", 0,
			"epoch pipeline window in write requests (coalesced integrity-tree updates); 0 or 1 = legacy eager path, byte-identical to pre-epoch builds")
		shards = flag.Int("shard", 0,
			"intra-trial shard workers per simulation (content-plane precompute; simulated metrics byte-identical at any count); 0 = legacy single-plane engine")
		fastpath = flag.Bool("fastpath", false,
			"enable the hit-burst fast path (batched closed-form retirement of steady-state full-hit requests; simulated metrics byte-identical to the stepped engine)")
		mem     = flag.Uint64("mem", 256<<20, "simulated memory bytes for performance runs")
		apps    = flag.String("apps", "", "comma-separated app subset (default: all 11)")
		seed    = flag.Int64("seed", 99, "trace generator seed")
		workers = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"concurrent simulation cells (1 = sequential legacy path; output is identical for any value)")
		jsonOut = flag.String("json", "",
			"write a machine-readable benchmark report; a directory (or trailing slash) gets BENCH_<timestamp>.json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		traceOut   = flag.String("trace", "", "write a runtime execution trace to this file")

		metricsAddr = flag.String("metrics-addr", "",
			"serve live telemetry on this address while the run executes (/metrics Prometheus text, /vars JSON)")
		traceEvents = flag.String("trace-events", "",
			"write sampled simulation events (requests with stall attribution, evictions, commits, recovery) as Chrome trace-event JSON to this file")
		traceSample = flag.Int("trace-sample", 64,
			"with -trace-events, record every Nth request per cell (1 = all; structural events are never sampled out)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anubis-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "anubis-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anubis-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "anubis-bench:", err)
			os.Exit(1)
		}
		defer rtrace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anubis-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "anubis-bench:", err)
			}
		}()
	}

	rc := figures.DefaultRunConfig()
	rc.Requests = *n
	rc.MemoryBytes = *mem
	rc.Seed = *seed
	rc.Parallel = *workers
	rc.Epoch = *epoch
	rc.Shard = *shards
	rc.Fastpath = *fastpath
	if *apps != "" {
		rc.Apps = strings.Split(*apps, ",")
	}

	any := false
	out := os.Stdout
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "anubis-bench:", err)
		os.Exit(1)
	}
	rep := newReport(*workers, *n, *mem, *seed, rc.Apps)

	// Observability: a cell observer always aggregates the per-component
	// stall ledger into the JSON report; -metrics-addr additionally
	// publishes it live, and -trace-events records sampled probe events.
	watch := newCellWatch()
	if *metricsAddr != "" {
		tel := obs.NewTelemetry()
		msrv, err := obs.Serve(*metricsAddr, tel)
		if err != nil {
			fail(err)
		}
		defer msrv.Close()
		watch.tel = tel
		bound := msrv.Addr()
		fmt.Fprintf(out, "telemetry: http://%s/metrics (Prometheus), http://%s/vars (JSON)\n", bound, bound)
	}
	var tracer *obs.Tracer
	if *traceEvents != "" {
		if *traceSample < 1 {
			fail(fmt.Errorf("-trace-sample must be >= 1 (got %d)", *traceSample))
		}
		tracer = obs.NewTracer(*traceSample)
	}
	hooks := func(rc *figures.RunConfig) {
		rc.OnCell = watch.observe
		rc.Trace = tracer
	}
	hooks(&rc)
	// finishObs folds the aggregated attribution into the report and
	// flushes the event trace; called once before any report is written.
	finishObs := func() {
		watch.finish(rep)
		if tracer == nil {
			return
		}
		f, err := os.Create(*traceEvents)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %d trace events to %s\n", tracer.Len(), *traceEvents)
	}

	if *suite {
		if err := runSuite(rep, out, *seed, *trials, hooks); err != nil {
			fail(err)
		}
		finishObs()
		fmt.Fprintf(out, "total: %.0f ms wall, %d simulation cells\n", rep.TotalWallMS, rep.TotalCells)
		if *jsonOut != "" {
			path := resolvePath(*jsonOut, time.Now())
			if err := rep.write(path); err != nil {
				fail(err)
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
		return
	}

	section := func(name string, cells int, fn func() (map[string]float64, error)) {
		any = true
		if err := rep.record(name, cells, fn); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	nApps := rc.NumApps()

	if *all || *table1 {
		section("table1", 0, func() (map[string]float64, error) {
			figures.Table1(out)
			return nil, nil
		})
	}
	if *all || *fig5 {
		section("fig5", 0, func() (map[string]float64, error) {
			figures.PrintFig5(out)
			rows := figures.Fig5()
			return map[string]float64{
				"osiris_8tb_recovery_s": recmodel.Seconds(rows[len(rows)-1].NS),
			}, nil
		})
	}
	if *all || *fig7 {
		section("fig7", nApps, func() (map[string]float64, error) {
			rows, err := figures.Fig7(rc)
			if err != nil {
				return nil, err
			}
			figures.PrintFig7Rows(out, rows)
			var mean float64
			for _, r := range rows {
				mean += r.CleanFrac / float64(len(rows))
			}
			return map[string]float64{"mean_clean_frac": mean}, nil
		})
	}
	if *all || *fig10 {
		section("fig10", nApps*len(figures.Fig10Schemes), func() (map[string]float64, error) {
			rows, avg, err := figures.Fig10(rc)
			if err != nil {
				return nil, err
			}
			figures.PrintPerf(out, "Figure 10: AGIT Performance (normalized to write-back)", rows, avg, figures.Fig10Schemes)
			return avgMetrics(avg), nil
		})
	}
	if *all || *fig11 {
		section("fig11", nApps*len(figures.Fig11Schemes), func() (map[string]float64, error) {
			rows, avg, err := figures.Fig11(rc)
			if err != nil {
				return nil, err
			}
			figures.PrintPerf(out, "Figure 11: ASIT Performance (normalized to write-back)", rows, avg, figures.Fig11Schemes)
			return avgMetrics(avg), nil
		})
	}
	if *all || *fig12 {
		section("fig12", 0, func() (map[string]float64, error) {
			figures.PrintFig12(out)
			return nil, nil
		})
	}
	if *all || *fig13 {
		// 5 sizes × apps × (2 write-back baselines + 3 schemes).
		section("fig13", 5*nApps*(2+len(figures.Fig13Schemes)), func() (map[string]float64, error) {
			return nil, figures.PrintFig13(out, rc)
		})
	}
	if *all || *ablation {
		section("ablation_stoploss", 5, func() (map[string]float64, error) {
			return nil, figures.PrintAblationStopLoss(out, rc)
		})
		section("ablation_backend", 2, func() (map[string]float64, error) {
			return nil, figures.PrintAblationRecoveryBackend(out, rc)
		})
		section("ablation_endurance", 7, func() (map[string]float64, error) {
			return nil, figures.PrintAblationEndurance(out, rc)
		})
		section("ablation_triad", 4, func() (map[string]float64, error) {
			return nil, figures.PrintAblationTriad(out, rc)
		})
	}
	if *all || *recovery {
		// One fill per scheme plus trials × (window + recovery); the
		// fills are the only whole-trace simulations, so the cell count
		// reported is 2 (AGIT-Plus + ASIT warm-ups).
		section("recovery_sweep", 2, func() (map[string]float64, error) {
			return nil, figures.PrintRecoverySweep(out, rc, *trials)
		})
	}
	if *all || *headline {
		section("headline", 0, func() (map[string]float64, error) {
			figures.PrintHeadline(out)
			osiris := recmodel.OsirisFullNS(8<<40, 1.05)
			agit := recmodel.AGITNS(256<<10, 256<<10)
			return map[string]float64{
				"agit_speedup": recmodel.Speedup(osiris, agit),
			}, nil
		})
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	finishObs()

	fmt.Fprintf(out, "total: %.0f ms wall, %d simulation cells, parallel=%d\n",
		rep.TotalWallMS, rep.TotalCells, *workers)
	if *jsonOut != "" {
		path := resolvePath(*jsonOut, time.Now())
		if err := rep.write(path); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
}

// avgMetrics flattens a per-scheme average map into JSON metric keys.
func avgMetrics(avg map[memctrl.Scheme]float64) map[string]float64 {
	m := make(map[string]float64, len(avg))
	for _, s := range figures.SortSchemes(avg) {
		m["avg_"+s.String()] = avg[s]
	}
	return m
}
