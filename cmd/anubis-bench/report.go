package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// FigureTiming is one evaluated artifact's entry in the JSON benchmark
// report: wall time, how many simulation cells it fanned out, and its
// headline metrics (e.g. per-scheme average normalized execution time).
type FigureTiming struct {
	Name        string             `json:"name"`
	WallMS      float64            `json:"wall_ms"`
	Cells       int                `json:"cells"`
	CellsPerSec float64            `json:"cells_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the machine-readable output of one anubis-bench run. Every
// PR records a before/after pair of these to track the evaluation
// engine's performance trajectory (see README § Benchmarks).
type Report struct {
	Timestamp   string         `json:"timestamp"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Parallel    int            `json:"parallel"`
	Requests    int            `json:"requests"`
	MemoryBytes uint64         `json:"memory_bytes"`
	Seed        int64          `json:"seed"`
	Apps        []string       `json:"apps,omitempty"`
	TotalWallMS float64        `json:"total_wall_ms"`
	TotalCells  int            `json:"total_cells"`
	Figures     []FigureTiming `json:"figures"`
}

// newReport seeds a report with the run's environment.
func newReport(parallel, requests int, mem uint64, seed int64, apps []string) *Report {
	return &Report{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallel:    parallel,
		Requests:    requests,
		MemoryBytes: mem,
		Seed:        seed,
		Apps:        apps,
	}
}

// record times fn, appends its figure entry, and accumulates totals.
// Metrics returned by fn land in the entry verbatim.
func (r *Report) record(name string, cells int, fn func() (map[string]float64, error)) error {
	start := time.Now()
	metrics, err := fn()
	if err != nil {
		return err
	}
	wall := time.Since(start)
	ft := FigureTiming{
		Name:    name,
		WallMS:  float64(wall.Microseconds()) / 1000,
		Cells:   cells,
		Metrics: metrics,
	}
	if cells > 0 && wall > 0 {
		ft.CellsPerSec = float64(cells) / wall.Seconds()
	}
	r.Figures = append(r.Figures, ft)
	r.TotalWallMS += ft.WallMS
	r.TotalCells += cells
	return nil
}

// resolvePath turns the -json flag value into a concrete file path:
// an existing directory (or a path ending in a separator) receives a
// BENCH_<timestamp>.json file; anything else is used verbatim.
func resolvePath(arg string, now time.Time) string {
	stamp := fmt.Sprintf("BENCH_%s.json", now.UTC().Format("20060102T150405Z"))
	if arg == "" {
		return stamp
	}
	if st, err := os.Stat(arg); (err == nil && st.IsDir()) || os.IsPathSeparator(arg[len(arg)-1]) {
		return filepath.Join(arg, stamp)
	}
	return arg
}

// write marshals the report to path (creating parent directories).
func (r *Report) write(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
