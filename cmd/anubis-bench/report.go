package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"anubis/internal/obs"
	"anubis/internal/sim"
)

// SchemaVersion identifies the JSON report layout. Bump it when a
// field is renamed or its meaning changes; adding fields is backward
// compatible and does not require a bump. History:
//
//	1 — implicit schema of the pre-versioned reports (no marker field).
//	2 — adds schema_version, build info (vcs_revision, vcs_modified),
//	    aggregate per-component stall attribution (attribution_ns,
//	    requests_simulated), and JSON tags across sim/memctrl records.
//	3 — adds aggregate recovery-phase attribution (recovery_phase_ns,
//	    recovery_trials; phase values sum exactly to the trials' modeled
//	    recovery time) and per-phase phase_ns_<name> metrics on the
//	    recovery-sweep figure entries.
const SchemaVersion = 3

// FigureTiming is one evaluated artifact's entry in the JSON benchmark
// report: wall time, how many simulation cells it fanned out, and its
// headline metrics (e.g. per-scheme average normalized execution time).
type FigureTiming struct {
	Name        string             `json:"name"`
	WallMS      float64            `json:"wall_ms"`
	Cells       int                `json:"cells"`
	CellsPerSec float64            `json:"cells_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the machine-readable output of one anubis-bench run. Every
// PR records a before/after pair of these to track the evaluation
// engine's performance trajectory (see README § Benchmarks).
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	GoVersion     string `json:"go_version"`
	// VCSRevision/VCSModified come from runtime/debug.ReadBuildInfo:
	// set when the binary was built inside a git checkout (empty for
	// `go run` and test binaries), so a report can be traced back to
	// the exact commit that produced it.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	// Host provenance: wall-clock numbers in a report are only
	// comparable on the machine that produced them, so every record
	// carries enough host identity to tell two machines apart.
	HostCores   int            `json:"host_cores"`
	CPUModel    string         `json:"cpu_model,omitempty"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Parallel    int            `json:"parallel"`
	Requests    int            `json:"requests"`
	MemoryBytes uint64         `json:"memory_bytes"`
	Seed        int64          `json:"seed"`
	Apps        []string       `json:"apps,omitempty"`
	TotalWallMS float64        `json:"total_wall_ms"`
	TotalCells  int            `json:"total_cells"`
	Figures     []FigureTiming `json:"figures"`

	// Attribution is the per-component stall ledger summed over every
	// simulation cell the run completed (simulated nanoseconds, keyed
	// by component name). Simulated time is deterministic for a given
	// seed, so scripts/bench_compare can gate on per-component drift
	// without wall-clock noise. RequestsSimulated normalizes it.
	Attribution        *obs.Ledger `json:"attribution_ns,omitempty"`
	RequestsSimulated  uint64      `json:"requests_simulated,omitempty"`
	CellsWithAttribute uint64      `json:"attribution_cells,omitempty"`

	// RecoveryPhases is the per-phase recovery-time ledger merged over
	// the run's recovery-sweep trials (forked sweep only — the cold
	// sweep replays identical trials and would double-count). Each
	// trial's ledger sums exactly to its modeled recovery time, so the
	// aggregate total equals the sum of modeled recovery times across
	// RecoveryTrials trials; bench_compare gates on per-phase drift.
	RecoveryPhases *obs.RecLedger `json:"recovery_phase_ns,omitempty"`
	RecoveryTrials uint64         `json:"recovery_trials,omitempty"`
}

// addRecoveryPhases folds one sweep's merged phase ledger into the
// report aggregate.
func (r *Report) addRecoveryPhases(l *obs.RecLedger, trials int) {
	if r.RecoveryPhases == nil {
		r.RecoveryPhases = &obs.RecLedger{}
	}
	r.RecoveryPhases.Merge(l)
	r.RecoveryTrials += uint64(trials)
}

// newReport seeds a report with the run's environment.
func newReport(parallel, requests int, mem uint64, seed int64, apps []string) *Report {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		HostCores:     runtime.NumCPU(),
		CPUModel:      cpuModel(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Parallel:      parallel,
		Requests:      requests,
		MemoryBytes:   mem,
		Seed:          seed,
		Apps:          apps,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				r.VCSRevision = s.Value
			case "vcs.modified":
				r.VCSModified = s.Value == "true"
			}
		}
	}
	return r
}

// cpuModel returns the host CPU model string from /proc/cpuinfo, or ""
// on platforms without it (the field is omitempty; wall-clock numbers
// are then attributable only via host_cores/gomaxprocs).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// cellWatch aggregates completed simulation cells: the per-component
// stall ledger and request counts for the JSON report, plus (when
// -metrics-addr is set) a live telemetry registry. observe runs on
// parallel-engine worker goroutines, hence the mutex; one call per
// cell keeps it far off the hot path.
type cellWatch struct {
	mu   sync.Mutex
	att  obs.Ledger
	reqs uint64
	n    uint64
	tel  *obs.Telemetry
}

func newCellWatch() *cellWatch { return &cellWatch{} }

func (w *cellWatch) observe(res sim.Result) {
	w.mu.Lock()
	w.att.Merge(&res.Stats.Attribution)
	w.reqs += uint64(res.Requests)
	w.n++
	w.mu.Unlock()
	if w.tel == nil {
		return
	}
	w.tel.Update(func(r *obs.Registry) {
		r.Counter("anubis_cells_completed_total", 1)
		r.Counter("anubis_requests_simulated_total", uint64(res.Requests))
		r.MergeLedger("anubis_stall_ns_total", &res.Stats.Attribution)
		r.Observe("anubis_cell_exec_ns", res.ExecNS)
		r.Observe("anubis_cell_nvm_writes", res.Stats.NVM.Writes)
	})
}

// finish folds the aggregate into the report. Idempotent so callers
// can invoke it at any exit point.
func (w *cellWatch) finish(rep *Report) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return
	}
	att := w.att // copy: the report must not alias the live ledger
	rep.Attribution = &att
	rep.RequestsSimulated = w.reqs
	rep.CellsWithAttribute = w.n
}

// record times fn, appends its figure entry, and accumulates totals.
// Metrics returned by fn land in the entry verbatim.
func (r *Report) record(name string, cells int, fn func() (map[string]float64, error)) error {
	start := time.Now()
	metrics, err := fn()
	if err != nil {
		return err
	}
	wall := time.Since(start)
	ft := FigureTiming{
		Name:    name,
		WallMS:  float64(wall.Microseconds()) / 1000,
		Cells:   cells,
		Metrics: metrics,
	}
	if cells > 0 && wall > 0 {
		ft.CellsPerSec = float64(cells) / wall.Seconds()
	}
	r.Figures = append(r.Figures, ft)
	r.TotalWallMS += ft.WallMS
	r.TotalCells += cells
	return nil
}

// resolvePath turns the -json flag value into a concrete file path:
// an existing directory (or a path ending in a separator) receives a
// BENCH_<timestamp>.json file; anything else is used verbatim.
func resolvePath(arg string, now time.Time) string {
	stamp := fmt.Sprintf("BENCH_%s.json", now.UTC().Format("20060102T150405Z"))
	if arg == "" {
		return stamp
	}
	if st, err := os.Stat(arg); (err == nil && st.IsDir()) || os.IsPathSeparator(arg[len(arg)-1]) {
		return filepath.Join(arg, stamp)
	}
	return arg
}

// write marshals the report to path (creating parent directories).
func (r *Report) write(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
