package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"anubis/internal/figures"
	"anubis/internal/memctrl"
	"anubis/internal/sim"
)

// The -suite mode produces the PR-tracking benchmark record
// (results/BENCH_<pr>.json via `make bench-json`): a fixed matrix of
// figure sweeps — quick and full scale, sequential and parallel — plus
// a forked-vs-cold recovery-sweep comparison that measures what the
// copy-on-write fork layer buys end-to-end. scripts/bench_compare
// diffs two of these records.

// suiteQuick returns the reduced sweep configuration (3 apps, 2k
// requests): small enough to run in seconds, large enough to exercise
// evictions and WPQ pressure.
func suiteQuick(seed int64) figures.RunConfig {
	rc := figures.DefaultRunConfig()
	rc.Requests = 2000
	rc.Apps = []string{"mcf", "lbm", "libquantum"}
	rc.Seed = seed
	return rc
}

// suiteFull returns the paper-scale configuration: all 11 apps at 40k
// requests against 256 MB simulated memory.
func suiteFull(seed int64) figures.RunConfig {
	rc := figures.DefaultRunConfig()
	rc.Seed = seed
	return rc
}

// runSuite executes the benchmark matrix into rep. trials sizes the
// recovery sweeps; the cold sweep re-fills per trial, so its wall time
// grows linearly with trials while the forked sweep pays one fill.
// hooks applies the CLI's observability wiring (cell observer, event
// tracer) to every run configuration the suite constructs.
func runSuite(rep *Report, out io.Writer, seed int64, trials int, hooks func(*figures.RunConfig)) error {
	for _, scale := range []struct {
		label string
		rc    figures.RunConfig
	}{
		{"quick", suiteQuick(seed)},
		{"full", suiteFull(seed)},
	} {
		for _, par := range []struct {
			label   string
			workers int
		}{
			{"seq", 1},
			{"par", runtime.GOMAXPROCS(0)},
		} {
			rc := scale.rc
			rc.Parallel = par.workers
			// The matrix runs with the hit-burst fast path on: it is the
			// steady-state engine now, and its simulated metrics are
			// contractually byte-identical to the stepped path — which the
			// fastpath sweep below (and scripts/bench_compare's
			// -fastpath-sweep gate) verifies against these very records.
			rc.Fastpath = true
			hooks(&rc)
			name := scale.label + "_" + par.label
			nApps := rc.NumApps()
			if err := rep.record(name+":fig10", nApps*len(figures.Fig10Schemes), func() (map[string]float64, error) {
				_, avg, err := figures.Fig10(rc)
				if err != nil {
					return nil, err
				}
				return avgMetrics(avg), nil
			}); err != nil {
				return err
			}
			if scale.label == "quick" {
				if err := rep.record(name+":fig11", nApps*len(figures.Fig11Schemes), func() (map[string]float64, error) {
					_, avg, err := figures.Fig11(rc)
					if err != nil {
						return nil, err
					}
					return avgMetrics(avg), nil
				}); err != nil {
					return err
				}
			}
			fmt.Fprintf(out, "%s: done\n", name)
		}
	}

	// Epoch-pipeline sweep: the quick fig10 matrix at growing coalescing
	// windows, sequential so the records are directly comparable run to
	// run. epoch:1 is the determinism anchor — it must reproduce the
	// legacy quick_seq:fig10 metrics exactly (the pipeline's epoch<=1
	// bypass is byte-identical), which scripts/bench_compare's
	// -epoch-sweep mode enforces; the larger windows track what the
	// coalesced tree updates buy in simulated time (exec_ns_total).
	for _, e := range []int{1, 4, 16, 64} {
		erc := suiteQuick(seed)
		erc.Parallel = 1
		erc.Epoch = e
		hooks(&erc)
		var mu sync.Mutex
		var execTotal uint64
		inner := erc.OnCell
		erc.OnCell = func(res sim.Result) {
			if inner != nil {
				inner(res)
			}
			mu.Lock()
			execTotal += res.ExecNS
			mu.Unlock()
		}
		name := fmt.Sprintf("epoch:%d", e)
		if err := rep.record(name, erc.NumApps()*len(figures.Fig10Schemes), func() (map[string]float64, error) {
			_, avg, err := figures.Fig10(erc)
			if err != nil {
				return nil, err
			}
			m := avgMetrics(avg)
			mu.Lock()
			m["exec_ns_total"] = float64(execTotal)
			mu.Unlock()
			return m, nil
		}); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "epoch sweep: done")

	// Intra-trial shard sweep: the quick fig10 matrix at growing shard
	// worker counts, sequential cell fan-out so the shard workers are
	// the only intra-run concurrency being measured. Unlike the epoch
	// sweep, *every* record here must carry identical simulated metrics:
	// sharding splits the content plane across host cores without
	// touching the timing plane, so shard:1 anchors to the legacy
	// quick_seq:fig10 record and shard:{2,4,8} anchor to shard:1 —
	// scripts/bench_compare's -shard-sweep mode enforces both. Wall
	// times across the records are the host-side scaling curve.
	for _, sh := range []int{1, 2, 4, 8} {
		src := suiteQuick(seed)
		src.Parallel = 1
		src.Shard = sh
		hooks(&src)
		var mu sync.Mutex
		var execTotal uint64
		inner := src.OnCell
		src.OnCell = func(res sim.Result) {
			if inner != nil {
				inner(res)
			}
			mu.Lock()
			execTotal += res.ExecNS
			mu.Unlock()
		}
		name := fmt.Sprintf("shard:%d", sh)
		if err := rep.record(name, src.NumApps()*len(figures.Fig10Schemes), func() (map[string]float64, error) {
			_, avg, err := figures.Fig10(src)
			if err != nil {
				return nil, err
			}
			m := avgMetrics(avg)
			mu.Lock()
			m["exec_ns_total"] = float64(execTotal)
			mu.Unlock()
			return m, nil
		}); err != nil {
			return err
		}
	}
	// Host scaling summary: shard:1 vs shard:8 wall time plus the host
	// core count — the honest context for the scaling curve (a 1-core
	// host cannot show a speedup however well the engine shards).
	var shard1MS, shard8MS float64
	for _, f := range rep.Figures {
		switch f.Name {
		case "shard:1":
			shard1MS = f.WallMS
		case "shard:8":
			shard8MS = f.WallMS
		}
	}
	if err := rep.record("shard_speedup", 0, func() (map[string]float64, error) {
		m := map[string]float64{
			"shard1_ms":  shard1MS,
			"shard8_ms":  shard8MS,
			"host_cores": float64(runtime.NumCPU()),
		}
		if shard8MS > 0 {
			m["speedup"] = shard1MS / shard8MS
		}
		return m, nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "shard sweep: done (%d host cores; shard:1 %.0f ms vs shard:8 %.0f ms)\n",
		runtime.NumCPU(), shard1MS, shard8MS)

	// Hit-burst fast-path sweep: the quick fig10 matrix with the lane
	// off (fastpath:0 — the stepped reference) and on (fastpath:1),
	// sequential so the wall-time ratio is the lane's speedup on one
	// core. Like the shard sweep, every simulated metric must be
	// byte-identical: fastpath:0 anchors to the legacy quick_seq:fig10
	// record and fastpath:1 anchors to fastpath:0 —
	// scripts/bench_compare's -fastpath-sweep mode enforces both. The
	// wall times are the honest before/after for the closed-form burst
	// retirement.
	for _, fp := range []bool{false, true} {
		frc := suiteQuick(seed)
		frc.Parallel = 1
		frc.Fastpath = fp
		hooks(&frc)
		var mu sync.Mutex
		var execTotal uint64
		inner := frc.OnCell
		frc.OnCell = func(res sim.Result) {
			if inner != nil {
				inner(res)
			}
			mu.Lock()
			execTotal += res.ExecNS
			mu.Unlock()
		}
		name := "fastpath:0"
		if fp {
			name = "fastpath:1"
		}
		if err := rep.record(name, frc.NumApps()*len(figures.Fig10Schemes), func() (map[string]float64, error) {
			_, avg, err := figures.Fig10(frc)
			if err != nil {
				return nil, err
			}
			m := avgMetrics(avg)
			mu.Lock()
			m["exec_ns_total"] = float64(execTotal)
			mu.Unlock()
			return m, nil
		}); err != nil {
			return err
		}
	}
	var fp0MS, fp1MS float64
	for _, f := range rep.Figures {
		switch f.Name {
		case "fastpath:0":
			fp0MS = f.WallMS
		case "fastpath:1":
			fp1MS = f.WallMS
		}
	}
	if err := rep.record("fastpath_speedup", 0, func() (map[string]float64, error) {
		m := map[string]float64{"fastpath0_ms": fp0MS, "fastpath1_ms": fp1MS}
		if fp1MS > 0 {
			m["speedup"] = fp0MS / fp1MS
		}
		return m, nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "fastpath sweep: done (off %.0f ms vs on %.0f ms)\n", fp0MS, fp1MS)

	// Forked-vs-cold recovery sweep: identical trials (asserted by the
	// figures tests), so the wall-time ratio isolates the fork layer's
	// amortization of the warm-up fill. The shape mirrors the paper's
	// crash-injection runs — a long fill, then crash points scattered
	// over a short post-warm window — which is exactly where per-trial
	// cold restarts pay the fill over and over.
	rrc := suiteQuick(seed)
	rrc.Requests = 20000 // warm-up fill per trial (cold) or per sweep (forked)
	rrc.MemoryBytes = 32 << 20
	rrc.Apps = []string{"libquantum"}
	rrc.Parallel = runtime.GOMAXPROCS(0)
	rrc.Fastpath = true // fills/windows ride the hit-burst lane (byte-identical)
	hooks(&rrc)
	sweep := func(cold bool) (map[string]float64, error) {
		res, err := figures.RecoverySweep(figures.RecoverySweepConfig{
			Run:           rrc,
			Scheme:        memctrl.SchemeAGITPlus,
			Family:        sim.FamilyBonsai,
			Trials:        trials,
			ExtraPerTrial: 40,
			ColdStart:     cold,
		})
		if err != nil {
			return nil, err
		}
		_, mean, _ := res.ModeledRecoveryNS()
		m := map[string]float64{
			"trials":           float64(len(res.Trials)),
			"mean_recovery_ns": float64(mean),
		}
		// Per-phase breakdown (sum-exact across the sweep) as figure
		// metrics, and — forked sweep only, cold replays the identical
		// trials — the report-level aggregate bench_compare gates on.
		for name, ns := range res.PhaseTotals.Map() {
			m["phase_ns_"+name] = float64(ns)
		}
		if !cold {
			rep.addRecoveryPhases(&res.PhaseTotals, len(res.Trials))
		}
		return m, nil
	}
	if err := rep.record("recovery_forked", 1, func() (map[string]float64, error) { return sweep(false) }); err != nil {
		return err
	}
	if err := rep.record("recovery_cold", trials, func() (map[string]float64, error) { return sweep(true) }); err != nil {
		return err
	}

	// Attach the headline ratio as its own zero-cost entry so
	// bench_compare and EXPERIMENTS.md can quote one number.
	var forkMS, coldMS float64
	for _, f := range rep.Figures {
		switch f.Name {
		case "recovery_forked":
			forkMS = f.WallMS
		case "recovery_cold":
			coldMS = f.WallMS
		}
	}
	if err := rep.record("recovery_fork_speedup", 0, func() (map[string]float64, error) {
		m := map[string]float64{"fork_ms": forkMS, "cold_ms": coldMS}
		if forkMS > 0 {
			m["speedup"] = coldMS / forkMS
		}
		return m, nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "recovery sweep (%d trials): forked %.0f ms vs cold %.0f ms (%.1fx)\n",
		trials, forkMS, coldMS, coldMS/forkMS)
	return nil
}
