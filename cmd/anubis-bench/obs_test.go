package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"anubis/internal/figures"
	"anubis/internal/obs"
)

// tinyRun returns the smallest figure sweep worth observing: one app,
// few requests, sequential.
func tinyRun() figures.RunConfig {
	rc := figures.DefaultRunConfig()
	rc.Requests = 800
	rc.Apps = []string{"libquantum"}
	rc.Parallel = 1
	return rc
}

// TestCellWatchFeedsReportAndTelemetry drives a real (tiny) sweep
// through the CLI's cell observer and asserts both sinks: the JSON
// report carries the aggregated attribution, and the /metrics endpoint
// serves the acceptance counters (cells completed, requests simulated,
// per-component stall time) as Prometheus text.
func TestCellWatchFeedsReportAndTelemetry(t *testing.T) {
	watch := newCellWatch()
	watch.tel = obs.NewTelemetry()
	rc := tinyRun()
	rc.OnCell = watch.observe
	if _, err := figures.Fig7(rc); err != nil {
		t.Fatal(err)
	}

	rep := newReport(1, rc.Requests, rc.MemoryBytes, rc.Seed, rc.Apps)
	watch.finish(rep)
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	if rep.Attribution == nil || rep.Attribution.Total() == 0 {
		t.Fatalf("report attribution missing: %+v", rep.Attribution)
	}
	if rep.RequestsSimulated != uint64(rc.Requests) || rep.CellsWithAttribute != 1 {
		t.Fatalf("aggregates wrong: reqs=%d cells=%d", rep.RequestsSimulated, rep.CellsWithAttribute)
	}
	// The report must survive a JSON round trip with named components.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"attribution_ns"`)) || !bytes.Contains(data, []byte(`"crypto"`)) {
		t.Fatalf("serialized report lacks named attribution: %s", data)
	}

	rec := httptest.NewRecorder()
	watch.tel.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"anubis_cells_completed_total 1",
		"anubis_requests_simulated_total 800",
		`anubis_stall_ns_total{component="crypto"}`,
		`anubis_stall_ns_total{component="cpu_gap"}`,
		"anubis_cell_exec_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestTraceEventsOutputValid runs a traced sweep and validates the
// -trace-events artifact end to end: parseable as a JSON array of
// Chrome trace events, with per-cell thread metadata, request slices
// carrying per-component attribution args, and microsecond timestamps.
func TestTraceEventsOutputValid(t *testing.T) {
	tracer := obs.NewTracer(8)
	rc := tinyRun()
	rc.Trace = tracer
	if _, err := figures.Fig7(rc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	sawMeta, sawRequest := false, false
	for i, e := range events {
		ph, _ := e["ph"].(string)
		switch ph {
		case "M":
			sawMeta = true
			name, _ := e["args"].(map[string]any)["name"].(string)
			if !strings.Contains(name, "bonsai/writeback/") {
				t.Fatalf("event %d: thread name %q lacks family/scheme/app", i, name)
			}
		case "X", "i":
			if ts, ok := e["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("event %d: bad ts %v", i, e["ts"])
			}
			if e["cat"] == "request" {
				sawRequest = true
				args, _ := e["args"].(map[string]any)
				if _, hasGap := args["cpu_gap_ns"]; hasGap {
					t.Fatalf("event %d: cpu gap leaked into request args", i)
				}
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
	}
	if !sawMeta || !sawRequest {
		t.Fatalf("trace lacks metadata (%v) or request (%v) events", sawMeta, sawRequest)
	}
}

// TestObservedSweepIsByteIdentical is the zero-interference acceptance
// check at the figure level: an observed run (cell observer + tracer)
// must produce exactly the rows an unobserved run produces.
func TestObservedSweepIsByteIdentical(t *testing.T) {
	plainRC := tinyRun()
	plain, err := figures.Fig7(plainRC)
	if err != nil {
		t.Fatal(err)
	}
	watch := newCellWatch()
	obsRC := tinyRun()
	obsRC.OnCell = watch.observe
	obsRC.Trace = obs.NewTracer(4)
	observed, err := figures.Fig7(obsRC)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Fatalf("observation changed figure rows:\nplain:    %s\nobserved: %s", a, b)
	}
}
