// Command anubis-fuzz drives the differential crash-injection fuzzer
// (internal/crashfuzz) outside the go-test harness: seeded random
// schedules across workload profiles, controller schemes, crash points,
// relaxed-persistence crash models, and post-crash media faults.
//
// A failing schedule is auto-shrunk to a minimal repro and printed as a
// single-line replay token; re-run it with:
//
//	anubis-fuzz -replay 'v1 profile=… combo=… model=… …'
//
// Exit status is non-zero iff a violation was found.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"anubis/internal/crashfuzz"
	"anubis/internal/nvm"
	"anubis/internal/obs"
)

func main() {
	var (
		trials = flag.Int("trials", 500, "number of random schedules to execute")
		seed   = flag.Int64("seed", 99, "master seed: schedule stream and trace seed")
		scheme = flag.String("scheme", "all", "restrict to one combo (e.g. bonsai/agit-plus, sgx/asit) or 'all'")
		model  = flag.String("model", "all", "restrict to one crash model (full-adr, partial-drain, torn-block) or 'all'")
		replay = flag.String("replay", "", "replay a single schedule token (skips random generation)")
		shard  = flag.Int("shard", -1,
			"force every trial's warm fill through the sharded engine at this worker count (0 = legacy engine; -1 = let schedules draw it randomly)")
		fastpath = flag.Int("fastpath", -1,
			"force every trial's warm fill's hit-burst fast path: 1 = on, 0 = stepped engine, -1 = let schedules draw it randomly")
		verbose = flag.Bool("v", false,
			"print every schedule as it runs and a campaign summary (per-trial wall-time histogram, trial/violation counters by policy class and crash model)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live campaign telemetry on this address (/metrics Prometheus text, /vars JSON)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: anubis-fuzz [-trials N] [-seed S] [-scheme combo] [-model m] [-replay token]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\ncombos: %s\nmodels: %s\n",
			comboNames(), modelNames())
	}
	flag.Parse()

	r := crashfuzz.NewRunner()

	camp := newCampaign()
	if *metricsAddr != "" {
		tel := obs.NewTelemetry()
		msrv, err := obs.Serve(*metricsAddr, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anubis-fuzz:", err)
			os.Exit(2)
		}
		defer msrv.Close()
		camp.tel = tel
		bound := msrv.Addr()
		fmt.Printf("telemetry: http://%s/metrics (Prometheus), http://%s/vars (JSON)\n", bound, bound)
	}

	if *replay != "" {
		s, err := crashfuzz.ParseSchedule(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("replaying: %s\n", s)
		if v := r.RunTrial(s); v != nil {
			report(r, v, false) // already minimal by convention; don't re-shrink a replay
			os.Exit(1)
		}
		fmt.Println("PASS: no violation")
		return
	}

	var comboFilter *crashfuzz.Combo
	if *scheme != "all" {
		c, ok := crashfuzz.ComboByName(*scheme)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown combo %q (want one of: %s)\n", *scheme, comboNames())
			os.Exit(2)
		}
		comboFilter = &c
	}
	var modelFilter *nvm.CrashModel
	if *model != "all" {
		m, ok := nvm.ParseCrashModel(*model)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown crash model %q (want one of: %s)\n", *model, modelNames())
			os.Exit(2)
		}
		modelFilter = &m
	}

	rng := rand.New(rand.NewSource(*seed))
	violations := 0
	for i := 0; i < *trials; i++ {
		s := crashfuzz.RandomSchedule(rng, *seed)
		if comboFilter != nil {
			s.Combo = *comboFilter
		}
		if modelFilter != nil {
			s.Model = *modelFilter
		}
		if *shard >= 0 {
			s.Shard = *shard
		}
		if *fastpath >= 0 {
			s.Fastpath = *fastpath
		}
		if *verbose {
			fmt.Printf("trial %4d: %s\n", i, s)
		}
		start := time.Now()
		v := r.RunTrial(s)
		camp.trial(s, time.Since(start), v)
		if v != nil {
			violations++
			fmt.Printf("\ntrial %d FAILED\n", i)
			report(r, v, true)
			break // first violation ends the run: fix, then re-fuzz
		}
	}
	if *verbose {
		camp.summarize(os.Stdout)
	}
	if violations > 0 {
		os.Exit(1)
	}
	fmt.Printf("PASS: %d trials, 0 violations, 0 panics (seed %d, scheme %s, model %s)\n",
		*trials, *seed, *scheme, *model)
}

// campaign aggregates fuzz-campaign observability: a per-trial
// wall-time histogram plus trial and violation counters keyed by
// recovery-policy class and crash model. The local registry backs the
// -v summary; when -metrics-addr is set the same updates are mirrored
// to the live telemetry registry under the mutex.
type campaign struct {
	reg   *obs.Registry
	tel   *obs.Telemetry
	start time.Time
}

func newCampaign() *campaign {
	return &campaign{reg: obs.NewRegistry(), start: time.Now()}
}

// trial records one completed trial (v == nil means it passed).
func (c *campaign) trial(s crashfuzz.Schedule, wall time.Duration, v *crashfuzz.Violation) {
	rec := func(r *obs.Registry) {
		policy, model := string(crashfuzz.PolicyOf(s.Combo)), s.Model.String()
		r.Counter(obs.Label("anubis_fuzz_trials_total", "policy", policy, "model", model), 1)
		r.Observe("anubis_fuzz_trial_wall_us", uint64(wall.Microseconds()))
		if v != nil {
			r.Counter(obs.Label("anubis_fuzz_violations_total",
				"phase", string(v.Phase), "policy", policy, "model", model), 1)
		}
	}
	rec(c.reg)
	if c.tel != nil {
		c.tel.Update(rec)
	}
}

// summarize prints the -v campaign report: trial wall-time percentiles
// and the per-class counters, in deterministic order.
func (c *campaign) summarize(w *os.File) {
	h := c.reg.Histogram("anubis_fuzz_trial_wall_us")
	if h == nil || h.Count == 0 {
		return
	}
	fmt.Fprintf(w, "\ncampaign summary (%d trials, %.2fs wall)\n", h.Count, time.Since(c.start).Seconds())
	fmt.Fprintf(w, "  per-trial wall time: mean=%.0fµs p50=%dµs p90=%dµs p99=%dµs max=%dµs\n",
		h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max)
	fmt.Fprintf(w, "  distribution: %s\n", h)
	snap := c.reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, "anubis_fuzz_trials_total") ||
			strings.HasPrefix(name, "anubis_fuzz_violations_total") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintln(w, "  trials by policy class and crash model:")
	for _, name := range names {
		fmt.Fprintf(w, "    %-72s %6.0f\n", name, snap[name])
	}
}

// report prints a violation and, when asked, shrinks it to the minimal
// reproducing schedule first.
func report(r *crashfuzz.Runner, v *crashfuzz.Violation, shrink bool) {
	fmt.Printf("%v\n", v)
	if !shrink {
		return
	}
	min, mv := r.Shrink(v.Schedule)
	if mv == nil {
		fmt.Println("(shrink: failure did not reproduce; original schedule above)")
		return
	}
	fmt.Printf("\nshrunk to minimal repro (%s phase: %s)\n", mv.Phase, firstLine(mv.Msg))
	fmt.Printf("replay with:\n  anubis-fuzz -replay '%s'\n", min)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func comboNames() string {
	names := make([]string, 0, len(crashfuzz.Combos()))
	for _, c := range crashfuzz.Combos() {
		names = append(names, c.String())
	}
	return strings.Join(names, " ")
}

func modelNames() string {
	names := make([]string, 0, 3)
	for _, m := range nvm.CrashModels() {
		names = append(names, m.String())
	}
	return strings.Join(names, " ")
}
