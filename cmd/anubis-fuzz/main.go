// Command anubis-fuzz drives the differential crash-injection fuzzer
// (internal/crashfuzz) outside the go-test harness: seeded random
// schedules across workload profiles, controller schemes, crash points,
// relaxed-persistence crash models, and post-crash media faults.
//
// A failing schedule is auto-shrunk to a minimal repro and printed as a
// single-line replay token; re-run it with:
//
//	anubis-fuzz -replay 'v1 profile=… combo=… model=… …'
//
// Exit status is non-zero iff a violation was found.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"anubis/internal/crashfuzz"
	"anubis/internal/nvm"
)

func main() {
	var (
		trials  = flag.Int("trials", 500, "number of random schedules to execute")
		seed    = flag.Int64("seed", 99, "master seed: schedule stream and trace seed")
		scheme  = flag.String("scheme", "all", "restrict to one combo (e.g. bonsai/agit-plus, sgx/asit) or 'all'")
		model   = flag.String("model", "all", "restrict to one crash model (full-adr, partial-drain, torn-block) or 'all'")
		replay  = flag.String("replay", "", "replay a single schedule token (skips random generation)")
		verbose = flag.Bool("v", false, "print every schedule as it runs")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: anubis-fuzz [-trials N] [-seed S] [-scheme combo] [-model m] [-replay token]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\ncombos: %s\nmodels: %s\n",
			comboNames(), modelNames())
	}
	flag.Parse()

	r := crashfuzz.NewRunner()

	if *replay != "" {
		s, err := crashfuzz.ParseSchedule(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("replaying: %s\n", s)
		if v := r.RunTrial(s); v != nil {
			report(r, v, false) // already minimal by convention; don't re-shrink a replay
			os.Exit(1)
		}
		fmt.Println("PASS: no violation")
		return
	}

	var comboFilter *crashfuzz.Combo
	if *scheme != "all" {
		c, ok := crashfuzz.ComboByName(*scheme)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown combo %q (want one of: %s)\n", *scheme, comboNames())
			os.Exit(2)
		}
		comboFilter = &c
	}
	var modelFilter *nvm.CrashModel
	if *model != "all" {
		m, ok := nvm.ParseCrashModel(*model)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown crash model %q (want one of: %s)\n", *model, modelNames())
			os.Exit(2)
		}
		modelFilter = &m
	}

	rng := rand.New(rand.NewSource(*seed))
	violations := 0
	for i := 0; i < *trials; i++ {
		s := crashfuzz.RandomSchedule(rng, *seed)
		if comboFilter != nil {
			s.Combo = *comboFilter
		}
		if modelFilter != nil {
			s.Model = *modelFilter
		}
		if *verbose {
			fmt.Printf("trial %4d: %s\n", i, s)
		}
		if v := r.RunTrial(s); v != nil {
			violations++
			fmt.Printf("\ntrial %d FAILED\n", i)
			report(r, v, true)
			break // first violation ends the run: fix, then re-fuzz
		}
	}
	if violations > 0 {
		os.Exit(1)
	}
	fmt.Printf("PASS: %d trials, 0 violations, 0 panics (seed %d, scheme %s, model %s)\n",
		*trials, *seed, *scheme, *model)
}

// report prints a violation and, when asked, shrinks it to the minimal
// reproducing schedule first.
func report(r *crashfuzz.Runner, v *crashfuzz.Violation, shrink bool) {
	fmt.Printf("%v\n", v)
	if !shrink {
		return
	}
	min, mv := r.Shrink(v.Schedule)
	if mv == nil {
		fmt.Println("(shrink: failure did not reproduce; original schedule above)")
		return
	}
	fmt.Printf("\nshrunk to minimal repro (%s phase: %s)\n", mv.Phase, firstLine(mv.Msg))
	fmt.Printf("replay with:\n  anubis-fuzz -replay '%s'\n", min)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func comboNames() string {
	names := make([]string, 0, len(crashfuzz.Combos()))
	for _, c := range crashfuzz.Combos() {
		names = append(names, c.String())
	}
	return strings.Join(names, " ")
}

func modelNames() string {
	names := make([]string, 0, 3)
	for _, m := range nvm.CrashModels() {
		names = append(names, m.String())
	}
	return strings.Join(names, " ")
}
