// anubis-serve: a long-running multi-tenant secure-memory service.
//
// Each tenant is an independent secure NVM (one controller + device)
// created, written, forked, crashed, recovered, and audited over a
// REST-ish HTTP/JSON API — the paper's "in-memory database under live
// traffic" scenario as an actual server. Admission control sheds load
// (429 + Retry-After) on the per-tenant WPQ back-pressure signal, the
// per-tenant queue depth, and a global in-flight cap; per-tenant and
// aggregate metrics stream from -metrics-addr as Prometheus text.
//
// Run:
//
//	anubis-serve -addr 127.0.0.1:8080 -metrics-addr 127.0.0.1:9090
//
// then drive it with the kvstore example's HTTP mode:
//
//	go run ./examples/kvstore -addr 127.0.0.1:8080 -tenant alice
//
// Graceful shutdown (SIGINT/SIGTERM) stops admission, drains every
// tenant worker, flushes all metadata, and — with -state-dir — saves
// each tenant's NVM image plus a manifest so the next start reattaches
// every tenant through the scheme's recovery path.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"anubis/internal/obs"
	"anubis/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "API listen address")
		metricsAddr = flag.String("metrics-addr", "", "serve live telemetry on this address (/metrics Prometheus text, /vars JSON)")
		stateDir    = flag.String("state-dir", "", "save tenant NVM images here on shutdown and reattach them on start")
		maxTenants  = flag.Int("max-tenants", 64, "tenant-count quota")
		maxBytes    = flag.Uint64("max-tenant-bytes", 64<<20, "per-tenant protected-capacity quota (bytes)")
		queueDepth  = flag.Int("queue-depth", 64, "per-tenant pending-request queue bound")
		maxInflight = flag.Int("max-inflight", 256, "global in-flight request cap")
		events      = flag.Int("events", obs.DefaultRecorderCap,
			"flight-recorder ring capacity (last N events on /debug/events; dumped to state-dir/events.jsonl on shutdown; 0 disables)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "anubis-serve:", err)
		os.Exit(1)
	}

	var rec *obs.Recorder
	if *events > 0 {
		rec = obs.NewRecorder(*events)
	}
	s := serve.New(serve.Config{
		MaxTenants:         *maxTenants,
		MaxBlocksPerTenant: *maxBytes / 64,
		QueueDepth:         *queueDepth,
		MaxInflight:        *maxInflight,
		Recorder:           rec,
	})
	if *stateDir != "" {
		if _, err := os.Stat(filepath.Join(*stateDir, "manifest.json")); err == nil {
			if err := s.LoadState(*stateDir); err != nil {
				fail(err)
			}
			fmt.Printf("reattached %d tenants from %s (recovery ran per tenant)\n",
				len(s.Tenants()), *stateDir)
		}
	}

	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, s.Telemetry())
		if err != nil {
			fail(err)
		}
		defer msrv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", msrv.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("anubis-serve: listening on %s (max %d tenants, %d blocks each)\n",
		ln.Addr(), *maxTenants, *maxBytes/64)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("anubis-serve: %v — draining %d tenants\n", got, len(s.Tenants()))
	case err := <-errCh:
		fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "anubis-serve: http shutdown:", err)
	}
	if err := s.Shutdown(*stateDir); err != nil {
		fail(err)
	}
	dumpEvents(rec, *stateDir)
	if *stateDir != "" {
		fmt.Printf("anubis-serve: flushed and saved %s/manifest.json\n", *stateDir)
	} else {
		fmt.Println("anubis-serve: all tenants flushed")
	}
}

// dumpEvents writes the flight-recorder tail on shutdown: to
// <stateDir>/events.jsonl when state is being saved, to stderr
// otherwise — either way the last thing the server did survives the
// process.
func dumpEvents(rec *obs.Recorder, stateDir string) {
	if !rec.Enabled() || rec.Total() == 0 {
		return
	}
	if stateDir == "" {
		fmt.Fprintf(os.Stderr, "anubis-serve: flight recorder tail (%d events total):\n", rec.Total())
		_ = rec.WriteJSONL(os.Stderr)
		return
	}
	path := filepath.Join(stateDir, "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anubis-serve: event dump:", err)
		return
	}
	defer f.Close()
	if err := rec.WriteJSONL(f); err != nil {
		fmt.Fprintln(os.Stderr, "anubis-serve: event dump:", err)
		return
	}
	fmt.Printf("anubis-serve: dumped flight recorder to %s (%d events total)\n", path, rec.Total())
}
