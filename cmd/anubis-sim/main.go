// Command anubis-sim runs one secure-memory simulation: a workload
// trace through a controller of the chosen scheme, printing execution
// time and traffic statistics.
//
// Usage:
//
//	anubis-sim -scheme agit-plus -app libquantum -n 100000
//	anubis-sim -scheme asit -app mcf -mem 268435456
package main

import (
	"flag"
	"fmt"
	"os"

	"anubis/internal/memctrl"
	"anubis/internal/sim"
	"anubis/internal/trace"
)

func schemeByName(name string) (memctrl.Scheme, sim.Family, bool) {
	switch name {
	case "writeback":
		return memctrl.SchemeWriteBack, sim.FamilyBonsai, true
	case "writeback-sgx":
		return memctrl.SchemeWriteBack, sim.FamilySGX, true
	case "strict":
		return memctrl.SchemeStrict, sim.FamilyBonsai, true
	case "strict-sgx":
		return memctrl.SchemeStrict, sim.FamilySGX, true
	case "osiris":
		return memctrl.SchemeOsiris, sim.FamilyBonsai, true
	case "osiris-sgx":
		return memctrl.SchemeOsiris, sim.FamilySGX, true
	case "agit-read":
		return memctrl.SchemeAGITRead, sim.FamilyBonsai, true
	case "agit-plus":
		return memctrl.SchemeAGITPlus, sim.FamilyBonsai, true
	case "asit":
		return memctrl.SchemeASIT, sim.FamilySGX, true
	case "selective":
		return memctrl.SchemeSelective, sim.FamilyBonsai, true
	case "triad":
		return memctrl.SchemeTriad, sim.FamilyBonsai, true
	}
	return 0, 0, false
}

func main() {
	var (
		schemeName = flag.String("scheme", "agit-plus", "writeback[-sgx] | strict[-sgx] | osiris[-sgx] | agit-read | agit-plus | asit | selective | triad")
		app        = flag.String("app", "milc", "workload profile (SPEC 2006 name)")
		n          = flag.Int("n", 50000, "number of memory requests")
		mem        = flag.Uint64("mem", 256<<20, "memory size in bytes")
		seed       = flag.Int64("seed", 1, "trace seed")
		baseline   = flag.Bool("baseline", false, "also run write-back and print normalized time")
	)
	flag.Parse()

	scheme, family, ok := schemeByName(*schemeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "anubis-sim: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	prof, ok := trace.ByName(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "anubis-sim: unknown app %q (have:", *app)
		for _, p := range trace.SPEC2006() {
			fmt.Fprintf(os.Stderr, " %s", p.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}

	cfg := memctrl.DefaultConfig(scheme)
	cfg.MemoryBytes = *mem

	run := func(s memctrl.Scheme) sim.Result {
		c := cfg
		c.Scheme = s
		ctrl, err := sim.NewController(family, c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anubis-sim:", err)
			os.Exit(1)
		}
		res, err := sim.Run(ctrl, trace.NewGenerator(prof, *seed), *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anubis-sim:", err)
			os.Exit(1)
		}
		return res
	}

	res := run(scheme)
	st := res.Stats
	fmt.Printf("workload        %s (%d requests, %.0f%% writes)\n", prof.Name, *n, 100*prof.WriteFrac)
	fmt.Printf("scheme          %s (%s tree)\n", scheme, family)
	fmt.Printf("exec time       %.3f ms\n", float64(res.ExecNS)/1e6)
	fmt.Printf("nvm reads       %d\n", st.NVM.Reads)
	fmt.Printf("nvm writes      %d (%.2f per write request)\n", st.NVM.Writes, res.WritesPerRequest())
	fmt.Printf("shadow writes   %d\n", st.ShadowWrites)
	fmt.Printf("stop-loss       %d\n", st.StopLossWrites)
	fmt.Printf("wpq stalls      %.3f ms\n", float64(st.NVM.WPQStallNS)/1e6)
	fmt.Printf("drain stalls    %.3f ms\n", float64(st.NVM.DrainStallNS)/1e6)
	fmt.Printf("read latency    %s\n", res.ReadLat.String())
	fmt.Printf("write latency   %s\n", res.WriteLat.String())
	cc := st.CounterCache
	if cc.Hits+cc.Misses > 0 {
		fmt.Printf("counter cache   %.1f%% hit, %d evictions (%.0f%% clean)\n",
			100*float64(cc.Hits)/float64(cc.Hits+cc.Misses), cc.Evictions, 100*res.CleanEvictionFrac())
	}
	tc := st.TreeCache
	if tc.Hits+tc.Misses > 0 {
		fmt.Printf("tree/meta cache %.1f%% hit, %d evictions\n",
			100*float64(tc.Hits)/float64(tc.Hits+tc.Misses), tc.Evictions)
	}
	if *baseline {
		base := run(memctrl.SchemeWriteBack)
		fmt.Printf("normalized      %.3f (vs write-back %.3f ms)\n",
			res.Normalized(base), float64(base.ExecNS)/1e6)
	}
}
