// Command anubis-fsck audits a secure NVM image: every data block,
// counter block, and integrity tree node is verified against the
// on-chip roots — an fsck for secure memory.
//
// It can also create demo images (clean or deliberately corrupted):
//
//	anubis-fsck -create img.anvm                # build a clean image
//	anubis-fsck -create img.anvm -corrupt data  # ...with an injected fault
//	anubis-fsck img.anvm                        # audit it
//
// The scheme and memory size must match the image's creation
// parameters (like any real controller reattaching to a DIMM).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"anubis"
)

func main() {
	var (
		create  = flag.String("create", "", "create a demo image at this path instead of auditing")
		corrupt = flag.String("corrupt", "", "with -create: inject a fault (data | counter)")
		scheme  = flag.String("scheme", "agit-plus", "agit-plus | agit-read | asit | strict | osiris | selective")
		mem     = flag.Uint64("mem", 8<<20, "memory size in bytes")
		writes  = flag.Int("w", 2000, "writes when creating a demo image")
		verbose = flag.Bool("v", false, "print the per-phase recovery-time breakdown after reattach")
		jsonOut = flag.Bool("json", false, "emit the verdict as one JSON object instead of text")
	)
	flag.Parse()

	schemes := map[string]anubis.Scheme{
		"writeback": anubis.WriteBack, "strict": anubis.Strict, "osiris": anubis.Osiris,
		"agit-read": anubis.AGITRead, "agit-plus": anubis.AGITPlus, "asit": anubis.ASIT,
		"selective": anubis.Selective,
	}
	s, ok := schemes[*scheme]
	if !ok {
		fmt.Fprintf(os.Stderr, "anubis-fsck: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	cfg := anubis.Config{Scheme: s, MemoryBytes: *mem}

	if *create != "" {
		if err := createImage(cfg, *create, *corrupt, *writes); err != nil {
			fmt.Fprintln(os.Stderr, "anubis-fsck:", err)
			os.Exit(1)
		}
		fmt.Printf("image written to %s (%s, %d MB, %d writes", *create, s, *mem>>20, *writes)
		if *corrupt != "" {
			fmt.Printf(", %s fault injected", *corrupt)
		}
		fmt.Println(")")
		return
	}

	path := flag.Arg(0)
	if path == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anubis-fsck:", err)
		os.Exit(1)
	}
	defer f.Close()

	sys, rec, err := anubis.OpenImage(cfg, f)
	if err != nil {
		// A recovery failure IS a verdict: the image cannot be brought
		// to a verified state (tampering or unrecoverable crash state).
		if *jsonOut {
			emitJSON(fsckVerdict{Verdict: "corrupt", RecoveryError: err.Error()})
		} else {
			fmt.Printf("image is CORRUPT: recovery failed: %v\n", err)
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("recovered: %d entries scanned, %d counters fixed, %d nodes rebuilt (%s modeled)\n",
			rec.EntriesScanned, rec.CountersFixed, rec.NodesRebuilt, anubis.FormatDuration(rec.ModeledNS))
		if *verbose {
			printPhases(rec)
		}
	}

	rep, err := sys.Audit()
	if err != nil {
		fmt.Fprintln(os.Stderr, "anubis-fsck:", err)
		os.Exit(1)
	}
	if *jsonOut {
		v := fsckVerdict{
			Verdict: "clean", Recovery: &rec, Audit: &rep,
		}
		if !rep.OK() {
			v.Verdict = "corrupt"
		}
		emitJSON(v)
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("audited: %d data blocks, %d counter blocks, %d tree nodes\n",
		rep.DataBlocks, rep.CounterBlocks, rep.TreeNodes)
	if rep.OK() {
		fmt.Println("image is CLEAN ✓")
		return
	}
	fmt.Printf("image is CORRUPT: %d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("  -", v)
	}
	os.Exit(1)
}

// fsckVerdict is the -json output shape.
type fsckVerdict struct {
	Verdict       string                 `json:"verdict"` // clean | corrupt
	RecoveryError string                 `json:"recovery_error,omitempty"`
	Recovery      *anubis.RecoveryReport `json:"recovery,omitempty"`
	Audit         *anubis.AuditReport    `json:"audit,omitempty"`
}

func emitJSON(v fsckVerdict) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// printPhases renders the reattach recovery's non-zero phases; the
// values sum exactly to the modeled recovery time (DESIGN.md §16).
func printPhases(rec anubis.RecoveryReport) {
	if rec.ModeledNS == 0 {
		return
	}
	for _, name := range anubis.RecoveryPhases() {
		v := rec.Phases[name]
		if v == 0 {
			continue
		}
		fmt.Printf("  %-22s %12s  %5.1f%%\n",
			name, anubis.FormatDuration(v), 100*float64(v)/float64(rec.ModeledNS))
	}
}

func createImage(cfg anubis.Config, path, corrupt string, writes int) error {
	sys, err := anubis.New(cfg)
	if err != nil {
		return err
	}
	for i := 0; i < writes; i++ {
		addr := uint64(i*37) % sys.NumBlocks()
		if err := sys.WriteBlock(addr, []byte(fmt.Sprintf("record %d", i))); err != nil {
			return err
		}
	}
	sys.Flush()
	switch corrupt {
	case "":
	case "data":
		sys.TamperData(37%sys.NumBlocks(), 3, 0x40)
	case "counter":
		sys.TamperCounter(0, 10, 0x02)
	default:
		return fmt.Errorf("unknown corruption kind %q", corrupt)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sys.SaveImage(f)
}
