#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the multi-tenant service.
#
# Builds anubis-serve and the kvstore client, then exercises the whole
# acceptance scenario against a real server process:
#
#   1. 8 tenants run the kvstore workload concurrently; one of them
#      (t3) power-fails mid-workload via the API and recovers
#      in-process while the other 7 keep serving.
#   2. A 9th tenant create is shed with 429 (tenant quota), and a pure
#      write burst trips WPQ back-pressure with 429 + Retry-After.
#   3. Both shed families and the in-process recovery show up in
#      /metrics.
#   4. The dashboard (/dash), its JSON feed, and the flight recorder
#      (/debug/events) serve live observability for all of the above.
#   5. SIGTERM flushes and saves every tenant (dumping the event log to
#      the state dir); a restarted server reattaches all 8 through
#      recovery and every tenant audits clean.
#
# Ports are overridable for parallel CI runs:
#   SERVE_SMOKE_ADDR=127.0.0.1:18080 SERVE_SMOKE_METRICS=127.0.0.1:19090
# Set SERVE_SMOKE_ARTIFACTS to a directory to keep the dashboard HTML
# snapshot and the shutdown event-log dump (CI uploads them).
set -euo pipefail
cd "$(dirname "$0")/.."

API=${SERVE_SMOKE_ADDR:-127.0.0.1:18080}
MET=${SERVE_SMOKE_METRICS:-127.0.0.1:19090}
TMP=$(mktemp -d)
SRV_PID=
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
# EXIT covers normal bash termination; INT/TERM make an interrupted CI
# run (or a ^C at the terminal) reap the server and the temp state dir
# too instead of leaking them.
trap cleanup EXIT INT TERM

go build -o "$TMP/anubis-serve" ./cmd/anubis-serve
go build -o "$TMP/kvstore" ./examples/kvstore

start_server() {
  # -events 65536: the 8×400-request workload generates ~10k events, so
  # the default 4096-entry ring would have rotated t3's mid-workload
  # crash/recover out before step 4 reads the tail.
  "$TMP/anubis-serve" -addr "$API" -metrics-addr "$MET" \
    -state-dir "$TMP/state" -max-tenants 8 -events 65536 >>"$TMP/serve.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$API/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: server never became healthy" >&2
  cat "$TMP/serve.log" >&2
  exit 1
}
start_server

# --- 1: 8 concurrent tenants, one mid-workload crash ------------------------
pids=()
for i in $(seq 0 7); do
  crash=false
  [ "$i" -eq 3 ] && crash=true
  "$TMP/kvstore" -addr "$API" -tenant "t$i" -n 400 -mem 1048576 \
    -crash=$crash >"$TMP/client$i.log" 2>&1 &
  pids+=($!)
done
fail=0
for i in $(seq 0 7); do
  if ! wait "${pids[$i]}"; then
    echo "FAIL: client t$i:" >&2
    cat "$TMP/client$i.log" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1
grep -q "recovered" "$TMP/client3.log" || {
  echo "FAIL: t3 never crashed+recovered mid-workload" >&2
  cat "$TMP/client3.log" >&2
  exit 1
}

# --- 2: quota and back-pressure sheds ---------------------------------------
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$API/t/t8")
[ "$code" = 429 ] || { echo "FAIL: 9th tenant create returned $code, want 429" >&2; exit 1; }

burst429=0
for i in $(seq 1 300); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT \
    --data-binary "burst$i" "http://$API/t/t0/block/$((i % 128))")
  case "$code" in
  200) ;;
  429) burst429=1; break ;;
  *) echo "FAIL: burst write $i returned $code" >&2; exit 1 ;;
  esac
done
[ "$burst429" = 1 ] || { echo "FAIL: 300-write burst never shed with 429" >&2; exit 1; }

# --- 3: sheds and recoveries are accounted in /metrics ----------------------
metrics=$(curl -fsS "http://$MET/metrics")
echo "$metrics" | grep -q 'anubis_serve_tenant_shed_total{tenant="t8",reason="tenant_quota"}' ||
  { echo "FAIL: tenant_quota shed not in /metrics" >&2; exit 1; }
echo "$metrics" | grep -q 'anubis_serve_tenant_shed_total{tenant="t0",reason="wpq"}' ||
  { echo "FAIL: wpq shed not in /metrics" >&2; exit 1; }
echo "$metrics" | grep -q 'anubis_serve_tenant_recoveries_total{tenant="t3"}' ||
  { echo "FAIL: t3 recovery not in /metrics" >&2; exit 1; }

# --- 4: dashboard and flight recorder serve the run live --------------------
dash=$(curl -fsS "http://$MET/dash")
for marker in 'anubis dashboard' 'id="tenants"' 'id="phases"' 'id="events"' '/debug/dash.json'; do
  echo "$dash" | grep -qF "$marker" ||
    { echo "FAIL: /dash missing marker $marker" >&2; exit 1; }
done
curl -fsS "http://$MET/debug/dash.json" |
  python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["counters"] and d["recorder_total"] > 0, d.keys()' ||
  { echo "FAIL: /debug/dash.json unparseable or empty" >&2; exit 1; }
events=$(curl -fsS "http://$MET/debug/events")
# Herestrings, not `echo | grep -q`: grep -q exits at the first match,
# and under pipefail echo's resulting SIGPIPE would read as a failure.
sed -n 1p <<<"$events" | python3 -c 'import json,sys; e=json.loads(sys.stdin.read()); assert "kind" in e and "seq" in e, e' ||
  { echo "FAIL: /debug/events first line is not an event object" >&2; exit 1; }
grep -q '"kind":"recover"' <<<"$events" ||
  { echo "FAIL: t3 recovery never reached the flight recorder" >&2; exit 1; }
grep -q '"kind":"shed"' <<<"$events" ||
  { echo "FAIL: sheds never reached the flight recorder" >&2; exit 1; }
if [ -n "${SERVE_SMOKE_ARTIFACTS:-}" ]; then
  mkdir -p "$SERVE_SMOKE_ARTIFACTS"
  echo "$dash" > "$SERVE_SMOKE_ARTIFACTS/dash.html"
fi

# --- 5: graceful shutdown, restart, audit-clean reattach --------------------
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=
[ -f "$TMP/state/manifest.json" ] || { echo "FAIL: no manifest saved on shutdown" >&2; exit 1; }
[ -s "$TMP/state/events.jsonl" ] || { echo "FAIL: no event-log dump saved on shutdown" >&2; exit 1; }
if [ -n "${SERVE_SMOKE_ARTIFACTS:-}" ]; then
  cp "$TMP/state/events.jsonl" "$SERVE_SMOKE_ARTIFACTS/events.jsonl"
fi

start_server
count=$(curl -fsS "http://$API/tenants" | grep -o '"t[0-9]*"' | wc -l)
[ "$count" -eq 8 ] || { echo "FAIL: restarted server has $count tenants, want 8" >&2; exit 1; }
for i in $(seq 0 7); do
  curl -fsS -X POST "http://$API/t/t$i/audit" | grep -q '"ok":true' ||
    { echo "FAIL: tenant t$i audit unclean after restart" >&2; exit 1; }
done
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=

echo "serve smoke ✓ 8 tenants served, t3 crash-recovered mid-workload," \
  "quota+wpq sheds returned 429 and were counted, dashboard+flight" \
  "recorder live, event log dumped on SIGTERM, restart audited clean"
