// Command bench_compare diffs two anubis-bench JSON reports (see
// `make bench-json`), aligning figure entries by name and printing the
// wall-time delta for each, plus the totals. It is a reporting tool:
// by default it always exits 0, so CI can surface drift without gating
// on noisy wall-clock numbers. Pass -max-regress to turn it into a
// gate for controlled environments.
//
// Usage:
//
//	go run ./scripts/bench_compare results/BENCH_2.json results/BENCH_3.json
//	go run ./scripts/bench_compare -max-regress 25 old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// figureTiming mirrors cmd/anubis-bench's report entry (decoded
// structurally so the tool works on any report version carrying these
// fields).
type figureTiming struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Cells   int                `json:"cells"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	SchemaVersion int            `json:"schema_version"`
	Timestamp     string         `json:"timestamp"`
	GoVersion     string         `json:"go_version"`
	Parallel      int            `json:"parallel"`
	TotalWallMS   float64        `json:"total_wall_ms"`
	TotalCells    int            `json:"total_cells"`
	Figures       []figureTiming `json:"figures"`

	// Attribution (schema_version >= 2): per-component stall ledger in
	// simulated nanoseconds, summed over all cells; RequestsSimulated
	// normalizes it to ns/request for scale-independent comparison.
	Attribution       map[string]uint64 `json:"attribution_ns"`
	RequestsSimulated uint64            `json:"requests_simulated"`

	// RecoveryPhases (schema_version >= 3): per-phase recovery-time
	// ledger summed over the recovery-sweep trials; RecoveryTrials
	// normalizes it to ns/trial.
	RecoveryPhases map[string]uint64 `json:"recovery_phase_ns"`
	RecoveryTrials uint64            `json:"recovery_trials"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0,
		"fail (exit 1) if any shared figure regresses by more than this percent (0 = report only)")
	epochSweep := flag.Bool("epoch-sweep", false,
		"diff the epoch-pipeline records (epoch:1/4/16/64) of the two reports; simulated metrics are deterministic, so ANY drift at epoch:1 — against the legacy quick_seq:fig10 record or between the reports — fails (exit 1)")
	shardSweep := flag.Bool("shard-sweep", false,
		"diff the intra-trial shard records (shard:1/2/4/8); sharding is contractually metric-neutral, so ANY simulated-metric drift — shard:1 against the legacy quick_seq:fig10 anchor, shard:N against shard:1, or between the reports — fails (exit 1)")
	fastpathSweep := flag.Bool("fastpath-sweep", false,
		"diff the hit-burst fast-path records (fastpath:0/1); the lane is contractually metric-neutral, so ANY simulated-metric drift — fastpath:0 against the legacy quick_seq:fig10 anchor, fastpath:1 against fastpath:0, or between the reports — fails (exit 1)")
	exactMetrics := flag.Bool("exact-metrics", false,
		"require every metric shared by same-named figures in the two reports to be bit-identical (exit 1 on any drift); the consolidated form of the old text-diff determinism smokes (make bench-epoch/bench-shard/bench-fastpath)")
	maxAttrRegress := flag.Float64("max-attr-regress", 0,
		"fail (exit 1) if any stall component's simulated ns/request grows by more than this percent (0 = report only); simulated time is deterministic, so tight thresholds are safe")
	minAttrNS := flag.Float64("min-attr-ns", 1.0,
		"ignore attribution components below this many ns/request in both reports (relative drift on near-zero components is noise)")
	maxPhaseRegress := flag.Float64("max-recovery-phase-regress", 0,
		"fail (exit 1) if any recovery phase's simulated ns/trial grows by more than this percent (0 = report only); skipped silently when either report predates schema_version 3")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench_compare [-max-regress pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}

	oldBy := make(map[string]figureTiming, len(oldRep.Figures))
	for _, f := range oldRep.Figures {
		oldBy[f.Name] = f
	}

	fmt.Printf("old: %s (%s, parallel=%d)\n", flag.Arg(0), oldRep.Timestamp, oldRep.Parallel)
	fmt.Printf("new: %s (%s, parallel=%d)\n\n", flag.Arg(1), newRep.Timestamp, newRep.Parallel)
	fmt.Printf("  %-28s %12s %12s %9s\n", "figure", "old ms", "new ms", "delta")

	worst := 0.0
	shared := 0
	for _, nf := range newRep.Figures {
		of, ok := oldBy[nf.Name]
		if !ok {
			fmt.Printf("  %-28s %12s %12.1f      new\n", nf.Name, "-", nf.WallMS)
			continue
		}
		delete(oldBy, nf.Name)
		shared++
		delta := 0.0
		if of.WallMS > 0 {
			delta = (nf.WallMS - of.WallMS) / of.WallMS * 100
		}
		if delta > worst {
			worst = delta
		}
		fmt.Printf("  %-28s %12.1f %12.1f %+8.1f%%\n", nf.Name, of.WallMS, nf.WallMS, delta)
	}
	for name, of := range oldBy {
		fmt.Printf("  %-28s %12.1f %12s  removed\n", name, of.WallMS, "-")
	}

	fmt.Printf("\n  %-28s %12.1f %12.1f\n", "total", oldRep.TotalWallMS, newRep.TotalWallMS)

	worstAttr := compareAttribution(oldRep, newRep, *minAttrNS)
	worstPhase := compareRecoveryPhases(oldRep, newRep)

	if *epochSweep {
		if !compareEpochSweep(oldRep, newRep) {
			os.Exit(1)
		}
	}
	if *shardSweep {
		if !compareShardSweep(oldRep, newRep) {
			os.Exit(1)
		}
	}
	if *fastpathSweep {
		if !compareFastpathSweep(oldRep, newRep) {
			os.Exit(1)
		}
	}
	if *exactMetrics {
		if !compareExactMetrics(oldRep, newRep) {
			os.Exit(1)
		}
	}

	if shared == 0 && len(oldRep.Attribution) == 0 {
		fmt.Println("no shared figures; nothing to compare")
		return
	}
	failed := false
	if *maxRegress > 0 && worst > *maxRegress {
		fmt.Fprintf(os.Stderr, "bench_compare: worst wall regression %.1f%% exceeds -max-regress %.1f%%\n",
			worst, *maxRegress)
		failed = true
	}
	if *maxAttrRegress > 0 && worstAttr > *maxAttrRegress {
		fmt.Fprintf(os.Stderr, "bench_compare: worst attribution regression %.1f%% exceeds -max-attr-regress %.1f%%\n",
			worstAttr, *maxAttrRegress)
		failed = true
	}
	if *maxPhaseRegress > 0 && worstPhase > *maxPhaseRegress {
		fmt.Fprintf(os.Stderr, "bench_compare: worst recovery-phase regression %.1f%% exceeds -max-recovery-phase-regress %.1f%%\n",
			worstPhase, *maxPhaseRegress)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// epochSizes are the coalescing-window sizes the suite records.
var epochSizes = []int{1, 4, 16, 64}

// compareEpochSweep diffs the epoch-pipeline records of two reports.
// Simulated metrics (normalized averages, total simulated ns) are
// deterministic for a fixed seed, so comparisons are exact: any drift
// at epoch:1 — the window size contractually byte-identical to the
// legacy path — is a determinism violation and fails the run. Larger
// windows legitimately change simulated timing; their drift is
// reported but never gates. Returns false on failure.
func compareEpochSweep(oldRep, newRep *report,
) bool {
	byName := func(r *report) map[string]figureTiming {
		m := make(map[string]figureTiming, len(r.Figures))
		for _, f := range r.Figures {
			m[f.Name] = f
		}
		return m
	}
	oldBy, newBy := byName(oldRep), byName(newRep)

	fmt.Printf("\n  epoch-pipeline sweep (simulated metrics; exact comparison)\n")
	ok := true

	// Determinism anchor inside each report: epoch:1 must reproduce the
	// legacy quick_seq:fig10 metrics bit for bit.
	for _, side := range []struct {
		label string
		by    map[string]figureTiming
	}{{"old", oldBy}, {"new", newBy}} {
		e1, hasE1 := side.by["epoch:1"]
		legacy, hasLegacy := side.by["quick_seq:fig10"]
		if !hasE1 || !hasLegacy {
			continue
		}
		for k, lv := range legacy.Metrics {
			ev, shared := e1.Metrics[k]
			if !shared {
				continue
			}
			if ev != lv {
				fmt.Fprintf(os.Stderr, "bench_compare: %s report: epoch:1 %s = %v, legacy quick_seq:fig10 = %v (determinism drift)\n",
					side.label, k, ev, lv)
				ok = false
			}
		}
	}

	for _, e := range epochSizes {
		name := fmt.Sprintf("epoch:%d", e)
		of, oldHas := oldBy[name]
		nf, newHas := newBy[name]
		switch {
		case !oldHas && !newHas:
			continue
		case !oldHas || !newHas:
			fmt.Printf("  %-28s only in %s report\n", name, map[bool]string{true: "new", false: "old"}[newHas])
			continue
		}
		drift := false
		keys := make([]string, 0, len(nf.Metrics))
		for k := range nf.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov, shared := of.Metrics[k]
			if !shared {
				continue
			}
			if nv := nf.Metrics[k]; nv != ov {
				drift = true
				fmt.Printf("  %-28s %s: %v -> %v\n", name, k, ov, nv)
				if e == 1 {
					fmt.Fprintf(os.Stderr, "bench_compare: epoch:1 %s drifted between reports (determinism violation)\n", k)
					ok = false
				}
			}
		}
		if !drift {
			fmt.Printf("  %-28s identical\n", name)
		}
	}
	return ok
}

// shardSizes are the intra-trial shard worker counts the suite records.
var shardSizes = []int{1, 2, 4, 8}

// compareShardSweep checks the shard-sweep records of two reports.
// Sharding splits a run's content plane across host cores without
// touching the timing plane, so — unlike the epoch sweep, where larger
// windows legitimately change simulated time — EVERY shard record must
// carry identical simulated metrics. Three exact gates, any failure
// returns false:
//
//  1. anchor: shard:1 must reproduce the legacy quick_seq:fig10
//     metrics bit for bit, within each report;
//  2. neutrality: shard:{2,4,8} must equal shard:1, within each report;
//  3. stability: each shard:N record must match between the reports.
//
// Wall times are deliberately ignored — they are the host-side scaling
// curve, not a contract.
func compareShardSweep(oldRep, newRep *report) bool {
	byName := func(r *report) map[string]figureTiming {
		m := make(map[string]figureTiming, len(r.Figures))
		for _, f := range r.Figures {
			m[f.Name] = f
		}
		return m
	}
	oldBy, newBy := byName(oldRep), byName(newRep)

	fmt.Printf("\n  intra-trial shard sweep (simulated metrics; exact comparison)\n")
	ok := true

	exact := func(label, wantName string, want, got figureTiming) bool {
		clean := true
		keys := make([]string, 0, len(got.Metrics))
		for k := range got.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			wv, shared := want.Metrics[k]
			if !shared {
				continue
			}
			if gv := got.Metrics[k]; gv != wv {
				fmt.Fprintf(os.Stderr, "bench_compare: %s: %s = %v, %s = %v (shard determinism violation)\n",
					label, k, gv, wantName, wv)
				clean = false
			}
		}
		return clean
	}

	for _, side := range []struct {
		label string
		by    map[string]figureTiming
	}{{"old", oldBy}, {"new", newBy}} {
		s1, hasS1 := side.by["shard:1"]
		if !hasS1 {
			continue
		}
		if legacy, hasLegacy := side.by["quick_seq:fig10"]; hasLegacy {
			if !exact(side.label+" report: shard:1", "legacy quick_seq:fig10", legacy, s1) {
				ok = false
			}
		}
		for _, sh := range shardSizes[1:] {
			name := fmt.Sprintf("shard:%d", sh)
			sn, has := side.by[name]
			if !has {
				continue
			}
			if exact(side.label+" report: "+name, "shard:1", s1, sn) {
				fmt.Printf("  %-28s %s: identical to shard:1\n", name, side.label)
			} else {
				ok = false
			}
		}
	}

	for _, sh := range shardSizes {
		name := fmt.Sprintf("shard:%d", sh)
		of, oldHas := oldBy[name]
		nf, newHas := newBy[name]
		switch {
		case !oldHas && !newHas:
			continue
		case !oldHas || !newHas:
			fmt.Printf("  %-28s only in %s report\n", name, map[bool]string{true: "new", false: "old"}[newHas])
			continue
		}
		if !exact("cross-report "+name, "old "+name, of, nf) {
			ok = false
		}
	}
	return ok
}

// compareFastpathSweep checks the hit-burst fast-path records of two
// reports. The lane only changes host wall-clock — closed-form burst
// retirement must be byte-identical to the stepped engine on every
// simulated metric — so, mirroring the shard sweep, three exact gates
// apply, any failure returning false:
//
//  1. anchor: fastpath:0 must reproduce the legacy quick_seq:fig10
//     metrics bit for bit, within each report;
//  2. neutrality: fastpath:1 must equal fastpath:0, within each report;
//  3. stability: each fastpath:N record must match between the reports.
//
// Wall times are deliberately ignored — their ratio is the lane's
// speedup (the fastpath_speedup record), not a contract.
func compareFastpathSweep(oldRep, newRep *report) bool {
	byName := func(r *report) map[string]figureTiming {
		m := make(map[string]figureTiming, len(r.Figures))
		for _, f := range r.Figures {
			m[f.Name] = f
		}
		return m
	}
	oldBy, newBy := byName(oldRep), byName(newRep)

	fmt.Printf("\n  hit-burst fast-path sweep (simulated metrics; exact comparison)\n")
	ok := true

	exact := func(label, wantName string, want, got figureTiming) bool {
		clean := true
		keys := make([]string, 0, len(got.Metrics))
		for k := range got.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			wv, shared := want.Metrics[k]
			if !shared {
				continue
			}
			if gv := got.Metrics[k]; gv != wv {
				fmt.Fprintf(os.Stderr, "bench_compare: %s: %s = %v, %s = %v (fast-path determinism violation)\n",
					label, k, gv, wantName, wv)
				clean = false
			}
		}
		return clean
	}

	for _, side := range []struct {
		label string
		by    map[string]figureTiming
	}{{"old", oldBy}, {"new", newBy}} {
		off, hasOff := side.by["fastpath:0"]
		if !hasOff {
			continue
		}
		if legacy, hasLegacy := side.by["quick_seq:fig10"]; hasLegacy {
			if !exact(side.label+" report: fastpath:0", "legacy quick_seq:fig10", legacy, off) {
				ok = false
			}
		}
		if on, hasOn := side.by["fastpath:1"]; hasOn {
			if exact(side.label+" report: fastpath:1", "fastpath:0", off, on) {
				fmt.Printf("  %-28s %s: identical to fastpath:0\n", "fastpath:1", side.label)
			} else {
				ok = false
			}
		}
	}

	for _, name := range []string{"fastpath:0", "fastpath:1"} {
		of, oldHas := oldBy[name]
		nf, newHas := newBy[name]
		switch {
		case !oldHas && !newHas:
			continue
		case !oldHas || !newHas:
			fmt.Printf("  %-28s only in %s report\n", name, map[bool]string{true: "new", false: "old"}[newHas])
			continue
		}
		if !exact("cross-report "+name, "old "+name, of, nf) {
			ok = false
		}
	}
	return ok
}

// compareExactMetrics requires every metric shared by same-named
// figures to be bit-identical between the two reports, plus identical
// per-component attribution ledgers when both reports carry them. This
// is the consolidated replacement for the old text-diff smokes (cmp on
// results/epoch*.txt / shard*.txt): the two reports come from the same
// binary at two settings of a contractually metric-neutral knob, so
// any drift at all is a determinism violation. Returns false on drift.
func compareExactMetrics(oldRep, newRep *report) bool {
	byName := make(map[string]figureTiming, len(oldRep.Figures))
	for _, f := range oldRep.Figures {
		byName[f.Name] = f
	}
	fmt.Printf("\n  exact-metric gate (every shared metric must be bit-identical)\n")
	ok := true
	for _, nf := range newRep.Figures {
		of, has := byName[nf.Name]
		if !has {
			continue
		}
		keys := make([]string, 0, len(nf.Metrics))
		for k := range nf.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		clean := true
		for _, k := range keys {
			ov, shared := of.Metrics[k]
			if !shared {
				continue
			}
			if nv := nf.Metrics[k]; nv != ov {
				fmt.Fprintf(os.Stderr, "bench_compare: %s: %s = %v vs %v (exact-metric violation)\n",
					nf.Name, k, ov, nv)
				clean = false
			}
		}
		if clean {
			fmt.Printf("  %-28s identical\n", nf.Name)
		} else {
			ok = false
		}
	}
	if len(oldRep.Attribution) > 0 && len(newRep.Attribution) > 0 {
		if oldRep.RequestsSimulated != newRep.RequestsSimulated {
			fmt.Fprintf(os.Stderr, "bench_compare: requests_simulated %d vs %d (exact-metric violation)\n",
				oldRep.RequestsSimulated, newRep.RequestsSimulated)
			ok = false
		}
		names := make(map[string]bool, len(oldRep.Attribution)+len(newRep.Attribution))
		for n := range oldRep.Attribution {
			names[n] = true
		}
		for n := range newRep.Attribution {
			names[n] = true
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			if oldRep.Attribution[n] != newRep.Attribution[n] {
				fmt.Fprintf(os.Stderr, "bench_compare: attribution %s: %d vs %d ns (exact-metric violation)\n",
					n, oldRep.Attribution[n], newRep.Attribution[n])
				ok = false
			}
		}
	}
	return ok
}

// compareRecoveryPhases diffs the per-phase recovery-time ledgers of
// two reports, normalized to simulated ns per recovery trial, and
// returns the worst percentage increase. Reports lacking phase data
// (schema_version < 3, or runs that skipped the recovery sweep) are
// skipped silently, mirroring the attribution gate.
func compareRecoveryPhases(oldRep, newRep *report) float64 {
	if len(oldRep.RecoveryPhases) == 0 || len(newRep.RecoveryPhases) == 0 ||
		oldRep.RecoveryTrials == 0 || newRep.RecoveryTrials == 0 {
		return 0
	}
	names := make([]string, 0, len(newRep.RecoveryPhases))
	for name := range newRep.RecoveryPhases {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("\n  recovery-phase attribution (simulated ns/trial; deterministic for a fixed seed)\n")
	fmt.Printf("  %-28s %12s %12s %9s\n", "phase", "old ns/trl", "new ns/trl", "delta")
	worst := 0.0
	for _, name := range names {
		oldNS := float64(oldRep.RecoveryPhases[name]) / float64(oldRep.RecoveryTrials)
		newNS := float64(newRep.RecoveryPhases[name]) / float64(newRep.RecoveryTrials)
		if oldNS == 0 && newNS == 0 {
			continue
		}
		delta := 0.0
		switch {
		case oldNS > 0:
			delta = (newNS - oldNS) / oldNS * 100
		case newNS > 0:
			delta = 100 // phase appeared from zero
		}
		if delta > worst {
			worst = delta
		}
		fmt.Printf("  %-28s %12.1f %12.1f %+8.1f%%\n", name, oldNS, newNS, delta)
	}
	return worst
}

// compareAttribution diffs the per-component stall ledgers of two
// reports, normalized to simulated ns per request, and returns the
// worst percentage increase among components at or above floorNS in
// either report. Reports lacking attribution (schema_version < 2, or
// runs with no simulation cells) are skipped silently.
func compareAttribution(oldRep, newRep *report, floorNS float64) float64 {
	if len(oldRep.Attribution) == 0 || len(newRep.Attribution) == 0 ||
		oldRep.RequestsSimulated == 0 || newRep.RequestsSimulated == 0 {
		return 0
	}
	names := make([]string, 0, len(newRep.Attribution))
	for name := range newRep.Attribution {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("\n  stall attribution (simulated ns/request; deterministic for a fixed seed)\n")
	fmt.Printf("  %-28s %12s %12s %9s\n", "component", "old ns/req", "new ns/req", "delta")
	worst := 0.0
	for _, name := range names {
		oldNS := float64(oldRep.Attribution[name]) / float64(oldRep.RequestsSimulated)
		newNS := float64(newRep.Attribution[name]) / float64(newRep.RequestsSimulated)
		if oldNS < floorNS && newNS < floorNS {
			continue
		}
		delta := 0.0
		switch {
		case oldNS > 0:
			delta = (newNS - oldNS) / oldNS * 100
		case newNS > 0:
			delta = 100 // component appeared from zero
		}
		if delta > worst {
			worst = delta
		}
		fmt.Printf("  %-28s %12.1f %12.1f %+8.1f%%\n", name, oldNS, newNS, delta)
	}
	return worst
}
