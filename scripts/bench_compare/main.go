// Command bench_compare diffs two anubis-bench JSON reports (see
// `make bench-json`), aligning figure entries by name and printing the
// wall-time delta for each, plus the totals. It is a reporting tool:
// by default it always exits 0, so CI can surface drift without gating
// on noisy wall-clock numbers. Pass -max-regress to turn it into a
// gate for controlled environments.
//
// Usage:
//
//	go run ./scripts/bench_compare results/BENCH_2.json results/BENCH_3.json
//	go run ./scripts/bench_compare -max-regress 25 old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// figureTiming mirrors cmd/anubis-bench's report entry (decoded
// structurally so the tool works on any report version carrying these
// fields).
type figureTiming struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Cells   int                `json:"cells"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Timestamp   string         `json:"timestamp"`
	GoVersion   string         `json:"go_version"`
	Parallel    int            `json:"parallel"`
	TotalWallMS float64        `json:"total_wall_ms"`
	TotalCells  int            `json:"total_cells"`
	Figures     []figureTiming `json:"figures"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0,
		"fail (exit 1) if any shared figure regresses by more than this percent (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench_compare [-max-regress pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}

	oldBy := make(map[string]figureTiming, len(oldRep.Figures))
	for _, f := range oldRep.Figures {
		oldBy[f.Name] = f
	}

	fmt.Printf("old: %s (%s, parallel=%d)\n", flag.Arg(0), oldRep.Timestamp, oldRep.Parallel)
	fmt.Printf("new: %s (%s, parallel=%d)\n\n", flag.Arg(1), newRep.Timestamp, newRep.Parallel)
	fmt.Printf("  %-28s %12s %12s %9s\n", "figure", "old ms", "new ms", "delta")

	worst := 0.0
	shared := 0
	for _, nf := range newRep.Figures {
		of, ok := oldBy[nf.Name]
		if !ok {
			fmt.Printf("  %-28s %12s %12.1f      new\n", nf.Name, "-", nf.WallMS)
			continue
		}
		delete(oldBy, nf.Name)
		shared++
		delta := 0.0
		if of.WallMS > 0 {
			delta = (nf.WallMS - of.WallMS) / of.WallMS * 100
		}
		if delta > worst {
			worst = delta
		}
		fmt.Printf("  %-28s %12.1f %12.1f %+8.1f%%\n", nf.Name, of.WallMS, nf.WallMS, delta)
	}
	for name, of := range oldBy {
		fmt.Printf("  %-28s %12.1f %12s  removed\n", name, of.WallMS, "-")
	}

	fmt.Printf("\n  %-28s %12.1f %12.1f\n", "total", oldRep.TotalWallMS, newRep.TotalWallMS)
	if shared == 0 {
		fmt.Println("no shared figures; nothing to compare")
		return
	}
	if *maxRegress > 0 && worst > *maxRegress {
		fmt.Fprintf(os.Stderr, "bench_compare: worst regression %.1f%% exceeds -max-regress %.1f%%\n",
			worst, *maxRegress)
		os.Exit(1)
	}
}
