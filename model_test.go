package anubis

// Model-based testing: a System must behave exactly like a plain
// map[block]data under arbitrary interleavings of reads, writes,
// flushes, crashes, and recoveries — for every recoverable scheme, with
// and without the optional features (phase recovery, wear leveling).

import (
	"bytes"
	"math/rand"
	"testing"
)

type modelOp int

const (
	opWrite modelOp = iota
	opRead
	opCrashRecover
	opFlush
)

func runModelSequence(t *testing.T, cfg Config, seed int64, steps int) {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	model := map[uint64][]byte{}
	blocks := sys.NumBlocks()

	for step := 0; step < steps; step++ {
		var op modelOp
		switch r := rng.Intn(100); {
		case r < 55:
			op = opWrite
		case r < 90:
			op = opRead
		case r < 97:
			op = opCrashRecover
		default:
			op = opFlush
		}
		switch op {
		case opWrite:
			addr := uint64(rng.Intn(int(blocks)))
			data := make([]byte, BlockSize)
			rng.Read(data)
			if err := sys.WriteBlock(addr, data); err != nil {
				t.Fatalf("seed %d step %d: write %d: %v", seed, step, addr, err)
			}
			model[addr] = data
		case opRead:
			addr := uint64(rng.Intn(int(blocks)))
			got, err := sys.ReadBlock(addr)
			if err != nil {
				t.Fatalf("seed %d step %d: read %d: %v", seed, step, addr, err)
			}
			want, ok := model[addr]
			if !ok {
				want = make([]byte, BlockSize)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d step %d: block %d diverged from model", seed, step, addr)
			}
		case opCrashRecover:
			sys.Crash()
			if _, err := sys.Recover(); err != nil {
				t.Fatalf("seed %d step %d: recover: %v", seed, step, err)
			}
		case opFlush:
			sys.Flush()
		}
	}
	// Final full audit.
	for addr, want := range model {
		got, err := sys.ReadBlock(addr)
		if err != nil {
			t.Fatalf("seed %d audit: block %d: %v", seed, addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d audit: block %d diverged", seed, addr)
		}
	}
}

func modelConfig(s Scheme) Config {
	return Config{
		Scheme:            s,
		MemoryBytes:       256 << 10, // small: heavy eviction + recovery pressure
		CounterCacheBytes: 1 << 11,
		TreeCacheBytes:    1 << 11,
		MetaCacheBytes:    1 << 12,
	}
}

func TestModelAGITPlus(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		runModelSequence(t, modelConfig(AGITPlus), seed, 400)
	}
}

func TestModelAGITRead(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		runModelSequence(t, modelConfig(AGITRead), seed, 400)
	}
}

func TestModelASIT(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		runModelSequence(t, modelConfig(ASIT), seed, 400)
	}
}

func TestModelStrict(t *testing.T) {
	for _, tree := range []TreeKind{GeneralTree, SGXTree} {
		cfg := modelConfig(Strict)
		cfg.Tree = tree
		runModelSequence(t, cfg, 42, 400)
	}
}

func TestModelOsirisFullRecovery(t *testing.T) {
	runModelSequence(t, modelConfig(Osiris), 7, 300)
}

func TestModelPhaseRecovery(t *testing.T) {
	cfg := modelConfig(AGITPlus)
	cfg.PhaseRecovery = true
	for seed := int64(0); seed < 4; seed++ {
		runModelSequence(t, cfg, seed, 400)
	}
}

func TestModelWearLeveling(t *testing.T) {
	for _, s := range []Scheme{AGITPlus, ASIT} {
		cfg := modelConfig(s)
		cfg.WearLevelingPeriod = 3
		for seed := int64(0); seed < 3; seed++ {
			runModelSequence(t, cfg, seed, 400)
		}
	}
}

func TestModelEverythingOn(t *testing.T) {
	cfg := modelConfig(AGITPlus)
	cfg.PhaseRecovery = true
	cfg.WearLevelingPeriod = 2
	cfg.StopLoss = 8
	for seed := int64(0); seed < 3; seed++ {
		runModelSequence(t, cfg, seed, 500)
	}
}
