package anubis

import (
	"bytes"
	"testing"
)

func TestSaveOpenImageCleanShutdown(t *testing.T) {
	cfg := Config{Scheme: AGITPlus, MemoryBytes: 1 << 20}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := sys.WriteBlock(i*11%sys.NumBlocks(), []byte{byte(i), 0xCD}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	var buf bytes.Buffer
	if err := sys.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}

	sys2, rep, err := OpenImage(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountersFixed != 0 {
		t.Fatalf("clean image fixed %d counters", rep.CountersFixed)
	}
	for i := uint64(0); i < 200; i++ {
		got, err := sys2.ReadBlock(i * 11 % sys2.NumBlocks())
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got[1] != 0xCD {
			t.Fatalf("block %d corrupted across image", i)
		}
	}
}

func TestSaveOpenImageDirtyCrash(t *testing.T) {
	// Saving after a crash (no flush) captures the realistic power-loss
	// image: recovery on the loaded side must repair it.
	cfg := Config{Scheme: ASIT, MemoryBytes: 1 << 20,
		MetaCacheBytes: 4096}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]byte{}
	for i := uint64(0); i < 300; i++ {
		addr := i * 7 % sys.NumBlocks()
		if err := sys.WriteBlock(addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want[addr] = byte(i)
	}
	sys.Crash()
	var buf bytes.Buffer
	if err := sys.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, rep, err := OpenImage(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesScanned == 0 {
		t.Fatal("dirty image recovered without scanning shadow entries")
	}
	for addr, b := range want {
		got, err := sys2.ReadBlock(addr)
		if err != nil || got[0] != b {
			t.Fatalf("block %d after dirty image: %v", addr, err)
		}
	}
}

func TestAuditPublicAPI(t *testing.T) {
	sys, err := New(Config{Scheme: Strict, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		sys.WriteBlock(i, []byte{byte(i)})
	}
	rep, err := sys.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.DataBlocks != 100 {
		t.Fatalf("clean audit: ok=%v data=%d violations=%v", rep.OK(), rep.DataBlocks, rep.Violations)
	}
	sys.TamperData(5, 0, 0xFF)
	rep, err = sys.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed tampering")
	}
}

func TestOpenImageGarbage(t *testing.T) {
	if _, _, err := OpenImage(Config{Scheme: AGITPlus, MemoryBytes: 1 << 20},
		bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
