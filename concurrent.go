package anubis

import (
	"io"
	"sync"
)

// SafeSystem wraps a System with a mutex so multiple goroutines can
// share one secure memory. The underlying controller models a single
// memory-controller pipeline, so operations serialize — the wrapper
// provides safety, not parallel speedup (a real controller's bank
// parallelism is already modeled inside the timing engine).
type SafeSystem struct {
	mu  sync.Mutex
	sys *System
}

// NewSafe constructs a thread-safe System.
func NewSafe(cfg Config) (*SafeSystem, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SafeSystem{sys: sys}, nil
}

// Wrap makes an existing System thread-safe. The caller must stop using
// the unwrapped handle.
func Wrap(sys *System) *SafeSystem { return &SafeSystem{sys: sys} }

// ReadBlock returns the verified plaintext of block i.
func (s *SafeSystem) ReadBlock(i uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.ReadBlock(i)
}

// ReadBlockInto reads block i into dst without allocating.
func (s *SafeSystem) ReadBlockInto(i uint64, dst *[BlockSize]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.ReadBlockInto(i, dst)
}

// WriteBlock encrypts and persists block i.
func (s *SafeSystem) WriteBlock(i uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.WriteBlock(i, data)
}

// WriteBlocks applies a batch of block writes under one lock
// acquisition: the batch serializes as a unit against concurrent
// callers instead of interleaving write by write.
func (s *SafeSystem) WriteBlocks(writes []BlockWrite) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.WriteBlocks(writes)
}

// ReadRange reads n bytes at byte offset off.
func (s *SafeSystem) ReadRange(off uint64, n int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.ReadRange(off, n)
}

// WriteRange writes data at byte offset off.
func (s *SafeSystem) WriteRange(off uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.WriteRange(off, data)
}

// Flush writes back all dirty metadata.
func (s *SafeSystem) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.Flush()
}

// Fork returns an independent, thread-safe copy-on-write clone of the
// system (see System.Fork). The clone is taken under the wrapper's lock,
// so — unlike System.Fork, which must not race with operations on the
// parent — SafeSystem.Fork may be called while other goroutines are
// actively reading and writing: the fork observes a consistent point
// between their operations. The child gets its own lock; parent and
// child never contend after the fork returns.
func (s *SafeSystem) Fork() *SafeSystem {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SafeSystem{sys: s.sys.Fork()}
}

// Crash simulates a power failure.
func (s *SafeSystem) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.Crash()
}

// Recover runs the scheme's recovery algorithm.
func (s *SafeSystem) Recover() (RecoveryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Recover()
}

// Stats returns accumulated statistics.
func (s *SafeSystem) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Stats()
}

// Audit runs the whole-memory integrity check.
func (s *SafeSystem) Audit() (AuditReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Audit()
}

// NumBlocks returns the number of 64-byte blocks.
func (s *SafeSystem) NumBlocks() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.NumBlocks()
}

// Scheme returns the configured scheme. (Immutable after construction,
// but wrapped for method parity — see TestSafeSystemMethodParity.)
func (s *SafeSystem) Scheme() Scheme {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Scheme()
}

// Size returns the protected capacity in bytes.
func (s *SafeSystem) Size() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Size()
}

// PushBudget reports the free WPQ slots at the current virtual clock —
// the admission-control back-pressure signal (see System.PushBudget).
func (s *SafeSystem) PushBudget() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.PushBudget()
}

// WPQDrainNS reports the virtual time until the WPQ is fully drained.
func (s *SafeSystem) WPQDrainNS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.WPQDrainNS()
}

// AdvanceClock advances the virtual clock by ns of CPU think time.
func (s *SafeSystem) AdvanceClock(ns uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.AdvanceClock(ns)
}

// StateDigest returns the deterministic device-state digest.
func (s *SafeSystem) StateDigest() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.StateDigest()
}

// SaveImage serializes the NVM contents to w under the lock: the image
// is a consistent point between concurrent operations.
func (s *SafeSystem) SaveImage(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.SaveImage(w)
}

// CountersPerBlock returns how many data blocks one counter block
// covers.
func (s *SafeSystem) CountersPerBlock() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CountersPerBlock()
}

// TamperData flips bits in the stored ciphertext of a data block (see
// System.TamperData).
func (s *SafeSystem) TamperData(block uint64, byteIdx int, mask byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TamperData(block, byteIdx, mask)
}

// TamperCounter flips bits in a stored encryption counter block (see
// System.TamperCounter).
func (s *SafeSystem) TamperCounter(counterBlock uint64, byteIdx int, mask byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TamperCounter(counterBlock, byteIdx, mask)
}

// ReplayCounter overwrites a counter block with an earlier snapshot
// (see System.ReplayCounter).
func (s *SafeSystem) ReplayCounter(counterBlock uint64, snapshot [BlockSize]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.ReplayCounter(counterBlock, snapshot)
}

// SnapshotCounter captures the current NVM image of a counter block
// (see System.SnapshotCounter).
func (s *SafeSystem) SnapshotCounter(counterBlock uint64) [BlockSize]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.SnapshotCounter(counterBlock)
}
