GO ?= go

.PHONY: all build vet test race verify bench bench-smoke fmt clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything compiles, vets clean, and the full suite
# passes under the race detector.
verify: build vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# Reduced parallel sweep: a quick end-to-end run of the evaluation
# harness that exercises the worker pool and the JSON reporter.
bench-smoke:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -fig10 -fig11 -n 2000 \
		-apps mcf,lbm,libquantum -parallel 4 -json results/

fmt:
	gofmt -w .

clean:
	rm -rf results
