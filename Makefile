GO ?= go

.PHONY: all build vet test race verify bench bench-smoke bench-device fmt clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything compiles, vets clean, and the full suite
# passes both plainly (where the zero-alloc assertions run) and under
# the race detector (where they are skipped).
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# NVM device micro-benchmarks: paged-store reads/writes and the
# WPQ/port scheduler, including the drain-watermark read path.
bench-device:
	$(GO) test -run xxx -bench 'BenchmarkDevice' -benchmem ./internal/nvm/

# Reduced parallel sweep: a quick end-to-end run of the evaluation
# harness that exercises the worker pool and the JSON reporter.
bench-smoke:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -fig10 -fig11 -n 2000 \
		-apps mcf,lbm,libquantum -parallel 4 -json results/

fmt:
	gofmt -w .

clean:
	rm -rf results
