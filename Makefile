GO ?= go

.PHONY: all build vet test race verify bench bench-smoke bench-device bench-epoch bench-shard bench-fastpath bench-json bench-tools fuzz-tools fuzz-smoke fuzz serve-tools serve-smoke dash-smoke fmt clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything compiles, vets clean, and the full suite
# passes both plainly (where the zero-alloc assertions run) and under
# the race detector (where they are skipped). bench-tools/fuzz-tools
# are build-only smokes for the tooling — no wall-clock gate.
verify: build vet test race bench-tools fuzz-tools serve-tools dash-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

# NVM device micro-benchmarks: paged-store reads/writes and the
# WPQ/port scheduler, including the drain-watermark read path.
bench-device:
	$(GO) test -run xxx -bench 'BenchmarkDevice' -benchmem ./internal/nvm/

# Reduced parallel sweep: a quick end-to-end run of the evaluation
# harness that exercises the worker pool and the JSON reporter. The
# report lands on the gitignored smoke path — never in the checked-in
# results/BENCH_<n>.json record set (which only `make bench-json`
# regenerates, deliberately).
bench-smoke:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -fig10 -fig11 -n 2000 \
		-apps mcf,lbm,libquantum -parallel 4 -json results/smoke.json

# Determinism smokes share one shape: run the reduced fig10 sweep at
# two settings of a contractually metric-neutral knob, write both JSON
# reports, and gate with bench_compare -exact-metrics — every simulated
# metric and the per-component attribution ledger must be bit-identical
# (the consolidated replacement for the old cmp'd results/*.txt
# artifacts; smoke reports are transient, see .gitignore).
SMOKE_RUN = $(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum -parallel 1 -seed 99

# Epoch-pipeline smoke: coalescing window 1 must match the legacy eager
# path (window 0 — the epoch<=1 bypass contract), and a real window
# must complete the same sweep end to end.
bench-epoch:
	mkdir -p results
	$(SMOKE_RUN) -epoch 0 -json results/smoke_epoch0.json > /dev/null
	$(SMOKE_RUN) -epoch 1 -json results/smoke_epoch1.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_epoch0.json results/smoke_epoch1.json
	$(SMOKE_RUN) -epoch 16 > /dev/null

# Intra-trial shard smoke: the sharded engine at 1, 4 and 8 workers
# must match the legacy engine (shard 0) — the shard oracle's
# metric-neutrality contract.
bench-shard:
	mkdir -p results
	$(SMOKE_RUN) -shard 0 -json results/smoke_shard0.json > /dev/null
	$(SMOKE_RUN) -shard 1 -json results/smoke_shard1.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_shard0.json results/smoke_shard1.json
	$(SMOKE_RUN) -shard 4 -json results/smoke_shard4.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_shard0.json results/smoke_shard4.json
	$(SMOKE_RUN) -shard 8 -json results/smoke_shard8.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_shard0.json results/smoke_shard8.json

# Hit-burst fast-path smoke: the lane on must match the stepped engine
# (lane off) bit for bit — alone, stacked on an epoch window, and
# stacked on the sharded engine (the three burst-retirement variants:
# eager tree walk, journal note, sharded spine).
bench-fastpath:
	mkdir -p results
	$(SMOKE_RUN) -json results/smoke_fp0.json > /dev/null
	$(SMOKE_RUN) -fastpath -json results/smoke_fp1.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_fp0.json results/smoke_fp1.json
	$(SMOKE_RUN) -epoch 16 -json results/smoke_fpe0.json > /dev/null
	$(SMOKE_RUN) -epoch 16 -fastpath -json results/smoke_fpe1.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_fpe0.json results/smoke_fpe1.json
	$(SMOKE_RUN) -shard 4 -fastpath -json results/smoke_fps1.json > /dev/null
	$(GO) run ./scripts/bench_compare -exact-metrics results/smoke_fp0.json results/smoke_fps1.json

# PR-tracking benchmark record: the fixed suite matrix (quick + full
# scale, sequential + parallel, epoch-pipeline sweep, intra-trial
# shard sweep, hit-burst fast-path sweep, forked-vs-cold recovery
# sweep with per-phase attribution) written to results/BENCH_9.json.
# Compare against the previous PR's record:
#   go run ./scripts/bench_compare -epoch-sweep -shard-sweep -fastpath-sweep -max-recovery-phase-regress 0.1 results/BENCH_8.json results/BENCH_9.json
bench-json:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -suite -trials 50 -json results/BENCH_9.json

# Build-only smoke: the suite driver and the comparison tool keep
# compiling. Deliberately runs no benchmarks (wall-clock is too noisy
# to gate tier-1 on).
bench-tools:
	$(GO) build -o /dev/null ./cmd/anubis-bench
	$(GO) build -o /dev/null ./scripts/bench_compare

# Build-only smoke: the crash-injection fuzzer CLI keeps compiling.
fuzz-tools:
	$(GO) build -o /dev/null ./cmd/anubis-fuzz

# Build-only smoke: the multi-tenant service and its kvstore client
# keep compiling.
serve-tools:
	$(GO) build -o /dev/null ./cmd/anubis-serve
	$(GO) build -o /dev/null ./examples/kvstore

# End-to-end service smoke: a real anubis-serve process with 8
# concurrent kvstore tenants, a mid-workload crash+recovery of one
# tenant, quota/WPQ sheds answered with 429 and counted in /metrics,
# and a graceful-shutdown → restart → audit-clean cycle (see
# scripts/serve_smoke.sh).
serve-smoke:
	bash scripts/serve_smoke.sh

# Headless dashboard + flight-recorder smoke: the embedded /dash page
# serves with every section marker, /debug/dash.json stays parseable,
# /debug/events emits valid JSON lines, and the serve plane records the
# full request/crash/recover event life cycle. Pure `go test` — no
# browser, no server process — so it is cheap enough for tier-1.
dash-smoke:
	$(GO) test -count=1 -run 'TestDash' ./internal/obs/
	$(GO) test -count=1 -run 'TestFlightRecorder|TestServeWithoutRecorder' ./internal/serve/

# Short native-fuzz run: each crashfuzz target gets 10 s of coverage-
# guided mutation on top of its seed corpus. Failures are shrunk by
# re-running the printed token through `anubis-fuzz -replay` (see
# EXPERIMENTS.md "Crash-injection fuzzing").
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzTrial$$' -fuzztime 10s ./internal/crashfuzz/
	$(GO) test -run xxx -fuzz 'FuzzParseSchedule$$' -fuzztime 10s ./internal/crashfuzz/

# Long differential fuzz: 500 seeded random schedules across every
# scheme × crash model combination (the PR acceptance run).
fuzz:
	$(GO) run ./cmd/anubis-fuzz -trials 500 -seed 99

fmt:
	gofmt -w .

clean:
	rm -rf results
