GO ?= go

.PHONY: all build vet test race verify bench bench-smoke bench-device bench-epoch bench-shard bench-json bench-tools fuzz-tools fuzz-smoke fuzz fmt clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything compiles, vets clean, and the full suite
# passes both plainly (where the zero-alloc assertions run) and under
# the race detector (where they are skipped). bench-tools/fuzz-tools
# are build-only smokes for the tooling — no wall-clock gate.
verify: build vet test race bench-tools fuzz-tools

bench:
	$(GO) test -bench=. -benchmem ./...

# NVM device micro-benchmarks: paged-store reads/writes and the
# WPQ/port scheduler, including the drain-watermark read path.
bench-device:
	$(GO) test -run xxx -bench 'BenchmarkDevice' -benchmem ./internal/nvm/

# Reduced parallel sweep: a quick end-to-end run of the evaluation
# harness that exercises the worker pool and the JSON reporter.
bench-smoke:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -fig10 -fig11 -n 2000 \
		-apps mcf,lbm,libquantum -parallel 4 -json results/

# Epoch-pipeline smoke: the reduced fig10 sweep at coalescing window 1
# must be byte-identical to the legacy eager path (window 0 — the
# epoch<=1 bypass contract), and a real window must complete the same
# sweep end to end. Wall-clock lines are stripped before comparing;
# every simulated metric is exact.
bench-epoch:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -epoch 0 | grep -v 'ms wall' > results/epoch0.txt
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -epoch 1 | grep -v 'ms wall' > results/epoch1.txt
	cmp results/epoch0.txt results/epoch1.txt
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -epoch 16 > /dev/null

# Intra-trial shard smoke: the reduced fig10 sweep must be
# byte-identical between the legacy engine (shard 0) and the sharded
# engine at 1, 4 and 8 workers — the shard oracle's metric-neutrality
# contract. Wall-clock lines are stripped before comparing; every
# simulated metric is exact.
bench-shard:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -shard 0 | grep -v 'ms wall' > results/shard0.txt
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -shard 1 | grep -v 'ms wall' > results/shard1.txt
	cmp results/shard0.txt results/shard1.txt
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -shard 4 | grep -v 'ms wall' > results/shard4.txt
	cmp results/shard0.txt results/shard4.txt
	$(GO) run ./cmd/anubis-bench -fig10 -n 2000 -apps mcf,lbm,libquantum \
		-parallel 1 -seed 99 -shard 8 | grep -v 'ms wall' > results/shard8.txt
	cmp results/shard0.txt results/shard8.txt

# PR-tracking benchmark record: the fixed suite matrix (quick + full
# scale, sequential + parallel, epoch-pipeline sweep, intra-trial
# shard sweep, forked-vs-cold recovery sweep) written to
# results/BENCH_7.json. Compare against the previous PR's record:
#   go run ./scripts/bench_compare -epoch-sweep -shard-sweep results/BENCH_6.json results/BENCH_7.json
bench-json:
	mkdir -p results
	$(GO) run ./cmd/anubis-bench -suite -trials 50 -json results/BENCH_7.json

# Build-only smoke: the suite driver and the comparison tool keep
# compiling. Deliberately runs no benchmarks (wall-clock is too noisy
# to gate tier-1 on).
bench-tools:
	$(GO) build -o /dev/null ./cmd/anubis-bench
	$(GO) build -o /dev/null ./scripts/bench_compare

# Build-only smoke: the crash-injection fuzzer CLI keeps compiling.
fuzz-tools:
	$(GO) build -o /dev/null ./cmd/anubis-fuzz

# Short native-fuzz run: each crashfuzz target gets 10 s of coverage-
# guided mutation on top of its seed corpus. Failures are shrunk by
# re-running the printed token through `anubis-fuzz -replay` (see
# EXPERIMENTS.md "Crash-injection fuzzing").
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzTrial$$' -fuzztime 10s ./internal/crashfuzz/
	$(GO) test -run xxx -fuzz 'FuzzParseSchedule$$' -fuzztime 10s ./internal/crashfuzz/

# Long differential fuzz: 500 seeded random schedules across every
# scheme × crash model combination (the PR acceptance run).
fuzz:
	$(GO) run ./cmd/anubis-fuzz -trials 500 -seed 99

fmt:
	gofmt -w .

clean:
	rm -rf results
