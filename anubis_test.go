package anubis

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func testSystem(t *testing.T, s Scheme) *System {
	t.Helper()
	sys, err := New(Config{
		Scheme:            s,
		MemoryBytes:       1 << 20,
		CounterCacheBytes: 2048,
		TreeCacheBytes:    2048,
		MetaCacheBytes:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

var allSchemes = []Scheme{WriteBack, Strict, Osiris, AGITRead, AGITPlus, ASIT}

func TestRoundTripAllSchemes(t *testing.T) {
	for _, s := range allSchemes {
		t.Run(s.String(), func(t *testing.T) {
			sys := testSystem(t, s)
			data := []byte("the quick brown fox jumps over the lazy dog, twice over.")
			if err := sys.WriteBlock(3, data); err != nil {
				t.Fatal(err)
			}
			got, err := sys.ReadBlock(3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:len(data)], data) {
				t.Fatal("round trip corrupted data")
			}
		})
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		WriteBack: "writeback", Strict: "strict", Osiris: "osiris",
		AGITRead: "agit-read", AGITPlus: "agit-plus", ASIT: "asit",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys, err := New(Config{Scheme: AGITPlus})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Size() != 1<<30 {
		t.Fatalf("default size = %d, want 1GB", sys.Size())
	}
	if sys.NumBlocks() != (1<<30)/BlockSize {
		t.Fatal("NumBlocks inconsistent with Size")
	}
}

func TestSchemeForcesTreeKind(t *testing.T) {
	// ASIT must run on the SGX tree even if GeneralTree was requested,
	// and AGIT on the general tree even if SGXTree was requested.
	if _, err := New(Config{Scheme: ASIT, Tree: GeneralTree, MemoryBytes: 1 << 20}); err != nil {
		t.Fatalf("ASIT with GeneralTree request: %v", err)
	}
	if _, err := New(Config{Scheme: AGITPlus, Tree: SGXTree, MemoryBytes: 1 << 20}); err != nil {
		t.Fatalf("AGIT with SGXTree request: %v", err)
	}
}

func TestBaselineSchemesHonorTreeKind(t *testing.T) {
	for _, tree := range []TreeKind{GeneralTree, SGXTree} {
		sys, err := New(Config{Scheme: Strict, Tree: tree, MemoryBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.WriteBlock(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteBlockTooLarge(t *testing.T) {
	sys := testSystem(t, WriteBack)
	if err := sys.WriteBlock(0, make([]byte, BlockSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestShortWriteZeroPads(t *testing.T) {
	sys := testSystem(t, WriteBack)
	sys.WriteBlock(0, bytes.Repeat([]byte{0xff}, BlockSize))
	sys.WriteBlock(0, []byte{1, 2})
	got, _ := sys.ReadBlock(0)
	if got[0] != 1 || got[1] != 2 || got[2] != 0 || got[63] != 0 {
		t.Fatal("short write did not zero-pad")
	}
}

func TestRangeReadWrite(t *testing.T) {
	sys := testSystem(t, AGITPlus)
	msg := []byte("spanning three blocks: " + strings.Repeat("0123456789", 12))
	off := uint64(100) // unaligned
	if err := sys.WriteRange(off, msg); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadRange(off, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("range round trip corrupted data")
	}
	// Neighbouring bytes must be untouched (zero).
	before, _ := sys.ReadRange(off-10, 10)
	if !bytes.Equal(before, make([]byte, 10)) {
		t.Fatal("write range clobbered preceding bytes")
	}
}

func TestRangeQuickProperty(t *testing.T) {
	sys := testSystem(t, WriteBack)
	f := func(off uint16, raw []byte) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		o := uint64(off)
		if err := sys.WriteRange(o, raw); err != nil {
			return false
		}
		got, err := sys.ReadRange(o, len(raw))
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRangeNegative(t *testing.T) {
	sys := testSystem(t, WriteBack)
	if _, err := sys.ReadRange(0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestCrashRecoverAGIT(t *testing.T) {
	sys := testSystem(t, AGITPlus)
	for i := uint64(0); i < 100; i++ {
		if err := sys.WriteBlock(i*13%sys.NumBlocks(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Crash()
	if _, err := sys.ReadBlock(0); err == nil {
		t.Fatal("I/O accepted while crashed")
	}
	rep, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeledNS == 0 {
		t.Fatal("recovery reported zero modeled time despite work")
	}
	for i := uint64(0); i < 100; i++ {
		got, err := sys.ReadBlock(i * 13 % sys.NumBlocks())
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestCrashRecoverASIT(t *testing.T) {
	sys := testSystem(t, ASIT)
	for i := uint64(0); i < 100; i++ {
		sys.WriteBlock(i*7%sys.NumBlocks(), []byte{byte(i), 0xaa})
	}
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		got, err := sys.ReadBlock(i * 7 % sys.NumBlocks())
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestWriteBackNotRecoverable(t *testing.T) {
	sys := testSystem(t, WriteBack)
	sys.WriteBlock(0, []byte{1})
	sys.Crash()
	if _, err := sys.Recover(); !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("Recover = %v, want ErrNotRecoverable", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	sys := testSystem(t, AGITPlus)
	sys.WriteBlock(0, []byte{1})
	sys.ReadBlock(0)
	st := sys.Stats()
	if st.WriteRequests != 1 || st.ReadRequests != 1 {
		t.Fatalf("requests = %d/%d", st.ReadRequests, st.WriteRequests)
	}
	if st.NVMWrites == 0 || st.ElapsedNS == 0 {
		t.Fatal("no NVM activity or time recorded")
	}
}

func TestEstimateRecoveryNS(t *testing.T) {
	osiris := EstimateRecoveryNS(Osiris, 8<<40, 0, 0)
	agit := EstimateRecoveryNS(AGITPlus, 8<<40, 256<<10, 256<<10)
	asit := EstimateRecoveryNS(ASIT, 8<<40, 256<<10, 256<<10)
	if agit >= osiris || asit >= agit {
		t.Fatalf("expected osiris (%d) > agit (%d) > asit (%d)", osiris, agit, asit)
	}
	if EstimateRecoveryNS(Strict, 8<<40, 0, 0) != 0 {
		t.Fatal("strict needs no recovery time")
	}
	if EstimateRecoveryNS(WriteBack, 8<<40, 0, 0) != 0 {
		t.Fatal("write-back has no recovery estimate")
	}
}

func TestFormatDuration(t *testing.T) {
	if !strings.Contains(FormatDuration(28193*1e9), "h") {
		t.Fatal("hours not rendered")
	}
}

func TestFlushThenCleanRestart(t *testing.T) {
	sys := testSystem(t, Strict)
	sys.WriteBlock(5, []byte("persist me"))
	sys.Flush()
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadBlock(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:10], []byte("persist me")) {
		t.Fatal("flushed data lost")
	}
}

func TestIsIntegrityViolation(t *testing.T) {
	if IsIntegrityViolation(errors.New("plain")) {
		t.Fatal("plain error classified as integrity violation")
	}
}

func TestPhaseRecoveryPublicAPI(t *testing.T) {
	sys, err := New(Config{Scheme: AGITPlus, MemoryBytes: 1 << 20, PhaseRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		sys.WriteBlock(0, []byte{byte(i)}) // deep drift, no stop-loss
	}
	if sys.Stats().StopLossWrites != 0 {
		t.Fatal("phase recovery still made stop-loss writes")
	}
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadBlock(0)
	if err != nil || got[0] != 99 {
		t.Fatalf("phase recovery lost data: %v", err)
	}
}

func TestWearLevelingPublicAPI(t *testing.T) {
	sys, err := New(Config{Scheme: ASIT, MemoryBytes: 1 << 20, WearLevelingPeriod: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := sys.WriteBlock(i%30, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(170); i < 200; i++ {
		got, err := sys.ReadBlock(i % 30)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("block %d under wear leveling: %v", i%30, err)
		}
	}
}

func TestSelectivePublicAPI(t *testing.T) {
	sys, err := New(Config{
		Scheme:          Selective,
		MemoryBytes:     1 << 20,
		PersistentBytes: 512 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme().String() != "selective" {
		t.Fatalf("scheme = %s", sys.Scheme())
	}
	if err := sys.WriteBlock(0, []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadBlock(0)
	if err != nil || string(got[:10]) != "persistent" {
		t.Fatalf("persistent region lost: %v", err)
	}
}

func TestTriadPublicAPI(t *testing.T) {
	sys, err := New(Config{Scheme: Triad, MemoryBytes: 1 << 20, TriadLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 120; i++ {
		if err := sys.WriteBlock(i*67%sys.NumBlocks(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 120; i++ {
		got, err := sys.ReadBlock(i * 67 % sys.NumBlocks())
		if err != nil || got[0] != byte(i) {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	// The analytic landscape: Osiris > Triad(k) > Anubis at 8 TB.
	osiris := EstimateRecoveryNS(Osiris, 8<<40, 0, 0)
	triad := EstimateTriadRecoveryNS(8<<40, 2)
	agit := EstimateRecoveryNS(AGITPlus, 8<<40, 256<<10, 256<<10)
	if !(osiris > triad && triad > agit) {
		t.Fatalf("recovery landscape wrong: osiris=%d triad=%d agit=%d", osiris, triad, agit)
	}
}
