module anubis

go 1.22
