package trace

import (
	"testing"
)

func TestSPEC2006Set(t *testing.T) {
	ps := SPEC2006()
	if len(ps) != 11 {
		t.Fatalf("suite has %d apps, want 11 (paper §5)", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatal("ByName(mcf) failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found a nonexistent profile")
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ByName("milc")
	a := NewGenerator(p, 1).Generate(1000)
	b := NewGenerator(p, 1).Generate(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
	c := NewGenerator(p, 2).Generate(1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWriteFractionConverges(t *testing.T) {
	for _, p := range SPEC2006() {
		g := NewGenerator(p, 7)
		writes := 0
		n := 20000
		for i := 0; i < n; i++ {
			if g.Next().Op == OpWrite {
				writes++
			}
		}
		got := float64(writes) / float64(n)
		if got < p.WriteFrac-0.02 || got > p.WriteFrac+0.02 {
			t.Fatalf("%s: write fraction %.3f, want ~%.3f", p.Name, got, p.WriteFrac)
		}
	}
}

func TestBlocksWithinFootprint(t *testing.T) {
	for _, p := range SPEC2006() {
		g := NewGenerator(p, 9)
		for i := 0; i < 5000; i++ {
			r := g.Next()
			if r.Block >= p.FootprintBlocks {
				t.Fatalf("%s: block %d outside footprint %d", p.Name, r.Block, p.FootprintBlocks)
			}
		}
	}
}

func TestGapMeanApproximate(t *testing.T) {
	p, _ := ByName("lbm")
	g := NewGenerator(p, 11)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += float64(g.Next().GapNS)
	}
	mean := sum / float64(n)
	if mean < 0.7*p.GapMeanNS || mean > 1.3*p.GapMeanNS {
		t.Fatalf("gap mean %.1f, want ~%.1f", mean, p.GapMeanNS)
	}
}

func TestMCFIsReadIntensive(t *testing.T) {
	mcf, _ := ByName("mcf")
	lib, _ := ByName("libquantum")
	if mcf.WriteFrac >= 0.2 {
		t.Fatalf("mcf write fraction %v should be low (read-intensive)", mcf.WriteFrac)
	}
	if lib.WriteFrac <= mcf.WriteFrac || lib.WriteFrac < 0.4 {
		t.Fatal("libquantum must be the write-intensive extreme")
	}
}

func TestSequentialStreaming(t *testing.T) {
	lbm, _ := ByName("lbm")
	g := NewGenerator(lbm, 3)
	seq := 0
	prev := g.Next().Block
	n := 10000
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Block == prev+1 {
			seq++
		}
		prev = r.Block
	}
	if float64(seq)/float64(n) < 0.5 {
		t.Fatalf("lbm sequential rate %.2f, want streaming behaviour", float64(seq)/float64(n))
	}
}

func TestRewriteConcentration(t *testing.T) {
	// libquantum rewrites must revisit recently written blocks often.
	lib, _ := ByName("libquantum")
	g := NewGenerator(lib, 5)
	seen := map[uint64]int{}
	writes := 0
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Op == OpWrite {
			writes++
			seen[r.Block]++
		}
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 10 {
		t.Fatalf("libquantum hottest written block seen %d times; expected heavy rewrites", max)
	}
}

func TestScaled(t *testing.T) {
	p, _ := ByName("bwaves")
	s := p.Scaled(1000)
	if s.FootprintBlocks != 1000 {
		t.Fatalf("scaled footprint = %d", s.FootprintBlocks)
	}
	if s.HotBlocks == 0 || s.HotBlocks > s.FootprintBlocks {
		t.Fatalf("scaled hot set = %d", s.HotBlocks)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// No-op when already small enough.
	small := Profile{Name: "x", FootprintBlocks: 10, HotBlocks: 2, GapMeanNS: 1}
	if got := small.Scaled(1000); got.FootprintBlocks != 10 {
		t.Fatal("Scaled shrank a fitting profile")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "a", FootprintBlocks: 0},
		{Name: "b", FootprintBlocks: 10, WriteFrac: 1.5},
		{Name: "c", FootprintBlocks: 10, HotFrac: -1},
		{Name: "d", FootprintBlocks: 10, HotBlocks: 20},
		{Name: "e", FootprintBlocks: 10, SeqProb: 1.0},
		{Name: "f", FootprintBlocks: 10, RewriteProb: 2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %s accepted", p.Name)
		}
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(Profile{Name: "bad"}, 1)
}

func BenchmarkGenerate(b *testing.B) {
	p, _ := ByName("milc")
	g := NewGenerator(p, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestGenericUniformSequential(t *testing.T) {
	u := Uniform("u", 1000, 0.3, 50)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	s := Sequential("s", 1000, 0.5, 50)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(s, 1)
	seq, prev := 0, g.Next().Block
	for i := 0; i < 5000; i++ {
		r := g.Next()
		if r.Block == prev+1 {
			seq++
		}
		prev = r.Block
	}
	if float64(seq)/5000 < 0.85 {
		t.Fatalf("sequential rate %.2f too low", float64(seq)/5000)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(100000, 1.2, 0.3, 50, 1)
	counts := map[uint64]int{}
	n := 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Block]++
	}
	// The hottest block must absorb a disproportionate share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(n) < 0.05 {
		t.Fatalf("hottest block share %.3f; expected heavy skew", float64(max)/float64(n))
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct blocks; tail missing", len(counts))
	}
	if g.Name() != "zipf" {
		t.Fatal("name wrong")
	}
}

func TestZipfBounds(t *testing.T) {
	g := NewZipf(512, 1.5, 1.0, 10, 2)
	for i := 0; i < 10000; i++ {
		r := g.Next()
		if r.Block >= 512 {
			t.Fatalf("block %d out of range", r.Block)
		}
		if r.Op != OpWrite {
			t.Fatal("writeFrac 1.0 produced a read")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n uint64
		s float64
	}{{0, 2}, {10, 1.0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewZipf(c.n, c.s, 0.5, 10, 1)
		}()
	}
}

func TestSourceInterface(t *testing.T) {
	var _ Source = NewGenerator(Uniform("x", 10, 0, 1), 1)
	var _ Source = NewZipf(10, 2, 0, 1, 1)
}
