package trace

import (
	"math"
	"math/rand"
)

// This file provides generic workload constructors for library users
// who want controlled access patterns instead of the SPEC-calibrated
// profiles: uniform random, pure sequential streaming, and Zipf-skewed
// hot-spot traffic.

// Source is anything that produces a request stream; both the
// profile-driven Generator and the generic generators implement it.
type Source interface {
	Name() string
	Next() Request
}

// Uniform returns a profile with uniformly random accesses over the
// footprint.
func Uniform(name string, footprintBlocks uint64, writeFrac, gapMeanNS float64) Profile {
	return Profile{
		Name:            name,
		WriteFrac:       writeFrac,
		GapMeanNS:       gapMeanNS,
		FootprintBlocks: footprintBlocks,
	}
}

// Sequential returns a streaming profile: almost every access continues
// the current run.
func Sequential(name string, footprintBlocks uint64, writeFrac, gapMeanNS float64) Profile {
	return Profile{
		Name:            name,
		WriteFrac:       writeFrac,
		GapMeanNS:       gapMeanNS,
		FootprintBlocks: footprintBlocks,
		SeqProb:         0.95,
	}
}

// ZipfGenerator produces Zipf-skewed block accesses: block popularity
// follows a power law with exponent s > 1, the canonical model for
// skewed key-value and database traffic.
type ZipfGenerator struct {
	name      string
	rng       *rand.Rand
	zipf      *rand.Zipf
	writeFrac float64
	gapMean   float64
	blocks    uint64
}

// NewZipf creates a Zipf generator over footprintBlocks with exponent s
// (must be > 1). Rank 0 is the hottest block; ranks are scattered over
// the address space with a fixed multiplicative hash so the hot set is
// not one contiguous run.
func NewZipf(footprintBlocks uint64, s, writeFrac, gapMeanNS float64, seed int64) *ZipfGenerator {
	if footprintBlocks == 0 || s <= 1 {
		panic("trace: Zipf needs blocks > 0 and s > 1")
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfGenerator{
		name:      "zipf",
		rng:       rng,
		zipf:      rand.NewZipf(rng, s, 1, footprintBlocks-1),
		writeFrac: writeFrac,
		gapMean:   gapMeanNS,
		blocks:    footprintBlocks,
	}
}

// Name identifies the workload.
func (g *ZipfGenerator) Name() string { return g.name }

// Next produces the next request.
func (g *ZipfGenerator) Next() Request {
	rank := g.zipf.Uint64()
	// Scatter ranks across the address space; the multiplier is odd, so
	// the map is injective modulo any power of two and collisions over a
	// general footprint are negligible for workload purposes.
	block := (rank * 0x9e3779b97f4a7c15) % g.blocks
	var req Request
	req.Block = block
	if g.rng.Float64() < g.writeFrac {
		req.Op = OpWrite
	}
	gap := -math.Log(1-g.rng.Float64()) * g.gapMean
	req.GapNS = uint64(gap)
	return req
}
