// Package trace generates the memory request streams that drive the
// simulator.
//
// The paper evaluates with 11 memory-intensive SPEC CPU2006 applications
// under gem5. Neither gem5 nor SPEC binaries are available offline, so
// this package substitutes parameterized synthetic generators calibrated
// to each application's published memory character — the properties the
// paper's figures actually discriminate on:
//
//   - write fraction (Osiris/ASIT overheads scale with writes),
//   - memory intensity (CPU gap between requests dilutes stalls),
//   - footprint and hot-set locality (drives metadata cache miss rate,
//     i.e. AGIT-Read shadow traffic and Figure 7 clean evictions),
//   - rewrite concentration (drives stop-loss persists: LIBQUANTUM
//     repeatedly rewrites hot lines past the stop-loss limit).
//
// Streams are deterministic per (profile, seed), so different schemes
// see byte-identical request sequences.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Op distinguishes reads from writes.
type Op uint8

const (
	// OpRead is a 64-byte read request.
	OpRead Op = iota
	// OpWrite is a 64-byte write request.
	OpWrite
)

// Request is one memory access: the block index, the operation, and the
// CPU think time preceding it.
type Request struct {
	Op    Op
	Block uint64
	GapNS uint64
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	// Name identifies the workload (SPEC application names in the
	// built-in set).
	Name string
	// WriteFrac is the fraction of requests that are writes.
	WriteFrac float64
	// GapMeanNS is the mean CPU gap between memory requests; smaller
	// means more memory-bound.
	GapMeanNS float64
	// FootprintBlocks is the total working set in 64-byte blocks.
	FootprintBlocks uint64
	// HotFrac is the probability an access goes to the hot subset.
	HotFrac float64
	// HotBlocks is the size of the hot subset.
	HotBlocks uint64
	// SeqProb is the probability of continuing a sequential run
	// (streaming workloads approach 1).
	SeqProb float64
	// RewriteProb is the probability a write re-targets the most
	// recently written blocks (drives stop-loss persistence).
	RewriteProb float64
}

// Validate reports configuration errors.
func (p *Profile) Validate() error {
	switch {
	case p.FootprintBlocks == 0:
		return fmt.Errorf("trace %s: zero footprint", p.Name)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("trace %s: write fraction %v out of range", p.Name, p.WriteFrac)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("trace %s: hot fraction %v out of range", p.Name, p.HotFrac)
	case p.HotBlocks > p.FootprintBlocks:
		return fmt.Errorf("trace %s: hot set exceeds footprint", p.Name)
	case p.SeqProb < 0 || p.SeqProb >= 1:
		return fmt.Errorf("trace %s: sequential probability %v out of range", p.Name, p.SeqProb)
	case p.RewriteProb < 0 || p.RewriteProb > 1:
		return fmt.Errorf("trace %s: rewrite probability %v out of range", p.Name, p.RewriteProb)
	}
	return nil
}

// Generator produces a deterministic request stream for a profile.
type Generator struct {
	p   Profile
	rng *rand.Rand

	cur        uint64 // current sequential position
	lastWrites []uint64
}

// NewGenerator creates a generator for a profile. It panics on invalid
// profiles (programmer error; the built-in set is always valid).
func NewGenerator(p Profile, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Generator{
		p:          p,
		rng:        rand.New(rand.NewSource(seed)),
		lastWrites: make([]uint64, 0, 8),
	}
}

// Name returns the profile name.
func (g *Generator) Name() string { return g.p.Name }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Next produces the next request.
func (g *Generator) Next() Request {
	var req Request
	isWrite := g.rng.Float64() < g.p.WriteFrac
	if isWrite {
		req.Op = OpWrite
	}

	switch {
	case isWrite && len(g.lastWrites) > 0 && g.rng.Float64() < g.p.RewriteProb:
		// Re-write one of the recently written blocks.
		req.Block = g.lastWrites[g.rng.Intn(len(g.lastWrites))]
	case g.rng.Float64() < g.p.SeqProb:
		// Continue the sequential run.
		g.cur = (g.cur + 1) % g.p.FootprintBlocks
		req.Block = g.cur
	case g.p.HotBlocks > 0 && g.rng.Float64() < g.p.HotFrac:
		req.Block = uint64(g.rng.Int63n(int64(g.p.HotBlocks)))
		g.cur = req.Block
	default:
		req.Block = uint64(g.rng.Int63n(int64(g.p.FootprintBlocks)))
		g.cur = req.Block
	}

	if isWrite {
		if len(g.lastWrites) < cap(g.lastWrites) {
			g.lastWrites = append(g.lastWrites, req.Block)
		} else {
			g.lastWrites[g.rng.Intn(len(g.lastWrites))] = req.Block
		}
	}

	// Exponential CPU gap with the profile's mean.
	gap := -math.Log(1-g.rng.Float64()) * g.p.GapMeanNS
	if gap > 50*g.p.GapMeanNS {
		gap = 50 * g.p.GapMeanNS
	}
	req.GapNS = uint64(gap)
	return req
}

// Generate materializes n requests.
func (g *Generator) Generate(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// SPEC2006 returns the 11 memory-intensive SPEC CPU2006 profiles the
// paper evaluates (§5), calibrated to each application's qualitative
// character as described in §6.1:
//
//   - MCF: the most read-intensive, poor locality ("few counters are
//     actually written/updated in the cache before eviction").
//   - LBM: write-intensive streaming with an insignificant number of
//     read requests.
//   - LIBQUANTUM: "performs both reads and writes more than the rest"
//     and is "the most write-intensive application we have tested",
//     with rewrites past the stop-loss limit.
//
// Footprints are expressed in 64-byte blocks (8M blocks = 512 MB).
func SPEC2006() []Profile {
	const mb = 1024 * 1024 / 64 // blocks per MB
	return []Profile{
		{Name: "mcf", WriteFrac: 0.06, GapMeanNS: 45, FootprintBlocks: 320 * mb, HotFrac: 0.35, HotBlocks: 24 * mb, SeqProb: 0.05, RewriteProb: 0.05},
		{Name: "lbm", WriteFrac: 0.47, GapMeanNS: 70, FootprintBlocks: 384 * mb, HotFrac: 0.05, HotBlocks: 2 * mb, SeqProb: 0.85, RewriteProb: 0.05},
		{Name: "libquantum", WriteFrac: 0.55, GapMeanNS: 55, FootprintBlocks: 64 * mb, HotFrac: 0.45, HotBlocks: 1 * mb, SeqProb: 0.55, RewriteProb: 0.60},
		{Name: "milc", WriteFrac: 0.30, GapMeanNS: 90, FootprintBlocks: 352 * mb, HotFrac: 0.25, HotBlocks: 8 * mb, SeqProb: 0.40, RewriteProb: 0.15},
		{Name: "soplex", WriteFrac: 0.22, GapMeanNS: 100, FootprintBlocks: 192 * mb, HotFrac: 0.45, HotBlocks: 6 * mb, SeqProb: 0.30, RewriteProb: 0.12},
		{Name: "gems", WriteFrac: 0.28, GapMeanNS: 85, FootprintBlocks: 416 * mb, HotFrac: 0.20, HotBlocks: 10 * mb, SeqProb: 0.55, RewriteProb: 0.10},
		{Name: "leslie3d", WriteFrac: 0.33, GapMeanNS: 95, FootprintBlocks: 128 * mb, HotFrac: 0.30, HotBlocks: 5 * mb, SeqProb: 0.60, RewriteProb: 0.15},
		{Name: "omnetpp", WriteFrac: 0.25, GapMeanNS: 80, FootprintBlocks: 160 * mb, HotFrac: 0.60, HotBlocks: 4 * mb, SeqProb: 0.10, RewriteProb: 0.20},
		{Name: "astar", WriteFrac: 0.18, GapMeanNS: 110, FootprintBlocks: 96 * mb, HotFrac: 0.55, HotBlocks: 5 * mb, SeqProb: 0.15, RewriteProb: 0.10},
		{Name: "bwaves", WriteFrac: 0.35, GapMeanNS: 105, FootprintBlocks: 448 * mb, HotFrac: 0.15, HotBlocks: 8 * mb, SeqProb: 0.70, RewriteProb: 0.08},
		{Name: "zeusmp", WriteFrac: 0.29, GapMeanNS: 115, FootprintBlocks: 256 * mb, HotFrac: 0.25, HotBlocks: 7 * mb, SeqProb: 0.50, RewriteProb: 0.10},
	}
}

// ByName returns the built-in profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2006() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Scaled returns a copy of the profile with its footprint and hot set
// scaled to fit within maxBlocks (used to run Table 1 geometries against
// smaller simulated memories without changing the access mix).
func (p Profile) Scaled(maxBlocks uint64) Profile {
	if p.FootprintBlocks <= maxBlocks {
		return p
	}
	ratio := float64(maxBlocks) / float64(p.FootprintBlocks)
	p.FootprintBlocks = maxBlocks
	hot := uint64(float64(p.HotBlocks) * ratio)
	if hot == 0 {
		hot = 1
	}
	p.HotBlocks = hot
	return p
}
