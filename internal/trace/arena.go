package trace

import (
	"fmt"
	"sync"
)

// Shared trace arenas.
//
// A figure sweep evaluates many (scheme, cache-size, …) cells against
// the *same* request stream: streams are deterministic per (profile,
// seed), so every cell used to pay for re-running the Generator's rng
// chain from scratch. An Arena materializes the stream once into an
// immutable request slice shared read-only across all cells — and
// across goroutines of a parallel sweep — while Cursors give each cell
// an independent, allocation-free read position. Crash/recovery trials
// forked from a warm controller resume consumption mid-stream with
// SourceAt, which is what makes a forked trial consume byte-identical
// requests to a cold-started one.

// PayloadBytes is the size of one write payload — the simulator's
// block size (64-byte cache lines throughout the repo).
const PayloadBytes = 64

// Arena is an immutable, materialized request stream for one
// (profile, seed) pair. Safe for concurrent use: nothing mutates it
// after construction (the payload table is built under a Once).
type Arena struct {
	profile Profile
	seed    int64
	reqs    []Request

	payOnce sync.Once
	pay     [][PayloadBytes]byte
}

// NewArena materializes the first n requests of the deterministic
// stream for (p, seed). The result is identical to what n calls of
// NewGenerator(p, seed).Next() would produce.
func NewArena(p Profile, seed int64, n int) *Arena {
	return &Arena{profile: p, seed: seed, reqs: NewGenerator(p, seed).Generate(n)}
}

// Len returns the number of materialized requests.
func (a *Arena) Len() int { return len(a.reqs) }

// Profile returns the generating profile.
func (a *Arena) Profile() Profile { return a.profile }

// Seed returns the generating seed.
func (a *Arena) Seed() int64 { return a.seed }

// Requests exposes the materialized stream. Callers must treat the
// slice as read-only; it is shared across every cursor and goroutine.
func (a *Arena) Requests() []Request { return a.reqs }

// Payloads returns the table of canonical write payloads for runs that
// consume this arena from position zero: entry i holds
// fill(·, reqs[i].Block, i) for write requests (read entries stay
// zero). Payload content is a pure function of (block, position), so a
// sweep's many cells replaying one stream share one generation instead
// of regenerating per cell. Built once per arena; every caller must
// pass the same canonical fill function (sim.FillBlock), which makes
// the table a cache, never a source of divergent content. Callers must
// treat the table as read-only — entries are shared across cells and
// goroutines.
func (a *Arena) Payloads(fill func(dst *[PayloadBytes]byte, block, n uint64)) [][PayloadBytes]byte {
	a.payOnce.Do(func() {
		pay := make([][PayloadBytes]byte, len(a.reqs))
		for i := range a.reqs {
			if a.reqs[i].Op == OpWrite {
				fill(&pay[i], a.reqs[i].Block, uint64(i))
			}
		}
		a.pay = pay
	})
	return a.pay
}

// Source returns a fresh cursor at the start of the stream.
func (a *Arena) Source() *Cursor { return a.SourceAt(0) }

// SourceAt returns a cursor positioned at request pos — the resume
// point for a trial forked from a controller that already consumed the
// first pos requests.
func (a *Arena) SourceAt(pos int) *Cursor {
	if pos < 0 || pos > len(a.reqs) {
		panic(fmt.Sprintf("trace: cursor position %d outside arena of %d requests", pos, len(a.reqs)))
	}
	return &Cursor{a: a, pos: pos}
}

// Cursor is an independent read position into an Arena, implementing
// Source. Next is two loads and an increment: no rng, no allocation.
// Each cursor belongs to one goroutine; distinct cursors over the same
// arena may advance concurrently.
type Cursor struct {
	a   *Arena
	pos int
}

// Name identifies the workload.
func (c *Cursor) Name() string { return c.a.profile.Name }

// Payloads exposes the arena's shared payload table (see
// Arena.Payloads). Only a consumer reading the cursor from position
// zero may index the table by its own request counter; a mid-stream
// cursor's per-run payload positions do not line up with the table.
func (c *Cursor) Payloads(fill func(dst *[PayloadBytes]byte, block, n uint64)) [][PayloadBytes]byte {
	return c.a.Payloads(fill)
}

// Pos returns the number of requests consumed so far.
func (c *Cursor) Pos() int { return c.pos }

// Next returns the next materialized request. Running past the arena's
// end is a harness sizing bug and panics rather than silently looping
// or fabricating requests.
func (c *Cursor) Next() Request {
	if c.pos >= len(c.a.reqs) {
		panic(fmt.Sprintf("trace: cursor exhausted arena %q (%d requests); size the arena to the sweep's maximum consumption", c.a.profile.Name, len(c.a.reqs)))
	}
	r := c.a.reqs[c.pos]
	c.pos++
	return r
}

// ArenaCache interns arenas by (profile, seed) so every cell of a
// sweep — across goroutines — shares one materialization. Safe for
// concurrent use.
type ArenaCache struct {
	mu sync.Mutex
	m  map[arenaKey]*Arena
}

type arenaKey struct {
	p    Profile
	seed int64
}

// NewArenaCache returns an empty cache.
func NewArenaCache() *ArenaCache {
	return &ArenaCache{m: make(map[arenaKey]*Arena)}
}

// Get returns the arena for (p, seed) holding at least n requests,
// materializing or enlarging it as needed. Enlarging replaces the
// cached arena with a longer one regenerated from the seed — streams
// are deterministic, so the longer arena's prefix is byte-identical to
// the old one, and arenas already handed out stay valid (they are
// immutable) while new callers see the longer version.
func (c *ArenaCache) Get(p Profile, seed int64, n int) *Arena {
	k := arenaKey{p: p, seed: seed}
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.m[k]; ok && a.Len() >= n {
		return a
	}
	a := NewArena(p, seed, n)
	c.m[k] = a
	return a
}
