package trace

import (
	"sync"
	"testing"
)

// TestArenaMatchesGenerator pins the arena contract: the materialized
// stream is request-for-request identical to driving the Generator
// directly at the same (profile, seed).
func TestArenaMatchesGenerator(t *testing.T) {
	p, _ := ByName("milc")
	const n = 3000
	a := NewArena(p, 42, n)
	if a.Len() != n {
		t.Fatalf("arena length = %d, want %d", a.Len(), n)
	}
	if a.Profile().Name != "milc" || a.Seed() != 42 {
		t.Fatal("arena metadata wrong")
	}
	g := NewGenerator(p, 42)
	src := a.Source()
	if src.Name() != "milc" {
		t.Fatalf("cursor name = %q", src.Name())
	}
	for i := 0; i < n; i++ {
		want := g.Next()
		got := src.Next()
		if got != want {
			t.Fatalf("request %d: arena %+v differs from generator %+v", i, got, want)
		}
	}
	if src.Pos() != n {
		t.Fatalf("cursor pos = %d after consuming %d", src.Pos(), n)
	}
}

// TestArenaSourceAtResumesMidStream checks the fork-resume shape: a
// cursor opened at pos k replays exactly the suffix a full read would
// have produced after k requests.
func TestArenaSourceAtResumesMidStream(t *testing.T) {
	p, _ := ByName("lbm")
	a := NewArena(p, 7, 1000)
	whole := a.Source()
	for i := 0; i < 400; i++ {
		whole.Next()
	}
	resumed := a.SourceAt(400)
	for i := 400; i < 1000; i++ {
		w, r := whole.Next(), resumed.Next()
		if w != r {
			t.Fatalf("request %d: resumed cursor diverged", i)
		}
	}
}

// TestCursorIndependence verifies cursors over one arena do not share
// position state.
func TestCursorIndependence(t *testing.T) {
	p, _ := ByName("mcf")
	a := NewArena(p, 3, 100)
	c1, c2 := a.Source(), a.Source()
	first := c1.Next()
	if c2.Pos() != 0 {
		t.Fatal("advancing one cursor moved another")
	}
	if got := c2.Next(); got != first {
		t.Fatal("second cursor did not start at the stream head")
	}
}

// TestCursorExhaustionPanics: running off the arena end is a harness
// sizing bug and must fail loudly, not loop or fabricate requests.
func TestCursorExhaustionPanics(t *testing.T) {
	p, _ := ByName("mcf")
	a := NewArena(p, 1, 10)
	c := a.SourceAt(10) // valid: positioned exactly at the end
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhausted cursor")
		}
	}()
	c.Next()
}

// TestSourceAtOutOfRangePanics covers both invalid boundaries.
func TestSourceAtOutOfRangePanics(t *testing.T) {
	p, _ := ByName("mcf")
	a := NewArena(p, 1, 10)
	for _, pos := range []int{-1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SourceAt(%d) did not panic", pos)
				}
			}()
			a.SourceAt(pos)
		}()
	}
}

// TestArenaCacheInterning: same (profile, seed) with a fitting length
// returns the identical arena; a longer request regenerates, and the
// regenerated arena's prefix matches the old arena byte-for-byte (the
// deterministic-prefix property Get's contract relies on).
func TestArenaCacheInterning(t *testing.T) {
	c := NewArenaCache()
	p, _ := ByName("libquantum")
	a1 := c.Get(p, 99, 500)
	if a2 := c.Get(p, 99, 300); a2 != a1 {
		t.Fatal("fitting request did not return the cached arena")
	}
	if b := c.Get(p, 100, 500); b == a1 {
		t.Fatal("different seed shared an arena")
	}
	big := c.Get(p, 99, 800)
	if big == a1 {
		t.Fatal("enlargement did not regenerate")
	}
	if big.Len() < 800 {
		t.Fatalf("enlarged arena length = %d", big.Len())
	}
	// Old arena stays valid and is a prefix of the new one.
	old, neu := a1.Requests(), big.Requests()
	for i := range old {
		if old[i] != neu[i] {
			t.Fatalf("request %d: enlarged arena prefix diverged", i)
		}
	}
}

// TestArenaCacheConcurrentGet hammers one cache from many goroutines;
// run under -race this checks the locking discipline, and all callers
// asking for fitting lengths must observe a single interned arena.
func TestArenaCacheConcurrentGet(t *testing.T) {
	c := NewArenaCache()
	p, _ := ByName("astar")
	const workers = 16
	arenas := make([]*Arena, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arenas[w] = c.Get(p, 5, 200)
			// Concurrent cursors over the shared arena.
			src := arenas[w].Source()
			for i := 0; i < 200; i++ {
				src.Next()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if arenas[w] != arenas[0] {
			t.Fatal("concurrent Gets returned distinct arenas for one key")
		}
	}
}

// TestZipfSameSeedByteIdentical is the synthetic-generator determinism
// satellite: two ZipfGenerators built with identical parameters emit
// byte-identical request streams, and a different seed diverges.
func TestZipfSameSeedByteIdentical(t *testing.T) {
	a := NewZipf(100000, 1.2, 0.3, 50, 77)
	b := NewZipf(100000, 1.2, 0.3, 50, 77)
	for i := 0; i < 20000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("request %d differs across identical zipf seeds: %+v vs %+v", i, ra, rb)
		}
	}
	c := NewZipf(100000, 1.2, 0.3, 50, 78)
	d := NewZipf(100000, 1.2, 0.3, 50, 77)
	same := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same == n {
		t.Fatal("different zipf seeds produced identical streams")
	}
}

// TestScaledPreservesShape extends the Scaled coverage: scaling keeps
// the hot-set ratio and leaves rate/mix parameters untouched, and is
// deterministic (same inputs, same output profile).
func TestScaledPreservesShape(t *testing.T) {
	p, _ := ByName("soplex")
	s1 := p.Scaled(4096)
	s2 := p.Scaled(4096)
	if s1 != s2 {
		t.Fatal("Scaled is not deterministic")
	}
	if s1.WriteFrac != p.WriteFrac || s1.GapMeanNS != p.GapMeanNS || s1.SeqProb != p.SeqProb {
		t.Fatal("Scaled changed rate/mix parameters")
	}
	if s1.FootprintBlocks != 4096 {
		t.Fatalf("scaled footprint = %d", s1.FootprintBlocks)
	}
	wantRatio := float64(p.HotBlocks) / float64(p.FootprintBlocks)
	gotRatio := float64(s1.HotBlocks) / float64(s1.FootprintBlocks)
	if gotRatio < wantRatio*0.5 || gotRatio > wantRatio*2+1e-9 {
		t.Fatalf("hot-set ratio drifted: %.4f vs %.4f", gotRatio, wantRatio)
	}
	// Scaled streams are themselves deterministic per seed.
	g1 := NewGenerator(s1, 13)
	g2 := NewGenerator(s2, 13)
	for i := 0; i < 2000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("request %d of scaled profile differs across identical seeds", i)
		}
	}
}
