// Package shard implements the intra-trial parallel execution engine:
// it runs the *content plane* of a single simulation across many host
// cores while the *timing plane* stays sequential and byte-identical
// to the legacy engine.
//
// Why this split: the simulator's virtual clock, WPQ, write ports and
// metadata caches are globally coupled — every request observes state
// left by the previous one, so a semantic bank decomposition of the
// timing engine cannot be byte-identical at shard counts > 1. But all
// of the *content* work per request is a pure function of the trace
// prefix restricted to the metadata page that owns the request's
// address: plaintext generation, counter evolution (split-counter
// minors/major per page, SGX lanes per leaf), AES-counter encryption,
// ECC encoding, data MACs, counter-block packing and the leaf content
// hash. None of it depends on cache occupancy, clock values or the
// interleaving with other pages.
//
// So the engine shards *pages* — with the same multiply-mix the NVM
// device uses for bank interleaving (nvm.ShardOf), honoring the bank
// mapping the epoch scheduler already reasons about — across N worker
// goroutines. Each worker scans the whole request stream, simulates
// the counter state of only the pages it owns, and fills a per-request
// oracle Entry into a slot indexed by request number. Slots have a
// unique writer (the owning worker), so the table is data-race free,
// and every entry's value is independent of the shard count: shard
// assignment decides only *who* computes an entry, never *what* it
// contains. The sequential timing spine (sim.RunSharded) replays the
// unmodified controller loop, substituting oracle values for the
// recomputation — identical device traffic, identical virtual time,
// identical statistics at every shard count, including shard=1.
//
// Workers and spine synchronize on fixed-size request windows (an
// epoch-like barrier): workers publish completed windows through a
// per-window WaitGroup, the spine blocks only if it catches up with
// the slowest worker, so precompute overlaps replay.
package shard

import (
	"sync"

	"anubis/internal/counter"
	"anubis/internal/cryptoeng"
	"anubis/internal/ecc"
	"anubis/internal/nvm"
	"anubis/internal/obs"
	"anubis/internal/trace"
)

// BlockBytes is the simulated block size.
const BlockBytes = counter.BlockBytes

// DefaultWindow is the barrier window size in requests when Config
// leaves it zero.
const DefaultWindow = 4096

// Config parameterizes a precompute run. The worker must mirror the
// controller's address mapping exactly: SGX selects 8-lane leaf pages
// (SGX-style counters), otherwise 64-lane split-counter pages.
type Config struct {
	SGX       bool   // controller family: SGX-style leaves vs split counters
	NumBlocks uint64 // controller capacity; addresses are trace block % NumBlocks
	Shards    int    // worker count; <= 1 means one worker
	Window    int    // barrier window in requests (0 = DefaultWindow)
}

// Entry is the precomputed content of one request. Writes carry the
// plaintext, ciphertext, sideband and (Bonsai) the packed counter
// block with its leaf hash; reads carry the expected plaintext and
// whether the block was ever written. All values equal what the legacy
// controller path would compute in place.
type Entry struct {
	Ctr      uint64 // encryption counter (post-increment for writes)
	LeafHash uint64 // Bonsai: ContentHash of CtrBlock
	Has      bool   // reads: block previously written
	Overflow bool   // Bonsai writes: minor counter overflow at this request

	Data     [BlockBytes]byte // writes: plaintext (FillBlock)
	CT       [BlockBytes]byte // writes: ciphertext under Ctr
	PT       [BlockBytes]byte // reads: expected plaintext
	CtrBlock [BlockBytes]byte // Bonsai writes: packed counter block after increment

	Side nvm.Sideband // writes: ECC + MAC (+ Phase for Bonsai)

	// Reenc holds the re-encrypted lanes of a page overflow, in lane
	// order, one entry per lane present on the device at overflow time.
	Reenc []ReencLane
}

// ReencLane is one re-encrypted lane of a page overflow.
type ReencLane struct {
	Lane int
	CT   [BlockBytes]byte
	Side nvm.Sideband
}

// Oracle is the shared entry table plus the window barrier. Workers
// fill Entries; the spine calls Wait(i) before consuming entry i.
type Oracle struct {
	Entries []Entry

	shards int
	window int
	wgs    []sync.WaitGroup
	done   sync.WaitGroup // worker exits: registries are final
	regs   []*obs.Registry
}

// Precompute spawns the shard workers over the request stream and
// returns immediately; entries become consumable window by window.
func Precompute(reqs []trace.Request, cfg Config) *Oracle {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	o := &Oracle{
		Entries: make([]Entry, len(reqs)),
		shards:  cfg.Shards,
		window:  cfg.Window,
		wgs:     make([]sync.WaitGroup, (len(reqs)+cfg.Window-1)/cfg.Window),
		regs:    make([]*obs.Registry, cfg.Shards),
	}
	for c := range o.wgs {
		o.wgs[c].Add(cfg.Shards)
	}
	o.done.Add(cfg.Shards)
	for w := 0; w < cfg.Shards; w++ {
		o.regs[w] = obs.NewRegistry()
		go o.worker(reqs, cfg, w)
	}
	return o
}

// Wait blocks until entry i is published (its window's barrier has
// been passed by every worker). Waiting on an already-complete window
// is a single atomic load.
func (o *Oracle) Wait(i int) { o.wgs[i/o.window].Wait() }

// MergeRegistries folds the worker-private registries into dst in
// fixed shard order. It waits for every worker to exit first — the
// window barriers only order entry publication, and a worker writes
// its registry totals after its last window — so the merge is
// deterministic and race-free without any caller discipline.
func (o *Oracle) MergeRegistries(dst *obs.Registry) {
	o.done.Wait()
	for _, r := range o.regs {
		dst.Merge(r)
	}
}

// Owner maps a data block address to its owning shard: the address's
// metadata page (split-counter page or SGX leaf) hashed with the
// device's bank-interleave mix. The timing spine uses this to charge
// per-request attribution to the same shard that precomputed the
// request.
func Owner(addr uint64, sgx bool, shards int) int {
	if sgx {
		return nvm.ShardOf(addr/counter.SGXCounters, shards)
	}
	return nvm.ShardOf(addr/counter.SplitMinors, shards)
}

// FillBlock writes deterministic per-request content: the canonical
// definition of the simulator's write payloads. sim.FillBlock and the
// crash fuzzer's golden oracle delegate here, and shard workers use it
// both to generate write plaintexts and to regenerate read plaintexts
// without touching the device.
func FillBlock(d *[BlockBytes]byte, block, n uint64) {
	x := block*0x9e3779b97f4a7c15 ^ n
	for i := range d {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		d[i] = byte(x)
	}
}

// worker is one shard's precompute loop: a full scan of the request
// stream that simulates counter state for owned pages only and fills
// their entries. Engines are per-worker (cryptoeng scratch is pooled
// per engine); NewTestEngine is deterministic and matches the engine
// every controller constructs.
func (o *Oracle) worker(reqs []trace.Request, cfg Config, w int) {
	defer o.done.Done()
	eng := cryptoeng.NewTestEngine()
	reg := o.regs[w]
	var writes, reads, overflows uint64
	var state workerState
	if cfg.SGX {
		state = &sgxState{leaves: make(map[uint64]*sgxLeaf)}
	} else {
		state = &bonsaiState{pages: make(map[uint64]*bonsaiPage)}
	}
	for c := range o.wgs {
		lo, hi := c*o.window, (c+1)*o.window
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for i := lo; i < hi; i++ {
			req := &reqs[i]
			addr := req.Block % cfg.NumBlocks
			if Owner(addr, cfg.SGX, cfg.Shards) != w {
				continue
			}
			e := &o.Entries[i]
			if req.Op == trace.OpWrite {
				writes++
				if state.write(eng, e, addr, req.Block, uint64(i)) {
					overflows++
				}
			} else {
				reads++
				state.read(eng, e, addr)
			}
		}
		o.wgs[c].Done()
	}
	reg.Counter("shard_write_entries", writes)
	reg.Counter("shard_read_entries", reads)
	reg.Counter("shard_page_overflows", overflows)
}

// workerState is the per-worker page-content simulation for one
// controller family.
type workerState interface {
	write(eng *cryptoeng.Engine, e *Entry, addr, block, seq uint64) (overflow bool)
	read(eng *cryptoeng.Engine, e *Entry, addr uint64)
}

// --- Bonsai family: split counters, 64-lane pages -------------------------

// bonsaiPage tracks one owned split-counter page: the evolving counter
// block plus, per lane, the identity of the last write so plaintexts
// can be regenerated with FillBlock instead of decrypting the device.
type bonsaiPage struct {
	split   counter.Split
	present [counter.SplitMinors]bool
	block   [counter.SplitMinors]uint64 // trace block of the lane's last write
	seq     [counter.SplitMinors]uint64 // request index of the lane's last write
}

type bonsaiState struct {
	pages map[uint64]*bonsaiPage
}

func (st *bonsaiState) page(p uint64) *bonsaiPage {
	ps := st.pages[p]
	if ps == nil {
		ps = &bonsaiPage{}
		st.pages[p] = ps
	}
	return ps
}

func (st *bonsaiState) write(eng *cryptoeng.Engine, e *Entry, addr, block, seq uint64) bool {
	page, lane := addr/counter.SplitMinors, int(addr%counter.SplitMinors)
	ps := st.page(page)
	FillBlock(&e.Data, block, seq)
	if ps.split.Increment(lane) {
		e.Overflow = true
		e.Reenc = reencLanes(eng, ps, page)
	}
	e.CtrBlock = ps.split.Pack()
	e.LeafHash = eng.ContentHash(e.CtrBlock[:])
	ctr := ps.split.Counter(lane)
	e.Ctr = ctr
	eng.EncryptTo(e.CT[:], e.Data[:], addr, ctr)
	e.Side = nvm.Sideband{ECC: ecc.EncodeBlock(e.Data[:]), MAC: eng.DataMAC(addr, ctr, e.Data[:]), Phase: uint8(ctr)}
	ps.present[lane] = true
	ps.block[lane] = block
	ps.seq[lane] = seq
	return e.Overflow
}

func (st *bonsaiState) read(eng *cryptoeng.Engine, e *Entry, addr uint64) {
	page, lane := addr/counter.SplitMinors, int(addr%counter.SplitMinors)
	ps := st.pages[page]
	if ps == nil || !ps.present[lane] {
		return // never written: entry stays Has=false / zero plaintext
	}
	e.Has = true
	FillBlock(&e.PT, ps.block[lane], ps.seq[lane])
	e.Ctr = ps.split.Counter(lane)
}

// reencLanes precomputes the overflow re-encryption of a page: every
// lane written so far, re-encrypted under the post-overflow counters.
// Called after Increment bumped the major, so ps.split holds the fresh
// counters; lane presence here mirrors the device presence the
// controller's re-encryption loop checks (data lanes become present
// only through prior writes, and the current write has not landed yet).
func reencLanes(eng *cryptoeng.Engine, ps *bonsaiPage, page uint64) []ReencLane {
	var out []ReencLane
	base := page * counter.SplitMinors
	for lane := 0; lane < counter.SplitMinors; lane++ {
		if !ps.present[lane] {
			continue
		}
		idx := base + uint64(lane)
		var pt [BlockBytes]byte
		FillBlock(&pt, ps.block[lane], ps.seq[lane])
		nctr := ps.split.Counter(lane)
		rl := ReencLane{Lane: lane}
		eng.EncryptTo(rl.CT[:], pt[:], idx, nctr)
		rl.Side = nvm.Sideband{ECC: ecc.EncodeBlock(pt[:]), MAC: eng.DataMAC(idx, nctr, pt[:]), Phase: uint8(nctr)}
		out = append(out, rl)
	}
	return out
}

// --- SGX family: 8-lane leaves ---------------------------------------------

// sgxLeaf tracks one owned SGX counter leaf. Only the counter lanes
// are modeled: the embedded MAC field of the cached leaf block is
// writeback-order dependent and stays with the timing spine, but lane
// counters evolve purely (one increment per write, in trace order).
type sgxLeaf struct {
	ctr     [counter.SGXCounters]uint64
	present [counter.SGXCounters]bool
	block   [counter.SGXCounters]uint64
	seq     [counter.SGXCounters]uint64
}

type sgxState struct {
	leaves map[uint64]*sgxLeaf
}

func (st *sgxState) leaf(l uint64) *sgxLeaf {
	ls := st.leaves[l]
	if ls == nil {
		ls = &sgxLeaf{}
		st.leaves[l] = ls
	}
	return ls
}

func (st *sgxState) write(eng *cryptoeng.Engine, e *Entry, addr, block, seq uint64) bool {
	leaf, lane := addr/counter.SGXCounters, int(addr%counter.SGXCounters)
	ls := st.leaf(leaf)
	FillBlock(&e.Data, block, seq)
	ls.ctr[lane] = (ls.ctr[lane] + 1) & counter.SGXCounterMask
	ctr := ls.ctr[lane]
	e.Ctr = ctr
	eng.EncryptTo(e.CT[:], e.Data[:], addr, ctr)
	e.Side = nvm.Sideband{ECC: ecc.EncodeBlock(e.Data[:]), MAC: eng.DataMAC(addr, ctr, e.Data[:])}
	ls.present[lane] = true
	ls.block[lane] = block
	ls.seq[lane] = seq
	return false
}

func (st *sgxState) read(eng *cryptoeng.Engine, e *Entry, addr uint64) {
	leaf, lane := addr/counter.SGXCounters, int(addr%counter.SGXCounters)
	ls := st.leaves[leaf]
	if ls == nil || !ls.present[lane] {
		return
	}
	e.Has = true
	FillBlock(&e.PT, ls.block[lane], ls.seq[lane])
	e.Ctr = ls.ctr[lane]
}
