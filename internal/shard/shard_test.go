package shard

import (
	"reflect"
	"testing"

	"anubis/internal/trace"
)

// entriesFor precomputes the oracle for a request stream and waits for
// every window.
func entriesFor(t *testing.T, reqs []trace.Request, cfg Config) []Entry {
	t.Helper()
	o := Precompute(reqs, cfg)
	if len(reqs) > 0 {
		o.Wait(len(reqs) - 1)
	}
	return o.Entries
}

// TestEntriesIndependentOfShardCount is the package's core invariant:
// shard assignment decides who computes an entry, never what it
// contains, so the full entry table is identical at every worker count
// (and at every window size).
func TestEntriesIndependentOfShardCount(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	gen := trace.NewGenerator(prof, 99)
	reqs := make([]trace.Request, 5000)
	for i := range reqs {
		reqs[i] = gen.Next()
	}
	for _, sgx := range []bool{false, true} {
		base := Config{SGX: sgx, NumBlocks: 1 << 20, Shards: 1}
		want := entriesFor(t, reqs, base)
		for _, cfg := range []Config{
			{SGX: sgx, NumBlocks: 1 << 20, Shards: 2},
			{SGX: sgx, NumBlocks: 1 << 20, Shards: 8, Window: 128},
			{SGX: sgx, NumBlocks: 1 << 20, Shards: 16, Window: 1},
		} {
			got := entriesFor(t, reqs, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sgx=%v shards=%d window=%d: entry table differs from single-worker table",
					sgx, cfg.Shards, cfg.Window)
			}
		}
	}
}

// TestOwnerPartition: every request index is owned by exactly the
// worker Owner() names, i.e. workers never write outside their slots.
// Precompute already guarantees this structurally (only the owner
// touches a slot); here we pin the mapping's range and stability.
func TestOwnerPartition(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for addr := uint64(0); addr < 4096; addr++ {
			for _, sgx := range []bool{false, true} {
				w := Owner(addr, sgx, shards)
				if w < 0 || w >= shards {
					t.Fatalf("Owner(%d, %v, %d) = %d out of range", addr, sgx, shards, w)
				}
				if w != Owner(addr, sgx, shards) {
					t.Fatal("Owner not stable")
				}
			}
		}
	}
	// All addresses of one metadata page map to one shard.
	for addr := uint64(0); addr < 4096; addr += 64 {
		w := Owner(addr, false, 8)
		for l := uint64(1); l < 64; l++ {
			if Owner(addr+l, false, 8) != w {
				t.Fatalf("page split across shards at addr %d lane %d", addr, l)
			}
		}
	}
}

// TestOverflowEntries: a lane written 129 times overflows its 7-bit
// minor counter; the entry must carry the overflow flag and the
// re-encrypted lanes for exactly the lanes written so far.
func TestOverflowEntries(t *testing.T) {
	var reqs []trace.Request
	// Two lanes of page 0, then hammer lane 0 until overflow.
	reqs = append(reqs, trace.Request{Op: trace.OpWrite, Block: 1})
	for i := 0; i < 128; i++ {
		reqs = append(reqs, trace.Request{Op: trace.OpWrite, Block: 0})
	}
	es := entriesFor(t, reqs, Config{NumBlocks: 1 << 12, Shards: 2})
	last := es[len(es)-1]
	if !last.Overflow {
		t.Fatal("128th write to one lane did not overflow")
	}
	if len(last.Reenc) != 2 {
		t.Fatalf("expected 2 re-encrypted lanes, got %d", len(last.Reenc))
	}
	if last.Reenc[0].Lane != 0 || last.Reenc[1].Lane != 1 {
		t.Fatalf("re-encrypted lanes out of order: %d, %d", last.Reenc[0].Lane, last.Reenc[1].Lane)
	}
	for _, e := range es[:len(es)-1] {
		if e.Overflow {
			t.Fatal("premature overflow entry")
		}
	}
}
