// Package counter implements the two encryption-counter block formats
// used by secure memory controllers, both packing into one 64-byte
// memory block (Figure 1 of the paper):
//
//   - Split counters (Rogers et al., MICRO 2007): one 64-bit major
//     counter shared by a 4 KB page plus 64 per-cache-line 7-bit minor
//     counters. The encryption counter of line i is major<<7 | minor[i].
//     A minor overflow bumps the major and forces re-encryption of the
//     whole page.
//   - SGX-style counters (Gueron, MEE): eight 56-bit counters plus a
//     56-bit MAC in one line. The same layout is used for the leaves
//     (encryption counters) and the intermediate nodes (nonces) of the
//     parallelizable integrity tree.
package counter

import "encoding/binary"

// BlockBytes is the size of a packed counter block.
const BlockBytes = 64

// --- Split-counter block -------------------------------------------------

// SplitMinors is the number of minor counters per split-counter block,
// one per 64-byte line of a 4 KB page.
const SplitMinors = 64

// MinorBits is the width of a minor counter.
const MinorBits = 7

// MinorMax is the largest value a minor counter can hold.
const MinorMax = 1<<MinorBits - 1

// Split is a split-counter block: the encryption counters of one 4 KB
// page. The zero value is a valid fresh page (all counters zero).
type Split struct {
	Major  uint64
	Minors [SplitMinors]uint8 // each <= MinorMax
}

// Counter returns the full encryption counter of line i.
func (s *Split) Counter(i int) uint64 {
	return s.Major<<MinorBits | uint64(s.Minors[i])
}

// Increment advances the counter of line i. If the minor counter
// overflows, the major counter is incremented, every minor is reset to
// zero, and Increment reports true: the caller must re-encrypt the whole
// page with the new counters.
func (s *Split) Increment(i int) (pageOverflow bool) {
	if s.Minors[i] < MinorMax {
		s.Minors[i]++
		return false
	}
	s.Major++
	s.Minors = [SplitMinors]uint8{}
	return true
}

// Pack serializes the block into the 64-byte memory layout: the major
// counter in the first 8 bytes, then the 64 minor counters packed 7 bits
// each into the remaining 56 bytes. Eight consecutive minors occupy
// exactly 56 bits, so the packing runs in byte-aligned 7-byte groups —
// one word store per group instead of one branch per bit (this codec is
// on the per-write hot path of every general-tree scheme).
func (s *Split) Pack() [BlockBytes]byte {
	var out [BlockBytes]byte
	binary.LittleEndian.PutUint64(out[0:8], s.Major)
	for g := 0; g < SplitMinors/8; g++ {
		var w uint64
		for j := 7; j >= 0; j-- {
			w = w<<MinorBits | uint64(s.Minors[g*8+j]&MinorMax)
		}
		put56(out[8+g*7:], w)
	}
	return out
}

// UnpackSplit parses a 64-byte split-counter block.
func UnpackSplit(b [BlockBytes]byte) Split {
	var s Split
	s.Major = binary.LittleEndian.Uint64(b[0:8])
	for g := 0; g < SplitMinors/8; g++ {
		w := get56(b[8+g*7:])
		for j := 0; j < 8; j++ {
			s.Minors[g*8+j] = uint8(w >> uint(MinorBits*j) & MinorMax)
		}
	}
	return s
}

// --- SGX-style counter block ----------------------------------------------

// SGXCounters is the number of counters per SGX-style block.
const SGXCounters = 8

// SGXCounterBits is the width of each SGX counter / nonce.
const SGXCounterBits = 56

// SGXCounterMask masks a value to SGX counter width.
const SGXCounterMask = 1<<SGXCounterBits - 1

// SGX is an SGX-style counter block: eight 56-bit counters and an
// embedded 56-bit MAC (computed over the counters and the parent
// counter; see cryptoeng.SGXMAC). It serves both as an encryption
// counter block (leaves) and as an integrity tree node.
type SGX struct {
	Ctr [SGXCounters]uint64 // each <= SGXCounterMask
	MAC uint64              // <= SGXCounterMask
}

// Increment advances counter i, reporting true on the (astronomically
// rare) 56-bit wraparound, which requires global re-encryption.
func (g *SGX) Increment(i int) (wrapped bool) {
	g.Ctr[i] = (g.Ctr[i] + 1) & SGXCounterMask
	return g.Ctr[i] == 0
}

// Pack serializes the block: eight 56-bit counters (7 bytes each,
// little endian) followed by the 56-bit MAC; the final byte is zero.
func (g *SGX) Pack() [BlockBytes]byte {
	var out [BlockBytes]byte
	off := 0
	for i := 0; i < SGXCounters; i++ {
		put56(out[off:], g.Ctr[i])
		off += 7
	}
	put56(out[off:], g.MAC)
	return out
}

// UnpackSGX parses a 64-byte SGX-style counter block.
func UnpackSGX(b [BlockBytes]byte) SGX {
	var g SGX
	off := 0
	for i := 0; i < SGXCounters; i++ {
		g.Ctr[i] = get56(b[off:])
		off += 7
	}
	g.MAC = get56(b[off:])
	return g
}

// --- ASIT counter LSB splicing ---------------------------------------------

// LSBBits is the number of low-order counter bits an ASIT shadow-table
// entry preserves per counter (Figure 9b of the paper).
const LSBBits = 49

// LSBMask masks a counter to its shadow-tracked low bits.
const LSBMask = 1<<LSBBits - 1

// SpliceLSB reconstructs a counter from the stale in-memory copy's
// high-order bits and the shadow table's low-order bits. Because a node
// is force-persisted whenever a counter's 49-bit LSB overflows, the
// in-memory MSBs are always current, so the splice is exact.
func SpliceLSB(stale, lsb uint64) uint64 {
	return (stale &^ uint64(LSBMask)) | (lsb & LSBMask)
}

// --- bit packing helpers ----------------------------------------------------

// putBits writes the low `width` bits of v at bit offset off in buf,
// as one masked 64-bit read-modify-write instead of a branch per bit.
// width must be at most 57 so the field plus any intra-byte shift fits
// in one word (every caller packs 7- or 49-bit fields).
func putBits(buf []byte, off, width int, v uint64) {
	i, shift := off>>3, uint(off&7)
	mask := uint64(1)<<uint(width) - 1
	v &= mask
	if i+8 <= len(buf) {
		w := binary.LittleEndian.Uint64(buf[i:])
		binary.LittleEndian.PutUint64(buf[i:], w&^(mask<<shift)|v<<shift)
		return
	}
	// Tail: fewer than 8 bytes left, so the field ends inside them.
	var w uint64
	n := len(buf) - i
	for j := 0; j < n; j++ {
		w |= uint64(buf[i+j]) << uint(8*j)
	}
	w = w&^(mask<<shift) | v<<shift
	for j := 0; j < n; j++ {
		buf[i+j] = byte(w >> uint(8*j))
	}
}

// getBits reads `width` (≤ 57) bits at bit offset off in buf with one
// word load; see putBits.
func getBits(buf []byte, off, width int) uint64 {
	i, shift := off>>3, uint(off&7)
	var w uint64
	if i+8 <= len(buf) {
		w = binary.LittleEndian.Uint64(buf[i:])
	} else {
		for j := i; j < len(buf); j++ {
			w |= uint64(buf[j]) << uint(8*(j-i))
		}
	}
	return w >> shift & (uint64(1)<<uint(width) - 1)
}

// put56 writes a 56-bit little-endian value into 7 bytes, preserving
// the byte after the field (word-wise read-modify-write when the
// buffer allows it).
func put56(buf []byte, v uint64) {
	const mask = uint64(1)<<56 - 1
	v &= mask
	if len(buf) >= 8 {
		w := binary.LittleEndian.Uint64(buf)
		binary.LittleEndian.PutUint64(buf, w&^mask|v)
		return
	}
	for i := 0; i < 7; i++ {
		buf[i] = byte(v >> uint(8*i))
	}
}

// get56 reads a 56-bit little-endian value from 7 bytes.
func get56(buf []byte) uint64 {
	const mask = uint64(1)<<56 - 1
	if len(buf) >= 8 {
		return binary.LittleEndian.Uint64(buf) & mask
	}
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(buf[i]) << uint(8*i)
	}
	return v
}
