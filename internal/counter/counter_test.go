package counter

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitPackUnpackRoundTrip(t *testing.T) {
	f := func(major uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Split
		s.Major = major
		for i := range s.Minors {
			s.Minors[i] = uint8(rng.Intn(MinorMax + 1))
		}
		got := UnpackSplit(s.Pack())
		return got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitZeroValue(t *testing.T) {
	var s Split
	for i := 0; i < SplitMinors; i++ {
		if s.Counter(i) != 0 {
			t.Fatalf("fresh page counter %d = %d, want 0", i, s.Counter(i))
		}
	}
	packed := s.Pack()
	for i, b := range packed {
		if b != 0 {
			t.Fatalf("fresh page pack byte %d = %#x, want 0", i, b)
		}
	}
}

func TestSplitIncrement(t *testing.T) {
	var s Split
	if s.Increment(5) {
		t.Fatal("first increment reported overflow")
	}
	if s.Counter(5) != 1 {
		t.Fatalf("counter = %d, want 1", s.Counter(5))
	}
	if s.Counter(4) != 0 {
		t.Fatal("increment leaked into neighbour")
	}
}

func TestSplitMinorOverflow(t *testing.T) {
	var s Split
	for i := 0; i < MinorMax; i++ {
		if s.Increment(0) {
			t.Fatalf("premature overflow at update %d", i)
		}
	}
	if s.Minors[0] != MinorMax {
		t.Fatalf("minor = %d, want %d", s.Minors[0], MinorMax)
	}
	s.Minors[7] = 3 // another line with history
	if !s.Increment(0) {
		t.Fatal("overflow not reported")
	}
	if s.Major != 1 {
		t.Fatalf("major = %d, want 1", s.Major)
	}
	for i, m := range s.Minors {
		if m != 0 {
			t.Fatalf("minor %d = %d after page overflow, want 0", i, m)
		}
	}
}

func TestSplitCounterMonotonicAcrossOverflow(t *testing.T) {
	// The combined counter must be strictly larger after an overflow,
	// otherwise an IV would repeat.
	var s Split
	s.Minors[0] = MinorMax
	before := s.Counter(0)
	s.Increment(0)
	if after := s.Counter(0); after <= before {
		t.Fatalf("counter went from %d to %d across overflow", before, after)
	}
}

func TestSplitCounterComposition(t *testing.T) {
	s := Split{Major: 3}
	s.Minors[10] = 5
	if got := s.Counter(10); got != 3<<MinorBits|5 {
		t.Fatalf("Counter = %d, want %d", got, 3<<MinorBits|5)
	}
}

func TestSGXPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g SGX
		for i := range g.Ctr {
			g.Ctr[i] = rng.Uint64() & SGXCounterMask
		}
		g.MAC = rng.Uint64() & SGXCounterMask
		return UnpackSGX(g.Pack()) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSGXPackLastByteZero(t *testing.T) {
	g := SGX{MAC: SGXCounterMask}
	for i := range g.Ctr {
		g.Ctr[i] = SGXCounterMask
	}
	packed := g.Pack()
	if packed[63] != 0 {
		t.Fatalf("spare byte = %#x, want 0", packed[63])
	}
}

func TestSGXIncrement(t *testing.T) {
	var g SGX
	if g.Increment(2) {
		t.Fatal("unexpected wrap")
	}
	if g.Ctr[2] != 1 || g.Ctr[1] != 0 {
		t.Fatal("increment applied to the wrong counter")
	}
	g.Ctr[7] = SGXCounterMask
	if !g.Increment(7) {
		t.Fatal("56-bit wrap not reported")
	}
	if g.Ctr[7] != 0 {
		t.Fatalf("counter = %d after wrap, want 0", g.Ctr[7])
	}
}

func TestSpliceLSB(t *testing.T) {
	cases := []struct {
		stale, lsb, want uint64
	}{
		{0, 0, 0},
		{1 << LSBBits, 5, 1<<LSBBits | 5},
		{3<<LSBBits | 123456, 99, 3<<LSBBits | 99},
		{LSBMask, 0, 0}, // stale has no MSBs set above LSB
	}
	for _, c := range cases {
		if got := SpliceLSB(c.stale, c.lsb); got != c.want {
			t.Fatalf("SpliceLSB(%#x,%#x) = %#x, want %#x", c.stale, c.lsb, got, c.want)
		}
	}
}

func TestSpliceLSBProperty(t *testing.T) {
	// Splicing a counter's own parts must reproduce it exactly.
	f := func(c uint64) bool {
		c &= SGXCounterMask
		return SpliceLSB(c, c&LSBMask) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitPackingHelpers(t *testing.T) {
	buf := make([]byte, 16)
	putBits(buf, 3, 7, 0x55)
	if got := getBits(buf, 3, 7); got != 0x55 {
		t.Fatalf("getBits = %#x, want 0x55", got)
	}
	// Overwrite with a different value: putBits must clear old bits.
	putBits(buf, 3, 7, 0x2a)
	if got := getBits(buf, 3, 7); got != 0x2a {
		t.Fatalf("after overwrite getBits = %#x, want 0x2a", got)
	}
	// Neighbouring fields must not interfere.
	putBits(buf, 10, 7, 0x7f)
	if got := getBits(buf, 3, 7); got != 0x2a {
		t.Fatalf("neighbour write clobbered field: %#x", got)
	}
}

func TestSplitPackDensity(t *testing.T) {
	// Exactly 8 + 56 bytes are used: byte layout must consume the whole
	// block when all minors are saturated.
	var s Split
	s.Major = ^uint64(0)
	for i := range s.Minors {
		s.Minors[i] = MinorMax
	}
	packed := s.Pack()
	// 64 minors * 7 bits = 448 bits = bytes 8..63 fully set.
	for i := 8; i < 64; i++ {
		if packed[i] != 0xff {
			t.Fatalf("byte %d = %#x, want 0xff", i, packed[i])
		}
	}
}

func BenchmarkSplitPack(b *testing.B) {
	var s Split
	s.Major = 12345
	for i := range s.Minors {
		s.Minors[i] = uint8(i & MinorMax)
	}
	for i := 0; i < b.N; i++ {
		_ = s.Pack()
	}
}

func BenchmarkSplitUnpack(b *testing.B) {
	var s Split
	s.Major = 12345
	packed := s.Pack()
	for i := 0; i < b.N; i++ {
		_ = UnpackSplit(packed)
	}
}

func BenchmarkSGXPack(b *testing.B) {
	var g SGX
	for i := range g.Ctr {
		g.Ctr[i] = uint64(i) * 99991
	}
	for i := 0; i < b.N; i++ {
		_ = g.Pack()
	}
}
