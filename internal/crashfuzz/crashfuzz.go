// Package crashfuzz is a differential crash-injection fuzzer for the
// secure-NVM controllers.
//
// Anubis's value proposition is correct recovery after an adversarial
// power failure, so recovery correctness must be a continuously searched
// property, not a handful of golden tests. A fuzz trial is a seeded
// random schedule: workload profile × controller scheme × crash point ×
// crash model × epoch coalescing-window size × intra-trial shard worker
// count (the warm fill runs through sim.RunSharded, which must leave
// byte-identical recoverable state) × hit-burst fast-path setting (ditto
// for sim.RunFast's closed-form burst retirement) × optional post-crash ECC
// faults, optionally landing the crash inside a two-stage commit group
// (the SetPushBudget mid-drain hook — which, with an epoch window
// armed, can tear the close's coalesced commit group half-drained). The trial forks a warmed controller copy-on-write (PR 3), runs
// the schedule, and checks a differential oracle against a golden
// shadow copy of every value the workload wrote:
//
//	(a) recovery never panics and never silently returns corrupt data:
//	    every post-recovery read either matches the golden copy or
//	    fails with a typed error;
//	(b) schemes recover — or refuse — exactly per their guarantee
//	    envelope: Strict/AGIT-Read/AGIT-Plus/ASIT must fully recover
//	    under full-ADR with committed groups; WriteBack (both families)
//	    and Osiris on the SGX tree must report ErrNotRecoverable
//	    (§2.3.2/§3 of the paper).
//
// Failing schedules auto-shrink (drop crash-model features, then bisect
// the crash point) to a minimal repro printed as a single-line replay
// token; see Shrink.
package crashfuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"

	"anubis/internal/memctrl"
	"anubis/internal/nvm"
	"anubis/internal/sim"
	"anubis/internal/trace"
)

// BlockBytes is the data access granularity.
const BlockBytes = memctrl.BlockBytes

// MaxExtra bounds the crash point: how many requests a trial may run
// past the warm point before the power failure.
const MaxExtra = 96

// PostRunRequests is the length of the post-recovery workload phase
// that checks the recovered controller is actually serviceable (this is
// the phase that catches state leaking across the crash, e.g. the
// pushBudget throttle bug).
const PostRunRequests = 24

// Profiles is the workload subset the fuzzer draws from: a read-heavy
// pointer chaser, a streaming writer, and the rewrite-heavy stop-loss
// stresser.
var Profiles = []string{"mcf", "lbm", "libquantum"}

// Combo is a (family, scheme) pair under test.
type Combo struct {
	Family sim.Family
	Scheme memctrl.Scheme
}

func (c Combo) String() string { return c.Family.String() + "/" + c.Scheme.String() }

// Combos lists every controller configuration the fuzzer exercises:
// all Bonsai schemes and all SGX schemes.
func Combos() []Combo {
	return []Combo{
		{sim.FamilyBonsai, memctrl.SchemeWriteBack},
		{sim.FamilyBonsai, memctrl.SchemeStrict},
		{sim.FamilyBonsai, memctrl.SchemeOsiris},
		{sim.FamilyBonsai, memctrl.SchemeAGITRead},
		{sim.FamilyBonsai, memctrl.SchemeAGITPlus},
		{sim.FamilyBonsai, memctrl.SchemeTriad},
		{sim.FamilyBonsai, memctrl.SchemeSelective},
		{sim.FamilySGX, memctrl.SchemeWriteBack},
		{sim.FamilySGX, memctrl.SchemeStrict},
		{sim.FamilySGX, memctrl.SchemeOsiris},
		{sim.FamilySGX, memctrl.SchemeASIT},
	}
}

// ComboByName inverts Combo.String ("bonsai/agit-plus", "sgx/asit", …).
func ComboByName(name string) (Combo, bool) {
	for _, c := range Combos() {
		if c.String() == name {
			return c, true
		}
	}
	return Combo{}, false
}

// Policy classifies what Recover must report for a combo.
type Policy uint8

const (
	// MustRecover schemes guarantee full recovery inside their envelope
	// (full-ADR, committed groups, no injected faults): Strict,
	// AGIT-Read, AGIT-Plus, ASIT.
	MustRecover Policy = iota
	// MustNotRecover schemes have no recovery mechanism and must report
	// ErrNotRecoverable under every model: WriteBack (both families)
	// and Osiris on the SGX tree (§2.3.2).
	MustNotRecover
	// MayRecover schemes recover best-effort (Osiris on the general
	// tree, Triad, Selective): success or a typed failure are both
	// acceptable; panics and silent corruption never are.
	MayRecover
)

func (p Policy) String() string {
	switch p {
	case MustRecover:
		return "must-recover"
	case MustNotRecover:
		return "must-not-recover"
	}
	return "may-recover"
}

// PolicyOf returns the recovery guarantee class of a combo.
func PolicyOf(c Combo) Policy {
	switch c.Scheme {
	case memctrl.SchemeWriteBack:
		return MustNotRecover
	case memctrl.SchemeOsiris:
		if c.Family == sim.FamilySGX {
			return MustNotRecover
		}
		return MayRecover
	case memctrl.SchemeStrict, memctrl.SchemeAGITRead, memctrl.SchemeAGITPlus, memctrl.SchemeASIT:
		return MustRecover
	}
	return MayRecover // Triad, Selective
}

// Schedule is one fully deterministic fuzz trial.
type Schedule struct {
	Profile string // workload profile name (trace.ByName)
	Combo   Combo
	Model   nvm.CrashModel

	// Epoch is the controller's coalescing-window size
	// (memctrl.Config.EpochRequests): 0 (or 1) runs the legacy eager
	// path; larger values arm the bank-parallel epoch pipeline, so
	// crashes can land mid-window with deferred tree updates only in
	// the epoch journal, or inside a half-drained close commit group.
	Epoch int

	// Shard is the intra-trial shard worker count for the warm fill
	// (sim.RunSharded): 0 runs the legacy single-plane engine; larger
	// values precompute the content plane across that many workers. The
	// sharded engine's metric- and state-neutrality contract means the
	// crash/recovery behavior must be identical at every count — this
	// dimension continuously audits that contract against the
	// differential oracle.
	Shard int

	// Fastpath, when nonzero, runs the warm fill with the hit-burst
	// fast path enabled (sim.RunFast / sim.RunShardedFast). The lane's
	// byte-identity contract means the warmed state — and therefore
	// every downstream crash/recovery outcome — must be identical with
	// the lane on or off; this dimension audits that contract against
	// the differential oracle, continuously.
	Fastpath int

	Warm  int // requests the shared warm parent executes before forking
	Extra int // requests the forked child executes before the crash

	// MidCommit, when >= 0, arms Device.SetPushBudget(MidCommit) before
	// the final pre-crash request, so the power failure lands inside
	// that request's two-stage commit group.
	MidCommit int
	// Faults is the number of post-crash CorruptBlock injections.
	Faults int

	TraceSeed int64 // workload stream seed (shared across trials → warm reuse)
	CrashSeed int64 // crash-model + fault-injection rng seed
}

// strictEnvelope reports whether the schedule stays inside the paper's
// guarantee envelope: full ADR, no injected faults. (Mid-commit crashes
// are inside the envelope — DONE_BIT REDO covers them.)
func (s Schedule) strictEnvelope() bool {
	return s.Model == nvm.CrashFullADR && s.Faults == 0
}

// String renders the single-line replay token ParseSchedule inverts.
// epoch is emitted only when armed, so pre-epoch tokens and their
// replays stay byte-identical.
func (s Schedule) String() string {
	tok := fmt.Sprintf("v1 profile=%s combo=%s model=%s warm=%d extra=%d mid=%d faults=%d tseed=%d cseed=%d",
		s.Profile, s.Combo, s.Model, s.Warm, s.Extra, s.MidCommit, s.Faults, s.TraceSeed, s.CrashSeed)
	if s.Epoch != 0 {
		tok += fmt.Sprintf(" epoch=%d", s.Epoch)
	}
	if s.Shard != 0 {
		tok += fmt.Sprintf(" shard=%d", s.Shard)
	}
	if s.Fastpath != 0 {
		tok += fmt.Sprintf(" fastpath=%d", s.Fastpath)
	}
	return tok
}

// ParseSchedule parses a replay token produced by Schedule.String.
func ParseSchedule(tok string) (Schedule, error) {
	fields := strings.Fields(strings.TrimSpace(tok))
	if len(fields) == 0 || fields[0] != "v1" {
		return Schedule{}, fmt.Errorf("crashfuzz: replay token must start with %q", "v1")
	}
	var s Schedule
	s.MidCommit = -1
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Schedule{}, fmt.Errorf("crashfuzz: malformed token field %q", f)
		}
		switch k {
		case "profile":
			if _, ok := trace.ByName(v); !ok {
				return Schedule{}, fmt.Errorf("crashfuzz: unknown profile %q", v)
			}
			s.Profile = v
		case "combo":
			c, ok := ComboByName(v)
			if !ok {
				return Schedule{}, fmt.Errorf("crashfuzz: unknown combo %q", v)
			}
			s.Combo = c
		case "model":
			m, ok := nvm.ParseCrashModel(v)
			if !ok {
				return Schedule{}, fmt.Errorf("crashfuzz: unknown crash model %q", v)
			}
			s.Model = m
		case "warm", "extra", "mid", "faults", "tseed", "cseed", "epoch", "shard", "fastpath":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("crashfuzz: field %s: %v", k, err)
			}
			switch k {
			case "warm":
				s.Warm = int(n)
			case "extra":
				s.Extra = int(n)
			case "mid":
				s.MidCommit = int(n)
			case "faults":
				s.Faults = int(n)
			case "tseed":
				s.TraceSeed = n
			case "cseed":
				s.CrashSeed = n
			case "epoch":
				s.Epoch = int(n)
			case "shard":
				s.Shard = int(n)
			case "fastpath":
				s.Fastpath = int(n)
			}
		default:
			return Schedule{}, fmt.Errorf("crashfuzz: unknown token field %q", k)
		}
	}
	if err := s.validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func (s *Schedule) validate() error {
	if s.Profile == "" {
		return errors.New("crashfuzz: schedule has no profile")
	}
	if s.Warm < 0 || s.Faults < 0 || s.Epoch < 0 || s.Shard < 0 || s.Fastpath < 0 {
		return errors.New("crashfuzz: negative schedule dimension")
	}
	if s.Extra < 1 || s.Extra > MaxExtra {
		return fmt.Errorf("crashfuzz: extra must be in [1, %d]", MaxExtra)
	}
	return nil
}

// RandomSchedule draws a schedule from the full trial space. traceSeed
// is shared across a whole fuzzing run so warm parents are reused.
func RandomSchedule(rng *rand.Rand, traceSeed int64) Schedule {
	combos := Combos()
	warms := []int{64, 256}
	epochs := []int{0, 4, 16} // legacy eager path plus two coalescing-window sizes
	shards := []int{0, 4}     // legacy single-plane engine plus a sharded warm fill
	s := Schedule{
		Profile:  Profiles[rng.Intn(len(Profiles))],
		Combo:    combos[rng.Intn(len(combos))],
		Model:    nvm.CrashModel(rng.Intn(len(nvm.CrashModels()))),
		Epoch:    epochs[rng.Intn(len(epochs))],
		Shard:    shards[rng.Intn(len(shards))],
		Fastpath: rng.Intn(2), // stepped warm fill or hit-burst fast lane

		Warm:      warms[rng.Intn(len(warms))],
		Extra:     1 + rng.Intn(MaxExtra),
		MidCommit: -1,
		TraceSeed: traceSeed,
		CrashSeed: rng.Int63(),
	}
	if rng.Intn(2) == 0 {
		s.MidCommit = rng.Intn(6)
	}
	if rng.Intn(5) < 2 {
		s.Faults = 1 + rng.Intn(3)
	}
	return s
}

// Violation is a failed oracle check: the replay token plus what went
// wrong in which phase.
type Violation struct {
	Phase    string // workload | crash | recover | oracle | post-run
	Msg      string
	Schedule Schedule
}

func (v *Violation) Error() string {
	return fmt.Sprintf("crashfuzz: %s violation: %s\n  replay: %s", v.Phase, v.Msg, v.Schedule)
}

// faultRegions lists every NVM region a post-crash fault may target.
var faultRegions = []nvm.Region{
	nvm.RegionData, nvm.RegionCounter, nvm.RegionTree,
	nvm.RegionSCT, nvm.RegionSMT, nvm.RegionST,
}

// parent is one warmed controller shared (via COW forking) by every
// trial with the same (profile, combo, warm, traceSeed).
type parent struct {
	ctrl  memctrl.Controller
	arena *trace.Arena
	// hist is the golden shadow copy of the warm phase: every value
	// written to each address, in program order.
	hist map[uint64][][BlockBytes]byte
}

type parentKey struct {
	profile  string
	combo    Combo
	epoch    int
	shard    int
	fastpath int
	warm     int
	tseed    int64
}

// Runner executes trials, caching warm parents between them. Not safe
// for concurrent use; fuzz workers each own a Runner.
type Runner struct {
	// Config overrides the controller configuration (default:
	// memctrl.TestConfig — 1 MB memory, small caches, fast trials).
	Config func(memctrl.Scheme) memctrl.Config
	// NewController overrides controller construction (default:
	// sim.NewController). Tests wrap controllers with deliberately
	// reintroduced bugs here to prove the oracle catches them.
	NewController func(f sim.Family, cfg memctrl.Config) (memctrl.Controller, error)

	arenas  *trace.ArenaCache
	parents map[parentKey]*parent
}

// NewRunner returns a Runner with the default (TestConfig) controller
// configuration.
func NewRunner() *Runner {
	return &Runner{
		Config:        memctrl.TestConfig,
		NewController: sim.NewController,
		arenas:        trace.NewArenaCache(),
		parents:       make(map[parentKey]*parent),
	}
}

// arenaLen is the request-stream length a schedule needs: warm fill,
// the largest crash window, the optional mid-commit request, and the
// post-recovery phase.
func arenaLen(warm int) int { return warm + MaxExtra + 1 + PostRunRequests }

func (r *Runner) parent(s Schedule) (*parent, error) {
	key := parentKey{profile: s.Profile, combo: s.Combo, epoch: s.Epoch, shard: s.Shard, fastpath: s.Fastpath, warm: s.Warm, tseed: s.TraceSeed}
	if p, ok := r.parents[key]; ok {
		return p, nil
	}
	prof, ok := trace.ByName(s.Profile)
	if !ok {
		return nil, fmt.Errorf("crashfuzz: unknown profile %q", s.Profile)
	}
	cfg := r.Config(s.Combo.Scheme)
	cfg.EpochRequests = s.Epoch
	ctrl, err := r.NewController(s.Combo.Family, cfg)
	if err != nil {
		return nil, fmt.Errorf("crashfuzz: %s: %w", s.Combo, err)
	}
	arena := r.arenas.Get(prof, s.TraceSeed, arenaLen(s.Warm))
	if s.Warm > 0 {
		switch {
		case s.Shard > 0 && s.Fastpath != 0:
			_, err = sim.RunShardedFast(ctrl, arena.Source(), s.Warm, s.Shard)
		case s.Shard > 0:
			// Sharded warm fill: the content-plane oracle must leave the
			// controller in byte-identical state, so crash/recovery trials
			// on top of it audit the sharding engine's neutrality contract.
			_, err = sim.RunSharded(ctrl, arena.Source(), s.Warm, s.Shard, nil)
		case s.Fastpath != 0:
			// Fast-lane warm fill: burst retirement must leave the same
			// recoverable state as the stepped engine (byte-identity
			// contract), audited here by every downstream oracle check.
			_, err = sim.RunFast(ctrl, arena.Source(), s.Warm)
		default:
			_, err = sim.Run(ctrl, arena.Source(), s.Warm)
		}
		if err != nil {
			return nil, fmt.Errorf("crashfuzz: warm fill (%s): %w", s.Combo, err)
		}
	}
	// Rebuild the warm phase's golden shadow copy without touching the
	// controller: sim.Run's writes are a pure function of the request
	// stream (sim.FillBlock), so replaying the stream reproduces them.
	p := &parent{ctrl: ctrl, arena: arena, hist: make(map[uint64][][BlockBytes]byte)}
	nBlocks := ctrl.NumBlocks()
	var data [BlockBytes]byte
	for i, req := range arena.Requests()[:s.Warm] {
		if req.Op != trace.OpWrite {
			continue
		}
		sim.FillBlock(&data, req.Block, uint64(i))
		addr := req.Block % nBlocks
		p.hist[addr] = append(p.hist[addr], data)
	}
	r.parents[key] = p
	return p, nil
}

// panicError marks an error that was a recovered panic (with stack).
type panicError struct{ msg string }

func (e *panicError) Error() string { return e.msg }

// guard runs f, converting a panic into a *panicError recording the stack.
func guard(f func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &panicError{msg: fmt.Sprintf("panic: %v\n%s", rec, debug.Stack())}
		}
	}()
	return f()
}

func isPanic(err error) bool {
	var pe *panicError
	return errors.As(err, &pe)
}

// typedRecoveryError reports whether a Recover error is part of the
// documented taxonomy (callers can handle it); anything else escaping
// Recover is a hardening bug the fuzzer must flag.
func typedRecoveryError(err error) bool {
	return errors.Is(err, memctrl.ErrUnrecoverable) || errors.Is(err, memctrl.ErrNotRecoverable)
}

// RunTrial executes one schedule and returns the violation it found,
// or nil when every oracle check passed.
func (r *Runner) RunTrial(s Schedule) *Violation {
	if err := s.validate(); err != nil {
		return &Violation{Phase: "setup", Msg: err.Error(), Schedule: s}
	}
	p, err := r.parent(s)
	if err != nil {
		return &Violation{Phase: "setup", Msg: err.Error(), Schedule: s}
	}
	child := p.ctrl.Clone()
	dev := child.Device()
	dev.TrackInflight(true)
	rng := rand.New(rand.NewSource(s.CrashSeed))
	nBlocks := child.NumBlocks()
	policy := PolicyOf(s.Combo)
	strict := policy == MustRecover && s.strictEnvelope()

	// Overlay golden history for the trial's own writes; lookups fall
	// back to the shared warm history.
	overlay := make(map[uint64][][BlockBytes]byte)
	record := func(addr uint64, d [BlockBytes]byte) {
		overlay[addr] = append(overlay[addr], d)
	}
	latest := func(addr uint64) ([BlockBytes]byte, bool) {
		if h := overlay[addr]; len(h) > 0 {
			return h[len(h)-1], true
		}
		if h := p.hist[addr]; len(h) > 0 {
			return h[len(h)-1], true
		}
		return [BlockBytes]byte{}, false
	}
	inHistory := func(addr uint64, d [BlockBytes]byte) bool {
		if d == ([BlockBytes]byte{}) {
			return true // never-written / rolled-back-to-absent state
		}
		for _, h := range overlay[addr] {
			if h == d {
				return true
			}
		}
		for _, h := range p.hist[addr] {
			if h == d {
				return true
			}
		}
		return false
	}
	goldenAddrs := func() []uint64 {
		out := make([]uint64, 0, len(p.hist)+len(overlay))
		for a := range p.hist {
			out = append(out, a)
		}
		for a := range overlay {
			if _, shared := p.hist[a]; !shared {
				out = append(out, a)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	// --- phase 1: pre-crash workload window --------------------------------
	// Mirrors sim.Run request-for-request so the golden copy matches the
	// bytes the controller saw; the final request optionally runs with
	// the mid-drain power-loss budget armed.
	total := s.Extra
	if s.MidCommit >= 0 {
		total++
	}
	cur := p.arena.SourceAt(s.Warm)
	werr := guard(func() error {
		var data [BlockBytes]byte
		for i := 0; i < total; i++ {
			if s.MidCommit >= 0 && i == total-1 {
				dev.SetPushBudget(s.MidCommit)
			}
			req := cur.Next()
			child.AdvanceTo(child.Now() + req.GapNS)
			addr := req.Block % nBlocks
			if req.Op == trace.OpWrite {
				sim.FillBlock(&data, req.Block, uint64(i))
				if err := child.WriteBlock(addr, data); err != nil {
					return fmt.Errorf("write %d: %w", addr, err)
				}
				record(addr, data)
			} else if _, err := child.ReadBlock(addr); err != nil {
				return fmt.Errorf("read %d: %w", addr, err)
			}
		}
		return nil
	})
	if werr != nil {
		// Nothing has been corrupted yet: the pre-crash workload must
		// run clean on a forked warm controller.
		return &Violation{Phase: "workload", Msg: werr.Error(), Schedule: s}
	}

	// --- phase 2: power failure + optional media faults --------------------
	if cerr := guard(func() error { child.CrashWith(s.Model, rng); return nil }); cerr != nil {
		return &Violation{Phase: "crash", Msg: cerr.Error(), Schedule: s}
	}
	for j := 0; j < s.Faults; j++ {
		reg := faultRegions[rng.Intn(len(faultRegions))]
		blocks := dev.BlocksIn(reg)
		if len(blocks) == 0 {
			continue
		}
		dev.CorruptBlock(reg, blocks[rng.Intn(len(blocks))], rng.Intn(BlockBytes), byte(1+rng.Intn(255)))
	}

	// --- phase 3: recovery --------------------------------------------------
	var rerr error
	if gerr := guard(func() error { _, rerr = child.Recover(); return nil }); gerr != nil {
		return &Violation{Phase: "recover", Msg: gerr.Error(), Schedule: s}
	}
	switch policy {
	case MustNotRecover:
		if !errors.Is(rerr, memctrl.ErrNotRecoverable) {
			return &Violation{Phase: "recover",
				Msg:      fmt.Sprintf("%s must report ErrNotRecoverable under every model; got %v", s.Combo, rerr),
				Schedule: s}
		}
	case MustRecover:
		if strict && rerr != nil {
			return &Violation{Phase: "recover",
				Msg:      fmt.Sprintf("%s must fully recover inside its envelope (full-ADR, no faults); got %v", s.Combo, rerr),
				Schedule: s}
		}
		fallthrough
	case MayRecover:
		if rerr != nil && !typedRecoveryError(rerr) {
			return &Violation{Phase: "recover",
				Msg:      fmt.Sprintf("untyped recovery error (want ErrUnrecoverable/ErrNotRecoverable wrapping): %v", rerr),
				Schedule: s}
		}
	}

	// --- phase 4: differential read-back oracle ----------------------------
	// A controller that failed recovery hard (ErrUnrecoverable) refuses
	// service; the oracle only audits serviceable states. WriteBack's
	// ErrNotRecoverable leaves it serviceable by design (demonstration
	// reads), so it is audited too.
	serviceable := rerr == nil || errors.Is(rerr, memctrl.ErrNotRecoverable)
	oracle := func(phase string) *Violation {
		var v *Violation
		oerr := guard(func() error {
			for _, addr := range goldenAddrs() {
				got, err := child.ReadBlock(addr)
				if err != nil {
					if strict {
						v = &Violation{Phase: phase,
							Msg:      fmt.Sprintf("block %d must verify after in-envelope recovery; got %v", addr, err),
							Schedule: s}
						return nil
					}
					continue // typed verification failure: never silent
				}
				if strict {
					if want, ok := latest(addr); ok && got != want {
						v = &Violation{Phase: phase,
							Msg:      fmt.Sprintf("block %d lost committed data: got % x…, want % x…", addr, got[:8], want[:8]),
							Schedule: s}
						return nil
					}
				} else if !inHistory(addr, got) {
					v = &Violation{Phase: phase,
						Msg:      fmt.Sprintf("block %d silently returned corrupt data % x… (matches no golden value)", addr, got[:8]),
						Schedule: s}
					return nil
				}
			}
			return nil
		})
		if oerr != nil {
			return &Violation{Phase: phase, Msg: oerr.Error(), Schedule: s}
		}
		return v
	}
	if serviceable {
		if v := oracle("oracle"); v != nil {
			return v
		}
	}

	// --- phase 5: post-recovery workload -----------------------------------
	// A recovered controller must be genuinely serviceable: run more of
	// the trace and re-check the strict oracle, which is what catches
	// crash state leaking into the recovered run (e.g. a still-armed
	// pushBudget silently throttling commit groups).
	if rerr == nil {
		post := p.arena.SourceAt(s.Warm + total)
		perr := guard(func() error {
			var data [BlockBytes]byte
			for i := 0; i < PostRunRequests; i++ {
				req := post.Next()
				child.AdvanceTo(child.Now() + req.GapNS)
				addr := req.Block % nBlocks
				if req.Op == trace.OpWrite {
					sim.FillBlock(&data, req.Block, uint64(total+i))
					if err := child.WriteBlock(addr, data); err != nil {
						return fmt.Errorf("write %d: %w", addr, err)
					}
					record(addr, data)
				} else if _, err := child.ReadBlock(addr); err != nil {
					return fmt.Errorf("read %d: %w", addr, err)
				}
			}
			return nil
		})
		if isPanic(perr) {
			return &Violation{Phase: "post-run", Msg: perr.Error(), Schedule: s}
		}
		if strict {
			if perr != nil {
				return &Violation{Phase: "post-run",
					Msg:      fmt.Sprintf("recovered controller rejected in-envelope workload: %v", perr),
					Schedule: s}
			}
			if v := oracle("post-run"); v != nil {
				return v
			}
		}
	}
	return nil
}
