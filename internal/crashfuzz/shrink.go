package crashfuzz

// Shrinking: reduce a failing schedule to a minimal repro.
//
// The order is deliberate — drop whole crash-model features first
// (the hit-burst fast path, the sharded warm fill, fault injection, the
// mid-commit hook, the relaxed persistence model, then the epoch
// coalescing window), because a repro without them implicates a much
// smaller slice of the system; the fast path goes first of all because
// a repro surviving on the stepped engine clears the entire closed-form
// burst machinery from the suspect set, and the shard worker count next
// because surviving on the legacy engine clears the content-plane
// oracle too. Only then bisect
// the crash point (Extra) and the warm fill (Warm), which shortens the
// trace a human must replay.

// ShrinkBudget caps the number of trial re-executions one Shrink call
// may spend. Each candidate simplification costs one trial.
const ShrinkBudget = 64

// Shrink minimizes a failing schedule. It returns the smallest schedule
// (per the feature-then-bisect order above) that still fails, together
// with that schedule's violation. If s does not actually fail (e.g. a
// flaky report), Shrink returns s unchanged and a nil violation.
func (r *Runner) Shrink(s Schedule) (Schedule, *Violation) {
	budget := ShrinkBudget
	try := func(cand Schedule) *Violation {
		if budget <= 0 {
			return nil
		}
		budget--
		return r.RunTrial(cand)
	}
	best := try(s)
	if best == nil {
		return s, nil
	}

	// 1. Feature dropping: each feature is removed independently and
	// kept out only if the failure survives.
	if s.Fastpath != 0 {
		cand := s
		cand.Fastpath = 0
		if v := try(cand); v != nil {
			s, best = cand, v
		}
	}
	if s.Shard != 0 {
		cand := s
		cand.Shard = 0
		if v := try(cand); v != nil {
			s, best = cand, v
		}
	}
	if s.Faults != 0 {
		cand := s
		cand.Faults = 0
		if v := try(cand); v != nil {
			s, best = cand, v
		}
	}
	if s.MidCommit >= 0 {
		cand := s
		cand.MidCommit = -1
		if v := try(cand); v != nil {
			s, best = cand, v
		}
	}
	if s.Model != 0 {
		cand := s
		cand.Model = 0 // CrashFullADR
		if v := try(cand); v != nil {
			s, best = cand, v
		}
	}
	if s.Epoch != 0 {
		// A repro surviving on the legacy eager path clears the epoch
		// pipeline (deferred tree updates, journal, close group) entirely.
		cand := s
		cand.Epoch = 0
		if v := try(cand); v != nil {
			s, best = cand, v
		}
	}

	// 2. Bisect the crash point: greedy halving, then linear backoff.
	for s.Extra > 1 && budget > 0 {
		cand := s
		cand.Extra = s.Extra / 2
		if v := try(cand); v != nil {
			s, best = cand, v
			continue
		}
		cand.Extra = s.Extra - 1
		if v := try(cand); v != nil {
			s, best = cand, v
			continue
		}
		break
	}

	// 3. Shrink the warm fill the same way.
	for s.Warm > 0 && budget > 0 {
		cand := s
		cand.Warm = s.Warm / 2
		if v := try(cand); v != nil {
			s, best = cand, v
			continue
		}
		cand.Warm = 0
		if v := try(cand); v != nil {
			s, best = cand, v
		}
		break
	}
	return s, best
}
