package crashfuzz

import (
	"math/rand"
	"strings"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/nvm"
	"anubis/internal/sim"
)

func TestReplayTokenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		s := RandomSchedule(rng, 99)
		got, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", s, got)
		}
	}
	if _, err := ParseSchedule("v0 nope"); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ParseSchedule("v1 combo=bogus/zap extra=1 profile=mcf"); err == nil {
		t.Fatal("bad combo accepted")
	}
}

func TestPolicyTable(t *testing.T) {
	want := map[string]Policy{
		"bonsai/writeback": MustNotRecover,
		"sgx/writeback":    MustNotRecover,
		"sgx/osiris":       MustNotRecover,
		"bonsai/osiris":    MayRecover,
		"bonsai/strict":    MustRecover,
		"sgx/strict":       MustRecover,
		"bonsai/agit-read": MustRecover,
		"bonsai/agit-plus": MustRecover,
		"sgx/asit":         MustRecover,
		"bonsai/triad":     MayRecover,
		"bonsai/selective": MayRecover,
	}
	for _, c := range Combos() {
		if got := PolicyOf(c); got != want[c.String()] {
			t.Fatalf("PolicyOf(%s) = %v, want %v", c, got, want[c.String()])
		}
	}
}

// TestTrialMatrixSmoke runs every combo × crash model × mid-commit
// setting once: the oracle must report zero violations on the real
// (unbroken) controllers.
func TestTrialMatrixSmoke(t *testing.T) {
	r := NewRunner()
	cseed := int64(1)
	for _, combo := range Combos() {
		for _, model := range nvm.CrashModels() {
			for _, mid := range []int{-1, 2} {
				s := Schedule{
					Profile: "libquantum", Combo: combo, Model: model,
					Warm: 64, Extra: 12, MidCommit: mid, Faults: 0,
					TraceSeed: 99, CrashSeed: cseed,
				}
				cseed++
				if v := r.RunTrial(s); v != nil {
					t.Fatalf("%v", v)
				}
			}
		}
	}
}

// TestTrialWithFaultsSmoke injects media faults on top of each crash
// model: recovery must degrade to typed errors, never violations.
func TestTrialWithFaultsSmoke(t *testing.T) {
	r := NewRunner()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		s := RandomSchedule(rng, 99)
		s.Faults = 1 + rng.Intn(3)
		if v := r.RunTrial(s); v != nil {
			t.Fatalf("%v", v)
		}
	}
}

func TestTrialDeterminism(t *testing.T) {
	s := Schedule{
		Profile: "mcf", Combo: Combo{sim.FamilyBonsai, memctrl.SchemeAGITPlus},
		Model: nvm.CrashTornBlock, Warm: 64, Extra: 20, MidCommit: 3, Faults: 2,
		TraceSeed: 99, CrashSeed: 12345,
	}
	a := NewRunner().RunTrial(s)
	b := NewRunner().RunTrial(s)
	if (a == nil) != (b == nil) {
		t.Fatalf("trial not deterministic: %v vs %v", a, b)
	}
	if a != nil && (a.Phase != b.Phase || a.Msg != b.Msg) {
		t.Fatalf("violation not deterministic:\n%v\n%v", a, b)
	}
}

// TestEpochMidDrainRegressionSeeds pins the epoch-pipeline crash
// surface: with a coalescing window armed (Epoch=4), the mid-commit
// budget hook sweeps over small budgets and crash points so the power
// failure lands mid-window (deferred tree updates only in the epoch
// journal, stale root register) and — on crash points that close a
// window — inside the close's coalesced commit group, half-drained.
// Every deferring combo must satisfy the oracle under all three crash
// models; these are the seeds that caught torn close groups during
// development, kept as a deterministic regression net.
func TestEpochMidDrainRegressionSeeds(t *testing.T) {
	r := NewRunner()
	deferring := []Combo{
		{sim.FamilyBonsai, memctrl.SchemeStrict},
		{sim.FamilyBonsai, memctrl.SchemeAGITPlus},
		{sim.FamilySGX, memctrl.SchemeASIT},
	}
	cseed := int64(4242)
	for _, combo := range deferring {
		for _, model := range nvm.CrashModels() {
			for _, mid := range []int{0, 1, 2, 3, 4, 5} {
				for _, extra := range []int{4, 9} {
					s := Schedule{
						Profile: "libquantum", Combo: combo, Model: model,
						Epoch: 4, Warm: 64, Extra: extra, MidCommit: mid,
						TraceSeed: 99, CrashSeed: cseed,
					}
					cseed++
					if v := r.RunTrial(s); v != nil {
						t.Fatalf("%v", v)
					}
				}
			}
		}
	}
}

// TestEpochReplayTokens replays checked-in epoch-pipeline repro tokens
// (the epoch=N token extension; absent = legacy path for old corpora)
// and requires a clean run on the fixed controllers.
func TestEpochReplayTokens(t *testing.T) {
	r := NewRunner()
	tokens := []string{
		// Mid-epoch crash, window open: journal replay path.
		"v1 profile=libquantum combo=sgx/asit model=full-adr warm=64 extra=13 mid=-1 faults=0 tseed=99 cseed=11 epoch=16",
		"v1 profile=mcf combo=bonsai/agit-plus model=torn-block warm=64 extra=21 mid=-1 faults=0 tseed=99 cseed=12 epoch=16",
		// Half-drained close group: DONE_BIT redo must retire the window.
		"v1 profile=libquantum combo=bonsai/strict model=full-adr warm=64 extra=8 mid=1 faults=0 tseed=99 cseed=13 epoch=4",
		"v1 profile=libquantum combo=sgx/asit model=partial-drain warm=64 extra=8 mid=1 faults=0 tseed=99 cseed=14 epoch=4",
	}
	for _, tok := range tokens {
		s, err := ParseSchedule(tok)
		if err != nil {
			t.Fatalf("token %q: %v", tok, err)
		}
		if s.Epoch == 0 {
			t.Fatalf("token %q lost its epoch dimension", tok)
		}
		if v := r.RunTrial(s); v != nil {
			t.Fatalf("%v", v)
		}
	}
	// Back-compat: a pre-epoch token parses to the legacy path.
	s, err := ParseSchedule("v1 profile=mcf combo=bonsai/strict model=full-adr warm=64 extra=5 mid=-1 faults=0 tseed=99 cseed=1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 0 {
		t.Fatalf("epoch-less token parsed to Epoch=%d, want 0", s.Epoch)
	}
}

// TestFastpathWarmFillTrials pins the fast-path schedule dimension:
// every combo warms through the hit-burst lane (plain and sharded, with
// and without an epoch window) and must satisfy the full differential
// oracle — the byte-identity contract extended through crash, recovery
// and post-run service. Tokens carrying fastpath=1 must round-trip, and
// epoch-less/fastpath-less corpora must still parse to the legacy path.
func TestFastpathWarmFillTrials(t *testing.T) {
	r := NewRunner()
	cseed := int64(9000)
	for _, combo := range Combos() {
		for _, variant := range []struct{ shard, epoch int }{{0, 0}, {4, 0}, {0, 4}} {
			s := Schedule{
				Profile: "libquantum", Combo: combo, Model: nvm.CrashFullADR,
				Epoch: variant.epoch, Shard: variant.shard, Fastpath: 1,
				Warm: 256, Extra: 16, MidCommit: -1,
				TraceSeed: 99, CrashSeed: cseed,
			}
			cseed++
			rt, err := ParseSchedule(s.String())
			if err != nil || rt != s {
				t.Fatalf("fastpath token %q did not round-trip: %+v (%v)", s.String(), rt, err)
			}
			if v := r.RunTrial(s); v != nil {
				t.Fatalf("%v", v)
			}
		}
	}
	s, err := ParseSchedule("v1 profile=mcf combo=bonsai/strict model=full-adr warm=64 extra=5 mid=-1 faults=0 tseed=99 cseed=1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fastpath != 0 {
		t.Fatalf("fastpath-less token parsed to Fastpath=%d, want 0", s.Fastpath)
	}
}

// --- deliberately broken controllers: the fuzzer must catch them -----------

// panickyRecover wraps a controller whose Recover panics, simulating an
// unhardened recovery path hitting corrupt-image input.
type panickyRecover struct{ memctrl.Controller }

func (p *panickyRecover) Recover() (*memctrl.RecoveryReport, error) {
	panic("index out of range [1099511627775] with length 256")
}
func (p *panickyRecover) Clone() memctrl.Controller {
	return &panickyRecover{Controller: p.Controller.Clone()}
}

func TestFuzzerCatchesRecoveryPanicAndShrinks(t *testing.T) {
	r := NewRunner()
	r.NewController = func(f sim.Family, cfg memctrl.Config) (memctrl.Controller, error) {
		c, err := sim.NewController(f, cfg)
		if err != nil {
			return nil, err
		}
		return &panickyRecover{Controller: c}, nil
	}
	s := Schedule{
		Profile: "libquantum", Combo: Combo{sim.FamilyBonsai, memctrl.SchemeStrict},
		Model: nvm.CrashTornBlock, Warm: 256, Extra: 77, MidCommit: 4, Faults: 3,
		Fastpath: 1, TraceSeed: 99, CrashSeed: 7,
	}
	v := r.RunTrial(s)
	if v == nil || v.Phase != "recover" {
		t.Fatalf("panicking Recover not caught: %v", v)
	}
	if !strings.Contains(v.Msg, "panic:") {
		t.Fatalf("violation does not identify the panic: %s", v.Msg)
	}
	min, mv := r.Shrink(s)
	if mv == nil {
		t.Fatal("shrink lost the failure")
	}
	if min.Faults != 0 || min.MidCommit != -1 || min.Model != nvm.CrashFullADR || min.Fastpath != 0 {
		t.Fatalf("shrink kept irrelevant features: %+v", min)
	}
	if min.Extra != 1 || min.Warm != 0 {
		t.Fatalf("shrink did not bisect to the minimal crash point: %+v", min)
	}
	// The minimal repro replays from its single-line token.
	rt, err := ParseSchedule(min.String())
	if err != nil {
		t.Fatalf("minimal repro token does not parse: %v", err)
	}
	if v := r.RunTrial(rt); v == nil {
		t.Fatal("replayed minimal repro does not fail")
	}
}

// leakyBudget wraps a controller that re-arms the pre-fix pushBudget
// bug: Crash "forgets" to disarm the mid-drain throttle, so the
// recovered run's commit groups silently stop draining.
type leakyBudget struct {
	memctrl.Controller
	armed int
}

func (l *leakyBudget) CrashWith(m nvm.CrashModel, rng *rand.Rand) {
	l.Controller.CrashWith(m, rng)
	if l.armed >= 0 {
		// Pre-fix behaviour: the budget armed before the crash survives
		// into the recovered run.
		l.Controller.Device().SetPushBudget(l.armed)
	}
}
func (l *leakyBudget) Crash() { l.CrashWith(nvm.CrashFullADR, nil) }
func (l *leakyBudget) Clone() memctrl.Controller {
	return &leakyBudget{Controller: l.Controller.Clone(), armed: l.armed}
}

func TestFuzzerCatchesPushBudgetLeak(t *testing.T) {
	r := NewRunner()
	r.NewController = func(f sim.Family, cfg memctrl.Config) (memctrl.Controller, error) {
		c, err := sim.NewController(f, cfg)
		if err != nil {
			return nil, err
		}
		return &leakyBudget{Controller: c, armed: 0}, nil
	}
	s := Schedule{
		Profile: "libquantum", Combo: Combo{sim.FamilyBonsai, memctrl.SchemeStrict},
		Model: nvm.CrashFullADR, Warm: 64, Extra: 8, MidCommit: 2,
		TraceSeed: 99, CrashSeed: 3,
	}
	v := r.RunTrial(s)
	if v == nil {
		t.Fatal("leaked pushBudget not caught")
	}
	if v.Phase != "post-run" {
		t.Fatalf("leak caught in phase %q, want post-run: %v", v.Phase, v)
	}
	min, mv := r.Shrink(s)
	if mv == nil {
		t.Fatal("shrink lost the failure")
	}
	if _, err := ParseSchedule(min.String()); err != nil {
		t.Fatalf("minimal repro token does not parse: %v", err)
	}
}

// --- native fuzz targets ----------------------------------------------------

// fuzzRunner is shared across fuzz iterations of one worker process so
// warm parents are reused (each worker owns its own process).
var fuzzRunner = NewRunner()

// FuzzTrial is the native crash-injection fuzz target: the engine
// mutates the schedule dimensions and every execution must satisfy the
// differential oracle.
func FuzzTrial(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint16(10), int8(-1), uint8(0), uint8(0), uint8(0))
	f.Add(int64(99), uint8(4), uint8(1), uint8(2), uint16(33), int8(3), uint8(1), uint8(1), uint8(1))
	f.Add(int64(7), uint8(10), uint8(2), uint8(1), uint16(80), int8(0), uint8(2), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, cseed int64, combo, model, profile uint8, extra uint16, mid int8, faults, epoch, fastpath uint8) {
		combos := Combos()
		epochs := []int{0, 4, 16}
		s := Schedule{
			Profile:   Profiles[int(profile)%len(Profiles)],
			Combo:     combos[int(combo)%len(combos)],
			Model:     nvm.CrashModel(int(model) % len(nvm.CrashModels())),
			Epoch:     epochs[int(epoch)%len(epochs)],
			Fastpath:  int(fastpath) % 2,
			Warm:      64,
			Extra:     1 + int(extra)%MaxExtra,
			MidCommit: -1,
			Faults:    int(faults) % 4,
			TraceSeed: 99,
			CrashSeed: cseed,
		}
		if mid >= 0 {
			s.MidCommit = int(mid) % 8
		}
		if v := fuzzRunner.RunTrial(s); v != nil {
			t.Fatalf("%v", v)
		}
	})
}

// FuzzParseSchedule hardens the replay-token parser: it must never
// panic, and accepted tokens must re-encode to an equivalent schedule.
func FuzzParseSchedule(f *testing.F) {
	f.Add("v1 profile=mcf combo=bonsai/strict model=full-adr warm=64 extra=10 mid=-1 faults=0 tseed=99 cseed=1")
	f.Add("v1 profile=lbm combo=sgx/asit model=torn-block warm=0 extra=96 mid=5 faults=3 tseed=-4 cseed=-9")
	f.Add("v1 profile=lbm combo=sgx/asit model=partial-drain warm=64 extra=7 mid=1 faults=0 tseed=99 cseed=8 epoch=4")
	f.Add("v1 profile=mcf combo=bonsai/agit-plus model=full-adr warm=64 extra=9 mid=-1 faults=0 tseed=99 cseed=21 shard=4 fastpath=1")
	f.Add("v1 garbage")
	f.Fuzz(func(t *testing.T, tok string) {
		s, err := ParseSchedule(tok)
		if err != nil {
			return
		}
		rt, err := ParseSchedule(s.String())
		if err != nil || rt != s {
			t.Fatalf("accepted token %q did not round-trip: %+v vs %+v (%v)", tok, s, rt, err)
		}
	})
}
