package nvm

// Image persistence: a Device can be serialized to an io.Writer and
// restored later, modeling a real NVM DIMM whose contents survive a
// process (not just a power) cycle. The image captures everything in
// the persistence domain — the block stores, data sideband, on-chip
// persistent registers, committed-but-undrained groups, and wear
// counters. Volatile timing state is deliberately excluded.
//
// The on-disk format is the original map-based v1 gob encoding, so
// images written before the paged-store rewrite still load. Save
// flattens the paged store into maps; Load rebuilds pages from them.

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// imageMagic guards against feeding arbitrary files to Load.
const imageMagic = "anubis-nvm-image-v1"

// deviceImage is the serialized form of a Device.
type deviceImage struct {
	Magic  string
	Timing Timing

	Store [numRegions]map[uint64][BlockBytes]byte
	Side  map[uint64]Sideband
	Regs  map[string][BlockBytes]byte
	Wear  [numRegions]map[uint64]uint64

	Staged  []PendingWrite
	DoneBit bool

	// Journal is the persistent epoch journal (see journal.go). Absent
	// in pre-epoch images; gob leaves the field nil, which loads as an
	// empty journal.
	Journal []JournalEntry
}

// Save writes the device's persistent state to w.
func (d *Device) Save(w io.Writer) error {
	img := deviceImage{
		Magic:   imageMagic,
		Timing:  d.timing,
		Side:    make(map[uint64]Sideband),
		Regs:    d.regs,
		Staged:  d.staged,
		DoneBit: d.doneBit,
		Journal: d.journal,
	}
	for r := Region(0); r < numRegions; r++ {
		store := make(map[uint64][BlockBytes]byte)
		wear := make(map[uint64]uint64)
		d.store[r].forEachPage(func(base uint64, p *page) {
			for o := 0; o < pageBlocks; o++ {
				idx := base + uint64(o)
				if p.present[o>>6]&(1<<(uint(o)&63)) != 0 {
					store[idx] = p.data[o]
					if r == RegionData && p.side != nil {
						if s := p.side[o]; s != (Sideband{}) {
							img.Side[idx] = s
						}
					}
				}
				// Wear survives Erase: record it for every cell ever
				// written to media, present or not.
				if c := p.wear[o]; c > 0 {
					wear[idx] = c
				}
			}
		})
		img.Store[r] = store
		img.Wear[r] = wear
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("nvm: save image: %w", err)
	}
	return nil
}

// StateDigest returns a deterministic FNV-1a hash over the device's
// persistent state — exactly the quantities Save serializes, but in a
// canonical order. Save's own byte stream is NOT comparable across
// runs (gob ranges over the flattened maps in randomized order), so
// equivalence tests that want "byte-identical device image" semantics
// compare digests instead. Two devices with equal digests hold
// identical persistent images.
func (d *Device) StateDigest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	mix64 := func(v uint64) {
		for i := uint(0); i < 64; i += 8 {
			mix(byte(v >> i))
		}
	}
	mixSide := func(s Sideband) {
		for _, b := range s.ECC {
			mix(b)
		}
		mix64(s.MAC)
		mix(s.Phase)
	}
	mix64(d.timing.ReadNS)
	mix64(d.timing.WriteNS)
	for r := Region(0); r < numRegions; r++ {
		mix64(uint64(r))
		// forEachPage visits pages in ascending page-index order, and
		// block order within a page is fixed, so this walk is canonical.
		d.store[r].forEachPage(func(base uint64, p *page) {
			for o := 0; o < pageBlocks; o++ {
				present := p.present[o>>6]&(1<<(uint(o)&63)) != 0
				if !present && p.wear[o] == 0 {
					continue
				}
				mix64(base + uint64(o))
				mix64(p.wear[o])
				if !present {
					continue
				}
				mix(1)
				for _, b := range p.data[o] {
					mix(b)
				}
				if r == RegionData && p.side != nil {
					mixSide(p.side[o])
				}
			}
		})
	}
	names := make([]string, 0, len(d.regs))
	for k := range d.regs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		for i := 0; i < len(k); i++ {
			mix(k[i])
		}
		blk := d.regs[k]
		for _, b := range blk {
			mix(b)
		}
	}
	for i := range d.staged {
		w := &d.staged[i]
		mix64(uint64(w.Region))
		mix64(w.Index)
		for _, b := range w.Block {
			mix(b)
		}
		if w.HasSide {
			mixSide(w.Side)
		}
		for i := 0; i < len(w.RegName); i++ {
			mix(w.RegName[i])
		}
		if w.JOp != JournalNone {
			mix(byte(w.JOp))
			mix64(w.JKey)
			for _, b := range w.JOld {
				mix(b)
			}
		}
	}
	if d.doneBit {
		mix(1)
	}
	// Journal entries in note order: the order recovery replays them in
	// is part of the persistent state.
	for i := range d.journal {
		e := &d.journal[i]
		mix64(e.Key)
		for _, b := range e.Old {
			mix(b)
		}
		for _, b := range e.New {
			mix(b)
		}
	}
	return h
}

// LoadDevice restores a Device from an image produced by Save. The
// returned device is in post-power-cycle state: bank/WPQ timing is
// reset, and any committed-but-undrained group is still pending its
// RedoCommitted.
func LoadDevice(r io.Reader) (*Device, error) {
	var img deviceImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("nvm: load image: %w", err)
	}
	if img.Magic != imageMagic {
		return nil, fmt.Errorf("nvm: not an NVM image (magic %q)", img.Magic)
	}
	d := NewDevice(img.Timing)
	for reg := Region(0); reg < numRegions; reg++ {
		s := &d.store[reg]
		for idx, blk := range img.Store[reg] {
			b := blk
			s.setPresent(idx, &b)
		}
		for idx, c := range img.Wear[reg] {
			p, o := s.slot(idx)
			p.wear[o] = c
		}
	}
	for idx, sb := range img.Side {
		p, o := d.store[RegionData].slot(idx)
		if p.side == nil {
			p.side = new([pageBlocks]Sideband)
		}
		p.side[o] = sb
	}
	if img.Regs != nil {
		d.regs = img.Regs
	}
	d.staged = img.Staged
	d.doneBit = img.DoneBit
	if len(img.Journal) > 0 {
		d.journal = img.Journal
		d.journalIdx = make(map[uint64]int, len(img.Journal))
		for i := range img.Journal {
			d.journalIdx[img.Journal[i].Key] = i
		}
	}
	return d, nil
}
