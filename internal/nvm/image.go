package nvm

// Image persistence: a Device can be serialized to an io.Writer and
// restored later, modeling a real NVM DIMM whose contents survive a
// process (not just a power) cycle. The image captures everything in
// the persistence domain — the block stores, data sideband, on-chip
// persistent registers, committed-but-undrained groups, and wear
// counters. Volatile timing state is deliberately excluded.

import (
	"encoding/gob"
	"fmt"
	"io"
)

// imageMagic guards against feeding arbitrary files to Load.
const imageMagic = "anubis-nvm-image-v1"

// deviceImage is the serialized form of a Device.
type deviceImage struct {
	Magic  string
	Timing Timing

	Store [numRegions]map[uint64][BlockBytes]byte
	Side  map[uint64]Sideband
	Regs  map[string][BlockBytes]byte
	Wear  [numRegions]map[uint64]uint64

	Staged  []PendingWrite
	DoneBit bool
}

// Save writes the device's persistent state to w.
func (d *Device) Save(w io.Writer) error {
	img := deviceImage{
		Magic:   imageMagic,
		Timing:  d.timing,
		Store:   d.store,
		Side:    d.side,
		Regs:    d.regs,
		Wear:    d.wear,
		Staged:  d.staged,
		DoneBit: d.doneBit,
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("nvm: save image: %w", err)
	}
	return nil
}

// LoadDevice restores a Device from an image produced by Save. The
// returned device is in post-power-cycle state: bank/WPQ timing is
// reset, and any committed-but-undrained group is still pending its
// RedoCommitted.
func LoadDevice(r io.Reader) (*Device, error) {
	var img deviceImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("nvm: load image: %w", err)
	}
	if img.Magic != imageMagic {
		return nil, fmt.Errorf("nvm: not an NVM image (magic %q)", img.Magic)
	}
	d := NewDevice(img.Timing)
	d.store = img.Store
	d.side = img.Side
	d.regs = img.Regs
	d.wear = img.Wear
	d.staged = img.Staged
	d.doneBit = img.DoneBit
	for r := range d.store {
		if d.store[r] == nil {
			d.store[r] = make(map[uint64][BlockBytes]byte)
		}
		if d.wear[r] == nil {
			d.wear[r] = make(map[uint64]uint64)
		}
	}
	if d.side == nil {
		d.side = make(map[uint64]Sideband)
	}
	if d.regs == nil {
		d.regs = make(map[string][BlockBytes]byte)
	}
	return d, nil
}
