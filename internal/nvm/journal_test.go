package nvm

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestJournalNoteUpsert(t *testing.T) {
	d := newDev()
	d.Push(PendingWrite{JOp: JournalNote, JKey: 7, JOld: blk(1), Block: blk(2)}, 0)
	if d.JournalLen() != 1 {
		t.Fatalf("journal len %d, want 1", d.JournalLen())
	}
	e, ok := d.JournalLookup(7)
	if !ok || e.Old != blk(1) || e.New != blk(2) {
		t.Fatalf("entry %+v", e)
	}
	// A later note for the same key refreshes New but keeps the sticky
	// epoch-start Old, even if the note carries a different JOld.
	d.Push(PendingWrite{JOp: JournalNote, JKey: 7, JOld: blk(9), Block: blk(3)}, 0)
	e, _ = d.JournalLookup(7)
	if e.Old != blk(1) || e.New != blk(3) {
		t.Fatalf("after second note: %+v", e)
	}
	if d.JournalLen() != 1 {
		t.Fatalf("upsert grew the journal to %d", d.JournalLen())
	}
	d.Push(PendingWrite{JOp: JournalClear}, 0)
	if d.JournalLen() != 0 {
		t.Fatal("clear left entries behind")
	}
	if _, ok := d.JournalLookup(7); ok {
		t.Fatal("lookup hit after clear")
	}
}

// TestJournalIsOnChip checks that journal ops behave like register
// writes: no WPQ slot, no media traffic, no stats.
func TestJournalIsOnChip(t *testing.T) {
	d := newDev()
	before := d.Stats()
	now := d.Push(PendingWrite{JOp: JournalNote, JKey: 1, Block: blk(1)}, 100)
	if now != 100 {
		t.Fatalf("journal push stalled caller to %d", now)
	}
	if after := d.Stats(); after != before {
		t.Fatalf("journal op changed device stats: %+v -> %+v", before, after)
	}
}

// TestJournalSurvivesEveryCrashModel checks the journal sits inside the
// persistence domain: relaxed models tear media blocks behind the WPQ,
// never on-chip state.
func TestJournalSurvivesEveryCrashModel(t *testing.T) {
	for _, m := range CrashModels() {
		d := newDev()
		d.TrackInflight(true)
		d.Push(PendingWrite{Region: RegionData, Index: 1, Block: blk(4)}, 0)
		d.Push(PendingWrite{JOp: JournalNote, JKey: 3, JOld: blk(5), Block: blk(6)}, 0)
		d.CrashWith(m, rand.New(rand.NewSource(1)))
		e, ok := d.JournalLookup(3)
		if !ok || e.Old != blk(5) || e.New != blk(6) {
			t.Fatalf("%v: journal lost: %+v ok=%v", m, e, ok)
		}
	}
}

// TestJournalCommitGroupRedo checks the DONE_BIT REDO path replays
// journal notes idempotently after a mid-drain power loss.
func TestJournalCommitGroupRedo(t *testing.T) {
	d := newDev()
	d.BeginCommit()
	d.Stage(PendingWrite{Region: RegionData, Index: 1, Block: blk(1)})
	d.Stage(PendingWrite{JOp: JournalNote, JKey: 9, JOld: blk(7), Block: blk(8)})
	d.Stage(PendingWrite{Region: RegionCounter, Index: 2, Block: blk(2)})
	d.SetPushBudget(2) // power loss after the journal note, before the counter write
	d.CommitGroup(0)
	if !d.DoneBit() {
		t.Fatal("interrupted group lost its DONE_BIT")
	}
	d.Crash()
	if got := d.Read(RegionCounter, 2); got != ([BlockBytes]byte{}) {
		t.Fatal("unreached entry drained before redo")
	}
	if n := d.RedoCommitted(); n != 3 {
		t.Fatalf("redo replayed %d entries, want 3", n)
	}
	if d.Read(RegionCounter, 2) != blk(2) {
		t.Fatal("redo did not land the counter write")
	}
	e, ok := d.JournalLookup(9)
	if !ok || e.Old != blk(7) || e.New != blk(8) {
		t.Fatalf("redo mangled the journal note: %+v ok=%v", e, ok)
	}
	if d.JournalLen() != 1 {
		t.Fatalf("redo duplicated the journal note: len %d", d.JournalLen())
	}
}

func TestJournalForkIndependent(t *testing.T) {
	d := newDev()
	d.Push(PendingWrite{JOp: JournalNote, JKey: 1, JOld: blk(1), Block: blk(2)}, 0)
	c := d.Fork()
	c.Push(PendingWrite{JOp: JournalNote, JKey: 1, Block: blk(3)}, 0)
	c.Push(PendingWrite{JOp: JournalNote, JKey: 2, JOld: blk(4), Block: blk(5)}, 0)
	if e, _ := d.JournalLookup(1); e.New != blk(2) {
		t.Fatal("child note leaked into parent")
	}
	if d.JournalLen() != 1 || c.JournalLen() != 2 {
		t.Fatalf("lens parent=%d child=%d", d.JournalLen(), c.JournalLen())
	}
	d.JournalReset()
	if c.JournalLen() != 2 {
		t.Fatal("parent reset leaked into child")
	}
}

func TestJournalImageRoundTrip(t *testing.T) {
	d := newDev()
	d.Push(PendingWrite{Region: RegionData, Index: 5, Block: blk(1)}, 0)
	d.Push(PendingWrite{JOp: JournalNote, JKey: 11, JOld: blk(2), Block: blk(3)}, 0)
	d.Push(PendingWrite{JOp: JournalNote, JKey: 4, JOld: blk(4), Block: blk(5)}, 0)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.JournalLen() != 2 {
		t.Fatalf("loaded journal len %d, want 2", l.JournalLen())
	}
	if e, ok := l.JournalLookup(11); !ok || e.Old != blk(2) || e.New != blk(3) {
		t.Fatalf("entry 11 lost: %+v ok=%v", e, ok)
	}
	if d.StateDigest() != l.StateDigest() {
		t.Fatal("digest changed across save/load")
	}
	// The digest must see the journal: mutating one New flips it.
	before := l.StateDigest()
	l.Push(PendingWrite{JOp: JournalNote, JKey: 4, Block: blk(6)}, 0)
	if l.StateDigest() == before {
		t.Fatal("digest blind to journal content")
	}
}

// TestPeekEarliestMatchesBruteForce is the property test for the
// non-mutating port-heap peek: after arbitrary occupancy sequences,
// peeking any subset must agree with a brute-force scan of the heap's
// (free, port) pairs, and must not disturb the heap.
func TestPeekEarliestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		h := newPortHeap(n)
		now := uint64(0)
		for op := rng.Intn(32); op > 0; op-- {
			now += uint64(rng.Intn(200))
			h.occupyMin(now + uint64(rng.Intn(500)))
		}
		for sub := 0; sub < 1<<uint(n); sub++ {
			member := func(p int) bool { return sub&(1<<uint(p)) != 0 }
			// Brute force: lexicographic min of (free, port) over members.
			wantPort, wantFree, wantOK := 0, uint64(0), false
			for i := range h.free {
				if !member(h.port[i]) {
					continue
				}
				if !wantOK || h.free[i] < wantFree ||
					(h.free[i] == wantFree && h.port[i] < wantPort) {
					wantPort, wantFree, wantOK = h.port[i], h.free[i], true
				}
			}
			free0 := append([]uint64(nil), h.free...)
			port0 := append([]int(nil), h.port...)
			gotPort, gotFree, gotOK := h.peekEarliest(member)
			if gotOK != wantOK || (wantOK && (gotPort != wantPort || gotFree != wantFree)) {
				t.Fatalf("trial %d subset %b: peek=(%d,%d,%v) brute=(%d,%d,%v)",
					trial, sub, gotPort, gotFree, gotOK, wantPort, wantFree, wantOK)
			}
			for i := range free0 {
				if h.free[i] != free0[i] || h.port[i] != port0[i] {
					t.Fatal("peek mutated the heap")
				}
			}
		}
		// The nil predicate means "every port" and must agree with minFree.
		if _, f, ok := h.peekEarliest(nil); !ok || f != h.minFree() {
			t.Fatalf("nil-predicate peek %d disagrees with minFree %d", f, h.minFree())
		}
	}
}

// TestEarliestBankFreeMatchesBruteForce checks the device-level peek
// against a brute-force reconstruction from scheduling behaviour: it
// must be non-mutating and never later than the time an actual Push
// would start draining on a bank of the set.
func TestEarliestBankFreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := newDev()
	now := uint64(0)
	for i := 0; i < 300; i++ {
		now += uint64(rng.Intn(100))
		d.Push(PendingWrite{Region: RegionData, Index: uint64(rng.Intn(64))}, now)
		if i%10 != 0 {
			continue
		}
		set := map[int]bool{rng.Intn(d.Timing().Banks): true, rng.Intn(d.Timing().Banks): true}
		dig := d.StateDigest()
		got := d.EarliestBankFree(func(b int) bool { return set[b] })
		if d.StateDigest() != dig {
			t.Fatal("EarliestBankFree mutated persistent state")
		}
		if again := d.EarliestBankFree(func(b int) bool { return set[b] }); again != got {
			t.Fatalf("peek not stable: %d then %d", got, again)
		}
		all := d.EarliestBankFree(nil)
		if all > got {
			t.Fatalf("unrestricted peek %d later than subset peek %d", all, got)
		}
	}
}
