package nvm

import "testing"

// TestWriteSerialization: PCM writes serialize on the write ports, not
// across all banks — this is what makes strict persistence expensive.
func TestWriteSerialization(t *testing.T) {
	tm := DefaultTiming()
	tm.WritePorts = 1
	tm.WPQEntries = 64
	d := NewDevice(tm)
	// Push 4 writes at t=0; the 4th drains at 4*WriteNS.
	for i := uint64(0); i < 4; i++ {
		d.Push(PendingWrite{Region: RegionData, Index: i}, 0)
	}
	// A read of a freshly written block must wait for that block's bank
	// to be released by its drain.
	_, done := d.ReadAt(RegionData, 3, 0)
	if done < 4*tm.WriteNS {
		t.Fatalf("read of draining block finished at %d, want >= %d", done, 4*tm.WriteNS)
	}
}

func TestWritePortsParallelism(t *testing.T) {
	tm := DefaultTiming()
	tm.WritePorts = 2
	tm.WPQEntries = 64
	one := NewDevice(Timing{ReadNS: 60, WriteNS: 150, Banks: 8, WritePorts: 1, WPQEntries: 64, DrainWatermark: 64})
	two := NewDevice(tm)
	// 8 writes, then a push that stalls only when the queue is full —
	// compare drain completion via a full-queue stall.
	oneT := Timing{ReadNS: 60, WriteNS: 150, Banks: 8, WritePorts: 1, WPQEntries: 4, DrainWatermark: 64}
	twoT := oneT
	twoT.WritePorts = 2
	d1 := NewDevice(oneT)
	d2 := NewDevice(twoT)
	var t1, t2 uint64
	for i := uint64(0); i < 8; i++ {
		t1 = d1.Push(PendingWrite{Region: RegionData, Index: i}, t1)
		t2 = d2.Push(PendingWrite{Region: RegionData, Index: i}, t2)
	}
	if t2 >= t1 {
		t.Fatalf("2 ports (stall to %d) not faster than 1 port (stall to %d)", t2, t1)
	}
	_ = one
	_ = two
}

// TestDrainWatermarkBlocksReads: a read arriving with the write queue
// above the watermark waits until it drops back below.
func TestDrainWatermarkBlocksReads(t *testing.T) {
	tm := Timing{ReadNS: 60, WriteNS: 150, Banks: 64, WritePorts: 1, WPQEntries: 32, DrainWatermark: 2}
	d := NewDevice(tm)
	for i := uint64(0); i < 6; i++ {
		d.Push(PendingWrite{Region: RegionData, Index: i + 100}, 0)
	}
	// Queue holds 6 writes completing at 150,300,...,900. Watermark 2:
	// the read must wait until ≤... the (6-2+1)=5th earliest completes?
	// Implementation waits for the (excess+1)-th earliest = (6-2+1)=5th
	// at index excess=4 -> t=750.
	_, done := d.ReadAt(RegionData, 999, 0)
	if done < 700 {
		t.Fatalf("read finished at %d despite write-drain mode", done)
	}
	if d.Stats().DrainStallNS == 0 {
		t.Fatal("drain stall not accounted")
	}
}

func TestDrainWatermarkDisabled(t *testing.T) {
	tm := Timing{ReadNS: 60, WriteNS: 150, Banks: 64, WritePorts: 1, WPQEntries: 32, DrainWatermark: 0}
	d := NewDevice(tm)
	for i := uint64(0); i < 6; i++ {
		d.Push(PendingWrite{Region: RegionData, Index: i + 100}, 0)
	}
	_, done := d.ReadAt(RegionData, 999, 0)
	if done != 60 {
		t.Fatalf("watermark 0 should disable drain blocking; done=%d", done)
	}
}

func TestRegisterWritesBypassTiming(t *testing.T) {
	tm := DefaultTiming()
	tm.WPQEntries = 1
	d := NewDevice(tm)
	d.Push(PendingWrite{Region: RegionData, Index: 0}, 0)
	// Register writes must not consume WPQ slots or stall.
	now := d.Push(PendingWrite{RegName: "root", Block: blk(1)}, 0)
	if now != 0 {
		t.Fatalf("register write stalled to %d", now)
	}
	if v, ok := d.GetReg("root"); !ok || v != blk(1) {
		t.Fatal("register write not applied")
	}
	if d.Stats().Writes != 1 {
		t.Fatalf("register write counted as NVM write: %d", d.Stats().Writes)
	}
}

func TestRegisterWritesInCommitGroups(t *testing.T) {
	d := NewDevice(DefaultTiming())
	d.BeginCommit()
	d.Stage(PendingWrite{Region: RegionData, Index: 5, Block: blk(5)})
	d.Stage(PendingWrite{RegName: "root", Block: blk(7)})
	d.SetPushBudget(0) // interrupt before anything drains
	d.CommitGroup(0)
	d.Crash()
	// Neither the block nor the register value is visible yet...
	if _, ok := d.GetReg("root"); ok {
		t.Fatal("register applied before redo")
	}
	// ...until the committed group is redone atomically.
	if n := d.RedoCommitted(); n != 2 {
		t.Fatalf("redone = %d, want 2", n)
	}
	if v, ok := d.GetReg("root"); !ok || v != blk(7) {
		t.Fatal("register not applied by redo")
	}
	if d.Read(RegionData, 5) != blk(5) {
		t.Fatal("block not applied by redo")
	}
}

func TestWPQRingKth(t *testing.T) {
	q := newWPQRing(8)
	// Out-of-order pushes exercise the insertion-sort fallback.
	for _, v := range []uint64{30, 10, 20} {
		q.push(v)
	}
	if q.kth(0) != 10 || q.kth(1) != 20 || q.kth(2) != 30 {
		t.Fatalf("kth wrong: %d %d %d", q.kth(0), q.kth(1), q.kth(2))
	}
	if q.min() != 10 {
		t.Fatalf("min = %d, want 10", q.min())
	}
	q.prune(15)
	if q.size != 2 || q.min() != 20 {
		t.Fatalf("after prune: size=%d min=%d", q.size, q.min())
	}
	// Wrap the ring around its backing array.
	for _, v := range []uint64{40, 50, 60, 70, 80, 90} {
		q.push(v)
	}
	q.prune(45)
	q.push(100)
	want := []uint64{50, 60, 70, 80, 90, 100}
	for i, w := range want {
		if q.kth(i) != w {
			t.Fatalf("kth(%d) = %d, want %d", i, q.kth(i), w)
		}
	}
}

// TestWPQWatermarkImpossibleExcess is the regression test for the old
// nthSmallest clamp: asking for a completion index at or beyond the
// queue occupancy is an invariant violation (excess = size - wm can
// never reach size for wm >= 1) and must panic instead of silently
// returning the latest completion.
func TestWPQWatermarkImpossibleExcess(t *testing.T) {
	q := newWPQRing(8)
	q.push(10)
	q.push(20)
	for _, k := range []int{2, 99, -1} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("kth(%d) with 2 queued writes did not panic", k)
				}
			}()
			q.kth(k)
		}()
	}
}

func TestPortHeapTieBreak(t *testing.T) {
	h := newPortHeap(3)
	// All ports free at 0: the heap must hand out the lowest index
	// first, matching the old linear scan's deterministic choice.
	h.occupyMin(100) // port 0
	h.occupyMin(100) // port 1
	if h.minFree() != 0 {
		t.Fatalf("minFree = %d, want 0 (port 2 still free)", h.minFree())
	}
	h.occupyMin(50) // port 2
	if h.minFree() != 50 {
		t.Fatalf("minFree = %d, want 50", h.minFree())
	}
	h.reset()
	if h.minFree() != 0 {
		t.Fatal("reset did not free ports")
	}
}

func TestWearTracking(t *testing.T) {
	d := NewDevice(DefaultTiming())
	for i := 0; i < 5; i++ {
		d.Push(PendingWrite{Region: RegionData, Index: 7}, 0)
	}
	d.Push(PendingWrite{Region: RegionData, Index: 8}, 0)
	d.WriteRaw(RegionCounter, 3, blk(1))
	if d.WearOf(RegionData, 7) != 5 {
		t.Fatalf("wear = %d, want 5", d.WearOf(RegionData, 7))
	}
	idx, c := d.MaxWear(RegionData)
	if idx != 7 || c != 5 {
		t.Fatalf("MaxWear = (%d,%d)", idx, c)
	}
	r, idx, c := d.MaxWearAll()
	if r != RegionData || idx != 7 || c != 5 {
		t.Fatalf("MaxWearAll = (%v,%d,%d)", r, idx, c)
	}
	if d.WearOf(RegionTree, 0) != 0 {
		t.Fatal("untouched block has wear")
	}
}

func TestWearRegisterWritesExcluded(t *testing.T) {
	d := NewDevice(DefaultTiming())
	d.Push(PendingWrite{RegName: "x", Block: blk(1)}, 0)
	if _, _, c := d.MaxWearAll(); c != 0 {
		t.Fatal("register write counted as media wear")
	}
}
