package nvm

// Relaxed-persistence crash models.
//
// Device.Crash() implements the paper's idealized power-failure model:
// full ADR — every write that entered the WPQ is durable, whole
// 64-byte blocks persist atomically, and nothing between "pushed" and
// "drained" can be lost. That is the envelope Anubis (and Osiris, and
// strict persistence) are specified against. But the crash-consistency
// literature the paper argues with (Triad-NVM, SuperMem) is explicit
// that real platforms can fail *outside* that envelope: the residual
// energy budget may drain only part of the WPQ, and PCM media writes
// are performed in 8-byte atoms, so a write interrupted mid-drain can
// tear — a prefix of the block's atoms lands, the rest keeps the old
// content.
//
// CrashWith makes that failure envelope injectable. Under a relaxed
// model, the writes still "in flight" (pushed into the WPQ but not yet
// drained to media at the moment of power loss) may be rolled back or
// torn. On-chip persistent registers and the two-stage commit staging
// area are genuinely persistent (they are inside the processor, not
// behind the WPQ), so they stay atomic under every model — which is
// exactly what lets the DONE_BIT REDO protocol keep committed groups
// whole even when the WPQ loses their already-pushed entries.
//
// Tracking which writes are in flight requires an undo log on Push,
// which is not free; it is armed explicitly with TrackInflight so the
// default (full-ADR) hot path stays allocation-free and byte-identical
// to the untracked device.

import "math/rand"

// CrashModel selects the persistence semantics a power failure applies
// to writes that entered the WPQ but had not drained to media.
type CrashModel uint8

const (
	// CrashFullADR is the paper's model and the default: ADR drains the
	// whole WPQ, every pushed write is durable and block-atomic.
	CrashFullADR CrashModel = iota
	// CrashPartialDrain models an under-provisioned residual-energy
	// budget: only the k oldest in-flight WPQ entries drain (k chosen by
	// the injected rng); newer in-flight writes are lost entirely, as if
	// they had never been pushed.
	CrashPartialDrain
	// CrashTornBlock models non-atomic media writes: each in-flight
	// write persists as a random prefix of its eight 8-byte atoms over
	// the block's previous content (a full 8-atom prefix lands the write
	// whole, sideband included; shorter prefixes leave a torn block with
	// the old sideband). On-chip registers stay atomic.
	CrashTornBlock

	numCrashModels = iota
)

func (m CrashModel) String() string {
	switch m {
	case CrashFullADR:
		return "full-adr"
	case CrashPartialDrain:
		return "partial-drain"
	case CrashTornBlock:
		return "torn-block"
	}
	return "crash-model(?)"
}

// CrashModels lists every model, in declaration order.
func CrashModels() []CrashModel {
	out := make([]CrashModel, numCrashModels)
	for i := range out {
		out[i] = CrashModel(i)
	}
	return out
}

// ParseCrashModel inverts CrashModel.String.
func ParseCrashModel(s string) (CrashModel, bool) {
	for _, m := range CrashModels() {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}

// BlockAtoms is the number of 8-byte media write atoms per block: the
// tearing granularity of CrashTornBlock.
const BlockAtoms = BlockBytes / 8

// inflightWrite is one undo-log entry: a pushed write that may still be
// in flight, together with the media state it replaced.
type inflightWrite struct {
	region  Region
	idx     uint64
	blk     [BlockBytes]byte // the new content (replayed by tearing)
	side    Sideband
	hasSide bool

	prevBlk     [BlockBytes]byte
	prevSide    Sideband
	prevPresent bool

	done uint64 // drain completion time; <= now means drained for sure
}

// TrackInflight arms (or disarms) the in-flight undo log CrashWith's
// relaxed models need. While armed, every Push records the overwritten
// media state; entries are pruned as their drains complete. Tracking
// starts empty: writes pushed before arming are treated as drained.
// The default is off, which keeps Push allocation-free.
func (d *Device) TrackInflight(on bool) {
	d.trackInflight = on
	d.inflight = d.inflight[:0]
}

// InflightLen returns the current undo-log length (writes that may
// still be lost or torn by a relaxed-model crash). Test hook.
func (d *Device) InflightLen() int { return len(d.inflight) }

// recordInflight snapshots the pre-write media state of w before it is
// applied. Called from Push with the caller's current time, which also
// prunes entries whose drains have certainly completed.
func (d *Device) recordInflight(w *PendingWrite, now, done uint64) {
	// Prune drained entries from the front (done times are monotone:
	// drains are issued to the earliest-free port, so each successive
	// completion time is >= the previous one).
	i := 0
	for i < len(d.inflight) && d.inflight[i].done <= now {
		i++
	}
	if i > 0 {
		d.inflight = d.inflight[:copy(d.inflight, d.inflight[i:])]
	}
	e := inflightWrite{region: w.Region, idx: w.Index, blk: w.Block, side: w.Side, hasSide: w.HasSide, done: done}
	s := &d.store[w.Region]
	if p := s.pageAt(w.Index); p != nil {
		o := w.Index & pageMask
		if p.present[o>>6]&(1<<(o&63)) != 0 {
			e.prevPresent = true
			e.prevBlk = p.data[o]
		}
		if w.Region == RegionData && p.side != nil {
			e.prevSide = p.side[o]
		}
	}
	d.inflight = append(d.inflight, e)
}

// revertInflight restores the media state an in-flight write replaced.
// Mutation goes through slot(), the COW chokepoint, so reverting a
// forked child never reaches a page shared with its warm parent. Wear
// is deliberately kept: the interrupted drain still stressed the cells.
func (d *Device) revertInflight(e *inflightWrite) {
	s := &d.store[e.region]
	p, o := s.slot(e.idx)
	was := p.present[o>>6]&(1<<(o&63)) != 0
	if e.prevPresent {
		if !was {
			p.present[o>>6] |= 1 << (o & 63)
			s.count++
		}
		p.data[o] = e.prevBlk
	} else {
		if was {
			p.present[o>>6] &^= 1 << (o & 63)
			s.count--
		}
		p.data[o] = zeroBlock
	}
	if e.region == RegionData {
		if p.side != nil {
			p.side[o] = e.prevSide
		} else if e.prevSide != (Sideband{}) {
			p.side = new([pageBlocks]Sideband)
			p.side[o] = e.prevSide
		}
	}
}

// tearInflight lands the first `atoms` 8-byte atoms of an in-flight
// write over the current media content. atoms == BlockAtoms lands the
// write whole (sideband included); 0 lands nothing.
func (d *Device) tearInflight(e *inflightWrite, atoms int) {
	if atoms <= 0 {
		return
	}
	s := &d.store[e.region]
	p, o := s.slot(e.idx)
	if p.present[o>>6]&(1<<(o&63)) == 0 {
		// A partial write still marks the cell as written: the media now
		// holds (garbage) content, not the pristine erased state.
		p.present[o>>6] |= 1 << (o & 63)
		s.count++
	}
	copy(p.data[o][:atoms*8], e.blk[:atoms*8])
	if atoms >= BlockAtoms && e.hasSide && e.region == RegionData {
		if p.side == nil {
			p.side = new([pageBlocks]Sideband)
		}
		p.side[o] = e.side
	}
}

// CrashWith models a power failure under the given crash model.
//
// Every model shares the baseline Crash semantics: staged-but-
// uncommitted groups are lost, committed groups and the persistent
// registers survive, timing state resets, and the pushBudget test hook
// disarms (a budgeted power-loss experiment must not throttle the
// recovered run). The relaxed models additionally mutate the media
// image using the in-flight undo log (see TrackInflight):
//
//   - CrashPartialDrain: rng chooses k in [0, inflight]; the k oldest
//     in-flight writes land whole, the rest are rolled back.
//   - CrashTornBlock: each in-flight write lands a rng-chosen prefix of
//     its 8 atoms (8 = whole write, 0 = nothing).
//
// rng may be nil for CrashFullADR; the relaxed models require it.
// Multiple in-flight writes to the same block are rolled back newest
// to oldest and re-torn oldest to newest, reproducing media order.
func (d *Device) CrashWith(model CrashModel, rng *rand.Rand) {
	switch model {
	case CrashFullADR:
		// Everything pushed is durable: nothing to do.
	case CrashPartialDrain:
		n := len(d.inflight)
		k := 0
		if n > 0 {
			k = rng.Intn(n + 1)
		}
		lost := d.inflight[k:]
		for i := len(lost) - 1; i >= 0; i-- {
			d.revertInflight(&lost[i])
		}
	case CrashTornBlock:
		// Roll everything in flight back, then replay each write's torn
		// prefix in media order.
		for i := len(d.inflight) - 1; i >= 0; i-- {
			d.revertInflight(&d.inflight[i])
		}
		for i := range d.inflight {
			d.tearInflight(&d.inflight[i], rng.Intn(BlockAtoms+1))
		}
	}
	d.inflight = d.inflight[:0]
	if !d.doneBit {
		d.staged = d.staged[:0]
	}
	for i := range d.bankFree {
		d.bankFree[i] = 0
	}
	d.ports.reset()
	d.wpq.reset()
	// A budgeted power-loss trial must not leak its throttle into the
	// recovered run: commit groups after the crash drain in full.
	d.pushBudget = -1
}
