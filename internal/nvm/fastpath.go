package nvm

// Hit-burst fast-path primitives. The memctrl fast lane retires runs of
// steady-state full hits with closed-form latency; these helpers expose
// exactly the device-side checks and state advances that make the closed
// form provably identical to the stepped readClock/Push model.
//
// Contract: FastReadRetire mutates device state only when it succeeds,
// and on success its effect is bit-identical to readClock for a request
// that waits on nothing (no drain stall, no bank conflict). FastWriteOK
// is a pure eligibility check (the prune it performs is idempotent and
// unobservable: pruning at `now` then pushing at `now` is what Push does
// anyway) guaranteeing the subsequent Push returns `now` unchanged.
// Device read stats for fast reads are batched by the controller via
// AddBulkReads at run close, keeping the per-request path to two
// comparisons and one store.

// FastReadRetire checks whether a read of (r, idx) arriving at now would
// complete without any stall — write queue below the drain watermark and
// target bank idle — and, if so, advances the bank clock exactly as
// readClock would and returns the completion time now+ReadNS. On failure
// it returns (0, false) having changed nothing observable (the WPQ prune
// it performs is the same prune readClock runs first).
//
// Stats (Reads/ReadsByRegion) are NOT bumped here; callers batch them
// with AddBulkReads when the run closes.
func (d *Device) FastReadRetire(r Region, idx uint64, now uint64) (uint64, bool) {
	if wm := d.timing.DrainWatermark; wm > 0 {
		d.wpq.prune(now)
		if d.wpq.size >= wm {
			return 0, false
		}
	}
	b := d.bankOf(r, idx)
	if d.bankFree[b] > now {
		return 0, false
	}
	done := now + d.timing.ReadNS
	d.bankFree[b] = done
	return done, true
}

// FastWriteOK reports whether a data-block Push arriving at now would
// return now unchanged — i.e. the WPQ has a free slot so the caller
// never stalls. Bank and port occupancy are irrelevant to the caller's
// visible time (the drain proceeds asynchronously), so the fast lane
// still issues the real Push to keep device state exact; this check only
// proves the Push is caller-time-neutral. Pure: the prune is the same
// prune Push runs first.
func (d *Device) FastWriteOK(now uint64) bool {
	d.wpq.prune(now)
	return d.wpq.size < d.timing.WPQEntries
}

// AddBulkReads credits n device reads of region r in one step. The fast
// lane uses it to batch the per-read stats bumps it skipped; the result
// is identical to n individual ReadAtPtr stat updates.
func (d *Device) AddBulkReads(r Region, n uint64) {
	d.stats.Reads += n
	d.stats.ReadsByRegion[r] += n
}
