//go:build !race

package nvm

// raceEnabled reports whether the race detector is compiled in. The
// race runtime instruments every memory access with extra allocations,
// so the zero-allocation guarantees of the paged store cannot be
// asserted there (mirrors cryptoeng's race_on/race_off gate).
const raceEnabled = false
