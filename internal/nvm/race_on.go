//go:build race

package nvm

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
