package nvm

import (
	"math/rand"
	"testing"
)

// --- satellite 1: Crash must disarm the pushBudget test hook ---------------

func TestCrashResetsPushBudget(t *testing.T) {
	d := newDev()
	d.SetPushBudget(2)
	if got := d.PushBudget(); got != 2 {
		t.Fatalf("PushBudget = %d, want 2", got)
	}
	d.Crash()
	if got := d.PushBudget(); got != -1 {
		t.Fatalf("after Crash, PushBudget = %d, want -1 (disarmed)", got)
	}
	// The recovered run's commit groups must drain in full: stage three
	// writes and commit — all three must land despite the pre-crash
	// budget of two.
	d.BeginCommit()
	for i := uint64(0); i < 3; i++ {
		d.Stage(PendingWrite{Region: RegionData, Index: i, Block: blk(byte(i + 1))})
	}
	d.CommitGroup(0)
	for i := uint64(0); i < 3; i++ {
		if d.Read(RegionData, i) != blk(byte(i+1)) {
			t.Fatalf("block %d lost: pre-crash pushBudget leaked into recovered run", i)
		}
	}
}

func TestCrashWithResetsPushBudget(t *testing.T) {
	for _, m := range CrashModels() {
		d := newDev()
		d.TrackInflight(true)
		d.SetPushBudget(1)
		d.CrashWith(m, rand.New(rand.NewSource(1)))
		if got := d.PushBudget(); got != -1 {
			t.Fatalf("%v: after CrashWith, PushBudget = %d, want -1", m, got)
		}
	}
}

// --- satellite 2: fault injection in a forked child must not leak ----------

func TestForkedFaultInjectionDoesNotLeakIntoParent(t *testing.T) {
	parent := newDev()
	side := Sideband{MAC: 0xfeed}
	for i := uint64(0); i < 40; i++ {
		parent.Push(PendingWrite{Region: RegionData, Index: i, Block: blk(byte(i)), HasSide: true, Side: side}, 0)
		parent.Push(PendingWrite{Region: RegionCounter, Index: i, Block: blk(byte(i + 1))}, 0)
		parent.Push(PendingWrite{Region: RegionTree, Index: i, Block: blk(byte(i + 2))}, 0)
	}
	want := parent.StateDigest()

	child := parent.Fork()
	// Every fault-injection entry point, spread across shared pages.
	if !child.CorruptBlock(RegionData, 3, 7, 0xff) {
		t.Fatal("CorruptBlock reported absent block")
	}
	child.CorruptBlock(RegionTree, 17, 0, 0x01)
	child.Erase(RegionCounter, 5)
	child.Erase(RegionData, 21)
	child.WriteRaw(RegionTree, 9, blk(0xaa))
	child.WriteRawData(11, blk(0xbb), Sideband{MAC: 1})
	// Relaxed-model crash mutation also goes through slot().
	child.TrackInflight(true)
	child.Push(PendingWrite{Region: RegionData, Index: 2, Block: blk(0xcc)}, 0)
	child.CrashWith(CrashTornBlock, rand.New(rand.NewSource(7)))

	if got := parent.StateDigest(); got != want {
		t.Fatalf("parent StateDigest changed after child fault injection: %#x -> %#x", want, got)
	}
	// Spot-check the parent's media content directly.
	if parent.Read(RegionData, 3) != blk(3) {
		t.Fatal("child CorruptBlock leaked into parent data")
	}
	if parent.Read(RegionCounter, 5) != blk(6) {
		t.Fatal("child Erase leaked into parent counters")
	}
	if parent.Read(RegionTree, 9) != blk(11) {
		t.Fatal("child WriteRaw leaked into parent tree")
	}
	if parent.ReadSideband(3).MAC != 0xfeed {
		t.Fatal("child corruption leaked into parent sideband")
	}
}

// --- relaxed crash models ---------------------------------------------------

func TestCrashFullADRKeepsInflight(t *testing.T) {
	d := newDev()
	d.TrackInflight(true)
	for i := uint64(0); i < 8; i++ {
		d.Push(PendingWrite{Region: RegionData, Index: i, Block: blk(byte(i + 1))}, 0)
	}
	if d.InflightLen() == 0 {
		t.Fatal("tracking armed but no inflight entries")
	}
	d.CrashWith(CrashFullADR, nil)
	for i := uint64(0); i < 8; i++ {
		if d.Read(RegionData, i) != blk(byte(i+1)) {
			t.Fatalf("full-ADR crash lost pushed write %d", i)
		}
	}
	if d.InflightLen() != 0 {
		t.Fatal("inflight log not cleared by crash")
	}
}

func TestCrashPartialDrainKeepsPrefix(t *testing.T) {
	// Overwrite existing content so a reverted write is observable as
	// the old value, then check the prefix property: some k oldest
	// in-flight writes landed, everything newer reverted.
	const n = 16
	for seed := int64(0); seed < 20; seed++ {
		d := newDev()
		for i := uint64(0); i < n; i++ {
			d.Push(PendingWrite{Region: RegionData, Index: i, Block: blk(0x10)}, 0)
		}
		d.TrackInflight(true)
		now := uint64(0)
		for i := uint64(0); i < n; i++ {
			now = d.Push(PendingWrite{Region: RegionData, Index: i, Block: blk(0x20)}, now)
		}
		if d.InflightLen() != n {
			t.Fatalf("inflight = %d, want %d", d.InflightLen(), n)
		}
		d.CrashWith(CrashPartialDrain, rand.New(rand.NewSource(seed)))
		k := 0
		for ; k < n; k++ {
			if d.Read(RegionData, uint64(k)) != blk(0x20) {
				break
			}
		}
		for i := k; i < n; i++ {
			if got := d.Read(RegionData, uint64(i)); got != blk(0x10) {
				t.Fatalf("seed %d: write %d neither landed nor reverted: %v", seed, i, got[0])
			}
		}
	}
}

func TestCrashPartialDrainRevertsToAbsent(t *testing.T) {
	d := newDev()
	d.TrackInflight(true)
	d.Push(PendingWrite{Region: RegionData, Index: 99, Block: blk(0x33)}, 0)
	// rng with seed forcing k=0 is not guaranteed; instead drive the
	// revert path directly through the partial-drain model until the
	// write is lost at least once across seeds.
	lost := false
	for seed := int64(0); seed < 64 && !lost; seed++ {
		c := d.Fork()
		c.CrashWith(CrashPartialDrain, rand.New(rand.NewSource(seed)))
		if _, present := c.ReadPtr(RegionData, 99); !present {
			lost = true
		}
	}
	if !lost {
		t.Fatal("partial drain never rolled a never-written block back to absent")
	}
}

func TestCrashTornBlockPrefixSemantics(t *testing.T) {
	oldSide := Sideband{MAC: 0x0101}
	newSide := Sideband{MAC: 0x0202}
	for seed := int64(0); seed < 40; seed++ {
		d := newDev()
		d.Push(PendingWrite{Region: RegionData, Index: 5, Block: blk(0xaa), HasSide: true, Side: oldSide}, 0)
		d.TrackInflight(true)
		d.Push(PendingWrite{Region: RegionData, Index: 5, Block: blk(0xbb), HasSide: true, Side: newSide}, 0)
		d.CrashWith(CrashTornBlock, rand.New(rand.NewSource(seed)))
		got := d.Read(RegionData, 5)
		// Content must be a prefix of the new block over the old one, at
		// 8-byte atom granularity.
		atoms := -1
		for a := 0; a <= BlockAtoms; a++ {
			ok := true
			for i := 0; i < BlockBytes; i++ {
				want := byte(0xaa)
				if i < a*8 {
					want = 0xbb
				}
				if got[i] != want {
					ok = false
					break
				}
			}
			if ok {
				atoms = a
				break
			}
		}
		if atoms < 0 {
			t.Fatalf("seed %d: torn block is not an atom prefix: % x", seed, got[:16])
		}
		side := d.ReadSideband(5)
		if atoms == BlockAtoms {
			if side != newSide {
				t.Fatalf("seed %d: whole write landed but sideband is old", seed)
			}
		} else if side != oldSide {
			t.Fatalf("seed %d: torn write replaced sideband (atoms=%d)", seed, atoms)
		}
	}
}

func TestCrashRelaxedKeepsRegistersAndCommittedGroups(t *testing.T) {
	for _, m := range []CrashModel{CrashPartialDrain, CrashTornBlock} {
		d := newDev()
		d.TrackInflight(true)
		d.SetReg64("ROOT", 0xabcdef)
		// A committed two-stage group whose drain was interrupted: the
		// staging area is on-chip, so REDO must still replay it whole.
		d.BeginCommit()
		for i := uint64(0); i < 4; i++ {
			d.Stage(PendingWrite{Region: RegionCounter, Index: i, Block: blk(0x44)})
		}
		d.SetPushBudget(2)
		d.CommitGroup(0)
		d.CrashWith(m, rand.New(rand.NewSource(3)))
		if v, ok := d.GetReg64("ROOT"); !ok || v != 0xabcdef {
			t.Fatalf("%v: on-chip register lost", m)
		}
		if !d.DoneBit() {
			t.Fatalf("%v: DONE_BIT lost", m)
		}
		if n := d.RedoCommitted(); n != 4 {
			t.Fatalf("%v: REDO replayed %d writes, want 4", m, n)
		}
		for i := uint64(0); i < 4; i++ {
			if d.Read(RegionCounter, i) != blk(0x44) {
				t.Fatalf("%v: committed group write %d lost after REDO", m, i)
			}
		}
	}
}

func TestInflightPruneOnDrain(t *testing.T) {
	d := newDev()
	d.TrackInflight(true)
	d.Push(PendingWrite{Region: RegionData, Index: 0, Block: blk(1)}, 0)
	if d.InflightLen() != 1 {
		t.Fatalf("inflight = %d, want 1", d.InflightLen())
	}
	// A push far in the future prunes the (long-drained) first entry.
	late := 100 * d.Timing().WriteNS
	d.Push(PendingWrite{Region: RegionData, Index: 1, Block: blk(2)}, late)
	if d.InflightLen() != 1 {
		t.Fatalf("drained entry not pruned: inflight = %d, want 1", d.InflightLen())
	}
	// And a crash can no longer revert the drained write.
	d.CrashWith(CrashPartialDrain, rand.New(rand.NewSource(0)))
	if d.Read(RegionData, 0) != blk(1) {
		t.Fatal("drained write reverted by partial-drain crash")
	}
}

func TestCrashModelRoundTrip(t *testing.T) {
	for _, m := range CrashModels() {
		got, ok := ParseCrashModel(m.String())
		if !ok || got != m {
			t.Fatalf("ParseCrashModel(%q) = %v,%v", m.String(), got, ok)
		}
	}
	if _, ok := ParseCrashModel("bogus"); ok {
		t.Fatal("ParseCrashModel accepted garbage")
	}
}

func TestCrashWithDeterministic(t *testing.T) {
	run := func(model CrashModel, seed int64) uint64 {
		d := newDev()
		for i := uint64(0); i < 32; i++ {
			d.Push(PendingWrite{Region: RegionData, Index: i, Block: blk(byte(i))}, 0)
		}
		d.TrackInflight(true)
		now := uint64(0)
		for i := uint64(0); i < 32; i++ {
			now = d.Push(PendingWrite{Region: RegionData, Index: i, Block: blk(byte(i + 100))}, now)
		}
		d.CrashWith(model, rand.New(rand.NewSource(seed)))
		return d.StateDigest()
	}
	for _, m := range []CrashModel{CrashPartialDrain, CrashTornBlock} {
		if run(m, 42) != run(m, 42) {
			t.Fatalf("%v: same seed produced different post-crash images", m)
		}
	}
}
