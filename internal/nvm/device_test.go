package nvm

import (
	"testing"
	"testing/quick"
)

func blk(b byte) (d [BlockBytes]byte) {
	for i := range d {
		d[i] = b
	}
	return d
}

func newDev() *Device { return NewDevice(DefaultTiming()) }

func TestReadUnwrittenIsZero(t *testing.T) {
	d := newDev()
	if d.Read(RegionData, 42) != ([BlockBytes]byte{}) {
		t.Fatal("unwritten block not zero")
	}
}

func TestPushThenRead(t *testing.T) {
	d := newDev()
	d.Push(PendingWrite{Region: RegionCounter, Index: 7, Block: blk(3)}, 0)
	if d.Read(RegionCounter, 7) != blk(3) {
		t.Fatal("pushed write not visible")
	}
	// Other regions have independent index spaces.
	if d.Read(RegionData, 7) != ([BlockBytes]byte{}) {
		t.Fatal("write leaked across regions")
	}
}

func TestSidebandStoredWithData(t *testing.T) {
	d := newDev()
	side := Sideband{MAC: 0xdead}
	side.ECC[0] = 9
	d.Push(PendingWrite{Region: RegionData, Index: 1, Block: blk(1), HasSide: true, Side: side}, 0)
	if got := d.ReadSideband(1); got != side {
		t.Fatalf("sideband = %+v, want %+v", got, side)
	}
}

func TestSidebandOutsideDataPanics(t *testing.T) {
	d := newDev()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Push(PendingWrite{Region: RegionTree, Index: 0, HasSide: true}, 0)
}

func TestReadTiming(t *testing.T) {
	d := newDev()
	_, done := d.ReadAt(RegionData, 5, 100)
	if done != 100+d.Timing().ReadNS {
		t.Fatalf("done = %d, want %d", done, 100+d.Timing().ReadNS)
	}
	// Back-to-back reads of the same bank serialize.
	_, done2 := d.ReadAt(RegionData, 5, 100)
	if done2 != done+d.Timing().ReadNS {
		t.Fatalf("second read done = %d, want %d", done2, done+d.Timing().ReadNS)
	}
}

func TestBankParallelism(t *testing.T) {
	d := newDev()
	// Find two indices on different banks.
	var i, j uint64
	found := false
	for j = 1; j < 1000 && !found; j++ {
		if d.bankOf(RegionData, 0) != d.bankOf(RegionData, j) {
			found = true
			i = 0
			break
		}
	}
	if !found {
		t.Skip("no distinct banks found")
	}
	_, d1 := d.ReadAt(RegionData, i, 0)
	_, d2 := d.ReadAt(RegionData, j, 0)
	if d1 != d2 {
		t.Fatalf("parallel banks should finish together: %d vs %d", d1, d2)
	}
}

func TestWPQBackPressure(t *testing.T) {
	tm := DefaultTiming()
	tm.WPQEntries = 2
	tm.Banks = 1
	d := NewDevice(tm)
	now := uint64(0)
	// With one bank, write k completes at (k+1)*WriteNS. Queue holds 2.
	now = d.Push(PendingWrite{Region: RegionData, Index: 0, Block: blk(0)}, now)
	now = d.Push(PendingWrite{Region: RegionData, Index: 1, Block: blk(1)}, now)
	if now != 0 {
		t.Fatalf("first two pushes stalled: now=%d", now)
	}
	now = d.Push(PendingWrite{Region: RegionData, Index: 2, Block: blk(2)}, now)
	if now == 0 {
		t.Fatal("third push should stall on a full WPQ")
	}
	if d.Stats().WPQStallNS == 0 {
		t.Fatal("stall time not accounted")
	}
}

func TestWPQDrainFreesSlots(t *testing.T) {
	tm := DefaultTiming()
	tm.WPQEntries = 2
	tm.Banks = 1
	d := NewDevice(tm)
	d.Push(PendingWrite{Region: RegionData, Index: 0}, 0)
	d.Push(PendingWrite{Region: RegionData, Index: 1}, 0)
	// At a late enough time both writes have drained: no stall.
	late := uint64(10 * tm.WriteNS)
	got := d.Push(PendingWrite{Region: RegionData, Index: 2}, late)
	if got != late {
		t.Fatalf("push at %d stalled to %d despite drained WPQ", late, got)
	}
}

func TestStatsPerRegion(t *testing.T) {
	d := newDev()
	d.Push(PendingWrite{Region: RegionSCT, Index: 0}, 0)
	d.Push(PendingWrite{Region: RegionSCT, Index: 1}, 0)
	d.Read(RegionTree, 0)
	s := d.Stats()
	if s.WritesTo(RegionSCT) != 2 || s.Writes != 2 {
		t.Fatalf("SCT writes = %d (total %d), want 2", s.WritesTo(RegionSCT), s.Writes)
	}
	if s.ReadsFrom(RegionTree) != 1 {
		t.Fatalf("tree reads = %d, want 1", s.ReadsFrom(RegionTree))
	}
}

func TestCorruptBlock(t *testing.T) {
	d := newDev()
	d.Push(PendingWrite{Region: RegionData, Index: 3, Block: blk(0xff)}, 0)
	if !d.CorruptBlock(RegionData, 3, 10, 0x01) {
		t.Fatal("corrupt failed on existing block")
	}
	got := d.Read(RegionData, 3)
	if got[10] != 0xfe {
		t.Fatalf("byte = %#x, want 0xfe", got[10])
	}
	if d.CorruptBlock(RegionData, 999, 0, 1) {
		t.Fatal("corrupt succeeded on missing block")
	}
}

func TestBlocksIn(t *testing.T) {
	d := newDev()
	for _, idx := range []uint64{9, 2, 5} {
		d.WriteRaw(RegionCounter, idx, blk(byte(idx)))
	}
	got := d.BlocksIn(RegionCounter)
	want := []uint64{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("BlocksIn = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BlocksIn = %v, want %v", got, want)
		}
	}
}

// --- two-stage commit ---

func TestCommitGroupAllOrNothing(t *testing.T) {
	d := newDev()
	d.BeginCommit()
	d.Stage(PendingWrite{Region: RegionData, Index: 0, Block: blk(1)})
	d.Stage(PendingWrite{Region: RegionCounter, Index: 0, Block: blk(2)})
	// Crash before CommitGroup: the group is lost entirely.
	d.Crash()
	if d.Read(RegionData, 0) != ([BlockBytes]byte{}) || d.Read(RegionCounter, 0) != ([BlockBytes]byte{}) {
		t.Fatal("uncommitted group leaked into NVM")
	}
	if n := d.RedoCommitted(); n != 0 {
		t.Fatalf("RedoCommitted redid %d writes of an uncommitted group", n)
	}
}

func TestCommitGroupDurable(t *testing.T) {
	d := newDev()
	d.BeginCommit()
	d.Stage(PendingWrite{Region: RegionData, Index: 1, Block: blk(7)})
	d.CommitGroup(0)
	d.Crash()
	if d.Read(RegionData, 1) != blk(7) {
		t.Fatal("committed write lost")
	}
	if d.DoneBit() {
		t.Fatal("DONE_BIT set after full drain")
	}
}

func TestCommitInterruptedMidDrainIsRedone(t *testing.T) {
	d := newDev()
	d.BeginCommit()
	d.Stage(PendingWrite{Region: RegionData, Index: 0, Block: blk(1)})
	d.Stage(PendingWrite{Region: RegionCounter, Index: 0, Block: blk(2)})
	d.Stage(PendingWrite{Region: RegionTree, Index: 0, Block: blk(3)})
	d.SetPushBudget(1) // power loss after the first push
	d.CommitGroup(0)
	if !d.DoneBit() {
		t.Fatal("DONE_BIT should be set after an interrupted drain")
	}
	d.Crash()
	// Recovery: the whole group must be reapplied (REDO is idempotent).
	if n := d.RedoCommitted(); n != 3 {
		t.Fatalf("RedoCommitted redid %d writes, want 3", n)
	}
	if d.Read(RegionData, 0) != blk(1) || d.Read(RegionCounter, 0) != blk(2) || d.Read(RegionTree, 0) != blk(3) {
		t.Fatal("group not fully reapplied after recovery")
	}
	if d.DoneBit() {
		t.Fatal("DONE_BIT not cleared by RedoCommitted")
	}
}

func TestBeginCommitPanicsWithDoneBitSet(t *testing.T) {
	d := newDev()
	d.BeginCommit()
	d.Stage(PendingWrite{Region: RegionData, Index: 0})
	d.SetPushBudget(0)
	d.CommitGroup(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.BeginCommit()
}

func TestEmptyCommitGroupIsNoop(t *testing.T) {
	d := newDev()
	d.BeginCommit()
	if got := d.CommitGroup(123); got != 123 {
		t.Fatalf("empty commit advanced time to %d", got)
	}
	if d.DoneBit() {
		t.Fatal("DONE_BIT set by empty commit")
	}
}

// --- persistent registers ---

func TestRegisterFileSurvivesCrash(t *testing.T) {
	d := newDev()
	d.SetReg64("mt_root", 0xabcdef)
	d.SetReg("blob", []byte{1, 2, 3})
	d.Crash()
	if v, ok := d.GetReg64("mt_root"); !ok || v != 0xabcdef {
		t.Fatalf("mt_root = %#x,%v", v, ok)
	}
	if b, ok := d.GetReg("blob"); !ok || b[0] != 1 || b[2] != 3 {
		t.Fatal("blob register lost")
	}
	if _, ok := d.GetReg("missing"); ok {
		t.Fatal("missing register found")
	}
	if _, ok := d.GetReg64("missing"); ok {
		t.Fatal("missing 64-bit register found")
	}
}

func TestRegisterTooLargePanics(t *testing.T) {
	d := newDev()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SetReg("big", make([]byte, 65))
}

func TestReg64RoundTrip(t *testing.T) {
	d := newDev()
	f := func(v uint64) bool {
		d.SetReg64("x", v)
		got, ok := d.GetReg64("x")
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionString(t *testing.T) {
	names := map[Region]string{
		RegionData: "data", RegionCounter: "counter", RegionTree: "tree",
		RegionSCT: "sct", RegionSMT: "smt", RegionST: "st",
	}
	for r, want := range names {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if Region(99).String() == "" {
		t.Fatal("unknown region should still stringify")
	}
}

func TestCrashResetsTimingState(t *testing.T) {
	tm := DefaultTiming()
	tm.Banks = 1
	d := NewDevice(tm)
	d.ReadAt(RegionData, 0, 0)
	d.Crash()
	_, done := d.ReadAt(RegionData, 0, 0)
	if done != tm.ReadNS {
		t.Fatalf("bank state survived crash: done=%d", done)
	}
}

func TestNewDevicePanicsOnBadTiming(t *testing.T) {
	for _, tm := range []Timing{{Banks: 0, WPQEntries: 1}, {Banks: 1, WPQEntries: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewDevice(tm)
		}()
	}
}

// --- micro-benchmarks --------------------------------------------------------

// BenchmarkDevicePush measures the durable-write fast path: WPQ prune +
// sorted-ring insert + port-heap occupy + paged-store apply.
func BenchmarkDevicePush(b *testing.B) {
	d := newDev()
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now = d.Push(PendingWrite{Region: RegionData, Index: uint64(i) & 0xffff}, now)
		now += 200 // mimic inter-arrival gaps so the WPQ drains
	}
}

// BenchmarkDeviceReadAt measures the timed read path over a warmed
// footprint (page hit: two slice indexations and a bit test).
func BenchmarkDeviceReadAt(b *testing.B) {
	d := newDev()
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		_, now = d.ReadAt(RegionData, uint64(i)&0xffff, now)
	}
}

// BenchmarkDeviceDrainMode measures reads issued while the WPQ sits at
// its watermark: every read pays prune + the k-th-earliest watermark
// query before the bank clock. Writes are replenished with zero gap so
// the queue never falls below the watermark.
func BenchmarkDeviceDrainMode(b *testing.B) {
	d := newDev()
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now = d.Push(PendingWrite{Region: RegionData, Index: uint64(i) & 0xffff}, now)
		_, now = d.ReadAt(RegionData, uint64(i)&0xffff, now)
	}
}

// --- zero-allocation guarantees ----------------------------------------------

// TestDeviceHotPathZeroAllocs pins the steady-state allocation count of
// the device hot paths at zero: once a footprint's pages exist, reads,
// writes, watermark queries, and wear accounting must not touch the
// heap. This is what keeps sweep cells from hammering the garbage
// collector at figure scale.
func TestDeviceHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented accesses; counts are not meaningful")
	}
	d := newDev()
	// Warm the footprint: allocate every page and fill the WPQ machinery.
	now := uint64(0)
	for i := uint64(0); i < 4096; i++ {
		now = d.Push(PendingWrite{Region: RegionData, Index: i, HasSide: true}, now)
		_, now = d.ReadAt(RegionData, i, now)
	}
	cases := map[string]func(){
		"Push": func() {
			now = d.Push(PendingWrite{Region: RegionData, Index: now & 0xfff, HasSide: true}, now)
			now += 200
		},
		"ReadAt": func() {
			_, now = d.ReadAt(RegionData, now&0xfff, now)
		},
		"ReadAtPtr": func() {
			_, _, now = d.ReadAtPtr(RegionData, now&0xfff, now)
		},
		"Has+WearOf": func() {
			d.Has(RegionData, now&0xfff)
			d.WearOf(RegionData, now&0xfff)
		},
		"drain-mode read": func() {
			now = d.Push(PendingWrite{Region: RegionData, Index: now & 0xfff}, now)
			_, now = d.ReadAt(RegionData, (now+1)&0xfff, now)
		},
	}
	for name, fn := range cases {
		if avg := testing.AllocsPerRun(200, fn); avg != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
		}
	}
}

// TestCountersZeroAllocs asserts the paged update-counter replacement
// for map[uint64]int is allocation-free once its pages exist.
func TestCountersZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented accesses; counts are not meaningful")
	}
	var c Counters
	c.Reserve(4096)
	for i := uint64(0); i < 4096; i++ {
		c.Inc(i)
	}
	var i uint64
	if avg := testing.AllocsPerRun(200, func() {
		c.Inc(i & 0xfff)
		c.Get((i + 1) & 0xfff)
		c.Set((i+2)&0xfff, 0)
		i++
	}); avg != 0 {
		t.Errorf("Counters: %.2f allocs/op, want 0", avg)
	}
}
