package nvm

import "fmt"

// WPQ occupancy and write-port scheduling.
//
// The original model kept WPQ completion times in an unsorted slice:
// pruning and the WPQ-full stall were linear scans, and every read
// issued in drain-watermark mode copied the slice and full-sorted it
// to find the completion time at which the queue falls back below the
// watermark. Completion times are monotone in practice (time never
// runs backwards and the earliest-free port is always picked), so a
// sorted ring buffer gives O(1) push/prune/min, O(1) watermark
// queries, and zero allocations — with an O(occupancy) insertion-sort
// fallback (occupancy ≤ WPQEntries, typically 32) that keeps the model
// correct even for callers that move time backwards.

// wpqRing is a sorted ring of pending-write completion times.
type wpqRing struct {
	buf  []uint64
	head int
	size int
}

func newWPQRing(entries int) wpqRing {
	return wpqRing{buf: make([]uint64, entries)}
}

func (q *wpqRing) pos(i int) int {
	p := q.head + i
	if p >= len(q.buf) {
		p -= len(q.buf)
	}
	return p
}

// kth returns the k-th earliest (0-based) completion time still
// queued. Asking for an occupancy index at or beyond the queue length
// is an impossible-excess invariant violation: with a positive
// watermark wm, excess = len - wm ≤ len - 1. The previous
// implementation silently clamped to the maximum; now it panics.
func (q *wpqRing) kth(k int) uint64 {
	if k < 0 || k >= q.size {
		panic(fmt.Sprintf("nvm: WPQ watermark query for completion %d of %d queued writes", k, q.size))
	}
	return q.buf[q.pos(k)]
}

// min returns the earliest queued completion time.
func (q *wpqRing) min() uint64 { return q.kth(0) }

// push inserts a completion time, keeping the ring sorted. The common
// case (t sorts at the tail) is O(1).
func (q *wpqRing) push(t uint64) {
	if q.size == len(q.buf) {
		panic("nvm: WPQ ring overflow (push without a free slot)")
	}
	i := q.size
	for i > 0 && q.buf[q.pos(i-1)] > t {
		i--
	}
	for j := q.size; j > i; j-- {
		q.buf[q.pos(j)] = q.buf[q.pos(j-1)]
	}
	q.buf[q.pos(i)] = t
	q.size++
}

// prune drops completions at or before now (the write has drained and
// freed its WPQ slot).
func (q *wpqRing) prune(now uint64) {
	for q.size > 0 && q.buf[q.head] <= now {
		q.head++
		if q.head == len(q.buf) {
			q.head = 0
		}
		q.size--
	}
}

// occupancyAt counts entries whose completion time is after now — the
// writes that would still hold WPQ slots at that instant. Non-mutating
// (prune is the mutating form), so admission-control probes can sample
// occupancy without perturbing the timing model.
func (q *wpqRing) occupancyAt(now uint64) int {
	for i := 0; i < q.size; i++ {
		if q.buf[q.pos(i)] > now {
			return q.size - i
		}
	}
	return 0
}

// latest returns the completion time of the last queued write (0 when
// the ring is empty).
func (q *wpqRing) latest() uint64 {
	if q.size == 0 {
		return 0
	}
	return q.buf[q.pos(q.size-1)]
}

// reset empties the ring (power cycle).
func (q *wpqRing) reset() {
	q.head, q.size = 0, 0
}

// clone returns an independent copy with identical contents and order.
func (q *wpqRing) clone() wpqRing {
	return wpqRing{buf: append([]uint64(nil), q.buf...), head: q.head, size: q.size}
}

// --- write-port earliest-free tracking ---------------------------------------

// portHeap tracks the next-free time of each PCM write port as a
// binary min-heap ordered by (freeTime, port index), replacing the
// per-push linear scan. The only mutation pattern is "take the
// earliest-free port, occupy it until done": a replace-min + sift-down,
// O(log ports). The lexicographic tie-break reproduces the old scan's
// lowest-index-wins choice exactly.
type portHeap struct {
	free []uint64
	port []int
}

func newPortHeap(n int) portHeap {
	h := portHeap{free: make([]uint64, n), port: make([]int, n)}
	for i := range h.port {
		h.port[i] = i
	}
	return h
}

func (h *portHeap) less(i, j int) bool {
	return h.free[i] < h.free[j] ||
		(h.free[i] == h.free[j] && h.port[i] < h.port[j])
}

// minFree returns the earliest next-free time across ports.
func (h *portHeap) minFree() uint64 { return h.free[0] }

// occupyMin assigns the earliest-free port a new busy-until time.
func (h *portHeap) occupyMin(done uint64) {
	h.free[0] = done
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.free) && h.less(l, m) {
			m = l
		}
		if r < len(h.free) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.free[i], h.free[m] = h.free[m], h.free[i]
		h.port[i], h.port[m] = h.port[m], h.port[i]
		i = m
	}
}

// peekEarliest returns the earliest-free port among those for which
// member reports true, without mutating the heap. The epoch scheduler
// uses it to place a coalesced drain window without disturbing port
// state. The traversal prunes on the heap property: a subtree whose
// root is already strictly later than the best candidate cannot beat
// it (equal times still descend, so the lexicographic lowest-index
// tie-break of occupyMin is reproduced exactly). member == nil means
// "every port".
func (h *portHeap) peekEarliest(member func(port int) bool) (port int, free uint64, ok bool) {
	var walk func(i int)
	walk = func(i int) {
		if i >= len(h.free) {
			return
		}
		if ok && h.free[i] > free {
			return // heap property: whole subtree is >= free[i] > best
		}
		if member == nil || member(h.port[i]) {
			if !ok || h.free[i] < free || (h.free[i] == free && h.port[i] < port) {
				port, free, ok = h.port[i], h.free[i], true
			}
		}
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return port, free, ok
}

// clone returns an independent copy with identical heap layout, so a
// forked device schedules exactly the same ports as its parent would.
func (h *portHeap) clone() portHeap {
	return portHeap{
		free: append([]uint64(nil), h.free...),
		port: append([]int(nil), h.port...),
	}
}

// reset returns every port to free-at-zero (power cycle).
func (h *portHeap) reset() {
	for i := range h.free {
		h.free[i] = 0
		h.port[i] = i
	}
}
