// Package nvm models the non-volatile main memory of a secure-NVM
// system, together with the persistence machinery of the memory
// controller's NVM-facing side:
//
//   - a sparse, banked PCM-like block device with read/write timing and
//     bank occupancy (Table 1 of the paper: 60 ns reads, 150 ns writes);
//   - the Write Pending Queue (WPQ): a small buffer inside the ADR
//     (Asynchronous DRAM Refresh) persistence domain. A write is durable
//     the moment it enters the WPQ, because ADR guarantees enough
//     residual energy to drain it to media on power loss (§2.7);
//   - on-chip persistent registers with a DONE_BIT, implementing the
//     paper's two-stage REDO-style atomic commit of a data write together
//     with all of its security-metadata updates (Figure 4);
//   - a small persistent register file for the handful of root values a
//     secure processor keeps on chip (Merkle root, SGX root nonces,
//     SHADOW_TREE_ROOT).
//
// Storage is a paged sparse store (see paged.go) and WPQ/write-port
// occupancy is a sorted ring plus an earliest-free port heap (see
// sched.go), so the simulation hot path — ReadAt and Push — performs
// no map operations and no allocations.
//
// Crash semantics: everything written through the WPQ, the persistent
// registers, and the register file survive Crash(); nothing else does
// (caches and other volatile controller state live outside this
// package and are dropped by their owners).
package nvm

import (
	"fmt"

	"anubis/internal/obs"
)

// BlockBytes is the device block (cache line) size.
const BlockBytes = 64

// Region identifies a physical carve-out of the NVM address space.
// Each region has its own block index space.
type Region uint8

const (
	// RegionData holds user data blocks (with ECC+MAC sideband).
	RegionData Region = iota
	// RegionCounter holds encryption counter blocks.
	RegionCounter
	// RegionTree holds integrity tree nodes.
	RegionTree
	// RegionSCT is the Shadow Counter Table (AGIT).
	RegionSCT
	// RegionSMT is the Shadow Merkle-tree Table (AGIT).
	RegionSMT
	// RegionST is the combined Shadow Table (ASIT).
	RegionST
	numRegions
)

func (r Region) String() string {
	switch r {
	case RegionData:
		return "data"
	case RegionCounter:
		return "counter"
	case RegionTree:
		return "tree"
	case RegionSCT:
		return "sct"
	case RegionSMT:
		return "smt"
	case RegionST:
		return "st"
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// readComp maps a region to the stall-attribution component charged for
// a timed media read of that region: data fetches, counter-cache fills,
// tree-node fills, and shadow-table traffic each get their own bucket.
var readComp = [numRegions]obs.Comp{
	RegionData:    obs.CompDataRead,
	RegionCounter: obs.CompCounterFill,
	RegionTree:    obs.CompTreeFill,
	RegionSCT:     obs.CompShadow,
	RegionSMT:     obs.CompShadow,
	RegionST:      obs.CompShadow,
}

// pushComp maps a region to the component charged for WPQ back-pressure
// stalls while pushing a write to it: shadow-table writes are the AGIT/
// ASIT run-time cost the paper isolates, everything else is generic WPQ
// pressure.
func pushComp(r Region) obs.Comp {
	switch r {
	case RegionSCT, RegionSMT, RegionST:
		return obs.CompShadow
	}
	return obs.CompWPQStall
}

// Sideband is the per-data-block DIMM sideband: the SECDED check bytes
// and the Bonsai data MAC, transferred together with the 64-byte block
// (the Synergy layout the paper and Osiris assume). Phase optionally
// carries the low bits of the encryption counter used for this block —
// the paper's §2.4 "extending the data bus to include a portion of the
// counter" alternative to ECC-trial recovery.
type Sideband struct {
	ECC   [8]uint8
	MAC   uint64
	Phase uint8
}

// Timing parameterizes the device's latency model.
type Timing struct {
	ReadNS     uint64 // media read latency
	WriteNS    uint64 // media write latency
	Banks      int    // independently schedulable banks (reads)
	WPQEntries int    // write pending queue capacity
	// WritePorts is the number of concurrent PCM write drains the power
	// budget allows (write traffic beyond ports*1/WriteNS queues up).
	WritePorts int
	// DrainWatermark is the outstanding-write count above which the
	// controller enters write-drain mode and arriving reads wait for the
	// queue to fall back below the watermark — the standard high-
	// watermark policy of DDR memory controllers. This is what couples
	// metadata write amplification to read latency.
	DrainWatermark int
}

// DefaultTiming matches Table 1 of the paper plus typical controller
// parameters (bank-level parallelism, tens of WPQ entries).
func DefaultTiming() Timing {
	return Timing{ReadNS: 60, WriteNS: 150, Banks: 4, WritePorts: 2, WPQEntries: 32, DrainWatermark: 16}
}

// Stats accumulates device activity.
type Stats struct {
	Reads          uint64             `json:"reads"`
	Writes         uint64             `json:"writes"`
	WritesByRegion [numRegions]uint64 `json:"writes_by_region"`
	ReadsByRegion  [numRegions]uint64 `json:"reads_by_region"`
	WPQStallNS     uint64             `json:"wpq_stall_ns"`   // time callers spent waiting for a WPQ slot
	DrainStallNS   uint64             `json:"drain_stall_ns"` // time reads spent blocked by write-drain mode
}

// WritesTo returns the write count for one region.
func (s Stats) WritesTo(r Region) uint64 { return s.WritesByRegion[r] }

// ReadsFrom returns the read count for one region.
func (s Stats) ReadsFrom(r Region) uint64 { return s.ReadsByRegion[r] }

// PendingWrite is one entry staged for durable write-out. A PendingWrite
// with RegName set targets an on-chip persistent register instead of an
// NVM block; including register updates in a commit group makes root
// values update atomically with the tree/counter writes they authenticate.
// A PendingWrite with JOp set is an epoch-journal operation (see
// journal.go) and is likewise on-chip: Region/Index are ignored, Block
// carries the New content of a JournalNote.
type PendingWrite struct {
	Region  Region
	Index   uint64
	Block   [BlockBytes]byte
	HasSide bool
	Side    Sideband
	RegName string // when non-empty: register write, Region/Index ignored

	JOp  JournalOp        // when non-zero: epoch-journal op, Region/Index ignored
	JKey uint64           // journaled block key
	JOld [BlockBytes]byte // epoch-start content (first JournalNote for JKey)
}

// Device is the NVM DIMM plus WPQ plus persistent registers. It is not
// safe for concurrent use.
type Device struct {
	timing Timing

	store [numRegions]pagedStore

	bankFree []uint64 // per-bank next-free time for reads (ns)
	ports    portHeap // per-write-port next-free times (PCM writes are drain-limited)
	wpq      wpqRing  // completion times of writes still occupying the WPQ

	stats Stats
	// att decomposes every nanosecond of caller-visible latency the
	// device hands out (read completion deltas, WPQ stalls) into named
	// components. Plain uint64 adds on the hot path: always on, never
	// branching simulation behaviour, zero allocations. Controllers add
	// their own components (cpu gap, crypto, overlapped-read residual)
	// through Attr so one ledger carries the whole clock decomposition.
	att obs.Ledger

	// Two-stage commit state (persistent; survives Crash).
	staged  []PendingWrite
	doneBit bool
	// pushBudget limits how many staged entries Commit may drain before a
	// simulated power loss; -1 means unlimited. Test hook for §2.7.
	pushBudget int

	// trackInflight arms the relaxed-crash-model undo log (see
	// crashmodel.go); inflight holds pushed writes that may still be in
	// the WPQ, with the media state they replaced.
	trackInflight bool
	inflight      []inflightWrite

	// regs is the on-chip persistent register file.
	regs map[string][BlockBytes]byte

	// journal is the persistent epoch journal (see journal.go); like
	// regs it lives on chip, inside the persistence domain, and survives
	// every crash model.
	journal    []JournalEntry
	journalIdx map[uint64]int
}

// NewDevice creates an empty device with the given timing.
func NewDevice(t Timing) *Device {
	if t.Banks <= 0 || t.WPQEntries <= 0 {
		panic("nvm: timing needs at least one bank and one WPQ entry")
	}
	if t.WritePorts <= 0 {
		t.WritePorts = 1
	}
	return &Device{
		timing:     t,
		bankFree:   make([]uint64, t.Banks),
		ports:      newPortHeap(t.WritePorts),
		wpq:        newWPQRing(t.WPQEntries),
		regs:       make(map[string][BlockBytes]byte),
		pushBudget: -1,
	}
}

// Reserve declares a region's extent (its number of block indices), the
// way a real DIMM has fixed geometry. The page directory is allocated
// once at full size, so first touches never pay geometric directory
// regrowth. Indices beyond the reservation stay legal — the directory
// grows, or overflows to a map, on demand — and reserving is always
// optional.
func (d *Device) Reserve(r Region, blocks uint64) {
	d.store[r].reserve((blocks + pageMask) >> pageShift)
}

// Timing returns the device's timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// Stats returns a snapshot of accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the accumulated statistics and the stall-attribution
// ledger (e.g. after controller initialization, so measurements cover
// only the workload).
func (d *Device) ResetStats() {
	d.stats = Stats{}
	d.att = obs.Ledger{}
}

// Attr exposes the device's stall-attribution ledger. The device adds
// media/queueing components; its controller adds the controller-side
// ones, so the ledger's total tracks the controller clock exactly (the
// sum-exact invariant the attribution tests assert).
func (d *Device) Attr() *obs.Ledger { return &d.att }

func (d *Device) bankOf(r Region, idx uint64) int {
	h := (idx ^ uint64(r)<<40) * 0x9e3779b97f4a7c15
	return int(h>>32) % d.timing.Banks
}

// BankOf exposes the bank mapping of a block, so an epoch scheduler can
// reason about which banks a coalesced drain will occupy.
func (d *Device) BankOf(r Region, idx uint64) int { return d.bankOf(r, idx) }

// ShardOf hashes an index onto one of n shards with the same
// multiply-mix bankOf uses for bank interleaving, so any shard
// assignment built on it follows the device's bank distribution: pages
// that interleave across banks interleave across shards the same way.
// The intra-trial execution sharder (internal/shard) uses this to
// assign metadata pages to precompute workers.
func ShardOf(idx uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := idx * 0x9e3779b97f4a7c15
	return int(h>>32) % n
}

// EarliestBankFree reports the earliest instant at which a write drain
// touching any bank of the given set could begin: the soonest-free bank
// of the set combined with the earliest-free write port. Neither the
// bank clocks nor the port heap are mutated (the port side uses the
// heap's pruned non-mutating peek), so the epoch scheduler can place a
// coalesced drain window without committing to it. banks == nil means
// "any bank".
func (d *Device) EarliestBankFree(banks func(bank int) bool) uint64 {
	var bank uint64
	found := false
	for b, f := range d.bankFree {
		if banks != nil && !banks(b) {
			continue
		}
		if !found || f < bank {
			bank, found = f, true
		}
	}
	_, portFree, ok := d.ports.peekEarliest(nil)
	if !ok || !found {
		return 0
	}
	if portFree > bank {
		return portFree
	}
	return bank
}

// readClock advances the device's read-side clocks for a request
// arriving at now: drain-watermark blocking, then bank occupancy. It
// returns the completion time. With attr set, the wait/transfer splits
// are charged to the attribution ledger — callers that adopt the
// returned completion time use the attributing form; overlapped reads
// (whose latency is partially hidden behind other work) use the quiet
// form and charge only the visible residual themselves.
func (d *Device) readClock(r Region, idx uint64, now uint64, attr bool) uint64 {
	start := now
	if wm := d.timing.DrainWatermark; wm > 0 {
		d.wpq.prune(now)
		if excess := d.wpq.size - wm; excess >= 0 {
			// Wait for the (excess+1)-th earliest completion, after which
			// the queue is back below the watermark.
			t := d.wpq.kth(excess)
			if t > start {
				d.stats.DrainStallNS += t - start
				if attr {
					d.att[obs.CompDrainStall] += t - start
				}
				start = t
			}
		}
	}
	b := d.bankOf(r, idx)
	if d.bankFree[b] > start {
		if attr {
			d.att[obs.CompBankBusy] += d.bankFree[b] - start
		}
		start = d.bankFree[b]
	}
	done := start + d.timing.ReadNS
	if attr {
		d.att[readComp[r]] += d.timing.ReadNS
	}
	d.bankFree[b] = done
	return done
}

// ReadAt reads a block, returning its contents and the completion time
// given the request arrives at time now. A read arriving while the
// write queue is above the drain watermark waits until enough writes
// have drained (write-drain mode blocks reads).
func (d *Device) ReadAt(r Region, idx uint64, now uint64) ([BlockBytes]byte, uint64) {
	blk, _, done := d.ReadAtPtr(r, idx, now)
	return *blk, done
}

// ReadAtPtr is the zero-copy form of ReadAt: it returns a pointer to
// the stored block (or to a shared zero block when the block was never
// written), whether the block is present, and the completion time. The
// pointed-to content is read-only and valid until the next write to
// the same block; hot paths consume it immediately.
func (d *Device) ReadAtPtr(r Region, idx uint64, now uint64) (*[BlockBytes]byte, bool, uint64) {
	d.stats.Reads++
	d.stats.ReadsByRegion[r]++
	done := d.readClock(r, idx, now, true)
	blk, ok := d.store[r].blockPtr(idx)
	return blk, ok, done
}

// ReadAtPtrQuiet is ReadAtPtr without attribution: identical timing and
// stats, but nothing is charged to the stall ledger. Controllers use it
// for reads whose latency overlaps other attributed work (the data
// fetch issued alongside the metadata walk) and charge only the
// visible residual themselves, keeping the ledger sum-exact.
func (d *Device) ReadAtPtrQuiet(r Region, idx uint64, now uint64) (*[BlockBytes]byte, bool, uint64) {
	d.stats.Reads++
	d.stats.ReadsByRegion[r]++
	done := d.readClock(r, idx, now, false)
	blk, ok := d.store[r].blockPtr(idx)
	return blk, ok, done
}

// Read reads a block without timing (recovery paths account their own
// time with the paper's 100 ns/op model).
func (d *Device) Read(r Region, idx uint64) [BlockBytes]byte {
	blk, _ := d.ReadPtr(r, idx)
	return *blk
}

// ReadPtr is the zero-copy, untimed form of Read; same aliasing
// contract as ReadAtPtr.
func (d *Device) ReadPtr(r Region, idx uint64) (*[BlockBytes]byte, bool) {
	d.stats.Reads++
	d.stats.ReadsByRegion[r]++
	return d.store[r].blockPtr(idx)
}

// ReadSideband returns the ECC+MAC sideband of a data block.
func (d *Device) ReadSideband(idx uint64) Sideband {
	p := d.store[RegionData].pageAt(idx)
	if p == nil || p.side == nil {
		return Sideband{}
	}
	return p.side[idx&pageMask]
}

// Has reports whether a block was ever written. Controllers use it to
// distinguish never-initialized blocks (logical zeros with well-defined
// default metadata) from genuinely stored content.
func (d *Device) Has(r Region, idx uint64) bool {
	return d.store[r].has(idx)
}

// Push makes a write durable (it enters the ADR domain) and schedules
// its drain to media. It returns the time at which the caller proceeds:
// normally `now`, later if the WPQ was full and the caller had to stall.
func (d *Device) Push(w PendingWrite, now uint64) uint64 {
	if w.RegName != "" || w.JOp != JournalNone {
		d.apply(&w)
		return now
	}
	d.wpq.prune(now)
	for d.wpq.size >= d.timing.WPQEntries {
		// Stall until the earliest queued write completes.
		earliest := d.wpq.min()
		d.stats.WPQStallNS += earliest - now
		d.att[pushComp(w.Region)] += earliest - now
		now = earliest
		d.wpq.prune(now)
	}
	// PCM writes are slow and effectively serialize on the rank's write
	// path (long write-recovery occupancy), which is what makes strict
	// persistence's write amplification so expensive. The caller does
	// not wait for the drain — only for a free WPQ slot above.
	// The drain occupies the earliest-free write port.
	start := now
	if f := d.ports.minFree(); f > start {
		start = f
	}
	done := start + d.timing.WriteNS
	if d.trackInflight {
		// Relaxed crash models: snapshot the media state this write
		// replaces, tagged with its drain completion time (see
		// crashmodel.go). Must run before apply.
		d.recordInflight(&w, now, done)
	}
	d.apply(&w)
	d.ports.occupyMin(done)
	// The drain also occupies the target bank: reads to it wait out the
	// write, which is how metadata write amplification inflates read
	// latency even below saturation.
	b := d.bankOf(w.Region, w.Index)
	if done > d.bankFree[b] {
		d.bankFree[b] = done
	}
	d.wpq.push(done)
	return now
}

// apply commits a write to the persistent store (the functional effect
// of reaching the ADR domain).
func (d *Device) apply(w *PendingWrite) {
	if w.JOp != JournalNone {
		// On-chip journal op: durable immediately, no media traffic.
		d.applyJournal(w)
		return
	}
	if w.RegName != "" {
		// On-chip register: durable immediately, no media traffic.
		d.regs[w.RegName] = w.Block
		return
	}
	d.stats.Writes++
	d.stats.WritesByRegion[w.Region]++
	s := &d.store[w.Region]
	p, o := s.slot(w.Index)
	p.wear[o]++
	if p.present[o>>6]&(1<<(o&63)) == 0 {
		p.present[o>>6] |= 1 << (o & 63)
		s.count++
	}
	p.data[o] = w.Block
	if w.HasSide {
		if w.Region != RegionData {
			panic("nvm: sideband write outside the data region")
		}
		if p.side == nil {
			p.side = new([pageBlocks]Sideband)
		}
		p.side[o] = w.Side
	}
}

// WriteRaw bypasses WPQ and timing, installing a block directly. It is
// intended for initialization (pre-filling memory images) and for
// recovery code, which accounts its own time.
func (d *Device) WriteRaw(r Region, idx uint64, blk [BlockBytes]byte) {
	d.stats.Writes++
	d.stats.WritesByRegion[r]++
	s := &d.store[r]
	p, o := s.slot(idx)
	p.wear[o]++
	if p.present[o>>6]&(1<<(o&63)) == 0 {
		p.present[o>>6] |= 1 << (o & 63)
		s.count++
	}
	p.data[o] = blk
}

// WearOf returns the number of media writes a block has absorbed.
func (d *Device) WearOf(r Region, idx uint64) uint64 {
	return d.store[r].wearOf(idx)
}

// MaxWear returns the hottest block of a region and its write count —
// the cell that dies first and therefore bounds device lifetime.
func (d *Device) MaxWear(r Region) (idx, count uint64) {
	d.store[r].forEachPage(func(base uint64, p *page) {
		for o := 0; o < pageBlocks; o++ {
			if c := p.wear[o]; c > count {
				idx, count = base+uint64(o), c
			}
		}
	})
	return idx, count
}

// MaxWearAll returns the hottest block across every region.
func (d *Device) MaxWearAll() (r Region, idx, count uint64) {
	for reg := Region(0); reg < numRegions; reg++ {
		if i, c := d.MaxWear(reg); c > count {
			r, idx, count = reg, i, c
		}
	}
	return r, idx, count
}

// WriteRawData installs a data block with sideband, bypassing timing.
func (d *Device) WriteRawData(idx uint64, blk [BlockBytes]byte, s Sideband) {
	d.WriteRaw(RegionData, idx, blk)
	p, o := d.store[RegionData].slot(idx)
	if p.side == nil {
		p.side = new([pageBlocks]Sideband)
	}
	p.side[o] = s
}

// Erase removes a block from the medium (used by wear leveling when an
// empty line rotates: the destination must not retain stale content).
// It costs one media write.
func (d *Device) Erase(r Region, idx uint64) {
	d.stats.Writes++
	d.stats.WritesByRegion[r]++
	s := &d.store[r]
	p, o := s.slot(idx)
	p.wear[o]++
	if p.present[o>>6]&(1<<(o&63)) != 0 {
		p.present[o>>6] &^= 1 << (o & 63)
		s.count--
	}
	p.data[o] = zeroBlock
	if p.side != nil {
		p.side[o] = Sideband{}
	}
}

// CorruptBlock XORs a mask into a stored block, modeling an attacker or
// media fault. It reports whether the block existed.
func (d *Device) CorruptBlock(r Region, idx uint64, byteIdx int, mask byte) bool {
	s := &d.store[r]
	// Probe read-only first so corrupting an absent block allocates
	// nothing; then mutate through slot(), which performs the
	// copy-on-write duplication if the page is frozen/shared.
	p := s.pageAt(idx)
	if p == nil {
		return false
	}
	o := idx & pageMask
	if p.present[o>>6]&(1<<(o&63)) == 0 {
		return false
	}
	p, o = s.slot(idx)
	p.data[o][byteIdx] ^= mask
	return true
}

// BlocksIn returns the sorted indices of blocks ever written in a region.
func (d *Device) BlocksIn(r Region) []uint64 {
	s := &d.store[r]
	out := make([]uint64, 0, s.count)
	s.forEachPage(func(base uint64, p *page) {
		for w, bits := range p.present {
			for bits != 0 {
				o := uint64(w)<<6 | uint64(trailingZeros64(bits))
				out = append(out, base+o)
				bits &= bits - 1
			}
		}
	})
	return out
}

// trailingZeros64 is math/bits.TrailingZeros64 (kept local to avoid the
// import for one call site).
func trailingZeros64(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// --- two-stage commit (persistent registers + DONE_BIT) -------------------

// BeginCommit starts staging a new atomic group. It panics if a previous
// group is still open or committed-but-undrained (callers must have
// completed or recovered it first).
func (d *Device) BeginCommit() {
	if d.doneBit {
		panic("nvm: BeginCommit with DONE_BIT set; run RedoCommitted first")
	}
	d.staged = d.staged[:0]
}

// Stage adds a write to the open group. Nothing is durable yet: a crash
// before CommitGroup discards the group entirely (the write never
// reached the persistence domain, §2.7).
func (d *Device) Stage(w PendingWrite) {
	d.staged = append(d.staged, w)
}

// StagedLen returns the number of writes in the open group.
func (d *Device) StagedLen() int { return len(d.staged) }

// CommitGroup sets DONE_BIT (the group is now atomically durable in the
// persistent registers) and drains the group into the WPQ. It returns
// the caller-resume time. If the test hook pushBudget interrupts the
// drain, the group stays resident with DONE_BIT set, exactly the state
// RedoCommitted repairs.
func (d *Device) CommitGroup(now uint64) uint64 {
	if len(d.staged) == 0 {
		return now
	}
	d.doneBit = true
	for i := 0; i < len(d.staged); i++ {
		if d.pushBudget == 0 {
			return now // simulated power loss mid-drain
		}
		if d.pushBudget > 0 {
			d.pushBudget--
		}
		now = d.Push(d.staged[i], now)
	}
	d.staged = d.staged[:0]
	d.doneBit = false
	return now
}

// DoneBit exposes the DONE_BIT for recovery logic and tests.
func (d *Device) DoneBit() bool { return d.doneBit }

// RedoCommitted re-drains a committed-but-interrupted group after a
// crash. Safe to call unconditionally at recovery start; it is a no-op
// when DONE_BIT is clear. Pushes are idempotent (REDO semantics).
func (d *Device) RedoCommitted() int {
	if !d.doneBit {
		// A group staged but not committed never reached the persistence
		// domain: discard it (the write is lost, as the paper specifies).
		d.staged = d.staged[:0]
		return 0
	}
	n := len(d.staged)
	for i := range d.staged {
		d.apply(&d.staged[i])
	}
	d.staged = d.staged[:0]
	d.doneBit = false
	return n
}

// SetPushBudget arms the mid-drain power-loss test hook: CommitGroup
// will push at most n more entries. Pass -1 to disarm.
func (d *Device) SetPushBudget(n int) { d.pushBudget = n }

// PushBudget reports the current mid-drain power-loss budget (-1 when
// disarmed). Test hook: the crash regression suite asserts Crash
// resets it.
func (d *Device) PushBudget() int { return d.pushBudget }

// WPQOccupancy reports how many writes would still hold WPQ slots at
// time now. Unlike the internal prune, it does not mutate the queue:
// a serving layer can sample back-pressure between requests without
// changing what the next Push observes.
func (d *Device) WPQOccupancy(now uint64) int { return d.wpq.occupancyAt(now) }

// WPQDrainTime returns the completion time of the last write still in
// the WPQ (0 when empty): the instant the queue is fully drained.
func (d *Device) WPQDrainTime() uint64 { return d.wpq.latest() }

// --- persistent register file ---------------------------------------------

// SetReg durably stores a named on-chip register value (≤ 64 bytes).
func (d *Device) SetReg(name string, val []byte) {
	if len(val) > BlockBytes {
		panic("nvm: register value too large")
	}
	var b [BlockBytes]byte
	copy(b[:], val)
	d.regs[name] = b
}

// SetReg64 durably stores a named 8-byte register.
func (d *Device) SetReg64(name string, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> uint(8*i))
	}
	d.SetReg(name, b[:])
}

// GetReg returns a named register value and whether it was ever set.
func (d *Device) GetReg(name string) ([BlockBytes]byte, bool) {
	v, ok := d.regs[name]
	return v, ok
}

// GetReg64 returns a named 8-byte register.
func (d *Device) GetReg64(name string) (uint64, bool) {
	b, ok := d.regs[name]
	if !ok {
		return 0, false
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << uint(8*i)
	}
	return v, true
}

// --- snapshot / fork --------------------------------------------------------

// Snapshot freezes the device's stored image copy-on-write: every
// currently allocated page in every region becomes immutable in place,
// and the next write to any of them first duplicates that
// page. O(regions) — no page data is touched. Snapshot is implied by
// Fork; calling it directly is only useful to bound when a long-lived
// reference (e.g. an image Save in another goroutine) stops observing
// new writes... which this simulator does not do, so Fork is the
// expected entry point.
func (d *Device) Snapshot() {
	for r := range d.store {
		d.store[r].freeze()
	}
}

// Fork snapshots the device and returns an independent child sharing
// the frozen stored image copy-on-write. Everything else — timing
// clocks, bank/port/WPQ occupancy, stats, the staged commit group,
// DONE_BIT, and the persistent register file — is value-cloned, so the
// child behaves byte-for-byte like a device that lived through the
// parent's entire history. The eager cost is the per-region page
// directories (noscan int32 slices + page-pointer slices); page
// payloads are copied only as either side writes to them. Parent and
// child may both be forked again, any number of times.
func (d *Device) Fork() *Device {
	n := &Device{
		timing:        d.timing,
		bankFree:      append([]uint64(nil), d.bankFree...),
		ports:         d.ports.clone(),
		wpq:           d.wpq.clone(),
		stats:         d.stats,
		att:           d.att,
		staged:        append([]PendingWrite(nil), d.staged...),
		doneBit:       d.doneBit,
		pushBudget:    d.pushBudget,
		trackInflight: d.trackInflight,
		inflight:      append([]inflightWrite(nil), d.inflight...),
		regs:          make(map[string][BlockBytes]byte, len(d.regs)),
	}
	for r := range d.store {
		n.store[r] = d.store[r].fork()
	}
	for k, v := range d.regs {
		n.regs[k] = v
	}
	d.cloneJournal(n)
	return n
}

// --- crash ------------------------------------------------------------------

// Crash models a power failure: ADR has already made every pushed write
// durable; staged-but-uncommitted groups are lost; committed groups and
// registers survive. Timing state resets (the machine is off), and the
// pushBudget test hook disarms — a budgeted power-loss trial must not
// throttle the recovered run. Equivalent to CrashWith(CrashFullADR, nil);
// see crashmodel.go for the relaxed-persistence models.
func (d *Device) Crash() {
	d.CrashWith(CrashFullADR, nil)
}
