package nvm

import (
	"sort"
	"sync/atomic"
)

// Paged sparse storage.
//
// The original Device kept one Go map per region (blocks), one for the
// data sideband, and one wear map per region. At sweep scale every
// simulated access paid map hashing plus a 64-byte value copy, and
// every media write paid a second map op for wear accounting. The
// paged store replaces all of that with fixed-size pages — a flat data
// array, a presence bitmap (preserving Has()'s "ever written, not
// erased" semantics), per-block wear counters, and a lazily allocated
// sideband array for the data region — reached through a dense page
// directory indexed by idx >> pageShift. A page hit is two slice
// indexations and a bit test: zero map ops, zero 64-byte copies when
// callers use the pointer-returning accessors.
//
// The directory itself stores int32 page handles rather than *page
// pointers. A multi-GB region reserved up front needs a directory with
// millions of entries; as []*page that is megabytes of pointer slots
// the garbage collector must scan on every cycle, and sweeps that
// construct one device per (scheme, app) cell turn that scanning into
// measurable GC assist time. []int32 is pointer-free (noscan): the GC
// skips the directory entirely, and the reservation allocation is half
// the size. Handles are 1-based; 0 means "no page"; handle h resolves
// to pages[h-1].

const (
	// pageShift selects 8-block (512 B data) pages. Page size trades the
	// cost of a cold first touch (allocating and zeroing one fresh page)
	// against directory length and per-page header overhead. Simulation
	// sweeps are first-touch heavy — every (scheme, app) cell starts from
	// a fresh device and visits a sliver of a multi-GB address space, and
	// random-access workloads touch one block per cold page — so smaller
	// pages waste less zeroing per first touch, while a page hit stays
	// two slice indexations and a bit test (and usually just the
	// one-entry memo below).
	pageShift  = 3
	pageBlocks = 1 << pageShift
	pageMask   = pageBlocks - 1

	// presentWords sizes the presence bitmap (at least one word).
	presentWords = (pageBlocks + 63) / 64

	// maxDirPages caps the dense directory (2^24 pages = 2^28 blocks =
	// 16 GB of 64-byte blocks per region). Blocks above the cap land
	// in an overflow map so a stray huge index cannot force a giant
	// directory allocation.
	maxDirPages = 1 << 24
)

// page is the unit of sparse allocation: presence bitmap, wear
// counters, block data, and (data region only) the DIMM sideband.
//
// owner is the copy-on-write tag: the ID of the pagedStore that is
// allowed to mutate this page in place. A page whose owner differs
// from its store's owner is frozen (shared with a snapshot or with
// forked children) and must be copied before the first write — see
// pagedStore.slot, the single chokepoint every mutation resolves
// through.
type page struct {
	present [presentWords]uint64
	wear    [pageBlocks]uint64
	data    [pageBlocks][BlockBytes]byte
	side    *[pageBlocks]Sideband // allocated on first sideband write
	owner   int64                 // COW epoch tag (see storeIDs)
}

// storeIDs issues globally unique pagedStore owner IDs. The zero value
// is reserved: a never-forked store and its pages both carry owner 0,
// so the in-place fast path works without ever minting an ID. IDs are
// minted atomically because forked devices may be exercised from
// parallel sweep workers; all other store state is still single-owner.
var storeIDs atomic.Int64

func nextStoreID() int64 { return storeIDs.Add(1) }

// zeroBlock is what pointer-returning reads of never-written (or
// erased) blocks resolve to. Callers treat returned block pointers as
// read-only; Device's own mutators never write through it.
var zeroBlock [BlockBytes]byte

// pagedStore is one region's sparse block store.
//
// lastPi/lastP memoize the most recently resolved page. Simulated
// accesses are bursty within a page (sequential fills, tree path
// walks, counter-line re-reads), so the memo short-circuits the
// directory indirection for the common repeat hit. The invariant that
// keeps it sound: only slot() replaces a directory entry (COW), and
// slot() refreshes the memo whenever it does, so lastP always equals
// the page currently installed at lastPi. slot()'s memo hit
// additionally requires the owner tag to match, so a frozen page can
// be served to readers but never handed out for in-place mutation.
type pagedStore struct {
	dir    []int32          // dense directory of 1-based handles (noscan)
	pages  []*page          // handle h -> pages[h-1]
	over   map[uint64]*page // pages at index >= maxDirPages
	count  int              // blocks with the presence bit set
	owner  int64            // COW epoch: pages with page.owner==owner are writable in place
	lastPi uint64           // page index of the memoized page
	lastP  *page            // memoized page (nil = no memo)
	slab   []page           // carve space for newPage; amortizes allocation
}

// slabPages sizes the page-allocation slab. First-touch-heavy sweeps
// allocate thousands of pages per region; carving them from one large
// chunk replaces a per-page malloc (object header, zeroing, GC scan
// metadata) with a slice re-header. A few tens of KB per slab keeps
// the waste of a barely-touched region small while amortizing well.
const slabPages = 64

// newPage carves a zeroed page tagged with the store's owner epoch.
func (s *pagedStore) newPage() *page {
	if len(s.slab) == 0 {
		s.slab = make([]page, slabPages)
	}
	p := &s.slab[0]
	s.slab = s.slab[1:]
	p.owner = s.owner
	return p
}

// reserve pre-sizes the directory to hold pages [0, n), clamped to the
// directory cap. A reserved store never pays geometric regrowth — the
// dominant first-touch cost for multi-million-block regions.
func (s *pagedStore) reserve(n uint64) {
	if n > maxDirPages {
		n = maxDirPages
	}
	if n > uint64(len(s.dir)) {
		grown := make([]int32, n)
		copy(grown, s.dir)
		s.dir = grown
	}
}

// pageAt returns the page holding idx, or nil if it was never touched.
// Read-only: a memo hit may return a frozen page (fine for readers).
func (s *pagedStore) pageAt(idx uint64) *page {
	pi := idx >> pageShift
	if s.lastP != nil && s.lastPi == pi {
		return s.lastP
	}
	if pi < uint64(len(s.dir)) {
		if h := s.dir[pi]; h != 0 {
			p := s.pages[h-1]
			s.lastPi, s.lastP = pi, p
			return p
		}
		return nil
	}
	if pi >= maxDirPages {
		if p := s.over[pi]; p != nil {
			s.lastPi, s.lastP = pi, p
			return p
		}
	}
	return nil
}

// slot returns the (page, offset) cell for idx, allocating the page —
// and growing the directory — on first touch. It is the single
// chokepoint every mutation resolves through, which makes it the COW
// hook: a resolved page whose owner tag differs from the store's is
// frozen (shared with a snapshot or a forked sibling) and is replaced
// by a private copy before the caller sees it. Reads (pageAt/blockPtr)
// never trigger a copy.
func (s *pagedStore) slot(idx uint64) (*page, uint64) {
	pi := idx >> pageShift
	if p := s.lastP; p != nil && s.lastPi == pi && p.owner == s.owner {
		return p, idx & pageMask
	}
	if pi < maxDirPages {
		if pi >= uint64(len(s.dir)) {
			// Geometric growth keeps repeated appends amortized O(1).
			n := uint64(len(s.dir))*2 + 1
			if n <= pi {
				n = pi + 1
			}
			if n > maxDirPages {
				n = maxDirPages
			}
			grown := make([]int32, n)
			copy(grown, s.dir)
			s.dir = grown
		}
		h := s.dir[pi]
		if h == 0 {
			s.pages = append(s.pages, s.newPage())
			h = int32(len(s.pages))
			s.dir[pi] = h
		}
		p := s.pages[h-1]
		if p.owner != s.owner {
			p = s.copyPage(p)
			s.pages[h-1] = p
		}
		s.lastPi, s.lastP = pi, p
		return p, idx & pageMask
	}
	if s.over == nil {
		s.over = make(map[uint64]*page)
	}
	p := s.over[pi]
	if p == nil {
		p = s.newPage()
		s.over[pi] = p
	} else if p.owner != s.owner {
		p = s.copyPage(p)
		s.over[pi] = p
	}
	s.lastPi, s.lastP = pi, p
	return p, idx & pageMask
}

// copyPage makes a private, writable duplicate of a frozen page. The
// sideband array — reached through a pointer — is duplicated too:
// sharing it would let a child's sideband write reach the parent.
func (s *pagedStore) copyPage(p *page) *page {
	np := s.newPage()
	*np = *p
	if p.side != nil {
		np.side = new([pageBlocks]Sideband)
		*np.side = *p.side
	}
	np.owner = s.owner
	return np
}

// freeze marks every currently allocated page immutable-in-place by
// moving the store to a fresh owner epoch. O(1): pages keep their old
// tags and are copied lazily by slot() on first subsequent write.
func (s *pagedStore) freeze() {
	s.owner = nextStoreID()
}

// fork freezes the store and returns a child that shares every frozen
// page. Only the directory structures are copied eagerly (the int32
// handle directory, the noscan page-pointer slice, and the overflow
// map header); page payloads are shared until first write, when slot()
// duplicates the touched page on whichever side writes first.
// Parent and child are fully independent afterwards and each may be
// forked again.
func (s *pagedStore) fork() pagedStore {
	s.freeze()
	child := pagedStore{
		dir:   append([]int32(nil), s.dir...),
		pages: append([]*page(nil), s.pages...),
		count: s.count,
		owner: nextStoreID(),
	}
	if len(s.over) > 0 {
		child.over = make(map[uint64]*page, len(s.over))
		for pi, p := range s.over {
			child.over[pi] = p
		}
	}
	return child
}

// blockPtr returns a pointer to idx's stored content and whether the
// block is present. Absent blocks resolve to the shared zero block.
func (s *pagedStore) blockPtr(idx uint64) (*[BlockBytes]byte, bool) {
	p := s.pageAt(idx)
	if p == nil {
		return &zeroBlock, false
	}
	o := idx & pageMask
	if p.present[o>>6]&(1<<(o&63)) == 0 {
		return &zeroBlock, false
	}
	return &p.data[o], true
}

// has reports the presence bit without touching data.
func (s *pagedStore) has(idx uint64) bool {
	p := s.pageAt(idx)
	if p == nil {
		return false
	}
	o := idx & pageMask
	return p.present[o>>6]&(1<<(o&63)) != 0
}

// setPresent installs blk at idx (no wear accounting — callers that
// model media writes bump wear themselves).
func (s *pagedStore) setPresent(idx uint64, blk *[BlockBytes]byte) {
	p, o := s.slot(idx)
	if p.present[o>>6]&(1<<(o&63)) == 0 {
		p.present[o>>6] |= 1 << (o & 63)
		s.count++
	}
	p.data[o] = *blk
}

// erase clears the presence bit and zeroes the cell, preserving wear.
func (s *pagedStore) erase(idx uint64) {
	p, o := s.slot(idx)
	if p.present[o>>6]&(1<<(o&63)) != 0 {
		p.present[o>>6] &^= 1 << (o & 63)
		s.count--
	}
	p.data[o] = zeroBlock
	if p.side != nil {
		p.side[o] = Sideband{}
	}
}

// wearOf returns the media-write count of one block.
func (s *pagedStore) wearOf(idx uint64) uint64 {
	p := s.pageAt(idx)
	if p == nil {
		return 0
	}
	return p.wear[idx&pageMask]
}

// forEachPage visits every allocated page in ascending page-index
// order (directory first, then sorted overflow) — the deterministic
// iteration order the map-backed implementation obtained by sorting.
func (s *pagedStore) forEachPage(fn func(base uint64, p *page)) {
	for pi, h := range s.dir {
		if h != 0 {
			fn(uint64(pi)<<pageShift, s.pages[h-1])
		}
	}
	if len(s.over) > 0 {
		keys := make([]uint64, 0, len(s.over))
		for pi := range s.over {
			keys = append(keys, pi)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, pi := range keys {
			fn(pi<<pageShift, s.over[pi])
		}
	}
}

// reset drops every page (used by image loading, not by Crash: NVM
// content survives power loss).
func (s *pagedStore) reset() {
	*s = pagedStore{}
}

// --- paged update counters (exported) ----------------------------------------

// counterPage mirrors the block-page geometry for small per-block
// integer counters.
type counterPage [pageBlocks]int32

// Counters is a paged replacement for map[uint64]int keyed by block
// index: the memory controllers track per-counter-block update drift
// (the Osiris stop-loss rule) on the write hot path, and a Go map there
// costs a hash plus, under growth, an allocation per request. Counters
// shares the device's page machinery: dense noscan handle directory +
// fixed pages, zero allocations steady-state.
//
// The zero Counters is ready to use.
type Counters struct {
	dir   []int32 // 1-based handles (noscan)
	pages []*counterPage
	over  map[uint64]*counterPage
}

func (c *Counters) pageAt(idx uint64) *counterPage {
	pi := idx >> pageShift
	if pi < uint64(len(c.dir)) {
		if h := c.dir[pi]; h != 0 {
			return c.pages[h-1]
		}
		return nil
	}
	if pi >= maxDirPages {
		return c.over[pi]
	}
	return nil
}

func (c *Counters) slot(idx uint64) *int32 {
	pi := idx >> pageShift
	if pi < maxDirPages {
		if pi >= uint64(len(c.dir)) {
			n := uint64(len(c.dir))*2 + 1
			if n <= pi {
				n = pi + 1
			}
			if n > maxDirPages {
				n = maxDirPages
			}
			grown := make([]int32, n)
			copy(grown, c.dir)
			c.dir = grown
		}
		h := c.dir[pi]
		if h == 0 {
			c.pages = append(c.pages, &counterPage{})
			h = int32(len(c.pages))
			c.dir[pi] = h
		}
		return &c.pages[h-1][idx&pageMask]
	}
	if c.over == nil {
		c.over = make(map[uint64]*counterPage)
	}
	p := c.over[pi]
	if p == nil {
		p = &counterPage{}
		c.over[pi] = p
	}
	return &p[idx&pageMask]
}

// Get returns the counter at idx (0 if never set).
func (c *Counters) Get(idx uint64) int {
	p := c.pageAt(idx)
	if p == nil {
		return 0
	}
	return int(p[idx&pageMask])
}

// Inc increments the counter at idx and returns the new value.
func (c *Counters) Inc(idx uint64) int {
	s := c.slot(idx)
	*s++
	return int(*s)
}

// Set stores v at idx. Set(idx, 0) is the paged analogue of map delete.
func (c *Counters) Set(idx uint64, v int) {
	// Avoid allocating a page just to record the default value.
	if v == 0 && c.pageAt(idx) == nil {
		return
	}
	*c.slot(idx) = int32(v)
}

// Reserve pre-sizes the directory for indices [0, n): like
// Device.Reserve, it removes geometric regrowth from the hot path.
func (c *Counters) Reserve(n uint64) {
	pages := (n + pageMask) >> pageShift
	if pages > maxDirPages {
		pages = maxDirPages
	}
	if pages > uint64(len(c.dir)) {
		grown := make([]int32, pages)
		copy(grown, c.dir)
		c.dir = grown
	}
}

// Reset drops every counter (the analogue of clearing the map). The
// directory reservation is kept.
func (c *Counters) Reset() {
	for i := range c.dir {
		c.dir[i] = 0
	}
	c.pages = c.pages[:0]
	c.over = nil
}

// Clone returns an exact, fully independent deep copy. Counter pages
// are small (64 B) and mutated on nearly every write request, so a COW
// scheme would copy almost everything almost immediately; an eager
// value clone is simpler and no slower.
func (c *Counters) Clone() Counters {
	n := Counters{
		dir:   append([]int32(nil), c.dir...),
		pages: make([]*counterPage, len(c.pages)),
	}
	for i, p := range c.pages {
		np := new(counterPage)
		*np = *p
		n.pages[i] = np
	}
	if len(c.over) > 0 {
		n.over = make(map[uint64]*counterPage, len(c.over))
		for pi, p := range c.over {
			np := new(counterPage)
			*np = *p
			n.over[pi] = np
		}
	}
	return n
}
