package nvm

import "testing"

// TestForkedDeviceSteadyStateZeroAllocs pins the COW fork contract
// from the storage layer's side: after the one-time directory copy in
// Fork and the first-write page copies, a forked device's read and
// write paths are allocation-free — identical to a never-forked
// device. A regression here (e.g. a page copy per write instead of per
// first write, or an owner-tag miscompare) would silently turn every
// forked crash trial into a heap churn loop.
func TestForkedDeviceSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented accesses; counts are not meaningful")
	}
	d := NewDevice(DefaultTiming())
	const blocks = 4096
	var blk [BlockBytes]byte
	for i := uint64(0); i < blocks; i++ {
		blk[0] = byte(i)
		d.WriteRaw(RegionData, i, blk)
	}

	child := d.Fork()

	// Settle the child's COW state: first write to each shared page
	// copies it into the child; every later write hits the copy.
	for i := uint64(0); i < blocks; i++ {
		blk[0] = byte(i + 1)
		child.WriteRaw(RegionData, i, blk)
	}

	writes := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			child.WriteRaw(RegionData, i*61%blocks, blk)
		}
	})
	if writes != 0 {
		t.Errorf("forked device steady-state writes: %.2f allocs per 64-write batch, want 0", writes)
	}

	reads := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			if _, ok := child.ReadPtr(RegionData, i*67%blocks); !ok {
				t.Fatal("missing block")
			}
		}
	})
	if reads != 0 {
		t.Errorf("forked device reads: %.2f allocs per 64-read batch, want 0", reads)
	}

	// Reads of pages still shared with the parent must not COW-copy:
	// fork again and only read — zero allocations even on first touch.
	child2 := d.Fork()
	sharedReads := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			if _, ok := child2.ReadPtr(RegionData, i*71%blocks); !ok {
				t.Fatal("missing block")
			}
		}
	})
	if sharedReads != 0 {
		t.Errorf("reads of parent-shared pages: %.2f allocs per 64-read batch, want 0 (reads must never trigger COW)", sharedReads)
	}
}
