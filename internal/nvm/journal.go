package nvm

// Epoch journal: a small persistent redo/undo log inside the
// controller's persistence domain (on-chip SRAM next to the persistent
// register file, per the integrity-tree write-coalescing literature —
// Freij et al., "Streamlining Integrity Tree Updates").
//
// When the memory controller coalesces integrity-tree updates over an
// epoch, the on-chip root register is only refreshed at epoch close:
// between closes the register covers the *epoch-start* state, while
// the metadata blocks touched this epoch have moved on. The journal is
// what keeps that window recoverable: for every metadata block the
// epoch has touched, it holds the block's epoch-start content (Old,
// the value the stale root register still authenticates) and its
// latest content (New). After a crash, recovery authenticates the
// untouched state against the stale register using Old, then replays
// New and installs the fresh root — see the two-pass recovery in
// internal/memctrl.
//
// Journal updates ride inside two-stage commit groups as PendingWrite
// entries with a JOp set, so a journal note becomes durable atomically
// with the data write it describes (DONE_BIT REDO replays it if the
// drain was interrupted; replay is idempotent). Like register writes,
// journal operations are on-chip: they consume no WPQ slot, no media
// bandwidth, and survive every crash model — including the relaxed
// partial-drain and torn-block models, which only mutate media blocks
// behind the WPQ.

// JournalOp discriminates the epoch-journal operations a PendingWrite
// can carry.
type JournalOp uint8

const (
	// JournalNone marks an ordinary NVM/register write.
	JournalNone JournalOp = iota
	// JournalNote upserts an entry: first note for a key records
	// {Key, JOld, Block}; later notes for the same key refresh only the
	// New content (the epoch-start Old is sticky until the journal is
	// cleared). Replaying a note is idempotent.
	JournalNote
	// JournalClear empties the journal (epoch close: the refreshed root
	// register now covers everything, so the window is gone).
	JournalClear
)

// JournalEntry is one journaled metadata block. Key is an opaque
// controller-chosen identifier (the controllers use counter-page and
// shadow-table block indices; the device never interprets it).
type JournalEntry struct {
	Key uint64
	Old [BlockBytes]byte // content at first epoch touch (covered by the stale root register)
	New [BlockBytes]byte // latest content (replayed by recovery)
}

// applyJournal is the functional effect of a journal-op PendingWrite
// reaching the persistence domain. Idempotent, as RedoCommitted needs.
func (d *Device) applyJournal(w *PendingWrite) {
	switch w.JOp {
	case JournalNote:
		if d.journalIdx == nil {
			d.journalIdx = make(map[uint64]int)
		}
		if i, ok := d.journalIdx[w.JKey]; ok {
			d.journal[i].New = w.Block
			return
		}
		d.journalIdx[w.JKey] = len(d.journal)
		d.journal = append(d.journal, JournalEntry{Key: w.JKey, Old: w.JOld, New: w.Block})
	case JournalClear:
		d.journal = d.journal[:0]
		for k := range d.journalIdx {
			delete(d.journalIdx, k)
		}
	}
}

// JournalLen returns the number of live journal entries.
func (d *Device) JournalLen() int { return len(d.journal) }

// JournalLookup returns the entry for a key, if journaled.
func (d *Device) JournalLookup(key uint64) (JournalEntry, bool) {
	if i, ok := d.journalIdx[key]; ok {
		return d.journal[i], true
	}
	return JournalEntry{}, false
}

// JournalEntries returns a copy of the live entries in note order
// (note order is deterministic for a deterministic workload, so
// recovery iteration over it is reproducible).
func (d *Device) JournalEntries() []JournalEntry {
	return append([]JournalEntry(nil), d.journal...)
}

// JournalReset empties the journal outside a commit group. Recovery
// calls it after replaying New content and installing the fresh root;
// the in-band path is a staged JournalClear op.
func (d *Device) JournalReset() {
	d.journal = d.journal[:0]
	for k := range d.journalIdx {
		delete(d.journalIdx, k)
	}
}

// cloneJournal copies journal state into a forked device.
func (d *Device) cloneJournal(n *Device) {
	n.journal = append([]JournalEntry(nil), d.journal...)
	if d.journalIdx != nil {
		n.journalIdx = make(map[uint64]int, len(d.journalIdx))
		for k, v := range d.journalIdx {
			n.journalIdx[k] = v
		}
	}
}
