// Package recmodel implements the paper's analytic recovery-time
// models. Figure 5 and Figure 12 are computed, not simulated, in the
// paper itself (footnote 1: "we calculate recovery time by counting the
// number of hash values and nodes [that] need to be fetched and updated
// from memory and assume each would cost 100ns"); this package encodes
// that accounting. The executed recovery paths in internal/memctrl
// report the same op categories at test scale, validating the counts.
package recmodel

import "fmt"

// OpNS is the modeled cost of one recovery operation: fetching a block
// from memory bundled with its hash calculation and/or decryption.
const OpNS = 100

// BlockBytes and PageBytes mirror the system geometry.
const (
	BlockBytes = 64
	PageBytes  = 4096
	Arity      = 8
)

// treeNodes returns the total node count of an 8-ary tree over `leaves`
// leaf blocks (matching merkle.Geometry).
func treeNodes(leaves uint64) uint64 {
	var total uint64
	n := (leaves + Arity - 1) / Arity
	for {
		total += n
		if n == 1 {
			return total
		}
		n = (n + Arity - 1) / Arity
	}
}

// treeLevels returns the number of levels of that tree.
func treeLevels(leaves uint64) int {
	levels := 0
	n := (leaves + Arity - 1) / Arity
	for {
		levels++
		if n == 1 {
			return levels
		}
		n = (n + Arity - 1) / Arity
	}
}

// OsirisFullOps returns the operation count of a whole-memory Osiris
// recovery (Figure 5): every data block is fetched and its counter
// verified by decrypt+ECC trials (avgTrials ≈ 1 when most counters are
// already persisted), then the entire Merkle tree is reconstructed from
// the counter blocks (one hash per child plus the node update).
func OsirisFullOps(memBytes uint64, avgTrials float64) uint64 {
	dataBlocks := memBytes / BlockBytes
	pages := memBytes / PageBytes
	counterOps := float64(dataBlocks) * (1 + avgTrials) // fetch + trials
	// Tree build: each node hashes its children (total children ≈ pages
	// + internal nodes) and is written once.
	nodes := treeNodes(pages)
	buildOps := float64(pages) + 2*float64(nodes)
	return uint64(counterOps + buildOps)
}

// OsirisFullNS prices OsirisFullOps in nanoseconds.
func OsirisFullNS(memBytes uint64, avgTrials float64) uint64 {
	return OsirisFullOps(memBytes, avgTrials) * OpNS
}

// AGITOps returns the operation count of an AGIT recovery (Figure 12,
// §6.3.1): every SCT entry names a counter block whose 64 split
// counters each require one encrypted data block fetch (bundled with
// its decrypt+ECC check); every SMT entry names a tree node rebuilt
// from its 8 children plus the node update.
func AGITOps(counterCacheBytes, treeCacheBytes uint64) uint64 {
	sctEntries := counterCacheBytes / BlockBytes
	smtEntries := treeCacheBytes / BlockBytes
	counterOps := sctEntries * 64 // one data-block fetch+check per counter
	nodeOps := smtEntries * (Arity + 1)
	return counterOps + nodeOps
}

// AGITNS prices AGITOps in nanoseconds.
func AGITNS(counterCacheBytes, treeCacheBytes uint64) uint64 {
	return AGITOps(counterCacheBytes, treeCacheBytes) * OpNS
}

// ASITOps returns the operation count of an ASIT recovery (§6.3.1):
// per Shadow Table entry, one ST block read, one stale node read, and
// one parent fetch for the MAC check; SGX blocks hold only 8 counters
// and no ECC trials are needed.
func ASITOps(metaCacheBytes uint64) uint64 {
	stEntries := metaCacheBytes / BlockBytes
	return stEntries * 3
}

// ASITNS prices ASITOps in nanoseconds.
func ASITNS(metaCacheBytes uint64) uint64 {
	return ASITOps(metaCacheBytes) * OpNS
}

// TriadOps returns the operation count of a Triad-NVM-style recovery
// that persisted counters plus the first `levels` tree levels at run
// time: reconstruction starts at `levels` and works upward, reading
// each node's children and writing the node. No data blocks are read
// and no ECC trials run (counters are strictly persisted), so even
// levels=0 is far below a full Osiris recovery — but the cost is still
// O(memory/8^levels), unlike Anubis's cache-bound recovery.
func TriadOps(memBytes uint64, levels int) uint64 {
	pages := memBytes / PageBytes
	var ops uint64
	n := pages
	level := 0
	for {
		parents := (n + Arity - 1) / Arity
		if level >= levels {
			// Read n children + write `parents` nodes.
			ops += n + parents
		}
		if parents == 1 {
			if level < levels {
				ops++ // at minimum the root is re-hashed for the register check
			}
			return ops
		}
		n = parents
		level++
	}
}

// TriadNS prices TriadOps in nanoseconds.
func TriadNS(memBytes uint64, levels int) uint64 {
	return TriadOps(memBytes, levels) * OpNS
}

// StrictOps is zero: strict persistence needs no reconstruction.
func StrictOps() uint64 { return 0 }

// Seconds renders a nanosecond count in seconds.
func Seconds(ns uint64) float64 { return float64(ns) / 1e9 }

// Speedup returns how many times faster `fast` is than `slow`.
func Speedup(slowNS, fastNS uint64) float64 {
	if fastNS == 0 {
		return 0
	}
	return float64(slowNS) / float64(fastNS)
}

// FormatDuration renders nanoseconds human-readably (the paper quotes
// both "0.03s" and "7.8 hours").
func FormatDuration(ns uint64) string {
	s := Seconds(ns)
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1f h", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1f min", s/60)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.0f µs", s*1e6)
	}
}

// Levels16GB is a sanity anchor used in docs/tests: the tree depth for
// the paper's 16 GB configuration.
func Levels16GB() int { return treeLevels((16 << 30) / PageBytes) }
