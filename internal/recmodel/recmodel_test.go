package recmodel

import (
	"strings"
	"testing"
)

const (
	kb = uint64(1024)
	mb = 1024 * kb
	gb = 1024 * mb
	tb = 1024 * gb
)

func TestOsiris8TBMatchesPaper(t *testing.T) {
	// Paper §6.3.1/Figure 5: "the recovery time for 8TB memory is
	// ≈28193 seconds (≈7.8 Hours)".
	ns := OsirisFullNS(8*tb, 1.05)
	sec := Seconds(ns)
	if sec < 25000 || sec > 31000 {
		t.Fatalf("8TB Osiris recovery = %.0f s, paper reports ≈28193 s", sec)
	}
	hours := sec / 3600
	if hours < 7.0 || hours > 8.6 {
		t.Fatalf("8TB Osiris recovery = %.2f h, paper reports ≈7.8 h", hours)
	}
}

func TestOsirisScalesLinearly(t *testing.T) {
	// Figure 5's point: recovery is O(memory).
	a := OsirisFullNS(1*tb, 1.05)
	b := OsirisFullNS(2*tb, 1.05)
	ratio := float64(b) / float64(a)
	if ratio < 1.95 || ratio > 2.05 {
		t.Fatalf("doubling memory scaled recovery by %.3f, want ~2", ratio)
	}
}

func TestAGIT256KBMatchesPaper(t *testing.T) {
	// Abstract/§6.3.1: Anubis recovers in ≈0.03 s with Table 1's
	// 256 KB + 256 KB caches.
	ns := AGITNS(256*kb, 256*kb)
	sec := Seconds(ns)
	if sec < 0.025 || sec > 0.035 {
		t.Fatalf("AGIT 256KB recovery = %.4f s, paper reports ≈0.03 s", sec)
	}
}

func TestAGIT4MBMatchesPaper(t *testing.T) {
	// §6.3.1: "recovery time for extremely large cache sizes (4MB) is
	// only ≈0.48s in AGIT".
	ns := AGITNS(4*mb, 4*mb)
	sec := Seconds(ns)
	if sec < 0.42 || sec > 0.53 {
		t.Fatalf("AGIT 4MB recovery = %.4f s, paper reports ≈0.48 s", sec)
	}
}

func TestAGITIndependentOfMemorySize(t *testing.T) {
	// The headline property: Anubis recovery is a function of cache
	// size only. (The model takes no memory parameter at all; this test
	// documents the contrast with Osiris.)
	agit := AGITNS(256*kb, 256*kb)
	osiris1 := OsirisFullNS(1*tb, 1.05)
	osiris8 := OsirisFullNS(8*tb, 1.05)
	if osiris8 <= osiris1 {
		t.Fatal("Osiris must scale with memory")
	}
	if agit >= osiris1/1000 {
		t.Fatalf("AGIT (%d ns) not orders of magnitude below Osiris at 1TB (%d ns)", agit, osiris1)
	}
}

func TestSpeedupHeadline(t *testing.T) {
	// Abstract: "speeds up recovery time by almost 10^7 times (from 8
	// hours to only 0.03 seconds)".
	s := Speedup(OsirisFullNS(8*tb, 1.05), AGITNS(256*kb, 256*kb))
	if s < 5e5 || s > 5e7 {
		t.Fatalf("speedup = %.2e, paper claims ~10^6-10^7", s)
	}
}

func TestASITBelowAGIT(t *testing.T) {
	// Figure 12: ASIT recovery is below AGIT at every point.
	for _, c := range []uint64{256 * kb, 512 * kb, 1 * mb, 2 * mb, 4 * mb} {
		agit := AGITNS(c, c)
		asit := ASITNS(2 * c) // combined cache = counter + tree capacity
		if asit >= agit {
			t.Fatalf("cache %dKB: ASIT (%d) not below AGIT (%d)", c/1024, asit, agit)
		}
	}
}

func TestRecoveryLinearInCacheSize(t *testing.T) {
	a := AGITNS(256*kb, 256*kb)
	b := AGITNS(512*kb, 512*kb)
	if float64(b)/float64(a) < 1.9 || float64(b)/float64(a) > 2.1 {
		t.Fatalf("AGIT not linear in cache size: %d vs %d", a, b)
	}
	x := ASITNS(512 * kb)
	y := ASITNS(1 * mb)
	if y != 2*x {
		t.Fatalf("ASIT not linear in cache size: %d vs %d", x, y)
	}
}

func TestTreeHelpers(t *testing.T) {
	if n := treeNodes(64); n != 9 {
		t.Fatalf("treeNodes(64) = %d, want 9", n)
	}
	if l := treeLevels(64); l != 2 {
		t.Fatalf("treeLevels(64) = %d, want 2", l)
	}
	if Levels16GB() != 8 {
		t.Fatalf("16GB levels = %d, want 8", Levels16GB())
	}
}

func TestStrictOpsZero(t *testing.T) {
	if StrictOps() != 0 {
		t.Fatal("strict persistence needs no recovery work")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[uint64]string{
		28193 * 1e9: "h",
		90 * 1e9:    "min",
		2 * 1e9:     "s",
		30 * 1e6:    "ms",
		500:         "µs",
	}
	for ns, unit := range cases {
		got := FormatDuration(ns)
		if !strings.Contains(got, unit) {
			t.Fatalf("FormatDuration(%d) = %q, want unit %q", ns, got, unit)
		}
	}
}

func TestSpeedupEdge(t *testing.T) {
	cases := []struct {
		name       string
		slow, fast uint64
		want       float64
	}{
		{"zero denominator", 100, 0, 0},
		{"both zero", 0, 0, 0},
		{"zero numerator", 0, 5, 0},
		{"equal values", 7, 7, 1},
		{"equal large values", 1 << 40, 1 << 40, 1},
		{"simple ratio", 300, 100, 3},
		{"sub-unity (slowdown)", 100, 400, 0.25},
	}
	for _, c := range cases {
		if got := Speedup(c.slow, c.fast); got != c.want {
			t.Errorf("%s: Speedup(%d, %d) = %v, want %v", c.name, c.slow, c.fast, got, c.want)
		}
	}
}

// TestFormatDurationBoundaries pins the exact rendering at every unit
// boundary: values just below and at each threshold must pick the
// expected unit and precision.
func TestFormatDurationBoundaries(t *testing.T) {
	cases := []struct {
		name string
		ns   uint64
		want string
	}{
		{"one ns", 1, "0 µs"},
		{"sub-microsecond", 500, "0 µs"},
		{"one µs", 1_000, "1 µs"},
		{"just below ms", 999_000, "999 µs"},
		{"one ms", 1_000_000, "1.00 ms"},
		{"just below s", 999_000_000, "999.00 ms"},
		{"one second", 1_000_000_000, "1.00 s"},
		{"paper headline 0.03s", 30_000_000, "30.00 ms"},
		{"just below a minute", 59_500_000_000, "59.50 s"},
		{"one minute", 60_000_000_000, "1.0 min"},
		{"just below an hour", 3_599_000_000_000, "60.0 min"},
		{"one hour", 3_600_000_000_000, "1.0 h"},
		{"paper headline 7.8h", 28_193_000_000_000, "7.8 h"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.ns); got != c.want {
			t.Errorf("%s: FormatDuration(%d) = %q, want %q", c.name, c.ns, got, c.want)
		}
	}
}

func TestTriadOpsDecreaseWithLevels(t *testing.T) {
	mem := uint64(8) * tb
	prev := TriadOps(mem, 0)
	for levels := 1; levels <= 6; levels++ {
		cur := TriadOps(mem, levels)
		if cur >= prev {
			t.Fatalf("levels %d: ops %d not below %d", levels, cur, prev)
		}
		// Each persisted level removes roughly an 8x slice of the work.
		prev = cur
	}
}

func TestTriadBetweenOsirisAndAnubis(t *testing.T) {
	mem := uint64(8) * tb
	osiris := OsirisFullNS(mem, 1.05)
	triad0 := TriadNS(mem, 0)
	agit := AGITNS(256*kb, 256*kb)
	if triad0 >= osiris {
		t.Fatalf("triad level-0 (%d) not below Osiris (%d): no data reads should be needed", triad0, osiris)
	}
	if TriadNS(mem, 3) <= agit {
		t.Fatalf("triad level-3 at 8TB should still exceed Anubis's cache-bound recovery")
	}
	// Triad stays memory-bound: doubling memory doubles work.
	if r := float64(TriadNS(2*mem, 2)) / float64(TriadNS(mem, 2)); r < 1.9 || r > 2.1 {
		t.Fatalf("triad not linear in memory: ratio %.2f", r)
	}
}

func TestTriadFullyPersistedIsConstant(t *testing.T) {
	// Persisting every level leaves only the root re-hash.
	mem := uint64(1) * gb
	if ops := TriadOps(mem, 64); ops != 1 {
		t.Fatalf("fully persisted triad ops = %d, want 1", ops)
	}
}
