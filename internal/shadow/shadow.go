// Package shadow implements the persistent shadow-table formats of
// Anubis (Figures 6 and 9 of the paper).
//
// A shadow table mirrors the data array of an on-chip metadata cache:
// entry i describes the block currently held in cache slot i. Because a
// block's slot is fixed for its whole cache residency and slots change
// only on misses (AGIT) or one entry is rewritten per write (ASIT), the
// NVM write traffic of keeping the shadow table current is small.
//
//   - AGIT (Figure 9a): the Shadow Counter Table (SCT) and Shadow
//     Merkle-tree Table (SMT) store only *addresses* — eight 8-byte
//     entries per 64-byte NVM block. After a crash they tell the
//     recovery code which blocks may have lost updates.
//   - ASIT (Figure 9b): the combined Shadow Table (ST) stores, per slot,
//     the tracked block's address, the 56-bit MAC over its updated
//     counters, and the 49-bit LSBs of its eight counters — enough to
//     reconstruct the exact pre-crash cache content when spliced onto
//     the stale in-memory node.
//
// The package is a pure codec plus an in-controller mirror; device I/O
// stays in the memory controller.
package shadow

import "encoding/binary"

// BlockBytes is the NVM block size shadow tables are written in.
const BlockBytes = 64

// AddrEntriesPerBlock is the number of AGIT address entries per block.
const AddrEntriesPerBlock = BlockBytes / 8

// Tracked reports one live shadow entry during recovery.
type Tracked struct {
	Slot int
	Key  uint64
}

// --- AGIT address tables (SCT / SMT) ----------------------------------------

// AddrTable is the controller-side mirror of an SCT or SMT: one address
// entry per cache slot. Entries are stored in NVM as key+1 so that zero
// means "slot never used".
type AddrTable struct {
	entries []uint64 // key+1; 0 = empty
}

// NewAddrTable creates an empty mirror for a cache with numSlots lines.
func NewAddrTable(numSlots int) *AddrTable {
	if numSlots <= 0 {
		panic("shadow: table needs at least one slot")
	}
	return &AddrTable{entries: make([]uint64, numSlots)}
}

// NumSlots returns the number of tracked cache slots.
func (t *AddrTable) NumSlots() int { return len(t.entries) }

// NumBlocks returns the number of 64-byte NVM blocks backing the table.
func (t *AddrTable) NumBlocks() uint64 {
	return uint64(len(t.entries)+AddrEntriesPerBlock-1) / AddrEntriesPerBlock
}

// Set records that cache slot `slot` now holds block `key` and returns
// the NVM block (index and refreshed content) that must be persisted.
func (t *AddrTable) Set(slot int, key uint64) (blockIdx uint64, block [BlockBytes]byte) {
	t.entries[slot] = key + 1
	return t.blockOf(slot)
}

// Clear empties a slot (e.g. after its block is cleanly written back,
// though AGIT never needs to clear: stale entries only cost recovery
// work, not correctness). It returns the NVM block to persist.
func (t *AddrTable) Clear(slot int) (blockIdx uint64, block [BlockBytes]byte) {
	t.entries[slot] = 0
	return t.blockOf(slot)
}

// Get returns the tracked key of a slot.
func (t *AddrTable) Get(slot int) (key uint64, ok bool) {
	e := t.entries[slot]
	if e == 0 {
		return 0, false
	}
	return e - 1, true
}

func (t *AddrTable) blockOf(slot int) (uint64, [BlockBytes]byte) {
	blockIdx := uint64(slot / AddrEntriesPerBlock)
	var b [BlockBytes]byte
	base := int(blockIdx) * AddrEntriesPerBlock
	for i := 0; i < AddrEntriesPerBlock; i++ {
		if base+i < len(t.entries) {
			binary.LittleEndian.PutUint64(b[i*8:], t.entries[base+i])
		}
	}
	return blockIdx, b
}

// Clone returns an independent copy of the mirror (used when a warm
// controller is forked for crash/recovery trials).
func (t *AddrTable) Clone() *AddrTable {
	return &AddrTable{entries: append([]uint64(nil), t.entries...)}
}

// RestoreAddrTable rebuilds a mirror from NVM after a crash. read must
// return block i of the table's region.
func RestoreAddrTable(numSlots int, read func(blockIdx uint64) [BlockBytes]byte) *AddrTable {
	t := NewAddrTable(numSlots)
	for bi := uint64(0); bi < t.NumBlocks(); bi++ {
		b := read(bi)
		base := int(bi) * AddrEntriesPerBlock
		for i := 0; i < AddrEntriesPerBlock && base+i < numSlots; i++ {
			t.entries[base+i] = binary.LittleEndian.Uint64(b[i*8:])
		}
	}
	return t
}

// Live returns every populated entry in slot order: the set of blocks
// whose updates may have been lost in the crash.
func (t *AddrTable) Live() []Tracked {
	var out []Tracked
	for slot, e := range t.entries {
		if e != 0 {
			out = append(out, Tracked{Slot: slot, Key: e - 1})
		}
	}
	return out
}

// --- ASIT shadow table (ST) ---------------------------------------------------

// STCounters is the number of counter LSB fields per ST entry, matching
// the 8 counters of an SGX-style block.
const STCounters = 8

// STLSBBits is the width of each preserved counter LSB field.
const STLSBBits = 49

// STLSBMask masks a counter to the shadow-preserved bits.
const STLSBMask = 1<<STLSBBits - 1

// STMACMask masks the 56-bit MAC field.
const STMACMask = 1<<56 - 1

// STEntry is one ASIT shadow-table entry: an exact, integrity-relevant
// snapshot of one modified metadata cache line (Figure 9b). One entry
// occupies exactly one 64-byte NVM block:
//
//	bytes 0..7   tracked block key + 1 (0 = slot empty)
//	bytes 8..14  56-bit MAC over the updated counters
//	bits 120..511  eight 49-bit counter LSBs
type STEntry struct {
	Valid bool
	Key   uint64
	MAC   uint64 // 56-bit
	LSBs  [STCounters]uint64
}

// Pack serializes the entry to its NVM block.
func (e STEntry) Pack() [BlockBytes]byte {
	var b [BlockBytes]byte
	if !e.Valid {
		return b
	}
	binary.LittleEndian.PutUint64(b[0:8], e.Key+1)
	for i := 0; i < 7; i++ {
		b[8+i] = byte(e.MAC >> uint(8*i))
	}
	off := 120
	for i := 0; i < STCounters; i++ {
		putBits(b[:], off, STLSBBits, e.LSBs[i]&STLSBMask)
		off += STLSBBits
	}
	return b
}

// UnpackSTEntry parses an ST block.
func UnpackSTEntry(b [BlockBytes]byte) STEntry {
	var e STEntry
	raw := binary.LittleEndian.Uint64(b[0:8])
	if raw == 0 {
		return e
	}
	e.Valid = true
	e.Key = raw - 1
	for i := 0; i < 7; i++ {
		e.MAC |= uint64(b[8+i]) << uint(8*i)
	}
	off := 120
	for i := 0; i < STCounters; i++ {
		e.LSBs[i] = getBits(b[:], off, STLSBBits)
		off += STLSBBits
	}
	return e
}

// STTable is the controller-side mirror of the ASIT Shadow Table: one
// STEntry per combined-metadata-cache slot, one NVM block per entry.
type STTable struct {
	entries []STEntry
}

// NewSTTable creates an empty mirror.
func NewSTTable(numSlots int) *STTable {
	if numSlots <= 0 {
		panic("shadow: table needs at least one slot")
	}
	return &STTable{entries: make([]STEntry, numSlots)}
}

// NumSlots returns the number of tracked cache slots (= NVM blocks).
func (t *STTable) NumSlots() int { return len(t.entries) }

// Set records a snapshot for a slot and returns the NVM block to persist
// (block index equals the slot).
func (t *STTable) Set(slot int, e STEntry) (blockIdx uint64, block [BlockBytes]byte) {
	e.Valid = true
	t.entries[slot] = e
	return uint64(slot), e.Pack()
}

// Clear invalidates a slot (on clean writeback of the tracked block) and
// returns the NVM block to persist.
func (t *STTable) Clear(slot int) (blockIdx uint64, block [BlockBytes]byte) {
	t.entries[slot] = STEntry{}
	return uint64(slot), [BlockBytes]byte{}
}

// Get returns the snapshot tracked in a slot.
func (t *STTable) Get(slot int) (STEntry, bool) {
	e := t.entries[slot]
	return e, e.Valid
}

// Block returns the current NVM image of one table block (= slot).
func (t *STTable) Block(slot int) [BlockBytes]byte {
	return t.entries[slot].Pack()
}

// Clone returns an independent copy of the mirror (used when a warm
// controller is forked for crash/recovery trials).
func (t *STTable) Clone() *STTable {
	return &STTable{entries: append([]STEntry(nil), t.entries...)}
}

// RestoreSTTable rebuilds the mirror from NVM after a crash.
func RestoreSTTable(numSlots int, read func(blockIdx uint64) [BlockBytes]byte) *STTable {
	t := NewSTTable(numSlots)
	for i := 0; i < numSlots; i++ {
		t.entries[i] = UnpackSTEntry(read(uint64(i)))
	}
	return t
}

// Live returns every valid entry in slot order.
func (t *STTable) Live() []Tracked {
	var out []Tracked
	for slot, e := range t.entries {
		if e.Valid {
			out = append(out, Tracked{Slot: slot, Key: e.Key})
		}
	}
	return out
}

// --- bit helpers -------------------------------------------------------------

// putBits writes the low `width` (≤ 57) bits of v at bit offset off as
// one masked 64-bit read-modify-write instead of a branch per bit: the
// ST entry codec packs eight 49-bit fields per block and sits on
// ASIT's per-write hot path.
func putBits(buf []byte, off, width int, v uint64) {
	i, shift := off>>3, uint(off&7)
	mask := uint64(1)<<uint(width) - 1
	v &= mask
	if i+8 <= len(buf) {
		w := binary.LittleEndian.Uint64(buf[i:])
		binary.LittleEndian.PutUint64(buf[i:], w&^(mask<<shift)|v<<shift)
		return
	}
	var w uint64
	n := len(buf) - i
	for j := 0; j < n; j++ {
		w |= uint64(buf[i+j]) << uint(8*j)
	}
	w = w&^(mask<<shift) | v<<shift
	for j := 0; j < n; j++ {
		buf[i+j] = byte(w >> uint(8*j))
	}
}

// getBits reads `width` (≤ 57) bits at bit offset off with one word
// load; see putBits.
func getBits(buf []byte, off, width int) uint64 {
	i, shift := off>>3, uint(off&7)
	var w uint64
	if i+8 <= len(buf) {
		w = binary.LittleEndian.Uint64(buf[i:])
	} else {
		for j := i; j < len(buf); j++ {
			w |= uint64(buf[j]) << uint(8*(j-i))
		}
	}
	return w >> shift & (uint64(1)<<uint(width) - 1)
}
