package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrTableSetGet(t *testing.T) {
	tab := NewAddrTable(32)
	if _, ok := tab.Get(5); ok {
		t.Fatal("empty slot reported live")
	}
	tab.Set(5, 1234)
	k, ok := tab.Get(5)
	if !ok || k != 1234 {
		t.Fatalf("Get = (%d,%v), want (1234,true)", k, ok)
	}
	// Key zero must be representable (distinct from empty).
	tab.Set(6, 0)
	k, ok = tab.Get(6)
	if !ok || k != 0 {
		t.Fatal("key 0 not representable")
	}
}

func TestAddrTableBlockMapping(t *testing.T) {
	tab := NewAddrTable(32)
	bi, _ := tab.Set(0, 1)
	if bi != 0 {
		t.Fatalf("slot 0 -> block %d, want 0", bi)
	}
	bi, _ = tab.Set(7, 1)
	if bi != 0 {
		t.Fatalf("slot 7 -> block %d, want 0", bi)
	}
	bi, _ = tab.Set(8, 1)
	if bi != 1 {
		t.Fatalf("slot 8 -> block %d, want 1", bi)
	}
	if tab.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", tab.NumBlocks())
	}
}

func TestAddrTableClear(t *testing.T) {
	tab := NewAddrTable(8)
	tab.Set(3, 99)
	tab.Clear(3)
	if _, ok := tab.Get(3); ok {
		t.Fatal("cleared slot still live")
	}
}

func TestAddrTableRestore(t *testing.T) {
	tab := NewAddrTable(20)
	store := map[uint64][BlockBytes]byte{}
	for slot, key := range map[int]uint64{0: 7, 9: 0, 19: 1 << 40} {
		bi, blk := tab.Set(slot, key)
		store[bi] = blk
	}
	got := RestoreAddrTable(20, func(bi uint64) [BlockBytes]byte { return store[bi] })
	live := got.Live()
	if len(live) != 3 {
		t.Fatalf("restored %d entries, want 3", len(live))
	}
	want := map[int]uint64{0: 7, 9: 0, 19: 1 << 40}
	for _, tr := range live {
		if want[tr.Slot] != tr.Key {
			t.Fatalf("slot %d restored key %d, want %d", tr.Slot, tr.Key, want[tr.Slot])
		}
	}
}

func TestAddrTableLiveOrdered(t *testing.T) {
	tab := NewAddrTable(16)
	for _, s := range []int{9, 2, 14} {
		tab.Set(s, uint64(s))
	}
	live := tab.Live()
	for i := 1; i < len(live); i++ {
		if live[i].Slot <= live[i-1].Slot {
			t.Fatal("Live not in slot order")
		}
	}
}

func TestAddrTablePanicsOnZeroSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAddrTable(0)
}

func TestSTEntryPackUnpackRoundTrip(t *testing.T) {
	f := func(key, mac uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := STEntry{Valid: true, Key: key &^ (1 << 63), MAC: mac & STMACMask}
		for i := range e.LSBs {
			e.LSBs[i] = rng.Uint64() & STLSBMask
		}
		return UnpackSTEntry(e.Pack()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSTEntryInvalidIsZeroBlock(t *testing.T) {
	var e STEntry
	if e.Pack() != ([BlockBytes]byte{}) {
		t.Fatal("invalid entry packs to nonzero block")
	}
	if UnpackSTEntry([BlockBytes]byte{}).Valid {
		t.Fatal("zero block parses as valid")
	}
}

func TestSTEntryExactFit(t *testing.T) {
	// 8 + 7 + 49 = 64 bytes: a saturated entry must fill the block with
	// no byte left over and no overflow panic.
	e := STEntry{Valid: true, Key: ^uint64(0) - 1, MAC: STMACMask}
	for i := range e.LSBs {
		e.LSBs[i] = STLSBMask
	}
	b := e.Pack()
	// Bits 120..511 all set: bytes 15..63 are 0xff.
	for i := 15; i < 64; i++ {
		if b[i] != 0xff {
			t.Fatalf("byte %d = %#x, want 0xff", i, b[i])
		}
	}
	if UnpackSTEntry(b) != e {
		t.Fatal("saturated entry does not round trip")
	}
}

func TestSTTableSetClearGet(t *testing.T) {
	tab := NewSTTable(8)
	e := STEntry{Key: 42, MAC: 0x1234}
	e.LSBs[3] = 77
	bi, blk := tab.Set(2, e)
	if bi != 2 {
		t.Fatalf("block idx = %d, want slot 2", bi)
	}
	got := UnpackSTEntry(blk)
	if !got.Valid || got.Key != 42 || got.LSBs[3] != 77 {
		t.Fatalf("packed entry wrong: %+v", got)
	}
	stored, ok := tab.Get(2)
	if !ok || stored.Key != 42 {
		t.Fatal("Get after Set failed")
	}
	_, blk = tab.Clear(2)
	if blk != ([BlockBytes]byte{}) {
		t.Fatal("Clear block not zero")
	}
	if _, ok := tab.Get(2); ok {
		t.Fatal("cleared slot still valid")
	}
}

func TestSTTableRestore(t *testing.T) {
	tab := NewSTTable(6)
	store := map[uint64][BlockBytes]byte{}
	e1 := STEntry{Key: 5, MAC: 9}
	e1.LSBs[0] = 1
	bi, blk := tab.Set(1, e1)
	store[bi] = blk
	e2 := STEntry{Key: 0, MAC: STMACMask}
	bi, blk = tab.Set(4, e2)
	store[bi] = blk

	got := RestoreSTTable(6, func(bi uint64) [BlockBytes]byte { return store[bi] })
	live := got.Live()
	if len(live) != 2 || live[0].Slot != 1 || live[1].Slot != 4 {
		t.Fatalf("restored live = %+v", live)
	}
	r1, _ := got.Get(1)
	if r1.MAC != 9 || r1.LSBs[0] != 1 {
		t.Fatalf("entry 1 = %+v", r1)
	}
	r2, _ := got.Get(4)
	if r2.Key != 0 || r2.MAC != STMACMask {
		t.Fatalf("entry 4 = %+v", r2)
	}
}

func TestSTTableBlockReflectsState(t *testing.T) {
	tab := NewSTTable(4)
	if tab.Block(0) != ([BlockBytes]byte{}) {
		t.Fatal("fresh block not zero")
	}
	tab.Set(0, STEntry{Key: 3})
	if UnpackSTEntry(tab.Block(0)).Key != 3 {
		t.Fatal("Block does not reflect Set")
	}
}

func TestSTTablePanicsOnZeroSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSTTable(0)
}

func TestSTMaskWidths(t *testing.T) {
	// LSB splice compatibility with the counter package: 49-bit fields.
	if STLSBBits != 49 || STLSBMask != 1<<49-1 {
		t.Fatal("ST LSB field width diverged from the paper's 49 bits")
	}
}

func BenchmarkSTEntryPack(b *testing.B) {
	e := STEntry{Valid: true, Key: 123, MAC: 456}
	for i := range e.LSBs {
		e.LSBs[i] = uint64(i) * 999983
	}
	for i := 0; i < b.N; i++ {
		_ = e.Pack()
	}
}

func BenchmarkAddrTableSet(b *testing.B) {
	tab := NewAddrTable(4096)
	for i := 0; i < b.N; i++ {
		tab.Set(i&4095, uint64(i))
	}
}
