package sim

import (
	"fmt"
	"reflect"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/trace"
)

// attrCells is the full figure matrix: every scheme of both controller
// families the sweeps exercise.
var attrCells = []struct {
	family Family
	scheme memctrl.Scheme
}{
	{FamilyBonsai, memctrl.SchemeWriteBack},
	{FamilyBonsai, memctrl.SchemeStrict},
	{FamilyBonsai, memctrl.SchemeOsiris},
	{FamilyBonsai, memctrl.SchemeAGITRead},
	{FamilyBonsai, memctrl.SchemeAGITPlus},
	{FamilyBonsai, memctrl.SchemeSelective},
	{FamilyBonsai, memctrl.SchemeTriad},
	{FamilySGX, memctrl.SchemeWriteBack},
	{FamilySGX, memctrl.SchemeStrict},
	{FamilySGX, memctrl.SchemeOsiris},
	{FamilySGX, memctrl.SchemeASIT},
}

// sumCheckProbe asserts, for every completed request, that the
// per-component attribution sums exactly to the request's latency.
type sumCheckProbe struct {
	t        *testing.T
	requests int
	events   int
}

func (p *sumCheckProbe) Request(op obs.EventKind, addr, issue, done uint64, attr *obs.Ledger) {
	p.requests++
	if attr == nil {
		p.t.Fatal("request probe received nil attribution")
	}
	if total := attr.Total(); total != done-issue {
		p.t.Fatalf("%v addr=%d: attribution sums to %d, latency is %d (%+v)",
			op, addr, total, done-issue, attr.Map())
	}
	if g := attr.Get(obs.CompCPUGap); g != 0 {
		p.t.Fatalf("cpu gap %d leaked into a request window", g)
	}
}

func (p *sumCheckProbe) Event(kind obs.EventKind, startNS, endNS, arg uint64) {
	p.events++
	if endNS < startNS {
		p.t.Fatalf("%v event with end %d < start %d", kind, endNS, startNS)
	}
}

// TestAttributionSumExact runs every profile × scheme cell — at every
// epoch-pipeline window size, since the coalesced close adds simulated
// time outside any request window — and checks the two invariant
// levels: per-request component sums equal request latency, and the
// whole-run ledger total equals the controller clock (ExecNS), i.e.
// not one simulated nanosecond is unattributed or double-counted.
func TestAttributionSumExact(t *testing.T) {
	profiles := trace.SPEC2006()
	if testing.Short() {
		profiles = profiles[:3]
	}
	const nReq = 1200
	// 0/1 are the legacy eager path; 8 and 32 arm the coalescing
	// pipeline, whose epoch closes (including the end-of-run flush) burn
	// controller time between requests that the ledger must still book.
	for _, epoch := range []int{0, 1, 8, 32} {
		t.Run(fmt.Sprintf("epoch=%d", epoch), func(t *testing.T) {
			for _, cell := range attrCells {
				for _, p := range profiles {
					cfg := memctrl.TestConfig(cell.scheme)
					cfg.EpochRequests = epoch
					ctrl, err := NewController(cell.family, cfg)
					if err != nil {
						t.Fatal(err)
					}
					probe := &sumCheckProbe{t: t}
					gen := trace.NewGenerator(p.Scaled(ctrl.NumBlocks()), 99)
					res, err := RunObserved(ctrl, gen, nReq, probe)
					if err != nil {
						t.Fatalf("%v/%v/%s: %v", cell.family, cell.scheme, p.Name, err)
					}
					if probe.requests != nReq {
						t.Fatalf("%v/%v/%s: probe saw %d requests, want %d",
							cell.family, cell.scheme, p.Name, probe.requests, nReq)
					}
					if got := res.Stats.Attribution.Total(); got != res.ExecNS {
						t.Fatalf("%v/%v/%s: run ledger sums to %d, ExecNS is %d (%+v)",
							cell.family, cell.scheme, p.Name, got, res.ExecNS, res.Stats.Attribution.Map())
					}
					if res.Stats.Attribution.Get(obs.CompCPUGap) == 0 {
						t.Fatalf("%v/%v/%s: no cpu gap attributed over %d requests",
							cell.family, cell.scheme, p.Name, nReq)
					}
				}
			}
		})
	}
}

// TestRunObservedTimingUnchanged checks the zero-interference guarantee:
// attaching a probe must not change a single simulated quantity.
func TestRunObservedTimingUnchanged(t *testing.T) {
	for _, cell := range attrCells[:4] {
		run := func(probe obs.Probe) Result {
			ctrl, err := NewController(cell.family, memctrl.TestConfig(cell.scheme))
			if err != nil {
				t.Fatal(err)
			}
			p, _ := trace.ByName("libquantum")
			gen := trace.NewGenerator(p.Scaled(ctrl.NumBlocks()), 99)
			res, err := RunObserved(ctrl, gen, 800, probe)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		plain := run(nil)
		traced := run(obs.NewTracer(4).Scope("cell"))
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("%v/%v: probe changed the simulation result", cell.family, cell.scheme)
		}
	}
}

// TestRecoveryAttributionLedgerSurvivesCrash checks the ledger behaves
// like the rest of the stats across crash/recovery: preserved by Crash,
// still sum-exact afterwards.
func TestRecoveryAttributionLedgerSurvivesCrash(t *testing.T) {
	ctrl, err := NewController(FamilyBonsai, memctrl.TestConfig(memctrl.SchemeAGITPlus))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := trace.ByName("libquantum")
	gen := trace.NewGenerator(p.Scaled(ctrl.NumBlocks()), 99)
	res, err := Run(ctrl, gen, 500)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Crash()
	if _, err := ctrl.Recover(); err != nil {
		t.Fatal(err)
	}
	after := ctrl.Stats().Attribution
	if after != res.Stats.Attribution {
		t.Fatalf("crash/recovery mutated the ledger: %v -> %v", res.Stats.Attribution, after)
	}
	if after.Total() != ctrl.Now() {
		t.Fatalf("post-recovery ledger %d != clock %d", after.Total(), ctrl.Now())
	}
}
