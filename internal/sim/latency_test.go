package sim

import (
	"strings"
	"testing"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestLatencyHistBasics(t *testing.T) {
	var h LatencyHist
	for _, v := range []uint64{0, 10, 100, 100, 100, 1000, 10000} {
		h.Add(v)
	}
	if h.Count != 7 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Max != 10000 {
		t.Fatalf("max = %d", h.Max)
	}
	p50 := h.Percentile(50)
	if p50 < 64 || p50 > 256 {
		t.Fatalf("p50 = %d, want in the ~100ns bucket", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 4096 {
		t.Fatalf("p99 = %d, want in the ~10µs bucket", p99)
	}
	if !strings.Contains(h.String(), "p95=") {
		t.Fatal("String missing percentile fields")
	}
}

func TestLatencyHistMonotonePercentiles(t *testing.T) {
	var h LatencyHist
	for i := uint64(1); i < 5000; i++ {
		h.Add(i)
	}
	if h.Percentile(50) > h.Percentile(95) || h.Percentile(95) > h.Percentile(99) {
		t.Fatal("percentiles not monotone")
	}
}

func TestLatencyHistHugeValueClamped(t *testing.T) {
	var h LatencyHist
	h.Add(1 << 62) // beyond the last bucket boundary
	if h.Buckets[len(h.Buckets)-1] != 1 {
		t.Fatal("huge value not clamped into the last bucket")
	}
}

// TestLatencyHistMergeEqualsWholeStream is the Merge property test:
// splitting one sample stream into arbitrary chunks, histogramming each
// chunk separately, and merging the parts must reproduce the histogram
// of the whole stream exactly — buckets, count, sum, and max.
func TestLatencyHistMergeEqualsWholeStream(t *testing.T) {
	// Deterministic xorshift stream with a wide dynamic range so many
	// buckets (including bucket 0 and the clamped tail) are populated.
	samples := make([]uint64, 10000)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range samples {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		samples[i] = x >> (x % 64) // spread across magnitudes, incl. 0
	}

	var whole LatencyHist
	for _, s := range samples {
		whole.Add(s)
	}

	for _, cuts := range [][]int{
		{5000},                  // even split
		{1, 9999},               // degenerate chunk
		{0, 10000},              // empty chunks at both ends
		{100, 2500, 2600, 9000}, // ragged multi-way split
	} {
		bounds := append(append([]int{0}, cuts...), len(samples))
		var merged LatencyHist
		for i := 0; i+1 < len(bounds); i++ {
			var part LatencyHist
			for _, s := range samples[bounds[i]:bounds[i+1]] {
				part.Add(s)
			}
			merged.Merge(&part)
		}
		if merged != whole {
			t.Fatalf("split %v: merged histogram differs from whole-stream histogram", cuts)
		}
	}
}

// TestLatencyHistMergeEmptyIdentity checks that merging an empty
// histogram is a no-op in both directions.
func TestLatencyHistMergeEmptyIdentity(t *testing.T) {
	var h, empty LatencyHist
	for _, v := range []uint64{3, 700, 12, 0, 1 << 40} {
		h.Add(v)
	}
	want := h
	h.Merge(&empty)
	if h != want {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	var acc LatencyHist
	acc.Merge(&h)
	if acc != want {
		t.Fatal("merging into an empty histogram did not copy the source")
	}
}

func TestRunPopulatesLatencies(t *testing.T) {
	prof := profFor(t, "milc")
	res := runFor(t, FamilyBonsai, prof, 2000)
	if res.ReadLat.Count == 0 || res.WriteLat.Count == 0 {
		t.Fatal("latency histograms empty")
	}
	if res.ReadLat.Count+res.WriteLat.Count != 2000 {
		t.Fatalf("latency samples = %d, want 2000", res.ReadLat.Count+res.WriteLat.Count)
	}
	// Reads must pay at least the media latency on misses; mean > 0.
	if res.ReadLat.Mean() <= 0 {
		t.Fatal("read latency mean is zero")
	}
}

func TestStrictInflatesWriteLatency(t *testing.T) {
	prof := profFor(t, "libquantum")
	wb := runSchemeFor(t, FamilyBonsai, "writeback", prof, 4000)
	st := runSchemeFor(t, FamilyBonsai, "strict", prof, 4000)
	if st.WriteLat.Mean() <= wb.WriteLat.Mean() {
		t.Fatalf("strict write latency (%.0f) not above write-back (%.0f)",
			st.WriteLat.Mean(), wb.WriteLat.Mean())
	}
}
