// Package sim drives a secure memory controller with a workload trace
// and reports timing and traffic statistics.
//
// The engine is trace-driven and in-order: each request waits out its
// CPU gap, then occupies the controller until it completes (reads block
// until data+verification; writes return once the atomic group is in
// the persistence domain, stalling only on WPQ back-pressure). This is
// the substitution for the paper's gem5 setup — see DESIGN.md §1. The
// reported quantity is the same as the paper's figures: execution time
// normalized to the write-back baseline.
package sim

import (
	"fmt"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/shard"
	"anubis/internal/trace"
)

// Result summarizes one simulation run. The JSON field names are part
// of the stable report schema documented in EXPERIMENTS.md — rename
// only with a schema_version bump in cmd/anubis-bench.
type Result struct {
	Workload string           `json:"workload"`
	Scheme   memctrl.Scheme   `json:"scheme"`
	Family   Family           `json:"family"`
	Requests int              `json:"requests"`
	ExecNS   uint64           `json:"exec_ns"`
	Stats    memctrl.RunStats `json:"stats"`

	// ReadLat and WriteLat are per-request latency histograms: reads
	// measure issue-to-data-verified, writes issue-to-persist-accepted.
	ReadLat  LatencyHist `json:"read_latency"`
	WriteLat LatencyHist `json:"write_latency"`
}

// Normalized returns this run's execution time relative to a baseline
// run of the same trace (1.0 = identical, 1.1 = 10% overhead).
func (r Result) Normalized(base Result) float64 {
	if base.ExecNS == 0 {
		return 0
	}
	return float64(r.ExecNS) / float64(base.ExecNS)
}

// CleanEvictionFrac returns the fraction of counter-cache evictions that
// were clean (Figure 7). For the SGX family the combined metadata cache
// (reported in Stats.TreeCache) is used. Selection is by family, not by
// which cache happens to have evictions: the old fallback ("use the
// tree cache whenever the counter cache has zero evictions") silently
// reported Merkle-tree evictions for short Bonsai runs whose counter
// working set still fit in the cache.
func (r Result) CleanEvictionFrac() float64 {
	cs := r.Stats.CounterCache
	if r.Family == FamilySGX {
		cs = r.Stats.TreeCache
	}
	if cs.Evictions == 0 {
		return 0
	}
	return float64(cs.CleanEvictions) / float64(cs.Evictions)
}

// WritesPerRequest returns NVM write amplification: media writes per
// CPU write request.
func (r Result) WritesPerRequest() float64 {
	if r.Stats.WriteRequests == 0 {
		return 0
	}
	return float64(r.Stats.NVM.Writes) / float64(r.Stats.WriteRequests)
}

// Run drives nReq requests from the source through the controller.
// The source's blocks are taken modulo the controller's capacity, so
// profiles with larger footprints than the simulated memory still run
// (with correspondingly reduced locality).
func Run(ctrl memctrl.Controller, gen trace.Source, nReq int) (Result, error) {
	return runObserved(ctrl, gen, nReq, nil, false)
}

// RunFast is Run with the hit-burst fast path enabled: steady-state
// full-hit requests retire in closed form, batched per burst, with an
// exact fallback to the stepped path on the first ineligible request.
// The Result is byte-identical to Run — the lane only changes host
// wall-clock — enforced by TestFastPathByteIdentical and the bench
// -fastpath-sweep gate. Controllers without a fast lane run as Run.
func RunFast(ctrl memctrl.Controller, gen trace.Source, nReq int) (Result, error) {
	return runObserved(ctrl, gen, nReq, nil, true)
}

// probeSetter is implemented by controllers that accept an event probe.
// It is matched by type assertion rather than widening the Controller
// interface, so third-party controllers need not implement it.
type probeSetter interface{ SetProbe(obs.Probe) }

// fastLaner is implemented by controllers with a hit-burst fast path;
// matched by assertion like probeSetter. The contract: TryFastRead /
// TryFastWrite either retire the request exactly (true) or change
// nothing (false), FlushFastRun folds deferred batched work in, and
// SetFastPath(false) disables the lane (flushing first). Simulated
// metrics must be byte-identical with the lane on or off.
type fastLaner interface {
	SetFastPath(bool)
	TryFastRead(idx uint64) bool
	TryFastWrite(idx uint64, data *[memctrl.BlockBytes]byte) bool
	FlushFastRun()
	FastPathStats() (batches, requests uint64)
}

// RunObserved is Run with an optional event probe: each completed
// request is reported with its per-component latency attribution, and
// the controller (when it supports SetProbe) reports structural events
// — evictions, commit-group drains, page overflows — to the same probe.
// A nil probe makes RunObserved behave exactly like Run: the hot loop
// takes one predictable branch per request and allocates nothing, and
// simulated timing is byte-identical either way (probes only ever
// receive completed facts).
func RunObserved(ctrl memctrl.Controller, gen trace.Source, nReq int, probe obs.Probe) (Result, error) {
	return runObserved(ctrl, gen, nReq, probe, false)
}

func runObserved(ctrl memctrl.Controller, gen trace.Source, nReq int, probe obs.Probe, fastpath bool) (Result, error) {
	res := Result{Workload: gen.Name(), Scheme: ctrl.Scheme(), Family: FamilyOf(ctrl), Requests: nReq}
	nBlocks := ctrl.NumBlocks()
	if probe != nil {
		if ps, ok := ctrl.(probeSetter); ok {
			ps.SetProbe(probe)
			defer ps.SetProbe(nil)
		}
	}
	// The fast lane needs no per-request observation, so an attached
	// probe forces the stepped path (the controller-side guard would
	// reject anyway; skipping the calls is cheaper).
	fl, useFast := ctrl.(fastLaner)
	useFast = useFast && fastpath && probe == nil
	if useFast {
		fl.SetFastPath(true)
		defer fl.SetFastPath(false)
	}
	att := ctrl.Device().Attr()
	// One scratch block for the whole run: fill overwrites all 64 bytes
	// per write request, so re-zeroing a fresh array every iteration
	// (the old per-iteration `var data`) was pure waste on the hot loop.
	// The fast lane gets a separate heap buffer: &fast crosses the
	// fastLaner interface boundary and would drag the stack scratch to
	// the heap on every run, including lane-off runs the zero-alloc
	// steady-state tests guard.
	var data [memctrl.BlockBytes]byte
	var fast *[memctrl.BlockBytes]byte
	if useFast {
		fast = new([memctrl.BlockBytes]byte)
	}
	// Arena-backed runs that start at position zero share the arena's
	// memoized payload table instead of regenerating plaintext per cell:
	// payload content is a pure function of (block, position), and a
	// sweep replays one stream across many cells. Mid-stream cursors
	// (forked recovery windows) keep calling FillBlock — their per-run
	// counter does not line up with the table's positions.
	var payloads [][memctrl.BlockBytes]byte
	if cur, ok := gen.(*trace.Cursor); ok && cur.Pos() == 0 {
		payloads = cur.Payloads(FillBlock)
	}
	// snap/delta are heap state for the probe path only: &delta crosses
	// the Probe interface boundary, so a plain stack var would escape —
	// and be allocated — even on probe-free runs. Two fixed allocations
	// when observing, zero when not.
	var snap, delta *obs.Ledger
	if probe != nil {
		snap, delta = new(obs.Ledger), new(obs.Ledger)
	}
	for i := 0; i < nReq; i++ {
		req := gen.Next()
		ctrl.AdvanceTo(ctrl.Now() + req.GapNS)
		addr := req.Block % nBlocks
		issue := ctrl.Now()
		if probe != nil {
			*snap = *att
		}
		if req.Op == trace.OpWrite {
			if useFast {
				// Copy, never alias: TryFastWrite takes a pointer, and the
				// payload table is shared read-only across cells.
				if payloads != nil {
					*fast = payloads[i]
				} else {
					FillBlock(fast, req.Block, uint64(i))
				}
				if fl.TryFastWrite(addr, fast) {
					res.WriteLat.Add(ctrl.Now() - issue)
					continue
				}
				data = *fast
			} else if payloads != nil {
				data = payloads[i]
			} else {
				FillBlock(&data, req.Block, uint64(i))
			}
			if err := ctrl.WriteBlock(addr, data); err != nil {
				return res, fmt.Errorf("sim: request %d (write %d): %w", i, addr, err)
			}
			res.WriteLat.Add(ctrl.Now() - issue)
			if probe != nil {
				*delta = att.Since(snap)
				probe.Request(obs.EvWriteReq, addr, issue, ctrl.Now(), delta)
			}
		} else {
			if useFast && fl.TryFastRead(addr) {
				res.ReadLat.Add(ctrl.Now() - issue)
				continue
			}
			if _, err := ctrl.ReadBlock(addr); err != nil {
				return res, fmt.Errorf("sim: request %d (read %d): %w", i, addr, err)
			}
			res.ReadLat.Add(ctrl.Now() - issue)
			if probe != nil {
				*delta = att.Since(snap)
				probe.Request(obs.EvReadReq, addr, issue, ctrl.Now(), delta)
			}
		}
	}
	// Any open burst folds in before end-of-run flushes and stats.
	if useFast {
		fl.FlushFastRun()
	}
	// Close any open epoch window (bank-parallel epoch pipeline) so the
	// reported execution time and device state cover the whole workload;
	// legacy controllers and configs don't implement or no-op it.
	if f, ok := ctrl.(epochFlusher); ok {
		if err := f.FlushEpoch(); err != nil {
			return res, fmt.Errorf("sim: epoch flush: %w", err)
		}
	}
	res.ExecNS = ctrl.Now()
	res.Stats = ctrl.Stats()
	return res, nil
}

// epochFlusher is implemented by controllers with a deferred-update
// epoch pipeline; matched by assertion like probeSetter, so the
// Controller interface stays family-agnostic.
type epochFlusher interface{ FlushEpoch() error }

// FillBlock writes deterministic content so every write has distinct
// data. Exported so the crash-injection fuzzer can regenerate the exact
// bytes Run wrote when maintaining its golden shadow copy. The
// canonical definition lives in internal/shard, whose precompute
// workers must generate the very same bytes off the hot path.
func FillBlock(d *[memctrl.BlockBytes]byte, block, n uint64) {
	shard.FillBlock(d, block, n)
}

// NewController constructs the right controller family for a scheme:
// AGIT schemes and the general-tree baselines use Bonsai; ASIT uses the
// SGX family. For WriteBack/Strict/Osiris the family must be chosen by
// the caller (both exist in the paper's two evaluations), so this helper
// takes it explicitly.
type Family int

const (
	// FamilyBonsai selects split counters + general Merkle tree (§6.1).
	FamilyBonsai Family = iota
	// FamilySGX selects SGX-style counters + parallelizable tree (§6.2).
	FamilySGX
)

func (f Family) String() string {
	if f == FamilySGX {
		return "sgx"
	}
	return "bonsai"
}

// MarshalText renders the family name, so JSON reports say "bonsai"
// and "sgx" instead of enum ordinals.
func (f Family) MarshalText() ([]byte, error) { return []byte(f.String()), nil }

// UnmarshalText parses a family name.
func (f *Family) UnmarshalText(b []byte) error {
	switch string(b) {
	case "bonsai":
		*f = FamilyBonsai
	case "sgx":
		*f = FamilySGX
	default:
		return fmt.Errorf("sim: unknown family %q", b)
	}
	return nil
}

// FamilyOf reports which controller family a controller belongs to.
func FamilyOf(ctrl memctrl.Controller) Family {
	if _, ok := ctrl.(*memctrl.SGX); ok {
		return FamilySGX
	}
	return FamilyBonsai
}

// NewController builds a controller of the given family and config.
func NewController(f Family, cfg memctrl.Config) (memctrl.Controller, error) {
	switch f {
	case FamilyBonsai:
		return memctrl.NewBonsai(cfg)
	case FamilySGX:
		return memctrl.NewSGX(cfg)
	}
	return nil, fmt.Errorf("sim: unknown family %d", f)
}
