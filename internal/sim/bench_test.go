package sim

import (
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/trace"
)

// BenchmarkSimHotLoop measures the per-request cost of the simulation
// hot loop (trace generation + controller write path + crypto engine)
// on the AGIT-Plus scheme. With the pooled crypto scratch and the
// run-wide data buffer this path is what every parallel evaluation cell
// spends its time in, so its allocation count is reported explicitly.
func BenchmarkSimHotLoop(b *testing.B) {
	p, ok := trace.ByName("libquantum")
	if !ok {
		b.Fatal("unknown profile")
	}
	cfg := memctrl.DefaultConfig(memctrl.SchemeAGITPlus)
	cfg.MemoryBytes = 64 << 20
	ctrl, err := memctrl.NewBonsai(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(p, 99)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(ctrl, gen, b.N); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkSimHotLoopSGX is the SGX-family (ASIT) counterpart.
func BenchmarkSimHotLoopSGX(b *testing.B) {
	p, ok := trace.ByName("libquantum")
	if !ok {
		b.Fatal("unknown profile")
	}
	cfg := memctrl.DefaultConfig(memctrl.SchemeASIT)
	cfg.MemoryBytes = 64 << 20
	ctrl, err := memctrl.NewSGX(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(p, 99)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(ctrl, gen, b.N); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
