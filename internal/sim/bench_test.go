package sim

import (
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/trace"
)

// BenchmarkSimHotLoop measures the per-request cost of the simulation
// hot loop (trace generation + controller write path + crypto engine)
// on the AGIT-Plus scheme. With the pooled crypto scratch and the
// run-wide data buffer this path is what every parallel evaluation cell
// spends its time in, so its allocation count is reported explicitly.
func BenchmarkSimHotLoop(b *testing.B) {
	p, ok := trace.ByName("libquantum")
	if !ok {
		b.Fatal("unknown profile")
	}
	cfg := memctrl.DefaultConfig(memctrl.SchemeAGITPlus)
	cfg.MemoryBytes = 64 << 20
	ctrl, err := memctrl.NewBonsai(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(p, 99)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(ctrl, gen, b.N); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkSimHotLoopSGX is the SGX-family (ASIT) counterpart.
func BenchmarkSimHotLoopSGX(b *testing.B) {
	p, ok := trace.ByName("libquantum")
	if !ok {
		b.Fatal("unknown profile")
	}
	cfg := memctrl.DefaultConfig(memctrl.SchemeASIT)
	cfg.MemoryBytes = 64 << 20
	ctrl, err := memctrl.NewSGX(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(p, 99)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(ctrl, gen, b.N); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// TestRunSteadyStateZeroAllocs pins the steady-state allocation count
// of the whole request chain — trace generation, controller read/write
// path, crypto engine, paged NVM store — at zero per request. The warm
// phase populates caches, shadow tables, and device pages; after it,
// requests must not touch the heap (Osiris stop-loss counters, WPQ
// occupancy, and wear accounting included).
func TestRunSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented accesses; counts are not meaningful")
	}
	testSteadyStateZeroAllocs(t, func(ctrl memctrl.Controller) memctrl.Controller {
		return ctrl
	})
}

// TestForkedRunSteadyStateZeroAllocs repeats the steady-state pin on a
// controller FORKED from the warm one: after Clone's one-time directory
// copies and the COW page copies triggered by the child's first writes,
// the forked request path must be exactly as allocation-free as the
// original. This is the property that lets a recovery sweep fork one
// warm parent into hundreds of trials without heap churn.
func TestForkedRunSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented accesses; counts are not meaningful")
	}
	testSteadyStateZeroAllocs(t, func(ctrl memctrl.Controller) memctrl.Controller {
		return ctrl.Clone()
	})
}

func testSteadyStateZeroAllocs(t *testing.T, derive func(memctrl.Controller) memctrl.Controller) {
	for _, tc := range []struct {
		name   string
		scheme memctrl.Scheme
	}{
		{"agit-plus", memctrl.SchemeAGITPlus},
		{"asit", memctrl.SchemeASIT},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := trace.ByName("libquantum")
			if !ok {
				t.Fatal("unknown profile")
			}
			cfg := memctrl.DefaultConfig(tc.scheme)
			// Small enough that the warm phase touches every page of
			// every region: steady state means no first-touch page
			// allocations are left in the paged store.
			cfg.MemoryBytes = 4 << 20
			var (
				ctrl memctrl.Controller
				err  error
			)
			if tc.scheme == memctrl.SchemeASIT {
				ctrl, err = memctrl.NewSGX(cfg)
			} else {
				ctrl, err = memctrl.NewBonsai(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			gen := trace.NewGenerator(p, 99)
			if _, err := Run(ctrl, gen, 200000); err != nil {
				t.Fatal(err)
			}
			// For the forked variant: derive the measured controller
			// from the warm one, then settle its COW state with a
			// second warm phase (first writes copy shared pages).
			ctrl = derive(ctrl)
			if _, err := Run(ctrl, gen, 200000); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(50, func() {
				if _, err := Run(ctrl, gen, 50); err != nil {
					t.Fatal(err)
				}
			})
			if perReq := avg / 50; perReq > 0.02 {
				t.Errorf("steady-state Run: %.3f allocs/request, want 0", perReq)
			}
			// The probe-disabled observed path must be exactly as free:
			// a nil probe is one predictable branch per request, and the
			// always-on attribution ledger is plain uint64 adds.
			avg = testing.AllocsPerRun(50, func() {
				if _, err := RunObserved(ctrl, gen, 50, nil); err != nil {
					t.Fatal(err)
				}
			})
			if perReq := avg / 50; perReq > 0.02 {
				t.Errorf("steady-state RunObserved(nil): %.3f allocs/request, want 0", perReq)
			}
		})
	}
}
