package sim

import (
	"reflect"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/trace"
)

// sliceSource replays a fixed request slice; used to force specific
// request patterns (minor-counter overflows) through the sharded path.
type sliceSource struct {
	name string
	reqs []trace.Request
	pos  int
}

func (s *sliceSource) Name() string { return s.name }
func (s *sliceSource) Next() trace.Request {
	r := s.reqs[s.pos%len(s.reqs)]
	s.pos++
	return r
}

// overflowTrace hammers a handful of lanes hard enough to overflow
// their 7-bit minor counters several times, with reads of written and
// never-written blocks mixed in.
func overflowTrace(n int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		r := &reqs[i]
		r.GapNS = uint64(20 + i%7)
		switch i % 5 {
		case 0, 1, 2: // hot writes: 3 lanes on 2 pages overflow repeatedly
			r.Op = trace.OpWrite
			r.Block = uint64(i%3) * 70
		case 3: // read something previously written
			r.Op = trace.OpRead
			r.Block = uint64(i%3) * 70
		default: // read a cold, possibly never-written block
			r.Op = trace.OpRead
			r.Block = uint64(1000 + i%97)
		}
	}
	return reqs
}

type shardCase struct {
	name   string
	family Family
	scheme memctrl.Scheme
	epoch  int
}

func shardCases() []shardCase {
	return []shardCase{
		{"bonsai/writeback", FamilyBonsai, memctrl.SchemeWriteBack, 0},
		{"bonsai/strict", FamilyBonsai, memctrl.SchemeStrict, 0},
		{"bonsai/osiris", FamilyBonsai, memctrl.SchemeOsiris, 0},
		{"bonsai/agit-read", FamilyBonsai, memctrl.SchemeAGITRead, 0},
		{"bonsai/agit-plus", FamilyBonsai, memctrl.SchemeAGITPlus, 0},
		{"bonsai/triad", FamilyBonsai, memctrl.SchemeTriad, 0},
		{"bonsai/selective", FamilyBonsai, memctrl.SchemeSelective, 0},
		{"bonsai/agit-plus/epoch16", FamilyBonsai, memctrl.SchemeAGITPlus, 16},
		{"bonsai/strict/epoch4", FamilyBonsai, memctrl.SchemeStrict, 4},
		{"sgx/writeback", FamilySGX, memctrl.SchemeWriteBack, 0},
		{"sgx/strict", FamilySGX, memctrl.SchemeStrict, 0},
		{"sgx/osiris", FamilySGX, memctrl.SchemeOsiris, 0},
		{"sgx/asit", FamilySGX, memctrl.SchemeASIT, 0},
		{"sgx/asit/epoch16", FamilySGX, memctrl.SchemeASIT, 16},
	}
}

func (c shardCase) config() memctrl.Config {
	cfg := simConfig(c.scheme)
	cfg.EpochRequests = c.epoch
	return cfg
}

// TestRunShardedByteIdentical is the engine's core contract: at seed 99
// the sharded engine produces a Result deep-equal to the legacy engine
// at every shard count in {1,2,4,8}, across schemes, both families and
// epoch windows.
func TestRunShardedByteIdentical(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	const n, seed = 4000, 99
	for _, c := range shardCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ctrl, err := NewController(c.family, c.config())
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(ctrl, trace.NewGenerator(prof, seed), n)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				ctrl, err := NewController(c.family, c.config())
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunSharded(ctrl, trace.NewGenerator(prof, seed), n, shards, nil)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: sharded result differs from legacy engine\n got: %+v\nwant: %+v", shards, got, want)
				}
			}
		})
	}
}

// TestRunShardedOverflow forces split-counter page overflows (the
// re-encryption path) through the oracle at several shard counts.
func TestRunShardedOverflow(t *testing.T) {
	reqs := overflowTrace(3000)
	for _, epoch := range []int{0, 8} {
		cfg := simConfig(memctrl.SchemeAGITPlus)
		cfg.EpochRequests = epoch
		ctrl, err := NewController(FamilyBonsai, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(ctrl, &sliceSource{name: "overflow", reqs: reqs}, len(reqs))
		if err != nil {
			t.Fatal(err)
		}
		if want.Stats.PageOverflows == 0 {
			t.Fatal("trace did not trigger any page overflow")
		}
		for _, shards := range []int{1, 3, 8} {
			ctrl, err := NewController(FamilyBonsai, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSharded(ctrl, &sliceSource{name: "overflow", reqs: reqs}, len(reqs), shards, nil)
			if err != nil {
				t.Fatalf("epoch=%d shards=%d: %v", epoch, shards, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("epoch=%d shards=%d: overflow run diverged", epoch, shards)
			}
		}
	}
}

// TestShardLedgerSumExact is the decomposition property: folding the
// per-shard attribution ledgers in fixed shard order reproduces the
// run's global ledger entry for entry (so merged total == merged
// clock), and folding the per-shard latency histograms reproduces the
// bulk single-worker histograms. Holds for every shard count in
// {1,2,4,8} across profile × scheme.
func TestShardLedgerSumExact(t *testing.T) {
	cases := []shardCase{
		{"bonsai/agit-plus", FamilyBonsai, memctrl.SchemeAGITPlus, 0},
		{"bonsai/strict/epoch8", FamilyBonsai, memctrl.SchemeStrict, 8},
		{"sgx/asit", FamilySGX, memctrl.SchemeASIT, 0},
		{"sgx/writeback", FamilySGX, memctrl.SchemeWriteBack, 0},
	}
	profiles := []string{"libquantum", "milc"}
	const n, seed = 3000, 99
	for _, c := range cases {
		for _, pname := range profiles {
			prof, ok := trace.ByName(pname)
			if !ok {
				t.Fatalf("unknown profile %q", pname)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				ctrl, err := NewController(c.family, c.config())
				if err != nil {
					t.Fatal(err)
				}
				res, det, err := RunShardedDetail(ctrl, trace.NewGenerator(prof, seed), n, shards, nil)
				if err != nil {
					t.Fatalf("%s/%s shards=%d: %v", c.name, pname, shards, err)
				}
				if len(det.Ledgers) != shards {
					t.Fatalf("%s/%s: %d ledgers for %d shards", c.name, pname, len(det.Ledgers), shards)
				}
				var merged obs.Ledger
				var readLat, writeLat LatencyHist
				for s := 0; s < shards; s++ {
					merged.Merge(&det.Ledgers[s])
					readLat.Merge(&det.ReadLat[s])
					writeLat.Merge(&det.WriteLat[s])
				}
				if merged != res.Stats.Attribution {
					t.Fatalf("%s/%s shards=%d: merged shard ledgers != global attribution\n got: %v\nwant: %v",
						c.name, pname, shards, merged.Map(), res.Stats.Attribution.Map())
				}
				if merged.Total() != res.ExecNS {
					t.Fatalf("%s/%s shards=%d: merged total %d != merged clock %d",
						c.name, pname, shards, merged.Total(), res.ExecNS)
				}
				if readLat != res.ReadLat || writeLat != res.WriteLat {
					t.Fatalf("%s/%s shards=%d: merged per-shard histograms != bulk histograms",
						c.name, pname, shards)
				}
				if det.Registry == nil {
					t.Fatalf("%s/%s shards=%d: nil worker registry", c.name, pname, shards)
				}
				entries := det.Registry.CounterValue("shard_write_entries") +
					det.Registry.CounterValue("shard_read_entries")
				if entries != uint64(n) {
					t.Fatalf("%s/%s shards=%d: workers produced %d entries for %d requests",
						c.name, pname, shards, entries, n)
				}
			}
		}
	}
}

// TestRunShardedFallback: configurations the oracle cannot express
// (Start-Gap wear leveling rotates physical addresses on a global
// write count) transparently fall back to the legacy engine.
func TestRunShardedFallback(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	cfg := simConfig(memctrl.SchemeOsiris)
	cfg.WearPeriod = 64
	ctrl, err := NewController(FamilyBonsai, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(ctrl, trace.NewGenerator(prof, 99), 2000)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err = NewController(FamilyBonsai, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, det, err := RunShardedDetail(ctrl, trace.NewGenerator(prof, 99), 2000, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("wear-leveled fallback diverged from legacy engine")
	}
	if det.Ledgers != nil || det.Registry != nil {
		t.Fatal("fallback should not report a shard decomposition")
	}
	if wantOv := want.Stats.PageOverflows; wantOv == 0 {
		// Not a correctness requirement, but the config is tuned to be
		// interesting; flag silently-dead coverage.
		t.Log("note: wear-leveled run had no page overflows")
	}
}

// probeRecorder captures every probe callback, including each
// request's attribution delta, for stream-equality checks.
type probeEv struct {
	kind             obs.EventKind
	a, b, c          uint64
	attr             obs.Ledger
	request, hasAttr bool
}

type probeRecorder struct{ evs []probeEv }

func (p *probeRecorder) Request(op obs.EventKind, addr, issueNS, doneNS uint64, attr *obs.Ledger) {
	e := probeEv{kind: op, a: addr, b: issueNS, c: doneNS, request: true}
	if attr != nil {
		e.attr, e.hasAttr = *attr, true
	}
	p.evs = append(p.evs, e)
}

func (p *probeRecorder) Event(kind obs.EventKind, startNS, endNS, arg uint64) {
	p.evs = append(p.evs, probeEv{kind: kind, a: startNS, b: endNS, c: arg})
}

// TestRunShardedProbeParity: the event probe sees the same request
// stream under the sharded engine as under RunObserved.
func TestRunShardedProbeParity(t *testing.T) {
	prof, _ := trace.ByName("omnetpp")
	collect := func(run func(ctrl memctrl.Controller, probe obs.Probe) error) []probeEv {
		ctrl, err := NewController(FamilyBonsai, simConfig(memctrl.SchemeAGITPlus))
		if err != nil {
			t.Fatal(err)
		}
		rec := &probeRecorder{}
		if err := run(ctrl, rec); err != nil {
			t.Fatal(err)
		}
		return rec.evs
	}
	want := collect(func(ctrl memctrl.Controller, probe obs.Probe) error {
		_, err := RunObserved(ctrl, trace.NewGenerator(prof, 99), 1500, probe)
		return err
	})
	got := collect(func(ctrl memctrl.Controller, probe obs.Probe) error {
		_, err := RunSharded(ctrl, trace.NewGenerator(prof, 99), 1500, 4, probe)
		return err
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("probe event stream differs between sharded and legacy engines")
	}
}
