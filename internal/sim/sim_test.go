package sim

import (
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/trace"
)

// simConfig returns a mid-size configuration: large enough for realistic
// miss rates, small enough for fast tests.
func simConfig(s memctrl.Scheme) memctrl.Config {
	cfg := memctrl.DefaultConfig(s)
	cfg.MemoryBytes = 64 << 20 // 64 MB
	cfg.CounterCacheBlocks = 512
	cfg.CounterCacheWays = 8
	cfg.TreeCacheBlocks = 512
	cfg.TreeCacheWays = 16
	cfg.MetaCacheBlocks = 1024
	cfg.MetaCacheWays = 8
	return cfg
}

func runOne(t *testing.T, f Family, s memctrl.Scheme, prof trace.Profile, n int) Result {
	t.Helper()
	ctrl, err := NewController(f, simConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(prof, 12345)
	res, err := Run(ctrl, gen, n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletes(t *testing.T) {
	prof, _ := trace.ByName("milc")
	res := runOne(t, FamilyBonsai, memctrl.SchemeWriteBack, prof, 3000)
	if res.ExecNS == 0 {
		t.Fatal("no time elapsed")
	}
	if res.Stats.ReadRequests+res.Stats.WriteRequests != 3000 {
		t.Fatalf("request accounting: %d+%d != 3000",
			res.Stats.ReadRequests, res.Stats.WriteRequests)
	}
}

func TestBonsaiSchemeOrdering(t *testing.T) {
	// Figure 10's qualitative result: WB ≤ Osiris ≤ AGIT-Plus ≤
	// AGIT-Read ≪ Strict.
	prof, _ := trace.ByName("libquantum")
	n := 6000
	wb := runOne(t, FamilyBonsai, memctrl.SchemeWriteBack, prof, n)
	os := runOne(t, FamilyBonsai, memctrl.SchemeOsiris, prof, n)
	ap := runOne(t, FamilyBonsai, memctrl.SchemeAGITPlus, prof, n)
	st := runOne(t, FamilyBonsai, memctrl.SchemeStrict, prof, n)

	if os.ExecNS < wb.ExecNS {
		t.Fatalf("osiris (%d) faster than write-back (%d)", os.ExecNS, wb.ExecNS)
	}
	if ap.ExecNS < os.ExecNS {
		t.Fatalf("agit-plus (%d) faster than osiris (%d)", ap.ExecNS, os.ExecNS)
	}
	if st.ExecNS <= ap.ExecNS {
		t.Fatalf("strict (%d) not slower than agit-plus (%d)", st.ExecNS, ap.ExecNS)
	}
	if st.Normalized(wb) < 1.2 {
		t.Fatalf("strict overhead %.3f too low; write amplification not modeled", st.Normalized(wb))
	}
}

func TestSGXSchemeOrdering(t *testing.T) {
	// Figure 11: WB ≤ Osiris ≤ ASIT ≪ Strict.
	prof, _ := trace.ByName("libquantum")
	n := 6000
	wb := runOne(t, FamilySGX, memctrl.SchemeWriteBack, prof, n)
	as := runOne(t, FamilySGX, memctrl.SchemeASIT, prof, n)
	st := runOne(t, FamilySGX, memctrl.SchemeStrict, prof, n)
	if as.ExecNS < wb.ExecNS {
		t.Fatalf("asit (%d) faster than write-back (%d)", as.ExecNS, wb.ExecNS)
	}
	if st.ExecNS <= as.ExecNS {
		t.Fatalf("strict (%d) not slower than asit (%d)", st.ExecNS, as.ExecNS)
	}
	if as.Normalized(wb) >= st.Normalized(wb) {
		t.Fatal("ASIT must be far cheaper than strict persistence")
	}
}

func TestAGITReadCostlierOnReadIntensive(t *testing.T) {
	// Figure 10's MCF effect: on a read-intensive app, AGIT-Read's
	// fill-tracking writes cost more than AGIT-Plus's dirty-tracking.
	prof, _ := trace.ByName("mcf")
	n := 6000
	ar := runOne(t, FamilyBonsai, memctrl.SchemeAGITRead, prof, n)
	ap := runOne(t, FamilyBonsai, memctrl.SchemeAGITPlus, prof, n)
	if ar.Stats.ShadowWrites <= ap.Stats.ShadowWrites {
		t.Fatalf("AGIT-Read shadow writes (%d) not above AGIT-Plus (%d) on mcf",
			ar.Stats.ShadowWrites, ap.Stats.ShadowWrites)
	}
	if ar.ExecNS < ap.ExecNS {
		t.Fatalf("AGIT-Read (%d) faster than AGIT-Plus (%d) on mcf", ar.ExecNS, ap.ExecNS)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	prof, _ := trace.ByName("astar")
	a := runOne(t, FamilyBonsai, memctrl.SchemeAGITPlus, prof, 2000)
	b := runOne(t, FamilyBonsai, memctrl.SchemeAGITPlus, prof, 2000)
	if a.ExecNS != b.ExecNS {
		t.Fatalf("nondeterministic simulation: %d vs %d", a.ExecNS, b.ExecNS)
	}
}

func TestCleanEvictionFraction(t *testing.T) {
	// Figure 7: read-mostly apps evict mostly clean counter blocks.
	mcf, _ := trace.ByName("mcf")
	lbm, _ := trace.ByName("lbm")
	rm := runOne(t, FamilyBonsai, memctrl.SchemeWriteBack, mcf, 8000)
	rl := runOne(t, FamilyBonsai, memctrl.SchemeWriteBack, lbm, 8000)
	if rm.CleanEvictionFrac() <= rl.CleanEvictionFrac() {
		t.Fatalf("mcf clean-eviction fraction (%.2f) not above lbm (%.2f)",
			rm.CleanEvictionFrac(), rl.CleanEvictionFrac())
	}
	if rm.CleanEvictionFrac() < 0.5 {
		t.Fatalf("mcf clean fraction %.2f; expected mostly-clean evictions", rm.CleanEvictionFrac())
	}
}

func TestWritesPerRequest(t *testing.T) {
	prof, _ := trace.ByName("lbm")
	st := runOne(t, FamilyBonsai, memctrl.SchemeStrict, prof, 3000)
	wb := runOne(t, FamilyBonsai, memctrl.SchemeWriteBack, prof, 3000)
	if st.WritesPerRequest() < wb.WritesPerRequest()+3 {
		t.Fatalf("strict write amplification %.2f vs wb %.2f; expected ≥ +levels",
			st.WritesPerRequest(), wb.WritesPerRequest())
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyBonsai.String() != "bonsai" || FamilySGX.String() != "sgx" {
		t.Fatal("family names wrong")
	}
}

func TestNewControllerRejectsUnknownFamily(t *testing.T) {
	if _, err := NewController(Family(9), simConfig(memctrl.SchemeWriteBack)); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestNormalizedEdgeCases(t *testing.T) {
	var zero Result
	r := Result{ExecNS: 100}
	if r.Normalized(zero) != 0 {
		t.Fatal("normalizing against zero baseline must yield 0")
	}
	if zero.CleanEvictionFrac() != 0 {
		t.Fatal("no evictions must yield 0 fraction")
	}
	if zero.WritesPerRequest() != 0 {
		t.Fatal("no writes must yield 0 amplification")
	}
}

// helpers shared with latency_test.go
func profFor(t *testing.T, name string) trace.Profile {
	t.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown profile %s", name)
	}
	return p
}

func runFor(t *testing.T, f Family, p trace.Profile, n int) Result {
	t.Helper()
	return runOne(t, f, memctrl.SchemeAGITPlus, p, n)
}

func runSchemeFor(t *testing.T, f Family, scheme string, p trace.Profile, n int) Result {
	t.Helper()
	var s memctrl.Scheme
	switch scheme {
	case "writeback":
		s = memctrl.SchemeWriteBack
	case "strict":
		s = memctrl.SchemeStrict
	default:
		t.Fatalf("unknown scheme %s", scheme)
	}
	return runOne(t, f, s, p, n)
}
