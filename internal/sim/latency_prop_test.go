package sim

import (
	"math/rand"
	"testing"
)

// Property tests for LatencyHist: randomized inputs, deterministic
// seeds. These pin the algebra the sweeps rely on — RecoverySweep
// merges per-trial histograms in trial order, the parallel engine in
// any worker order, and both must agree.

// randHist builds a histogram from n random samples drawn with a mix
// of magnitudes (uniform small, exponential-ish large, zeros) and
// returns the raw samples alongside.
func randHist(rng *rand.Rand, n int) (*LatencyHist, []uint64) {
	h := &LatencyHist{}
	samples := make([]uint64, n)
	for i := range samples {
		var v uint64
		switch rng.Intn(4) {
		case 0:
			v = 0
		case 1:
			v = uint64(rng.Intn(100))
		case 2:
			v = uint64(rng.Intn(1 << 20))
		default:
			v = rng.Uint64() >> uint(1+rng.Intn(40))
		}
		samples[i] = v
		h.Add(v)
	}
	return h, samples
}

// TestLatencyHistAddInvariants checks the bookkeeping identities that
// every Add must preserve: counts, sums, maxima, and bucket totals.
func TestLatencyHistAddInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		h, samples := randHist(rng, n)
		var sum, max uint64
		for _, v := range samples {
			sum += v
			if v > max {
				max = v
			}
		}
		if h.Count != uint64(n) {
			t.Fatalf("count %d after %d adds", h.Count, n)
		}
		if h.Sum != sum {
			t.Fatalf("sum %d, want %d", h.Sum, sum)
		}
		if h.Max != max {
			t.Fatalf("max %d, want %d", h.Max, max)
		}
		var bucketTotal uint64
		for _, c := range h.Buckets {
			bucketTotal += c
		}
		if bucketTotal != h.Count {
			t.Fatalf("buckets sum to %d, count is %d", bucketTotal, h.Count)
		}
	}
}

// TestLatencyHistPercentileMonotone checks that Percentile is
// monotonically non-decreasing in p, never exceeds Max, and that the
// median of a constant distribution lands in the value's bucket.
func TestLatencyHistPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		h, _ := randHist(rng, 1+rng.Intn(400))
		prev := uint64(0)
		for p := 1.0; p <= 100; p += 0.5 {
			v := h.Percentile(p)
			if v < prev {
				t.Fatalf("trial %d: Percentile(%g)=%d < Percentile(%g)=%d",
					trial, p, v, p-0.5, prev)
			}
			prev = v
		}
		// The estimate is a bucket midpoint, so it can exceed Max by at
		// most the top bucket's width; it must never exceed 2*Max.
		if max := h.Percentile(100); h.Max > 0 && max >= 2*h.Max {
			t.Fatalf("trial %d: Percentile(100)=%d with Max=%d", trial, max, h.Max)
		}
	}
	// Constant distribution: every percentile must fall inside the
	// sample's power-of-two bucket [2^(k-1), 2^k).
	var h LatencyHist
	for i := 0; i < 100; i++ {
		h.Add(300) // bucket [256, 512)
	}
	for _, p := range []float64{1, 50, 99, 100} {
		if v := h.Percentile(p); v < 256 || v >= 512 {
			t.Fatalf("constant dist: Percentile(%g)=%d outside [256,512)", p, v)
		}
	}
}

// TestLatencyHistMergeCommutes checks A∪B == B∪A.
func TestLatencyHistMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		a, _ := randHist(rng, rng.Intn(300))
		b, _ := randHist(rng, rng.Intn(300))
		ab, ba := *a, *b
		ab.Merge(b)
		ba.Merge(a)
		if ab != ba {
			t.Fatalf("trial %d: merge is not commutative:\n a∪b=%+v\n b∪a=%+v", trial, ab, ba)
		}
	}
}

// TestLatencyHistMergeAssociates checks (A∪B)∪C == A∪(B∪C) — the
// property that makes the sweep aggregate independent of whether
// workers merge pairwise or the reducer folds sequentially.
func TestLatencyHistMergeAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a, _ := randHist(rng, rng.Intn(200))
		b, _ := randHist(rng, rng.Intn(200))
		c, _ := randHist(rng, rng.Intn(200))
		left := *a
		left.Merge(b)
		left.Merge(c)
		bc := *b
		bc.Merge(c)
		right := *a
		right.Merge(&bc)
		if left != right {
			t.Fatalf("trial %d: merge is not associative", trial)
		}
	}
}

// TestLatencyHistMergeEqualsBulkAdd checks that merging histograms is
// indistinguishable from one histogram fed every sample, and that Mean
// stays consistent with Sum/Count through it all.
func TestLatencyHistMergeEqualsBulkAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		parts := make([]*LatencyHist, 1+rng.Intn(5))
		var all []uint64
		merged := &LatencyHist{}
		for i := range parts {
			h, samples := randHist(rng, rng.Intn(200))
			parts[i] = h
			all = append(all, samples...)
			merged.Merge(h)
		}
		bulk := &LatencyHist{}
		var sum uint64
		for _, v := range all {
			bulk.Add(v)
			sum += v
		}
		if *merged != *bulk {
			t.Fatalf("trial %d: merged parts != bulk-added samples", trial)
		}
		wantMean := 0.0
		if len(all) > 0 {
			wantMean = float64(sum) / float64(len(all))
		}
		if got := merged.Mean(); got != wantMean {
			t.Fatalf("trial %d: Mean()=%v, want %v", trial, got, wantMean)
		}
	}
}

// TestLatencyHistMergeZeroIdentity checks the empty histogram is the
// identity element on both sides.
func TestLatencyHistMergeZeroIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h, _ := randHist(rng, 200)
	var zero LatencyHist
	left := zero
	left.Merge(h)
	right := *h
	right.Merge(&zero)
	if left != *h || right != *h {
		t.Fatal("empty histogram is not a merge identity")
	}
	if zero.Percentile(99) != 0 || zero.Mean() != 0 {
		t.Fatal("empty histogram must report zero percentiles and mean")
	}
}
