package sim

import (
	"fmt"
	"math"
	"strings"
)

// LatencyHist is a power-of-two-bucketed latency histogram: bucket i
// (i >= 1) counts request latencies in [2^(i-1), 2^i) nanoseconds, and
// bucket 0 counts zero-latency completions. Percentiles are
// approximated by the geometric midpoint of the containing bucket,
// which is plenty for comparing schemes.
type LatencyHist struct {
	Buckets [40]uint64 `json:"buckets"`
	Count   uint64     `json:"count"`
	Sum     uint64     `json:"sum_ns"`
	Max     uint64     `json:"max_ns"`
}

// Add records one latency sample.
func (h *LatencyHist) Add(ns uint64) {
	i := 0
	if ns > 0 {
		i = 64 - leadingZeros(ns)
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += ns
	if ns > h.Max {
		h.Max = ns
	}
}

func leadingZeros(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return 64 - n
}

// Merge folds another histogram into this one, as if every sample of
// `other` had been Added to h directly: bucket-wise and counter-wise
// addition, max of maxima. Forked crash/recovery trials record their
// own per-trial histograms and merge them into the sweep aggregate.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Mean returns the average latency.
func (h *LatencyHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile approximates the p-th percentile (0 < p <= 100).
func (h *LatencyHist) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(h.Count) * p / 100))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << uint(i-1)
			return lo + lo/2 // geometric midpoint of [2^(i-1), 2^i)
		}
	}
	return h.Max
}

// String renders a compact summary.
func (h *LatencyHist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0fns p50=%dns p95=%dns p99=%dns max=%dns",
		h.Count, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max)
	return b.String()
}
