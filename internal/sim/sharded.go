package sim

// Intra-trial bank-sharded execution: one simulation spread across many
// host cores with a deterministic merge.
//
// RunSharded splits a single run into two planes. The *content plane*
// — plaintext generation, counter evolution, encryption, ECC, MACs,
// counter-block packing, leaf hashing — is pure per metadata page and
// fans out across N shard workers (internal/shard), pages assigned by
// the NVM device's bank-interleave hash. The *timing plane* — virtual
// clock, WPQ, write ports, caches, tree walks — is globally coupled
// and stays on one goroutine, replaying the unmodified controller loop
// while substituting the precomputed content. Workers and spine
// synchronize on fixed request windows (the epoch-style barrier), so
// precompute for window c+1 overlaps replay of window c.
//
// Determinism: every oracle entry is a pure function of the trace, so
// its value is independent of the shard count and of goroutine
// interleaving; the spine is sequential; per-shard ledgers, latency
// histograms and worker registries merge in fixed shard order. The
// simulated Result is therefore byte-identical at every shard count —
// including shard=1 versus the legacy engine — which the shard-sweep
// bench gate and TestRunShardedByteIdentical enforce.

import (
	"fmt"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/shard"
	"anubis/internal/trace"
)

// contentSharder is implemented by controllers that can consume
// shard-oracle entries; matched by assertion like probeSetter, so the
// Controller interface stays family-agnostic.
type contentSharder interface {
	SetContentEntry(*shard.Entry)
	ContentShardable() bool
}

// ShardDetail is the per-shard decomposition of a sharded run, merged
// deterministically into the Result. Index s holds what the spine
// charged to shard s: the attribution of every request whose metadata
// page the shard owns (CPU gap included; the final epoch flush goes to
// shard 0). The decomposition is exact: folding Ledgers in shard order
// reproduces the run's attribution ledger entry for entry, and folding
// the histograms reproduces the bulk Result histograms — the sum-exact
// property TestShardLedgerSumExact asserts across shard counts.
type ShardDetail struct {
	Ledgers  []obs.Ledger
	ReadLat  []LatencyHist
	WriteLat []LatencyHist

	// Registry aggregates the worker-private registries (entry and
	// overflow counts per worker) in fixed shard order. Nil when the
	// run fell back to the unsharded engine.
	Registry *obs.Registry
}

// RunSharded is Run with the intra-trial parallel engine: shards > 1
// spreads the content plane over that many workers. Controllers that
// do not support the shard oracle (third-party, or wear-leveled
// configs whose physical addresses depend on a global write count)
// transparently fall back to the unsharded engine — same Result either
// way.
func RunSharded(ctrl memctrl.Controller, gen trace.Source, nReq, shards int, probe obs.Probe) (Result, error) {
	res, _, err := runShardedDetail(ctrl, gen, nReq, shards, probe, false)
	return res, err
}

// RunShardedFast is RunSharded with the hit-burst fast path enabled on
// the spine (see RunFast). The decomposition and Result stay
// byte-identical: fast retires charge attribution immediately, so the
// per-owner Since() deltas are unchanged.
func RunShardedFast(ctrl memctrl.Controller, gen trace.Source, nReq, shards int) (Result, error) {
	res, _, err := runShardedDetail(ctrl, gen, nReq, shards, nil, true)
	return res, err
}

// RunShardedDetail is RunSharded plus the per-shard decomposition.
func RunShardedDetail(ctrl memctrl.Controller, gen trace.Source, nReq, shards int, probe obs.Probe) (Result, ShardDetail, error) {
	return runShardedDetail(ctrl, gen, nReq, shards, probe, false)
}

// RunShardedDetailFast is RunShardedDetail with the fast path enabled.
func RunShardedDetailFast(ctrl memctrl.Controller, gen trace.Source, nReq, shards int) (Result, ShardDetail, error) {
	return runShardedDetail(ctrl, gen, nReq, shards, nil, true)
}

func runShardedDetail(ctrl memctrl.Controller, gen trace.Source, nReq, shards int, probe obs.Probe, fastpath bool) (Result, ShardDetail, error) {
	if shards < 1 {
		shards = 1
	}
	sc, ok := ctrl.(contentSharder)
	if !ok || !sc.ContentShardable() {
		res, err := runObserved(ctrl, gen, nReq, probe, fastpath)
		return res, ShardDetail{}, err
	}

	res := Result{Workload: gen.Name(), Scheme: ctrl.Scheme(), Family: FamilyOf(ctrl), Requests: nReq}
	nBlocks := ctrl.NumBlocks()
	sgx := res.Family == FamilySGX
	if probe != nil {
		if ps, ok := ctrl.(probeSetter); ok {
			ps.SetProbe(probe)
			defer ps.SetProbe(nil)
		}
	}
	fl, useFast := ctrl.(fastLaner)
	useFast = useFast && fastpath && probe == nil
	if useFast {
		fl.SetFastPath(true)
		defer fl.SetFastPath(false)
	}
	att := ctrl.Device().Attr()

	// Materialize the request stream: workers each need an independent
	// scan of it. Draining the source here advances it exactly as the
	// legacy per-request loop would.
	reqs := make([]trace.Request, nReq)
	for i := range reqs {
		reqs[i] = gen.Next()
	}
	orc := shard.Precompute(reqs, shard.Config{SGX: sgx, NumBlocks: nBlocks, Shards: shards})
	defer sc.SetContentEntry(nil)

	det := ShardDetail{
		Ledgers:  make([]obs.Ledger, shards),
		ReadLat:  make([]LatencyHist, shards),
		WriteLat: make([]LatencyHist, shards),
		Registry: obs.NewRegistry(),
	}
	var snap obs.Ledger
	var psnap, delta *obs.Ledger
	if probe != nil {
		psnap, delta = new(obs.Ledger), new(obs.Ledger)
	}
	for i := 0; i < nReq; i++ {
		req := &reqs[i]
		orc.Wait(i)
		e := &orc.Entries[i]
		addr := req.Block % nBlocks
		owner := shard.Owner(addr, sgx, shards)
		snap = *att // before the gap: CPU idle time is charged to the owner too
		ctrl.AdvanceTo(ctrl.Now() + req.GapNS)
		issue := ctrl.Now()
		if probe != nil {
			*psnap = *att
		}
		sc.SetContentEntry(e)
		if req.Op == trace.OpWrite {
			// Fast retires charge attribution immediately, so the per-owner
			// Since() delta below stays exact either way.
			if !(useFast && fl.TryFastWrite(addr, &e.Data)) {
				if err := ctrl.WriteBlock(addr, e.Data); err != nil {
					return res, det, fmt.Errorf("sim: request %d (write %d): %w", i, addr, err)
				}
			}
			lat := ctrl.Now() - issue
			res.WriteLat.Add(lat)
			det.WriteLat[owner].Add(lat)
			if probe != nil {
				*delta = att.Since(psnap)
				probe.Request(obs.EvWriteReq, addr, issue, ctrl.Now(), delta)
			}
		} else {
			if !(useFast && fl.TryFastRead(addr)) {
				if _, err := ctrl.ReadBlock(addr); err != nil {
					return res, det, fmt.Errorf("sim: request %d (read %d): %w", i, addr, err)
				}
			}
			lat := ctrl.Now() - issue
			res.ReadLat.Add(lat)
			det.ReadLat[owner].Add(lat)
			if probe != nil {
				*delta = att.Since(psnap)
				probe.Request(obs.EvReadReq, addr, issue, ctrl.Now(), delta)
			}
		}
		sc.SetContentEntry(nil)
		d := att.Since(&snap)
		det.Ledgers[owner].Merge(&d)
	}
	// Any open burst folds in before the closing drain snapshot; flushed
	// work is timeless, so it never perturbs the decomposition.
	if useFast {
		fl.FlushFastRun()
	}
	snap = *att
	if f, ok := ctrl.(epochFlusher); ok {
		if err := f.FlushEpoch(); err != nil {
			return res, det, fmt.Errorf("sim: epoch flush: %w", err)
		}
	}
	// The closing drain belongs to no single request; charge it to
	// shard 0 by convention so the decomposition stays exact.
	d := att.Since(&snap)
	det.Ledgers[0].Merge(&d)

	// All windows have been waited on, so the workers are done and the
	// fixed-order registry merge is race-free.
	if nReq > 0 {
		orc.Wait(nReq - 1)
	}
	orc.MergeRegistries(det.Registry)

	res.ExecNS = ctrl.Now()
	res.Stats = ctrl.Stats()
	return res, det, nil
}
