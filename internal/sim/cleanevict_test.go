package sim

import (
	"testing"

	"anubis/internal/cache"
	"anubis/internal/memctrl"
)

// Satellite regression tests for the CleanEvictionFrac selection fix:
// the metric must pick the cache by controller FAMILY, never by "which
// cache happens to have evictions". The old fallback read the Merkle
// tree cache whenever the counter cache had zero evictions, silently
// reporting tree evictions as Figure 7 data for short Bonsai runs
// whose counter working set still fit.

func statsResult(f Family, counter, tree cache.Stats) Result {
	var r Result
	r.Family = f
	r.Stats.CounterCache = counter
	r.Stats.TreeCache = tree
	return r
}

func TestCleanEvictionFracSelectsByFamily(t *testing.T) {
	counter := cache.Stats{Evictions: 100, CleanEvictions: 25}
	tree := cache.Stats{Evictions: 10, CleanEvictions: 10}

	if got := statsResult(FamilyBonsai, counter, tree).CleanEvictionFrac(); got != 0.25 {
		t.Fatalf("bonsai frac = %v, want 0.25 (counter cache)", got)
	}
	if got := statsResult(FamilySGX, counter, tree).CleanEvictionFrac(); got != 1.0 {
		t.Fatalf("sgx frac = %v, want 1.0 (combined metadata cache)", got)
	}
}

func TestCleanEvictionFracNoSilentFallback(t *testing.T) {
	// The regression shape: Bonsai counter cache fits (zero evictions)
	// while the tree cache is churning. The metric must report 0 —
	// there were no counter-cache evictions to classify — instead of
	// the tree cache's 80%.
	counter := cache.Stats{}
	tree := cache.Stats{Evictions: 50, CleanEvictions: 40}
	if got := statsResult(FamilyBonsai, counter, tree).CleanEvictionFrac(); got != 0 {
		t.Fatalf("bonsai frac = %v, want 0 (no counter evictions; must not fall back to tree cache)", got)
	}
	// Symmetric case for SGX: empty metadata cache stats stay 0 even if
	// the (unused for this family) counter field carries numbers.
	if got := statsResult(FamilySGX, cache.Stats{Evictions: 9, CleanEvictions: 9}, cache.Stats{}).CleanEvictionFrac(); got != 0 {
		t.Fatalf("sgx frac = %v, want 0", got)
	}
}

// TestRunTagsFamily checks sim.Run stamps the Result with the right
// family for both controller types, so the metric selection above acts
// on trustworthy input.
func TestRunTagsFamily(t *testing.T) {
	prof := profFor(t, "libquantum")
	if res := runOne(t, FamilyBonsai, memctrl.SchemeAGITPlus, prof, 500); res.Family != FamilyBonsai {
		t.Fatalf("bonsai run tagged %v", res.Family)
	}
	if res := runOne(t, FamilySGX, memctrl.SchemeASIT, prof, 500); res.Family != FamilySGX {
		t.Fatalf("sgx run tagged %v", res.Family)
	}
}
