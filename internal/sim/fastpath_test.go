package sim

import (
	"reflect"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/trace"
)

// fastCase enumerates the fast-path identity matrix: every scheme of
// both families (eligible or not — ineligible schemes must simply never
// engage, not diverge), at the epoch windows and shard counts the bench
// -fastpath-sweep gate also covers.
type fastCase struct {
	name   string
	family Family
	scheme memctrl.Scheme
}

func fastCases() []fastCase {
	return []fastCase{
		{"bonsai/writeback", FamilyBonsai, memctrl.SchemeWriteBack},
		{"bonsai/strict", FamilyBonsai, memctrl.SchemeStrict},
		{"bonsai/osiris", FamilyBonsai, memctrl.SchemeOsiris},
		{"bonsai/agit-read", FamilyBonsai, memctrl.SchemeAGITRead},
		{"bonsai/agit-plus", FamilyBonsai, memctrl.SchemeAGITPlus},
		{"bonsai/triad", FamilyBonsai, memctrl.SchemeTriad},
		{"bonsai/selective", FamilyBonsai, memctrl.SchemeSelective},
		{"sgx/writeback", FamilySGX, memctrl.SchemeWriteBack},
		{"sgx/strict", FamilySGX, memctrl.SchemeStrict},
		{"sgx/osiris", FamilySGX, memctrl.SchemeOsiris},
		{"sgx/asit", FamilySGX, memctrl.SchemeASIT},
	}
}

// TestFastPathByteIdentical is the tentpole contract: at seed 99 the
// hit-burst fast path produces a Result deep-equal to the stepped
// engine — clock, stats, device traffic, cache statistics, attribution
// ledger, latency histograms — for every scheme × family × epoch
// window × shard count. The lane must also actually engage on the
// cache-friendly cells, or the identity check would be vacuous.
func TestFastPathByteIdentical(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	const n, seed = 4000, 99
	engaged := false
	for _, c := range fastCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, epoch := range []int{0, 4, 16} {
				cfg := simConfig(c.scheme)
				cfg.EpochRequests = epoch
				ctrl, err := NewController(c.family, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(ctrl, trace.NewGenerator(prof, seed), n)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 4} {
					ctrl, err := NewController(c.family, cfg)
					if err != nil {
						t.Fatal(err)
					}
					var got Result
					if shards == 1 {
						got, err = RunFast(ctrl, trace.NewGenerator(prof, seed), n)
					} else {
						got, err = RunShardedFast(ctrl, trace.NewGenerator(prof, seed), n, shards)
					}
					if err != nil {
						t.Fatalf("epoch=%d shards=%d: %v", epoch, shards, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("epoch=%d shards=%d: fast-path result differs from stepped engine\n got: %+v\nwant: %+v",
							epoch, shards, got, want)
					}
					if fl, ok := ctrl.(interface {
						FastPathStats() (uint64, uint64)
					}); ok {
						if _, reqs := fl.FastPathStats(); reqs > 0 {
							engaged = true
						}
					}
				}
			}
		})
	}
	if !engaged {
		t.Fatal("fast path never engaged on any cell; identity checks were vacuous")
	}
}

// TestFastPathEngages pins the non-vacuousness floor per family: on a
// cache-friendly profile the steady state is hit-dominated, so the lane
// must retire a substantial fraction of requests in closed form.
func TestFastPathEngages(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	const n = 6000
	for _, c := range []fastCase{
		{"bonsai/agit-plus", FamilyBonsai, memctrl.SchemeAGITPlus},
		{"sgx/writeback", FamilySGX, memctrl.SchemeWriteBack},
	} {
		ctrl, err := NewController(c.family, simConfig(c.scheme))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunFast(ctrl, trace.NewGenerator(prof, 99), n); err != nil {
			t.Fatal(err)
		}
		fl := ctrl.(interface {
			FastPathStats() (uint64, uint64)
		})
		batches, reqs := fl.FastPathStats()
		if reqs < n/4 {
			t.Fatalf("%s: fast path retired %d of %d requests, want at least %d", c.name, reqs, n, n/4)
		}
		if batches == 0 || batches > reqs {
			t.Fatalf("%s: implausible batch count %d for %d fast requests", c.name, batches, reqs)
		}
	}
}

// thrashSource alternates, every single request, between a block whose
// metadata line is pinned hot and a sweep over a footprint far larger
// than the counter cache — so the guard flips eligible/ineligible at
// the highest possible frequency. This is the adversarial profile for
// the burst machinery: every batch is forced closed after at most one
// request, and the exact-fallback boundary is crossed ~n times.
func thrashTrace(n int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		r := &reqs[i]
		r.GapNS = uint64(10 + i%13)
		if i%2 == 0 {
			r.Op = trace.OpWrite
			r.Block = 0 // hot: resident after first touch
		} else {
			// Cold sweep with a huge page stride: misses essentially every
			// time in a small counter cache.
			if i%4 == 1 {
				r.Op = trace.OpWrite
			} else {
				r.Op = trace.OpRead
			}
			r.Block = uint64(64 + (i*4099)%100000)
		}
	}
	return reqs
}

// TestFastPathFallbackThrash drives the alternating hit/miss profile
// through every scheme × epoch window: guard enter/exit on every
// request must stay byte-identical to the stepped engine, and the lane
// must never batch across an ineligible boundary (each flushed batch
// then holds at most a couple of requests — asserted via the
// batches/requests telemetry on a cell known to engage).
func TestFastPathFallbackThrash(t *testing.T) {
	const n = 3000
	reqs := thrashTrace(n)
	for _, c := range fastCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, epoch := range []int{0, 4} {
				cfg := simConfig(c.scheme)
				cfg.EpochRequests = epoch
				// Tiny metadata caches: the cold half of the trace misses.
				cfg.CounterCacheBlocks = 64
				cfg.CounterCacheWays = 4
				cfg.MetaCacheBlocks = 64
				cfg.MetaCacheWays = 4
				ctrl, err := NewController(c.family, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(ctrl, &sliceSource{name: "thrash", reqs: reqs}, n)
				if err != nil {
					t.Fatal(err)
				}
				ctrl, err = NewController(c.family, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunFast(ctrl, &sliceSource{name: "thrash", reqs: reqs}, n)
				if err != nil {
					t.Fatalf("epoch=%d: %v", epoch, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("epoch=%d: thrash run diverged under fast path\n got: %+v\nwant: %+v", epoch, got, want)
				}
			}
		})
	}

	// Boundary containment on an engaging cell: with eligibility flipping
	// every request, no batch may span an ineligible request, so the
	// average flushed batch stays tiny (a spanning batch would merge the
	// hot-side runs into a few giant bursts).
	cfg := simConfig(memctrl.SchemeWriteBack)
	cfg.CounterCacheBlocks = 64
	cfg.CounterCacheWays = 4
	ctrl, err := NewController(FamilyBonsai, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFast(ctrl, &sliceSource{name: "thrash", reqs: reqs}, n); err != nil {
		t.Fatal(err)
	}
	fl := ctrl.(interface {
		FastPathStats() (uint64, uint64)
	})
	batches, fastReqs := fl.FastPathStats()
	if fastReqs == 0 {
		t.Fatal("thrash trace never engaged the fast path; containment check is vacuous")
	}
	if avg := float64(fastReqs) / float64(batches); avg > 4 {
		t.Fatalf("average batch size %.1f across %d batches: bursts are spanning ineligible boundaries", avg, batches)
	}
}

// TestFastPathLedgerSumExact is the drift safety net (DESIGN.md §11,
// §14): under the fast path, the run ledger must still account for
// every simulated nanosecond — Total() == ExecNS — across schemes,
// families and epoch windows. A closed-form batch that drops or
// double-books any component breaks this long before the DeepEqual
// identity test localizes it.
func TestFastPathLedgerSumExact(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	const n = 2500
	for _, c := range fastCases() {
		for _, epoch := range []int{0, 8} {
			cfg := simConfig(c.scheme)
			cfg.EpochRequests = epoch
			ctrl, err := NewController(c.family, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunFast(ctrl, trace.NewGenerator(prof, 99), n)
			if err != nil {
				t.Fatalf("%s epoch=%d: %v", c.name, epoch, err)
			}
			if got := res.Stats.Attribution.Total(); got != res.ExecNS {
				t.Fatalf("%s epoch=%d: fast-path ledger sums to %d, ExecNS is %d (%+v)",
					c.name, epoch, got, res.ExecNS, res.Stats.Attribution.Map())
			}
		}
	}
}

// TestFastPathShardedLedgerSumExact extends the sum-exact property to
// the sharded decomposition under the fast path: per-owner ledgers must
// still fold to the global ledger when bursts retire on the spine.
func TestFastPathShardedLedgerSumExact(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	const n = 2500
	for _, shards := range []int{1, 4} {
		cfg := simConfig(memctrl.SchemeAGITPlus)
		ctrl, err := NewController(FamilyBonsai, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, det, err := RunShardedDetailFast(ctrl, trace.NewGenerator(prof, 99), n, shards)
		if err != nil {
			t.Fatal(err)
		}
		var folded obs.Ledger
		for s := range det.Ledgers {
			folded.Merge(&det.Ledgers[s])
		}
		if folded.Total() != res.ExecNS {
			t.Fatalf("shards=%d: folded per-shard ledgers sum to %d, ExecNS is %d", shards, folded.Total(), res.ExecNS)
		}
		if !reflect.DeepEqual(folded, res.Stats.Attribution) {
			t.Fatalf("shards=%d: folded ledgers %+v differ from global ledger %+v", shards, folded.Map(), res.Stats.Attribution.Map())
		}
	}
}

// TestFastPathToggleMidstream exercises SetFastPath toggling between
// runs of the same controller: lane on, off, on again — the combined
// history must match an uninterrupted stepped history, proving the
// enter/exit contract leaves no residue.
func TestFastPathToggleMidstream(t *testing.T) {
	prof, _ := trace.ByName("libquantum")
	const chunk = 1500
	cfg := simConfig(memctrl.SchemeOsiris)
	mk := func() memctrl.Controller {
		ctrl, err := NewController(FamilyBonsai, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	ref, refGen := mk(), trace.NewGenerator(prof, 7)
	tog, togGen := mk(), trace.NewGenerator(prof, 7)
	var wantLast, gotLast Result
	for leg, fast := range []bool{false, true, false, true} {
		var err error
		if wantLast, err = Run(ref, refGen, chunk); err != nil {
			t.Fatal(err)
		}
		if fast {
			gotLast, err = RunFast(tog, togGen, chunk)
		} else {
			gotLast, err = Run(tog, togGen, chunk)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotLast, wantLast) {
			t.Fatalf("leg %d (fast=%v): toggled history diverged from stepped history", leg, fast)
		}
	}
}
