package memctrl

import (
	"anubis/internal/cache"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
)

// Controller forking.
//
// Clone produces a child controller that behaves byte-for-byte like a
// controller that executed the parent's entire request history, at the
// cost of copying only the volatile state (on-chip caches, shadow
// mirrors, wear mapping, clocks, statistics) plus the NVM device's
// page directories: the multi-megabyte stored image itself is shared
// copy-on-write through nvm.Device.Fork, and a 16-block page is
// duplicated only when parent or child first writes to it.
//
// Sharing rules (why each field is copied the way it is):
//
//   - dev: nvm.Device.Fork — COW image, value-cloned WPQ/bank/port
//     clocks, commit-group state, and register file.
//   - eng: the crypto engine is shared. It is deterministic (keyed
//     test engine), stateless per call, and safe for concurrent use
//     (its scratch lives in a sync.Pool), so parent and children can
//     run on different goroutines of a sweep pool.
//   - geom/stGeom: merkle.Geometry contains slices but is immutable
//     after construction — shared by value copy.
//   - defNode/defNodeHash: immutable after initTreeDefaults, but tiny
//     (one entry per tree level); copied for full independence.
//   - caches, shadow mirrors, update counters, wear state, pending
//     write group, writeback queue: exact value clones.
//
// After Clone, parent and child may both keep running, crash, recover,
// and be cloned again, in any order; on different goroutines they may
// run concurrently (the only shared mutable machinery — COW page
// duplication — is keyed by per-store owner tags, and each side
// installs copies only into its own directories).

// Clone implements Controller.
func (b *Bonsai) Clone() Controller {
	// Close any open fast-lane burst: its run state holds a pointer into
	// the parent's cache, which the shallow copy below must never share.
	b.flushFastRun()
	n := new(Bonsai)
	*n = *b
	n.dev = b.dev.Fork()
	n.cCache = b.cCache.Clone()
	n.tCache = b.tCache.Clone()
	if b.sct != nil {
		n.sct = b.sct.Clone()
		n.smt = b.smt.Clone()
	}
	n.updateCount = b.updateCount.Clone()
	n.defNode = append([]merkle.GNode(nil), b.defNode...)
	n.defNodeHash = append([]uint64(nil), b.defNodeHash...)
	n.wl = b.wl.clone(n.dev)
	n.pending = append([]nvm.PendingWrite(nil), b.pending...)
	if b.epochDirty != nil {
		n.epochDirty = make(map[uint64]struct{}, len(b.epochDirty))
		for p := range b.epochDirty {
			n.epochDirty[p] = struct{}{}
		}
	}
	// Close-time scratch is rebuilt on demand; sharing the backing
	// arrays across goroutines would race.
	n.epochPages, n.epochHash = nil, nil
	// Probes are per-controller observers (a trace Scope's sampling
	// counter is not goroutine-safe); clones start unobserved and the
	// caller attaches its own probe if it wants one.
	n.probe = nil
	return n
}

// Clone implements Controller.
func (c *SGX) Clone() Controller {
	c.flushFastRun() // see Bonsai.Clone
	n := new(SGX)
	*n = *c
	n.dev = c.dev.Fork()
	n.mCache = c.mCache.Clone()
	n.updateCount = c.updateCount.Clone()
	if c.st != nil {
		n.st = c.st.Clone()
		n.stNodes = make([][]merkle.GNode, len(c.stNodes))
		for i, lvl := range c.stNodes {
			n.stNodes[i] = append([]merkle.GNode(nil), lvl...)
		}
	}
	n.wl = c.wl.clone(n.dev)
	n.pending = append([]nvm.PendingWrite(nil), c.pending...)
	n.wbq = append([]cache.Victim(nil), c.wbq...)
	if c.epochSlots != nil {
		n.epochSlots = make(map[uint64]struct{}, len(c.epochSlots))
		for s := range c.epochSlots {
			n.epochSlots[s] = struct{}{}
		}
	}
	// Close-time scratch is rebuilt on demand; see Bonsai.Clone.
	n.epochOrder, n.epochHash = nil, nil
	n.probe = nil // see Bonsai.Clone
	return n
}
