package memctrl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"anubis/internal/nvm"
)

// Satellite: the two controller families must report unrecoverable
// schemes identically — always *wrapped* sentinels with context, so
// errors.Is works the same way for both and callers can log the reason.

func TestNotRecoverableWrappedUniformly(t *testing.T) {
	mk := []struct {
		name string
		ctor func() (Controller, error)
	}{
		{"bonsai/write-back", func() (Controller, error) { return NewBonsai(TestConfig(SchemeWriteBack)) }},
		{"sgx/write-back", func() (Controller, error) { return NewSGX(TestConfig(SchemeWriteBack)) }},
		{"sgx/osiris", func() (Controller, error) { return NewSGX(TestConfig(SchemeOsiris)) }},
	}
	for _, tc := range mk {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.ctor()
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 50; i++ {
				if err := c.WriteBlock(i%c.NumBlocks(), pattern(i)); err != nil {
					t.Fatal(err)
				}
			}
			c.Crash()
			_, rerr := c.Recover()
			if !errors.Is(rerr, ErrNotRecoverable) {
				t.Fatalf("Recover = %v, want errors.Is(ErrNotRecoverable)", rerr)
			}
			if rerr == ErrNotRecoverable { //nolint:errorlint // asserting wrapping, not identity
				t.Fatal("Recover returned the bare sentinel; want a wrapped error with context")
			}
			if errors.Is(rerr, ErrUnrecoverable) {
				t.Fatalf("Recover = %v matches ErrUnrecoverable too; sentinels must be distinct", rerr)
			}
		})
	}
}

func TestRecoveryErrorsWrapUnrecoverable(t *testing.T) {
	// A corrupt SCT key beyond the counter region must surface as a
	// typed ErrUnrecoverable — not a panic inside the wear-leveling map
	// or Geometry.Unflat.
	t.Run("bonsai/agit-corrupt-sct-key", func(t *testing.T) {
		b := newBonsai(t, SchemeAGITRead)
		for i := uint64(0); i < 200; i++ {
			if err := b.WriteBlock(i*13%b.NumBlocks(), pattern(i)); err != nil {
				t.Fatal(err)
			}
		}
		b.Crash()
		var blk [BlockBytes]byte
		binary.LittleEndian.PutUint64(blk[:8], 1<<40) // key+1 encoding: a huge bogus page
		b.Device().WriteRaw(nvm.RegionSCT, 0, blk)
		_, err := b.Recover()
		if !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("Recover with corrupt SCT key = %v, want ErrUnrecoverable", err)
		}
	})
	t.Run("bonsai/agit-corrupt-smt-key", func(t *testing.T) {
		b := newBonsai(t, SchemeAGITPlus)
		for i := uint64(0); i < 200; i++ {
			if err := b.WriteBlock(i*13%b.NumBlocks(), pattern(i)); err != nil {
				t.Fatal(err)
			}
		}
		b.Crash()
		var blk [BlockBytes]byte
		binary.LittleEndian.PutUint64(blk[:8], 1<<40)
		b.Device().WriteRaw(nvm.RegionSMT, 0, blk)
		_, err := b.Recover()
		if !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("Recover with corrupt SMT key = %v, want ErrUnrecoverable", err)
		}
	})
	// Unknown schemes fail typed in both families.
	t.Run("unknown-scheme", func(t *testing.T) {
		b := newBonsai(t, SchemeStrict)
		b.cfg.Scheme = Scheme(99)
		b.Crash()
		if _, err := b.Recover(); !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("bonsai unknown scheme: Recover = %v, want ErrUnrecoverable", err)
		}
		c := newSGX(t, SchemeStrict)
		c.cfg.Scheme = Scheme(99)
		c.Crash()
		if _, err := c.Recover(); !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("sgx unknown scheme: Recover = %v, want ErrUnrecoverable", err)
		}
	})
}

func TestIntegrityErrorAs(t *testing.T) {
	// Post-recovery verification failures are *IntegrityError: callers
	// (the fuzzer's differential oracle) distinguish "typed verification
	// failure" from silent corruption with errors.As.
	b := newBonsai(t, SchemeStrict)
	if err := b.WriteBlock(7, pattern(7)); err != nil {
		t.Fatal(err)
	}
	b.FlushCaches()
	b.Device().CorruptBlock(nvm.RegionData, 7, 3, 0xff)
	_, err := b.ReadBlock(7)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("ReadBlock on corrupt data = %v, want *IntegrityError", err)
	}
	if ie.Addr != 7 || ie.What == "" {
		t.Fatalf("IntegrityError lacks context: %+v", ie)
	}
	// Wrapping an IntegrityError keeps errors.As working.
	wrapped := fmt.Errorf("oracle: %w", err)
	if !errors.As(wrapped, &ie) {
		t.Fatal("errors.As failed through a wrapping layer")
	}
}
