package memctrl

import (
	"math/rand"
	"testing"
)

func newTriad(t *testing.T, levels int) *Bonsai {
	t.Helper()
	cfg := TestConfig(SchemeTriad)
	cfg.TriadLevels = levels
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTriadRecoversAtEveryLevel(t *testing.T) {
	for levels := 0; levels <= 3; levels++ {
		b := newTriad(t, levels)
		rng := rand.New(rand.NewSource(int64(levels)))
		expect := map[uint64][BlockBytes]byte{}
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(int(b.NumBlocks())))
			d := pattern(uint64(i))
			if err := b.WriteBlock(addr, d); err != nil {
				t.Fatalf("levels %d: %v", levels, err)
			}
			expect[addr] = d
		}
		b.Crash()
		if _, err := b.Recover(); err != nil {
			t.Fatalf("levels %d: %v", levels, err)
		}
		for addr, want := range expect {
			got, err := b.ReadBlock(addr)
			if err != nil || got != want {
				t.Fatalf("levels %d block %d: %v", levels, addr, err)
			}
		}
	}
}

func TestTriadRecoveryCostDropsWithLevels(t *testing.T) {
	// The Triad-NVM trade-off: each persisted level divides the rebuild
	// work by the tree arity.
	ops := func(levels int) uint64 {
		b := newTriad(t, levels)
		for i := uint64(0); i < 200; i++ {
			b.WriteBlock(i*64%b.NumBlocks(), pattern(i))
		}
		b.Crash()
		rep, err := b.Recover()
		if err != nil {
			t.Fatal(err)
		}
		return rep.FetchOps + rep.CryptoOps
	}
	l0, l1, l2 := ops(0), ops(1), ops(2)
	if !(l0 > l1 && l1 > l2) {
		t.Fatalf("recovery ops not decreasing with persisted levels: %d, %d, %d", l0, l1, l2)
	}
}

func TestTriadRuntimeCostGrowsWithLevels(t *testing.T) {
	run := func(levels int) uint64 {
		cfg := TestConfig(SchemeTriad)
		cfg.TriadLevels = levels
		b, err := NewBonsai(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 2000; i++ {
			b.AdvanceTo(b.Now() + 50)
			if err := b.WriteBlock((i*97)%b.NumBlocks(), pattern(i)); err != nil {
				t.Fatal(err)
			}
		}
		return b.Now()
	}
	if run(3) <= run(0) {
		t.Fatal("persisting more levels should cost more run time")
	}
}

func TestTriadNoDataReadsDuringRecovery(t *testing.T) {
	// Unlike Osiris, Triad never touches data blocks at recovery:
	// counters are strictly persisted.
	b := newTriad(t, 1)
	for i := uint64(0); i < 200; i++ {
		b.WriteBlock(i*63%b.NumBlocks(), pattern(i))
	}
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountersFixed != 0 {
		t.Fatalf("triad fixed %d counters; they are strictly persisted", rep.CountersFixed)
	}
}

func TestTriadCrashLoop(t *testing.T) {
	b := newTriad(t, 2)
	rng := rand.New(rand.NewSource(17))
	expect := map[uint64][BlockBytes]byte{}
	for round := 0; round < 4; round++ {
		tortureRound(t, b, rng, expect, 200, round == 2)
	}
}

func TestTriadLevelsBeyondTreeHeight(t *testing.T) {
	// TriadLevels larger than the tree degenerates to strict persistence
	// of the whole path; recovery must still work.
	b := newTriad(t, 99)
	b.WriteBlock(7, pattern(7))
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodesRebuilt != 0 {
		t.Fatalf("fully persisted tree rebuilt %d nodes", rep.NodesRebuilt)
	}
	got, err := b.ReadBlock(7)
	if err != nil || got != pattern(7) {
		t.Fatalf("read: %v", err)
	}
}
