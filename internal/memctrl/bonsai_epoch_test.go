package memctrl

import (
	"errors"
	"testing"

	"anubis/internal/counter"
)

var epochSchemes = []Scheme{
	SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeAGITRead,
	SchemeAGITPlus, SchemeSelective, SchemeTriad,
}

func newEpochBonsai(t *testing.T, s Scheme, epoch int) *Bonsai {
	t.Helper()
	cfg := TestConfig(s)
	cfg.EpochRequests = epoch
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEpochWriteReadRoundTrip(t *testing.T) {
	for _, s := range epochSchemes {
		t.Run(s.String(), func(t *testing.T) {
			b := newEpochBonsai(t, s, 4)
			n := b.NumBlocks()
			// One block per page: far more pages than the tiny caches
			// hold, so mid-epoch evictions and journal-override refetches
			// are exercised, across many epoch closes.
			for i := uint64(0); i < 200; i++ {
				addr := (i * counter.SplitMinors) % n
				if err := b.WriteBlock(addr, pattern(i)); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 200; i++ {
				addr := (i * counter.SplitMinors) % n
				got, err := b.ReadBlock(addr)
				if err != nil {
					t.Fatalf("read back %d: %v", i, err)
				}
				if got != pattern(i) {
					t.Fatalf("page %d corrupted", i)
				}
			}
		})
	}
}

// TestEpochOneIsStructurallyLegacy checks the byte-identity contract:
// EpochRequests 0 and 1 both select the legacy path, producing identical
// timing, statistics, and persistent device state.
func TestEpochOneIsStructurallyLegacy(t *testing.T) {
	for _, s := range epochSchemes {
		t.Run(s.String(), func(t *testing.T) {
			run := func(epoch int) *Bonsai {
				b := newEpochBonsai(t, s, epoch)
				for i := uint64(0); i < 120; i++ {
					addr := (i * 37) % b.NumBlocks()
					if err := b.WriteBlock(addr, pattern(i)); err != nil {
						t.Fatal(err)
					}
					if i%3 == 0 {
						if _, err := b.ReadBlock(addr); err != nil {
							t.Fatal(err)
						}
					}
				}
				return b
			}
			a, c := run(0), run(1)
			if a.Now() != c.Now() {
				t.Fatalf("virtual clocks diverge: %d vs %d", a.Now(), c.Now())
			}
			if a.Stats() != c.Stats() {
				t.Fatalf("stats diverge:\n%+v\n%+v", a.Stats(), c.Stats())
			}
			if a.Device().StateDigest() != c.Device().StateDigest() {
				t.Fatal("persistent state diverges")
			}
		})
	}
}

// TestEpochRootMatchesLegacyAfterClose checks that after the window
// drains, the coalesced updates anchor the exact same root the eager
// per-write path would have: the tree is a function of counter content
// only.
func TestEpochRootMatchesLegacyAfterClose(t *testing.T) {
	for _, s := range epochSchemes {
		t.Run(s.String(), func(t *testing.T) {
			write := func(b *Bonsai) {
				for i := uint64(0); i < 100; i++ {
					addr := (i * counter.SplitMinors * 3) % b.NumBlocks()
					if err := b.WriteBlock(addr, pattern(i)); err != nil {
						t.Fatal(err)
					}
				}
			}
			legacy, epoch := newEpochBonsai(t, s, 0), newEpochBonsai(t, s, 16)
			write(legacy)
			write(epoch)
			if err := epoch.FlushEpoch(); err != nil {
				t.Fatal(err)
			}
			lr, _ := legacy.Device().GetReg64(regBonsaiRoot)
			er, _ := epoch.Device().GetReg64(regBonsaiRoot)
			if lr != er {
				t.Fatalf("root registers disagree after close: %#x vs %#x", lr, er)
			}
			if epoch.Device().JournalLen() != 0 {
				t.Fatalf("journal not cleared by close: %d entries", epoch.Device().JournalLen())
			}
		})
	}
}

// TestEpochJournalLifecycle checks the journal mirrors the open window:
// entries accumulate mid-epoch and the close's atomic group clears them.
func TestEpochJournalLifecycle(t *testing.T) {
	b := newEpochBonsai(t, SchemeAGITPlus, 4)
	for i := uint64(0); i < 3; i++ {
		if err := b.WriteBlock(i*counter.SplitMinors, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Device().JournalLen(); got != 3 {
		t.Fatalf("mid-epoch journal has %d entries, want 3", got)
	}
	if err := b.WriteBlock(3*counter.SplitMinors, pattern(3)); err != nil {
		t.Fatal(err)
	}
	if got := b.Device().JournalLen(); got != 0 {
		t.Fatalf("journal survived the close: %d entries", got)
	}
}

// TestEpochMidWindowCrashRecovery is the heart of the coalescing
// buffer's persistence contract: a crash with the window open (deferred
// tree updates not yet drained) must recover through the two-pass
// journal replay for every root-anchored scheme.
func TestEpochMidWindowCrashRecovery(t *testing.T) {
	for _, s := range epochSchemes {
		t.Run(s.String(), func(t *testing.T) {
			b := newEpochBonsai(t, s, 1<<20) // window never closes on its own
			n := b.NumBlocks()
			for i := uint64(0); i < 60; i++ {
				addr := (i * counter.SplitMinors) % n
				if err := b.WriteBlock(addr, pattern(i)); err != nil {
					t.Fatal(err)
				}
			}
			if b.Device().JournalLen() == 0 {
				t.Fatal("window closed unexpectedly")
			}
			b.Crash()
			rep, err := b.Recover()
			if s == SchemeWriteBack {
				if !errors.Is(err, ErrNotRecoverable) {
					t.Fatalf("write-back recovery: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if rep.JournalPages == 0 {
				t.Fatal("recovery did not replay the epoch journal")
			}
			if b.Device().JournalLen() != 0 {
				t.Fatal("journal not cleared after recovery")
			}
			for i := uint64(0); i < 60; i++ {
				addr := (i * counter.SplitMinors) % n
				got, err := b.ReadBlock(addr)
				if err != nil {
					t.Fatalf("post-recovery read %d: %v", i, err)
				}
				if got != pattern(i) {
					t.Fatalf("block %d lost its latest value", addr)
				}
			}
		})
	}
}

// TestEpochHalfDrainedCloseRecovers crashes with the close's coalesced
// commit group half-drained (power loss mid-WPQ-drain): the DONE_BIT
// redo must replay the full group — node writes, root register, journal
// clear — before scheme recovery runs.
func TestEpochHalfDrainedCloseRecovers(t *testing.T) {
	for _, s := range []Scheme{SchemeStrict, SchemeTriad, SchemeAGITPlus} {
		t.Run(s.String(), func(t *testing.T) {
			b := newEpochBonsai(t, s, 4)
			for i := uint64(0); i < 3; i++ {
				if err := b.WriteBlock(i*counter.SplitMinors, pattern(i)); err != nil {
					t.Fatal(err)
				}
			}
			// The 4th write triggers the close. Budget: its own request
			// group drains fully, then power dies after the close group's
			// first entry — every close group has at least two (the root
			// register and the journal clear), so the group always tears.
			req := 2 // data + journal note
			if s == SchemeStrict || s == SchemeTriad {
				req++ // per-write counter persist
			}
			b.Device().SetPushBudget(req + 1)
			if err := b.WriteBlock(3*counter.SplitMinors, pattern(3)); err != nil {
				t.Fatal(err)
			}
			if !b.Device().DoneBit() {
				t.Fatal("close group drained fully; budget did not bite")
			}
			b.Crash()
			if _, err := b.Recover(); err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			for i := uint64(0); i < 4; i++ {
				got, err := b.ReadBlock(i * counter.SplitMinors)
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if got != pattern(i) {
					t.Fatalf("block %d lost its latest value", i)
				}
			}
		})
	}
}

// TestEpochPageOverflowFallsBackToLegacy checks a minor-counter
// overflow inside a window closes it and re-encrypts via the legacy
// path.
func TestEpochPageOverflowFallsBackToLegacy(t *testing.T) {
	b := newEpochBonsai(t, SchemeOsiris, 1<<20)
	for i := 0; i <= counter.MinorMax+1; i++ {
		if err := b.WriteBlock(0, pattern(uint64(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if b.Stats().PageOverflows == 0 {
		t.Fatal("overflow did not happen")
	}
	got, err := b.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != pattern(uint64(counter.MinorMax+1)) {
		t.Fatal("post-overflow value lost")
	}
	// The overflow write ran outside the window; later writes reopen it.
	if err := b.WriteBlock(counter.SplitMinors, pattern(7)); err != nil {
		t.Fatal(err)
	}
	if b.Device().JournalLen() == 0 {
		t.Fatal("window did not reopen after the overflow fallback")
	}
}

// TestEpochCoalescingReducesStrictTraffic is the point of the tentpole:
// under strict persistence, N writes sharing a root path must persist
// each shared ancestor once per epoch, not once per write.
func TestEpochCoalescingReducesStrictTraffic(t *testing.T) {
	run := func(epoch int) uint64 {
		b := newEpochBonsai(t, SchemeStrict, epoch)
		for i := uint64(0); i < 64; i++ {
			if err := b.WriteBlock(i%8, pattern(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.FlushEpoch(); err != nil {
			t.Fatal(err)
		}
		return b.Stats().StrictWrites
	}
	legacy, coalesced := run(0), run(16)
	if coalesced >= legacy {
		t.Fatalf("coalescing did not reduce strict writes: %d vs legacy %d", coalesced, legacy)
	}
}
