package memctrl

import (
	"fmt"
	"math/rand"
	"testing"

	"anubis/internal/counter"
	"anubis/internal/nvm"
)

// checkNVMConsistency verifies that every persisted metadata block's MAC
// matches its current trusted parent counter.
func checkNVMConsistency(c *SGX) error {
	check := func(r metaRef) error {
		region, idx := c.regionIdx(r)
		if !c.dev.Has(region, idx) {
			return nil
		}
		g := counter.UnpackSGX(c.dev.Read(region, idx))
		parent, slot, isRoot := c.parentOf(r)
		var pc uint64
		if isRoot {
			pc = c.rootNode.Ctr[slot]
		} else if l, ok := c.mCache.Peek(c.keyOf(parent)); ok {
			pg := counter.UnpackSGX(l.Data)
			pc = pg.Ctr[slot]
		} else {
			pregion, pidx := c.regionIdx(parent)
			pg := counter.UnpackSGX(c.dev.Read(pregion, pidx))
			pc = pg.Ctr[slot]
		}
		if g == (counter.SGX{}) && pc == 0 {
			return nil
		}
		if c.eng.SGXMAC(c.addrOf(r), g.Ctr[:], pc) != g.MAC {
			return fmt.Errorf("NVM block %v region=%v idx=%d ctrs=%v pc=%d MAC mismatch", r, region, idx, g.Ctr, pc)
		}
		return nil
	}
	for _, idx := range c.dev.BlocksIn(nvm.RegionCounter) {
		if err := check(metaRef{isLeaf: true, idx: idx}); err != nil {
			return err
		}
	}
	for _, flat := range c.dev.BlocksIn(nvm.RegionTree) {
		level, i := c.geom.Unflat(flat)
		if err := check(metaRef{level: level, idx: i}); err != nil {
			return err
		}
	}
	return nil
}

// TestASITInvariantPerOp verifies after every single operation (and
// after each crash+recovery) that every persisted metadata block's MAC
// matches its current trusted parent counter — the global consistency
// invariant of the lazy SGX tree.
func TestASITInvariantPerOp(t *testing.T) {
	cfg := TestConfig(SchemeASIT)
	ctrl, err := NewSGX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	op := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 150; i++ {
			addr := uint64(rng.Intn(int(ctrl.NumBlocks())))
			var d [BlockBytes]byte
			rng.Read(d[:])
			if err := ctrl.WriteBlock(addr, d); err != nil {
				t.Fatalf("round %d op %d write: %v", round, op, err)
			}
			if err := checkNVMConsistency(ctrl); err != nil {
				t.Fatalf("round %d op %d (write %d): %v", round, op, addr, err)
			}
			op++
			if i%3 == 0 {
				raddr := uint64(rng.Intn(int(ctrl.NumBlocks())))
				if _, err := ctrl.ReadBlock(raddr); err != nil {
					t.Fatalf("round %d op %d read %d: %v", round, op, raddr, err)
				}
				if err := checkNVMConsistency(ctrl); err != nil {
					t.Fatalf("round %d op %d (read %d): %v", round, op, raddr, err)
				}
				op++
			}
		}
		ctrl.Crash()
		if _, err := ctrl.Recover(); err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		if err := checkNVMConsistency(ctrl); err != nil {
			t.Fatalf("round %d post-recover: %v", round, err)
		}
	}
}

// TestASITHeavySoak shakes the ASIT implementation across many seeds
// with flushes, crashes, and full-data verification.
func TestASITHeavySoak(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		ctrl, err := NewSGX(TestConfig(SchemeASIT))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		expect := map[uint64][BlockBytes]byte{}
		for round := 0; round < 4; round++ {
			for i := 0; i < 200; i++ {
				addr := uint64(rng.Intn(int(ctrl.NumBlocks())))
				var d [BlockBytes]byte
				rng.Read(d[:])
				if err := ctrl.WriteBlock(addr, d); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				expect[addr] = d
				if i%3 == 0 {
					if _, err := ctrl.ReadBlock(uint64(rng.Intn(int(ctrl.NumBlocks())))); err != nil {
						t.Fatalf("seed %d read: %v", seed, err)
					}
				}
			}
			if round == 2 {
				ctrl.FlushCaches()
			}
			ctrl.Crash()
			if _, err := ctrl.Recover(); err != nil {
				t.Fatalf("seed %d round %d recover: %v", seed, round, err)
			}
			if err := checkNVMConsistency(ctrl); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			for addr, want := range expect {
				got, err := ctrl.ReadBlock(addr)
				if err != nil || got != want {
					t.Fatalf("seed %d round %d block %d: %v", seed, round, addr, err)
				}
			}
		}
	}
}
