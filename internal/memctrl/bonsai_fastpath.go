package memctrl

// Hit-burst fast path for the Bonsai family (see DESIGN.md §14).
//
// In steady state most requests of a cache-friendly profile are full
// hits whose latency is a closed-form function of current state: a read
// costs ReadNS (data fetch, visible residual past the free metadata
// walk) + HashNS (MAC check); a write costs HashNS (pipelined
// encrypt+MAC occupancy) with the data drain proceeding asynchronously.
// TryFastRead/TryFastWrite classify a request as fast-eligible with a
// conservative guard and retire it with exactly those closed-form
// charges, skipping the sorted-ring/heap scheduler walk, the split
// counter unpack/pack, the per-write Merkle path walk and the staging
// copies of the legacy path. Runs of consecutive writes to one counter
// page share a single deferred pack + tree walk + root-register update
// (eager mode) or a single journal note (epoch mode); the first
// ineligible request flushes the run and falls back to the byte-exact
// legacy path.
//
// Exactness contract: with the fast path on or off, every simulated
// metric — virtual clock, RunStats, device stats and wear, cache stats
// and LRU victim order, attribution ledger, journal and register
// content — is byte-identical. The guard only admits requests whose
// legacy execution provably (a) waits on nothing (WPQ below watermark,
// target bank idle, free WPQ slot), (b) performs no conditional side
// effects (no counter overflow, no stop-loss persist, no first-dirty
// shadow write, no epoch close, no wear-leveling remap, no eviction),
// and (c) commits exactly one data-region write per request plus
// timeless on-chip register/journal applies, so the one real dev.Push
// per write plus the deferred timeless work reproduces the stepped
// model exactly. Attribution is charged immediately per request (the
// amounts are closed-form constants), which keeps the sharded spine's
// per-owner ledger decomposition sum-exact.

import (
	"anubis/internal/cache"
	"anubis/internal/counter"
	"anubis/internal/ecc"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// bonsaiFastLane is the Bonsai fast-path state. The reads/writes
// counters are stats deferred from retired requests (folded into
// RunStats and device stats at flush); batches/requests are cumulative
// host-plane telemetry, deliberately outside RunStats so the simulated
// byte-identity surface is independent of whether the lane ran.
type bonsaiFastLane struct {
	enabled bool

	// Deferred bulk stats for the open burst.
	reads  uint64
	writes uint64

	// Open write run: consecutive fast writes to one counter page.
	open       bool
	oracle     bool
	page       uint64
	line       *cache.Line
	split      counter.Split    // evolving counters (non-oracle runs)
	ctrBlock   [BlockBytes]byte // last oracle entry's packed counter block
	leafHash   uint64           // last oracle entry's leaf hash
	pageWrites uint64
	epochStart [BlockBytes]byte // line content at run open (epoch journal Old)

	// Cumulative host-plane counters (FastPathStats).
	batches  uint64
	requests uint64
}

// SetFastPath enables or disables the hit-burst lane. Any open burst is
// flushed first, so toggling mid-run is always exact.
func (b *Bonsai) SetFastPath(on bool) {
	b.flushFastRun()
	b.fp.enabled = on
}

// FastPathStats reports cumulative host-plane telemetry: the number of
// flushed bursts that retired at least one fast request, and the total
// fast-retired requests. Never part of RunStats.
func (b *Bonsai) FastPathStats() (batches, requests uint64) {
	return b.fp.batches, b.fp.requests
}

// FlushFastRun closes any open write run and folds the burst's deferred
// stats into RunStats/device stats. All flushed work is timeless, so
// the flush is exact at any instant; every legacy entry point performs
// it defensively.
func (b *Bonsai) FlushFastRun() { b.flushFastRun() }

func (b *Bonsai) flushFastRun() {
	fp := &b.fp
	if fp.open {
		b.closeFastWriteRun()
	}
	if fp.reads == 0 && fp.writes == 0 {
		return
	}
	b.stats.ReadRequests += fp.reads
	b.stats.WriteRequests += fp.writes
	b.dev.AddBulkReads(nvm.RegionData, fp.reads)
	fp.batches++
	fp.requests += fp.reads + fp.writes
	fp.reads, fp.writes = 0, 0
}

// TryFastRead retires a read in closed form when its counter line is
// resident and the device would stall on nothing. It returns false —
// having changed nothing — when any guard fails; the caller then takes
// ReadBlock, whose defensive flush closes the burst first. Fast reads
// skip decryption and verification entirely (the simulation discards
// read data), so they never consult the possibly-mid-run counter bytes.
func (b *Bonsai) TryFastRead(idx uint64) bool {
	fp := &b.fp
	if !fp.enabled || b.crashed || b.probe != nil || b.wl != nil || idx >= b.numBlocks {
		return false
	}
	line, ok := b.cCache.Peek(idx / counter.SplitMinors)
	if !ok {
		return false
	}
	done, ok := b.dev.FastReadRetire(nvm.RegionData, idx, b.now)
	if !ok {
		return false
	}
	// Legacy equivalence: counter hit is free, so the data fetch's whole
	// ReadNS is the visible residual (data_read), then HashNS of MAC
	// verification (crypto).
	b.cCache.Touch(line)
	att := b.dev.Attr()
	att.Add(obs.CompDataRead, done-b.now)
	att.Add(obs.CompCrypto, b.cfg.HashNS)
	b.now = done + b.cfg.HashNS
	fp.reads++
	return true
}

// TryFastWrite retires a write in closed form when the full guard
// holds. Consecutive fast writes to one page form a run sharing a
// single deferred counter pack + tree walk + root-register push (eager
// mode) or journal note (epoch mode); a write to a different page
// closes the previous run first (run closes are timeless, so the
// interleaving stays exact).
func (b *Bonsai) TryFastWrite(idx uint64, data *[BlockBytes]byte) bool {
	fp := &b.fp
	if !fp.enabled || b.crashed || b.probe != nil || b.wl != nil || idx >= b.numBlocks {
		return false
	}
	switch b.cfg.Scheme {
	case SchemeWriteBack, SchemeOsiris, SchemeAGITRead, SchemeAGITPlus:
		// Eligible: per-write persists are conditional and guarded away.
	default:
		// Strict/Triad/Selective persist metadata on every write; the
		// legacy path is already the honest cost.
		return false
	}
	page, lane := idx/counter.SplitMinors, int(idx%counter.SplitMinors)
	e := b.oe
	if fp.open && (fp.page != page || fp.oracle != (e != nil)) {
		b.closeFastWriteRun()
	}
	if !fp.open && !b.openFastWriteRun(page, e != nil) {
		return false
	}
	// Per-write guards on the open run. A false return leaves the run
	// open with no state change; the legacy fallback flushes it.
	if e != nil {
		if e.Overflow {
			return false // page re-encryption: legacy path
		}
	} else if fp.split.Minors[lane] == counter.MinorMax {
		return false // minor overflow: legacy path re-encrypts
	}
	if b.stopLossApplies() && b.updateCount.Get(page)+1 >= b.cfg.StopLoss {
		return false // stop-loss persist would fire
	}
	if b.cfg.EpochRequests > 1 && b.epochWrites+1 >= b.cfg.EpochRequests {
		return false // this write closes the epoch window
	}
	if b.dev.PushBudget() != -1 || b.dev.DoneBit() || !b.dev.FastWriteOK(b.now) {
		return false
	}

	// Retire. Legacy equivalence: Lookup hit (Touch) + MarkDirty (never
	// a shadow write: AGIT+ runs require an already-dirty line), the
	// optional stop-loss count, counter increment, HashNS of engine
	// occupancy, and the one real data Push — which returns b.now
	// unchanged (FastWriteOK) and is bit-identical to the legacy
	// one-data-write commit group (PushBudget/DoneBit guards).
	line := fp.line
	b.cCache.Touch(line)
	b.cCache.MarkDirtyLine(line)
	if b.stopLossApplies() {
		b.updateCount.Inc(page)
	}
	var ctr uint64
	if e != nil {
		fp.ctrBlock, fp.leafHash, ctr = e.CtrBlock, e.LeafHash, e.Ctr
	} else {
		fp.split.Increment(lane) // cannot overflow: pre-checked
		ctr = fp.split.Counter(lane)
	}
	epoch := b.cfg.EpochRequests > 1
	if epoch && fp.pageWrites == 0 {
		b.epochDirty[page] = struct{}{}
	}
	fp.pageWrites++
	b.now += b.cfg.HashNS
	b.dev.Attr().Add(obs.CompCrypto, b.cfg.HashNS)
	var w nvm.PendingWrite
	if e != nil {
		w = nvm.PendingWrite{Region: nvm.RegionData, Index: idx, Block: e.CT, HasSide: true, Side: e.Side}
	} else {
		var ctBlk [BlockBytes]byte
		b.eng.EncryptTo(ctBlk[:], data[:], idx, ctr)
		side := nvm.Sideband{ECC: ecc.EncodeBlock(data[:]), MAC: b.eng.DataMAC(idx, ctr, data[:]), Phase: uint8(ctr)}
		w = nvm.PendingWrite{Region: nvm.RegionData, Index: idx, Block: ctBlk, HasSide: true, Side: side}
	}
	b.now = b.dev.Push(w, b.now)
	if epoch {
		b.epochWrites++
	}
	fp.writes++
	return true
}

// openFastWriteRun evaluates the once-per-run guard and captures run
// state. Pure on failure. Eager mode requires the whole Merkle path
// resident (the deferred close walk must be all hits) and, under AGIT+,
// already dirty (so neither the per-write MarkDirty nor the close
// walk's can trigger a shadow-table write). Epoch mode defers no tree
// work, so only the counter line matters.
func (b *Bonsai) openFastWriteRun(page uint64, oracle bool) bool {
	line, ok := b.cCache.Peek(page)
	if !ok {
		return false
	}
	agitPlus := b.cfg.Scheme == SchemeAGITPlus
	if agitPlus && !line.Dirty {
		return false
	}
	if b.cfg.EpochRequests <= 1 {
		childIdx := page
		for level := 0; level < b.geom.Levels(); level++ {
			nodeIdx := childIdx / merkle.Arity
			tl, resident := b.tCache.Peek(b.geom.Flat(level, nodeIdx))
			if !resident || (agitPlus && !tl.Dirty) {
				return false
			}
			childIdx = nodeIdx
		}
	}
	fp := &b.fp
	fp.open, fp.oracle, fp.page, fp.line = true, oracle, page, line
	fp.pageWrites = 0
	fp.epochStart = line.Data
	if !oracle {
		fp.split = counter.UnpackSplit(line.Data)
	}
	return true
}

// closeFastWriteRun retires the run's deferred page work: pack the
// final counter block into the cache line, then either one journal
// note standing in for the run's per-write notes (epoch mode — Old is
// sticky, so a single note with Old = run-start content and New = the
// final block is exactly what the per-write sequence leaves behind) or
// one tree walk + root-register push standing in for the per-write
// walks (eager mode — same-page writes overwrite the same path slots,
// and intermediate root values only ever reached the timeless,
// stat-free register). All timeless: safe at any instant, including
// the defensive flush inside Crash.
func (b *Bonsai) closeFastWriteRun() {
	fp := &b.fp
	if !fp.open {
		return
	}
	fp.open = false
	line := fp.line
	fp.line = nil
	if fp.pageWrites == 0 {
		return
	}
	var leafHash uint64
	if fp.oracle {
		line.Data = fp.ctrBlock
		leafHash = fp.leafHash
	} else {
		line.Data = fp.split.Pack()
		leafHash = b.eng.ContentHash(line.Data[:])
	}
	if b.cfg.EpochRequests > 1 {
		b.now = b.dev.Push(nvm.PendingWrite{JOp: nvm.JournalNote, JKey: fp.page, JOld: fp.epochStart, Block: line.Data}, b.now)
		return
	}
	// The skipped per-write walks were pure cache hits; credit them so
	// tree-cache hit statistics match the stepped model.
	if fp.pageWrites > 1 {
		b.tCache.AddHits((fp.pageWrites - 1) * uint64(b.geom.Levels()))
	}
	if err := b.updateTreePath(fp.page, leafHash); err != nil {
		// Unreachable: the run-open guard proved the path resident and
		// runs admit no inserts, so the walk is all hits.
		panic("memctrl: fast-path close tree walk failed: " + err.Error())
	}
	var rootBlk [BlockBytes]byte
	putU64(rootBlk[:], b.rootHash)
	b.now = b.dev.Push(nvm.PendingWrite{RegName: regBonsaiRoot, Block: rootBlk}, b.now)
}

// stopLossApplies reports whether the Osiris stop-loss rule governs
// this configuration (the same predicate the legacy write paths test).
func (b *Bonsai) stopLossApplies() bool {
	return b.cfg.Scheme != SchemeWriteBack && b.cfg.Scheme != SchemeStrict &&
		b.cfg.Scheme != SchemeSelective && b.cfg.Recovery != RecoveryPhase
}
