package memctrl

import (
	"testing"

	"anubis/internal/counter"
)

var sgxEpochSchemes = []Scheme{SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeASIT}

func newEpochSGX(t *testing.T, s Scheme, epoch int) *SGX {
	t.Helper()
	cfg := TestConfig(s)
	cfg.EpochRequests = epoch
	c, err := NewSGX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSGXEpochWriteReadRoundTrip(t *testing.T) {
	c := newEpochSGX(t, SchemeASIT, 4)
	n := c.NumBlocks()
	// One block per counter leaf: far more leaves than the metadata
	// cache holds, so mid-epoch evictions (and their deferred parent
	// shadow refreshes) are exercised across many epoch closes.
	for i := uint64(0); i < 200; i++ {
		addr := (i * counter.SGXCounters) % n
		if err := c.WriteBlock(addr, pattern(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		addr := (i * counter.SGXCounters) % n
		got, err := c.ReadBlock(addr)
		if err != nil {
			t.Fatalf("read back %d: %v", i, err)
		}
		if got != pattern(i) {
			t.Fatalf("block %d corrupted", addr)
		}
	}
}

// TestSGXEpochOneIsStructurallyLegacy checks the byte-identity
// contract: EpochRequests 0 and 1 select the legacy eager path for
// ASIT, and the non-ASIT SGX schemes have no deferred state at any
// epoch size — identical timing, statistics, and persistent state.
func TestSGXEpochOneIsStructurallyLegacy(t *testing.T) {
	for _, s := range sgxEpochSchemes {
		t.Run(s.String(), func(t *testing.T) {
			run := func(epoch int) *SGX {
				c := newEpochSGX(t, s, epoch)
				for i := uint64(0); i < 120; i++ {
					addr := (i * 37) % c.NumBlocks()
					if err := c.WriteBlock(addr, pattern(i)); err != nil {
						t.Fatal(err)
					}
					if i%3 == 0 {
						if _, err := c.ReadBlock(addr); err != nil {
							t.Fatal(err)
						}
					}
				}
				return c
			}
			epochs := []int{0, 1}
			if s != SchemeASIT {
				epochs = append(epochs, 16) // epoch size is a no-op without deferred state
			}
			base := run(epochs[0])
			for _, e := range epochs[1:] {
				other := run(e)
				if base.Now() != other.Now() {
					t.Fatalf("epoch %d: virtual clocks diverge: %d vs %d", e, base.Now(), other.Now())
				}
				if base.Stats() != other.Stats() {
					t.Fatalf("epoch %d: stats diverge:\n%+v\n%+v", e, base.Stats(), other.Stats())
				}
				if base.Device().StateDigest() != other.Device().StateDigest() {
					t.Fatalf("epoch %d: persistent state diverges", e)
				}
			}
		})
	}
}

// TestSGXEpochRootMatchesLegacyAfterClose checks that after the window
// drains, the coalesced path recomputation anchors the exact same
// SHADOW_TREE_ROOT the eager per-write path would have: the tree is a
// function of shadow-table content only.
func TestSGXEpochRootMatchesLegacyAfterClose(t *testing.T) {
	write := func(c *SGX) {
		for i := uint64(0); i < 100; i++ {
			addr := (i * counter.SGXCounters * 3) % c.NumBlocks()
			if err := c.WriteBlock(addr, pattern(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	legacy, epoch := newEpochSGX(t, SchemeASIT, 0), newEpochSGX(t, SchemeASIT, 16)
	write(legacy)
	write(epoch)
	if err := epoch.FlushEpoch(); err != nil {
		t.Fatal(err)
	}
	lr, _ := legacy.Device().GetReg64(regShadowTreeRoot)
	er, _ := epoch.Device().GetReg64(regShadowTreeRoot)
	if lr != er {
		t.Fatalf("shadow tree roots disagree after close: %#x vs %#x", lr, er)
	}
	if epoch.Device().JournalLen() != 0 {
		t.Fatalf("journal not cleared by close: %d entries", epoch.Device().JournalLen())
	}
}

// TestSGXEpochJournalLifecycle checks the journal mirrors the open
// window: entries accumulate mid-epoch and the close clears them.
func TestSGXEpochJournalLifecycle(t *testing.T) {
	c := newEpochSGX(t, SchemeASIT, 4)
	for i := uint64(0); i < 3; i++ {
		if err := c.WriteBlock(i*counter.SGXCounters, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Device().JournalLen(); got != 3 {
		t.Fatalf("mid-epoch journal has %d entries, want 3", got)
	}
	if err := c.WriteBlock(3*counter.SGXCounters, pattern(3)); err != nil {
		t.Fatal(err)
	}
	if got := c.Device().JournalLen(); got != 0 {
		t.Fatalf("journal survived the close: %d entries", got)
	}
}

// TestSGXEpochMidWindowCrashRecovery crashes ASIT with the window open
// (SHADOW_TREE_ROOT stale, every touched shadow-table block only in the
// journal's New): the two-pass replay must verify the epoch-start table
// against the stale register, then reinstate the interrupted state.
func TestSGXEpochMidWindowCrashRecovery(t *testing.T) {
	c := newEpochSGX(t, SchemeASIT, 1<<20) // window never closes on its own
	n := c.NumBlocks()
	for i := uint64(0); i < 60; i++ {
		addr := (i * counter.SGXCounters) % n
		if err := c.WriteBlock(addr, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Device().JournalLen() == 0 {
		t.Fatal("window closed unexpectedly")
	}
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if rep.JournalPages == 0 {
		t.Fatal("recovery did not replay the epoch journal")
	}
	if c.Device().JournalLen() != 0 {
		t.Fatal("journal not cleared after recovery")
	}
	for i := uint64(0); i < 60; i++ {
		addr := (i * counter.SGXCounters) % n
		got, err := c.ReadBlock(addr)
		if err != nil {
			t.Fatalf("post-recovery read %d: %v", i, err)
		}
		if got != pattern(i) {
			t.Fatalf("block %d lost its latest value", addr)
		}
	}
}

// TestSGXEpochHalfDrainedCloseRecovers crashes with the close's commit
// group half-drained: the DONE_BIT redo must replay the full group —
// fresh SHADOW_TREE_ROOT and journal clear — before ASIT recovery runs.
func TestSGXEpochHalfDrainedCloseRecovers(t *testing.T) {
	c := newEpochSGX(t, SchemeASIT, 4)
	for i := uint64(0); i < 3; i++ {
		if err := c.WriteBlock(i*counter.SGXCounters, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th write triggers the close. Its own group has three entries
	// (shadow-table block, journal note, data); the close group has two
	// (root register, journal clear). Budget 4: the request group drains
	// fully, then power dies after the close group's first entry.
	c.Device().SetPushBudget(3 + 1)
	if err := c.WriteBlock(3*counter.SGXCounters, pattern(3)); err != nil {
		t.Fatal(err)
	}
	if !c.Device().DoneBit() {
		t.Fatal("close group drained fully; budget did not bite")
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for i := uint64(0); i < 4; i++ {
		got, err := c.ReadBlock(i * counter.SGXCounters)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != pattern(i) {
			t.Fatalf("block %d lost its latest value", i)
		}
	}
}
