package memctrl

import (
	"fmt"

	"anubis/internal/nvm"
	"anubis/internal/wear"
)

// regStartGap is the on-chip persistent register holding the Start-Gap
// mapping state. The durability protocol is copy-then-register: a gap
// movement first makes the line copy durable, then advances the
// register, so the mapping observed after any crash always points at a
// line holding valid content.
const regStartGap = "startgap_state"

// wearLeveler wraps the Start-Gap machinery shared by both controller
// families. A nil *wearLeveler means leveling is disabled and every
// method degrades to the identity mapping.
type wearLeveler struct {
	sg  *wear.StartGap
	dev *nvm.Device
}

// newWearLeveler creates (and persists) a fresh leveler over numBlocks
// data blocks, or returns nil when period is zero.
func newWearLeveler(dev *nvm.Device, numBlocks uint64, period int) *wearLeveler {
	if period <= 0 {
		return nil
	}
	w := &wearLeveler{sg: wear.New(numBlocks, uint64(period)), dev: dev}
	w.persist()
	return w
}

// phys maps a logical data block to its physical line.
func (w *wearLeveler) phys(idx uint64) uint64 {
	if w == nil {
		return idx
	}
	return w.sg.Map(idx)
}

func (w *wearLeveler) persist() {
	st := w.sg.Pack()
	w.dev.SetReg(regStartGap, st[:])
}

// recordWrite counts a data write and performs a gap movement when due:
// the source line is copied (or the destination erased when the source
// is empty), made durable, and only then the mapping advances — both in
// NVM (register) and in the volatile mirror.
func (w *wearLeveler) recordWrite(now uint64) uint64 {
	if w == nil {
		return now
	}
	mv, due := w.sg.RecordWrite()
	if !due {
		return now
	}
	if w.dev.Has(nvm.RegionData, mv.Src) {
		blk, done := w.dev.ReadAt(nvm.RegionData, mv.Src, now)
		now = done
		side := w.dev.ReadSideband(mv.Src)
		now = w.dev.Push(nvm.PendingWrite{Region: nvm.RegionData, Index: mv.Dst, Block: blk, HasSide: true, Side: side}, now)
	} else {
		w.dev.Erase(nvm.RegionData, mv.Dst)
	}
	w.sg.Commit()
	w.persist()
	return now
}

// clone duplicates the leveler for a forked controller, rebinding it to
// the forked device. Nil-safe (leveling disabled clones to disabled).
func (w *wearLeveler) clone(dev *nvm.Device) *wearLeveler {
	if w == nil {
		return nil
	}
	return &wearLeveler{sg: w.sg.Clone(), dev: dev}
}

// reloadWearLeveler restores the mapping from the persistent register
// after a crash. It returns nil when leveling is disabled.
func reloadWearLeveler(dev *nvm.Device, period int) (*wearLeveler, error) {
	if period <= 0 {
		return nil, nil
	}
	raw, ok := dev.GetReg(regStartGap)
	if !ok {
		return nil, fmt.Errorf("memctrl: wear-leveling register missing")
	}
	var st [32]byte
	copy(st[:], raw[:32])
	sg, err := wear.Unpack(st, uint64(period))
	if err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	return &wearLeveler{sg: sg, dev: dev}, nil
}
