package memctrl

import (
	"fmt"

	"anubis/internal/cache"
	"anubis/internal/counter"
	"anubis/internal/cryptoeng"
	"anubis/internal/ecc"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/shadow"
)

// AuditReport summarizes a whole-memory integrity audit (fsck).
type AuditReport struct {
	DataBlocks    uint64
	CounterBlocks uint64
	TreeNodes     uint64
	Violations    []string // capped at maxViolations
}

const maxViolations = 32

// OK reports whether the audit found a fully consistent image.
func (r *AuditReport) OK() bool { return len(r.Violations) == 0 }

func (r *AuditReport) violate(format string, args ...interface{}) {
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// --- opening controllers over existing NVM images ---------------------------

// OpenBonsai attaches a Bonsai controller to an existing NVM device
// (e.g. one restored with nvm.LoadDevice). The controller starts in the
// crashed state: call Recover before issuing I/O.
func OpenBonsai(cfg Config, dev *nvm.Device) (*Bonsai, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeAGITRead, SchemeAGITPlus, SchemeSelective:
	default:
		return nil, fmt.Errorf("memctrl: scheme %v is not a general-tree scheme", cfg.Scheme)
	}
	b := &Bonsai{
		cfg:       cfg,
		dev:       dev,
		eng:       cryptoeng.NewTestEngine(),
		numBlocks: cfg.MemoryBytes / BlockBytes,
		numPages:  cfg.MemoryBytes / PageBytes,
		cCache:    cache.New(cfg.CounterCacheBlocks, cfg.CounterCacheWays),
		tCache:    cache.New(cfg.TreeCacheBlocks, cfg.TreeCacheWays),
		crashed:   true,
	}
	b.geom = merkle.NewGeometry(b.numPages)
	if b.agit() {
		b.sct = shadow.NewAddrTable(b.cCache.NumSlots())
		b.smt = shadow.NewAddrTable(b.tCache.NumSlots())
	}
	b.reserveRegions()
	b.computeTreeDefaults()
	return b, nil
}

// OpenSGX attaches an SGX-family controller to an existing NVM device.
// The controller starts crashed: call Recover before issuing I/O.
func OpenSGX(cfg Config, dev *nvm.Device) (*SGX, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeASIT:
	default:
		return nil, fmt.Errorf("memctrl: scheme %v is not an SGX-tree scheme", cfg.Scheme)
	}
	c := &SGX{
		cfg:       cfg,
		dev:       dev,
		eng:       cryptoeng.NewTestEngine(),
		numBlocks: cfg.MemoryBytes / BlockBytes,
		mCache:    cache.New(cfg.MetaCacheBlocks, cfg.MetaCacheWays),
		crashed:   true,
	}
	c.numLeaves = c.numBlocks / counter.SGXCounters
	c.geom = merkle.NewGeometry(c.numLeaves)
	if cfg.Scheme == SchemeASIT {
		c.st = shadow.NewSTTable(c.mCache.NumSlots())
		c.stGeom = merkle.NewGeometry(uint64(c.st.NumSlots()))
		c.stNodes = make([][]merkle.GNode, c.stGeom.Levels())
		for l := range c.stNodes {
			c.stNodes[l] = make([]merkle.GNode, c.stGeom.NodesAt(l))
		}
	}
	c.reserveRegions()
	return c, nil
}

// --- whole-memory audits ------------------------------------------------------

// AuditNVM performs a full consistency check of the NVM image against
// the on-chip roots (fsck for secure memory). Dirty metadata is flushed
// first so the audit covers the ground truth in NVM. The audit is
// read-only with respect to logical content and reports every class of
// violation it finds (capped).
func (b *Bonsai) AuditNVM() (*AuditReport, error) {
	if b.crashed {
		return nil, fmt.Errorf("memctrl: audit requires a recovered controller: %w", ErrCrashed)
	}
	b.FlushCaches()
	rep := &AuditReport{}

	// 1. Recompute the tree from the counters; compare the root and
	// every materialized node.
	root := merkle.BuildGeneral(b.geom, b.eng,
		func(i uint64) [BlockBytes]byte { return b.dev.Read(nvm.RegionCounter, i) },
		func(flat uint64, n merkle.GNode) {
			if b.dev.Has(nvm.RegionTree, flat) {
				stored := merkle.GNode(b.dev.Read(nvm.RegionTree, flat))
				if stored != n {
					level, idx := b.geom.Unflat(flat)
					rep.violate("tree node (%d,%d) stale or corrupt", level, idx)
				}
			}
			rep.TreeNodes++
		}, nil)
	if root != b.rootHash {
		rep.violate("tree root %#x != on-chip root %#x", root, b.rootHash)
	}
	rep.CounterBlocks = b.geom.Leaves()

	// 2. Verify every data block against its counter, ECC, and MAC.
	for page := uint64(0); page < b.numPages; page++ {
		s := counter.UnpackSplit(b.dev.Read(nvm.RegionCounter, page))
		base := page * counter.SplitMinors
		for lane := 0; lane < counter.SplitMinors; lane++ {
			idx := base + uint64(lane)
			phys := b.wl.phys(idx)
			if !b.dev.Has(nvm.RegionData, phys) {
				continue
			}
			rep.DataBlocks++
			ct := b.dev.Read(nvm.RegionData, phys)
			side := b.dev.ReadSideband(phys)
			var pt [BlockBytes]byte
			b.eng.DecryptTo(pt[:], ct[:], idx, s.Counter(lane))
			if !ecc.CheckBlock(pt[:], side.ECC) {
				rep.violate("data block %d fails ECC", idx)
				continue
			}
			if b.eng.DataMAC(idx, s.Counter(lane), pt[:]) != side.MAC {
				rep.violate("data block %d fails MAC", idx)
			}
		}
	}
	return rep, nil
}

// AuditNVM performs the SGX-family audit: every persisted metadata
// block's MAC must verify against its current parent counter (up to the
// on-chip root node), and every data block must decrypt and verify
// under its leaf counter.
func (c *SGX) AuditNVM() (*AuditReport, error) {
	if c.crashed {
		return nil, fmt.Errorf("memctrl: audit requires a recovered controller: %w", ErrCrashed)
	}
	c.FlushCaches()
	rep := &AuditReport{}

	parentCtr := func(r metaRef) uint64 {
		parent, slot, isRoot := c.parentOf(r)
		if isRoot {
			return c.rootNode.Ctr[slot]
		}
		pregion, pidx := c.regionIdx(parent)
		pg := counter.UnpackSGX(c.dev.Read(pregion, pidx))
		return pg.Ctr[slot]
	}
	check := func(r metaRef) {
		region, idx := c.regionIdx(r)
		if !c.dev.Has(region, idx) {
			return
		}
		g := counter.UnpackSGX(c.dev.Read(region, idx))
		pc := parentCtr(r)
		if g == (counter.SGX{}) && pc == 0 {
			return
		}
		if c.eng.SGXMAC(c.addrOf(r), g.Ctr[:], pc) != g.MAC {
			rep.violate("metadata block %#x fails MAC", c.addrOf(r))
		}
	}
	for _, idx := range c.dev.BlocksIn(nvm.RegionCounter) {
		rep.CounterBlocks++
		check(metaRef{isLeaf: true, idx: idx})
	}
	for _, flat := range c.dev.BlocksIn(nvm.RegionTree) {
		rep.TreeNodes++
		level, i := c.geom.Unflat(flat)
		check(metaRef{level: level, idx: i})
	}

	for _, leaf := range c.dev.BlocksIn(nvm.RegionCounter) {
		g := counter.UnpackSGX(c.dev.Read(nvm.RegionCounter, leaf))
		base := leaf * counter.SGXCounters
		for lane := 0; lane < counter.SGXCounters; lane++ {
			idx := base + uint64(lane)
			phys := c.wl.phys(idx)
			if !c.dev.Has(nvm.RegionData, phys) {
				continue
			}
			rep.DataBlocks++
			ct := c.dev.Read(nvm.RegionData, phys)
			side := c.dev.ReadSideband(phys)
			var pt [BlockBytes]byte
			c.eng.DecryptTo(pt[:], ct[:], idx, g.Ctr[lane])
			if !ecc.CheckBlock(pt[:], side.ECC) {
				rep.violate("data block %d fails ECC", idx)
				continue
			}
			if c.eng.DataMAC(idx, g.Ctr[lane], pt[:]) != side.MAC {
				rep.violate("data block %d fails MAC", idx)
			}
		}
	}
	return rep, nil
}
