package memctrl

// ASIT under the bank-parallel epoch pipeline.
//
// The legacy ASIT write path refreshes the shadow table's volatile
// protection tree eagerly: every shadowMeta call rehashes the full path
// above the modified ST slot and stages a new SHADOW_TREE_ROOT, once
// per request (and once more per parent refresh during evictions). The
// epoch pipeline defers those path updates into a per-window dirty-slot
// set: the ST entry itself still persists atomically with the write it
// describes, but the tree above it is recomputed once per epoch, each
// dirty node rehashed a single time however many entries below it
// changed, and one root register write retires the whole window.
//
// Crash safety mirrors the Bonsai pipeline (bonsai_epoch.go): while the
// window is open, SHADOW_TREE_ROOT still anchors the epoch-start table.
// Every deferred ST update therefore journals its block (Old = content
// at first epoch touch, the state the stale register covers; New = the
// authoritative latest entry) inside the same commit group. Recovery
// runs two passes over the journal: pass A substitutes Old to verify
// the stale register, pass B replays New — trusted on-chip, so valid
// even when the media copy is torn — and anchors the fresh root (see
// recoverASIT).
//
// The other SGX schemes have no deferred state: WriteBack and Osiris
// never touch a persistent root per write, and Strict's whole point is
// eager per-write propagation. They behave identically at every epoch
// size, and cfg.EpochRequests <= 1 keeps ASIT on the legacy eager path,
// byte-identical to pre-epoch builds.

import (
	"sort"

	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// closeEpoch drains the window: the protection-tree path of every dirty
// shadow-table slot is recomputed with one coalesced hash pass per
// level, and the fresh SHADOW_TREE_ROOT plus the journal clear retire
// the window in one atomic commit group. Safe to call on an empty
// window. Pure on-chip work — the ST blocks themselves were persisted
// when their entries were written.
func (c *SGX) closeEpoch() error {
	c.epochWrites = 0
	if len(c.epochSlots) == 0 {
		return nil
	}
	start := c.now

	slots := c.epochOrder[:0]
	for s := range c.epochSlots {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	c.epochOrder = slots

	hashes := c.epochHash[:0]
	for _, s := range slots {
		hashes = append(hashes, c.eng.ContentHash(blockSlice(c.st.Block(int(s)))))
	}
	c.epochHash = hashes

	// Sorted children keep each level's dirty parents contiguous: one
	// pass per level, each dirty node rehashed exactly once.
	nodes := 0
	idxs := slots
	for level := 0; level < c.stGeom.Levels(); level++ {
		c.now += c.cfg.HashNS // one pipelined hash pass per level
		c.dev.Attr().Add(obs.CompCrypto, c.cfg.HashNS)
		var parents []uint64
		var parentHashes []uint64
		for i := 0; i < len(idxs); {
			nodeIdx := idxs[i] / merkle.Arity
			n := &c.stNodes[level][nodeIdx]
			for ; i < len(idxs) && idxs[i]/merkle.Arity == nodeIdx; i++ {
				n.SetHash(int(idxs[i]%merkle.Arity), hashes[i])
			}
			nodes++
			parents = append(parents, nodeIdx)
			parentHashes = append(parentHashes, c.eng.ContentHash(n[:]))
		}
		idxs, hashes = parents, parentHashes
	}
	c.stRoot = hashes[0]

	c.pending = c.pending[:0]
	var reg [BlockBytes]byte
	putU64(reg[:], c.stRoot)
	c.pending = append(c.pending, nvm.PendingWrite{RegName: regShadowTreeRoot, Block: reg})
	c.pending = append(c.pending, nvm.PendingWrite{JOp: nvm.JournalClear})
	c.commitPending()

	for s := range c.epochSlots {
		delete(c.epochSlots, s)
	}
	if c.probe != nil {
		c.probe.Event(obs.EvEpochClose, start, c.now, uint64(nodes))
	}
	return nil
}

// FlushEpoch closes any open epoch window. A no-op for legacy configs,
// non-ASIT schemes, empty windows, and crashed controllers. The error
// is always nil today (the close is pure on-chip work); the signature
// matches the harness's epochFlusher contract shared with Bonsai.
func (c *SGX) FlushEpoch() error {
	c.flushFastRun()
	if c.crashed || c.epochSlots == nil {
		return nil
	}
	return c.closeEpoch()
}
