package memctrl

import (
	"fmt"
	"math/rand"

	"anubis/internal/cache"
	"anubis/internal/counter"
	"anubis/internal/cryptoeng"
	"anubis/internal/ecc"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
	"anubis/internal/shadow"
	"anubis/internal/shard"
)

// regBonsaiRoot is the on-chip persistent register holding the general
// Merkle tree's root hash. With the eager update policy it always
// reflects the most recent counter state, including not-yet-persisted
// cache content (§2.6), which is what makes AGIT recovery verifiable.
const regBonsaiRoot = "bonsai_mt_root"

// Bonsai is the general-integrity-tree controller family: split-counter
// encryption, Bonsai Merkle tree (counters as leaves, data protected by
// a MAC over data+counter), eager tree updates. Supports the schemes of
// Figure 10: WriteBack, Strict, Osiris, AGIT-Read, AGIT-Plus.
type Bonsai struct {
	cfg  Config
	dev  *nvm.Device
	eng  *cryptoeng.Engine
	geom merkle.Geometry

	numBlocks uint64 // data blocks
	numPages  uint64 // counter blocks / tree leaves

	cCache *cache.Cache // counter cache
	tCache *cache.Cache // Merkle tree cache

	sct *shadow.AddrTable // AGIT schemes only
	smt *shadow.AddrTable

	// updateCount tracks un-persisted updates per cached counter block
	// for the Osiris stop-loss rule. Paged (see nvm.Counters): the write
	// hot path pays two slice indexations instead of a map hash.
	updateCount nvm.Counters

	// Volatile mirror of the on-chip root register.
	rootHash uint64

	// Zero-initialization support: the hash of an all-zero leaf and the
	// default (all-children-default) node content and hash per level.
	defLeafHash uint64
	defNode     []merkle.GNode
	defNodeHash []uint64

	// wl is the optional Start-Gap wear leveler over the data region.
	wl *wearLeveler

	now     uint64
	stats   RunStats
	crashed bool

	// probe observes simulation events (evictions, commits, overflows,
	// recovery). Nil by default: every emission site is a single
	// predictable nil-check branch, so the disabled path costs nothing
	// and cannot perturb simulated timing.
	probe obs.Probe

	// pending accumulates the current operation's atomic write group.
	pending []nvm.PendingWrite

	// oe is the shard-oracle entry for the in-flight request, attached
	// by sim.RunSharded via SetContentEntry. Nil outside sharded runs:
	// every consumption site is one predictable nil-check branch (same
	// discipline as probe). When set, precomputed content substitutes
	// for the crypto/codec recomputation — device traffic, timing and
	// statistics are byte-identical either way (see internal/shard).
	oe *shard.Entry

	// Epoch pipeline state (cfg.EpochRequests > 1 only; see
	// bonsai_epoch.go): writes since the last close, the set of counter
	// pages with deferred tree-path updates, and reusable close-time
	// scratch. All volatile — lost at crash; the device-side epoch
	// journal is the persistent record of the open window.
	epochWrites int
	epochDirty  map[uint64]struct{}
	epochPages  []uint64
	epochHash   []uint64

	// fp is the hit-burst fast lane (bonsai_fastpath.go). Disabled by
	// default; every legacy entry point flushes it defensively, so the
	// two planes can never observe each other mid-run.
	fp bonsaiFastLane
}

// NewBonsai constructs a Bonsai-family controller for cfg.Scheme, which
// must be one of WriteBack, Strict, Osiris, AGITRead, AGITPlus.
func NewBonsai(cfg Config) (*Bonsai, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeAGITRead, SchemeAGITPlus, SchemeSelective, SchemeTriad:
	default:
		return nil, fmt.Errorf("memctrl: scheme %v is not a general-tree scheme", cfg.Scheme)
	}
	b := &Bonsai{
		cfg:       cfg,
		dev:       nvm.NewDevice(cfg.Timing),
		eng:       cryptoeng.NewTestEngine(),
		numBlocks: cfg.MemoryBytes / BlockBytes,
		numPages:  cfg.MemoryBytes / PageBytes,
		cCache:    cache.New(cfg.CounterCacheBlocks, cfg.CounterCacheWays),
		tCache:    cache.New(cfg.TreeCacheBlocks, cfg.TreeCacheWays),
	}
	b.geom = merkle.NewGeometry(b.numPages)
	b.wl = newWearLeveler(b.dev, b.numBlocks, cfg.WearPeriod)
	if b.agit() {
		b.sct = shadow.NewAddrTable(b.cCache.NumSlots())
		b.smt = shadow.NewAddrTable(b.tCache.NumSlots())
	}
	if cfg.EpochRequests > 1 {
		b.epochDirty = make(map[uint64]struct{}, cfg.EpochRequests)
	}
	b.reserveRegions()
	b.initTreeDefaults()
	b.dev.ResetStats()
	return b, nil
}

func (b *Bonsai) agit() bool {
	return b.cfg.Scheme == SchemeAGITRead || b.cfg.Scheme == SchemeAGITPlus
}

// reserveRegions declares every region's extent to the device so page
// directories are allocated once at final size (the +1 on the data
// region covers the Start-Gap spare line).
func (b *Bonsai) reserveRegions() {
	b.dev.Reserve(nvm.RegionData, b.numBlocks+1)
	b.dev.Reserve(nvm.RegionCounter, b.numPages)
	b.dev.Reserve(nvm.RegionTree, b.geom.TotalNodes())
	if b.sct != nil {
		b.dev.Reserve(nvm.RegionSCT, b.sct.NumBlocks())
		b.dev.Reserve(nvm.RegionSMT, b.smt.NumBlocks())
	}
	b.updateCount.Reserve(b.numPages)
}

// computeTreeDefaults derives the per-level default node contents and
// hashes of the zero-memory tree — a pure computation shared by fresh
// construction and by opening an existing image.
func (b *Bonsai) computeTreeDefaults() {
	var zero [BlockBytes]byte
	b.defLeafHash = b.eng.ContentHash(zero[:])
	b.defNode = make([]merkle.GNode, b.geom.Levels())
	b.defNodeHash = make([]uint64, b.geom.Levels())
	childDefHash := b.defLeafHash
	for l := 0; l < b.geom.Levels(); l++ {
		var def merkle.GNode
		for s := 0; s < merkle.Arity; s++ {
			def.SetHash(s, childDefHash)
		}
		b.defNode[l] = def
		b.defNodeHash[l] = b.eng.ContentHash(def[:])
		childDefHash = b.defNodeHash[l]
	}
}

// initTreeDefaults initializes a FRESH zero memory in O(depth): all
// leaves are zero counter blocks, so every full node of a level is
// identical; only the ragged right-edge nodes (fewer than 8 children)
// are materialized in NVM, and the root register is seeded.
func (b *Bonsai) initTreeDefaults() {
	b.computeTreeDefaults()
	childDefHash := b.defLeafHash
	lastChildHash := b.defLeafHash
	for l := 0; l < b.geom.Levels(); l++ {
		lastIdx := b.geom.NodesAt(l) - 1
		_, n := b.geom.ChildrenOf(l, lastIdx)
		var last merkle.GNode
		for s := 0; s < n; s++ {
			last.SetHash(s, childDefHash)
		}
		if n > 0 {
			last.SetHash(n-1, lastChildHash)
		}
		if last != b.defNode[l] {
			b.dev.WriteRaw(nvm.RegionTree, b.geom.Flat(l, lastIdx), last)
		}
		lastChildHash = b.eng.ContentHash(last[:])
		childDefHash = b.defNodeHash[l]
	}
	b.rootHash = lastChildHash
	b.dev.SetReg64(regBonsaiRoot, b.rootHash)
}

// Scheme returns the configured scheme.
func (b *Bonsai) Scheme() Scheme { return b.cfg.Scheme }

// NumBlocks returns the data block count.
func (b *Bonsai) NumBlocks() uint64 { return b.numBlocks }

// Device exposes the NVM device.
func (b *Bonsai) Device() *nvm.Device { return b.dev }

// Now returns the controller's virtual time.
func (b *Bonsai) Now() uint64 { return b.now }

// AdvanceTo moves virtual time forward (CPU think time between
// requests, attributed as cpu_gap).
func (b *Bonsai) AdvanceTo(t uint64) {
	if t > b.now {
		b.dev.Attr().Add(obs.CompCPUGap, t-b.now)
		b.now = t
	}
}

// SetProbe attaches (or detaches, with nil) an event probe.
func (b *Bonsai) SetProbe(p obs.Probe) { b.probe = p }

// Stats returns run-time statistics.
func (b *Bonsai) Stats() RunStats {
	b.flushFastRun()
	s := b.stats
	s.NVM = b.dev.Stats()
	s.CounterCache = b.cCache.Stats()
	s.TreeCache = b.tCache.Stats()
	s.Attribution = *b.dev.Attr()
	return s
}

// --- NVM views with zero-default semantics -----------------------------------

// treeNodeNVM returns a tree node's NVM content, substituting the
// level's default for never-written nodes. Timed variants advance the
// clock; untimed variants are for recovery (which counts its own ops).
func (b *Bonsai) treeNodeNVM(flat uint64) merkle.GNode {
	blk, ok := b.dev.ReadPtr(nvm.RegionTree, flat) // costs a fetch either way
	if ok {
		return *blk
	}
	level, _ := b.geom.Unflat(flat)
	return b.defNode[level]
}

func (b *Bonsai) treeNodeNVMTimed(flat uint64) merkle.GNode {
	blk, ok, done := b.dev.ReadAtPtr(nvm.RegionTree, flat, b.now)
	b.now = done
	if ok {
		return *blk
	}
	level, _ := b.geom.Unflat(flat)
	return b.defNode[level]
}

// --- metadata fetch with verification ----------------------------------------

// getTreeNode returns a verified, cached tree node line. On a miss the
// node is fetched, verified against its parent (recursively, up to the
// first cached ancestor or the on-chip root), and inserted.
func (b *Bonsai) getTreeNode(level int, idx uint64) (*cache.Line, error) {
	flat := b.geom.Flat(level, idx)
	if line, ok := b.tCache.Lookup(flat); ok {
		return line, nil
	}
	node := b.treeNodeNVMTimed(flat)
	h := b.eng.ContentHash(node[:])
	if level == b.geom.RootLevel() {
		if h != b.rootHash {
			return nil, &IntegrityError{What: "merkle root mismatch", Addr: flat}
		}
	} else {
		pl, pi, slot := b.geom.Parent(level, idx)
		parent, err := b.getTreeNode(pl, pi)
		if err != nil {
			return nil, err
		}
		pn := merkle.GNode(parent.Data)
		if pn.Hash(slot) != h {
			return nil, &IntegrityError{What: "merkle node hash mismatch", Addr: flat}
		}
	}
	line, victim := b.tCache.Insert(flat, node)
	b.writeBackTreeVictim(victim)
	if b.cfg.Scheme == SchemeAGITRead {
		b.shadowTreeSlot(line.Slot(), flat)
	}
	return line, nil
}

// getCounterBlock returns a verified, cached counter block line.
func (b *Bonsai) getCounterBlock(page uint64) (*cache.Line, error) {
	if line, ok := b.cCache.Lookup(page); ok {
		return line, nil
	}
	// Zero-copy fetch: blk points into the device's paged store (or the
	// shared zero block). Nothing below writes the counter region before
	// the Insert copy, so the pointer stays valid.
	blk, _, done := b.dev.ReadAtPtr(nvm.RegionCounter, page, b.now)
	b.now = done
	if b.dev.JournalLen() > 0 {
		if je, ok := b.dev.JournalLookup(page); ok {
			// Mid-epoch refetch of a journaled block: the on-chip epoch
			// journal holds the authoritative content (NVM and the tree
			// still describe the epoch start). The journal lives inside
			// the persistence domain, so no tree verification applies.
			line, victim := b.cCache.Insert(page, je.New)
			b.writeBackCounterVictim(victim)
			if b.cfg.Scheme == SchemeAGITRead {
				b.shadowCounterSlot(line.Slot(), page)
			}
			return line, nil
		}
	}
	h := b.eng.ContentHash(blk[:])
	pnode, slot := b.geom.LeafParent(page)
	parent, err := b.getTreeNode(0, pnode)
	if err != nil {
		return nil, err
	}
	pn := merkle.GNode(parent.Data)
	if pn.Hash(slot) != h {
		return nil, &IntegrityError{What: "counter block hash mismatch", Addr: page}
	}
	line, victim := b.cCache.Insert(page, *blk)
	b.writeBackCounterVictim(victim)
	if b.cfg.Scheme == SchemeAGITRead {
		b.shadowCounterSlot(line.Slot(), page)
	}
	return line, nil
}

func (b *Bonsai) writeBackTreeVictim(v *cache.Victim) {
	if v == nil || !v.Dirty {
		return
	}
	start := b.now
	b.now = b.dev.Push(nvm.PendingWrite{Region: nvm.RegionTree, Index: v.Key, Block: v.Data}, b.now)
	if b.probe != nil {
		b.probe.Event(obs.EvEviction, start, b.now, v.Key)
	}
}

func (b *Bonsai) writeBackCounterVictim(v *cache.Victim) {
	if v == nil {
		return
	}
	b.updateCount.Set(v.Key, 0)
	if !v.Dirty {
		return
	}
	start := b.now
	b.now = b.dev.Push(nvm.PendingWrite{Region: nvm.RegionCounter, Index: v.Key, Block: v.Data}, b.now)
	if b.probe != nil {
		b.probe.Event(obs.EvEviction, start, b.now, v.Key)
	}
}

// shadowCounterSlot persists an SCT entry (Figure 6): slot -> page.
func (b *Bonsai) shadowCounterSlot(slot int, page uint64) {
	bi, blk := b.sct.Set(slot, page)
	b.stats.ShadowWrites++
	b.now = b.dev.Push(nvm.PendingWrite{Region: nvm.RegionSCT, Index: bi, Block: blk}, b.now)
}

// shadowTreeSlot persists an SMT entry: slot -> flat node index.
func (b *Bonsai) shadowTreeSlot(slot int, flat uint64) {
	bi, blk := b.smt.Set(slot, flat)
	b.stats.ShadowWrites++
	b.now = b.dev.Push(nvm.PendingWrite{Region: nvm.RegionSMT, Index: bi, Block: blk}, b.now)
}

// --- data path -----------------------------------------------------------------

func (b *Bonsai) checkAddr(idx uint64) error {
	if b.crashed {
		return ErrCrashed
	}
	if idx >= b.numBlocks {
		return fmt.Errorf("memctrl: block %d out of range (%d blocks)", idx, b.numBlocks)
	}
	return nil
}

// ReadBlock decrypts and verifies one data block.
func (b *Bonsai) ReadBlock(idx uint64) ([BlockBytes]byte, error) {
	b.flushFastRun()
	var zero [BlockBytes]byte
	if err := b.checkAddr(idx); err != nil {
		return zero, err
	}
	b.stats.ReadRequests++
	page, lane := idx/counter.SplitMinors, int(idx%counter.SplitMinors)

	// Data fetch overlaps the metadata walk: both start now. The
	// zero-copy pointer stays valid across the metadata walk because
	// nothing in it writes the data region.
	start := b.now
	phys := b.wl.phys(idx)
	// Quiet read: the fetch overlaps the (attributed) metadata walk, so
	// only the visible residual below is charged, as data_read.
	ct, has, dataDone := b.dev.ReadAtPtrQuiet(nvm.RegionData, phys, start)
	line, err := b.getCounterBlock(page)
	if err != nil {
		return zero, err
	}
	if dataDone > b.now {
		b.dev.Attr().Add(obs.CompDataRead, dataDone-b.now)
		b.now = dataDone
	}
	b.now += b.cfg.HashNS // MAC verification (path verifications overlap)
	b.dev.Attr().Add(obs.CompCrypto, b.cfg.HashNS)

	if !has {
		return zero, nil // never written: logical zeros
	}
	if e := b.oe; e != nil && e.Has {
		// Shard oracle: the owning worker already derived the plaintext
		// from the write history, so decrypt + ECC + MAC recomputation
		// is skipped — their latency is charged above exactly as on the
		// legacy path, which verifies the same bytes.
		return e.PT, nil
	}
	s := counter.UnpackSplit(line.Data)
	ctr := s.Counter(lane)
	var pt [BlockBytes]byte
	b.eng.DecryptTo(pt[:], ct[:], idx, ctr)
	side := b.dev.ReadSideband(phys)
	if !ecc.CheckBlock(pt[:], side.ECC) {
		return zero, &IntegrityError{What: "data ECC mismatch", Addr: idx}
	}
	if b.eng.DataMAC(idx, ctr, pt[:]) != side.MAC {
		return zero, &IntegrityError{What: "data MAC mismatch", Addr: idx}
	}
	return pt, nil
}

// WriteBlock encrypts and persists one data block with all metadata
// updates the configured scheme requires, atomically (§2.7). With
// cfg.EpochRequests > 1 the eager tree update is deferred into the
// epoch pipeline (bonsai_epoch.go); otherwise the legacy lockstep path
// runs, byte-identical to pre-epoch builds.
func (b *Bonsai) WriteBlock(idx uint64, data [BlockBytes]byte) error {
	b.flushFastRun()
	if b.cfg.EpochRequests > 1 {
		return b.writeBlockEpoch(idx, data)
	}
	return b.writeBlockLegacy(idx, data)
}

func (b *Bonsai) writeBlockLegacy(idx uint64, data [BlockBytes]byte) error {
	if err := b.checkAddr(idx); err != nil {
		return err
	}
	b.stats.WriteRequests++
	page, lane := idx/counter.SplitMinors, int(idx%counter.SplitMinors)

	line, err := b.getCounterBlock(page)
	if err != nil {
		return err
	}
	b.pending = b.pending[:0]

	var leafHash, ctr uint64
	if e := b.oe; e != nil {
		if e.Overflow {
			if err := b.reencryptPage(page, nil, nil); err != nil {
				return err
			}
		}
		line.Data = e.CtrBlock
		leafHash, ctr = e.LeafHash, e.Ctr
	} else {
		s := counter.UnpackSplit(line.Data)
		old := s
		if s.Increment(lane) {
			// Minor overflow: the page is re-encrypted under the new major
			// counter and the counter block force-persisted, so Osiris-style
			// recovery never needs to guess across an overflow.
			if err := b.reencryptPage(page, &old, &s); err != nil {
				return err
			}
		}
		line.Data = s.Pack()
		leafHash, ctr = b.eng.ContentHash(line.Data[:]), s.Counter(lane)
	}
	if b.cfg.Scheme == SchemeStrict {
		// Strict persistence: the counter write goes out immediately;
		// the cached copy stays clean.
		b.stats.StrictWrites++
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
	} else if b.cfg.Scheme == SchemeTriad {
		// Triad-NVM: counters persist on every write (the tree path up
		// to TriadLevels is handled in updateTreePath).
		b.stats.StrictWrites++
		b.cCache.MarkDirty(page)
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
	} else if b.cfg.Scheme == SchemeSelective && b.inPersistentRegion(idx) {
		// Selective counter atomicity: persistent-region counters are
		// written through (the cached copy stays dirty for reuse; the
		// NVM copy is always current). Tree nodes are never persisted
		// per-write — that is exactly the scheme's recovery weakness.
		b.stats.StrictWrites++
		b.cCache.MarkDirty(page)
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
	} else {
		first := b.cCache.MarkDirty(page)
		if first && b.cfg.Scheme == SchemeAGITPlus {
			b.shadowCounterSlot(line.Slot(), page)
		}
	}

	// Osiris stop-loss: persist the counter block every StopLoss-th
	// un-persisted update (also applies to the AGIT schemes, which rely
	// on Osiris to fix tracked counters). Phase-based recovery carries
	// the counter's low bits with the data instead, so drift is bounded
	// without any extra counter writes.
	if b.cfg.Scheme != SchemeWriteBack && b.cfg.Scheme != SchemeStrict &&
		b.cfg.Scheme != SchemeSelective && b.cfg.Recovery != RecoveryPhase {
		if b.updateCount.Inc(page) >= b.cfg.StopLoss {
			b.updateCount.Set(page, 0)
			b.stats.StopLossWrites++
			b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
		}
	}

	// Encrypt the data under the fresh counter; ECC covers the plaintext
	// (the Osiris sanity check), the MAC binds data to counter+address.
	if e := b.oe; e != nil {
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: b.wl.phys(idx), Block: e.CT, HasSide: true, Side: e.Side})
	} else {
		var ctBlk [BlockBytes]byte
		b.eng.EncryptTo(ctBlk[:], data[:], idx, ctr)
		side := nvm.Sideband{ECC: ecc.EncodeBlock(data[:]), MAC: b.eng.DataMAC(idx, ctr, data[:]), Phase: uint8(ctr)}
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: b.wl.phys(idx), Block: ctBlk, HasSide: true, Side: side})
	}

	// Eager tree update: propagate the leaf change to the on-chip root.
	if err := b.updateTreePath(page, leafHash); err != nil {
		return err
	}

	// Root register joins the atomic group so NVM content and the root
	// can never disagree across a crash.
	var rootBlk [BlockBytes]byte
	putU64(rootBlk[:], b.rootHash)
	b.pending = append(b.pending, nvm.PendingWrite{RegName: regBonsaiRoot, Block: rootBlk})

	b.now += b.cfg.HashNS // pipelined encrypt+MAC engine occupancy
	b.dev.Attr().Add(obs.CompCrypto, b.cfg.HashNS)
	b.commitPending()
	b.now = b.wl.recordWrite(b.now)
	return nil
}

// updateTreePath applies the eager update policy: every ancestor of the
// counter block is updated in cache (strict persistence additionally
// stages each updated node for write-out and keeps the lines clean).
// leafHash is the content hash of the updated counter block — computed
// by the caller, so the shard oracle can supply it precomputed.
// Interior-node hashes are recomputed here regardless: a node
// aggregates sibling pages, so its content is not page-local and never
// comes from the oracle.
func (b *Bonsai) updateTreePath(page uint64, leafHash uint64) error {
	childHash := leafHash
	childIdx := page
	for level := 0; level < b.geom.Levels(); level++ {
		nodeIdx := childIdx / merkle.Arity
		slot := int(childIdx % merkle.Arity)
		line, err := b.getTreeNode(level, nodeIdx)
		if err != nil {
			return err
		}
		gn := merkle.GNode(line.Data)
		gn.SetHash(slot, childHash)
		line.Data = gn
		flat := b.geom.Flat(level, nodeIdx)
		if b.cfg.Scheme == SchemeStrict || (b.cfg.Scheme == SchemeTriad && level < b.cfg.TriadLevels) {
			b.stats.StrictWrites++
			b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionTree, Index: flat, Block: line.Data})
			if b.cfg.Scheme == SchemeTriad {
				b.tCache.MarkDirty(flat)
			}
		} else {
			firstDirty := b.tCache.MarkDirty(flat)
			if firstDirty && b.cfg.Scheme == SchemeAGITPlus {
				b.shadowTreeSlot(line.Slot(), flat)
			}
		}
		childHash = b.eng.ContentHash(line.Data[:])
		childIdx = nodeIdx
	}
	b.rootHash = childHash
	return nil
}

// reencryptPage handles a split-counter page overflow: all lines of the
// page are decrypted under the old counters and re-encrypted under the
// new major counter, and the counter block is force-persisted. Under
// the shard oracle (old/fresh nil) the re-encrypted lanes come
// precomputed; the timed per-lane device reads — the part that shapes
// simulated time — are identical either way.
func (b *Bonsai) reencryptPage(page uint64, old, fresh *counter.Split) error {
	b.stats.PageOverflows++
	ovStart := b.now
	base := page * counter.SplitMinors
	e := b.oe
	if e != nil && (old != nil || !e.Overflow) {
		// Legacy callers always pass counters; nil counters are the
		// oracle path and require a matching overflow entry.
		panic("memctrl: page re-encryption without matching shard-oracle entry")
	}
	j := 0
	for lane := 0; lane < counter.SplitMinors; lane++ {
		idx := base + uint64(lane)
		phys := b.wl.phys(idx)
		if !b.dev.Has(nvm.RegionData, phys) {
			continue
		}
		ct, _, done := b.dev.ReadAtPtr(nvm.RegionData, phys, b.now)
		b.now = done
		if e != nil {
			if j >= len(e.Reenc) || e.Reenc[j].Lane != lane {
				panic("memctrl: shard-oracle desync during page re-encryption")
			}
			b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: phys, Block: e.Reenc[j].CT, HasSide: true, Side: e.Reenc[j].Side})
			j++
			continue
		}
		var pt [BlockBytes]byte
		b.eng.DecryptTo(pt[:], ct[:], idx, old.Counter(lane))
		side := b.dev.ReadSideband(phys)
		if !ecc.CheckBlock(pt[:], side.ECC) {
			return &IntegrityError{What: "page re-encryption ECC mismatch", Addr: idx}
		}
		nctr := fresh.Counter(lane)
		var blk [BlockBytes]byte
		b.eng.EncryptTo(blk[:], pt[:], idx, nctr)
		nside := nvm.Sideband{ECC: side.ECC, MAC: b.eng.DataMAC(idx, nctr, pt[:]), Phase: uint8(nctr)}
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: phys, Block: blk, HasSide: true, Side: nside})
	}
	if e != nil && j != len(e.Reenc) {
		panic("memctrl: shard-oracle desync during page re-encryption")
	}
	// Force-persist the fresh counter block (drift resets to zero).
	b.updateCount.Set(page, 0)
	b.stats.StopLossWrites++
	var packed [BlockBytes]byte
	if e != nil {
		packed = e.CtrBlock
	} else {
		packed = fresh.Pack()
	}
	b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: packed})
	if b.probe != nil {
		b.probe.Event(obs.EvOverflow, ovStart, b.now, page)
	}
	return nil
}

// inPersistentRegion reports whether a data block belongs to the
// selective scheme's persistent region.
func (b *Bonsai) inPersistentRegion(idx uint64) bool {
	return b.cfg.PersistentBlocks == 0 || idx < b.cfg.PersistentBlocks
}

// commitPending drains the operation's atomic group through the
// persistent registers and WPQ (two-stage commit, Figure 4).
func (b *Bonsai) commitPending() {
	if len(b.pending) == 0 {
		return
	}
	if b.dev.DoneBit() {
		// A simulated mid-drain power loss froze an earlier group in the
		// staging area (the SetPushBudget hook): the persistence domain
		// accepts nothing more, so later groups are dropped on the floor
		// — after the crash, RedoCommitted governs what lands.
		b.pending = b.pending[:0]
		return
	}
	b.dev.BeginCommit()
	for _, w := range b.pending {
		b.dev.Stage(w)
	}
	start, n := b.now, uint64(len(b.pending))
	b.now = b.dev.CommitGroup(b.now)
	b.pending = b.pending[:0]
	if b.probe != nil {
		b.probe.Event(obs.EvCommit, start, b.now, n)
	}
}

// --- lifecycle -------------------------------------------------------------------

// FlushCaches writes back all dirty metadata (orderly shutdown).
func (b *Bonsai) FlushCaches() {
	b.flushFastRun()
	// An open epoch window drains first: flushed counter lines may carry
	// content the stale root register does not cover yet. A close
	// failure here is an integrity error that every subsequent
	// verification would also surface, so best-effort is enough.
	_ = b.FlushEpoch()
	b.cCache.FlushAll(func(page uint64, data [BlockBytes]byte) {
		b.now = b.dev.Push(nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: data}, b.now)
	})
	b.tCache.FlushAll(func(flat uint64, data [BlockBytes]byte) {
		b.now = b.dev.Push(nvm.PendingWrite{Region: nvm.RegionTree, Index: flat, Block: data}, b.now)
	})
	b.updateCount.Reset()
}

// Crash models a power failure: caches, shadow mirrors, and in-flight
// uncommitted groups are lost; NVM, WPQ contents, and on-chip persistent
// registers survive.
func (b *Bonsai) Crash() { b.CrashWith(nvm.CrashFullADR, nil) }

// CrashWith is Crash under an injectable persistence model: the relaxed
// models may roll back or tear writes still in flight in the WPQ (see
// nvm.CrashModel). Volatile controller state is lost identically under
// every model.
func (b *Bonsai) CrashWith(model nvm.CrashModel, rng *rand.Rand) {
	// The fast lane's deferred work is all timeless and would have been
	// applied already on the stepped path — fold it in before power dies
	// so the crashed image is byte-identical either way.
	b.flushFastRun()
	b.dev.CrashWith(model, rng)
	b.cCache.DropAll()
	b.tCache.DropAll()
	b.updateCount.Reset()
	b.pending = b.pending[:0]
	b.epochWrites = 0
	for p := range b.epochDirty {
		delete(b.epochDirty, p)
	}
	b.rootHash = 0
	b.crashed = true
}

func putU64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> uint(8*i))
	}
}
