package memctrl

import (
	"testing"
)

// Golden fork-vs-cold equivalence: a crash/recovery trial executed on a
// controller forked from a warm parent must be byte-identical — run
// statistics, recovery report, and the full persistent device image
// (via nvm's canonical StateDigest; the gob Save stream itself encodes
// maps in randomized order) — to the same trial executed on a
// cold-started controller that replayed the entire history itself. This is the contract that lets the
// recovery sweeps amortize one fill across N trials (ISSUE 3), and it
// exercises every piece of Clone: COW page sharing, cache/LRU cloning,
// shadow mirrors, wear state, WPQ/bank/port clocks, pending groups, and
// the persistent register file.

// forkObservation captures everything the trial can externally observe.
type forkObservation struct {
	stats RunStats
	rep   RecoveryReport
	image uint64 // canonical digest of the persistent device image
}

func observeTrial(t *testing.T, ctrl Controller) forkObservation {
	t.Helper()
	stats := ctrl.Stats()
	ctrl.Crash()
	rep, err := ctrl.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return forkObservation{stats: stats, rep: *rep, image: ctrl.Device().StateDigest()}
}

func checkObservation(t *testing.T, what string, got, want forkObservation) {
	t.Helper()
	if got.stats != want.stats {
		t.Errorf("%s: RunStats diverged\n got: %+v\nwant: %+v", what, got.stats, want.stats)
	}
	if got.rep != want.rep {
		t.Errorf("%s: RecoveryReport diverged\n got: %+v\nwant: %+v", what, got.rep, want.rep)
	}
	if got.image != want.image {
		t.Errorf("%s: persistent device images differ (digest %#x vs %#x)", what, got.image, want.image)
	}
}

func testForkEquivalence(t *testing.T, mk func(t *testing.T) Controller) {
	const warm, total = 2000, 4000

	// Cold control: one controller lives through the whole history.
	cold := mk(t)
	equivWorkloadRange(t, cold, 0, warm)
	equivWorkloadRange(t, cold, warm, total)
	want := observeTrial(t, cold)

	// Forked trial: warm a parent, fork, run the tail on the child.
	parent := mk(t)
	equivWorkloadRange(t, parent, 0, warm)
	child := parent.Clone()
	equivWorkloadRange(t, child, warm, total)
	got := observeTrial(t, child)
	checkObservation(t, "forked child vs cold start", got, want)

	// The parent is untouched by the child's writes, crash, and
	// recovery: continuing it through the same tail must reproduce the
	// cold control too. (This is the COW isolation property — a buggy
	// shared page would leak the child's mutations backwards.)
	equivWorkloadRange(t, parent, warm, total)
	gotParent := observeTrial(t, parent)
	checkObservation(t, "parent after child trial vs cold start", gotParent, want)
}

func TestForkEquivalenceAGIT(t *testing.T) {
	testForkEquivalence(t, func(t *testing.T) Controller {
		ctrl, err := NewBonsai(TestConfig(SchemeAGITPlus))
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	})
}

func TestForkEquivalenceASIT(t *testing.T) {
	testForkEquivalence(t, func(t *testing.T) Controller {
		ctrl, err := NewSGX(TestConfig(SchemeASIT))
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	})
}

// TestForkEquivalenceWearLeveling repeats the AGIT check with Start-Gap
// wear leveling enabled, covering wearLeveler.clone and the persistent
// Start-Gap register across Fork.
func TestForkEquivalenceWearLeveling(t *testing.T) {
	testForkEquivalence(t, func(t *testing.T) Controller {
		cfg := TestConfig(SchemeAGITPlus)
		cfg.WearPeriod = 64
		ctrl, err := NewBonsai(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	})
}

// TestForkFanOut forks one warm parent several times and checks the
// children produce identical observations to each other and to a cold
// control — the N-trials-one-fill sweep shape.
func TestForkFanOut(t *testing.T) {
	const warm, total = 2000, 3000
	mk := func() Controller {
		ctrl, err := NewSGX(TestConfig(SchemeASIT))
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	cold := mk()
	equivWorkloadRange(t, cold, 0, warm)
	equivWorkloadRange(t, cold, warm, total)
	want := observeTrial(t, cold)

	parent := mk()
	equivWorkloadRange(t, parent, 0, warm)
	for i := 0; i < 3; i++ {
		child := parent.Clone()
		equivWorkloadRange(t, child, warm, total)
		got := observeTrial(t, child)
		checkObservation(t, "fan-out child", got, want)
	}
}
