package memctrl

import (
	"errors"
	"testing"

	"anubis/internal/nvm"
)

func newSelective(t *testing.T, persistentBlocks uint64) *Bonsai {
	t.Helper()
	cfg := TestConfig(SchemeSelective)
	cfg.PersistentBlocks = persistentBlocks
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSelectivePersistentRegionRecovers(t *testing.T) {
	// Half the memory is the persistent region.
	b := newSelective(t, 8192)
	for i := uint64(0); i < 200; i++ {
		addr := (i * 37) % 8192
		if err := b.WriteBlock(addr, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	// Every persistent-region write survives with full verification.
	for i := uint64(0); i < 200; i++ {
		addr := (i * 37) % 8192
		want := pattern(i)
		for j := i + 1; j < 200; j++ { // later writes to the same addr win
			if (j*37)%8192 == addr {
				want = pattern(j)
			}
		}
		got, err := b.ReadBlock(addr)
		if err != nil {
			t.Fatalf("persistent block %d: %v", addr, err)
		}
		if got != want {
			t.Fatalf("persistent block %d corrupted", addr)
		}
	}
}

func TestSelectiveRelaxedRegionLosesFreshness(t *testing.T) {
	// Writes to the relaxed region repeatedly bump a cached counter that
	// is never persisted: after a crash the stale counter cannot decrypt
	// the (persisted) newest data.
	b := newSelective(t, 8192)
	relaxed := uint64(9000)
	for i := uint64(0); i < 10; i++ {
		if err := b.WriteBlock(relaxed, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	_, err := b.ReadBlock(relaxed)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("stale relaxed counter read = %v, want IntegrityError", err)
	}
}

// TestSelectiveReplayVulnerability demonstrates the attack Osiris
// identified (§7): because relaxed counters may be stale after a crash
// and the root is re-anchored on boot, an attacker can restore data
// matching the stale counter and have OLD values verify as current —
// a silent rollback that every root-anchored scheme rejects.
func TestSelectiveReplayVulnerability(t *testing.T) {
	b := newSelective(t, 8192)
	relaxed := uint64(9000)

	// Version 1 is written and becomes fully persistent (flush).
	if err := b.WriteBlock(relaxed, pattern(1)); err != nil {
		t.Fatal(err)
	}
	b.FlushCaches()
	oldData := b.dev.Read(nvm.RegionData, relaxed)
	oldSide := b.dev.ReadSideband(relaxed)

	// Version 2 supersedes it; the data persists but the relaxed
	// counter update stays in the cache.
	if err := b.WriteBlock(relaxed, pattern(2)); err != nil {
		t.Fatal(err)
	}
	b.Crash()

	// The attacker restores the version-1 ciphertext+sideband, matching
	// the stale counter in NVM.
	b.dev.WriteRawData(relaxed, oldData, oldSide)

	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBlock(relaxed)
	if err != nil {
		t.Fatalf("replayed read failed (%v) — vulnerability not reproduced", err)
	}
	if got != pattern(1) {
		t.Fatal("replay returned unexpected content")
	}
	// The same attack against AGIT-Plus must be detected: its root is
	// compared, never re-anchored.
	a, err := NewBonsai(TestConfig(SchemeAGITPlus))
	if err != nil {
		t.Fatal(err)
	}
	a.WriteBlock(relaxed, pattern(1))
	a.FlushCaches()
	oldData = a.dev.Read(nvm.RegionData, relaxed)
	oldSide = a.dev.ReadSideband(relaxed)
	a.WriteBlock(relaxed, pattern(2))
	a.Crash()
	a.dev.WriteRawData(relaxed, oldData, oldSide)
	if _, err := a.Recover(); err == nil {
		if _, rerr := a.ReadBlock(relaxed); rerr == nil {
			t.Fatal("AGIT accepted the replay that selective atomicity accepts")
		}
	}
}

func TestSelectiveRecoveryIsWholeMemory(t *testing.T) {
	// The paper: selective atomicity "incurs significant overheads for
	// reconstructing Merkle Tree" — recovery rebuilds every node.
	b := newSelective(t, 0)
	b.WriteBlock(0, pattern(0))
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodesRebuilt != b.geom.TotalNodes() {
		t.Fatalf("rebuilt %d nodes, want the whole tree (%d)", rep.NodesRebuilt, b.geom.TotalNodes())
	}
}

func TestSelectiveWriteThroughTraffic(t *testing.T) {
	// Persistent-region writes persist the counter every time; relaxed
	// writes do not.
	b := newSelective(t, 8192)
	for i := uint64(0); i < 50; i++ {
		b.WriteBlock(100, pattern(i)) // persistent region
	}
	persistent := b.Stats().NVM.WritesTo(nvm.RegionCounter)
	if persistent < 50 {
		t.Fatalf("persistent-region counter writes = %d, want >= 50", persistent)
	}
	b2 := newSelective(t, 8192)
	for i := uint64(0); i < 50; i++ {
		b2.WriteBlock(9000, pattern(i)) // relaxed region
	}
	if got := b2.Stats().NVM.WritesTo(nvm.RegionCounter); got != 0 {
		t.Fatalf("relaxed-region counter writes = %d, want 0", got)
	}
}

func TestSelectiveOverheadScalesWithPersistentFraction(t *testing.T) {
	// §1: "its overhead scales with the amount of persistent data".
	run := func(persistent uint64) uint64 {
		cfg := TestConfig(SchemeSelective)
		cfg.PersistentBlocks = persistent
		b, err := NewBonsai(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 2000; i++ {
			b.AdvanceTo(b.Now() + 50)
			if err := b.WriteBlock((i*97)%b.NumBlocks(), pattern(i)); err != nil {
				t.Fatal(err)
			}
		}
		return b.Now()
	}
	none := run(1) // ~nothing persistent
	all := run(0)  // everything persistent
	if all <= none {
		t.Fatalf("full persistence (%d) not slower than none (%d)", all, none)
	}
}

func TestSelectiveZeroMeansAllPersistent(t *testing.T) {
	b := newSelective(t, 0)
	for i := uint64(0); i < 100; i++ {
		b.WriteBlock(i*131%b.NumBlocks(), pattern(i))
	}
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		addr := i * 131 % b.NumBlocks()
		if _, err := b.ReadBlock(addr); err != nil {
			t.Fatalf("block %d with full persistence: %v", addr, err)
		}
	}
}
