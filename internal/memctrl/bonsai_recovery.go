package memctrl

import (
	"fmt"
	"sort"

	"anubis/internal/counter"
	"anubis/internal/ecc"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
	"anubis/internal/shadow"
)

// Recover brings the controller back to a verified state after Crash.
//
//   - WriteBack has no mechanism and returns ErrNotRecoverable.
//   - Strict is instantly consistent: only the DONE_BIT redo runs.
//   - Osiris recovers every counter in memory via ECC trials and
//     reconstructs the entire Merkle tree bottom-up — the O(memory)
//     recovery the paper's Figure 5 prices at hours for TB capacities.
//   - AGIT-Read / AGIT-Plus run Algorithm 1: scan SCT and SMT, fix only
//     tracked counters, recompute only tracked tree nodes level by
//     level, then compare the resulting root with the on-chip root.
func (b *Bonsai) Recover() (*RecoveryReport, error) {
	rep, err := b.doRecover()
	if rep != nil {
		// Attribute any ops counted since the last phase boundary so the
		// phase ledger covers the whole pass, success or failure.
		rep.settlePhases()
	}
	if b.probe != nil && rep != nil {
		b.probe.Event(obs.EvRecovery, b.now, b.now+rep.ModeledNS(), rep.FetchOps+rep.CryptoOps)
	}
	return rep, err
}

func (b *Bonsai) doRecover() (*RecoveryReport, error) {
	rep := &RecoveryReport{Scheme: b.cfg.Scheme}
	rep.RedoneWrites = b.dev.RedoCommitted()

	// Restore the wear-leveling map before any data-region access.
	wl, err := reloadWearLeveler(b.dev, b.cfg.WearPeriod)
	if err != nil {
		return rep, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	b.wl = wl

	switch b.cfg.Scheme {
	case SchemeWriteBack:
		// No recovery mechanism. The controller is returned to service
		// so that reads can demonstrate the resulting state: consistent
		// only if the caches happened to be clean (e.g. after an orderly
		// FlushCaches), verification failures otherwise.
		if root, ok := b.dev.GetReg64(regBonsaiRoot); ok {
			b.rootHash = root
		}
		b.crashed = false
		return rep, fmt.Errorf("%w: write-back persists no security metadata", ErrNotRecoverable)
	case SchemeStrict:
		root, ok := b.dev.GetReg64(regBonsaiRoot)
		if !ok {
			return rep, fmt.Errorf("%w: missing root register", ErrUnrecoverable)
		}
		if b.dev.JournalLen() > 0 {
			// The crash fell inside an open epoch window: NVM counters
			// are current (strict persistence) but the tree and register
			// still describe the epoch start. Two-pass journal recovery:
			// roll journaled counters back to Old, check the stale
			// register, then replay New and re-anchor.
			entries, _, err := b.epochJournal(rep)
			if err != nil {
				return rep, err
			}
			levels := b.epochAncestorLevels(entries)
			rep.enterPhase(obs.RPJournalPassA)
			b.epochWriteCounters(entries, true, rep)
			b.epochRecompute(levels, rep)
			rep.enterPhase(obs.RPRootAnchor)
			if got := b.epochRootNVM(rep); got != root {
				return rep, fmt.Errorf("%w: epoch-start root %#x != stored root %#x", ErrUnrecoverable, got, root)
			}
			rep.enterPhase(obs.RPJournalPassB)
			b.epochReplayAndAnchor(entries, levels, rep)
			b.crashed = false
			return rep, nil
		}
		b.rootHash = root
		b.crashed = false
		return rep, nil
	case SchemeOsiris:
		return b.recoverOsirisFull(rep)
	case SchemeAGITRead, SchemeAGITPlus:
		return b.recoverAGIT(rep)
	case SchemeSelective:
		return b.recoverSelective(rep)
	case SchemeTriad:
		return b.recoverTriad(rep)
	}
	return rep, fmt.Errorf("%w: no recovery for scheme %v", ErrUnrecoverable, b.cfg.Scheme)
}

// osirisFixLane recovers the encryption counter of one data block.
//
// With RecoveryECC it tries candidates stored..stored+StopLoss against
// the decrypted block's ECC and data MAC — the Osiris mechanism (§2.4).
// With RecoveryPhase the counter's low 8 bits travel with the data, so
// the candidate is reconstructed directly and verified once.
func (b *Bonsai) osirisFixLane(idx, stored uint64, rep *RecoveryReport) (uint64, bool) {
	phys := b.wl.phys(idx)
	ct := b.dev.Read(nvm.RegionData, phys)
	rep.FetchOps++
	side := b.dev.ReadSideband(phys)
	var pt [BlockBytes]byte // reused across candidate trials: no per-trial alloc
	verify := func(cand uint64) bool {
		rep.CryptoOps++
		b.eng.DecryptTo(pt[:], ct[:], idx, cand)
		return ecc.CheckBlock(pt[:], side.ECC) && b.eng.DataMAC(idx, cand, pt[:]) == side.MAC
	}
	if b.cfg.Recovery == RecoveryPhase {
		// stored never exceeds the true counter, and the drift is below
		// 2^8 (a minor overflow force-persists the block), so the phase
		// identifies the counter uniquely.
		delta := uint64(uint8(side.Phase - uint8(stored)))
		cand := stored + delta
		if verify(cand) {
			return cand, true
		}
		return 0, false
	}
	for k := uint64(0); k <= uint64(b.cfg.StopLoss); k++ {
		if cand := stored + k; verify(cand) {
			return cand, true
		}
	}
	return 0, false
}

// fixCounterBlock repairs every lane of one counter block, rewriting it
// to NVM when anything changed. It reports failure when no candidate
// within the stop-loss window matches a lane's data.
func (b *Bonsai) fixCounterBlock(page uint64, rep *RecoveryReport) error {
	blk := b.dev.Read(nvm.RegionCounter, page)
	rep.FetchOps++
	s := counter.UnpackSplit(blk)
	changed := false
	base := page * counter.SplitMinors
	for lane := 0; lane < counter.SplitMinors; lane++ {
		idx := base + uint64(lane)
		if !b.dev.Has(nvm.RegionData, b.wl.phys(idx)) {
			continue // never written: counter must be current
		}
		stored := s.Counter(lane)
		cand, ok := b.osirisFixLane(idx, stored, rep)
		if !ok {
			return fmt.Errorf("%w: counter for block %d beyond stop-loss window", ErrUnrecoverable, idx)
		}
		if cand != stored {
			if cand>>counter.MinorBits != s.Major {
				return fmt.Errorf("%w: counter for block %d crossed a page overflow", ErrUnrecoverable, idx)
			}
			s.Minors[lane] = uint8(cand & counter.MinorMax)
			rep.CountersFixed++
			changed = true
		}
	}
	if changed {
		b.dev.WriteRaw(nvm.RegionCounter, page, s.Pack())
		rep.FetchOps++
	}
	return nil
}

// recoverOsirisFull is the no-Anubis baseline: every counter block in
// the whole memory is repaired, then the complete tree is rebuilt.
// Counter pages tracked by the epoch journal skip the ECC trials — the
// journal records their exact content — and go through the two-pass
// rollback/replay instead.
func (b *Bonsai) recoverOsirisFull(rep *RecoveryReport) (*RecoveryReport, error) {
	entries, journaled, err := b.epochJournal(rep)
	if err != nil {
		return rep, err
	}
	rep.enterPhase(obs.RPJournalPassA)
	b.epochWriteCounters(entries, true, rep) // pass A: epoch-start content
	// The scan's media fetches are the counter scan; the per-candidate
	// decrypt+check trials inside it are ECC verification work.
	rep.enterPhaseSplit(obs.RPCounterScan, obs.RPECCVerify)
	for page := uint64(0); page < b.numPages; page++ {
		if journaled[page] {
			continue
		}
		if err := b.fixCounterBlock(page, rep); err != nil {
			return rep, err
		}
	}
	rep.enterPhase(obs.RPMerkleRebuild)
	root := merkle.BuildGeneral(b.geom, b.eng,
		func(i uint64) [BlockBytes]byte { return b.dev.Read(nvm.RegionCounter, i) },
		func(flat uint64, n merkle.GNode) {
			b.dev.WriteRaw(nvm.RegionTree, flat, n)
			rep.FetchOps++
		},
		&rep.CryptoOps)
	rep.NodesRebuilt += b.geom.TotalNodes()
	want, _ := b.dev.GetReg64(regBonsaiRoot)
	if root != want {
		return rep, fmt.Errorf("%w: rebuilt root %#x != stored root %#x", ErrUnrecoverable, root, want)
	}
	if len(entries) > 0 {
		rep.enterPhase(obs.RPJournalPassB)
		b.epochReplayAndAnchor(entries, b.epochAncestorLevels(entries), rep)
	} else {
		b.rootHash = root
	}
	b.crashed = false
	return rep, nil
}

// recoverTriad rebuilds only the tree levels Triad-NVM does not persist
// at run time: counters and levels < TriadLevels are fresh in NVM, so
// reconstruction starts there and works upward, then the root is
// compared with the on-chip register. Cost is O(memory / 8^TriadLevels)
// — far below a full Osiris rebuild (no data reads, no ECC trials), but
// still memory-bound, which is the contrast with Anubis the paper draws
// in §7.
func (b *Bonsai) recoverTriad(rep *RecoveryReport) (*RecoveryReport, error) {
	// Epoch-journal pass A: with the pipeline on, the per-write counter
	// persists are current but the coalesced lower-level node persists
	// only land at epoch close — NVM's lower tree describes the epoch
	// start. Roll journaled counters back and restore their lower paths
	// before the upper rebuild checks the (stale) register.
	entries, _, jerr := b.epochJournal(rep)
	if jerr != nil {
		return rep, jerr
	}
	jLevels := b.epochAncestorLevels(entries)
	rep.enterPhase(obs.RPJournalPassA)
	b.epochWriteCounters(entries, true, rep)
	b.epochRecompute(jLevels, rep)
	rep.enterPhase(obs.RPMerkleRebuild)
	start := b.cfg.TriadLevels
	if start > b.geom.Levels() {
		start = b.geom.Levels()
	}
	for level := start; level < b.geom.Levels(); level++ {
		for idx := uint64(0); idx < b.geom.NodesAt(level); idx++ {
			b.recomputeNode(level, idx, rep)
		}
	}
	rep.enterPhase(obs.RPRootAnchor)
	root := b.epochRootNVM(rep)
	want, _ := b.dev.GetReg64(regBonsaiRoot)
	if root != want {
		return rep, fmt.Errorf("%w: rebuilt root %#x != stored root %#x", ErrUnrecoverable, root, want)
	}
	if len(entries) > 0 {
		rep.enterPhase(obs.RPJournalPassB)
		b.epochReplayAndAnchor(entries, jLevels, rep)
	} else {
		b.rootHash = root
	}
	b.crashed = false
	return rep, nil
}

// recoverSelective implements the selective counter atomicity baseline's
// restart: the integrity tree is rebuilt from whatever counters NVM
// holds and the on-chip root is re-anchored to the result ("trust on
// boot"). Persistent-region counters are current by construction, so
// that region recovers with full freshness. Relaxed counters may be
// stale, which surfaces in two ways the paper and Osiris point out:
// recently written relaxed blocks fail verification (data newer than
// counter), and an attacker can pair a stale counter with equally stale
// data so that old values verify as current — a replay. Recovery is
// also O(memory): the whole tree must be reconstructed.
func (b *Bonsai) recoverSelective(rep *RecoveryReport) (*RecoveryReport, error) {
	// Trust-on-boot has no stale-root check to satisfy, so there is no
	// pass A: the journal's latest content is applied directly before
	// the rebuild re-anchors the register.
	entries, _, jerr := b.epochJournal(rep)
	if jerr != nil {
		return rep, jerr
	}
	rep.enterPhase(obs.RPJournalPassB)
	b.epochWriteCounters(entries, false, rep)
	b.dev.JournalReset()
	rep.enterPhase(obs.RPMerkleRebuild)
	root := merkle.BuildGeneral(b.geom, b.eng,
		func(i uint64) [BlockBytes]byte { return b.dev.Read(nvm.RegionCounter, i) },
		func(flat uint64, n merkle.GNode) {
			b.dev.WriteRaw(nvm.RegionTree, flat, n)
			rep.FetchOps++
		},
		&rep.CryptoOps)
	rep.NodesRebuilt += b.geom.TotalNodes()
	// Trust on boot: unlike every root-anchored scheme, the register is
	// overwritten with the rebuilt value instead of being compared.
	b.rootHash = root
	b.dev.SetReg64(regBonsaiRoot, root)
	b.crashed = false
	return rep, nil
}

// recoverAGIT implements Algorithm 1 of the paper, extended with the
// epoch journal's two-pass rollback/replay: journaled counter blocks
// have exact content on chip (no ECC trials), and their deferred root
// paths — which may have no SMT entry, since mid-epoch writes touch no
// tree nodes — join the recompute set.
func (b *Bonsai) recoverAGIT(rep *RecoveryReport) (*RecoveryReport, error) {
	// 0. Epoch-journal pass A: roll journaled counters back to their
	// epoch-start content, the state the stale root register covers.
	entries, journaled, jerr := b.epochJournal(rep)
	if jerr != nil {
		return rep, jerr
	}
	jLevels := b.epochAncestorLevels(entries)
	rep.enterPhase(obs.RPJournalPassA)
	b.epochWriteCounters(entries, true, rep)

	// 1. Read the SCT and repair every tracked counter block. The
	// restored tables also become the controller's live mirrors: a
	// mirror that disagreed with NVM would corrupt neighbouring entries
	// on the next 64-byte shadow block write.
	rep.enterPhase(obs.RPShadowReplay)
	sct := shadow.RestoreAddrTable(b.cCache.NumSlots(), func(bi uint64) [BlockBytes]byte {
		rep.FetchOps++
		return b.dev.Read(nvm.RegionSCT, bi)
	})
	b.sct = sct
	rep.enterPhaseSplit(obs.RPCounterScan, obs.RPECCVerify)
	seenPages := make(map[uint64]bool)
	for _, tr := range sct.Live() {
		rep.EntriesScanned++
		if seenPages[tr.Key] {
			continue // stale duplicate entry for the same block
		}
		seenPages[tr.Key] = true
		// The SCT lives in NVM and can be corrupted by a torn or partial
		// crash: a key outside the counter region would otherwise panic
		// deep in the wear-leveling map during repair.
		if tr.Key >= b.numPages {
			return rep, fmt.Errorf("%w: SCT tracks counter page %#x beyond memory (%d pages)", ErrUnrecoverable, tr.Key, b.numPages)
		}
		if journaled[tr.Key] {
			continue // exact content came from the epoch journal
		}
		if err := b.fixCounterBlock(tr.Key, rep); err != nil {
			return rep, err
		}
	}

	// 2. Read the SMT and classify tracked nodes by tree level.
	rep.enterPhase(obs.RPShadowReplay)
	smt := shadow.RestoreAddrTable(b.tCache.NumSlots(), func(bi uint64) [BlockBytes]byte {
		rep.FetchOps++
		return b.dev.Read(nvm.RegionSMT, bi)
	})
	b.smt = smt
	byLevel := make(map[int][]uint64)
	seenNodes := make(map[uint64]bool)
	for _, tr := range smt.Live() {
		rep.EntriesScanned++
		if seenNodes[tr.Key] {
			continue
		}
		seenNodes[tr.Key] = true
		// Same defense as the SCT scan: a corrupt SMT key outside the
		// tree would panic inside Geometry.Unflat.
		if tr.Key >= b.geom.TotalNodes() {
			return rep, fmt.Errorf("%w: SMT tracks tree node %#x beyond the tree (%d nodes)", ErrUnrecoverable, tr.Key, b.geom.TotalNodes())
		}
		level, idx := b.geom.Unflat(tr.Key)
		byLevel[level] = append(byLevel[level], idx)
	}

	// 3. Recompute affected nodes bottom-up: repairing a level relies on
	// the level below being already fixed (Algorithm 1, line 9+). The
	// journaled pages' root paths join the set: their updates were
	// deferred, so no SMT entry tracks them.
	rep.enterPhase(obs.RPMerkleRebuild)
	for level := 0; level < b.geom.Levels(); level++ {
		idxs := append(byLevel[level], jLevels[level]...)
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		prev := uint64(0)
		for k, idx := range idxs {
			if k > 0 && idx == prev {
				continue
			}
			prev = idx
			b.recomputeNode(level, idx, rep)
		}
	}

	// 4. Compare the resulting root against the on-chip root register.
	rep.enterPhase(obs.RPRootAnchor)
	root := b.epochRootNVM(rep)
	want, _ := b.dev.GetReg64(regBonsaiRoot)
	if root != want {
		return rep, fmt.Errorf("%w: recovered root %#x != stored root %#x", ErrUnrecoverable, root, want)
	}

	// 5. Epoch-journal pass B: replay the latest content and re-anchor.
	if len(entries) > 0 {
		rep.enterPhase(obs.RPJournalPassB)
		b.epochReplayAndAnchor(entries, jLevels, rep)
	} else {
		b.rootHash = root
	}
	b.crashed = false
	return rep, nil
}

// recomputeNode rebuilds one tree node from its (already repaired)
// children and writes it back.
func (b *Bonsai) recomputeNode(level int, idx uint64, rep *RecoveryReport) {
	first, n := b.geom.ChildrenOf(level, idx)
	var node merkle.GNode
	for s := 0; s < n; s++ {
		child := first + uint64(s)
		var h uint64
		if level == 0 {
			blk := b.dev.Read(nvm.RegionCounter, child)
			rep.FetchOps++
			h = b.eng.ContentHash(blk[:])
		} else {
			blk := b.treeNodeNVM(b.geom.Flat(level-1, child))
			rep.FetchOps++
			h = b.eng.ContentHash(blk[:])
		}
		rep.CryptoOps++
		node.SetHash(s, h)
	}
	b.dev.WriteRaw(nvm.RegionTree, b.geom.Flat(level, idx), node)
	rep.FetchOps++
	rep.NodesRebuilt++
}

// --- epoch-journal two-pass recovery helpers --------------------------------
//
// A crash inside an open epoch window (bonsai_epoch.go) leaves the root
// register anchoring the epoch-start state while NVM may already hold
// newer journaled content. The on-chip journal records, per touched
// counter page, both the epoch-start content (Old — what the stale
// register covers) and the authoritative latest content (New). Recovery
// runs two passes over it:
//
//	pass A  write Old back, restore the journaled root paths, and
//	        verify the recomputed root against the stale register;
//	pass B  write New, recompute the same paths, anchor the fresh
//	        root, and clear the journal.

// epochJournal returns the journal's entries with their keys
// bounds-checked, plus the journaled-page set, and records the count in
// the report. Empty (not an error) when no window was open.
func (b *Bonsai) epochJournal(rep *RecoveryReport) ([]nvm.JournalEntry, map[uint64]bool, error) {
	if b.dev.JournalLen() == 0 {
		return nil, nil, nil
	}
	entries := b.dev.JournalEntries()
	pages := make(map[uint64]bool, len(entries))
	for i := range entries {
		if entries[i].Key >= b.numPages {
			return nil, nil, fmt.Errorf("%w: epoch journal tracks counter page %#x beyond memory (%d pages)",
				ErrUnrecoverable, entries[i].Key, b.numPages)
		}
		pages[entries[i].Key] = true
	}
	rep.JournalPages = uint64(len(entries))
	return entries, pages, nil
}

// epochAncestorLevels returns, per tree level, the sorted deduplicated
// node indices on the journaled pages' root paths. The outer slice
// always has geom.Levels() entries (all nil for an empty journal).
func (b *Bonsai) epochAncestorLevels(entries []nvm.JournalEntry) [][]uint64 {
	out := make([][]uint64, b.geom.Levels())
	seen := make(map[uint64]bool)
	for i := range entries {
		child := entries[i].Key
		for level := 0; level < b.geom.Levels(); level++ {
			idx := child / merkle.Arity
			flat := b.geom.Flat(level, idx)
			if !seen[flat] {
				seen[flat] = true
				out[level] = append(out[level], idx)
			}
			child = idx
		}
	}
	for _, idxs := range out {
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	}
	return out
}

// epochWriteCounters lands each journaled page's Old (pass A) or New
// (pass B) content in the counter region.
func (b *Bonsai) epochWriteCounters(entries []nvm.JournalEntry, old bool, rep *RecoveryReport) {
	for i := range entries {
		blk := entries[i].New
		if old {
			blk = entries[i].Old
		}
		b.dev.WriteRaw(nvm.RegionCounter, entries[i].Key, blk)
		rep.FetchOps++
	}
}

// epochRecompute rebuilds the given per-level node sets bottom-up.
func (b *Bonsai) epochRecompute(levels [][]uint64, rep *RecoveryReport) {
	for level, idxs := range levels {
		for _, idx := range idxs {
			b.recomputeNode(level, idx, rep)
		}
	}
}

// epochRootNVM hashes the root node currently in NVM.
func (b *Bonsai) epochRootNVM(rep *RecoveryReport) uint64 {
	rootNode := b.treeNodeNVM(b.geom.Flat(b.geom.RootLevel(), 0))
	rep.FetchOps++
	rep.CryptoOps++
	return b.eng.ContentHash(rootNode[:])
}

// epochReplayAndAnchor is pass B: replay the journal's latest content,
// recompute the journaled root paths, install the fresh root and clear
// the journal.
func (b *Bonsai) epochReplayAndAnchor(entries []nvm.JournalEntry, levels [][]uint64, rep *RecoveryReport) {
	b.epochWriteCounters(entries, false, rep)
	b.epochRecompute(levels, rep)
	root := b.epochRootNVM(rep)
	b.rootHash = root
	b.dev.SetReg64(regBonsaiRoot, root)
	b.dev.JournalReset()
}
