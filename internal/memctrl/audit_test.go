package memctrl

import (
	"bytes"
	"math/rand"
	"testing"

	"anubis/internal/nvm"
)

func fillRandom(t *testing.T, ctrl Controller, n int, seed int64) map[uint64][BlockBytes]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	expect := map[uint64][BlockBytes]byte{}
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(int(ctrl.NumBlocks())))
		var d [BlockBytes]byte
		rng.Read(d[:])
		if err := ctrl.WriteBlock(addr, d); err != nil {
			t.Fatal(err)
		}
		expect[addr] = d
	}
	return expect
}

func TestAuditCleanImage(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (Controller, error)
	}{
		{"bonsai-agit", func() (Controller, error) { return NewBonsai(TestConfig(SchemeAGITPlus)) }},
		{"bonsai-wear", func() (Controller, error) {
			cfg := TestConfig(SchemeAGITPlus)
			cfg.WearPeriod = 3
			return NewBonsai(cfg)
		}},
		{"sgx-asit", func() (Controller, error) { return NewSGX(TestConfig(SchemeASIT)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctrl, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			fillRandom(t, ctrl, 400, 3)
			rep, err := ctrl.AuditNVM()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("clean image reported violations: %v", rep.Violations)
			}
			if rep.DataBlocks == 0 {
				t.Fatal("audit checked no data blocks")
			}
		})
	}
}

func TestAuditDetectsDataCorruption(t *testing.T) {
	b, _ := NewBonsai(TestConfig(SchemeStrict))
	fillRandom(t, b, 100, 4)
	b.FlushCaches()
	blocks := b.Device().BlocksIn(nvm.RegionData)
	b.Device().CorruptBlock(nvm.RegionData, blocks[len(blocks)/2], 5, 0x20)
	rep, err := b.AuditNVM()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed data corruption")
	}
}

func TestAuditDetectsCounterCorruption(t *testing.T) {
	b, _ := NewBonsai(TestConfig(SchemeStrict))
	fillRandom(t, b, 100, 5)
	b.FlushCaches()
	blocks := b.Device().BlocksIn(nvm.RegionCounter)
	b.Device().CorruptBlock(nvm.RegionCounter, blocks[0], 9, 0x01)
	rep, err := b.AuditNVM()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed counter corruption")
	}
}

func TestAuditSGXDetectsTreeCorruption(t *testing.T) {
	c, _ := NewSGX(TestConfig(SchemeASIT))
	fillRandom(t, c, 600, 6)
	c.FlushCaches()
	blocks := c.Device().BlocksIn(nvm.RegionTree)
	if len(blocks) == 0 {
		t.Skip("no tree nodes persisted")
	}
	c.Device().CorruptBlock(nvm.RegionTree, blocks[0], 2, 0x10)
	rep, err := c.AuditNVM()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed tree corruption")
	}
}

func TestAuditRefusesCrashedController(t *testing.T) {
	b, _ := NewBonsai(TestConfig(SchemeAGITPlus))
	b.WriteBlock(0, pattern(0))
	b.Crash()
	if _, err := b.AuditNVM(); err == nil {
		t.Fatal("audit ran on a crashed controller")
	}
}

// --- image save/load round trips ---

func TestImageRoundTripBonsai(t *testing.T) {
	cfg := TestConfig(SchemeAGITPlus)
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expect := fillRandom(t, b, 300, 7)
	b.FlushCaches()

	var buf bytes.Buffer
	if err := b.Device().Save(&buf); err != nil {
		t.Fatal(err)
	}
	dev, err := nvm.LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := OpenBonsai(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Recover(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range expect {
		got, err := b2.ReadBlock(addr)
		if err != nil || got != want {
			t.Fatalf("block %d after image reload: %v", addr, err)
		}
	}
	rep, err := b2.AuditNVM()
	if err != nil || !rep.OK() {
		t.Fatalf("audit after reload: %v %v", err, rep.Violations)
	}
}

func TestImageRoundTripDirtyCrash(t *testing.T) {
	// An image saved mid-crash (dirty cache lost) must recover on load —
	// the full process-restart story.
	cfg := TestConfig(SchemeASIT)
	c, err := NewSGX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expect := fillRandom(t, c, 300, 8)
	c.Crash() // dirty state lost; shadow table holds the truth

	var buf bytes.Buffer
	if err := c.Device().Save(&buf); err != nil {
		t.Fatal(err)
	}
	dev, err := nvm.LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSGX(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Recover(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range expect {
		got, err := c2.ReadBlock(addr)
		if err != nil || got != want {
			t.Fatalf("block %d after dirty-image reload: %v", addr, err)
		}
	}
}

func TestImageRoundTripWearLeveling(t *testing.T) {
	cfg := TestConfig(SchemeAGITPlus)
	cfg.WearPeriod = 2
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expect := fillRandom(t, b, 300, 9)
	b.Crash()
	var buf bytes.Buffer
	if err := b.Device().Save(&buf); err != nil {
		t.Fatal(err)
	}
	dev, err := nvm.LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := OpenBonsai(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Recover(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range expect {
		got, err := b2.ReadBlock(addr)
		if err != nil || got != want {
			t.Fatalf("block %d with wear map reload: %v", addr, err)
		}
	}
}

func TestImageInterruptedCommitRedo(t *testing.T) {
	// A committed-but-undrained group travels with the image and is
	// redone on the other side.
	cfg := TestConfig(SchemeStrict)
	b, _ := NewBonsai(cfg)
	b.WriteBlock(9, pattern(1))
	b.Device().SetPushBudget(1)
	b.WriteBlock(9, pattern(2))
	b.Crash()
	var buf bytes.Buffer
	if err := b.Device().Save(&buf); err != nil {
		t.Fatal(err)
	}
	dev, err := nvm.LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := OpenBonsai(cfg, dev)
	rep, err := b2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneWrites == 0 {
		t.Fatal("interrupted group not redone after image reload")
	}
	got, err := b2.ReadBlock(9)
	if err != nil || got != pattern(2) {
		t.Fatalf("committed write lost across image reload: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := nvm.LoadDevice(bytes.NewReader([]byte("not an image"))); err == nil {
		t.Fatal("garbage image accepted")
	}
}
