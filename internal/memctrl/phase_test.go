package memctrl

import (
	"math/rand"
	"testing"
)

func newPhaseBonsai(t *testing.T, s Scheme) *Bonsai {
	t.Helper()
	cfg := TestConfig(s)
	cfg.Recovery = RecoveryPhase
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPhaseRecoveryRoundTrip(t *testing.T) {
	for _, s := range []Scheme{SchemeOsiris, SchemeAGITRead, SchemeAGITPlus} {
		t.Run(s.String(), func(t *testing.T) {
			b := newPhaseBonsai(t, s)
			rng := rand.New(rand.NewSource(21))
			expect := map[uint64][BlockBytes]byte{}
			for i := 0; i < 400; i++ {
				addr := uint64(rng.Intn(int(b.NumBlocks())))
				d := pattern(uint64(i) * 7)
				if err := b.WriteBlock(addr, d); err != nil {
					t.Fatal(err)
				}
				expect[addr] = d
			}
			b.Crash()
			if _, err := b.Recover(); err != nil {
				t.Fatal(err)
			}
			for addr, want := range expect {
				got, err := b.ReadBlock(addr)
				if err != nil || got != want {
					t.Fatalf("block %d: %v", addr, err)
				}
			}
		})
	}
}

func TestPhaseNeedsNoStopLossWrites(t *testing.T) {
	// The phase travels with the data, so the run-time stop-loss
	// persistence disappears entirely.
	b := newPhaseBonsai(t, SchemeOsiris)
	for i := 0; i < 50; i++ {
		b.WriteBlock(uint64(i%4), pattern(uint64(i))) // hammer page 0
	}
	if got := b.Stats().StopLossWrites; got != 0 {
		t.Fatalf("phase mode made %d stop-loss writes, want 0", got)
	}
	// The same workload under ECC mode persists every 4th update.
	e, err := NewBonsai(TestConfig(SchemeOsiris))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.WriteBlock(uint64(i%4), pattern(uint64(i)))
	}
	if e.Stats().StopLossWrites == 0 {
		t.Fatal("ECC mode made no stop-loss writes")
	}
}

func TestPhaseRecoveryFewerTrials(t *testing.T) {
	// Phase recovery does exactly one decrypt per counter; ECC recovery
	// averages more (stored counters lag by up to StopLoss-1).
	run := func(rec CounterRecovery) *RecoveryReport {
		cfg := TestConfig(SchemeOsiris)
		cfg.Recovery = rec
		cfg.StopLoss = 16 // widen the drift window so trials matter
		b, err := NewBonsai(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			b.WriteBlock(0, pattern(uint64(i))) // one lane, maximal drift
		}
		b.Crash()
		rep, err := b.Recover()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	phase := run(RecoveryPhase)
	eccRep := run(RecoveryECC)
	if phase.CryptoOps >= eccRep.CryptoOps {
		t.Fatalf("phase crypto ops (%d) not below ECC trials (%d)", phase.CryptoOps, eccRep.CryptoOps)
	}
}

func TestPhaseSurvivesDeepDrift(t *testing.T) {
	// Without stop-loss persists the cached counter can drift far ahead
	// of NVM (up to a page overflow); the phase must still pin it.
	b := newPhaseBonsai(t, SchemeAGITPlus)
	for i := 0; i < 100; i++ { // 100 updates to one lane, page 0 never persisted
		if err := b.WriteBlock(0, pattern(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBlock(0)
	if err != nil || got != pattern(99) {
		t.Fatalf("deep-drift block after recovery: %v", err)
	}
}

func TestPhaseCrashLoopSoak(t *testing.T) {
	b := newPhaseBonsai(t, SchemeAGITPlus)
	rng := rand.New(rand.NewSource(5))
	expect := map[uint64][BlockBytes]byte{}
	for round := 0; round < 5; round++ {
		tortureRound(t, b, rng, expect, 200, round == 3)
	}
}

func TestRecoveryModeString(t *testing.T) {
	if RecoveryECC.String() != "ecc" || RecoveryPhase.String() != "phase" {
		t.Fatal("CounterRecovery strings wrong")
	}
}
