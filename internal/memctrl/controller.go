// Package memctrl implements the secure NVM memory controllers the
// paper evaluates: counter-mode encryption, integrity trees, metadata
// caching, crash persistence, and post-crash recovery.
//
// Two controller families exist, matching §6.1 and §6.2 of the paper:
//
//   - Bonsai (NewBonsai): split counters + general non-parallelizable
//     8-ary Merkle tree with an eager (root-always-fresh) update policy.
//     Schemes: WriteBack (baseline, unrecoverable), Strict, Osiris,
//     AGIT-Read, AGIT-Plus.
//   - SGX (NewSGX): SGX-style counter blocks + parallelizable nonce tree
//     with a lazy (Vault/Synergy) update policy and a combined metadata
//     cache. Schemes: WriteBack, Strict, Osiris (unrecoverable on this
//     tree — the paper's motivating observation), ASIT.
//
// Both expose the same Controller interface; the trace-driven simulator
// (internal/sim) and the recovery experiments drive them through it.
package memctrl

import (
	"errors"
	"fmt"
	"math/rand"

	"anubis/internal/cache"
	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// BlockBytes is the data access granularity (one cache line).
const BlockBytes = 64

// PageBytes is the page size one split-counter block covers.
const PageBytes = 4096

// Scheme selects the persistence/recovery mechanism of a controller.
type Scheme int

const (
	// SchemeWriteBack is the plain write-back baseline: lowest overhead,
	// no crash recoverability (figures 10 and 11, scheme ①).
	SchemeWriteBack Scheme = iota
	// SchemeStrict persists every counter and tree update up to the root
	// on each write (scheme ②): recoverable, ~63% overhead.
	SchemeStrict
	// SchemeOsiris adds the stop-loss counter persistence of Osiris
	// (Ye et al., MICRO 2018) to the write-back baseline (scheme ③).
	// Counters are recoverable; general-tree recovery takes O(memory),
	// SGX-tree recovery is impossible.
	SchemeOsiris
	// SchemeAGITRead is Anubis for general integrity trees, tracking
	// metadata cache fills in the SCT/SMT (scheme ④, §4.2.1).
	SchemeAGITRead
	// SchemeAGITPlus tracks only first modifications (scheme ⑤, §4.2.2).
	SchemeAGITPlus
	// SchemeASIT is Anubis for SGX-style integrity trees: the shadow
	// table holds an exact integrity-protected snapshot of the metadata
	// cache (§4.3).
	SchemeASIT
	// SchemeTriad is a Triad-NVM-style baseline (Awad et al., ISCA 2019;
	// the paper's reference [24], discussed in §7): encryption counters
	// and the first TriadLevels tree levels persist on every write, so
	// recovery only rebuilds the levels above — a knob trading run-time
	// overhead against recovery time. Unlike Anubis, recovery still
	// scales with memory size (O(memory/8^k)), and SGX-style trees
	// remain unrecoverable.
	SchemeTriad
	// SchemeSelective is the selective counter atomicity baseline (Liu
	// et al., HPCA 2018; the paper's reference [8]): counters of a
	// designated persistent region are written through on every update,
	// all other counters are relaxed, and recovery rebuilds the tree
	// from whatever counters NVM holds and re-anchors the root to it
	// ("trust on boot"). As the paper and Osiris observe, the relaxed
	// counters open a replay window after a crash — demonstrated in the
	// tests — and recovery still costs a whole-memory tree rebuild.
	SchemeSelective
)

// MarshalText renders the scheme name, so JSON reports and scheme-keyed
// maps say "agit-plus" instead of enum ordinals.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a scheme name produced by String.
func (s *Scheme) UnmarshalText(b []byte) error {
	for c := SchemeWriteBack; c <= SchemeSelective; c++ {
		if c.String() == string(b) {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("memctrl: unknown scheme %q", b)
}

func (s Scheme) String() string {
	switch s {
	case SchemeWriteBack:
		return "writeback"
	case SchemeStrict:
		return "strict"
	case SchemeOsiris:
		return "osiris"
	case SchemeAGITRead:
		return "agit-read"
	case SchemeAGITPlus:
		return "agit-plus"
	case SchemeASIT:
		return "asit"
	case SchemeSelective:
		return "selective"
	case SchemeTriad:
		return "triad"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Config parameterizes a controller. DefaultConfig matches Table 1 of
// the paper.
type Config struct {
	// MemoryBytes is the protected data capacity. Geometry (tree depth,
	// counter count) follows from it; storage is sparse, so large
	// capacities cost only for the blocks actually touched.
	MemoryBytes uint64

	// CounterCacheBlocks/Ways size the Bonsai counter cache.
	CounterCacheBlocks int
	CounterCacheWays   int
	// TreeCacheBlocks/Ways size the Bonsai Merkle tree cache.
	TreeCacheBlocks int
	TreeCacheWays   int
	// MetaCacheBlocks/Ways size the SGX combined metadata cache.
	MetaCacheBlocks int
	MetaCacheWays   int

	// StopLoss is the Osiris stop-loss limit: a counter block is force-
	// persisted after this many un-persisted updates (paper uses 4).
	StopLoss int

	// Recovery selects the counter-recovery backend used by the Osiris
	// and AGIT schemes on the general tree (§2.4 discusses both).
	Recovery CounterRecovery

	// WearPeriod enables Start-Gap wear leveling of the data region when
	// positive: the gap moves every WearPeriod data writes. Zero
	// disables leveling.
	WearPeriod int

	// TriadLevels is SchemeTriad's resilience knob: the number of tree
	// levels (above the counters) persisted on every write.
	TriadLevels int

	// PersistentBlocks bounds the persistent region for SchemeSelective:
	// writes to data blocks below this index persist their counter
	// block immediately; all others are relaxed. Zero means the whole
	// memory is treated as persistent.
	PersistentBlocks uint64

	// HashNS is the hash/MAC engine latency charged on the critical path.
	HashNS uint64

	// EpochRequests enables the bank-parallel epoch pipeline when > 1:
	// integrity-tree updates (Bonsai eager tree path, ASIT shadow-tree
	// refresh) are deferred into a coalescing buffer and drained as one
	// commit group every EpochRequests data writes — one persisted
	// ancestor per epoch instead of one per request. The window between
	// drains is covered by the persistent epoch journal (nvm.JournalEntry),
	// which keeps recovery exact. 0 or 1 selects the legacy per-request
	// lockstep path, byte-identical to pre-epoch builds.
	EpochRequests int

	// Timing parameterizes the NVM device.
	Timing nvm.Timing

	Scheme Scheme
}

// DefaultConfig returns the paper's Table 1 configuration: 16 GB PCM,
// 256 KB 8-way counter cache, 256 KB 16-way tree cache, 512 KB combined
// metadata cache, stop-loss 4.
func DefaultConfig(s Scheme) Config {
	return Config{
		MemoryBytes:        16 << 30,
		CounterCacheBlocks: 256 * 1024 / BlockBytes,
		CounterCacheWays:   8,
		TreeCacheBlocks:    256 * 1024 / BlockBytes,
		TreeCacheWays:      16,
		MetaCacheBlocks:    512 * 1024 / BlockBytes,
		MetaCacheWays:      8,
		StopLoss:           4,
		HashNS:             40,
		Timing:             nvm.DefaultTiming(),
		Scheme:             s,
	}
}

// TestConfig returns a small configuration suitable for unit tests:
// 1 MB of memory and tiny caches, so recovery paths and evictions are
// exercised quickly.
func TestConfig(s Scheme) Config {
	c := DefaultConfig(s)
	c.MemoryBytes = 1 << 20
	c.CounterCacheBlocks = 32
	c.CounterCacheWays = 4
	c.TreeCacheBlocks = 32
	c.TreeCacheWays = 4
	c.MetaCacheBlocks = 64
	c.MetaCacheWays = 8
	return c
}

func (c *Config) validate() error {
	if c.MemoryBytes == 0 || c.MemoryBytes%PageBytes != 0 {
		return fmt.Errorf("memctrl: memory size %d must be a positive multiple of %d", c.MemoryBytes, PageBytes)
	}
	if c.StopLoss <= 0 {
		return errors.New("memctrl: stop-loss must be positive")
	}
	return nil
}

// CounterRecovery selects how lost encryption counters are identified
// after a crash.
type CounterRecovery int

const (
	// RecoveryECC is Osiris proper: decrypt with candidate counters
	// stored..stored+StopLoss and accept the one whose ECC (and data
	// MAC) checks out. Needs stop-loss persistence at run time.
	RecoveryECC CounterRecovery = iota
	// RecoveryPhase stores the low 8 bits of the encryption counter in
	// the data block's sideband ("extending the data bus", §2.4):
	// recovery reads the phase directly — one operation per counter, no
	// trials — and no stop-loss persistence is needed at run time
	// because the phase bounds counter drift by 2^8 (minor counters
	// overflow, and force a persist, long before that).
	RecoveryPhase
)

func (r CounterRecovery) String() string {
	if r == RecoveryPhase {
		return "phase"
	}
	return "ecc"
}

// IntegrityError reports a failed integrity verification: either an
// attack (tampered NVM) or irrecoverable post-crash state.
type IntegrityError struct {
	What string // which check failed
	Addr uint64 // offending block address/index
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("memctrl: integrity violation: %s at %#x", e.What, e.Addr)
}

// ErrUnrecoverable is wrapped by Recover when the post-crash state
// cannot be brought back to a verified condition.
var ErrUnrecoverable = errors.New("memctrl: system unrecoverable")

// ErrNotRecoverable is returned by Recover for schemes that provide no
// recovery mechanism at all (write-back baselines, Osiris on SGX trees).
var ErrNotRecoverable = errors.New("memctrl: scheme does not support recovery")

// ErrCrashed is returned (possibly wrapped) by every I/O or audit call
// issued against a crashed controller before Recover has run. A serving
// layer matches it with errors.Is to distinguish "tenant is mid-crash,
// retry after recovery" from real failures.
var ErrCrashed = errors.New("memctrl: controller is crashed; call Recover first")

// RunStats aggregates a controller's run-time activity.
type RunStats struct {
	ReadRequests  uint64 `json:"read_requests"`
	WriteRequests uint64 `json:"write_requests"`

	// ShadowWrites counts NVM writes into SCT/SMT/ST regions.
	ShadowWrites uint64 `json:"shadow_writes"`
	// StopLossWrites counts counter blocks persisted by the stop-loss rule.
	StopLossWrites uint64 `json:"stop_loss_writes"`
	// StrictWrites counts metadata blocks persisted by strict persistence.
	StrictWrites uint64 `json:"strict_writes"`
	// PageOverflows counts split-counter page re-encryptions.
	PageOverflows uint64 `json:"page_overflows"`

	NVM nvm.Stats `json:"nvm"`

	CounterCache cache.Stats `json:"counter_cache"`
	TreeCache    cache.Stats `json:"tree_cache"` // combined metadata cache for SGX family

	// Attribution decomposes every nanosecond of controller virtual time
	// into named stall components (cpu gap, bank busy, WPQ stall, counter
	// and tree fills, crypto, shadow writes). The components sum exactly
	// to the controller clock — the sum-exact invariant the attribution
	// tests assert.
	Attribution obs.Ledger `json:"attribution_ns"`
}

// RecoveryReport describes a completed (or failed) recovery.
type RecoveryReport struct {
	Scheme Scheme `json:"scheme"`

	// FetchOps counts 64-byte blocks fetched from NVM during recovery;
	// CryptoOps counts hash/decrypt+check operations. The paper's model
	// prices recovery at 100 ns per op (footnote 1 / §6.3.1).
	FetchOps  uint64 `json:"fetch_ops"`
	CryptoOps uint64 `json:"crypto_ops"`

	CountersFixed  uint64 `json:"counters_fixed"`  // encryption counters repaired (Osiris trials)
	NodesRebuilt   uint64 `json:"nodes_rebuilt"`   // tree nodes recomputed (AGIT) or spliced (ASIT)
	EntriesScanned uint64 `json:"entries_scanned"` // shadow table entries visited

	RedoneWrites int `json:"redone_writes"` // commit-group writes replayed via DONE_BIT

	// JournalPages counts epoch-journal entries replayed by the two-pass
	// mid-epoch recovery (0 when the crash fell between epoch windows or
	// the epoch pipeline was off).
	JournalPages uint64 `json:"journal_pages,omitempty"`

	// Phases decomposes the modeled recovery time into the recovery
	// phase taxonomy (DESIGN.md §16). Every counted op is attributed to
	// exactly one phase via delta accounting at phase boundaries, so
	// Phases.Total() == ModeledNS() holds by construction — the
	// sum-exact contract TestRecoveryAttributionSumExact asserts.
	Phases obs.RecLedger `json:"recovery_phase_ns"`

	// Delta-accounting state: the phase ops counted since the last
	// boundary belong to, and how many fetch/crypto ops have already
	// been settled into Phases. Crypto ops can be routed to a different
	// phase than fetches (cryptoPhase) so interleaved work — e.g. ECC
	// trials inside the counter scan — lands in its own phase without
	// touching every charge site.
	phase       obs.RecPhase
	cryptoPhase obs.RecPhase
	seenFetch   uint64
	seenCrypto  uint64
}

// enterPhase settles all ops counted since the previous boundary into
// the current phase(s), then makes p the current phase for both fetch
// and crypto ops.
func (r *RecoveryReport) enterPhase(p obs.RecPhase) { r.enterPhaseSplit(p, p) }

// enterPhaseSplit is enterPhase with separate sinks: subsequent fetch
// ops accrue to fetchP, crypto ops to cryptoP.
func (r *RecoveryReport) enterPhaseSplit(fetchP, cryptoP obs.RecPhase) {
	r.settlePhases()
	r.phase, r.cryptoPhase = fetchP, cryptoP
}

// settlePhases attributes every op counted since the last settlement to
// the current phase(s). Recover wrappers call it once more on exit (on
// success and failure alike) so the ledger always covers the full pass.
func (r *RecoveryReport) settlePhases() {
	if d := r.FetchOps - r.seenFetch; d > 0 {
		r.Phases.Add(r.phase, d*OpNS)
	}
	if d := r.CryptoOps - r.seenCrypto; d > 0 {
		r.Phases.Add(r.cryptoPhase, d*OpNS)
	}
	r.seenFetch, r.seenCrypto = r.FetchOps, r.CryptoOps
}

// OpNS is the paper's per-operation recovery cost model (100 ns per
// fetched/updated block, bundling the fetch with its hash/decryption).
const OpNS = 100

// ModeledNS returns the modeled recovery time in nanoseconds.
func (r *RecoveryReport) ModeledNS() uint64 {
	return (r.FetchOps + r.CryptoOps) * OpNS
}

// Controller is the common interface of both controller families.
type Controller interface {
	// ReadBlock returns the plaintext of a 64-byte data block after
	// decryption and integrity verification.
	ReadBlock(idx uint64) ([BlockBytes]byte, error)
	// WriteBlock encrypts and persists a 64-byte data block together
	// with its security metadata updates, per the configured scheme.
	WriteBlock(idx uint64, data [BlockBytes]byte) error

	// Now returns the controller's virtual clock (ns).
	Now() uint64
	// AdvanceTo moves the virtual clock forward (CPU think time).
	AdvanceTo(t uint64)

	// FlushCaches writes back all dirty metadata (orderly shutdown).
	FlushCaches()
	// Crash models a power failure: all volatile state is lost.
	Crash()
	// CrashWith models a power failure under a relaxed-persistence
	// crash model (see nvm.CrashModel): in-flight WPQ entries may be
	// rolled back (partial drain) or torn at 8-byte-atom granularity
	// (torn block). CrashWith(nvm.CrashFullADR, nil) ≡ Crash. The
	// relaxed models need the device's in-flight undo log armed
	// (Device().TrackInflight(true)) and a non-nil rng.
	CrashWith(model nvm.CrashModel, rng *rand.Rand)
	// Recover executes the scheme's recovery algorithm and returns its
	// report. An error means the memory image could not be verified.
	Recover() (*RecoveryReport, error)

	// AuditNVM runs a whole-memory integrity audit (fsck) after
	// flushing dirty metadata.
	AuditNVM() (*AuditReport, error)
	// Stats returns accumulated run-time statistics.
	Stats() RunStats
	// NumBlocks returns the number of data blocks in the address space.
	NumBlocks() uint64
	// Device exposes the NVM device (tests, tampering experiments).
	Device() *nvm.Device
	// Scheme returns the configured scheme.
	Scheme() Scheme
	// Clone forks the controller: the child shares the parent's NVM
	// image copy-on-write and value-clones all volatile state (caches,
	// shadow mirrors, wear state, clocks, stats), so it behaves
	// byte-for-byte like a controller that lived through the parent's
	// entire history. Crash/recovery sweeps fork one warm controller
	// per trial instead of re-filling each trial from cold.
	Clone() Controller
}
