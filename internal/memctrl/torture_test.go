package memctrl

import (
	"errors"
	"math/rand"
	"testing"
)

// TestASITStaleSlotReuseRegression reproduces the stale shadow-entry
// scenario that once recovered an outdated node state: a block is
// written back (NVM fresh), its newest shadow entry's slot is reused by
// another block, and an older entry for it survives. Recovery must not
// resurrect the outdated state. Found with seed 7 at this exact scale;
// kept as a regression.
func TestASITStaleSlotReuseRegression(t *testing.T) {
	cfg := DefaultConfig(SchemeASIT)
	cfg.MemoryBytes = 32 << 20
	cfg.CounterCacheBlocks = 512
	cfg.TreeCacheBlocks = 512
	cfg.MetaCacheBlocks = 1024
	c, err := NewSGX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	expect := map[uint64][BlockBytes]byte{}
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(int(c.NumBlocks())))
		var d [BlockBytes]byte
		rng.Read(d[:])
		if err := c.WriteBlock(addr, d); err != nil {
			t.Fatal(err)
		}
		expect[addr] = d
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range expect {
		got, err := c.ReadBlock(addr)
		if err != nil {
			t.Fatalf("block %d: %v", addr, err)
		}
		if got != want {
			t.Fatalf("block %d corrupted", addr)
		}
	}
}

// tortureRound writes, optionally flushes, crashes, recovers, and
// verifies everything written so far.
func tortureRound(t *testing.T, ctrl Controller, rng *rand.Rand, expect map[uint64][BlockBytes]byte, writes int, flush bool) {
	t.Helper()
	for i := 0; i < writes; i++ {
		addr := uint64(rng.Intn(int(ctrl.NumBlocks())))
		var d [BlockBytes]byte
		rng.Read(d[:])
		if err := ctrl.WriteBlock(addr, d); err != nil {
			t.Fatalf("write: %v", err)
		}
		expect[addr] = d
		// Interleave reads to move LRU state around.
		if i%3 == 0 {
			raddr := uint64(rng.Intn(int(ctrl.NumBlocks())))
			if _, err := ctrl.ReadBlock(raddr); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	if flush {
		ctrl.FlushCaches()
	}
	ctrl.Crash()
	if _, err := ctrl.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for addr, want := range expect {
		got, err := ctrl.ReadBlock(addr)
		if err != nil {
			t.Fatalf("verify block %d: %v", addr, err)
		}
		if got != want {
			t.Fatalf("verify block %d: corrupted", addr)
		}
	}
}

// TestTortureCrashLoops hammers every recoverable scheme with repeated
// dirty and clean crashes under heavy eviction pressure, verifying the
// full written set after each recovery.
func TestTortureCrashLoops(t *testing.T) {
	cases := []struct {
		name   string
		scheme Scheme
		sgx    bool
	}{
		{"strict-bonsai", SchemeStrict, false},
		{"osiris-full", SchemeOsiris, false},
		{"agit-read", SchemeAGITRead, false},
		{"agit-plus", SchemeAGITPlus, false},
		{"strict-sgx", SchemeStrict, true},
		{"asit", SchemeASIT, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := TestConfig(tc.scheme)
			cfg.MemoryBytes = 4 << 20
			var ctrl Controller
			var err error
			if tc.sgx {
				ctrl, err = NewSGX(cfg)
			} else {
				ctrl, err = NewBonsai(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1234))
			expect := map[uint64][BlockBytes]byte{}
			for round := 0; round < 6; round++ {
				tortureRound(t, ctrl, rng, expect, 250, round%3 == 2)
			}
		})
	}
}

// TestCrashAtEveryPointStrict interrupts the WPQ drain after every
// possible number of pushes within a write's commit group and checks
// that recovery always yields the committed value (all-or-nothing).
func TestCrashAtEveryPointStrict(t *testing.T) {
	for budget := 0; budget < 8; budget++ {
		b, err := NewBonsai(TestConfig(SchemeStrict))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.WriteBlock(9, pattern(1)); err != nil {
			t.Fatal(err)
		}
		b.Device().SetPushBudget(budget)
		if err := b.WriteBlock(9, pattern(2)); err != nil {
			t.Fatal(err)
		}
		b.Device().SetPushBudget(-1)
		b.Crash()
		if _, err := b.Recover(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got, err := b.ReadBlock(9)
		if err != nil {
			t.Fatalf("budget %d: read: %v", budget, err)
		}
		if got != pattern(2) {
			t.Fatalf("budget %d: committed write lost", budget)
		}
	}
}

// TestCrashAtEveryPointASIT does the same for the SGX/ASIT family.
func TestCrashAtEveryPointASIT(t *testing.T) {
	for budget := 0; budget < 8; budget++ {
		c, err := NewSGX(TestConfig(SchemeASIT))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WriteBlock(9, pattern(1)); err != nil {
			t.Fatal(err)
		}
		c.Device().SetPushBudget(budget)
		if err := c.WriteBlock(9, pattern(2)); err != nil {
			t.Fatal(err)
		}
		c.Device().SetPushBudget(-1)
		c.Crash()
		if _, err := c.Recover(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got, err := c.ReadBlock(9)
		if err != nil {
			t.Fatalf("budget %d: read: %v", budget, err)
		}
		if got != pattern(2) {
			t.Fatalf("budget %d: committed write lost", budget)
		}
	}
}

// TestRandomSeedsSoak runs shorter crash loops across many seeds for
// the two Anubis schemes, hunting for ordering- and slot-reuse bugs.
func TestRandomSeedsSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(0); seed < 12; seed++ {
		for _, sgx := range []bool{false, true} {
			scheme := SchemeAGITPlus
			if sgx {
				scheme = SchemeASIT
			}
			cfg := TestConfig(scheme)
			var ctrl Controller
			var err error
			if sgx {
				ctrl, err = NewSGX(cfg)
			} else {
				ctrl, err = NewBonsai(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			expect := map[uint64][BlockBytes]byte{}
			for round := 0; round < 3; round++ {
				tortureRound(t, ctrl, rng, expect, 150, false)
			}
		}
	}
}

// TestRecoverTwiceIsIdempotent ensures recovering an already-recovered
// (consistent) system succeeds and changes nothing.
func TestRecoverTwiceIsIdempotent(t *testing.T) {
	b, err := NewBonsai(TestConfig(SchemeAGITPlus))
	if err != nil {
		t.Fatal(err)
	}
	b.WriteBlock(1, pattern(1))
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountersFixed != 0 {
		t.Fatalf("second recovery fixed %d counters", rep.CountersFixed)
	}
	got, err := b.ReadBlock(1)
	if err != nil || got != pattern(1) {
		t.Fatalf("read after double recovery: %v", err)
	}
}

// TestWriteBackDetectsItsOwnInconsistency: after a dirty write-back
// crash, reads must fail with an integrity violation rather than
// silently returning stale data for blocks whose counters were lost.
func TestWriteBackDetectsItsOwnInconsistency(t *testing.T) {
	b, err := NewBonsai(TestConfig(SchemeWriteBack))
	if err != nil {
		t.Fatal(err)
	}
	// Write the same block repeatedly so the cached counter drifts far
	// ahead of NVM.
	for i := 0; i < 10; i++ {
		b.WriteBlock(0, pattern(uint64(i)))
	}
	b.Crash()
	b.Recover() // returns ErrNotRecoverable; controller serviceable
	_, rerr := b.ReadBlock(0)
	var ie *IntegrityError
	if !errors.As(rerr, &ie) {
		t.Fatalf("stale-counter read = %v, want IntegrityError", rerr)
	}
}
