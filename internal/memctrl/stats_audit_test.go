package memctrl

import (
	"fmt"
	"reflect"
	"testing"

	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// This file audits RunStats: every exported leaf counter must be
// observed moving (becoming nonzero) in at least one of a table of
// small, targeted scenarios — or carry an explicit exemption naming
// the reason it stays zero. The failure mode this guards against is
// silent stat rot: a refactor that stops feeding a counter while all
// behavioral tests still pass, leaving figures quietly reporting zero.

// statExemptions lists leaves that legitimately never move during
// normal (non-recovery) operation, with the reason. A leaf listed here
// that DOES move fails the audit too: exemptions must stay accurate.
var statExemptions = map[string]string{
	"NVM.ReadsByRegion[sct]": "shadow tables are write-only during normal operation; recovery reads them via the raw (untimed) accessor",
	"NVM.ReadsByRegion[smt]": "shadow tables are write-only during normal operation; recovery reads them via the raw (untimed) accessor",
	"NVM.ReadsByRegion[st]":  "shadow tables are write-only during normal operation; recovery reads them via the raw (untimed) accessor",
}

// flattenStats walks a RunStats value and returns every uint64 leaf
// keyed by a dotted path. Region-indexed arrays and the attribution
// ledger get element names instead of raw indices.
func flattenStats(s RunStats) map[string]uint64 {
	out := map[string]uint64{}
	var walk func(prefix string, v reflect.Value)
	walk = func(prefix string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			tp := v.Type()
			for i := 0; i < tp.NumField(); i++ {
				name := tp.Field(i).Name
				if prefix != "" {
					name = prefix + "." + name
				}
				walk(name, v.Field(i))
			}
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(fmt.Sprintf("%s[%s]", prefix, elemName(prefix, i)), v.Index(i))
			}
		case reflect.Uint64:
			out[prefix] = v.Uint()
		default:
			panic(fmt.Sprintf("flattenStats: unhandled kind %v at %s — extend the audit", v.Kind(), prefix))
		}
	}
	walk("", reflect.ValueOf(s))
	return out
}

// elemName renders a readable element label for the region arrays and
// the attribution ledger.
func elemName(prefix string, i int) string {
	switch {
	case prefix == "Attribution":
		return obs.Comp(i).String()
	case prefix == "NVM.WritesByRegion" || prefix == "NVM.ReadsByRegion":
		return nvm.Region(i).String()
	}
	return fmt.Sprint(i)
}

// statScenario is one targeted workload: a controller constructor and
// a driver that exercises a specific slice of the stat surface.
type statScenario struct {
	name string
	mk   func(t *testing.T) Controller
	run  func(t *testing.T, ctrl Controller)
}

// burst writes n zero-gap blocks with the given address stride — WPQ
// back-pressure, dirty metadata-cache fills, shadow writes.
func burst(t *testing.T, ctrl Controller, n int, stride uint64) {
	t.Helper()
	var d [BlockBytes]byte
	for i := 0; i < n; i++ {
		d[0] = byte(i)
		if err := ctrl.WriteBlock((uint64(i)*stride)%ctrl.NumBlocks(), d); err != nil {
			t.Fatal(err)
		}
	}
}

// readSweep reads n blocks at a stride — misses, clean fills/evictions,
// drain stalls when it follows a write burst.
func readSweep(t *testing.T, ctrl Controller, n int, stride uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := ctrl.ReadBlock((uint64(i) * stride) % ctrl.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}
}

func statScenarios() []statScenario {
	mk := func(f func() (Controller, error)) func(t *testing.T) Controller {
		return func(t *testing.T) Controller {
			t.Helper()
			ctrl, err := f()
			if err != nil {
				t.Fatal(err)
			}
			return ctrl
		}
	}
	return []statScenario{
		{
			// The broad-spectrum cell: AGIT-Plus moves reads/writes,
			// shadow writes, page overflows, both caches, WPQ and drain
			// stalls, and every Bonsai attribution component.
			name: "agit-plus-mixed",
			mk:   mk(func() (Controller, error) { return NewBonsai(TestConfig(SchemeAGITPlus)) }),
			run: func(t *testing.T, ctrl Controller) {
				// Page-stride write burst: > counter-cache footprint, so
				// dirty counter/tree lines evict under WPQ pressure.
				burst(t, ctrl, 600, 64)
				// An idle window: CPU-gap attribution.
				ctrl.AdvanceTo(ctrl.Now() + 1000)
				// Hammer one block past the 7-bit minor counter: page
				// overflow re-encryption.
				burst(t, ctrl, 200, 0)
				// Read sweep over a disjoint page range: clean fills and
				// clean evictions, drain stalls behind the burst above.
				readSweep(t, ctrl, 400, 64+1)
			},
		},
		{
			// A 2-entry WPQ makes nearly every commit-group entry stall
			// on a full queue, so back-pressure lands on shadow-region
			// entries too: the ASIT/AGIT-specific stall component the
			// paper's overhead argument is about.
			name: "agit-tiny-wpq",
			mk: mk(func() (Controller, error) {
				cfg := TestConfig(SchemeAGITPlus)
				cfg.Timing.WPQEntries = 2
				cfg.Timing.DrainWatermark = 1
				return NewBonsai(cfg)
			}),
			run: func(t *testing.T, ctrl Controller) {
				burst(t, ctrl, 64, 64)
			},
		},
		{
			// Osiris on the general tree: stop-loss force-persists.
			name: "osiris-stoploss",
			mk:   mk(func() (Controller, error) { return NewBonsai(TestConfig(SchemeOsiris)) }),
			run: func(t *testing.T, ctrl Controller) {
				burst(t, ctrl, 64, 0) // repeated same-page updates trip StopLoss=4
			},
		},
		{
			// Strict persistence: every metadata update is written through.
			name: "strict",
			mk:   mk(func() (Controller, error) { return NewBonsai(TestConfig(SchemeStrict)) }),
			run: func(t *testing.T, ctrl Controller) {
				burst(t, ctrl, 64, 64)
			},
		},
		{
			// ASIT on the SGX family: combined metadata cache (TreeCache
			// field), ST shadow region, SGX attribution components.
			name: "asit-mixed",
			mk:   mk(func() (Controller, error) { return NewSGX(TestConfig(SchemeASIT)) }),
			run: func(t *testing.T, ctrl Controller) {
				burst(t, ctrl, 600, 64)
				readSweep(t, ctrl, 400, 64+1)
			},
		},
	}
}

// TestRunStatsEveryFieldMoves is the audit: union the stats of all
// scenarios and require every flattened leaf to be nonzero unless
// exempted — and every exemption to be real (still zero) and still
// existing (no stale names after a refactor).
func TestRunStatsEveryFieldMoves(t *testing.T) {
	union := map[string]uint64{}
	for _, sc := range statScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ctrl := sc.mk(t)
			sc.run(t, ctrl)
			for k, v := range flattenStats(ctrl.Stats()) {
				union[k] += v
			}
		})
	}
	if len(union) == 0 {
		t.Fatal("no stats collected")
	}
	for name, reason := range statExemptions {
		if _, ok := union[name]; !ok {
			t.Errorf("exemption for %q names a stat that no longer exists (reason was: %s)", name, reason)
		}
	}
	for name, v := range union {
		_, exempt := statExemptions[name]
		switch {
		case exempt && v != 0:
			t.Errorf("stat %s is exempted as never-moving but moved to %d; drop the exemption", name, v)
		case !exempt && v == 0:
			t.Errorf("stat %s never moved in any scenario; add a scenario that exercises it or an exemption explaining why it cannot move", name)
		}
	}
}

// TestRunStatsScenarioTargets pins the per-scenario signals the table
// was built around, so a scenario that silently stops exercising its
// target (e.g. a config change doubling the cache) fails loudly here
// rather than degrading the union test.
func TestRunStatsScenarioTargets(t *testing.T) {
	targets := map[string][]string{
		"agit-plus-mixed": {
			"ReadRequests", "WriteRequests", "ShadowWrites", "PageOverflows",
			"CounterCache.Hits", "CounterCache.Misses", "CounterCache.Evictions",
			"CounterCache.DirtyEvictions", "CounterCache.CleanEvictions",
			"CounterCache.FirstDirties", "CounterCache.Insertions",
			"TreeCache.Evictions",
			"NVM.WPQStallNS", "NVM.DrainStallNS",
			"NVM.WritesByRegion[sct]", "NVM.WritesByRegion[smt]",
			"Attribution[cpu_gap]", "Attribution[data_read]",
			"Attribution[counter_fill]", "Attribution[tree_fill]",
			"Attribution[bank_busy]", "Attribution[crypto]",
		},
		"agit-tiny-wpq":   {"Attribution[shadow]", "Attribution[wpq_stall]"},
		"osiris-stoploss": {"StopLossWrites"},
		"strict":          {"StrictWrites"},
		"asit-mixed": {
			"TreeCache.Hits", "TreeCache.Misses", "TreeCache.DirtyEvictions",
			"NVM.WritesByRegion[st]", "ShadowWrites",
		},
	}
	for _, sc := range statScenarios() {
		sc := sc
		want, ok := targets[sc.name]
		if !ok {
			continue
		}
		t.Run(sc.name, func(t *testing.T) {
			ctrl := sc.mk(t)
			sc.run(t, ctrl)
			flat := flattenStats(ctrl.Stats())
			for _, name := range want {
				v, ok := flat[name]
				if !ok {
					t.Errorf("target stat %q does not exist", name)
					continue
				}
				if v == 0 {
					t.Errorf("scenario %s: target stat %s did not move", sc.name, name)
				}
			}
		})
	}
}
