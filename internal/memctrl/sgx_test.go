package memctrl

import (
	"errors"
	"math/rand"
	"testing"

	"anubis/internal/counter"
	"anubis/internal/nvm"
)

func newSGX(t *testing.T, s Scheme) *SGX {
	t.Helper()
	c, err := NewSGX(TestConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var sgxSchemes = []Scheme{SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeASIT}

func TestSGXReadUnwrittenIsZero(t *testing.T) {
	c := newSGX(t, SchemeWriteBack)
	got, err := c.ReadBlock(99)
	if err != nil {
		t.Fatal(err)
	}
	if got != ([BlockBytes]byte{}) {
		t.Fatal("unwritten block not zero")
	}
}

func TestSGXWriteReadRoundTrip(t *testing.T) {
	for _, s := range sgxSchemes {
		t.Run(s.String(), func(t *testing.T) {
			c := newSGX(t, s)
			for i := uint64(0); i < 60; i++ {
				if err := c.WriteBlock(i*31%c.NumBlocks(), pattern(i)); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 60; i++ {
				got, err := c.ReadBlock(i * 31 % c.NumBlocks())
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if got != pattern(i) {
					t.Fatalf("block %d corrupted", i)
				}
			}
		})
	}
}

func TestSGXEvictionPressure(t *testing.T) {
	// Touch many distinct leaf blocks and tree paths: dirty evictions
	// exercise the lazy-update writeback (parent nonce bump, MAC rebind).
	for _, s := range sgxSchemes {
		t.Run(s.String(), func(t *testing.T) {
			c := newSGX(t, s)
			n := c.NumBlocks()
			for i := uint64(0); i < 600; i++ {
				addr := (i * counter.SGXCounters * 13) % n
				if err := c.WriteBlock(addr, pattern(i)); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 600; i++ {
				addr := (i * counter.SGXCounters * 13) % n
				got, err := c.ReadBlock(addr)
				if err != nil {
					t.Fatalf("read back %d: %v", i, err)
				}
				if got != pattern(i) {
					t.Fatalf("block %d corrupted", i)
				}
			}
			if c.Stats().TreeCache.Evictions == 0 {
				t.Fatal("no evictions exercised")
			}
		})
	}
}

func TestSGXFlushThenColdRead(t *testing.T) {
	// After FlushCaches, every fetched node must verify against its
	// parent chain in NVM (lazy MACs rebound at writeback).
	c := newSGX(t, SchemeWriteBack)
	for i := uint64(0); i < 100; i++ {
		c.WriteBlock(i*8, pattern(i))
	}
	c.FlushCaches()
	if c.mCache.DirtyCount() != 0 {
		t.Fatal("dirty lines survive flush")
	}
	c.Crash()
	if _, err := c.Recover(); !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("Recover = %v", err)
	}
	for i := uint64(0); i < 100; i++ {
		got, err := c.ReadBlock(i * 8)
		if err != nil {
			t.Fatalf("cold read %d: %v", i, err)
		}
		if got != pattern(i) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

// --- tamper detection ---

func TestSGXDetectsDataTampering(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	c.WriteBlock(5, pattern(5))
	c.Device().CorruptBlock(nvm.RegionData, 5, 10, 0x40)
	_, err := c.ReadBlock(5)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered data read = %v, want IntegrityError", err)
	}
}

func TestSGXDetectsCounterTampering(t *testing.T) {
	c := newSGX(t, SchemeStrict)
	c.WriteBlock(5, pattern(5))
	c.FlushCaches()
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	c.Device().CorruptBlock(nvm.RegionCounter, 0, 0, 0x01)
	_, err := c.ReadBlock(5)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered counter read = %v, want IntegrityError", err)
	}
}

func TestSGXDetectsCounterReplay(t *testing.T) {
	c := newSGX(t, SchemeStrict)
	c.WriteBlock(0, pattern(1))
	c.FlushCaches()
	old := c.Device().Read(nvm.RegionCounter, 0)
	for v := uint64(2); v < 6; v++ {
		c.WriteBlock(0, pattern(v))
	}
	c.FlushCaches()
	c.Crash()
	c.Recover()
	c.Device().WriteRaw(nvm.RegionCounter, 0, old)
	_, err := c.ReadBlock(0)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replayed counter read = %v, want IntegrityError", err)
	}
}

func TestSGXZeroBlockForgeryRejected(t *testing.T) {
	// Zeroing a node in NVM is only acceptable while its parent counter
	// is zero; after the first writeback it must be rejected.
	c := newSGX(t, SchemeWriteBack)
	n := c.NumBlocks()
	for i := uint64(0); i < 600; i++ { // force leaf evictions (writebacks)
		c.WriteBlock((i*counter.SGXCounters*13)%n, pattern(i))
	}
	c.FlushCaches()
	c.Crash()
	c.Recover()
	// Find a leaf whose parent counter is nonzero and zero it.
	var target uint64
	found := false
	for _, idx := range c.Device().BlocksIn(nvm.RegionCounter) {
		c.Device().WriteRaw(nvm.RegionCounter, idx, [BlockBytes]byte{})
		target = idx
		found = true
		break
	}
	if !found {
		t.Skip("no persisted counter blocks")
	}
	_, err := c.ReadBlock(target * counter.SGXCounters)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("zeroed node accepted: %v", err)
	}
}

// --- crash & recovery ---

func sgxFillAndCrash(t *testing.T, c *SGX, writes int) map[uint64][BlockBytes]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(43))
	expect := make(map[uint64][BlockBytes]byte)
	for i := 0; i < writes; i++ {
		addr := uint64(rng.Intn(int(c.NumBlocks())))
		d := pattern(uint64(i) * 17)
		if err := c.WriteBlock(addr, d); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		expect[addr] = d
	}
	c.Crash()
	return expect
}

func TestSGXWriteBackUnrecoverable(t *testing.T) {
	c := newSGX(t, SchemeWriteBack)
	expect := sgxFillAndCrash(t, c, 400)
	if _, err := c.Recover(); !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("Recover = %v, want ErrNotRecoverable", err)
	}
	failures := 0
	for addr := range expect {
		if _, err := c.ReadBlock(addr); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("dirty crash left a consistent image; test should exercise dirty state")
	}
}

func TestSGXOsirisCannotRecoverTree(t *testing.T) {
	// The paper's motivating observation: counter recovery alone cannot
	// rebuild a parallelizable tree.
	c := newSGX(t, SchemeOsiris)
	sgxFillAndCrash(t, c, 400)
	if _, err := c.Recover(); !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("Recover = %v, want ErrNotRecoverable", err)
	}
}

func TestSGXStrictRecovers(t *testing.T) {
	c := newSGX(t, SchemeStrict)
	expect := sgxFillAndCrash(t, c, 400)
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FetchOps != 0 {
		t.Fatalf("strict recovery fetched %d blocks, want 0", rep.FetchOps)
	}
	for addr, want := range expect {
		got, err := c.ReadBlock(addr)
		if err != nil {
			t.Fatalf("read %d: %v", addr, err)
		}
		if got != want {
			t.Fatalf("block %d corrupted", addr)
		}
	}
}

func TestSGXASITRecovers(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	expect := sgxFillAndCrash(t, c, 400)
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesScanned == 0 {
		t.Fatal("ASIT recovery found no shadow entries despite dirty cache")
	}
	for addr, want := range expect {
		got, err := c.ReadBlock(addr)
		if err != nil {
			t.Fatalf("read %d: %v", addr, err)
		}
		if got != want {
			t.Fatalf("block %d corrupted", addr)
		}
	}
}

func TestSGXASITRecoveryBounded(t *testing.T) {
	// Recovery work must be bounded by the shadow table (cache) size,
	// regardless of how much was written.
	c := newSGX(t, SchemeASIT)
	sgxFillAndCrash(t, c, 2000)
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	maxOps := uint64(c.st.NumSlots()) * 4 // ST read + stale read + parent read + slack
	if rep.FetchOps > maxOps {
		t.Fatalf("ASIT recovery fetches (%d) exceed cache-bounded budget (%d)", rep.FetchOps, maxOps)
	}
}

func TestSGXASITRepeatedCrashRecover(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	expect := make(map[uint64][BlockBytes]byte)
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 80; i++ {
			addr := (uint64(round)*97 + i*41) % c.NumBlocks()
			d := pattern(uint64(round)<<24 | i)
			if err := c.WriteBlock(addr, d); err != nil {
				t.Fatalf("round %d write %d: %v", round, i, err)
			}
			expect[addr] = d
		}
		c.Crash()
		if _, err := c.Recover(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for addr, want := range expect {
		got, err := c.ReadBlock(addr)
		if err != nil || got != want {
			t.Fatalf("block %d after rounds: %v", addr, err)
		}
	}
}

func TestSGXASITCleanCrashRecovers(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	for i := uint64(0); i < 50; i++ {
		c.WriteBlock(i*8, pattern(i))
	}
	c.FlushCaches()
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Shadow entries persist after a flush (they are self-consistent
	// with the written-back state), so recovery may scan them — but it
	// must reproduce exactly the flushed data.
	if rep.RedoneWrites != 0 {
		t.Fatalf("clean crash redid %d writes", rep.RedoneWrites)
	}
	for i := uint64(0); i < 50; i++ {
		got, err := c.ReadBlock(i * 8)
		if err != nil || got != pattern(i) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestSGXASITDetectsShadowTampering(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	sgxFillAndCrash(t, c, 300)
	blocks := c.Device().BlocksIn(nvm.RegionST)
	if len(blocks) == 0 {
		t.Fatal("no shadow table blocks written")
	}
	c.Device().CorruptBlock(nvm.RegionST, blocks[0], 20, 0x01)
	_, err := c.Recover()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Recover with tampered ST = %v, want ErrUnrecoverable", err)
	}
}

func TestSGXASITDetectsStaleNodeMSBTampering(t *testing.T) {
	// Recovery splices shadow LSBs onto in-memory MSBs; tampering with
	// the MSBs must be caught by the MAC verification step.
	c := newSGX(t, SchemeASIT)
	sgxFillAndCrash(t, c, 300)
	tampered := false
	for _, idx := range c.Device().BlocksIn(nvm.RegionCounter) {
		if _, ok := c.st.Get(0); ok {
			_ = ok
		}
		// Flip a high-order counter bit (byte 6 holds counter 0's MSBs).
		c.Device().CorruptBlock(nvm.RegionCounter, idx, 6, 0x80)
		tampered = true
	}
	if !tampered {
		// Ensure at least some persisted blocks exist by corrupting via
		// the tree region instead.
		for _, idx := range c.Device().BlocksIn(nvm.RegionTree) {
			c.Device().CorruptBlock(nvm.RegionTree, idx, 6, 0x80)
			tampered = true
		}
	}
	if !tampered {
		t.Skip("no persisted metadata to tamper with")
	}
	_, err := c.Recover()
	if err == nil {
		// Tampered blocks may not be among the tracked ones; then reads
		// must catch it instead.
		failures := 0
		for i := uint64(0); i < c.NumBlocks(); i += counter.SGXCounters {
			if _, err := c.ReadBlock(i); err != nil {
				failures++
			}
		}
		if failures == 0 {
			t.Fatal("MSB tampering went completely undetected")
		}
	}
}

func TestSGXCommitGroupAtomicAcrossCrash(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	c.WriteBlock(3, pattern(1))
	c.Device().SetPushBudget(1)
	c.WriteBlock(3, pattern(2))
	c.Device().SetPushBudget(-1)
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneWrites == 0 {
		t.Fatal("interrupted group not redone")
	}
	got, err := c.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != pattern(2) {
		t.Fatal("committed write lost")
	}
}

// --- scheme traffic characteristics ---

func TestSGXStrictWriteAmplification(t *testing.T) {
	wb := newSGX(t, SchemeWriteBack)
	st := newSGX(t, SchemeStrict)
	for i := uint64(0); i < 100; i++ {
		addr := (i * counter.SGXCounters) % wb.NumBlocks()
		wb.WriteBlock(addr, pattern(i))
		st.WriteBlock(addr, pattern(i))
	}
	// Strict persists the whole path per write: levels+1 metadata blocks.
	want := uint64(100) * uint64(st.geom.Levels())
	if got := st.Stats().StrictWrites; got < want {
		t.Fatalf("strict metadata writes = %d, want >= %d", got, want)
	}
	if st.Stats().NVM.Writes < 2*wb.Stats().NVM.Writes {
		t.Fatalf("strict NVM writes (%d) not amplified vs write-back (%d)",
			st.Stats().NVM.Writes, wb.Stats().NVM.Writes)
	}
}

func TestSGXASITOneShadowWritePerDataWrite(t *testing.T) {
	// §6.2: "ASIT only incurs one extra write operation per memory
	// write" (plus eviction-driven entries). With no eviction pressure,
	// shadow writes == data writes exactly.
	cfg := TestConfig(SchemeASIT)
	cfg.MetaCacheBlocks = 512 // large enough to avoid evictions
	cfg.MetaCacheWays = 8
	c, err := NewSGX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		c.WriteBlock(i%64, pattern(i)) // hot set, no evictions
	}
	st := c.Stats()
	if st.TreeCache.Evictions != 0 {
		t.Skip("unexpected evictions; cannot isolate per-write shadow cost")
	}
	if st.ShadowWrites != 100 {
		t.Fatalf("shadow writes = %d, want exactly 100", st.ShadowWrites)
	}
}

func TestSGXLazyVsStrictTraffic(t *testing.T) {
	// The lazy scheme must generate far fewer metadata writes than
	// strict for a hot working set.
	asit := newSGX(t, SchemeASIT)
	strict := newSGX(t, SchemeStrict)
	for i := uint64(0); i < 500; i++ {
		addr := (i % 32) * 8
		asit.WriteBlock(addr, pattern(i))
		strict.WriteBlock(addr, pattern(i))
	}
	aw := asit.Stats().NVM.WritesTo(nvm.RegionCounter) + asit.Stats().NVM.WritesTo(nvm.RegionTree)
	sw := strict.Stats().NVM.WritesTo(nvm.RegionCounter) + strict.Stats().NVM.WritesTo(nvm.RegionTree)
	if aw*2 >= sw {
		t.Fatalf("ASIT counter+tree writes (%d) not well below strict (%d)", aw, sw)
	}
}

func TestSGXRejectsAGITScheme(t *testing.T) {
	if _, err := NewSGX(TestConfig(SchemeAGITRead)); err == nil {
		t.Fatal("SGX controller accepted an AGIT scheme")
	}
}

func TestSGXAddressBounds(t *testing.T) {
	c := newSGX(t, SchemeWriteBack)
	if _, err := c.ReadBlock(c.NumBlocks() + 1); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := c.WriteBlock(c.NumBlocks(), pattern(0)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestSGXCrashedControllerRefusesIO(t *testing.T) {
	c := newSGX(t, SchemeASIT)
	c.WriteBlock(0, pattern(0))
	c.Crash()
	if _, err := c.ReadBlock(0); err == nil {
		t.Fatal("read accepted on crashed controller")
	}
}
