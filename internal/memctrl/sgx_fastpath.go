package memctrl

// Hit-burst fast path for the SGX family (see DESIGN.md §14 and the
// Bonsai twin in bonsai_fastpath.go — the exactness contract is
// identical). The SGX tree is lazy, which makes the fast lane simpler
// than Bonsai's: an eligible write touches only the leaf counter block
// (no tree walk to defer), so a run's deferred work is just the final
// counter pack into the cache line. ASIT is ineligible for fast writes
// (every write persists a shadow-table entry and refreshes the
// protection tree — the legacy path is the honest cost) but its reads
// are as fast-eligible as anyone's.

import (
	"anubis/internal/cache"
	"anubis/internal/counter"
	"anubis/internal/ecc"
	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// sgxFastLane is the SGX fast-path state; field roles mirror
// bonsaiFastLane.
type sgxFastLane struct {
	enabled bool

	// Deferred bulk stats for the open burst.
	reads  uint64
	writes uint64

	// Open write run: consecutive fast writes to one leaf counter block.
	open bool
	leaf uint64
	line *cache.Line
	g    counter.SGX // evolving counters (also under the oracle:
	// counter evolution is trace-local either way)
	leafWrites uint64

	// Cumulative host-plane counters (FastPathStats).
	batches  uint64
	requests uint64
}

// SetFastPath enables or disables the hit-burst lane, flushing any open
// burst first.
func (c *SGX) SetFastPath(on bool) {
	c.flushFastRun()
	c.fp.enabled = on
}

// FastPathStats reports cumulative host-plane telemetry (see
// Bonsai.FastPathStats).
func (c *SGX) FastPathStats() (batches, requests uint64) {
	return c.fp.batches, c.fp.requests
}

// FlushFastRun closes any open write run and folds the burst's deferred
// stats into RunStats/device stats. Timeless and exact at any instant.
func (c *SGX) FlushFastRun() { c.flushFastRun() }

func (c *SGX) flushFastRun() {
	fp := &c.fp
	if fp.open {
		c.closeFastWriteRun()
	}
	if fp.reads == 0 && fp.writes == 0 {
		return
	}
	c.stats.ReadRequests += fp.reads
	c.stats.WriteRequests += fp.writes
	c.dev.AddBulkReads(nvm.RegionData, fp.reads)
	fp.batches++
	fp.requests += fp.reads + fp.writes
	fp.reads, fp.writes = 0, 0
}

// TryFastRead retires a read in closed form when its leaf metadata
// block is resident, no writeback or staged group is in flight, and the
// device would stall on nothing. False means untouched state; the
// ReadBlock fallback flushes the burst first. Works for every SGX
// scheme: an all-hit read has no scheme-dependent side effects
// (finishOp is a no-op with empty wbq/pending).
func (c *SGX) TryFastRead(idx uint64) bool {
	fp := &c.fp
	if !fp.enabled || c.crashed || c.probe != nil || c.wl != nil || idx >= c.numBlocks {
		return false
	}
	if len(c.wbq) != 0 || len(c.pending) != 0 {
		return false
	}
	// A fast read of the open run's own leaf is fine: decrypt is
	// skipped, so the not-yet-packed line bytes are never consulted.
	line, ok := c.mCache.Peek(idx / counter.SGXCounters)
	if !ok {
		return false
	}
	done, ok := c.dev.FastReadRetire(nvm.RegionData, idx, c.now)
	if !ok {
		return false
	}
	c.mCache.Touch(line)
	att := c.dev.Attr()
	att.Add(obs.CompDataRead, done-c.now)
	att.Add(obs.CompCrypto, c.cfg.HashNS)
	c.now = done + c.cfg.HashNS
	fp.reads++
	return true
}

// TryFastWrite retires a WriteBack/Osiris write in closed form: Touch +
// MarkDirty on the resident leaf, optional stop-loss count, local
// counter increment, HashNS engine occupancy, one real data Push.
// Strict propagates eagerly and ASIT persists a shadow entry per write
// — both stay on the legacy path.
func (c *SGX) TryFastWrite(idx uint64, data *[BlockBytes]byte) bool {
	fp := &c.fp
	if !fp.enabled || c.crashed || c.probe != nil || c.wl != nil || idx >= c.numBlocks {
		return false
	}
	if c.cfg.Scheme != SchemeWriteBack && c.cfg.Scheme != SchemeOsiris {
		return false
	}
	if len(c.wbq) != 0 || len(c.pending) != 0 {
		return false
	}
	leaf, lane := idx/counter.SGXCounters, int(idx%counter.SGXCounters)
	if fp.open && fp.leaf != leaf {
		c.closeFastWriteRun()
	}
	if !fp.open {
		line, ok := c.mCache.Peek(leaf)
		if !ok {
			return false
		}
		fp.open, fp.leaf, fp.line = true, leaf, line
		fp.g = counter.UnpackSGX(line.Data)
		fp.leafWrites = 0
	}
	// Per-write guards; false leaves the run open and unchanged.
	if fp.g.Ctr[lane] == counter.SGXCounterMask {
		return false // 56-bit wraparound: the legacy path reports it
	}
	if c.cfg.Scheme == SchemeOsiris && c.updateCount.Get(leaf)+1 >= c.cfg.StopLoss {
		return false // stop-loss persist would fire
	}
	if c.dev.PushBudget() != -1 || c.dev.DoneBit() || !c.dev.FastWriteOK(c.now) {
		return false
	}

	// Retire.
	line := fp.line
	c.mCache.Touch(line)
	c.mCache.MarkDirtyLine(line)
	if c.cfg.Scheme == SchemeOsiris {
		c.updateCount.Inc(leaf)
	}
	fp.g.Increment(lane) // cannot wrap: pre-checked
	fp.leafWrites++
	c.now += c.cfg.HashNS
	c.dev.Attr().Add(obs.CompCrypto, c.cfg.HashNS)
	var w nvm.PendingWrite
	if e := c.oe; e != nil {
		w = nvm.PendingWrite{Region: nvm.RegionData, Index: idx, Block: e.CT, HasSide: true, Side: e.Side}
	} else {
		ctr := fp.g.Ctr[lane]
		var ctBlk [BlockBytes]byte
		c.eng.EncryptTo(ctBlk[:], data[:], idx, ctr)
		side := nvm.Sideband{ECC: ecc.EncodeBlock(data[:]), MAC: c.eng.DataMAC(idx, ctr, data[:])}
		w = nvm.PendingWrite{Region: nvm.RegionData, Index: idx, Block: ctBlk, HasSide: true, Side: side}
	}
	c.now = c.dev.Push(w, c.now)
	fp.writes++
	return true
}

// closeFastWriteRun packs the run's final counter state into the cache
// line. Timeless; a run that retired nothing leaves the line untouched.
func (c *SGX) closeFastWriteRun() {
	fp := &c.fp
	if !fp.open {
		return
	}
	fp.open = false
	line := fp.line
	fp.line = nil
	if fp.leafWrites == 0 {
		return
	}
	line.Data = fp.g.Pack()
}
