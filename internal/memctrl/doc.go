package memctrl

// This file documents the correctness invariants the controllers
// maintain. The torture, soak, and model-based tests check these
// end-to-end; the notes here are the catalog of *why* the design is
// safe, kept next to the code because several of them were earned by
// failures the test suite found (see DESIGN.md §6).
//
// Shared invariants (both families)
//
//  I1. Persistence atomicity. Every logical operation's NVM effects are
//      staged into one commit group drained through the persistent
//      registers (DONE_BIT). A crash observes either none of the group
//      or — after the recovery redo — all of it. On-chip root registers
//      join the group, so a root can never disagree with the NVM state
//      it authenticates across a crash.
//
//  I2. Single-block side effects (shadow-table fills, eviction
//      writebacks in the Bonsai family) may bypass the group: each is
//      individually atomic at the WPQ and self-consistent with respect
//      to recovery.
//
//  I3. Stable shadow slots. A cached block's slot never changes during
//      its residency, and recovery reinstalls recovered blocks at the
//      exact slot their shadow entry names — otherwise later shadow
//      writes would desynchronize from the table (found by soak).
//
// Bonsai (eager general tree)
//
//  B1. Root freshness. Every counter bump updates the full ancestor
//      path in cache and the on-chip root in the same operation. The
//      root therefore authenticates the *logical* state, including
//      dirty cache content — which is what lets AGIT recovery verify a
//      rebuilt tree against it.
//
//  B2. Counter drift bound. With ECC recovery, a counter block's NVM
//      copy lags its cache copy by at most StopLoss updates (stop-loss
//      persists), so Osiris trials terminate. With phase recovery, the
//      drift is bounded by a page overflow (which force-persists), and
//      the 8 phase bits pin the counter exactly.
//
//  B3. Overflow barrier. A minor-counter overflow re-encrypts the page
//      and persists the fresh counter block in the same group, so no
//      recovery path ever has to guess across a major-counter change.
//
// SGX (lazy parallelizable tree)
//
//  S1. Binding invariant. A block's NVM MAC always binds the parent
//      counter value the parent currently holds for it, because the
//      parent bump and the child writeback commit in one group. This is
//      the property the consistency checker validates globally.
//
//  S2. Writeback-buffer visibility. A block is always observable from
//      exactly one place: the cache, the writeback buffer, or NVM.
//      Fetches consult the buffer before NVM, so a mid-writeback block
//      can never be re-fetched stale (found by soak: the stale re-fetch
//      previously resurrected zero-state nodes).
//
//  S3. Shadow-entry dominance. For every dirty metadata block, the
//      newest shadow entry describes its exact cache state, because
//      every modification (data write, parent bump, buffer pull-back)
//      rewrites the entry at the block's current slot.
//
//  S4. Stale-entry safety. Entries left behind by evictions or slot
//      reuse are either (a) equal to the NVM copy — recovery skips them
//      via the counter-monotonicity order — or (b) older than another
//      surviving entry — recovery dedupes to the maximum. Both rules
//      rely on counters being strictly monotone per block.
//
//  S5. ST MAC coverage. A shadow entry's MAC covers the node's full
//      counter values (MSBs included), so splicing onto a tampered NVM
//      copy is detected even though the shadow table stores only the
//      low 49 bits; entry freshness is separately guaranteed by
//      SHADOW_TREE_ROOT.
//
// Wear leveling
//
//  W1. Copy-then-advance. A gap move's line copy reaches the
//      persistence domain before the mapping register advances, so the
//      mapping observed after any crash addresses a line holding valid
//      content.
