package memctrl

import (
	"fmt"
	"math/rand"

	"anubis/internal/cache"
	"anubis/internal/counter"
	"anubis/internal/cryptoeng"
	"anubis/internal/ecc"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
	"anubis/internal/shadow"
	"anubis/internal/shard"
)

const (
	// regSGXRoot holds the packed on-chip top node of the SGX tree: its
	// eight nonces version the top-level children (Figure 3).
	regSGXRoot = "sgx_root_node"
	// regShadowTreeRoot is ASIT's SHADOW_TREE_ROOT: the root of the small
	// general tree protecting the Shadow Table (§4.3.1). Eagerly updated
	// and persistent, while the tree body itself stays volatile.
	regShadowTreeRoot = "shadow_tree_root"

	// treeKeyBase tags tree-node keys in the combined metadata cache.
	treeKeyBase = uint64(1) << 60
)

// SGX is the parallelizable-integrity-tree controller family: SGX-style
// counter blocks (8 × 56-bit counters + 56-bit MAC) serve as both
// encryption counters and tree nodes; a node's MAC covers its own
// counters and one counter of its parent, so updates to different
// levels can proceed in parallel but the tree cannot be rebuilt from
// the leaves (§2.3.2) — the property that motivates ASIT.
//
// The tree uses the lazy (Vault/Synergy) update policy the paper
// adopts: a write dirties only the leaf counter block; a parent nonce
// is bumped, and the child's MAC rebound, when the child is written
// back. Schemes: WriteBack, Strict, Osiris (unrecoverable here), ASIT.
type SGX struct {
	cfg  Config
	dev  *nvm.Device
	eng  *cryptoeng.Engine
	geom merkle.Geometry

	numBlocks uint64 // data blocks
	numLeaves uint64 // SGX counter blocks

	mCache *cache.Cache // combined metadata cache

	// Volatile mirror of the on-chip root node register.
	rootNode counter.SGX

	// Osiris stop-loss bookkeeping (per cached leaf block). Paged (see
	// nvm.Counters): no map hashing on the write hot path.
	updateCount nvm.Counters

	// ASIT state: shadow table mirror plus its volatile protection tree.
	st      *shadow.STTable
	stGeom  merkle.Geometry
	stNodes [][]merkle.GNode
	stRoot  uint64

	// wl is the optional Start-Gap wear leveler over the data region.
	wl *wearLeveler

	now     uint64
	stats   RunStats
	crashed bool

	// probe observes simulation events; nil by default (see Bonsai.probe).
	probe obs.Probe

	pending []nvm.PendingWrite

	// oe is the shard-oracle entry for the in-flight request (see
	// Bonsai.oe and internal/shard). Nil outside sharded runs.
	oe *shard.Entry

	// wbq is the volatile writeback buffer: dirty victims wait here
	// until the end of the operation, when drainWBQ rebinds their MACs
	// and stages them. A demand fetch for a queued block pulls it back
	// into the cache instead of reading the (stale) NVM copy — the
	// standard writeback-buffer-hit behaviour, and the reason fills can
	// never observe a block that is mid-writeback.
	wbq []cache.Victim

	// Epoch pipeline state (ASIT only — see sgx_epoch.go). epochSlots is
	// non-nil exactly when the pipeline is active; it collects the
	// shadow-table slots whose protection-tree path update is deferred
	// until the window closes. All volatile: a crash empties them and the
	// epoch journal takes over.
	epochWrites int
	epochSlots  map[uint64]struct{}
	epochOrder  []uint64 // close-time scratch
	epochHash   []uint64 // close-time scratch

	// fp is the hit-burst fast lane (sgx_fastpath.go). Disabled by
	// default; every legacy entry point flushes it defensively.
	fp sgxFastLane
}

// NewSGX constructs an SGX-family controller for cfg.Scheme, which must
// be one of WriteBack, Strict, Osiris, ASIT.
func NewSGX(cfg Config) (*SGX, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeASIT:
	default:
		return nil, fmt.Errorf("memctrl: scheme %v is not an SGX-tree scheme", cfg.Scheme)
	}
	c := &SGX{
		cfg:       cfg,
		dev:       nvm.NewDevice(cfg.Timing),
		eng:       cryptoeng.NewTestEngine(),
		numBlocks: cfg.MemoryBytes / BlockBytes,
		mCache:    cache.New(cfg.MetaCacheBlocks, cfg.MetaCacheWays),
	}
	c.numLeaves = c.numBlocks / counter.SGXCounters
	c.geom = merkle.NewGeometry(c.numLeaves)
	c.wl = newWearLeveler(c.dev, c.numBlocks, cfg.WearPeriod)
	c.dev.SetReg(regSGXRoot, packSGX(&c.rootNode))
	if cfg.Scheme == SchemeASIT {
		c.st = shadow.NewSTTable(c.mCache.NumSlots())
		c.stGeom = merkle.NewGeometry(uint64(c.st.NumSlots()))
		c.initShadowTree()
		if cfg.EpochRequests > 1 {
			c.epochSlots = make(map[uint64]struct{}, cfg.EpochRequests)
		}
	}
	c.reserveRegions()
	c.dev.ResetStats()
	return c, nil
}

func packSGX(g *counter.SGX) []byte {
	b := g.Pack()
	return b[:]
}

// reserveRegions declares every region's extent to the device so page
// directories are allocated once at final size (the +1 on the data
// region covers the Start-Gap spare line).
func (c *SGX) reserveRegions() {
	c.dev.Reserve(nvm.RegionData, c.numBlocks+1)
	c.dev.Reserve(nvm.RegionCounter, c.numLeaves)
	c.dev.Reserve(nvm.RegionTree, c.geom.TotalNodes())
	if c.st != nil {
		c.dev.Reserve(nvm.RegionST, uint64(c.st.NumSlots()))
	}
	c.updateCount.Reserve(c.numLeaves)
}

// --- metadata block references ------------------------------------------------

// metaRef identifies a metadata block: either a counter leaf or a tree
// node at (level, idx). The on-chip root node is not a metaRef — it is
// reached through parentOf's isRoot result.
type metaRef struct {
	isLeaf bool
	level  int
	idx    uint64
}

func (c *SGX) keyOf(r metaRef) uint64 {
	if r.isLeaf {
		return r.idx
	}
	return treeKeyBase | c.geom.Flat(r.level, r.idx)
}

// refOfKey inverts keyOf (used by recovery and eviction paths).
func (c *SGX) refOfKey(key uint64) metaRef {
	if key&treeKeyBase == 0 {
		return metaRef{isLeaf: true, idx: key}
	}
	level, idx := c.geom.Unflat(key &^ treeKeyBase)
	return metaRef{level: level, idx: idx}
}

// addrOf returns the address label bound into the block's MAC.
func (c *SGX) addrOf(r metaRef) uint64 {
	if r.isLeaf {
		return r.idx
	}
	return merkle.NodeAddr(r.level, r.idx)
}

func (c *SGX) regionIdx(r metaRef) (nvm.Region, uint64) {
	if r.isLeaf {
		return nvm.RegionCounter, r.idx
	}
	return nvm.RegionTree, c.geom.Flat(r.level, r.idx)
}

// parentOf returns the parent reference of a block and the slot this
// block occupies in it; isRoot means the parent is the on-chip root
// node register.
func (c *SGX) parentOf(r metaRef) (parent metaRef, slot int, isRoot bool) {
	if r.isLeaf {
		slot = int(r.idx % merkle.Arity)
		if c.geom.RootLevel() == 0 {
			return metaRef{}, slot, true
		}
		return metaRef{level: 0, idx: r.idx / merkle.Arity}, slot, false
	}
	slot = int(r.idx % merkle.Arity)
	if r.level+1 >= c.geom.RootLevel() {
		return metaRef{}, slot, true
	}
	return metaRef{level: r.level + 1, idx: r.idx / merkle.Arity}, slot, false
}

// --- pending-aware NVM access ---------------------------------------------------

// nvmRead returns the latest content of a block, preferring writes
// staged in the current operation's atomic group (they are logically
// already in the WPQ/persistent registers).
func (c *SGX) nvmRead(region nvm.Region, idx uint64, timed bool) [BlockBytes]byte {
	for i := len(c.pending) - 1; i >= 0; i-- {
		w := c.pending[i]
		// Journal notes are on-chip ops whose Region/Index fields are
		// meaningless; without the JOp guard a note would masquerade as a
		// write to region 0, block 0.
		if w.RegName == "" && w.JOp == nvm.JournalNone && w.Region == region && w.Index == idx {
			return w.Block
		}
	}
	if timed {
		blk, done := c.dev.ReadAt(region, idx, c.now)
		c.now = done
		return blk
	}
	return c.dev.Read(region, idx)
}

// --- metadata fetch with verification -------------------------------------------

// parentCounterOf returns the trusted current value of the parent
// counter versioning block r, fetching (and verifying) the parent if
// needed.
func (c *SGX) parentCounterOf(r metaRef) (uint64, error) {
	parent, slot, isRoot := c.parentOf(r)
	if isRoot {
		return c.rootNode.Ctr[slot], nil
	}
	pline, err := c.getMeta(parent)
	if err != nil {
		return 0, err
	}
	pg := counter.UnpackSGX(pline.Data)
	return pg.Ctr[slot], nil
}

// getMeta returns a verified, cached metadata block (leaf counter block
// or tree node). On a miss the block is fetched from NVM and its MAC is
// verified against the parent counter (fetched recursively up to the
// first cached ancestor or the root register). A never-written block is
// accepted as the all-zero fresh block only while its parent counter is
// still zero, which is exactly the pre-first-writeback window.
func (c *SGX) getMeta(r metaRef) (*cache.Line, error) {
	key := c.keyOf(r)
	if line, ok := c.mCache.Lookup(key); ok {
		return line, nil
	}
	// Writeback-buffer hit: the block was evicted earlier in this
	// operation and is still awaiting writeback. Its content came from
	// the cache (trusted, newer than NVM), so pull it back — the queued
	// writeback is cancelled by removing the entry.
	for i := range c.wbq {
		if c.wbq[i].Key == key {
			data := c.wbq[i].Data
			c.wbq = append(c.wbq[:i], c.wbq[i+1:]...)
			line := c.insertQueueingVictim(key, data)
			c.mCache.MarkDirty(key)
			if c.cfg.Scheme == SchemeASIT {
				// The block re-enters (possibly) a different slot; its
				// shadow entry must track the new slot, because the old
				// slot's entry can be overwritten by a future occupant,
				// leaving this dirty block untracked across a crash.
				g := counter.UnpackSGX(line.Data)
				if err := c.shadowMeta(r, line, &g); err != nil {
					return nil, err
				}
			}
			return line, nil
		}
	}
	region, idx := c.regionIdx(r)
	blk := c.nvmRead(region, idx, true)
	pc, err := c.parentCounterOf(r)
	if err != nil {
		return nil, err
	}
	// The parent walk can have re-inserted this very block from the
	// writeback buffer (a victim's parent chain may touch it); use the
	// resident copy then.
	if line, ok := c.mCache.Lookup(key); ok {
		return line, nil
	}
	g := counter.UnpackSGX(blk)
	if blk == ([BlockBytes]byte{}) && pc == 0 {
		// Fresh uninitialized block: valid by construction.
	} else {
		want := c.eng.SGXMAC(c.addrOf(r), g.Ctr[:], pc)
		if g.MAC != want {
			return nil, &IntegrityError{What: "sgx node MAC mismatch", Addr: c.addrOf(r)}
		}
	}
	return c.insertQueueingVictim(key, blk), nil
}

// insertQueueingVictim inserts a block, parking any dirty victim in the
// writeback buffer for the end-of-operation drain.
func (c *SGX) insertQueueingVictim(key uint64, blk [BlockBytes]byte) *cache.Line {
	line, victim := c.mCache.Insert(key, blk)
	if victim != nil && victim.Dirty {
		c.wbq = append(c.wbq, *victim)
	}
	return line
}

// writeBackVictim implements the lazy update policy's eviction path: the
// parent nonce for the victim is incremented, the victim's MAC is
// rebound to the new nonce, and the victim is persisted. Under ASIT the
// parent's shadow entry is refreshed (it was modified) and the victim's
// shadow slot is cleared (its NVM copy is now current) — all within the
// surrounding operation's atomic group.
func (c *SGX) writeBackVictim(v *cache.Victim) error {
	if v == nil || !v.Dirty {
		return nil
	}
	r := c.refOfKey(v.Key)
	if r.isLeaf {
		c.updateCount.Set(r.idx, 0)
	}
	g := counter.UnpackSGX(v.Data)

	parent, slot, isRoot := c.parentOf(r)
	var newParentCtr uint64
	if isRoot {
		if c.rootNode.Increment(slot) {
			return fmt.Errorf("memctrl: root nonce wraparound")
		}
		newParentCtr = c.rootNode.Ctr[slot]
		c.pending = append(c.pending, nvm.PendingWrite{RegName: regSGXRoot, Block: toBlock(packSGX(&c.rootNode))})
	} else {
		pline, err := c.getMeta(parent)
		if err != nil {
			return err
		}
		pg := counter.UnpackSGX(pline.Data)
		if pg.Increment(slot) {
			return fmt.Errorf("memctrl: nonce wraparound at level %d", parent.level)
		}
		pline.Data = pg.Pack()
		c.mCache.MarkDirty(c.keyOf(parent))
		newParentCtr = pg.Ctr[slot]
		if c.cfg.Scheme == SchemeASIT {
			if err := c.shadowMeta(parent, pline, &pg); err != nil {
				return err
			}
		}
	}

	g.MAC = c.eng.SGXMAC(c.addrOf(r), g.Ctr[:], newParentCtr)
	region, idx := c.regionIdx(r)
	c.pending = append(c.pending, nvm.PendingWrite{Region: region, Index: idx, Block: g.Pack()})
	if c.probe != nil {
		// The write itself drains with the operation's commit group; the
		// eviction is an instant at the decision point.
		c.probe.Event(obs.EvEviction, c.now, c.now, v.Key)
	}
	// Under ASIT the victim's shadow entry is deliberately left in
	// place: its MAC covers the full counter values, so recovering it
	// onto the just-written-back copy reproduces the same state.
	return nil
}

func toBlock(b []byte) (out [BlockBytes]byte) {
	copy(out[:], b)
	return out
}

// --- ASIT shadow table maintenance ----------------------------------------------

// initShadowTree builds the volatile protection tree over the (empty)
// shadow table and persists its root.
func (c *SGX) initShadowTree() {
	c.stNodes = make([][]merkle.GNode, c.stGeom.Levels())
	for l := range c.stNodes {
		c.stNodes[l] = make([]merkle.GNode, c.stGeom.NodesAt(l))
	}
	c.stRoot = merkle.BuildGeneral(c.stGeom, c.eng,
		func(i uint64) [BlockBytes]byte { return c.st.Block(int(i)) },
		func(flat uint64, n merkle.GNode) {
			l, i := c.stGeom.Unflat(flat)
			c.stNodes[l][i] = n
		}, nil)
	c.dev.SetReg64(regShadowTreeRoot, c.stRoot)
}

// refreshShadowPath recomputes the protection tree path above ST leaf
// `slot` (eager update: SHADOW_TREE_ROOT always reflects the table) and
// stages the new root register value.
func (c *SGX) refreshShadowPath(slot int) {
	childHash := c.eng.ContentHash(blockSlice(c.st.Block(slot)))
	childIdx := uint64(slot)
	for level := 0; level < c.stGeom.Levels(); level++ {
		nodeIdx := childIdx / merkle.Arity
		s := int(childIdx % merkle.Arity)
		c.stNodes[level][nodeIdx].SetHash(s, childHash)
		childHash = c.eng.ContentHash(c.stNodes[level][nodeIdx][:])
		childIdx = nodeIdx
	}
	c.stRoot = childHash
	var reg [BlockBytes]byte
	putU64(reg[:], c.stRoot)
	c.pending = append(c.pending, nvm.PendingWrite{RegName: regShadowTreeRoot, Block: reg})
}

func blockSlice(b [BlockBytes]byte) []byte { return b[:] }

// shadowMeta writes the ASIT shadow entry for a modified metadata block:
// address, MAC over the full updated counter values, and the 49-bit
// counter LSBs (Figure 9b). Because the MAC covers the complete
// counters (not just the shadow-stored LSBs), a stale entry left behind
// by an eviction is self-consistent — recovery splices it onto the
// freshly written-back node and reproduces the same state — so entries
// never need to be cleared. A 49-bit LSB overflow forces the node
// itself to be persisted so the in-memory MSBs stay current.
func (c *SGX) shadowMeta(r metaRef, line *cache.Line, g *counter.SGX) error {
	mac := c.eng.STMAC(c.addrOf(r), g.Ctr[:])
	var e shadow.STEntry
	e.Key = c.keyOf(r)
	e.MAC = mac
	overflow := false
	for i := 0; i < counter.SGXCounters; i++ {
		e.LSBs[i] = g.Ctr[i] & counter.LSBMask
		if g.Ctr[i] != 0 && e.LSBs[i] == 0 {
			overflow = true
		}
	}
	slot := line.Slot()
	var epochStart [BlockBytes]byte
	if c.epochSlots != nil {
		epochStart = c.st.Block(slot)
	}
	bi, blk := c.st.Set(slot, e)
	c.stats.ShadowWrites++
	c.pending = append(c.pending, nvm.PendingWrite{Region: nvm.RegionST, Index: bi, Block: blk})
	if c.epochSlots != nil {
		// Epoch pipeline: defer the protection-tree path recompute into
		// the window's dirty set and journal the table block instead. Old
		// pins the epoch-start content (sticky across the window) — the
		// state the stale SHADOW_TREE_ROOT still covers — while New
		// tracks the authoritative latest entry; the note rides this
		// operation's atomic commit group. See sgx_epoch.go.
		c.epochSlots[bi] = struct{}{}
		c.pending = append(c.pending, nvm.PendingWrite{JOp: nvm.JournalNote, JKey: bi, JOld: epochStart, Block: blk})
	} else {
		c.refreshShadowPath(slot)
	}
	if overflow {
		// Persist the node so recovery's MSB splice stays exact. The
		// NVM copy needs a run-time MAC bound to the parent counter to
		// pass fetch verification later.
		pc, err := c.parentCounterOf(r)
		if err != nil {
			return err
		}
		persisted := *g
		persisted.MAC = c.eng.SGXMAC(c.addrOf(r), g.Ctr[:], pc)
		region, idx := c.regionIdx(r)
		c.stats.StopLossWrites++
		c.pending = append(c.pending, nvm.PendingWrite{Region: region, Index: idx, Block: persisted.Pack()})
	}
	return nil
}

// --- data path --------------------------------------------------------------------

func (c *SGX) checkAddr(idx uint64) error {
	if c.crashed {
		return ErrCrashed
	}
	if idx >= c.numBlocks {
		return fmt.Errorf("memctrl: block %d out of range (%d blocks)", idx, c.numBlocks)
	}
	return nil
}

// ReadBlock decrypts and verifies one data block.
func (c *SGX) ReadBlock(idx uint64) ([BlockBytes]byte, error) {
	c.flushFastRun()
	var zero [BlockBytes]byte
	if err := c.checkAddr(idx); err != nil {
		return zero, err
	}
	c.stats.ReadRequests++
	leaf, lane := idx/counter.SGXCounters, int(idx%counter.SGXCounters)

	// Zero-copy data fetch overlapping the metadata walk. The pointer
	// (and the presence bit) stay valid across getMeta/finishOp: a read
	// operation's atomic group only ever contains metadata writes, never
	// data-region writes.
	start := c.now
	phys := c.wl.phys(idx)
	// Quiet read: the fetch overlaps the (attributed) metadata walk, so
	// only the visible residual below is charged, as data_read.
	ct, has, dataDone := c.dev.ReadAtPtrQuiet(nvm.RegionData, phys, start)
	line, err := c.getMeta(metaRef{isLeaf: true, idx: leaf})
	if err != nil {
		c.finishOp()
		return zero, err
	}
	g := counter.UnpackSGX(line.Data)
	if dataDone > c.now {
		c.dev.Attr().Add(obs.CompDataRead, dataDone-c.now)
		c.now = dataDone
	}
	c.now += c.cfg.HashNS
	c.dev.Attr().Add(obs.CompCrypto, c.cfg.HashNS)
	if err := c.finishOp(); err != nil {
		return zero, err
	}

	if !has {
		return zero, nil
	}
	if e := c.oe; e != nil && e.Has {
		// Shard oracle: plaintext derived from the write history by the
		// owning worker; decrypt + ECC + MAC recomputation skipped with
		// latency charged above exactly as on the legacy path.
		return e.PT, nil
	}
	ctr := g.Ctr[lane]
	var pt [BlockBytes]byte
	c.eng.DecryptTo(pt[:], ct[:], idx, ctr)
	side := c.dev.ReadSideband(phys)
	if !ecc.CheckBlock(pt[:], side.ECC) {
		return zero, &IntegrityError{What: "data ECC mismatch", Addr: idx}
	}
	if c.eng.DataMAC(idx, ctr, pt[:]) != side.MAC {
		return zero, &IntegrityError{What: "data MAC mismatch", Addr: idx}
	}
	return pt, nil
}

// WriteBlock encrypts and persists one data block plus the metadata
// updates of the configured scheme, atomically.
func (c *SGX) WriteBlock(idx uint64, data [BlockBytes]byte) error {
	c.flushFastRun()
	if err := c.checkAddr(idx); err != nil {
		return err
	}
	c.stats.WriteRequests++
	leaf, lane := idx/counter.SGXCounters, int(idx%counter.SGXCounters)

	r := metaRef{isLeaf: true, idx: leaf}
	line, err := c.getMeta(r)
	if err != nil {
		c.finishOp()
		return err
	}
	g := counter.UnpackSGX(line.Data)
	if g.Increment(lane) {
		return fmt.Errorf("memctrl: 56-bit encryption counter wraparound")
	}
	line.Data = g.Pack()

	switch c.cfg.Scheme {
	case SchemeStrict:
		if err := c.strictPropagate(r, line, &g); err != nil {
			c.finishOp()
			return err
		}
	case SchemeOsiris:
		c.mCache.MarkDirty(c.keyOf(r))
		if c.updateCount.Inc(leaf) >= c.cfg.StopLoss {
			c.updateCount.Set(leaf, 0)
			c.stats.StopLossWrites++
			c.mCache.Pin(c.keyOf(r))
			pc, err := c.parentCounterOf(r)
			c.mCache.Unpin(c.keyOf(r))
			if err != nil {
				c.finishOp()
				return err
			}
			persisted := g
			persisted.MAC = c.eng.SGXMAC(c.addrOf(r), g.Ctr[:], pc)
			c.pending = append(c.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: leaf, Block: persisted.Pack()})
		}
	case SchemeASIT:
		c.mCache.MarkDirty(c.keyOf(r))
		// Pin the leaf: shadowMeta fetches the parent, and the eviction
		// chain that fetch can trigger must not displace the line whose
		// slot the shadow entry is being written for.
		c.mCache.Pin(c.keyOf(r))
		err := c.shadowMeta(r, line, &g)
		c.mCache.Unpin(c.keyOf(r))
		if err != nil {
			c.finishOp()
			return err
		}
	default: // WriteBack
		c.mCache.MarkDirty(c.keyOf(r))
	}

	if e := c.oe; e != nil {
		// Shard oracle: ciphertext + sideband were precomputed under the
		// same lane counter (counters evolve purely in trace order; only
		// the leaf's embedded MAC, rebound at writeback, is cache-state
		// dependent and is still handled above/by drainWBQ).
		c.pending = append(c.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: c.wl.phys(idx), Block: e.CT, HasSide: true, Side: e.Side})
	} else {
		ctr := g.Ctr[lane]
		var ctBlk [BlockBytes]byte
		c.eng.EncryptTo(ctBlk[:], data[:], idx, ctr)
		side := nvm.Sideband{ECC: ecc.EncodeBlock(data[:]), MAC: c.eng.DataMAC(idx, ctr, data[:])}
		c.pending = append(c.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: c.wl.phys(idx), Block: ctBlk, HasSide: true, Side: side})
	}

	c.now += c.cfg.HashNS
	c.dev.Attr().Add(obs.CompCrypto, c.cfg.HashNS)
	if err := c.finishOp(); err != nil {
		return err
	}
	c.now = c.wl.recordWrite(c.now)
	if c.epochSlots != nil {
		c.epochWrites++
		if c.epochWrites >= c.cfg.EpochRequests {
			return c.closeEpoch()
		}
	}
	return nil
}

// strictPropagate implements strict persistence on the SGX tree: the
// write propagates to the root eagerly — every ancestor nonce is
// incremented, every node on the path has its MAC rebound and is
// persisted immediately (≥ levels+1 NVM writes per memory write).
// The current node stays pinned while its parent is fetched so eviction
// chains triggered by the fetch cannot displace it.
func (c *SGX) strictPropagate(r metaRef, line *cache.Line, g *counter.SGX) error {
	cur := r
	curLine := line
	curG := *g
	c.mCache.Pin(c.keyOf(cur))
	defer func() { c.mCache.Unpin(c.keyOf(cur)) }()
	for {
		parent, slot, isRoot := c.parentOf(cur)
		if isRoot {
			if c.rootNode.Increment(slot) {
				return fmt.Errorf("memctrl: root nonce wraparound")
			}
			curG.MAC = c.eng.SGXMAC(c.addrOf(cur), curG.Ctr[:], c.rootNode.Ctr[slot])
			curLine.Data = curG.Pack()
			region, idx := c.regionIdx(cur)
			c.stats.StrictWrites++
			c.pending = append(c.pending, nvm.PendingWrite{Region: region, Index: idx, Block: curLine.Data})
			c.pending = append(c.pending, nvm.PendingWrite{RegName: regSGXRoot, Block: toBlock(packSGX(&c.rootNode))})
			return nil
		}
		pline, err := c.getMeta(parent)
		if err != nil {
			return err
		}
		c.mCache.Pin(c.keyOf(parent))
		pg := counter.UnpackSGX(pline.Data)
		if pg.Increment(slot) {
			c.mCache.Unpin(c.keyOf(parent))
			return fmt.Errorf("memctrl: nonce wraparound at level %d", parent.level)
		}
		pline.Data = pg.Pack()
		curG.MAC = c.eng.SGXMAC(c.addrOf(cur), curG.Ctr[:], pg.Ctr[slot])
		curLine.Data = curG.Pack()
		region, idx := c.regionIdx(cur)
		c.stats.StrictWrites++
		c.pending = append(c.pending, nvm.PendingWrite{Region: region, Index: idx, Block: curLine.Data})
		c.mCache.Unpin(c.keyOf(cur))
		cur, curLine, curG = parent, pline, pg
		// cur (the old parent) is already pinned; the deferred unpin
		// releases whichever node is current when the loop exits.
	}
}

// drainWBQ writes back every victim parked in the writeback buffer.
// Draining can fetch ancestors, whose fills may park further victims;
// the loop runs until the buffer is empty. A drained victim's block can
// also be pulled back into the cache by a fetch mid-drain, in which
// case its queue entry has been removed and the writeback is cancelled.
func (c *SGX) drainWBQ() error {
	for len(c.wbq) > 0 {
		v := c.wbq[0]
		c.wbq = c.wbq[1:]
		if err := c.writeBackVictim(&v); err != nil {
			return err
		}
	}
	return nil
}

// finishOp completes an operation: drain pending writebacks, then
// commit the atomic group.
func (c *SGX) finishOp() error {
	err := c.drainWBQ()
	c.commitPending()
	return err
}

// commitPending drains the operation's atomic group (two-stage commit).
func (c *SGX) commitPending() {
	if len(c.pending) == 0 {
		return
	}
	// A frozen DONE_BIT means a previous group's drain was cut short by
	// the (test-injected) power budget: power is already lost, so later
	// groups in this doomed run are dropped rather than tripping the
	// two-stage commit's reentry check.
	if c.dev.DoneBit() {
		c.pending = c.pending[:0]
		return
	}
	c.dev.BeginCommit()
	for _, w := range c.pending {
		c.dev.Stage(w)
	}
	start, n := c.now, uint64(len(c.pending))
	c.now = c.dev.CommitGroup(c.now)
	c.pending = c.pending[:0]
	if c.probe != nil {
		c.probe.Event(obs.EvCommit, start, c.now, n)
	}
}

// --- lifecycle ----------------------------------------------------------------------

// FlushCaches writes back all dirty metadata through the regular
// eviction path (parent nonces are bumped and MACs rebound), leaving
// NVM fully consistent.
func (c *SGX) FlushCaches() {
	c.flushFastRun()
	// Iterate until stable: writing a block back dirties its parent.
	for {
		var dirty []uint64
		c.mCache.Iterate(func(l *cache.Line) {
			if l.Dirty {
				dirty = append(dirty, l.Key)
			}
		})
		if len(dirty) == 0 {
			break
		}
		for _, key := range dirty {
			l, ok := c.mCache.Peek(key)
			if !ok || !l.Dirty {
				continue
			}
			v := &cache.Victim{Key: key, Data: l.Data, Dirty: true, Slot: l.Slot()}
			l.Dirty = false
			if err := c.writeBackVictim(v); err != nil {
				panic("memctrl: flush writeback failed: " + err.Error())
			}
			if err := c.drainWBQ(); err != nil {
				panic("memctrl: flush drain failed: " + err.Error())
			}
		}
		c.commitPending()
	}
	// The writebacks above refresh shadow entries, which under the epoch
	// pipeline defer their tree-path updates; close the window so NVM
	// (table, root register, empty journal) is left fully consistent.
	if err := c.FlushEpoch(); err != nil {
		panic("memctrl: flush epoch close failed: " + err.Error())
	}
}

// Crash models a power failure.
func (c *SGX) Crash() { c.CrashWith(nvm.CrashFullADR, nil) }

// CrashWith is Crash under an injectable persistence model (see
// nvm.CrashModel). Volatile controller state is lost identically under
// every model.
func (c *SGX) CrashWith(model nvm.CrashModel, rng *rand.Rand) {
	// See Bonsai.CrashWith: the deferred fast-lane work is timeless and
	// must land before power dies.
	c.flushFastRun()
	c.dev.CrashWith(model, rng)
	c.mCache.DropAll()
	c.updateCount.Reset()
	c.pending = c.pending[:0]
	c.wbq = c.wbq[:0]
	c.rootNode = counter.SGX{}
	c.epochWrites = 0
	for s := range c.epochSlots {
		delete(c.epochSlots, s)
	}
	if c.cfg.Scheme == SchemeASIT {
		c.st = shadow.NewSTTable(c.mCache.NumSlots())
		c.stRoot = 0
		// Volatile protection tree is lost; recovery rebuilds it.
		for l := range c.stNodes {
			for i := range c.stNodes[l] {
				c.stNodes[l][i] = merkle.GNode{}
			}
		}
	}
	c.crashed = true
}

// Scheme returns the configured scheme.
func (c *SGX) Scheme() Scheme { return c.cfg.Scheme }

// NumBlocks returns the data block count.
func (c *SGX) NumBlocks() uint64 { return c.numBlocks }

// Device exposes the NVM device.
func (c *SGX) Device() *nvm.Device { return c.dev }

// Now returns the controller's virtual time.
func (c *SGX) Now() uint64 { return c.now }

// AdvanceTo moves virtual time forward (CPU think time between
// requests, attributed as cpu_gap).
func (c *SGX) AdvanceTo(t uint64) {
	if t > c.now {
		c.dev.Attr().Add(obs.CompCPUGap, t-c.now)
		c.now = t
	}
}

// SetProbe attaches (or detaches, with nil) an event probe.
func (c *SGX) SetProbe(p obs.Probe) { c.probe = p }

// Stats returns run-time statistics.
func (c *SGX) Stats() RunStats {
	c.flushFastRun()
	s := c.stats
	s.NVM = c.dev.Stats()
	s.TreeCache = c.mCache.Stats()
	s.Attribution = *c.dev.Attr()
	return s
}
