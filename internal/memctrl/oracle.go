package memctrl

// Shard-oracle attachment points for the intra-trial parallel engine.
//
// sim.RunSharded discovers these by type assertion — the same pattern
// as SetProbe and FlushEpoch — so the Controller interface stays
// family-agnostic and third-party controllers simply run unsharded.
//
// Contract: SetContentEntry attaches the precomputed content of the
// *next* ReadBlock/WriteBlock call; the caller clears it afterwards.
// An attached entry must have been computed for exactly that request
// (address, operation, and position in the request stream) by
// shard.Precompute over the same stream the controller has replayed so
// far — the controllers substitute its values without re-deriving
// them, and desyncs panic rather than corrupt the simulation. Entries
// skip the read-path integrity verification (the oracle already knows
// the plaintext), so sharded runs are for honest simulation only;
// tamper/attack flows use the normal un-sharded API.

import "anubis/internal/shard"

// SetContentEntry attaches the shard-oracle entry consumed by the next
// read or write. Nil detaches.
func (b *Bonsai) SetContentEntry(e *shard.Entry) { b.oe = e }

// ContentShardable reports whether this configuration admits the
// shard-oracle fast path. Start-Gap wear leveling rotates physical
// data addresses on a *global* write count, which breaks the
// page-local purity the precompute workers rely on, so wear-leveled
// configs run unsharded.
func (b *Bonsai) ContentShardable() bool { return b.cfg.WearPeriod == 0 }

// SetContentEntry attaches the shard-oracle entry consumed by the next
// read or write. Nil detaches.
func (c *SGX) SetContentEntry(e *shard.Entry) { c.oe = e }

// ContentShardable reports whether this configuration admits the
// shard-oracle fast path (see Bonsai.ContentShardable).
func (c *SGX) ContentShardable() bool { return c.cfg.WearPeriod == 0 }
