package memctrl

import (
	"fmt"

	"anubis/internal/counter"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
	"anubis/internal/shadow"
)

// Recover brings the SGX-family controller back to a verified state.
//
//   - WriteBack and Osiris cannot recover this tree: intermediate nodes
//     lost from the cache cannot be regenerated from the leaves, because
//     each node's MAC depends on a parent nonce that is itself lost
//     (§2.3.2/§3). Both return ErrNotRecoverable after the DONE_BIT
//     redo, leaving the controller serviceable for demonstration reads.
//   - Strict is instantly consistent.
//   - ASIT runs Algorithm 2: verify the Shadow Table against
//     SHADOW_TREE_ROOT, splice each tracked node's counter LSBs and MAC
//     onto its stale NVM copy, re-insert the result dirty, and verify
//     every recovered node's MAC against its parent counter.
func (c *SGX) Recover() (*RecoveryReport, error) {
	rep, err := c.doRecover()
	if rep != nil {
		// Attribute any ops counted since the last phase boundary so the
		// phase ledger covers the whole pass, success or failure.
		rep.settlePhases()
	}
	if c.probe != nil && rep != nil {
		c.probe.Event(obs.EvRecovery, c.now, c.now+rep.ModeledNS(), rep.FetchOps+rep.CryptoOps)
	}
	return rep, err
}

func (c *SGX) doRecover() (*RecoveryReport, error) {
	rep := &RecoveryReport{Scheme: c.cfg.Scheme}
	rep.RedoneWrites = c.dev.RedoCommitted()

	// Restore the wear-leveling map before any data-region access.
	wl, err := reloadWearLeveler(c.dev, c.cfg.WearPeriod)
	if err != nil {
		return rep, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	c.wl = wl

	// The on-chip root node survives in its persistent register.
	if blk, ok := c.dev.GetReg(regSGXRoot); ok {
		c.rootNode = counter.UnpackSGX(blk)
	}

	switch c.cfg.Scheme {
	case SchemeWriteBack, SchemeOsiris:
		c.crashed = false
		return rep, fmt.Errorf("%w: SGX-style tree cannot be rebuilt from encryption counters", ErrNotRecoverable)
	case SchemeStrict:
		c.crashed = false
		return rep, nil
	case SchemeASIT:
		return c.recoverASIT(rep)
	}
	return rep, fmt.Errorf("%w: no recovery for scheme %v", ErrUnrecoverable, c.cfg.Scheme)
}

// recoverASIT implements Algorithm 2 of the paper.
func (c *SGX) recoverASIT(rep *RecoveryReport) (*RecoveryReport, error) {
	// 1. Read the Shadow Table from NVM and verify its integrity by
	// regenerating SHADOW_TREE_ROOT and comparing with the on-chip copy.
	//
	// With an epoch window open at the crash (sgx_epoch.go), the
	// register still anchors the epoch-start table while every block the
	// window touched sits in the on-chip journal. Pass A substitutes
	// each journaled block's epoch-start content (Old) — the state the
	// stale register covers — so the verification also authenticates
	// every *untouched* media block.
	entries := c.dev.JournalEntries()
	for _, je := range entries {
		if je.Key >= uint64(c.mCache.NumSlots()) {
			return rep, fmt.Errorf("%w: epoch journal tracks shadow-table block %d beyond the table (%d slots)",
				ErrUnrecoverable, je.Key, c.mCache.NumSlots())
		}
	}
	rep.JournalPages = uint64(len(entries))
	// The table restore (with pass A's Old substitution riding the same
	// reads) and its root verification are one phase: shadow replay.
	rep.enterPhase(obs.RPShadowReplay)
	c.st = shadow.RestoreSTTable(c.mCache.NumSlots(), func(bi uint64) [BlockBytes]byte {
		rep.FetchOps++
		if je, ok := c.dev.JournalLookup(bi); ok {
			return je.Old
		}
		return c.dev.Read(nvm.RegionST, bi)
	})
	c.stRoot = merkle.BuildGeneral(c.stGeom, c.eng,
		func(i uint64) [BlockBytes]byte { return c.st.Block(int(i)) },
		func(flat uint64, n merkle.GNode) {
			l, i := c.stGeom.Unflat(flat)
			c.stNodes[l][i] = n
		}, &rep.CryptoOps)
	want, _ := c.dev.GetReg64(regShadowTreeRoot)
	if c.stRoot != want {
		return rep, fmt.Errorf("%w: shadow table root %#x != SHADOW_TREE_ROOT %#x", ErrUnrecoverable, c.stRoot, want)
	}

	// Pass B: replay the journaled New content — the table state the
	// crash actually interrupted. The journal is on-chip and survives
	// every crash model, so New is authoritative even where the media
	// copy is torn; write it through, rebuild the protection tree, and
	// retire the window by anchoring the fresh root.
	if len(entries) > 0 {
		rep.enterPhase(obs.RPJournalPassB)
		for _, je := range entries {
			c.dev.WriteRaw(nvm.RegionST, je.Key, je.New)
			if e := shadow.UnpackSTEntry(je.New); e.Valid {
				c.st.Set(int(je.Key), e)
			} else {
				c.st.Clear(int(je.Key))
			}
		}
		c.stRoot = merkle.BuildGeneral(c.stGeom, c.eng,
			func(i uint64) [BlockBytes]byte { return c.st.Block(int(i)) },
			func(flat uint64, n merkle.GNode) {
				l, i := c.stGeom.Unflat(flat)
				c.stNodes[l][i] = n
			}, &rep.CryptoOps)
		c.dev.SetReg64(regShadowTreeRoot, c.stRoot)
		c.dev.JournalReset()
	}

	// 2. Recover tree nodes: splice the shadow LSBs and MAC onto each
	// tracked node's stale NVM copy. A block that was evicted and later
	// re-dirtied in a different slot leaves two authenticated entries;
	// counters only ever grow, so the entry with the larger counter
	// vector is the newer one and wins.
	type candidate struct {
		g    counter.SGX
		slot int
	}
	type recovered struct {
		ref metaRef
		g   counter.SGX
	}
	rep.enterPhase(obs.RPMerkleRebuild)
	best := make(map[uint64]candidate)
	for slot := 0; slot < c.st.NumSlots(); slot++ {
		e, ok := c.st.Get(slot)
		if !ok {
			continue
		}
		rep.EntriesScanned++
		// The shadow table was authenticated against SHADOW_TREE_ROOT in
		// step 1, but defense in depth: a key outside the metadata space
		// would panic inside Geometry.Unflat below, and recovery must
		// fail typed, never crash, on any image a power failure (or a
		// tamperer racing one) can produce.
		if !c.validMetaKey(e.Key) {
			return rep, fmt.Errorf("%w: shadow table slot %d tracks invalid metadata key %#x", ErrUnrecoverable, slot, e.Key)
		}
		r := c.refOfKey(e.Key)
		region, idx := c.regionIdx(r)
		stale := counter.UnpackSGX(c.dev.Read(region, idx))
		rep.FetchOps++
		var g counter.SGX
		for i := 0; i < counter.SGXCounters; i++ {
			g.Ctr[i] = counter.SpliceLSB(stale.Ctr[i], e.LSBs[i])
		}
		g.MAC = e.MAC
		// A stale entry can describe a state *older* than the NVM copy:
		// the block was written back (NVM fresh), its newer entry's slot
		// was reused by another block, and only an outdated entry
		// survives. States of one block are totally ordered (counters
		// are monotone), so an entry is only worth recovering when it is
		// strictly newer than NVM; otherwise the NVM copy is current and
		// will be verified through the parent chain on its next fetch.
		// (A tampered "newer-looking" NVM copy only causes a skip here
		// and is then caught by that same fetch verification.)
		if ctrSum(&g) <= ctrSum(&stale) {
			continue
		}
		if prev, ok := best[e.Key]; !ok || ctrSum(&g) > ctrSum(&prev.g) {
			best[e.Key] = candidate{g: g, slot: slot}
		}
	}
	recs := make([]recovered, 0, len(best))
	for key, cand := range best {
		// Reinstall the block in exactly the slot its live entry tracks:
		// the shadow table mirrors the cache's data array slot-for-slot,
		// so a block placed in a different way would desynchronize every
		// future shadow write for this set. InsertAtSlot panics on an
		// illegal placement (its contract is programming error, not bad
		// input), so validate the untrusted placement first.
		if !c.mCache.CanInsertAtSlot(cand.slot, key) {
			return rep, fmt.Errorf("%w: shadow table places key %#x in illegal slot %d", ErrUnrecoverable, key, cand.slot)
		}
		c.mCache.InsertAtSlot(cand.slot, key, cand.g.Pack())
		c.mCache.MarkDirty(key)
		rep.NodesRebuilt++
		recs = append(recs, recovered{ref: c.refOfKey(key), g: cand.g})
	}

	// 3. Verify integrity: each recovered node's shadow MAC must match
	// the hash over its full spliced counter values. The MAC was
	// computed over the complete counters at update time, so any
	// tampering with the stale copy's MSBs (the only part not stored in
	// the shadow table) is caught here; the shadow table itself was
	// already authenticated by SHADOW_TREE_ROOT in step 1.
	rep.enterPhase(obs.RPECCVerify)
	for _, rc := range recs {
		rep.CryptoOps++
		if c.eng.STMAC(c.addrOf(rc.ref), rc.g.Ctr[:]) != rc.g.MAC {
			return rep, fmt.Errorf("%w: recovered node MAC mismatch at %#x", ErrUnrecoverable, c.addrOf(rc.ref))
		}
	}

	// Recovered nodes sit dirty in the cache and propagate to NVM
	// through natural eviction, as in the paper (§4.3.2).
	c.crashed = false
	return rep, nil
}

// validMetaKey reports whether a (possibly crash-corrupted) shadow
// table key denotes a real metadata block: a counter leaf below
// numLeaves, or a tree node whose flat index lies inside the geometry.
// refOfKey/regionIdx assume a valid key and panic otherwise.
func (c *SGX) validMetaKey(key uint64) bool {
	if key&treeKeyBase == 0 {
		return key < c.numLeaves
	}
	return key&^treeKeyBase < c.geom.TotalNodes()
}

// ctrSum totals a block's counters; counters are monotone, so the sum
// orders snapshots of the same block by freshness.
func ctrSum(g *counter.SGX) uint64 {
	var s uint64
	for _, c := range g.Ctr {
		s += c
	}
	return s
}
