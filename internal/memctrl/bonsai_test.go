package memctrl

import (
	"errors"
	"math/rand"
	"testing"

	"anubis/internal/counter"
	"anubis/internal/nvm"
)

func pattern(seed uint64) (d [BlockBytes]byte) {
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range d {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		d[i] = byte(x)
	}
	return d
}

func newBonsai(t *testing.T, s Scheme) *Bonsai {
	t.Helper()
	b, err := NewBonsai(TestConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var bonsaiSchemes = []Scheme{SchemeWriteBack, SchemeStrict, SchemeOsiris, SchemeAGITRead, SchemeAGITPlus}

func TestBonsaiReadUnwrittenIsZero(t *testing.T) {
	b := newBonsai(t, SchemeWriteBack)
	got, err := b.ReadBlock(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != ([BlockBytes]byte{}) {
		t.Fatal("unwritten block not zero")
	}
}

func TestBonsaiWriteReadRoundTrip(t *testing.T) {
	for _, s := range bonsaiSchemes {
		t.Run(s.String(), func(t *testing.T) {
			b := newBonsai(t, s)
			for i := uint64(0); i < 50; i++ {
				if err := b.WriteBlock(i*37%b.NumBlocks(), pattern(i)); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 50; i++ {
				got, err := b.ReadBlock(i * 37 % b.NumBlocks())
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if got != pattern(i) {
					t.Fatalf("block %d corrupted", i)
				}
			}
		})
	}
}

func TestBonsaiOverwrite(t *testing.T) {
	b := newBonsai(t, SchemeOsiris)
	for v := uint64(0); v < 10; v++ {
		if err := b.WriteBlock(5, pattern(v)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.ReadBlock(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != pattern(9) {
		t.Fatal("overwrite lost")
	}
}

func TestBonsaiEvictionPressure(t *testing.T) {
	// Touch far more pages than the tiny caches hold, forcing evictions
	// and re-verification of counter blocks and tree nodes on re-read.
	b := newBonsai(t, SchemeAGITPlus)
	n := b.NumBlocks()
	for i := uint64(0); i < 200; i++ {
		addr := (i * counter.SplitMinors) % n // one block per page
		if err := b.WriteBlock(addr, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		addr := (i * counter.SplitMinors) % n
		got, err := b.ReadBlock(addr)
		if err != nil {
			t.Fatalf("read back %d: %v", i, err)
		}
		if got != pattern(i) {
			t.Fatalf("page %d corrupted", i)
		}
	}
	st := b.Stats()
	if st.CounterCache.Evictions == 0 {
		t.Fatal("test did not exercise evictions")
	}
}

func TestBonsaiAddressBounds(t *testing.T) {
	b := newBonsai(t, SchemeWriteBack)
	if _, err := b.ReadBlock(b.NumBlocks()); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := b.WriteBlock(b.NumBlocks()+5, pattern(0)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestBonsaiTimeAdvances(t *testing.T) {
	b := newBonsai(t, SchemeWriteBack)
	t0 := b.Now()
	b.WriteBlock(0, pattern(1))
	if b.Now() <= t0 {
		t.Fatal("write did not advance virtual time")
	}
	b.AdvanceTo(b.Now() + 1000)
	t1 := b.Now()
	b.ReadBlock(0)
	if b.Now() <= t1 {
		t.Fatal("read did not advance virtual time")
	}
	b.AdvanceTo(0) // must not go backwards
	if b.Now() < t1 {
		t.Fatal("AdvanceTo moved time backwards")
	}
}

// --- tamper detection ---

func TestBonsaiDetectsDataTampering(t *testing.T) {
	b := newBonsai(t, SchemeStrict)
	b.WriteBlock(3, pattern(3))
	b.Device().CorruptBlock(nvm.RegionData, 3, 0, 0xff)
	_, err := b.ReadBlock(3)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered data read error = %v, want IntegrityError", err)
	}
}

func TestBonsaiDetectsCounterTampering(t *testing.T) {
	b := newBonsai(t, SchemeStrict)
	b.WriteBlock(3, pattern(3))
	b.FlushCaches()
	b.Crash() // drop caches so the tampered counter must be re-fetched
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	b.Device().CorruptBlock(nvm.RegionCounter, 0, 8, 0x01)
	_, err := b.ReadBlock(3)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered counter read error = %v, want IntegrityError", err)
	}
}

func TestBonsaiDetectsTreeTampering(t *testing.T) {
	b := newBonsai(t, SchemeStrict)
	b.WriteBlock(3, pattern(3))
	b.FlushCaches()
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	b.Device().CorruptBlock(nvm.RegionTree, 0, 0, 0x80)
	_, err := b.ReadBlock(3)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered tree read error = %v, want IntegrityError", err)
	}
}

func TestBonsaiDetectsCounterReplay(t *testing.T) {
	// Replay attack: restore an old counter block after newer writes.
	b := newBonsai(t, SchemeStrict)
	b.WriteBlock(0, pattern(1))
	b.FlushCaches()
	oldCounter := b.Device().Read(nvm.RegionCounter, 0)
	for v := uint64(2); v < 6; v++ {
		b.WriteBlock(0, pattern(v))
	}
	b.FlushCaches()
	b.Crash()
	b.Recover()
	b.Device().WriteRaw(nvm.RegionCounter, 0, oldCounter)
	_, err := b.ReadBlock(0)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replayed counter read error = %v, want IntegrityError", err)
	}
}

// --- crash & recovery ---

func fillAndCrash(t *testing.T, b *Bonsai, writes int) map[uint64][BlockBytes]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	expect := make(map[uint64][BlockBytes]byte)
	for i := 0; i < writes; i++ {
		addr := uint64(rng.Intn(int(b.NumBlocks())))
		d := pattern(uint64(i) * 31)
		if err := b.WriteBlock(addr, d); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		expect[addr] = d
	}
	b.Crash()
	return expect
}

func verifyAll(t *testing.T, b *Bonsai, expect map[uint64][BlockBytes]byte) {
	t.Helper()
	for addr, want := range expect {
		got, err := b.ReadBlock(addr)
		if err != nil {
			t.Fatalf("post-recovery read %d: %v", addr, err)
		}
		if got != want {
			t.Fatalf("post-recovery block %d corrupted", addr)
		}
	}
}

func TestBonsaiCrashedControllerRefusesIO(t *testing.T) {
	b := newBonsai(t, SchemeStrict)
	b.WriteBlock(0, pattern(0))
	b.Crash()
	if _, err := b.ReadBlock(0); err == nil {
		t.Fatal("read accepted on crashed controller")
	}
	if err := b.WriteBlock(0, pattern(0)); err == nil {
		t.Fatal("write accepted on crashed controller")
	}
}

func TestBonsaiWriteBackUnrecoverable(t *testing.T) {
	b := newBonsai(t, SchemeWriteBack)
	expect := fillAndCrash(t, b, 300)
	_, err := b.Recover()
	if !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("Recover = %v, want ErrNotRecoverable", err)
	}
	// With dirty metadata lost, at least one read must fail verification.
	failures := 0
	for addr := range expect {
		if _, err := b.ReadBlock(addr); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("write-back crash left a fully consistent image; test should exercise dirty state")
	}
}

func TestBonsaiWriteBackCleanShutdownReadable(t *testing.T) {
	b := newBonsai(t, SchemeWriteBack)
	for i := uint64(0); i < 50; i++ {
		b.WriteBlock(i*64, pattern(i))
	}
	b.FlushCaches()
	b.Crash()
	if _, err := b.Recover(); !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("Recover = %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		got, err := b.ReadBlock(i * 64)
		if err != nil {
			t.Fatalf("read after clean shutdown: %v", err)
		}
		if got != pattern(i) {
			t.Fatal("clean shutdown lost data")
		}
	}
}

func TestBonsaiStrictRecovers(t *testing.T) {
	b := newBonsai(t, SchemeStrict)
	expect := fillAndCrash(t, b, 300)
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FetchOps != 0 {
		t.Fatalf("strict recovery fetched %d blocks, want 0", rep.FetchOps)
	}
	verifyAll(t, b, expect)
}

func TestBonsaiOsirisFullRecovers(t *testing.T) {
	b := newBonsai(t, SchemeOsiris)
	expect := fillAndCrash(t, b, 300)
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Osiris iterates the whole memory: at least one fetch per page.
	if rep.FetchOps < b.numPages {
		t.Fatalf("full recovery fetched %d < pages %d", rep.FetchOps, b.numPages)
	}
	if rep.NodesRebuilt != b.geom.TotalNodes() {
		t.Fatalf("rebuilt %d nodes, want the whole tree (%d)", rep.NodesRebuilt, b.geom.TotalNodes())
	}
	verifyAll(t, b, expect)
}

func TestBonsaiAGITRecovers(t *testing.T) {
	for _, s := range []Scheme{SchemeAGITRead, SchemeAGITPlus} {
		t.Run(s.String(), func(t *testing.T) {
			b := newBonsai(t, s)
			expect := fillAndCrash(t, b, 300)
			rep, err := b.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rep.EntriesScanned == 0 {
				t.Fatal("AGIT recovery scanned no shadow entries")
			}
			verifyAll(t, b, expect)
		})
	}
}

func TestBonsaiAGITRecoveryIsBounded(t *testing.T) {
	// The headline claim: AGIT recovery work scales with the cache, not
	// with memory. Compare against a full Osiris recovery of the same
	// workload.
	runOps := func(s Scheme) uint64 {
		b := newBonsai(t, s)
		fillAndCrash(t, b, 500)
		rep, err := b.Recover()
		if err != nil {
			t.Fatal(err)
		}
		return rep.FetchOps + rep.CryptoOps
	}
	agit := runOps(SchemeAGITPlus)
	osiris := runOps(SchemeOsiris)
	if agit*2 >= osiris {
		t.Fatalf("AGIT recovery ops (%d) not well below Osiris full recovery (%d)", agit, osiris)
	}
}

func TestBonsaiRecoveryAfterCleanFlush(t *testing.T) {
	// Crash with clean caches: recovery must succeed with zero fixes.
	b := newBonsai(t, SchemeAGITPlus)
	for i := uint64(0); i < 50; i++ {
		b.WriteBlock(i*64, pattern(i))
	}
	b.FlushCaches()
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountersFixed != 0 {
		t.Fatalf("clean crash fixed %d counters, want 0", rep.CountersFixed)
	}
	for i := uint64(0); i < 50; i++ {
		got, err := b.ReadBlock(i * 64)
		if err != nil || got != pattern(i) {
			t.Fatalf("read %d after clean recovery: %v", i, err)
		}
	}
}

func TestBonsaiRepeatedCrashRecover(t *testing.T) {
	b := newBonsai(t, SchemeAGITPlus)
	expect := make(map[uint64][BlockBytes]byte)
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 60; i++ {
			addr := (uint64(round)*61 + i*37) % b.NumBlocks()
			d := pattern(uint64(round)<<32 | i)
			if err := b.WriteBlock(addr, d); err != nil {
				t.Fatal(err)
			}
			expect[addr] = d
		}
		b.Crash()
		if _, err := b.Recover(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	verifyAll(t, b, expect)
}

func TestBonsaiAGITDetectsShadowTampering(t *testing.T) {
	// Tampering with SCT contents misleads recovery; the root comparison
	// must catch the resulting inconsistency (§4.2.1: shadow regions are
	// not trusted, the root is).
	b := newBonsai(t, SchemeAGITPlus)
	fillAndCrash(t, b, 300)
	// Corrupt a counter block that the SCT tracks: point recovery at
	// the wrong state by zeroing tracked SCT blocks.
	for _, bi := range b.Device().BlocksIn(nvm.RegionSCT) {
		b.Device().WriteRaw(nvm.RegionSCT, bi, [BlockBytes]byte{})
	}
	_, err := b.Recover()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Recover with erased SCT = %v, want ErrUnrecoverable", err)
	}
}

func TestBonsaiPageOverflowReencrypts(t *testing.T) {
	b := newBonsai(t, SchemeOsiris)
	// Populate several lanes of page 0, then overflow lane 0's minor.
	for lane := uint64(1); lane < 5; lane++ {
		b.WriteBlock(lane, pattern(lane))
	}
	for i := 0; i <= counter.MinorMax; i++ {
		if err := b.WriteBlock(0, pattern(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().PageOverflows == 0 {
		t.Fatal("minor counter overflow did not trigger")
	}
	// All lanes must still decrypt correctly.
	for lane := uint64(1); lane < 5; lane++ {
		got, err := b.ReadBlock(lane)
		if err != nil {
			t.Fatalf("lane %d after overflow: %v", lane, err)
		}
		if got != pattern(lane) {
			t.Fatalf("lane %d corrupted by re-encryption", lane)
		}
	}
	got, err := b.ReadBlock(0)
	if err != nil || got != pattern(counter.MinorMax) {
		t.Fatalf("overflowing lane wrong: %v", err)
	}
}

func TestBonsaiPageOverflowSurvivesCrash(t *testing.T) {
	b := newBonsai(t, SchemeAGITPlus)
	for lane := uint64(1); lane < 3; lane++ {
		b.WriteBlock(lane, pattern(lane))
	}
	for i := 0; i <= counter.MinorMax+3; i++ {
		b.WriteBlock(0, pattern(uint64(i)))
	}
	last := pattern(uint64(counter.MinorMax + 3))
	b.Crash()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBlock(0)
	if err != nil || got != last {
		t.Fatalf("overflowed lane after crash: %v", err)
	}
	for lane := uint64(1); lane < 3; lane++ {
		got, err := b.ReadBlock(lane)
		if err != nil || got != pattern(lane) {
			t.Fatalf("lane %d after overflow crash: %v", lane, err)
		}
	}
}

func TestBonsaiCommitGroupAtomicAcrossCrash(t *testing.T) {
	// Interrupt the WPQ drain mid-group (§2.7): after recovery the write
	// must be fully applied (DONE_BIT redo), never torn.
	b := newBonsai(t, SchemeStrict)
	b.WriteBlock(7, pattern(1))
	b.Device().SetPushBudget(1) // next commit: power fails after 1 push
	b.WriteBlock(7, pattern(2))
	b.Device().SetPushBudget(-1)
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneWrites == 0 {
		t.Fatal("interrupted group was not redone")
	}
	got, err := b.ReadBlock(7)
	if err != nil {
		t.Fatalf("read after redo: %v", err)
	}
	if got != pattern(2) {
		t.Fatal("committed write lost despite DONE_BIT")
	}
}

// --- scheme traffic characteristics ---

func TestBonsaiStrictWritesAmplified(t *testing.T) {
	wb := newBonsai(t, SchemeWriteBack)
	st := newBonsai(t, SchemeStrict)
	for i := uint64(0); i < 100; i++ {
		addr := (i * counter.SplitMinors * 7) % wb.NumBlocks()
		wb.WriteBlock(addr, pattern(i))
		st.WriteBlock(addr, pattern(i))
	}
	w1 := wb.Stats().NVM.Writes
	w2 := st.Stats().NVM.Writes
	if w2 < 2*w1 {
		t.Fatalf("strict writes (%d) not amplified vs write-back (%d)", w2, w1)
	}
	// Strict persists the counter plus one node per tree level per write.
	want := uint64(100) * uint64(st.geom.Levels()+1)
	if got := st.Stats().StrictWrites; got != want {
		t.Fatalf("strict metadata writes = %d, want %d", got, want)
	}
}

func TestBonsaiAGITShadowTraffic(t *testing.T) {
	read := newBonsai(t, SchemeAGITRead)
	plus := newBonsai(t, SchemeAGITPlus)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		addr := uint64(rng.Intn(int(read.NumBlocks())))
		if i%4 == 0 {
			read.WriteBlock(addr, pattern(uint64(i)))
			plus.WriteBlock(addr, pattern(uint64(i)))
		} else {
			read.ReadBlock(addr)
			plus.ReadBlock(addr)
		}
	}
	sr := read.Stats()
	sp := plus.Stats()
	if sr.ShadowWrites == 0 || sp.ShadowWrites == 0 {
		t.Fatal("AGIT schemes produced no shadow writes")
	}
	// Read-dominant workload: fill tracking must cost more than
	// first-dirty tracking (the Figure 10 MCF effect).
	if sr.ShadowWrites <= sp.ShadowWrites {
		t.Fatalf("AGIT-Read shadow writes (%d) not above AGIT-Plus (%d) on a read-heavy mix",
			sr.ShadowWrites, sp.ShadowWrites)
	}
}

func TestBonsaiOsirisStopLoss(t *testing.T) {
	b := newBonsai(t, SchemeOsiris)
	// StopLoss=4: 8 updates to one page must persist the counter twice.
	for i := 0; i < 8; i++ {
		b.WriteBlock(uint64(i%4), pattern(uint64(i))) // all in page 0
	}
	if got := b.Stats().StopLossWrites; got != 2 {
		t.Fatalf("stop-loss persists = %d, want 2", got)
	}
}

func TestBonsaiWriteBackHasNoMetadataWriteTraffic(t *testing.T) {
	b := newBonsai(t, SchemeWriteBack)
	// Few writes, no eviction pressure: only data writes should hit NVM.
	for i := uint64(0); i < 10; i++ {
		b.WriteBlock(i, pattern(i))
	}
	st := b.Stats()
	if st.NVM.WritesTo(nvm.RegionCounter) != 0 || st.NVM.WritesTo(nvm.RegionTree) != 0 {
		t.Fatalf("write-back persisted metadata without eviction: ctr=%d tree=%d",
			st.NVM.WritesTo(nvm.RegionCounter), st.NVM.WritesTo(nvm.RegionTree))
	}
	if st.NVM.WritesTo(nvm.RegionData) != 10 {
		t.Fatalf("data writes = %d, want 10", st.NVM.WritesTo(nvm.RegionData))
	}
}

func TestBonsaiRejectsASITScheme(t *testing.T) {
	if _, err := NewBonsai(TestConfig(SchemeASIT)); err == nil {
		t.Fatal("Bonsai accepted the ASIT scheme")
	}
}

func TestBonsaiConfigValidation(t *testing.T) {
	cfg := TestConfig(SchemeWriteBack)
	cfg.MemoryBytes = 100 // not page aligned
	if _, err := NewBonsai(cfg); err == nil {
		t.Fatal("invalid memory size accepted")
	}
	cfg = TestConfig(SchemeWriteBack)
	cfg.StopLoss = 0
	if _, err := NewBonsai(cfg); err == nil {
		t.Fatal("invalid stop-loss accepted")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeWriteBack: "writeback", SchemeStrict: "strict", SchemeOsiris: "osiris",
		SchemeAGITRead: "agit-read", SchemeAGITPlus: "agit-plus", SchemeASIT: "asit",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
