package memctrl

// Bank-parallel epoch pipeline with coalesced integrity-tree updates.
//
// The legacy write path updates every Merkle ancestor of the written
// counter block eagerly, once per request: a write to a hot page costs
// Levels() tree-node hashes and, under strict persistence, Levels()
// staged node writes, even though consecutive writes share almost all
// of their root path. The epoch pipeline defers those ancestor updates
// into a per-epoch dirty set and drains them in one coalesced commit
// group every cfg.EpochRequests writes: each dirty ancestor is hashed
// and persisted once per epoch, however many child updates it absorbed.
//
// Crash safety ("coalescing buffer persistence contract"): while a
// window is open, the on-chip root register still anchors the
// epoch-start state. Every epoch write therefore stages a journal note
// inside its atomic commit group (see nvm.Device's epoch journal): the
// note's Old pins the epoch-start content of the block — the value the
// stale register covers — and its New tracks the authoritative current
// content. Recovery from a mid-epoch crash runs two passes: pass A
// rolls journaled blocks back to Old and verifies the stale register,
// pass B replays New, recomputes the journaled root paths and anchors
// the fresh root (see bonsai_recovery.go). The close itself retires the
// window atomically: the coalesced node writes, the fresh root register
// and the journal clear ride one commit group.
//
// With cfg.EpochRequests <= 1 none of this code runs: WriteBlock
// dispatches to the legacy path, byte-identical to pre-epoch builds.

import (
	"sort"

	"anubis/internal/counter"
	"anubis/internal/ecc"
	"anubis/internal/merkle"
	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// writeBlockEpoch is WriteBlock under the epoch pipeline: the counter
// update and the encrypted data block still persist atomically per
// request, but the eager tree-path update is deferred into the epoch's
// dirty set, made crash-safe by the journal note riding in the same
// commit group.
func (b *Bonsai) writeBlockEpoch(idx uint64, data [BlockBytes]byte) error {
	if err := b.checkAddr(idx); err != nil {
		return err
	}
	page, lane := idx/counter.SplitMinors, int(idx%counter.SplitMinors)
	line, err := b.getCounterBlock(page)
	if err != nil {
		return err
	}
	e := b.oe
	var s counter.Split
	var overflow bool
	if e != nil {
		overflow = e.Overflow
	} else {
		s = counter.UnpackSplit(line.Data)
		overflow = s.Minors[lane] == counter.MinorMax
	}
	if overflow {
		// Page overflow ahead: the re-encryption rewrites every lane of
		// the page, which the coalescing window cannot express. Close
		// the window and take the legacy path for this one write (the
		// counter line is cached, so the retraced prefix costs nothing).
		if err := b.closeEpoch(); err != nil {
			return err
		}
		return b.writeBlockLegacy(idx, data)
	}
	b.stats.WriteRequests++
	b.pending = b.pending[:0]

	epochStart := line.Data
	var ctr uint64
	if e != nil {
		line.Data = e.CtrBlock
		ctr = e.Ctr
	} else {
		s.Increment(lane) // cannot overflow: pre-checked above
		line.Data = s.Pack()
		ctr = s.Counter(lane)
	}
	if b.cfg.Scheme == SchemeStrict {
		b.stats.StrictWrites++
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
	} else if b.cfg.Scheme == SchemeTriad {
		b.stats.StrictWrites++
		b.cCache.MarkDirty(page)
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
	} else if b.cfg.Scheme == SchemeSelective && b.inPersistentRegion(idx) {
		b.stats.StrictWrites++
		b.cCache.MarkDirty(page)
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
	} else {
		first := b.cCache.MarkDirty(page)
		if first && b.cfg.Scheme == SchemeAGITPlus {
			b.shadowCounterSlot(line.Slot(), page)
		}
	}

	// Osiris stop-loss, unchanged from the legacy path.
	if b.cfg.Scheme != SchemeWriteBack && b.cfg.Scheme != SchemeStrict &&
		b.cfg.Scheme != SchemeSelective && b.cfg.Recovery != RecoveryPhase {
		if b.updateCount.Inc(page) >= b.cfg.StopLoss {
			b.updateCount.Set(page, 0)
			b.stats.StopLossWrites++
			b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionCounter, Index: page, Block: line.Data})
		}
	}

	if e != nil {
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: b.wl.phys(idx), Block: e.CT, HasSide: true, Side: e.Side})
	} else {
		var ctBlk [BlockBytes]byte
		b.eng.EncryptTo(ctBlk[:], data[:], idx, ctr)
		side := nvm.Sideband{ECC: ecc.EncodeBlock(data[:]), MAC: b.eng.DataMAC(idx, ctr, data[:]), Phase: uint8(ctr)}
		b.pending = append(b.pending, nvm.PendingWrite{Region: nvm.RegionData, Index: b.wl.phys(idx), Block: ctBlk, HasSide: true, Side: side})
	}

	// Deferred tree update: remember the page and journal the change.
	// Old pins the epoch-start content (sticky across the window: a
	// later note for the same page refreshes only New), so the stale
	// root register plus the journal always describe a recoverable
	// state, under every crash model.
	b.epochDirty[page] = struct{}{}
	b.pending = append(b.pending, nvm.PendingWrite{JOp: nvm.JournalNote, JKey: page, JOld: epochStart, Block: line.Data})

	b.now += b.cfg.HashNS // pipelined encrypt+MAC engine occupancy
	b.dev.Attr().Add(obs.CompCrypto, b.cfg.HashNS)
	b.commitPending()
	b.now = b.wl.recordWrite(b.now)

	b.epochWrites++
	if b.epochWrites >= b.cfg.EpochRequests {
		return b.closeEpoch()
	}
	return nil
}

// closeEpoch drains the coalescing buffer: every dirty ancestor of the
// window's written pages is recomputed exactly once, persisted per the
// scheme's policy, and the fresh root register plus the journal clear
// retire the window in one atomic commit group. Safe to call with an
// empty window.
//
// The walk keeps cache pressure bounded: dirty children are processed
// in sorted order, so each parent's dirty children are contiguous and
// only one parent line is held at a time.
func (b *Bonsai) closeEpoch() error {
	b.epochWrites = 0
	if len(b.epochDirty) == 0 {
		return nil
	}
	start := b.now

	pages := b.epochPages[:0]
	for p := range b.epochDirty {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	b.epochPages = pages

	hashes := b.epochHash[:0]
	for _, p := range pages {
		line, err := b.getCounterBlock(p)
		if err != nil {
			return err
		}
		hashes = append(hashes, b.eng.ContentHash(line.Data[:]))
	}
	b.epochHash = hashes

	b.pending = b.pending[:0]
	var treeWrites []nvm.PendingWrite
	nodes := 0
	idxs := pages
	for level := 0; level < b.geom.Levels(); level++ {
		b.now += b.cfg.HashNS // one pipelined hash pass per level
		b.dev.Attr().Add(obs.CompCrypto, b.cfg.HashNS)
		var parents []uint64
		var parentHashes []uint64
		for i := 0; i < len(idxs); {
			nodeIdx := idxs[i] / merkle.Arity
			line, err := b.getTreeNode(level, nodeIdx)
			if err != nil {
				return err
			}
			gn := merkle.GNode(line.Data)
			for ; i < len(idxs) && idxs[i]/merkle.Arity == nodeIdx; i++ {
				gn.SetHash(int(idxs[i]%merkle.Arity), hashes[i])
			}
			line.Data = gn
			nodes++
			flat := b.geom.Flat(level, nodeIdx)
			if b.cfg.Scheme == SchemeStrict || (b.cfg.Scheme == SchemeTriad && level < b.cfg.TriadLevels) {
				b.stats.StrictWrites++
				treeWrites = append(treeWrites, nvm.PendingWrite{Region: nvm.RegionTree, Index: flat, Block: line.Data})
				if b.cfg.Scheme == SchemeTriad {
					b.tCache.MarkDirty(flat)
				}
			} else {
				firstDirty := b.tCache.MarkDirty(flat)
				if firstDirty && b.cfg.Scheme == SchemeAGITPlus {
					b.shadowTreeSlot(line.Slot(), flat)
				}
			}
			parents = append(parents, nodeIdx)
			parentHashes = append(parentHashes, b.eng.ContentHash(line.Data[:]))
		}
		idxs, hashes = parents, parentHashes
	}
	b.rootHash = hashes[0]

	// Drain-window placement: order the coalesced node writes so the
	// banks that free up earliest drain first (nvm.Device.EarliestBankFree
	// over singleton bank sets; deterministic, ties broken by bank then
	// node index).
	if len(treeWrites) > 1 {
		banks := b.dev.Timing().Banks
		free := make([]uint64, banks)
		order := make([]int, banks)
		for i := 0; i < banks; i++ {
			bank := i
			free[i] = b.dev.EarliestBankFree(func(x int) bool { return x == bank })
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if free[order[i]] != free[order[j]] {
				return free[order[i]] < free[order[j]]
			}
			return order[i] < order[j]
		})
		rank := make([]int, banks)
		for r, bank := range order {
			rank[bank] = r
		}
		sort.SliceStable(treeWrites, func(i, j int) bool {
			bi := b.dev.BankOf(nvm.RegionTree, treeWrites[i].Index)
			bj := b.dev.BankOf(nvm.RegionTree, treeWrites[j].Index)
			if bi != bj {
				return rank[bi] < rank[bj]
			}
			return treeWrites[i].Index < treeWrites[j].Index
		})
	}
	b.pending = append(b.pending, treeWrites...)

	var rootBlk [BlockBytes]byte
	putU64(rootBlk[:], b.rootHash)
	b.pending = append(b.pending, nvm.PendingWrite{RegName: regBonsaiRoot, Block: rootBlk})
	b.pending = append(b.pending, nvm.PendingWrite{JOp: nvm.JournalClear})
	b.commitPending()

	for p := range b.epochDirty {
		delete(b.epochDirty, p)
	}
	if b.probe != nil {
		b.probe.Event(obs.EvEpochClose, start, b.now, uint64(nodes))
	}
	return nil
}

// FlushEpoch closes any open epoch window, draining the deferred tree
// updates. A no-op for legacy configs, empty windows, and crashed
// controllers. The harness calls it at end-of-run so the reported
// state and timings cover the whole workload.
func (b *Bonsai) FlushEpoch() error {
	b.flushFastRun()
	if b.crashed || b.cfg.EpochRequests <= 1 {
		return nil
	}
	return b.closeEpoch()
}
