package memctrl

import (
	"testing"

	"anubis/internal/nvm"
)

// These tests pin the externally observable behaviour of a full
// fill → crash → recover cycle to golden numbers captured from the
// original map-backed nvm.Device implementation. The paged sparse
// store must reproduce them exactly: same media traffic, same recovery
// work, same wear distribution, same post-recovery content. Any drift
// here means the storage-layer rewrite changed semantics, not just
// speed.

// equivGolden is one scheme's golden observation set.
type equivGolden struct {
	// Pre-crash device stats (deterministic: the workload is seeded and
	// the controller is single-threaded).
	Reads, Writes  uint64
	WritesByRegion [6]uint64
	// Recovery report.
	RedoneWrites   int
	EntriesScanned uint64
	CountersFixed  uint64
	NodesRebuilt   uint64
	FetchOps       uint64
	CryptoOps      uint64
	// Wear accounting immediately after recovery.
	WearTotal   [6]uint64
	MaxWearIdx  uint64
	MaxWearCnt  uint64
	MaxWearRegn nvm.Region
	// FNV-1a checksum over every data block read back post-recovery.
	Checksum uint64
}

// equivWorkload drives a deterministic write/read mix that forces
// evictions, shadow-table churn, stop-loss persists and WPQ pressure.
func equivWorkload(t *testing.T, ctrl Controller) {
	t.Helper()
	equivWorkloadRange(t, ctrl, 0, 4000)
}

// equivWorkloadRange drives requests [lo, hi) of the deterministic mix.
// Requests depend only on the absolute index i, so splitting the range
// across two controllers (warm parent + forked child) replays the exact
// byte stream a single straight-through run would see.
func equivWorkloadRange(t *testing.T, ctrl Controller, lo, hi uint64) {
	t.Helper()
	n := ctrl.NumBlocks()
	var data [BlockBytes]byte
	for i := lo; i < hi; i++ {
		addr := (i * 2654435761) % n
		if i%3 == 2 {
			if _, err := ctrl.ReadBlock((i * 40503) % n); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			continue
		}
		x := addr*0x9e3779b97f4a7c15 ^ i
		for j := range data {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			data[j] = byte(x)
		}
		if err := ctrl.WriteBlock(addr, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// observeEquiv runs fill → crash → recover and gathers every golden
// quantity.
func observeEquiv(t *testing.T, ctrl Controller) equivGolden {
	t.Helper()
	var g equivGolden
	equivWorkload(t, ctrl)

	dev := ctrl.Device()
	s := dev.Stats()
	g.Reads, g.Writes = s.Reads, s.Writes
	for r := nvm.RegionData; r < nvm.Region(6); r++ {
		g.WritesByRegion[r] = s.WritesTo(r)
	}

	ctrl.Crash()
	rep, err := ctrl.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	g.RedoneWrites = rep.RedoneWrites
	g.EntriesScanned = rep.EntriesScanned
	g.CountersFixed = rep.CountersFixed
	g.NodesRebuilt = rep.NodesRebuilt
	g.FetchOps = rep.FetchOps
	g.CryptoOps = rep.CryptoOps

	// Wear right after recovery, before the verification sweep below
	// perturbs it with its own evictions.
	for r := nvm.RegionData; r < nvm.Region(6); r++ {
		var tot uint64
		for _, idx := range dev.BlocksIn(r) {
			tot += dev.WearOf(r, idx)
		}
		g.WearTotal[r] = tot
	}
	g.MaxWearRegn, g.MaxWearIdx, g.MaxWearCnt = dev.MaxWearAll()

	// Post-recovery content: every data block decrypts and verifies,
	// and the plaintext stream hashes to a fixed value.
	h := uint64(14695981039346656037)
	for idx := uint64(0); idx < ctrl.NumBlocks(); idx++ {
		blk, err := ctrl.ReadBlock(idx)
		if err != nil {
			t.Fatalf("post-recovery read %d: %v", idx, err)
		}
		for _, b := range blk {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	g.Checksum = h
	return g
}

func checkEquiv(t *testing.T, got, want equivGolden) {
	t.Helper()
	if got != want {
		t.Fatalf("behaviour drifted from the map-backed golden:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestPagedEquivalenceAGIT pins the AGIT-Plus (Bonsai family)
// fill/crash/recover cycle.
func TestPagedEquivalenceAGIT(t *testing.T) {
	ctrl, err := NewBonsai(TestConfig(SchemeAGITPlus))
	if err != nil {
		t.Fatal(err)
	}
	got := observeEquiv(t, ctrl)
	t.Logf("AGIT golden: %+v", got)
	checkEquiv(t, got, goldenAGIT)
}

// TestPagedEquivalenceASIT pins the ASIT (SGX family) cycle.
func TestPagedEquivalenceASIT(t *testing.T) {
	ctrl, err := NewSGX(TestConfig(SchemeASIT))
	if err != nil {
		t.Fatal(err)
	}
	got := observeEquiv(t, ctrl)
	t.Logf("ASIT golden: %+v", got)
	checkEquiv(t, got, goldenASIT)
}

// Golden observations captured from the pre-paged (map-backed) device
// implementation at the same seed/workload. Do not regenerate these
// from a paged build unless the workload itself changes.
var goldenAGIT = equivGolden{
	Reads:          6085,
	Writes:         9667,
	WritesByRegion: [6]uint64{2667, 2618, 857, 2637, 888, 0},
	RedoneWrites:   0,
	EntriesScanned: 64,
	CountersFixed:  19,
	NodesRebuilt:   32,
	FetchOps:       679,
	CryptoOps:      608,
	WearTotal:      [6]uint64{2667, 2637, 890, 2637, 888, 0},
	MaxWearIdx:     0,
	MaxWearCnt:     683,
	MaxWearRegn:    nvm.RegionSCT,
	Checksum:       7692909221537013069,
}

var goldenASIT = equivGolden{
	Reads:          14554,
	Writes:         19923,
	WritesByRegion: [6]uint64{2667, 2656, 4679, 0, 0, 9921},
	RedoneWrites:   0,
	EntriesScanned: 64,
	CountersFixed:  0,
	NodesRebuilt:   37,
	FetchOps:       128,
	CryptoOps:      110,
	WearTotal:      [6]uint64{2667, 2656, 4679, 0, 0, 9921},
	MaxWearIdx:     42,
	MaxWearCnt:     340,
	MaxWearRegn:    nvm.RegionST,
	Checksum:       7692909221537013069,
}
