package memctrl

import (
	"math/rand"
	"testing"

	"anubis/internal/nvm"
)

func wearBonsai(t *testing.T, scheme Scheme, period int) *Bonsai {
	t.Helper()
	cfg := TestConfig(scheme)
	cfg.WearPeriod = period
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWearLevelRoundTrip(t *testing.T) {
	b := wearBonsai(t, SchemeWriteBack, 3)
	for i := uint64(0); i < 300; i++ {
		if err := b.WriteBlock(i%40, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Latest values must be readable through the rotated mapping.
	for i := uint64(260); i < 300; i++ {
		got, err := b.ReadBlock(i % 40)
		if err != nil {
			t.Fatalf("read %d: %v", i%40, err)
		}
		if got != pattern(i) {
			t.Fatalf("block %d corrupted under wear leveling", i%40)
		}
	}
}

func TestWearLevelSpreadsHotBlock(t *testing.T) {
	// Hammer one logical block through several full gap rotations (a
	// rotation takes (N+1)·ψ writes): without leveling one physical line
	// takes all the wear; with leveling it spreads across the lines.
	mk := func(period int) *Bonsai {
		cfg := TestConfig(SchemeWriteBack)
		cfg.MemoryBytes = 4096 // one page: 64 blocks, 65 physical lines
		cfg.WearPeriod = period
		b, err := NewBonsai(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := mk(0)
	leveled := mk(1)
	const writes = 2000
	for i := uint64(0); i < writes; i++ {
		plain.WriteBlock(0, pattern(i))
		leveled.WriteBlock(0, pattern(i))
	}
	_, pw := plain.Device().MaxWear(nvm.RegionData)
	_, lw := leveled.Device().MaxWear(nvm.RegionData)
	if pw < writes { // >= writes: page overflows add re-encryption writes
		t.Fatalf("unleveled hot wear = %d, want >= %d", pw, writes)
	}
	if lw >= pw/4 {
		t.Fatalf("leveled hot wear = %d, not well below %d", lw, pw)
	}
	got, err := leveled.ReadBlock(0)
	if err != nil || got != pattern(writes-1) {
		t.Fatalf("hot block corrupted: %v", err)
	}
}

func TestWearLevelSurvivesCrash(t *testing.T) {
	for _, s := range []Scheme{SchemeStrict, SchemeAGITPlus} {
		t.Run(s.String(), func(t *testing.T) {
			b := wearBonsai(t, s, 2)
			rng := rand.New(rand.NewSource(3))
			expect := map[uint64][BlockBytes]byte{}
			for round := 0; round < 4; round++ {
				for i := 0; i < 150; i++ {
					addr := uint64(rng.Intn(int(b.NumBlocks())))
					d := pattern(uint64(round)<<16 | uint64(i))
					if err := b.WriteBlock(addr, d); err != nil {
						t.Fatal(err)
					}
					expect[addr] = d
				}
				b.Crash()
				if _, err := b.Recover(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for addr, want := range expect {
					got, err := b.ReadBlock(addr)
					if err != nil || got != want {
						t.Fatalf("round %d block %d: %v", round, addr, err)
					}
				}
			}
		})
	}
}

func TestWearLevelSGXASIT(t *testing.T) {
	cfg := TestConfig(SchemeASIT)
	cfg.WearPeriod = 3
	c, err := NewSGX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	expect := map[uint64][BlockBytes]byte{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(int(c.NumBlocks())))
			d := pattern(uint64(round)<<20 | uint64(i))
			if err := c.WriteBlock(addr, d); err != nil {
				t.Fatal(err)
			}
			expect[addr] = d
		}
		c.Crash()
		if _, err := c.Recover(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for addr, want := range expect {
			got, err := c.ReadBlock(addr)
			if err != nil || got != want {
				t.Fatalf("round %d block %d: %v", round, addr, err)
			}
		}
	}
}

func TestWearLevelWithPhaseRecovery(t *testing.T) {
	cfg := TestConfig(SchemeAGITPlus)
	cfg.WearPeriod = 2
	cfg.Recovery = RecoveryPhase
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	expect := map[uint64][BlockBytes]byte{}
	tortureRound(t, b, rng, expect, 300, false)
	tortureRound(t, b, rng, expect, 300, false)
}

func TestWearLevelGapMovesHappen(t *testing.T) {
	b := wearBonsai(t, SchemeWriteBack, 1) // move on every write
	for i := uint64(0); i < 50; i++ {
		b.WriteBlock(i, pattern(i))
	}
	if b.wl.sg.Gap() == b.wl.sg.N() && b.wl.sg.Start() == 0 {
		t.Fatal("gap never moved with period 1")
	}
}

func TestWearLevelPageOverflow(t *testing.T) {
	// Page re-encryption must route through the same mapping.
	cfg := TestConfig(SchemeOsiris)
	cfg.WearPeriod = 5
	b, err := NewBonsai(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lane := uint64(1); lane < 4; lane++ {
		b.WriteBlock(lane, pattern(lane))
	}
	for i := 0; i <= 130; i++ {
		if err := b.WriteBlock(0, pattern(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().PageOverflows == 0 {
		t.Fatal("overflow not triggered")
	}
	for lane := uint64(1); lane < 4; lane++ {
		got, err := b.ReadBlock(lane)
		if err != nil || got != pattern(lane) {
			t.Fatalf("lane %d after overflow: %v", lane, err)
		}
	}
}

func TestWearLevelerDisabledIsIdentity(t *testing.T) {
	var w *wearLeveler
	if w.phys(42) != 42 {
		t.Fatal("nil leveler must be identity")
	}
	if w.recordWrite(7) != 7 {
		t.Fatal("nil leveler must not advance time")
	}
}
