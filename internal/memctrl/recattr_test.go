package memctrl

import (
	"errors"
	"math/rand"
	"testing"

	"anubis/internal/nvm"
	"anubis/internal/obs"
)

// TestRecoveryAttributionSumExact is the recovery-phase twin of the run
// ledger's sum-exact contract (DESIGN.md §16): for every scheme × crash
// model × epoch cell, the phase ledger must decompose the modeled
// recovery time exactly — Phases.Total() == ModeledNS() — whether the
// recovery succeeds or fails typed.
func TestRecoveryAttributionSumExact(t *testing.T) {
	type cell struct {
		name  string
		ctor  func(Config) (Controller, error)
		sch   Scheme
		recov bool // scheme has a recovery mechanism
	}
	bonsai := func(c Config) (Controller, error) { return NewBonsai(c) }
	sgx := func(c Config) (Controller, error) { return NewSGX(c) }
	cells := []cell{
		{"bonsai/write-back", bonsai, SchemeWriteBack, false},
		{"bonsai/strict", bonsai, SchemeStrict, true},
		{"bonsai/osiris", bonsai, SchemeOsiris, true},
		{"bonsai/agit-read", bonsai, SchemeAGITRead, true},
		{"bonsai/agit-plus", bonsai, SchemeAGITPlus, true},
		{"bonsai/selective", bonsai, SchemeSelective, true},
		{"bonsai/triad", bonsai, SchemeTriad, true},
		{"sgx/write-back", sgx, SchemeWriteBack, false},
		{"sgx/strict", sgx, SchemeStrict, true},
		{"sgx/osiris", sgx, SchemeOsiris, false},
		{"sgx/asit", sgx, SchemeASIT, true},
	}
	for _, tc := range cells {
		for _, model := range nvm.CrashModels() {
			for _, epoch := range []int{0, 8} {
				name := tc.name + "/" + model.String()
				if epoch > 0 {
					name += "/epoch8"
				}
				t.Run(name, func(t *testing.T) {
					cfg := TestConfig(tc.sch)
					if tc.sch == SchemeTriad {
						cfg.TriadLevels = 2
					}
					cfg.EpochRequests = epoch
					ctrl, err := tc.ctor(cfg)
					if err != nil {
						t.Fatal(err)
					}
					var rng *rand.Rand
					if model != nvm.CrashFullADR {
						ctrl.Device().TrackInflight(true)
						rng = rand.New(rand.NewSource(99))
					}
					wrng := rand.New(rand.NewSource(42))
					for i := 0; i < 300; i++ {
						addr := uint64(wrng.Intn(int(ctrl.NumBlocks())))
						var d [BlockBytes]byte
						wrng.Read(d[:])
						if err := ctrl.WriteBlock(addr, d); err != nil {
							t.Fatal(err)
						}
					}
					ctrl.CrashWith(model, rng)
					rep, rerr := ctrl.Recover()
					if rep == nil {
						t.Fatalf("Recover returned nil report (err=%v)", rerr)
					}
					if tc.recov && rerr != nil &&
						!errors.Is(rerr, ErrUnrecoverable) && !errors.Is(rerr, ErrNotRecoverable) {
						t.Fatalf("Recover: %v", rerr)
					}
					if got, want := rep.Phases.Total(), rep.ModeledNS(); got != want {
						t.Fatalf("phase total %d != modeled recovery %d (phases %v)",
							got, want, rep.Phases.Map())
					}
					// Spot-check the wiring, not just the sum: schemes with
					// real work must attribute it to their signature phases.
					switch tc.sch {
					case SchemeOsiris:
						if tc.name == "bonsai/osiris" && rerr == nil {
							if rep.Phases.Get(obs.RPCounterScan) == 0 || rep.Phases.Get(obs.RPMerkleRebuild) == 0 {
								t.Fatalf("osiris missing scan/rebuild phases: %v", rep.Phases.Map())
							}
							if rep.Phases.Get(obs.RPECCVerify) == 0 {
								t.Fatalf("osiris ECC trials not attributed: %v", rep.Phases.Map())
							}
						}
					case SchemeAGITRead, SchemeAGITPlus:
						if rerr == nil && rep.Phases.Get(obs.RPShadowReplay) == 0 {
							t.Fatalf("AGIT missing shadow replay phase: %v", rep.Phases.Map())
						}
						if rerr == nil && rep.Phases.Get(obs.RPRootAnchor) == 0 {
							t.Fatalf("AGIT missing root anchor phase: %v", rep.Phases.Map())
						}
					case SchemeASIT:
						if rerr == nil && rep.Phases.Get(obs.RPShadowReplay) == 0 {
							t.Fatalf("ASIT missing shadow replay phase: %v", rep.Phases.Map())
						}
					}
					if epoch > 0 && rerr == nil && rep.JournalPages > 0 {
						if rep.Phases.Get(obs.RPJournalPassB) == 0 {
							t.Fatalf("mid-epoch crash but pass B empty: %v", rep.Phases.Map())
						}
					}
					if !tc.recov && rep.Phases.Total() != rep.ModeledNS() {
						t.Fatalf("non-recoverable scheme broke sum-exactness")
					}
				})
			}
		}
	}
}

// TestRecoveryPhasesJSONShape pins the report field name and the named
// phase keys (schema_version 3).
func TestRecoveryPhasesJSONShape(t *testing.T) {
	b, err := NewBonsai(TestConfig(SchemeAGITPlus))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := b.WriteBlock(i%b.NumBlocks(), pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Crash()
	rep, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Phases.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.RecLedger
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Total() != rep.Phases.Total() {
		t.Fatalf("phase ledger did not survive JSON round trip")
	}
}
