package cryptoeng

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func testBlock(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, BlockBytes)
	rng.Read(b)
	return b
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := NewTestEngine()
	f := func(addr, counter uint64, seed int64) bool {
		pt := testBlock(seed)
		ct := e.Encrypt(addr, counter, pt)
		return bytes.Equal(e.Decrypt(addr, counter, ct), pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	e := NewTestEngine()
	pt := testBlock(1)
	ct := e.Encrypt(42, 7, pt)
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
}

func TestSpatialUniqueness(t *testing.T) {
	// Same plaintext and counter at two addresses must encrypt differently.
	e := NewTestEngine()
	pt := testBlock(2)
	if bytes.Equal(e.Encrypt(1, 5, pt), e.Encrypt(2, 5, pt)) {
		t.Fatal("pads collide across addresses")
	}
}

func TestTemporalUniqueness(t *testing.T) {
	// Same plaintext and address with two counters must encrypt differently.
	e := NewTestEngine()
	pt := testBlock(3)
	if bytes.Equal(e.Encrypt(9, 1, pt), e.Encrypt(9, 2, pt)) {
		t.Fatal("pads collide across counter values")
	}
}

func TestWrongCounterGarbles(t *testing.T) {
	e := NewTestEngine()
	pt := testBlock(4)
	ct := e.Encrypt(100, 10, pt)
	if bytes.Equal(e.Decrypt(100, 11, ct), pt) {
		t.Fatal("decryption with the wrong counter recovered plaintext")
	}
}

func TestXorInPlaceMatchesEncrypt(t *testing.T) {
	e := NewTestEngine()
	pt := testBlock(5)
	want := e.Encrypt(77, 3, pt)
	buf := make([]byte, BlockBytes)
	copy(buf, pt)
	e.XorInPlace(77, 3, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("XorInPlace disagrees with Encrypt")
	}
}

func TestKeySeparation(t *testing.T) {
	var k1, k2 [16]byte
	var mk [32]byte
	k2[0] = 1
	e1 := NewEngine(k1, mk)
	e2 := NewEngine(k2, mk)
	pt := testBlock(6)
	if bytes.Equal(e1.Encrypt(0, 0, pt), e2.Encrypt(0, 0, pt)) {
		t.Fatal("different AES keys produced identical ciphertext")
	}
}

func TestDataMACDetectsTampering(t *testing.T) {
	e := NewTestEngine()
	data := testBlock(7)
	mac := e.DataMAC(5, 9, data)
	if e.DataMAC(5, 9, data) != mac {
		t.Fatal("DataMAC not deterministic")
	}
	if e.DataMAC(6, 9, data) == mac {
		t.Fatal("DataMAC ignores address")
	}
	if e.DataMAC(5, 10, data) == mac {
		t.Fatal("DataMAC ignores counter")
	}
	data[0] ^= 1
	if e.DataMAC(5, 9, data) == mac {
		t.Fatal("DataMAC ignores data")
	}
}

func TestDataMACKeyed(t *testing.T) {
	var ak [16]byte
	var mk1, mk2 [32]byte
	mk2[0] = 1
	data := testBlock(8)
	if NewEngine(ak, mk1).DataMAC(1, 1, data) == NewEngine(ak, mk2).DataMAC(1, 1, data) {
		t.Fatal("DataMAC independent of key")
	}
}

func TestTreeHashProperties(t *testing.T) {
	e := NewTestEngine()
	node := testBlock(9)
	h := e.TreeHash(3, node)
	if e.TreeHash(3, node) != h {
		t.Fatal("TreeHash not deterministic")
	}
	if e.TreeHash(4, node) == h {
		t.Fatal("TreeHash ignores node address")
	}
	node[63] ^= 0x80
	if e.TreeHash(3, node) == h {
		t.Fatal("TreeHash ignores contents")
	}
}

func TestSGXMACWidth(t *testing.T) {
	e := NewTestEngine()
	f := func(addr, c0, c1, pc uint64) bool {
		m := e.SGXMAC(addr, []uint64{c0, c1}, pc)
		return m>>SGXMACBits == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSGXMACBindsEverything(t *testing.T) {
	e := NewTestEngine()
	ctrs := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	m := e.SGXMAC(10, ctrs, 99)
	if e.SGXMAC(11, ctrs, 99) == m {
		t.Fatal("SGXMAC ignores node address")
	}
	if e.SGXMAC(10, ctrs, 100) == m {
		t.Fatal("SGXMAC ignores parent counter — inter-level binding broken")
	}
	ctrs[3]++
	if e.SGXMAC(10, ctrs, 99) == m {
		t.Fatal("SGXMAC ignores the node's own counters")
	}
}

func TestPanicsOnWrongSizes(t *testing.T) {
	e := NewTestEngine()
	short := make([]byte, 10)
	for name, fn := range map[string]func(){
		"Encrypt":    func() { e.Encrypt(0, 0, short) },
		"XorInPlace": func() { e.XorInPlace(0, 0, short) },
		"DataMAC":    func() { e.DataMAC(0, 0, short) },
		"TreeHash":   func() { e.TreeHash(0, short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on short block", name)
				}
			}()
			fn()
		}()
	}
}

func TestEncryptToMatchesEncrypt(t *testing.T) {
	e := NewTestEngine()
	pt := testBlock(13)
	want := e.Encrypt(31, 12, pt)
	dst := make([]byte, BlockBytes)
	e.EncryptTo(dst, pt, 31, 12)
	if !bytes.Equal(dst, want) {
		t.Fatal("EncryptTo disagrees with Encrypt")
	}
	// In-place (aliased dst/src) must give the same result.
	buf := make([]byte, BlockBytes)
	copy(buf, pt)
	e.EncryptTo(buf, buf, 31, 12)
	if !bytes.Equal(buf, want) {
		t.Fatal("aliased EncryptTo disagrees with Encrypt")
	}
	e.DecryptTo(buf, buf, 31, 12)
	if !bytes.Equal(buf, pt) {
		t.Fatal("DecryptTo did not round-trip")
	}
}

func TestEncryptToPanicsOnWrongSizes(t *testing.T) {
	e := NewTestEngine()
	short := make([]byte, 10)
	full := make([]byte, BlockBytes)
	for name, fn := range map[string]func(){
		"short dst": func() { e.EncryptTo(short, full, 0, 0) },
		"short src": func() { e.EncryptTo(full, short, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestHotPathZeroAllocs asserts the per-block primitives are
// allocation-free: this is what keeps the parallel evaluation engine's
// cells from hammering the garbage collector. (A tiny tolerance absorbs
// the rare case of the GC clearing the scratch pool mid-measurement.)
func TestHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool; allocation counts are not meaningful")
	}
	e := NewTestEngine()
	buf := testBlock(14)
	dst := make([]byte, BlockBytes)
	ctrs := make([]uint64, 8)
	cases := map[string]func(){
		"pad/XorInPlace": func() { e.XorInPlace(3, 9, buf) },
		"EncryptTo":      func() { e.EncryptTo(dst, buf, 3, 9) },
		"DataMAC":        func() { e.DataMAC(3, 9, buf) },
		"TreeHash":       func() { e.TreeHash(3, buf) },
		"ContentHash":    func() { e.ContentHash(buf) },
		"SGXMAC":         func() { e.SGXMAC(3, ctrs, 1) },
		"STMAC":          func() { e.STMAC(3, ctrs) },
	}
	for name, fn := range cases {
		fn() // warm the scratch pool outside the measurement
		if avg := testing.AllocsPerRun(500, fn); avg > 0.02 {
			t.Errorf("%s: %.3f allocs/op, want 0", name, avg)
		}
	}
}

// TestConcurrentEngineSharing exercises one Engine from many goroutines
// (the parallel evaluation pattern) and checks the pooled scratch never
// crosses wires: every goroutine must see self-consistent results.
func TestConcurrentEngineSharing(t *testing.T) {
	e := NewTestEngine()
	pt := testBlock(15)
	wantCT := e.Encrypt(77, 13, pt)
	wantMAC := e.DataMAC(77, 13, pt)
	wantTH := e.TreeHash(42, pt)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			buf := make([]byte, BlockBytes)
			for i := 0; i < 2000; i++ {
				e.EncryptTo(buf, pt, 77, 13)
				if !bytes.Equal(buf, wantCT) {
					done <- fmt.Errorf("iter %d: ciphertext mismatch", i)
					return
				}
				if e.DataMAC(77, 13, pt) != wantMAC {
					done <- fmt.Errorf("iter %d: MAC mismatch", i)
					return
				}
				if e.TreeHash(42, pt) != wantTH {
					done <- fmt.Errorf("iter %d: tree hash mismatch", i)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	e := NewTestEngine()
	pt := testBlock(10)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.XorInPlace(uint64(i), uint64(i), pt)
	}
}

// BenchmarkPad isolates OTP generation into a caller-provided buffer —
// the pure pad path (what overlaps the data fetch in hardware).
func BenchmarkPad(b *testing.B) {
	e := NewTestEngine()
	src := testBlock(10)
	dst := make([]byte, BlockBytes)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.EncryptTo(dst, src, uint64(i), uint64(i))
	}
}

func BenchmarkDataMAC(b *testing.B) {
	e := NewTestEngine()
	data := testBlock(11)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.DataMAC(uint64(i), 1, data)
	}
}

func BenchmarkTreeHash(b *testing.B) {
	e := NewTestEngine()
	node := testBlock(12)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.TreeHash(uint64(i), node)
	}
}

func BenchmarkContentHash(b *testing.B) {
	e := NewTestEngine()
	node := testBlock(13)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ContentHash(node)
	}
}

func BenchmarkSGXMAC(b *testing.B) {
	e := NewTestEngine()
	ctrs := make([]uint64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.SGXMAC(uint64(i), ctrs, 7)
	}
}

func BenchmarkSTMAC(b *testing.B) {
	e := NewTestEngine()
	ctrs := make([]uint64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.STMAC(uint64(i), ctrs)
	}
}

// BenchmarkDataMACParallel measures MAC throughput under the parallel
// evaluation pattern: many goroutines sharing one Engine's scratch pool.
func BenchmarkDataMACParallel(b *testing.B) {
	e := NewTestEngine()
	data := testBlock(14)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			e.DataMAC(i, 1, data)
		}
	})
}
