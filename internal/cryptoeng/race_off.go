//go:build !race

package cryptoeng

// raceEnabled reports whether the race detector is compiled in. Under
// -race, sync.Pool deliberately drops items to expose races, so the
// zero-allocation guarantees cannot be asserted there.
const raceEnabled = false
