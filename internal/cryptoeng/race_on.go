//go:build race

package cryptoeng

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
