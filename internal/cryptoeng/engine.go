// Package cryptoeng implements the cryptographic engine of a secure
// memory controller: counter-mode (OTP) encryption of 64-byte memory
// blocks, the Bonsai data MAC, the 64-bit hash used by general Merkle
// trees, and the 56-bit MAC used by SGX-style parallelizable trees.
//
// The constructions mirror the ones assumed by the paper (and by secure
// processors generally):
//
//   - Encryption is counter mode: a one-time pad is derived from an IV
//     built from the block address and its (spatially and temporally
//     unique) encryption counter, then XORed with the plaintext. Pad
//     generation can overlap the data fetch, which is why secure
//     processors use it; here it matters because the *counter value*
//     fully determines decryption, the property Osiris recovery exploits.
//   - The Bonsai data MAC is computed over (ciphertext address, counter,
//     data) and protects data integrity while the Merkle tree only covers
//     counters.
//   - Tree hashes are truncated so that eight of them pack into one
//     64-byte node (8-ary trees), exactly as in the paper's Figure 2.
//
// All primitives come from the Go standard library (AES, SHA-256, HMAC).
package cryptoeng

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// BlockBytes is the memory block (cache line) size.
const BlockBytes = 64

// TreeHashBytes is the size of one general-tree hash entry; eight such
// entries form one 64-byte Merkle tree node.
const TreeHashBytes = 8

// SGXMACBits is the width of the MAC embedded in SGX-style counter and
// tree blocks (Figure 3 of the paper; 56-bit as in Intel's MEE).
const SGXMACBits = 56

// Engine holds the processor-resident secrets and implements every
// cryptographic operation the memory controller needs. An Engine is
// safe for concurrent use after construction.
type Engine struct {
	aead   cipher.Block // AES-128 block cipher for OTP generation
	macKey [32]byte     // HMAC key for data MACs and SGX MACs
}

// NewEngine derives an engine from a 16-byte processor key and a 32-byte
// MAC key. In a real processor these are fused or generated at boot and
// never leave the chip.
func NewEngine(aesKey [16]byte, macKey [32]byte) *Engine {
	blk, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the
		// fixed-size parameter rules out.
		panic("cryptoeng: " + err.Error())
	}
	return &Engine{aead: blk, macKey: macKey}
}

// NewTestEngine returns an engine with fixed keys, for tests and
// examples where key management is irrelevant.
func NewTestEngine() *Engine {
	var aesKey [16]byte
	var macKey [32]byte
	for i := range aesKey {
		aesKey[i] = byte(i + 1)
	}
	for i := range macKey {
		macKey[i] = byte(0xA0 + i)
	}
	return NewEngine(aesKey, macKey)
}

// pad computes the 64-byte one-time pad for (address, counter).
// The IV of AES block i is (address, counter, i): spatial uniqueness via
// the address, temporal uniqueness via the counter.
func (e *Engine) pad(addr, counter uint64, out *[BlockBytes]byte) {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(iv[0:8], addr)
	for i := 0; i < BlockBytes/aes.BlockSize; i++ {
		binary.LittleEndian.PutUint64(iv[8:16], counter<<2|uint64(i))
		e.aead.Encrypt(out[i*aes.BlockSize:(i+1)*aes.BlockSize], iv[:])
	}
}

// Encrypt XORs a 64-byte plaintext with the OTP for (addr, counter),
// returning the ciphertext. Decryption is the same operation.
func (e *Engine) Encrypt(addr, counter uint64, plaintext []byte) []byte {
	if len(plaintext) != BlockBytes {
		panic("cryptoeng: Encrypt needs a 64-byte block")
	}
	var p [BlockBytes]byte
	e.pad(addr, counter, &p)
	out := make([]byte, BlockBytes)
	for i := range out {
		out[i] = plaintext[i] ^ p[i]
	}
	return out
}

// Decrypt is counter-mode decryption: identical to Encrypt.
func (e *Engine) Decrypt(addr, counter uint64, ciphertext []byte) []byte {
	return e.Encrypt(addr, counter, ciphertext)
}

// XorInPlace applies the OTP for (addr, counter) to buf in place,
// avoiding the allocation of Encrypt. buf must be 64 bytes.
func (e *Engine) XorInPlace(addr, counter uint64, buf []byte) {
	if len(buf) != BlockBytes {
		panic("cryptoeng: XorInPlace needs a 64-byte block")
	}
	var p [BlockBytes]byte
	e.pad(addr, counter, &p)
	for i := range buf {
		buf[i] ^= p[i]
	}
}

// DataMAC computes the 64-bit Bonsai data MAC over (addr, counter, data).
// Together with a Merkle tree over the counters this yields Bonsai
// Merkle Tree protection (Rogers et al., MICRO 2007).
func (e *Engine) DataMAC(addr, counter uint64, data []byte) uint64 {
	if len(data) != BlockBytes {
		panic("cryptoeng: DataMAC needs a 64-byte block")
	}
	mac := hmac.New(sha256.New, e.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], addr)
	binary.LittleEndian.PutUint64(hdr[8:16], counter)
	mac.Write(hdr[:])
	mac.Write(data)
	return binary.LittleEndian.Uint64(mac.Sum(nil)[:8])
}

// TreeHash computes the 64-bit hash of a child node stored in its parent
// general-tree node. The node address is mixed in so identical contents
// at different tree positions hash differently.
func (e *Engine) TreeHash(nodeAddr uint64, node []byte) uint64 {
	if len(node) != BlockBytes {
		panic("cryptoeng: TreeHash needs a 64-byte node")
	}
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], nodeAddr)
	h.Write(hdr[:])
	h.Write(node)
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}

// STMAC computes the 56-bit MAC stored in an ASIT shadow-table entry
// (Figure 9b): it covers the tracked node's address and its full
// (updated) counter values. Unlike the in-NVM node MAC it does not bind
// the parent counter — the shadow table's own integrity tree
// (SHADOW_TREE_ROOT) provides freshness, and covering the complete
// counters (MSBs included) is what lets recovery detect tampering with
// the stale in-memory copy the LSBs are spliced onto.
func (e *Engine) STMAC(nodeAddr uint64, counters []uint64) uint64 {
	mac := hmac.New(sha256.New, e.macKey[:])
	var buf [8]byte
	mac.Write([]byte("anubis-st-entry"))
	binary.LittleEndian.PutUint64(buf[:], nodeAddr)
	mac.Write(buf[:])
	for _, c := range counters {
		binary.LittleEndian.PutUint64(buf[:], c)
		mac.Write(buf[:])
	}
	return binary.LittleEndian.Uint64(mac.Sum(nil)[:8]) & (1<<SGXMACBits - 1)
}

// ContentHash computes the 64-bit hash of a 64-byte node used by
// general (non-parallelizable) Merkle trees. It is content-only —
// position binding comes from the tree structure itself (a child's hash
// is stored at its slot in the parent), which keeps all same-content
// nodes identical and makes the zero-initialized tree computable in
// O(depth) instead of O(nodes).
func (e *Engine) ContentHash(node []byte) uint64 {
	if len(node) != BlockBytes {
		panic("cryptoeng: ContentHash needs a 64-byte node")
	}
	h := sha256.Sum256(node)
	return binary.LittleEndian.Uint64(h[:8])
}

// SGXMAC computes the 56-bit MAC embedded in an SGX-style block: it
// covers the block's own counters (nonces), the counter in the parent
// block that versions this node, and the node address. The result fits
// in the low 56 bits of the returned value.
func (e *Engine) SGXMAC(nodeAddr uint64, counters []uint64, parentCounter uint64) uint64 {
	mac := hmac.New(sha256.New, e.macKey[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], nodeAddr)
	mac.Write(buf[:])
	for _, c := range counters {
		binary.LittleEndian.PutUint64(buf[:], c)
		mac.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], parentCounter)
	mac.Write(buf[:])
	return binary.LittleEndian.Uint64(mac.Sum(nil)[:8]) & (1<<SGXMACBits - 1)
}
