// Package cryptoeng implements the cryptographic engine of a secure
// memory controller: counter-mode (OTP) encryption of 64-byte memory
// blocks, the Bonsai data MAC, the 64-bit hash used by general Merkle
// trees, and the 56-bit MAC used by SGX-style parallelizable trees.
//
// The constructions mirror the ones assumed by the paper (and by secure
// processors generally):
//
//   - Encryption is counter mode: a one-time pad is derived from an IV
//     built from the block address and its (spatially and temporally
//     unique) encryption counter, then XORed with the plaintext. Pad
//     generation can overlap the data fetch, which is why secure
//     processors use it; here it matters because the *counter value*
//     fully determines decryption, the property Osiris recovery exploits.
//   - The Bonsai data MAC is computed over (ciphertext address, counter,
//     data) and protects data integrity while the Merkle tree only covers
//     counters.
//   - Tree hashes are truncated so that eight of them pack into one
//     64-byte node (8-ary trees), exactly as in the paper's Figure 2.
//
// Encryption uses the standard library's AES-128. Hashes and MACs use a
// keyed multiply-mix construction (wyhash-style folded 64×64→128
// multiplies) rather than SHA-256/HMAC: the simulator charges
// cryptographic latency through the modeled HashNS cost, so the
// functional hash contributes nothing to simulated timing — it only
// needs determinism, full-width avalanche (tamper and differential
// tests must see every bit flip), and per-key separation, all of which
// the mix provides at a tenth of the wall-clock cost. SHA-256 here
// dominated whole-sweep profiles (~25% of samples) while adding no
// modeling fidelity; a production memory controller's choice of hash
// is orthogonal to everything this simulator measures.
//
// # Allocation-free hot path
//
// Every simulated memory request calls into this package several times
// (pad + MAC on the data, one tree hash per Merkle level), so the block
// path must not allocate. The MAC/hash paths are pure register math;
// OTP generation stages its pad and IV in a pooled scratch so the
// AES calls never force caller buffers to escape. The pool also keeps
// the Engine safe for concurrent use: parallel evaluation cells
// (internal/parallel) may share one Engine, and each in-flight
// operation checks out its own scratch state.
// BenchmarkPad/BenchmarkDataMAC/BenchmarkTreeHash prove 0 allocs/op.
package cryptoeng

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"math/bits"
	"sync"
)

// BlockBytes is the memory block (cache line) size.
const BlockBytes = 64

// TreeHashBytes is the size of one general-tree hash entry; eight such
// entries form one 64-byte Merkle tree node.
const TreeHashBytes = 8

// SGXMACBits is the width of the MAC embedded in SGX-style counter and
// tree blocks (Figure 3 of the paper; 56-bit as in Intel's MEE).
const SGXMACBits = 56

// scratch is the per-operation working state. One scratch is checked
// out of the Engine's pool for the duration of a primitive call, so the
// hot path performs no heap allocation and concurrent callers never
// share buffers. Only the OTP path needs scratch; MAC and hash
// computation is pure register math.
type scratch struct {
	pad [BlockBytes]byte    // OTP scratch
	iv  [aes.BlockSize]byte // counter-mode IV scratch
}

// Engine holds the processor-resident secrets and implements every
// cryptographic operation the memory controller needs. An Engine is
// safe for concurrent use after construction.
type Engine struct {
	aead    cipher.Block // AES-128 block cipher for OTP generation
	macSeed uint64       // MAC-key-derived seed for data/SGX MACs
	stSeed  uint64       // domain-separated seed for shadow-table MACs
	pool    sync.Pool    // *scratch
}

// Mixing constants: the "secret" multipliers of the wyhash family —
// dense, random-looking odd words that make the folded multiply
// avalanche. Their exact values are arbitrary but must never change:
// persisted images embed hashes computed with them.
const (
	mixK0 = 0xa0761d6478bd642f
	mixK1 = 0xe7037ed1a0b428db
	mixK2 = 0x8ebc6af09c88c6e3
	mixK3 = 0x589965cc75374cc3
	mixK4 = 0x1d8e4e27c47d124f

	// Fixed seeds of the two unkeyed hashes. ContentHash must be
	// engine-independent (default tree nodes are shared across
	// controllers); TreeHash gets its own domain.
	contentSeed = 0x2d358dccaa6c78a5
	treeSeed    = 0x8bb84b93962eacc9

	// stDomainSeed separates shadow-table MACs from node MACs computed
	// under the same MAC key.
	stDomainSeed = 0x9e3779b97f4a7c15
)

// mix is the folded 64×64→128 multiply at the heart of every hash: both
// halves of the product depend on all 128 input bits, so XORing them
// gives full avalanche in one multiply.
func mix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// hashBlock compresses a 64-byte block and a seed into 64 bits: four
// independent two-word lanes, then a cross-lane combining multiply.
func hashBlock(seed uint64, b []byte) uint64 {
	_ = b[BlockBytes-1]
	w0 := binary.LittleEndian.Uint64(b[0:])
	w1 := binary.LittleEndian.Uint64(b[8:])
	w2 := binary.LittleEndian.Uint64(b[16:])
	w3 := binary.LittleEndian.Uint64(b[24:])
	w4 := binary.LittleEndian.Uint64(b[32:])
	w5 := binary.LittleEndian.Uint64(b[40:])
	w6 := binary.LittleEndian.Uint64(b[48:])
	w7 := binary.LittleEndian.Uint64(b[56:])
	h0 := mix(w0^mixK0, w1^seed)
	h1 := mix(w2^mixK1, w3^seed)
	h2 := mix(w4^mixK2, w5^seed)
	h3 := mix(w6^mixK3, w7^seed)
	return mix(h0^h2^mixK4, h1^h3^seed)
}

// NewEngine derives an engine from a 16-byte processor key and a 32-byte
// MAC key. In a real processor these are fused or generated at boot and
// never leave the chip.
func NewEngine(aesKey [16]byte, macKey [32]byte) *Engine {
	blk, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the
		// fixed-size parameter rules out.
		panic("cryptoeng: " + err.Error())
	}
	e := &Engine{aead: blk}
	// Fold the 32-byte MAC key into the 64-bit seeds all keyed MACs
	// hang off: every key bit reaches the seed through a multiply, so
	// distinct keys give unrelated MAC families (the key-separation
	// property the tests check).
	k0 := binary.LittleEndian.Uint64(macKey[0:])
	k1 := binary.LittleEndian.Uint64(macKey[8:])
	k2 := binary.LittleEndian.Uint64(macKey[16:])
	k3 := binary.LittleEndian.Uint64(macKey[24:])
	e.macSeed = mix(k0^mixK0, k1^mixK1) ^ mix(k2^mixK2, k3^mixK3)
	e.stSeed = mix(e.macSeed^mixK4, stDomainSeed)
	e.pool.New = func() any { return new(scratch) }
	// Pre-warm one scratch so even the first operation after boot runs
	// allocation-free.
	e.pool.Put(new(scratch))
	return e
}

func (e *Engine) get() *scratch  { return e.pool.Get().(*scratch) }
func (e *Engine) put(s *scratch) { e.pool.Put(s) }

// NewTestEngine returns an engine with fixed keys, for tests and
// examples where key management is irrelevant.
func NewTestEngine() *Engine {
	var aesKey [16]byte
	var macKey [32]byte
	for i := range aesKey {
		aesKey[i] = byte(i + 1)
	}
	for i := range macKey {
		macKey[i] = byte(0xA0 + i)
	}
	return NewEngine(aesKey, macKey)
}

// padInto computes the 64-byte one-time pad for (address, counter) into
// the scratch pad buffer. The IV of AES block i is (address, counter,
// i): spatial uniqueness via the address, temporal uniqueness via the
// counter.
func (e *Engine) padInto(s *scratch, addr, counter uint64) {
	binary.LittleEndian.PutUint64(s.iv[0:8], addr)
	for i := 0; i < BlockBytes/aes.BlockSize; i++ {
		binary.LittleEndian.PutUint64(s.iv[8:16], counter<<2|uint64(i))
		e.aead.Encrypt(s.pad[i*aes.BlockSize:(i+1)*aes.BlockSize], s.iv[:])
	}
}

// EncryptTo XORs the 64-byte src with the OTP for (addr, counter),
// writing the result into the caller-provided dst. dst and src may
// alias (in-place operation) and must both be 64 bytes. Counter-mode
// decryption is the same operation, so DecryptTo is an alias.
func (e *Engine) EncryptTo(dst, src []byte, addr, counter uint64) {
	if len(dst) != BlockBytes || len(src) != BlockBytes {
		panic("cryptoeng: EncryptTo needs 64-byte blocks")
	}
	s := e.get()
	e.padInto(s, addr, counter)
	for i := 0; i < BlockBytes; i++ {
		dst[i] = src[i] ^ s.pad[i]
	}
	e.put(s)
}

// DecryptTo is counter-mode decryption into a caller-provided buffer:
// identical to EncryptTo.
func (e *Engine) DecryptTo(dst, src []byte, addr, counter uint64) {
	e.EncryptTo(dst, src, addr, counter)
}

// Encrypt XORs a 64-byte plaintext with the OTP for (addr, counter),
// returning the ciphertext in a freshly allocated slice. Hot paths
// should prefer EncryptTo / XorInPlace, which do not allocate.
func (e *Engine) Encrypt(addr, counter uint64, plaintext []byte) []byte {
	if len(plaintext) != BlockBytes {
		panic("cryptoeng: Encrypt needs a 64-byte block")
	}
	out := make([]byte, BlockBytes)
	e.EncryptTo(out, plaintext, addr, counter)
	return out
}

// Decrypt is counter-mode decryption: identical to Encrypt.
func (e *Engine) Decrypt(addr, counter uint64, ciphertext []byte) []byte {
	return e.Encrypt(addr, counter, ciphertext)
}

// XorInPlace applies the OTP for (addr, counter) to buf in place,
// avoiding the allocation of Encrypt. buf must be 64 bytes.
func (e *Engine) XorInPlace(addr, counter uint64, buf []byte) {
	e.EncryptTo(buf, buf, addr, counter)
}

// DataMAC computes the 64-bit Bonsai data MAC over (addr, counter, data).
// Together with a Merkle tree over the counters this yields Bonsai
// Merkle Tree protection (Rogers et al., MICRO 2007).
func (e *Engine) DataMAC(addr, counter uint64, data []byte) uint64 {
	if len(data) != BlockBytes {
		panic("cryptoeng: DataMAC needs a 64-byte block")
	}
	h := hashBlock(e.macSeed, data)
	return mix(mix(addr^mixK1, counter^e.macSeed)^h, mixK2^e.macSeed)
}

// TreeHash computes the 64-bit hash of a child node stored in its parent
// general-tree node. The node address is mixed in so identical contents
// at different tree positions hash differently.
func (e *Engine) TreeHash(nodeAddr uint64, node []byte) uint64 {
	if len(node) != BlockBytes {
		panic("cryptoeng: TreeHash needs a 64-byte node")
	}
	return mix(hashBlock(treeSeed, node)^mixK0, nodeAddr^treeSeed)
}

// STMAC computes the 56-bit MAC stored in an ASIT shadow-table entry
// (Figure 9b): it covers the tracked node's address and its full
// (updated) counter values. Unlike the in-NVM node MAC it does not bind
// the parent counter — the shadow table's own integrity tree
// (SHADOW_TREE_ROOT) provides freshness, and covering the complete
// counters (MSBs included) is what lets recovery detect tampering with
// the stale in-memory copy the LSBs are spliced onto.
func (e *Engine) STMAC(nodeAddr uint64, counters []uint64) uint64 {
	h := mix(nodeAddr^mixK0, e.stSeed^mixK3)
	for _, c := range counters {
		h = mix(h^mixK1, c^e.stSeed)
	}
	return mix(h^mixK2, e.stSeed^mixK4) & (1<<SGXMACBits - 1)
}

// ContentHash computes the 64-bit hash of a 64-byte node used by
// general (non-parallelizable) Merkle trees. It is content-only —
// position binding comes from the tree structure itself (a child's hash
// is stored at its slot in the parent), which keeps all same-content
// nodes identical and makes the zero-initialized tree computable in
// O(depth) instead of O(nodes).
func (e *Engine) ContentHash(node []byte) uint64 {
	if len(node) != BlockBytes {
		panic("cryptoeng: ContentHash needs a 64-byte node")
	}
	return hashBlock(contentSeed, node)
}

// SGXMAC computes the 56-bit MAC embedded in an SGX-style block: it
// covers the block's own counters (nonces), the counter in the parent
// block that versions this node, and the node address. The result fits
// in the low 56 bits of the returned value.
func (e *Engine) SGXMAC(nodeAddr uint64, counters []uint64, parentCounter uint64) uint64 {
	h := mix(nodeAddr^mixK0, e.macSeed^mixK3)
	for _, c := range counters {
		h = mix(h^mixK1, c^e.macSeed)
	}
	return mix(h^mixK2, parentCounter^e.macSeed) & (1<<SGXMACBits - 1)
}
