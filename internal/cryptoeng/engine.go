// Package cryptoeng implements the cryptographic engine of a secure
// memory controller: counter-mode (OTP) encryption of 64-byte memory
// blocks, the Bonsai data MAC, the 64-bit hash used by general Merkle
// trees, and the 56-bit MAC used by SGX-style parallelizable trees.
//
// The constructions mirror the ones assumed by the paper (and by secure
// processors generally):
//
//   - Encryption is counter mode: a one-time pad is derived from an IV
//     built from the block address and its (spatially and temporally
//     unique) encryption counter, then XORed with the plaintext. Pad
//     generation can overlap the data fetch, which is why secure
//     processors use it; here it matters because the *counter value*
//     fully determines decryption, the property Osiris recovery exploits.
//   - The Bonsai data MAC is computed over (ciphertext address, counter,
//     data) and protects data integrity while the Merkle tree only covers
//     counters.
//   - Tree hashes are truncated so that eight of them pack into one
//     64-byte node (8-ary trees), exactly as in the paper's Figure 2.
//
// All primitives come from the Go standard library (AES, SHA-256, HMAC).
//
// # Allocation-free hot path
//
// Every simulated memory request calls into this package several times
// (pad + MAC on the data, one tree hash per Merkle level), so the block
// path must not allocate. Two things used to allocate:
//
//   - hmac.New per MAC re-folds the key into fresh inner/outer SHA-256
//     states (7 allocs/op). The engine now folds the key once and keeps
//     reusable keyed HMAC states in a sync.Pool; Reset restores the
//     pre-folded inner state without touching the key again.
//   - Stack scratch (pad, IV, Sum destination) escaped to the heap
//     because it is sliced into interface method calls. The scratch now
//     lives in the same pooled object.
//
// The pool also keeps the Engine safe for concurrent use: parallel
// evaluation cells (internal/parallel) may share one Engine, and each
// in-flight operation checks out its own scratch state.
// BenchmarkPad/BenchmarkDataMAC/BenchmarkTreeHash prove 0 allocs/op.
package cryptoeng

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
)

// BlockBytes is the memory block (cache line) size.
const BlockBytes = 64

// TreeHashBytes is the size of one general-tree hash entry; eight such
// entries form one 64-byte Merkle tree node.
const TreeHashBytes = 8

// SGXMACBits is the width of the MAC embedded in SGX-style counter and
// tree blocks (Figure 3 of the paper; 56-bit as in Intel's MEE).
const SGXMACBits = 56

// scratch is the per-operation working state. One scratch is checked
// out of the Engine's pool for the duration of a primitive call, so the
// hot path performs no heap allocation and concurrent callers never
// share buffers.
type scratch struct {
	mac hash.Hash           // HMAC-SHA256 with the MAC key pre-folded
	h   hash.Hash           // plain SHA-256 for tree hashes
	sum [sha256.Size]byte   // Sum destination (appended into, never grows)
	pad [BlockBytes]byte    // OTP scratch
	iv  [aes.BlockSize]byte // counter-mode IV scratch

	// msg assembles each MAC/hash input (header ‖ block) so exactly one
	// Write crosses the hash.Hash interface per operation. Caller
	// buffers handed to an interface method would escape to the heap;
	// staging them here keeps callers allocation-free (stack arrays
	// stay on the stack) and halves the interface-call overhead.
	msg [96]byte
}

// Engine holds the processor-resident secrets and implements every
// cryptographic operation the memory controller needs. An Engine is
// safe for concurrent use after construction.
type Engine struct {
	aead   cipher.Block // AES-128 block cipher for OTP generation
	macKey [32]byte     // HMAC key for data MACs and SGX MACs
	pool   sync.Pool    // *scratch
}

// NewEngine derives an engine from a 16-byte processor key and a 32-byte
// MAC key. In a real processor these are fused or generated at boot and
// never leave the chip.
func NewEngine(aesKey [16]byte, macKey [32]byte) *Engine {
	blk, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the
		// fixed-size parameter rules out.
		panic("cryptoeng: " + err.Error())
	}
	e := &Engine{aead: blk, macKey: macKey}
	e.pool.New = func() any { return e.newScratch() }
	// Pre-warm one scratch so even the first operation after boot runs
	// allocation-free.
	e.pool.Put(e.newScratch())
	return e
}

// newScratch folds the MAC key into a fresh HMAC state and primes its
// internal marshaled ipad/opad cache (one Sum+Reset cycle) so that
// subsequent Reset/Sum calls on the pooled object never allocate.
func (e *Engine) newScratch() *scratch {
	s := &scratch{mac: hmac.New(sha256.New, e.macKey[:]), h: sha256.New()}
	s.mac.Sum(s.sum[:0])
	s.mac.Reset()
	return s
}

func (e *Engine) get() *scratch  { return e.pool.Get().(*scratch) }
func (e *Engine) put(s *scratch) { e.pool.Put(s) }

// NewTestEngine returns an engine with fixed keys, for tests and
// examples where key management is irrelevant.
func NewTestEngine() *Engine {
	var aesKey [16]byte
	var macKey [32]byte
	for i := range aesKey {
		aesKey[i] = byte(i + 1)
	}
	for i := range macKey {
		macKey[i] = byte(0xA0 + i)
	}
	return NewEngine(aesKey, macKey)
}

// padInto computes the 64-byte one-time pad for (address, counter) into
// the scratch pad buffer. The IV of AES block i is (address, counter,
// i): spatial uniqueness via the address, temporal uniqueness via the
// counter.
func (e *Engine) padInto(s *scratch, addr, counter uint64) {
	binary.LittleEndian.PutUint64(s.iv[0:8], addr)
	for i := 0; i < BlockBytes/aes.BlockSize; i++ {
		binary.LittleEndian.PutUint64(s.iv[8:16], counter<<2|uint64(i))
		e.aead.Encrypt(s.pad[i*aes.BlockSize:(i+1)*aes.BlockSize], s.iv[:])
	}
}

// EncryptTo XORs the 64-byte src with the OTP for (addr, counter),
// writing the result into the caller-provided dst. dst and src may
// alias (in-place operation) and must both be 64 bytes. Counter-mode
// decryption is the same operation, so DecryptTo is an alias.
func (e *Engine) EncryptTo(dst, src []byte, addr, counter uint64) {
	if len(dst) != BlockBytes || len(src) != BlockBytes {
		panic("cryptoeng: EncryptTo needs 64-byte blocks")
	}
	s := e.get()
	e.padInto(s, addr, counter)
	for i := 0; i < BlockBytes; i++ {
		dst[i] = src[i] ^ s.pad[i]
	}
	e.put(s)
}

// DecryptTo is counter-mode decryption into a caller-provided buffer:
// identical to EncryptTo.
func (e *Engine) DecryptTo(dst, src []byte, addr, counter uint64) {
	e.EncryptTo(dst, src, addr, counter)
}

// Encrypt XORs a 64-byte plaintext with the OTP for (addr, counter),
// returning the ciphertext in a freshly allocated slice. Hot paths
// should prefer EncryptTo / XorInPlace, which do not allocate.
func (e *Engine) Encrypt(addr, counter uint64, plaintext []byte) []byte {
	if len(plaintext) != BlockBytes {
		panic("cryptoeng: Encrypt needs a 64-byte block")
	}
	out := make([]byte, BlockBytes)
	e.EncryptTo(out, plaintext, addr, counter)
	return out
}

// Decrypt is counter-mode decryption: identical to Encrypt.
func (e *Engine) Decrypt(addr, counter uint64, ciphertext []byte) []byte {
	return e.Encrypt(addr, counter, ciphertext)
}

// XorInPlace applies the OTP for (addr, counter) to buf in place,
// avoiding the allocation of Encrypt. buf must be 64 bytes.
func (e *Engine) XorInPlace(addr, counter uint64, buf []byte) {
	e.EncryptTo(buf, buf, addr, counter)
}

// DataMAC computes the 64-bit Bonsai data MAC over (addr, counter, data).
// Together with a Merkle tree over the counters this yields Bonsai
// Merkle Tree protection (Rogers et al., MICRO 2007).
func (e *Engine) DataMAC(addr, counter uint64, data []byte) uint64 {
	if len(data) != BlockBytes {
		panic("cryptoeng: DataMAC needs a 64-byte block")
	}
	s := e.get()
	s.mac.Reset()
	binary.LittleEndian.PutUint64(s.msg[0:8], addr)
	binary.LittleEndian.PutUint64(s.msg[8:16], counter)
	copy(s.msg[16:16+BlockBytes], data)
	s.mac.Write(s.msg[:16+BlockBytes])
	v := binary.LittleEndian.Uint64(s.mac.Sum(s.sum[:0])[:8])
	e.put(s)
	return v
}

// TreeHash computes the 64-bit hash of a child node stored in its parent
// general-tree node. The node address is mixed in so identical contents
// at different tree positions hash differently.
func (e *Engine) TreeHash(nodeAddr uint64, node []byte) uint64 {
	if len(node) != BlockBytes {
		panic("cryptoeng: TreeHash needs a 64-byte node")
	}
	s := e.get()
	s.h.Reset()
	binary.LittleEndian.PutUint64(s.msg[0:8], nodeAddr)
	copy(s.msg[8:8+BlockBytes], node)
	s.h.Write(s.msg[:8+BlockBytes])
	v := binary.LittleEndian.Uint64(s.h.Sum(s.sum[:0])[:8])
	e.put(s)
	return v
}

// STMAC computes the 56-bit MAC stored in an ASIT shadow-table entry
// (Figure 9b): it covers the tracked node's address and its full
// (updated) counter values. Unlike the in-NVM node MAC it does not bind
// the parent counter — the shadow table's own integrity tree
// (SHADOW_TREE_ROOT) provides freshness, and covering the complete
// counters (MSBs included) is what lets recovery detect tampering with
// the stale in-memory copy the LSBs are spliced onto.
func (e *Engine) STMAC(nodeAddr uint64, counters []uint64) uint64 {
	s := e.get()
	s.mac.Reset()
	off := copy(s.msg[:], stDomain)
	binary.LittleEndian.PutUint64(s.msg[off:off+8], nodeAddr)
	off += 8
	off = s.appendCounters(off, counters)
	s.mac.Write(s.msg[:off])
	v := binary.LittleEndian.Uint64(s.mac.Sum(s.sum[:0])[:8]) & (1<<SGXMACBits - 1)
	e.put(s)
	return v
}

// appendCounters stages counter values into the message buffer starting
// at off, flushing to the HMAC state whenever the buffer fills (the
// common 8-counter case fits in a single Write). Returns the unflushed
// length.
func (s *scratch) appendCounters(off int, counters []uint64) int {
	for _, c := range counters {
		if off+8 > len(s.msg) {
			s.mac.Write(s.msg[:off])
			off = 0
		}
		binary.LittleEndian.PutUint64(s.msg[off:off+8], c)
		off += 8
	}
	return off
}

// stDomain is the STMAC domain-separation prefix, hoisted to a package
// variable so the hot path does not rebuild (and re-allocate) the
// string-to-byte conversion per call.
var stDomain = []byte("anubis-st-entry")

// ContentHash computes the 64-bit hash of a 64-byte node used by
// general (non-parallelizable) Merkle trees. It is content-only —
// position binding comes from the tree structure itself (a child's hash
// is stored at its slot in the parent), which keeps all same-content
// nodes identical and makes the zero-initialized tree computable in
// O(depth) instead of O(nodes).
func (e *Engine) ContentHash(node []byte) uint64 {
	if len(node) != BlockBytes {
		panic("cryptoeng: ContentHash needs a 64-byte node")
	}
	h := sha256.Sum256(node)
	return binary.LittleEndian.Uint64(h[:8])
}

// SGXMAC computes the 56-bit MAC embedded in an SGX-style block: it
// covers the block's own counters (nonces), the counter in the parent
// block that versions this node, and the node address. The result fits
// in the low 56 bits of the returned value.
func (e *Engine) SGXMAC(nodeAddr uint64, counters []uint64, parentCounter uint64) uint64 {
	s := e.get()
	s.mac.Reset()
	binary.LittleEndian.PutUint64(s.msg[0:8], nodeAddr)
	off := s.appendCounters(8, counters)
	if off+8 > len(s.msg) {
		s.mac.Write(s.msg[:off])
		off = 0
	}
	binary.LittleEndian.PutUint64(s.msg[off:off+8], parentCounter)
	s.mac.Write(s.msg[:off+8])
	v := binary.LittleEndian.Uint64(s.mac.Sum(s.sum[:0])[:8]) & (1<<SGXMACBits - 1)
	e.put(s)
	return v
}
