// Package wear implements Start-Gap wear leveling (Qureshi et al.,
// ISCA 2009), the standard PCM technique for spreading writes across
// physical lines so that a hot logical block cannot burn out one cell.
//
// N logical blocks map onto N+1 physical lines; one line — the gap —
// is always unused. Every ψ writes the gap moves down by one line (the
// line above it is copied into it), and when it reaches line 0 it wraps
// to line N while the start offset advances, slowly rotating the whole
// logical-to-physical mapping. Over N·ψ writes every block has visited
// every line.
//
// The controller integrates this under the data region: the mapping
// state (start, gap, write countdown) lives in an on-chip persistent
// register and each gap move is made durable before the register
// advances, so the mapping is always consistent across a crash.
package wear

import (
	"encoding/binary"
	"fmt"
)

// StartGap holds the wear-leveling state for n logical blocks over n+1
// physical lines.
type StartGap struct {
	n      uint64 // logical blocks
	start  uint64 // rotation offset, in [0, n)
	gap    uint64 // unused physical line, in [0, n]
	period uint64 // writes between gap movements (ψ)
	count  uint64 // writes since the last movement
}

// New creates a StartGap for n logical blocks with gap-movement period
// ψ. It panics for n == 0 or period == 0.
func New(n, period uint64) *StartGap {
	if n == 0 || period == 0 {
		panic("wear: need at least one block and a positive period")
	}
	return &StartGap{n: n, gap: n, period: period}
}

// N returns the number of logical blocks.
func (sg *StartGap) N() uint64 { return sg.n }

// PhysicalLines returns the number of physical lines (N+1).
func (sg *StartGap) PhysicalLines() uint64 { return sg.n + 1 }

// Start returns the current rotation offset.
func (sg *StartGap) Start() uint64 { return sg.start }

// Gap returns the current gap position.
func (sg *StartGap) Gap() uint64 { return sg.gap }

// Map translates a logical block index to its physical line.
func (sg *StartGap) Map(logical uint64) uint64 {
	if logical >= sg.n {
		panic(fmt.Sprintf("wear: logical block %d out of range (%d)", logical, sg.n))
	}
	f := logical + sg.start
	if f >= sg.n {
		f -= sg.n
	}
	if f >= sg.gap {
		return f + 1
	}
	return f
}

// Move describes one gap movement: the content of physical line Src
// must be copied to physical line Dst (made durable) before Commit is
// applied to the mapping state.
type Move struct {
	Src, Dst uint64
}

// RecordWrite counts one data write and reports whether the gap should
// move now. If so, the caller must perform the returned Move's copy
// durably and then call Commit.
func (sg *StartGap) RecordWrite() (Move, bool) {
	sg.count++
	if sg.count < sg.period {
		return Move{}, false
	}
	return sg.PendingMove(), true
}

// PendingMove returns the move the next Commit will apply.
func (sg *StartGap) PendingMove() Move {
	if sg.gap == 0 {
		// Wrap: the line at physical N moves to the old gap at 0, the
		// gap re-opens at N, and the rotation advances by one.
		return Move{Src: sg.n, Dst: 0}
	}
	return Move{Src: sg.gap - 1, Dst: sg.gap}
}

// Commit applies the pending gap movement to the mapping state. Call it
// only after the Move's copy has reached the persistence domain.
func (sg *StartGap) Commit() {
	if sg.gap == 0 {
		sg.gap = sg.n
		sg.start++
		if sg.start >= sg.n {
			sg.start = 0
		}
	} else {
		sg.gap--
	}
	sg.count = 0
}

// Clone returns an independent copy of the mapping state.
func (sg *StartGap) Clone() *StartGap {
	n := *sg
	return &n
}

// Pack serializes the state to 32 bytes for an on-chip register.
func (sg *StartGap) Pack() [32]byte {
	var b [32]byte
	binary.LittleEndian.PutUint64(b[0:8], sg.n)
	binary.LittleEndian.PutUint64(b[8:16], sg.start)
	binary.LittleEndian.PutUint64(b[16:24], sg.gap)
	binary.LittleEndian.PutUint64(b[24:32], sg.count)
	return b
}

// Unpack restores a StartGap from a packed register value. The period
// is configuration, not state, so it is supplied by the caller.
func Unpack(b [32]byte, period uint64) (*StartGap, error) {
	sg := &StartGap{
		n:      binary.LittleEndian.Uint64(b[0:8]),
		start:  binary.LittleEndian.Uint64(b[8:16]),
		gap:    binary.LittleEndian.Uint64(b[16:24]),
		count:  binary.LittleEndian.Uint64(b[24:32]),
		period: period,
	}
	if sg.n == 0 || period == 0 {
		return nil, fmt.Errorf("wear: invalid packed state")
	}
	if sg.start >= sg.n || sg.gap > sg.n {
		return nil, fmt.Errorf("wear: corrupt packed state (start=%d gap=%d n=%d)", sg.start, sg.gap, sg.n)
	}
	return sg, nil
}
