package wear

import (
	"testing"
	"testing/quick"
)

func TestMapBijective(t *testing.T) {
	sg := New(100, 5)
	for moves := 0; moves < 350; moves++ {
		seen := map[uint64]bool{}
		for l := uint64(0); l < sg.N(); l++ {
			p := sg.Map(l)
			if p >= sg.PhysicalLines() {
				t.Fatalf("move %d: physical %d out of range", moves, p)
			}
			if p == sg.Gap() {
				t.Fatalf("move %d: logical %d mapped onto the gap", moves, l)
			}
			if seen[p] {
				t.Fatalf("move %d: physical %d mapped twice", moves, p)
			}
			seen[p] = true
		}
		sg.Commit() // force a movement regardless of period
	}
}

// TestContentsPreservedAcrossMoves simulates the physical medium: after
// every gap movement (copy Src->Dst), each logical block must still map
// to a line holding its content.
func TestContentsPreservedAcrossMoves(t *testing.T) {
	sg := New(50, 1)
	phys := make([]uint64, sg.PhysicalLines())
	const empty = ^uint64(0)
	for i := range phys {
		phys[i] = empty
	}
	// Install initial contents: block l holds value l.
	for l := uint64(0); l < sg.N(); l++ {
		phys[sg.Map(l)] = l
	}
	for step := 0; step < 500; step++ {
		mv, due := sg.RecordWrite()
		if !due {
			continue
		}
		phys[mv.Dst] = phys[mv.Src] // durable copy
		sg.Commit()
		for l := uint64(0); l < sg.N(); l++ {
			if got := phys[sg.Map(l)]; got != l {
				t.Fatalf("step %d: logical %d reads %d", step, l, got)
			}
		}
	}
	// The mapping must actually have rotated.
	if sg.Start() == 0 && sg.Gap() == sg.N() {
		t.Fatal("no rotation after 500 writes with period 1")
	}
}

func TestPeriodGatesMovement(t *testing.T) {
	sg := New(10, 4)
	moves := 0
	for i := 0; i < 40; i++ {
		if _, due := sg.RecordWrite(); due {
			sg.Commit()
			moves++
		}
	}
	if moves != 10 {
		t.Fatalf("moves = %d, want 10 (40 writes / period 4)", moves)
	}
}

func TestWrapMove(t *testing.T) {
	sg := New(4, 1)
	// Drive the gap from 4 down to 0, then the wrap.
	for i := 0; i < 4; i++ {
		mv := sg.PendingMove()
		if mv.Dst != sg.Gap() || mv.Src != sg.Gap()-1 {
			t.Fatalf("move %d: %+v with gap %d", i, mv, sg.Gap())
		}
		sg.Commit()
	}
	if sg.Gap() != 0 {
		t.Fatalf("gap = %d, want 0", sg.Gap())
	}
	mv := sg.PendingMove()
	if mv.Src != sg.N() || mv.Dst != 0 {
		t.Fatalf("wrap move = %+v, want {%d 0}", mv, sg.N())
	}
	sg.Commit()
	if sg.Gap() != sg.N() || sg.Start() != 1 {
		t.Fatalf("after wrap: gap=%d start=%d", sg.Gap(), sg.Start())
	}
}

func TestStartWraps(t *testing.T) {
	sg := New(3, 1)
	// (N+1) moves per full rotation; N rotations wrap start back to 0.
	for i := uint64(0); i < 3*4; i++ {
		sg.Commit()
	}
	if sg.Start() != 0 {
		t.Fatalf("start = %d after full cycle, want 0", sg.Start())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(steps uint8) bool {
		sg := New(37, 3)
		for i := 0; i < int(steps); i++ {
			if _, due := sg.RecordWrite(); due {
				sg.Commit()
			}
		}
		got, err := Unpack(sg.Pack(), 3)
		if err != nil {
			return false
		}
		for l := uint64(0); l < 37; l++ {
			if got.Map(l) != sg.Map(l) {
				return false
			}
		}
		return got.Gap() == sg.Gap() && got.Start() == sg.Start()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackRejectsCorruptState(t *testing.T) {
	var zero [32]byte
	if _, err := Unpack(zero, 5); err == nil {
		t.Fatal("zero state accepted")
	}
	sg := New(10, 5)
	b := sg.Pack()
	b[8] = 200 // start >= n
	if _, err := Unpack(b, 5); err == nil {
		t.Fatal("corrupt start accepted")
	}
	b = sg.Pack()
	if _, err := Unpack(b, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range [][2]uint64{{0, 5}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestMapPanicsOutOfRange(t *testing.T) {
	sg := New(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sg.Map(4)
}

// TestWearSpreading: with leveling, hammering one logical block touches
// many physical lines over time.
func TestWearSpreading(t *testing.T) {
	sg := New(16, 1)
	touched := map[uint64]bool{}
	for i := 0; i < 16*17*2; i++ {
		touched[sg.Map(5)] = true
		if mv, due := sg.RecordWrite(); due {
			_ = mv
			sg.Commit()
		}
	}
	if len(touched) != int(sg.PhysicalLines()) {
		t.Fatalf("hot block touched %d/%d lines over two full rotations",
			len(touched), sg.PhysicalLines())
	}
}

func BenchmarkMap(b *testing.B) {
	sg := New(1<<20, 100)
	for i := 0; i < b.N; i++ {
		sg.Map(uint64(i) & (1<<20 - 1))
	}
}
