// Package merkle provides the geometry and node formats of the two
// integrity tree families in the paper:
//
//   - the general, non-parallelizable hash tree (Figure 2): 8-ary,
//     each 64-byte node holds eight 8-byte hashes of its children, the
//     leaves are the encryption counter blocks, and the root hash lives
//     on chip;
//   - the SGX-style parallelizable tree (Figure 3): 8-ary, each node is
//     a counter block of eight 56-bit nonces plus a 56-bit MAC computed
//     over the node's nonces and one nonce of its parent; the top node's
//     nonces live on chip.
//
// Both trees share the same shape, described by Geometry. The walk,
// verify, and update algorithms live in the memory controller
// (internal/memctrl) because they interleave with caching; this package
// supplies the pure structure plus a full-build helper used for memory
// initialization and for the Osiris whole-tree reconstruction baseline.
package merkle

import (
	"encoding/binary"
	"fmt"
)

// Arity is the tree fan-out: eight 64-bit hashes (or eight 56-bit
// nonces) per 64-byte node.
const Arity = 8

// BlockBytes is the node size.
const BlockBytes = 64

// Geometry describes an 8-ary tree over a given number of leaf blocks.
// Level 0 is the first level of tree nodes (the parents of the leaves);
// the highest level has exactly one node, the root node.
type Geometry struct {
	leaves  uint64
	counts  []uint64 // counts[l] = nodes at level l
	offsets []uint64 // flat node index of the first node of level l
	total   uint64
}

// NewGeometry builds the geometry for the given number of leaf blocks
// (counter blocks). It panics if leaves is zero.
func NewGeometry(leaves uint64) Geometry {
	if leaves == 0 {
		panic("merkle: geometry needs at least one leaf")
	}
	g := Geometry{leaves: leaves}
	n := (leaves + Arity - 1) / Arity
	for {
		g.offsets = append(g.offsets, g.total)
		g.counts = append(g.counts, n)
		g.total += n
		if n == 1 {
			break
		}
		n = (n + Arity - 1) / Arity
	}
	return g
}

// Leaves returns the number of leaf blocks the tree covers.
func (g *Geometry) Leaves() uint64 { return g.leaves }

// Levels returns the number of tree-node levels (excluding the leaves).
func (g *Geometry) Levels() int { return len(g.counts) }

// NodesAt returns the number of nodes at a level.
func (g *Geometry) NodesAt(level int) uint64 { return g.counts[level] }

// TotalNodes returns the total node count across all levels.
func (g *Geometry) TotalNodes() uint64 { return g.total }

// RootLevel returns the level of the single root node.
func (g *Geometry) RootLevel() int { return len(g.counts) - 1 }

// Flat maps (level, index) to the flat node index used as the tree
// region block index in NVM.
func (g *Geometry) Flat(level int, i uint64) uint64 {
	if level < 0 || level >= len(g.counts) || i >= g.counts[level] {
		panic(fmt.Sprintf("merkle: node (%d,%d) out of range", level, i))
	}
	return g.offsets[level] + i
}

// Unflat maps a flat node index back to (level, index).
func (g *Geometry) Unflat(flat uint64) (level int, i uint64) {
	if flat >= g.total {
		panic(fmt.Sprintf("merkle: flat index %d out of range", flat))
	}
	for l := len(g.offsets) - 1; l >= 0; l-- {
		if flat >= g.offsets[l] {
			return l, flat - g.offsets[l]
		}
	}
	panic("unreachable")
}

// LeafParent returns the level-0 node covering leaf block `leaf` and the
// slot (0..7) of the leaf within that node.
func (g *Geometry) LeafParent(leaf uint64) (node uint64, slot int) {
	if leaf >= g.leaves {
		panic(fmt.Sprintf("merkle: leaf %d out of range", leaf))
	}
	return leaf / Arity, int(leaf % Arity)
}

// Parent returns the node above (level, i) and the slot of (level, i)
// within it. It panics when called on the root.
func (g *Geometry) Parent(level int, i uint64) (plevel int, pi uint64, slot int) {
	if level >= g.RootLevel() {
		panic("merkle: root has no parent")
	}
	return level + 1, i / Arity, int(i % Arity)
}

// ChildrenOf returns the range of child indices of node (level, i): the
// children live at level-1 (or are leaves when level == 0) with indices
// [first, first+n).
func (g *Geometry) ChildrenOf(level int, i uint64) (first uint64, n int) {
	first = i * Arity
	var below uint64
	if level == 0 {
		below = g.leaves
	} else {
		below = g.counts[level-1]
	}
	if first >= below {
		panic(fmt.Sprintf("merkle: node (%d,%d) has no children", level, i))
	}
	n = Arity
	if first+uint64(n) > below {
		n = int(below - first)
	}
	return first, n
}

// NodeAddr returns the address label mixed into hashes/MACs for a tree
// node, domain-separated from counter-block addresses (level tag 0).
func NodeAddr(level int, i uint64) uint64 {
	return uint64(level+1)<<48 | i
}

// --- general tree node codec -------------------------------------------------

// GNode is a general-tree node: eight 64-bit child hashes.
type GNode [BlockBytes]byte

// Hash returns the child hash in a slot.
func (n *GNode) Hash(slot int) uint64 {
	return binary.LittleEndian.Uint64(n[slot*8:])
}

// SetHash stores a child hash in a slot.
func (n *GNode) SetHash(slot int, h uint64) {
	binary.LittleEndian.PutUint64(n[slot*8:], h)
}

// Hasher abstracts the engine operation the build helper needs.
type Hasher interface {
	ContentHash(node []byte) uint64
}

// BuildGeneral constructs the complete general tree bottom-up.
//
// readLeaf must return the 64-byte content of leaf block i; store is
// called once per tree node with its flat index and content. The
// returned value is the on-chip root hash (the hash of the root node).
// ops receives one count per block hashed, letting callers apply the
// paper's recovery-time accounting.
func BuildGeneral(g Geometry, h Hasher, readLeaf func(i uint64) [BlockBytes]byte, store func(flat uint64, node GNode), ops *uint64) uint64 {
	// Build level by level, keeping the just-built level in memory to
	// hash upward without re-reading stored nodes.
	var prev []GNode
	for level := 0; level < g.Levels(); level++ {
		cur := make([]GNode, g.NodesAt(level))
		for i := uint64(0); i < g.NodesAt(level); i++ {
			first, n := g.ChildrenOf(level, i)
			var node GNode
			for s := 0; s < n; s++ {
				if ops != nil {
					*ops++
				}
				var hv uint64
				if level == 0 {
					b := readLeaf(first + uint64(s))
					hv = h.ContentHash(b[:])
				} else {
					child := prev[first+uint64(s)]
					hv = h.ContentHash(child[:])
				}
				node.SetHash(s, hv)
			}
			cur[i] = node
			store(g.Flat(level, i), node)
		}
		prev = cur
	}
	rootNode := prev[0]
	if ops != nil {
		*ops++
	}
	return h.ContentHash(rootNode[:])
}
