package merkle

import (
	"testing"
	"testing/quick"

	"anubis/internal/cryptoeng"
)

func TestGeometrySmall(t *testing.T) {
	g := NewGeometry(64) // 64 leaves -> 8 nodes -> 1 root
	if g.Levels() != 2 {
		t.Fatalf("levels = %d, want 2", g.Levels())
	}
	if g.NodesAt(0) != 8 || g.NodesAt(1) != 1 {
		t.Fatalf("level sizes = %d,%d", g.NodesAt(0), g.NodesAt(1))
	}
	if g.TotalNodes() != 9 {
		t.Fatalf("total = %d, want 9", g.TotalNodes())
	}
	if g.RootLevel() != 1 {
		t.Fatalf("root level = %d", g.RootLevel())
	}
}

func TestGeometrySingleLevel(t *testing.T) {
	g := NewGeometry(5) // fewer than 8 leaves: one root node
	if g.Levels() != 1 || g.NodesAt(0) != 1 {
		t.Fatalf("levels=%d nodes=%d", g.Levels(), g.NodesAt(0))
	}
	first, n := g.ChildrenOf(0, 0)
	if first != 0 || n != 5 {
		t.Fatalf("children = (%d,%d), want (0,5)", first, n)
	}
}

func TestGeometryNonPowerOfArity(t *testing.T) {
	g := NewGeometry(100) // 100 -> 13 -> 2 -> 1
	want := []uint64{13, 2, 1}
	if g.Levels() != len(want) {
		t.Fatalf("levels = %d, want %d", g.Levels(), len(want))
	}
	for l, w := range want {
		if g.NodesAt(l) != w {
			t.Fatalf("level %d = %d nodes, want %d", l, g.NodesAt(l), w)
		}
	}
	// Last node of level 0 has 100-96=4 children.
	first, n := g.ChildrenOf(0, 12)
	if first != 96 || n != 4 {
		t.Fatalf("ragged children = (%d,%d), want (96,4)", first, n)
	}
}

func TestFlatUnflatRoundTrip(t *testing.T) {
	g := NewGeometry(1000)
	for l := 0; l < g.Levels(); l++ {
		for _, i := range []uint64{0, g.NodesAt(l) - 1, g.NodesAt(l) / 2} {
			flat := g.Flat(l, i)
			gl, gi := g.Unflat(flat)
			if gl != l || gi != i {
				t.Fatalf("Unflat(Flat(%d,%d)) = (%d,%d)", l, i, gl, gi)
			}
		}
	}
}

func TestFlatIndicesAreDense(t *testing.T) {
	g := NewGeometry(77)
	seen := map[uint64]bool{}
	for l := 0; l < g.Levels(); l++ {
		for i := uint64(0); i < g.NodesAt(l); i++ {
			f := g.Flat(l, i)
			if seen[f] {
				t.Fatalf("flat index %d reused", f)
			}
			seen[f] = true
		}
	}
	if uint64(len(seen)) != g.TotalNodes() {
		t.Fatalf("dense check: %d vs %d", len(seen), g.TotalNodes())
	}
	for f := uint64(0); f < g.TotalNodes(); f++ {
		if !seen[f] {
			t.Fatalf("flat index %d unused", f)
		}
	}
}

func TestParentChildConsistency(t *testing.T) {
	g := NewGeometry(512)
	for l := 0; l < g.RootLevel(); l++ {
		for i := uint64(0); i < g.NodesAt(l); i++ {
			pl, pi, slot := g.Parent(l, i)
			first, n := g.ChildrenOf(pl, pi)
			if first+uint64(slot) != i || slot >= n {
				t.Fatalf("parent/child mismatch at (%d,%d)", l, i)
			}
		}
	}
}

func TestLeafParent(t *testing.T) {
	g := NewGeometry(100)
	for leaf := uint64(0); leaf < 100; leaf++ {
		node, slot := g.LeafParent(leaf)
		if node != leaf/8 || slot != int(leaf%8) {
			t.Fatalf("LeafParent(%d) = (%d,%d)", leaf, node, slot)
		}
	}
}

func TestRootHasNoParent(t *testing.T) {
	g := NewGeometry(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Parent(g.RootLevel(), 0)
}

func TestZeroLeavesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGeometry(0)
}

func TestGeometryDepthGrowsLogarithmically(t *testing.T) {
	// 16GB memory: 4M counter blocks -> ceil(log8(4M)) = 8 levels.
	g := NewGeometry(4 * 1024 * 1024)
	if g.Levels() != 8 {
		t.Fatalf("16GB tree levels = %d, want 8", g.Levels())
	}
}

func TestQuickGeometryInvariants(t *testing.T) {
	f := func(seed uint32) bool {
		leaves := uint64(seed%100000 + 1)
		g := NewGeometry(leaves)
		// Top level has one node; each level is ceil(prev/8).
		if g.NodesAt(g.RootLevel()) != 1 {
			return false
		}
		prev := leaves
		for l := 0; l < g.Levels(); l++ {
			want := (prev + Arity - 1) / Arity
			if g.NodesAt(l) != want {
				return false
			}
			prev = want
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGNodeCodec(t *testing.T) {
	var n GNode
	for s := 0; s < 8; s++ {
		n.SetHash(s, uint64(s)*0x0101010101010101)
	}
	for s := 0; s < 8; s++ {
		if n.Hash(s) != uint64(s)*0x0101010101010101 {
			t.Fatalf("slot %d round trip failed", s)
		}
	}
}

func TestNodeAddrDomainSeparation(t *testing.T) {
	// Tree node addresses must never collide with counter block indices
	// (level tag 0) or with each other across levels.
	if NodeAddr(0, 5) == 5 {
		t.Fatal("level-0 node address collides with counter address")
	}
	if NodeAddr(0, 5) == NodeAddr(1, 5) {
		t.Fatal("addresses collide across levels")
	}
}

func TestBuildGeneralDeterministicRoot(t *testing.T) {
	eng := cryptoeng.NewTestEngine()
	g := NewGeometry(64)
	leaf := func(i uint64) (b [BlockBytes]byte) {
		b[0] = byte(i)
		return b
	}
	nodes1 := map[uint64]GNode{}
	root1 := BuildGeneral(g, eng, leaf, func(f uint64, n GNode) { nodes1[f] = n }, nil)
	nodes2 := map[uint64]GNode{}
	root2 := BuildGeneral(g, eng, leaf, func(f uint64, n GNode) { nodes2[f] = n }, nil)
	if root1 != root2 {
		t.Fatal("BuildGeneral not deterministic")
	}
	if uint64(len(nodes1)) != g.TotalNodes() {
		t.Fatalf("stored %d nodes, want %d", len(nodes1), g.TotalNodes())
	}
}

func TestBuildGeneralRootBindsLeaves(t *testing.T) {
	eng := cryptoeng.NewTestEngine()
	g := NewGeometry(64)
	leafA := func(i uint64) (b [BlockBytes]byte) { b[0] = byte(i); return b }
	leafB := func(i uint64) (b [BlockBytes]byte) {
		b[0] = byte(i)
		if i == 37 {
			b[1] = 1 // single-bit change in one leaf
		}
		return b
	}
	rootA := BuildGeneral(g, eng, leafA, func(uint64, GNode) {}, nil)
	rootB := BuildGeneral(g, eng, leafB, func(uint64, GNode) {}, nil)
	if rootA == rootB {
		t.Fatal("root does not bind leaf contents")
	}
}

func TestBuildGeneralOpCount(t *testing.T) {
	eng := cryptoeng.NewTestEngine()
	g := NewGeometry(64)
	var ops uint64
	BuildGeneral(g, eng, func(uint64) [BlockBytes]byte { return [BlockBytes]byte{} },
		func(uint64, GNode) {}, &ops)
	// 64 leaf hashes + 8 level-0 node hashes + 1 root-node hash = 73.
	if ops != 73 {
		t.Fatalf("ops = %d, want 73", ops)
	}
}

func BenchmarkBuildGeneral4K(b *testing.B) {
	eng := cryptoeng.NewTestEngine()
	g := NewGeometry(4096)
	leaf := func(i uint64) (blk [BlockBytes]byte) { blk[0] = byte(i); return blk }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGeneral(g, eng, leaf, func(uint64, GNode) {}, nil)
	}
}
