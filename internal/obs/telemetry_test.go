package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, string(body), res.Header.Get("Content-Type")
}

func TestTelemetryMetricsEndpoint(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) {
		r.Counter("anubis_cells_completed_total", 3)
		var l Ledger
		l.Add(CompCrypto, 42)
		r.MergeLedger("anubis_stall_ns_total", &l)
	})
	code, body, ct := get(t, tel, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "anubis_cells_completed_total 3") {
		t.Fatalf("counter missing:\n%s", body)
	}
	if !strings.Contains(body, `anubis_stall_ns_total{component="crypto"} 42`) {
		t.Fatalf("stall counter missing:\n%s", body)
	}
	// Process gauges are stamped at render time.
	for _, g := range []string{"anubis_heap_alloc_bytes", "anubis_goroutines", "anubis_uptime_seconds"} {
		if !strings.Contains(body, g) {
			t.Fatalf("process gauge %s missing:\n%s", g, body)
		}
	}
	// Serving must not mutate the published registry.
	tel.Update(func(r *Registry) {
		if v := r.GaugeValue("anubis_goroutines"); v != 0 {
			t.Fatalf("process gauge leaked into published registry: %v", v)
		}
	})
}

func TestTelemetryVarsEndpoint(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) {
		r.Counter("trials_total", 9)
		r.Observe("trial_wall_ns", 128)
	})
	for _, path := range []string{"/vars", "/debug/vars"} {
		code, body, ct := get(t, tel, path)
		if code != 200 {
			t.Fatalf("%s status %d", path, code)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s content type %q", path, ct)
		}
		var m map[string]float64
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("%s invalid JSON: %v\n%s", path, err, body)
		}
		if m["trials_total"] != 9 {
			t.Fatalf("trials_total = %v", m["trials_total"])
		}
		if m["trial_wall_ns_count"] != 1 {
			t.Fatalf("hist count = %v", m["trial_wall_ns_count"])
		}
		if _, ok := m["uptime_seconds"]; !ok {
			t.Fatalf("%s missing uptime_seconds: %v", path, m)
		}
	}
}

func TestTelemetryIndexAnd404(t *testing.T) {
	tel := NewTelemetry()
	if code, body, _ := get(t, tel, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _, _ := get(t, tel, "/nope"); code != 404 {
		t.Fatalf("want 404, got %d", code)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) { r.Counter("x_total", 1) })
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("live serve: %d\n%s", resp.StatusCode, body)
	}
}

// TestServeCloseReleasesPort is the regression for the original leak:
// Serve handed back only the bound address, so the listener and its
// goroutine lived until process exit and the port could never be
// re-bound. Closing the handle must release the port immediately.
func TestServeCloseReleasesPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewTelemetry())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The exact address must be re-bindable now that the server is down.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %s not released after Close: %v", addr, err)
	}
	ln.Close()
	// And scrapes must fail — the old server is really gone.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Close")
	}
}
