package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, string(body), res.Header.Get("Content-Type")
}

func TestTelemetryMetricsEndpoint(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) {
		r.Counter("anubis_cells_completed_total", 3)
		var l Ledger
		l.Add(CompCrypto, 42)
		r.MergeLedger("anubis_stall_ns_total", &l)
	})
	code, body, ct := get(t, tel, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "anubis_cells_completed_total 3") {
		t.Fatalf("counter missing:\n%s", body)
	}
	if !strings.Contains(body, `anubis_stall_ns_total{component="crypto"} 42`) {
		t.Fatalf("stall counter missing:\n%s", body)
	}
	// Process gauges are stamped at render time.
	for _, g := range []string{"anubis_heap_alloc_bytes", "anubis_goroutines", "anubis_uptime_seconds"} {
		if !strings.Contains(body, g) {
			t.Fatalf("process gauge %s missing:\n%s", g, body)
		}
	}
	// Serving must not mutate the published registry.
	tel.Update(func(r *Registry) {
		if v := r.GaugeValue("anubis_goroutines"); v != 0 {
			t.Fatalf("process gauge leaked into published registry: %v", v)
		}
	})
}

func TestTelemetryVarsEndpoint(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) {
		r.Counter("trials_total", 9)
		r.Observe("trial_wall_ns", 128)
	})
	for _, path := range []string{"/vars", "/debug/vars"} {
		code, body, ct := get(t, tel, path)
		if code != 200 {
			t.Fatalf("%s status %d", path, code)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s content type %q", path, ct)
		}
		var m map[string]float64
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("%s invalid JSON: %v\n%s", path, err, body)
		}
		if m["trials_total"] != 9 {
			t.Fatalf("trials_total = %v", m["trials_total"])
		}
		if m["trial_wall_ns_count"] != 1 {
			t.Fatalf("hist count = %v", m["trial_wall_ns_count"])
		}
		if _, ok := m["uptime_seconds"]; !ok {
			t.Fatalf("%s missing uptime_seconds: %v", path, m)
		}
	}
}

func TestTelemetryIndexAnd404(t *testing.T) {
	tel := NewTelemetry()
	if code, body, _ := get(t, tel, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _, _ := get(t, tel, "/nope"); code != 404 {
		t.Fatalf("want 404, got %d", code)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) { r.Counter("x_total", 1) })
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("live serve: %d\n%s", resp.StatusCode, body)
	}
}

// TestServeCloseReleasesPort is the regression for the original leak:
// Serve handed back only the bound address, so the listener and its
// goroutine lived until process exit and the port could never be
// re-bound. Closing the handle must release the port immediately.
func TestServeCloseReleasesPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewTelemetry())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The exact address must be re-bindable now that the server is down.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %s not released after Close: %v", addr, err)
	}
	ln.Close()
	// And scrapes must fail — the old server is really gone.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Close")
	}
}

// TestTelemetryConcurrentMergeAndScrape hammers a Telemetry from both
// sides at once — writer goroutines folding registries in through
// Update while scraper goroutines GET /metrics, /vars, and
// /debug/dash.json — and strictly parses every scraped body: each
// sample line must be well-formed, no line may be torn, and counters
// must be monotone across a single scraper's successive reads. Run
// with -race this doubles as the data-race proof for the serving
// boundary.
func TestTelemetryConcurrentMergeAndScrape(t *testing.T) {
	tel := NewTelemetry()
	rec := NewRecorder(64)
	tel.AttachRecorder(rec)

	const (
		writers = 4
		scrapes = 40
		rounds  = 50
	)
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				part := NewRegistry()
				part.Counter(Label("hammer_total", "worker", fmt.Sprintf("w%d", wkr)), 1)
				part.Counter("hammer_all_total", 1)
				part.Observe("hammer_wall_ns", uint64(i+1))
				tel.Update(func(r *Registry) { r.Merge(part) })
				rec.Record(Event{Kind: EvtExec, Op: "hammer"})
			}
		}(wkr)
	}

	scrapeErr := make(chan error, 3)
	paths := []string{"/metrics", "/vars", "/debug/dash.json"}
	for _, path := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			var lastAll uint64
			for i := 0; i < scrapes; i++ {
				w := httptest.NewRecorder()
				tel.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
				if w.Code != 200 {
					scrapeErr <- fmt.Errorf("%s: status %d", path, w.Code)
					return
				}
				body := w.Body.String()
				switch path {
				case "/metrics":
					all, err := strictParseMetrics(body)
					if err != nil {
						scrapeErr <- fmt.Errorf("%s scrape %d: %v", path, i, err)
						return
					}
					if all < lastAll {
						scrapeErr <- fmt.Errorf("%s: counter went backwards: %d -> %d", path, lastAll, all)
						return
					}
					lastAll = all
				default: // JSON endpoints must stay parseable mid-merge
					var v map[string]any
					if err := json.Unmarshal([]byte(body), &v); err != nil {
						scrapeErr <- fmt.Errorf("%s scrape %d: %v", path, i, err)
						return
					}
				}
			}
		}(path)
	}
	wg.Wait()
	close(scrapeErr)
	for err := range scrapeErr {
		t.Error(err)
	}

	// Final state: nothing lost to the concurrency.
	w := httptest.NewRecorder()
	tel.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	all, err := strictParseMetrics(w.Body.String())
	if err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	if want := uint64(writers * rounds); all != want {
		t.Errorf("hammer_all_total = %d, want %d", all, want)
	}
	if rec.Total() != uint64(writers*rounds) {
		t.Errorf("recorder total = %d, want %d", rec.Total(), writers*rounds)
	}
}

// strictParseMetrics validates a whole Prometheus exposition body line
// by line — TYPE comments, `name value` and `name{labels} value`
// samples, nothing else — and returns the hammer_all_total value (0 if
// absent). A torn line (interleaved writes, split buffers) fails the
// parse.
func strictParseMetrics(body string) (hammerAll uint64, err error) {
	if !strings.HasSuffix(body, "\n") {
		return 0, fmt.Errorf("body does not end in newline (torn write?)")
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				return 0, fmt.Errorf("malformed TYPE line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return 0, fmt.Errorf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if open := strings.IndexByte(name, '{'); open >= 0 {
			if !strings.HasSuffix(name, "}") {
				return 0, fmt.Errorf("unbalanced braces in %q", line)
			}
		} else if strings.ContainsAny(name, `"}=`) {
			return 0, fmt.Errorf("label characters outside braces in %q", line)
		}
		var f float64
		if _, serr := fmt.Sscanf(val, "%g", &f); serr != nil {
			return 0, fmt.Errorf("bad value in %q: %v", line, serr)
		}
		if name == "hammer_all_total" {
			hammerAll = uint64(f)
		}
	}
	return hammerAll, nil
}
