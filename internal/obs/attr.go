// Package obs is the simulator's observability layer: per-request
// stall attribution (Ledger), a merge-able metrics registry (Registry),
// sampled event tracing (Tracer, emitting Chrome trace-event JSON), and
// a live telemetry HTTP endpoint (Telemetry).
//
// Design constraints, in order of priority (DESIGN.md §11):
//
//  1. Zero interference: nothing in this package may change simulated
//     timing or simulation results. Attribution is pure bookkeeping on
//     clock advances that happen anyway; probes are nil-checked
//     interfaces that observe but never steer.
//  2. Zero hot-path cost when disabled: with no Probe attached the
//     request loop performs no allocations and no synchronization; the
//     always-on attribution ledger is a handful of uint64 additions.
//  3. Deterministic merging: workers own their metrics privately
//     (per-cell RunStats/Ledger, per-worker Registry) and merge at
//     reduction time — no atomics anywhere near the request loop.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Comp names one component of a simulated request's latency. Every
// advance of a controller's virtual clock is attributed to exactly one
// component, so the components of a request sum exactly to its latency
// (and, with CompCPUGap, to the whole run's execution time). The
// taxonomy follows the paper's evaluation questions: where does the
// extra memory time of a persistence scheme go?
type Comp uint8

const (
	// CompCPUGap is inter-request think time (trace gap), the only
	// component outside request latency.
	CompCPUGap Comp = iota
	// CompDataRead is critical-path data-block fetch time (media read,
	// plus bank/drain waits hidden under the overlapped metadata walk).
	CompDataRead
	// CompCounterFill is counter-block (or SGX combined-metadata leaf)
	// cache-miss fill time: the media-read portion of the fetch.
	CompCounterFill
	// CompTreeFill is integrity-tree-node cache-miss fill time: the
	// media-read portion of the tree walk.
	CompTreeFill
	// CompShadow is shadow-table time: SCT/SMT/ST region reads on the
	// critical path and WPQ stalls caused by shadow-entry writes
	// (Anubis's own overhead — the paper's <1% claim lives here).
	CompShadow
	// CompBankBusy is time a read spent waiting for its bank to free
	// (occupied by earlier reads or draining writes).
	CompBankBusy
	// CompDrainStall is time a read spent blocked by write-drain mode
	// (WPQ above the drain watermark).
	CompDrainStall
	// CompWPQStall is time a write spent waiting for a WPQ slot
	// (back-pressure from metadata write amplification).
	CompWPQStall
	// CompCrypto is hash/MAC/encryption engine occupancy on the
	// critical path.
	CompCrypto

	// NumComps is the number of attribution components.
	NumComps = iota
)

var compNames = [NumComps]string{
	"cpu_gap", "data_read", "counter_fill", "tree_fill", "shadow",
	"bank_busy", "drain_stall", "wpq_stall", "crypto",
}

// String returns the component's snake_case name (stable: part of the
// JSON report schema).
func (c Comp) String() string {
	if int(c) < len(compNames) {
		return compNames[c]
	}
	return fmt.Sprintf("comp(%d)", uint8(c))
}

// CompByName inverts String.
func CompByName(name string) (Comp, bool) {
	for i, n := range compNames {
		if n == name {
			return Comp(i), true
		}
	}
	return 0, false
}

// Comps lists every component in declaration (and report) order.
func Comps() []Comp {
	out := make([]Comp, NumComps)
	for i := range out {
		out[i] = Comp(i)
	}
	return out
}

// Ledger accumulates nanoseconds per component. It is a plain value
// type: copying snapshots it, and Since/Merge make per-request deltas
// and cross-worker reduction trivial and deterministic.
type Ledger [NumComps]uint64

// Add charges ns to component c.
func (l *Ledger) Add(c Comp, ns uint64) { l[c] += ns }

// AddN charges n occurrences of a fixed per-event cost in one step:
// identical to calling Add(c, per) n times. The hit-burst fast lane and
// test helpers use it for bulk closed-form charges.
func (l *Ledger) AddN(c Comp, per, n uint64) { l[c] += per * n }

// Get returns the accumulated time of component c.
func (l *Ledger) Get(c Comp) uint64 { return l[c] }

// Total returns the sum over all components (== execution time when
// the ledger covers a whole run).
func (l *Ledger) Total() uint64 {
	var t uint64
	for _, v := range l {
		t += v
	}
	return t
}

// RequestNS returns the total excluding CPU gap: the portion of the
// ledger that is request latency.
func (l *Ledger) RequestNS() uint64 { return l.Total() - l[CompCPUGap] }

// Since returns the component-wise delta l - prev. prev must be an
// earlier snapshot of the same ledger (components are monotone).
func (l *Ledger) Since(prev *Ledger) Ledger {
	var d Ledger
	for i := range l {
		d[i] = l[i] - prev[i]
	}
	return d
}

// Merge adds another ledger component-wise (cross-cell reduction).
func (l *Ledger) Merge(other *Ledger) {
	for i := range l {
		l[i] += other[i]
	}
}

// Map returns the ledger as a name → ns map (JSON-report shape).
func (l *Ledger) Map() map[string]uint64 {
	m := make(map[string]uint64, NumComps)
	for i, v := range l {
		m[compNames[i]] = v
	}
	return m
}

// MarshalJSON renders the ledger as an object with stable, named keys
// in component order, e.g. {"cpu_gap":1234,"data_read":567,...}.
func (l Ledger) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, v := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", compNames[i], v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON accepts the object form produced by MarshalJSON.
// Unknown keys are ignored so older tools can read newer reports.
func (l *Ledger) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for name, v := range m {
		if c, ok := CompByName(name); ok {
			l[c] = v
		}
	}
	return nil
}
