package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRingOrderAndWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: EvtExec, Op: "write", WallNS: int64(i + 1), DurNS: uint64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want ring cap 4", len(snap))
	}
	for i, e := range snap {
		want := uint64(6 + i) // events 6..9 survive, oldest first
		if e.Seq != want || e.DurNS != want {
			t.Fatalf("snap[%d] = seq %d dur %d, want %d", i, e.Seq, e.DurNS, want)
		}
	}
}

func TestRecorderJSONLines(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: EvtEnqueue, Tenant: "t0", Op: "write"})
	r.Record(Event{Kind: EvtShed, Tenant: "t1", Op: "write", Reason: "wpq"})
	var ph RecLedger
	ph.Add(RPShadowReplay, 700)
	ph.Add(RPMerkleRebuild, 300)
	r.Record(Event{Kind: EvtRecover, Tenant: "t1", DurNS: 1000, Phases: ph})

	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), sb.String())
	}
	var objs []map[string]any
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		objs = append(objs, m)
	}
	if objs[0]["kind"] != "enqueue" || objs[0]["tenant"] != "t0" {
		t.Fatalf("line 0 wrong: %v", objs[0])
	}
	if objs[1]["kind"] != "shed" || objs[1]["reason"] != "wpq" {
		t.Fatalf("line 1 wrong: %v", objs[1])
	}
	if _, ok := objs[0]["recovery_phase_ns"]; ok {
		t.Fatal("non-recovery event carries a phase breakdown")
	}
	phm, ok := objs[2]["recovery_phase_ns"].(map[string]any)
	if !ok {
		t.Fatalf("recover event missing phase breakdown: %v", objs[2])
	}
	if phm["shadow_table_replay"].(float64) != 700 || phm["merkle_rebuild"].(float64) != 300 {
		t.Fatalf("phase breakdown wrong: %v", phm)
	}
	// Wall-clock stamps are monotone non-decreasing within a dump.
	prev := int64(0)
	for _, e := range r.Snapshot() {
		if e.WallNS < prev {
			t.Fatalf("wall clock went backwards: %d < %d", e.WallNS, prev)
		}
		prev = e.WallNS
	}
}

// TestDisabledRecorderZeroAlloc pins the disabled-path contract: a nil
// recorder must make the serving hot path cost one branch and zero
// allocations, the same bar the nil Probe check meets.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under -race")
	}
	var r *Recorder
	avg := testing.AllocsPerRun(1000, func() {
		r.Record(Event{Kind: EvtExec, Tenant: "t0", Op: "write", DurNS: 123})
		r.Record(Event{Kind: EvtShed, Tenant: "t0", Op: "write", Reason: "wpq"})
	})
	if avg != 0 {
		t.Fatalf("disabled recorder allocates %.2f allocs/op, want 0", avg)
	}
	if r.Enabled() || r.Cap() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder must read as empty and disabled")
	}
}

// TestRecorderConcurrent hammers Record from many goroutines while
// snapshots are taken; meaningful chiefly under -race, and the final
// count must be exact regardless.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Event{Kind: EvtExec, Op: "write", DurNS: uint64(w)})
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", r.Total(), workers*per)
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("Snapshot len = %d, want 64", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("sequence tear at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}
