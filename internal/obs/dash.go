package obs

import (
	"encoding/json"
	"net/http"
)

// The embedded dashboard: a single dependency-free HTML page served
// from the telemetry endpoint at /dash. It polls /debug/dash.json — a
// structured snapshot of every counter, gauge, and histogram plus the
// flight-recorder tail — and renders, with nothing but inline SVG:
//
//   - per-tenant request / shed / recovery totals and rates,
//   - latency histogram sparklines (one per op family),
//   - stacked attribution bars for run stalls (component= labels) and
//     recovery phases (phase= labels),
//   - the live event tail.
//
// It intentionally has no framework, no external fetch, and no build
// step: curl /dash > snapshot.html produces a self-contained artifact
// (CI uploads exactly that from serve_smoke.sh).

// dashSnapshot is the /debug/dash.json payload.
type dashSnapshot struct {
	Counters      map[string]uint64  `json:"counters"`
	Gauges        map[string]float64 `json:"gauges"`
	Hists         map[string]*Hist   `json:"hists"`
	Events        []Event            `json:"events"`
	RecorderTotal uint64             `json:"recorder_total"`
}

func (t *Telemetry) serveDashJSON(w http.ResponseWriter) {
	t.mu.Lock()
	snap := NewRegistry()
	snap.Merge(t.reg)
	rec := t.rec
	t.mu.Unlock()
	t.processGauges(snap)
	payload := dashSnapshot{
		Counters:      snap.counters,
		Gauges:        snap.gauges,
		Hists:         snap.hists,
		Events:        rec.Snapshot(),
		RecorderTotal: rec.Total(),
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(payload)
}

func (t *Telemetry) serveDash(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>anubis dashboard</title>
<style>
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.2em; background: #111; color: #ddd; }
  h1 { font-size: 16px; } h2 { font-size: 13px; margin: 1.4em 0 .4em;
       color: #9cf; border-bottom: 1px solid #333; }
  table { border-collapse: collapse; }
  th, td { padding: 2px 10px 2px 0; text-align: right; }
  th { color: #888; font-weight: normal; } td:first-child, th:first-child { text-align: left; }
  .bar { display: flex; height: 16px; width: 480px; border: 1px solid #333; }
  .bar div { height: 100%; }
  .legend span { margin-right: 1em; white-space: nowrap; }
  .chip { display: inline-block; width: 9px; height: 9px; margin-right: 3px; }
  #events td { text-align: left; }
  .muted { color: #777; } .err { color: #f77; }
  #status { color: #888; float: right; }
</style>
</head>
<body>
<h1>anubis dashboard <span id="status">connecting…</span></h1>
<h2>tenants</h2><div id="tenants" class="muted">no tenant traffic yet</div>
<h2>latency sparklines</h2><div id="lat" class="muted">no histograms yet</div>
<h2>stall attribution</h2><div id="stalls" class="muted">no stall data (run with a probe / bench sweep)</div>
<h2>recovery-phase attribution</h2><div id="phases" class="muted">no recoveries yet</div>
<h2>event tail</h2><div id="events" class="muted">no flight recorder attached</div>
<script>
"use strict";
const PALETTE = ["#4c9","#c94","#49c","#c49","#9c4","#94c","#cc6","#6cc","#c66","#8a8"];
let prev = null, prevAt = 0;

// parseName splits 'fam{k="v",...}' into [family, labels]; label values
// are unescaped per the Prometheus exposition format (\\, \", \n).
function parseName(name) {
  const i = name.indexOf("{");
  if (i < 0) return [name, {}];
  const fam = name.slice(0, i), labels = {};
  const body = name.slice(i + 1, name.lastIndexOf("}"));
  const re = /(\w+)="((?:[^"\\]|\\.)*)"/g;
  let m;
  while ((m = re.exec(body)) !== null)
    labels[m[1]] = m[2].replace(/\\(.)/g, (_, c) => c === "n" ? "\n" : c);
  return [fam, labels];
}
function fmtNS(ns) {
  if (ns >= 1e9) return (ns / 1e9).toFixed(2) + "s";
  if (ns >= 1e6) return (ns / 1e6).toFixed(2) + "ms";
  if (ns >= 1e3) return (ns / 1e3).toFixed(1) + "µs";
  return ns + "ns";
}
function stackedBar(byKey) {
  const total = Object.values(byKey).reduce((a, b) => a + b, 0);
  if (total <= 0) return null;
  const keys = Object.keys(byKey).sort();
  let bar = '<div class="bar">', legend = '<div class="legend">';
  keys.forEach((k, i) => {
    const c = PALETTE[i % PALETTE.length], pct = 100 * byKey[k] / total;
    if (pct > 0) bar += '<div style="width:' + pct + '%;background:' + c + '" title="' +
      k + " " + pct.toFixed(1) + '%"></div>';
    legend += '<span><span class="chip" style="background:' + c + '"></span>' +
      k + " " + pct.toFixed(1) + "% (" + fmtNS(byKey[k]) + ")</span>";
  });
  return bar + "</div>" + legend + "</div>";
}
function sparkline(h) {
  const buckets = h.buckets, n = buckets.length;
  let last = 0;
  for (let i = 0; i < n; i++) if (buckets[i] > 0) last = i;
  const max = Math.max(1, ...buckets);
  const w = 4, svgW = (last + 1) * w;
  let svg = '<svg width="' + svgW + '" height="28" style="vertical-align:middle">';
  for (let i = 0; i <= last; i++) {
    const hh = Math.round(26 * buckets[i] / max);
    svg += '<rect x="' + i * w + '" y="' + (28 - hh) + '" width="' + (w - 1) +
      '" height="' + hh + '" fill="#4c9"/>';
  }
  return svg + "</svg>";
}
function esc(s) { return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;"); }

function render(snap) {
  const c = snap.counters || {}, hists = snap.hists || {};
  const now = Date.now() / 1000, dt = prev ? Math.max(0.2, now - prevAt) : 0;

  // Per-tenant table.
  const tenants = {};
  for (const [name, v] of Object.entries(c)) {
    const [fam, labels] = parseName(name);
    if (!labels.tenant) continue;
    const t = tenants[labels.tenant] || (tenants[labels.tenant] = { req: 0, shed: 0, rec: 0, reqNames: [] });
    if (fam === "anubis_serve_tenant_requests_total") { t.req += v; t.reqNames.push(name); }
    if (fam === "anubis_serve_tenant_shed_total") t.shed += v;
    if (fam === "anubis_serve_tenant_recoveries_total") t.rec += v;
  }
  const ids = Object.keys(tenants).sort();
  if (ids.length) {
    let html = "<table><tr><th>tenant</th><th>requests</th><th>req rate</th><th>sheds</th><th>recoveries</th></tr>";
    for (const id of ids) {
      const t = tenants[id];
      let rps = "";
      if (prev) {
        let cur = 0, old = 0;
        for (const n of t.reqNames) { cur += c[n] || 0; old += (prev.counters || {})[n] || 0; }
        rps = ((cur - old) / dt).toFixed(1) + "/s";
      }
      html += "<tr><td>" + esc(id) + "</td><td>" + t.req + "</td><td>" + rps +
        "</td><td>" + t.shed + "</td><td>" + t.rec + "</td></tr>";
    }
    document.getElementById("tenants").outerHTML = '<div id="tenants">' + html + "</table></div>";
  }

  // Latency sparklines.
  const lat = Object.keys(hists).sort();
  if (lat.length) {
    let html = "<table>";
    for (const name of lat) {
      const h = hists[name];
      html += "<tr><td>" + esc(name) + "</td><td>" + sparkline(h) + "</td><td>n=" + h.count +
        "</td><td>mean=" + fmtNS(h.count ? h.sum / h.count : 0) + "</td><td>max=" + fmtNS(h.max) + "</td></tr>";
    }
    document.getElementById("lat").outerHTML = '<div id="lat">' + html + "</table></div>";
  }

  // Attribution stacked bars: any family carrying component=/phase= labels.
  const stalls = {}, phases = {};
  for (const [name, v] of Object.entries(c)) {
    const [, labels] = parseName(name);
    if (labels.component) stalls[labels.component] = (stalls[labels.component] || 0) + v;
    if (labels.phase) phases[labels.phase] = (phases[labels.phase] || 0) + v;
  }
  const sb = stackedBar(stalls);
  if (sb) document.getElementById("stalls").outerHTML = '<div id="stalls">' + sb + "</div>";
  const pb = stackedBar(phases);
  if (pb) document.getElementById("phases").outerHTML = '<div id="phases">' + pb + "</div>";

  // Event tail (newest last, last 50).
  const evs = (snap.events || []).slice(-50);
  if (evs.length) {
    let html = "<table><tr><th>seq</th><th>time</th><th>kind</th><th>tenant</th><th>op</th><th>detail</th></tr>";
    for (const e of evs) {
      const ts = new Date(e.wall_ns / 1e6).toLocaleTimeString();
      let detail = e.reason || "";
      if (e.dur_ns) detail += (detail ? " " : "") + fmtNS(e.dur_ns);
      if (e.err) detail += ' <span class="err">' + esc(e.err) + "</span>";
      if (e.recovery_phase_ns) {
        const top = Object.entries(e.recovery_phase_ns).filter(([, v]) => v > 0)
          .sort((a, b) => b[1] - a[1]).map(([k, v]) => k + "=" + fmtNS(v)).join(" ");
        detail += ' <span class="muted">' + esc(top) + "</span>";
      }
      html += "<tr><td>" + e.seq + '</td><td class="muted">' + ts + "</td><td>" + esc(e.kind) +
        "</td><td>" + esc(e.tenant || "") + "</td><td>" + esc(e.op || "") + "</td><td>" + detail + "</td></tr>";
    }
    document.getElementById("events").outerHTML = '<div id="events">' + html + "</table></div>";
  }

  prev = snap; prevAt = now;
}

async function tick() {
  try {
    const r = await fetch("/debug/dash.json");
    render(await r.json());
    document.getElementById("status").textContent =
      "live · " + new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById("status").textContent = "disconnected";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
