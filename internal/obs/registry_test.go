package obs

import (
	"bufio"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randomRegistry(rng *rand.Rand) *Registry {
	r := NewRegistry()
	names := []string{"a_total", "b_total", `c_total{k="v"}`}
	for _, n := range names {
		if rng.Intn(2) == 0 {
			r.Counter(n, uint64(rng.Intn(1000)))
		}
	}
	for i := 0; i < rng.Intn(20); i++ {
		r.Observe("lat_ns", uint64(rng.Intn(1<<16)))
	}
	return r
}

// countersAndHists strips gauges (last-write-wins, deliberately not
// commutative) for the algebraic-property checks.
func countersAndHists(r *Registry) (map[string]uint64, map[string]Hist) {
	hs := make(map[string]Hist, len(r.hists))
	for k, h := range r.hists {
		hs[k] = *h
	}
	return r.counters, hs
}

func TestRegistryMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a1, b1 := randomRegistry(rng), randomRegistry(rng)
		a2, b2 := NewRegistry(), NewRegistry()
		a2.Merge(a1)
		b2.Merge(b1)

		a1.Merge(b1) // a ⊕ b
		b2.Merge(a2) // b ⊕ a
		ac, ah := countersAndHists(a1)
		bc, bh := countersAndHists(b2)
		if !reflect.DeepEqual(ac, bc) || !reflect.DeepEqual(ah, bh) {
			t.Fatalf("merge not commutative (trial %d)", trial)
		}
	}
}

func TestRegistryMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a, b, c := randomRegistry(rng), randomRegistry(rng), randomRegistry(rng)
		// (a ⊕ b) ⊕ c
		l := NewRegistry()
		l.Merge(a)
		l.Merge(b)
		l.Merge(c)
		// a ⊕ (b ⊕ c)
		bc := NewRegistry()
		bc.Merge(b)
		bc.Merge(c)
		r := NewRegistry()
		r.Merge(a)
		r.Merge(bc)
		lc, lh := countersAndHists(l)
		rc, rh := countersAndHists(r)
		if !reflect.DeepEqual(lc, rc) || !reflect.DeepEqual(lh, rh) {
			t.Fatalf("merge not associative (trial %d)", trial)
		}
	}
}

// TestPrometheusExposition checks the rendered text against the
// exposition-format grammar: TYPE lines name a valid type, every
// sample line is `name[{labels}] value`, histogram buckets are
// cumulative and end with +Inf == count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("anubis_cells_completed_total", 42)
	r.Counter(`anubis_stall_ns_total{component="crypto"}`, 100)
	r.Counter(`anubis_stall_ns_total{component="wpq_stall"}`, 7)
	r.Gauge("anubis_trials_per_second", 12.5)
	for i := uint64(1); i < 4000; i *= 3 {
		r.Observe("anubis_trial_wall_ns", i)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	var bucketCum []uint64
	var histCount uint64 = ^uint64(0)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("invalid metric type in %q", line)
			}
			if strings.ContainsAny(f[2], "{}\"") {
				t.Fatalf("TYPE line family carries labels: %q", line)
			}
			continue
		}
		// Sample line: name-with-optional-labels SP value.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.Contains(name, "_bucket{le=") {
			bucketCum = append(bucketCum, uint64(f))
		}
		if name == "anubis_trial_wall_ns_count" {
			histCount = uint64(f)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "anubis_cells_completed_total 42") {
		t.Fatalf("counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, `anubis_stall_ns_total{component="crypto"} 100`) {
		t.Fatalf("labeled counter missing:\n%s", out)
	}
	if len(bucketCum) == 0 || histCount == ^uint64(0) {
		t.Fatalf("histogram series missing:\n%s", out)
	}
	for i := 1; i < len(bucketCum); i++ {
		if bucketCum[i] < bucketCum[i-1] {
			t.Fatalf("histogram buckets not cumulative: %v", bucketCum)
		}
	}
	if last := bucketCum[len(bucketCum)-1]; last != histCount {
		t.Fatalf("+Inf bucket %d != count %d", last, histCount)
	}
}

func TestHistPercentileAndMean(t *testing.T) {
	var h Hist
	for i := uint64(0); i < 1000; i++ {
		h.Add(i)
	}
	if h.Count != 1000 || h.Sum != 999*1000/2 {
		t.Fatalf("count/sum wrong: %+v", h)
	}
	if p50, p99 := h.Percentile(50), h.Percentile(99); p50 > p99 {
		t.Fatalf("p50 %d > p99 %d", p50, p99)
	}
	if h.Max != 999 {
		t.Fatalf("max = %d", h.Max)
	}
	var other Hist
	other.Add(1 << 20)
	h.Merge(&other)
	if h.Count != 1001 || h.Max != 1<<20 {
		t.Fatalf("merge wrong: %+v", h)
	}
}

func TestRegistryMergeLedger(t *testing.T) {
	var l Ledger
	l.Add(CompCrypto, 80)
	l.Add(CompShadow, 5)
	r := NewRegistry()
	r.MergeLedger("anubis_stall_ns_total", &l)
	r.MergeLedger("anubis_stall_ns_total", &l)
	if got := r.CounterValue(`anubis_stall_ns_total{component="crypto"}`); got != 160 {
		t.Fatalf("crypto counter = %d, want 160", got)
	}
	if got := r.CounterValue(`anubis_stall_ns_total{component="shadow"}`); got != 10 {
		t.Fatalf("shadow counter = %d, want 10", got)
	}
}

// TestLabelEscapeRoundTrip feeds hostile label values through the full
// exposition pipeline — Label → WritePrometheus → a strict line parser
// → UnescapeLabelValue — and requires the originals back. The escaper
// must cover exactly the three characters the text format defines
// (backslash, double-quote, newline) and must NOT touch anything else:
// Go's %q would turn tabs and unicode into \t and \uXXXX sequences,
// which are invalid exposition escapes.
func TestLabelEscapeRoundTrip(t *testing.T) {
	nasty := []string{
		"plain",
		`back\slash`,
		`dou"ble`,
		"new\nline",
		"tab\there",
		"unicode-é-漢",
		`all"three\of` + "\nthem",
		`trailing\`,
		"",
	}
	r := NewRegistry()
	want := make(map[string]uint64) // raw value -> counter value
	for i, v := range nasty {
		r.Counter(Label("anubis_escape_test_total", "v", v), uint64(i+1))
		want[v] = uint64(i + 1)
	}

	var buf strings.Builder
	r.WritePrometheus(&buf)

	// Strict parser: every sample line must be
	//   name{k="escaped",...} value
	// with only \\ \" \n escapes inside quotes.
	got := make(map[string]uint64)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, raw, value := parseSampleLine(t, line)
		if name != "anubis_escape_test_total" {
			continue
		}
		unescaped, err := UnescapeLabelValue(raw)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		got[unescaped] = value
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d distinct values, want %d: %#v", len(got), len(want), got)
	}
	for v, n := range want {
		if got[v] != n {
			t.Errorf("value %q: got counter %d, want %d", v, got[v], n)
		}
	}
}

// parseSampleLine is the strict exposition-format scanner the
// round-trip test uses: it rejects unescaped quotes, bare newlines
// (impossible by construction — they would split the line), and any
// escape outside the defined three.
func parseSampleLine(t *testing.T, line string) (name, rawLabelV string, value uint64) {
	t.Helper()
	open := strings.IndexByte(line, '{')
	if open < 0 {
		t.Fatalf("sample line without labels: %q", line)
	}
	name = line[:open]
	rest := line[open+1:]
	if !strings.HasPrefix(rest, `v="`) {
		t.Fatalf("unexpected label key in %q", line)
	}
	rest = rest[len(`v="`):]
	// Scan to the closing unescaped quote.
	var sb strings.Builder
	i := 0
	for {
		if i >= len(rest) {
			t.Fatalf("unterminated label value in %q", line)
		}
		c := rest[i]
		if c == '"' {
			break
		}
		if c == '\\' {
			if i+1 >= len(rest) {
				t.Fatalf("dangling backslash in %q", line)
			}
			next := rest[i+1]
			if next != '\\' && next != '"' && next != 'n' {
				t.Fatalf("invalid escape \\%c in %q", next, line)
			}
			sb.WriteByte(c)
			sb.WriteByte(next)
			i += 2
			continue
		}
		sb.WriteByte(c)
		i++
	}
	rest = rest[i+1:] // past closing quote
	if !strings.HasPrefix(rest, "} ") {
		t.Fatalf("malformed sample tail %q in %q", rest, line)
	}
	var v uint64
	if _, err := fmt.Sscanf(rest[2:], "%d", &v); err != nil {
		t.Fatalf("bad sample value in %q: %v", line, err)
	}
	return name, sb.String(), v
}

// TestUnescapeLabelValueRejectsUndefined: the strict decoder errors on
// escapes the exposition format does not define.
func TestUnescapeLabelValueRejectsUndefined(t *testing.T) {
	for _, bad := range []string{`\t`, `\x41`, `a\`, `\é`} {
		if got, err := UnescapeLabelValue(bad); err == nil {
			t.Errorf("UnescapeLabelValue(%q) = %q, want error", bad, got)
		}
	}
	for raw, want := range map[string]string{
		`\\`: `\`, `\"`: `"`, `\n`: "\n", `a\\b\"c\nd`: "a\\b\"c\nd",
	} {
		got, err := UnescapeLabelValue(raw)
		if err != nil || got != want {
			t.Errorf("UnescapeLabelValue(%q) = %q, %v; want %q", raw, got, err, want)
		}
	}
}

// TestLabelTameValuesByteIdentical: Label must render tame values (the
// ones every existing metric uses) exactly like the %q builders it
// replaced, so dashboards and baselines keyed on metric names survive
// the escaping audit unchanged.
func TestLabelTameValuesByteIdentical(t *testing.T) {
	cases := [][]string{
		{"anubis_serve_tenant_requests_total", "tenant", "t0", "op", "write"},
		{"anubis_fuzz_trials_total", "policy", "epoch", "model", "torn-block"},
		{"anubis_stall_ns_total", "component", "crypto"},
	}
	for _, c := range cases {
		got := Label(c[0], c[1:]...)
		var sb strings.Builder
		sb.WriteString(c[0])
		sb.WriteByte('{')
		for i := 1; i+1 < len(c); i += 2 {
			if i > 1 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%s=%q", c[i], c[i+1])
		}
		sb.WriteByte('}')
		if got != sb.String() {
			t.Errorf("Label(%v) = %q, want %q", c, got, sb.String())
		}
	}
}
