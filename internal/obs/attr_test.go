package obs

import (
	"encoding/json"
	"testing"
)

func TestLedgerBasics(t *testing.T) {
	var l Ledger
	l.Add(CompCrypto, 40)
	l.Add(CompCrypto, 40)
	l.Add(CompCPUGap, 100)
	l.Add(CompWPQStall, 7)
	if got := l.Get(CompCrypto); got != 80 {
		t.Fatalf("crypto = %d, want 80", got)
	}
	if got := l.Total(); got != 187 {
		t.Fatalf("total = %d, want 187", got)
	}
	if got := l.RequestNS(); got != 87 {
		t.Fatalf("request ns = %d, want 87 (total minus cpu gap)", got)
	}
}

func TestLedgerSinceAndMerge(t *testing.T) {
	var l Ledger
	l.Add(CompDataRead, 60)
	snap := l
	l.Add(CompDataRead, 60)
	l.Add(CompTreeFill, 120)
	d := l.Since(&snap)
	if d[CompDataRead] != 60 || d[CompTreeFill] != 120 || d.Total() != 180 {
		t.Fatalf("delta = %+v", d)
	}
	var m Ledger
	m.Merge(&snap)
	m.Merge(&d)
	if m != l {
		t.Fatalf("merge(snap, delta) = %v, want %v", m, l)
	}
}

func TestLedgerJSONRoundTrip(t *testing.T) {
	var l Ledger
	for i := range l {
		l[i] = uint64(i+1) * 11
	}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	// Stable named-object shape: every component name present.
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("marshal produced invalid object: %v\n%s", err, data)
	}
	for _, c := range Comps() {
		if _, ok := m[c.String()]; !ok {
			t.Fatalf("component %q missing from JSON %s", c, data)
		}
	}
	var back Ledger
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != l {
		t.Fatalf("round trip: got %v want %v", back, l)
	}
}

func TestCompNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Comps() {
		n := c.String()
		if seen[n] {
			t.Fatalf("duplicate component name %q", n)
		}
		seen[n] = true
		got, ok := CompByName(n)
		if !ok || got != c {
			t.Fatalf("CompByName(%q) = %v, %v", n, got, ok)
		}
	}
	if _, ok := CompByName("nope"); ok {
		t.Fatal("CompByName accepted unknown name")
	}
}
