package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// RecPhase names one phase of a crash-recovery pass. Recovery cost in
// the simulator is fully modeled — every NVM fetch and crypto operation
// a recovery performs is counted and priced at a fixed per-op latency
// (memctrl.RecoveryReport.ModeledNS) — so attributing each counted op
// to exactly one phase makes the phase ledger sum-exact by
// construction: phase total == modeled recovery time, the same contract
// the run-stall Ledger has with execution time (DESIGN.md §16).
//
// The taxonomy follows the recovery pipelines of both controller
// families. Not every scheme visits every phase; a phase a scheme never
// enters simply stays zero.
type RecPhase uint8

const (
	// RPImageLoad is pre-recovery image work: DONE_BIT redo of
	// committed-but-undrained WPQ groups, wear-table reload, and root
	// register restore. The op model prices these at zero (they are
	// accounted in the crash path, not the recovery pass), so this
	// phase also serves as the catch-all for any op counted before the
	// first explicit phase mark.
	RPImageLoad RecPhase = iota
	// RPCounterScan is the Osiris-style counter reconstruction scan:
	// reading counter blocks (or SGX metadata leaves) and their data
	// lines to find and fix stale counters.
	RPCounterScan
	// RPShadowReplay is shadow-table reads: SCT/SMT/ST region fetches
	// that tell recovery which lanes/nodes were in flight at the crash.
	RPShadowReplay
	// RPMerkleRebuild is integrity-tree reconstruction: node fetches
	// and hash recomputation to rebuild (or splice and verify) the
	// tree bottom-up.
	RPMerkleRebuild
	// RPJournalPassA is pass A of the epoch-journal two-pass recovery:
	// replaying *old* journal content to reconstruct the pre-epoch
	// state and verify it against the stale persisted root.
	RPJournalPassA
	// RPJournalPassB is pass B: replaying *new* journal content,
	// recomputing the affected spine, and re-anchoring the root.
	RPJournalPassB
	// RPECCVerify is ECC-trial and MAC verification work: the crypto
	// trials Osiris-style correction runs per candidate counter, and
	// the per-tree MAC checks ASIT recovery ends with.
	RPECCVerify
	// RPRootAnchor is final root reconstruction and anchoring: the
	// bottom-up NVM walk to the root and the compare against the
	// tamper-proof register.
	RPRootAnchor

	// NumRecPhases is the number of recovery phases.
	NumRecPhases = iota
)

var recPhaseNames = [NumRecPhases]string{
	"image_load", "counter_osiris_scan", "shadow_table_replay",
	"merkle_rebuild", "epoch_journal_passA", "epoch_journal_passB",
	"ecc_verify", "root_anchor",
}

// String returns the phase's stable snake_case name (part of the JSON
// report schema).
func (p RecPhase) String() string {
	if int(p) < len(recPhaseNames) {
		return recPhaseNames[p]
	}
	return fmt.Sprintf("rec_phase(%d)", uint8(p))
}

// RecPhaseByName inverts String.
func RecPhaseByName(name string) (RecPhase, bool) {
	for i, n := range recPhaseNames {
		if n == name {
			return RecPhase(i), true
		}
	}
	return 0, false
}

// RecPhases lists every phase in declaration (and report) order.
func RecPhases() []RecPhase {
	out := make([]RecPhase, NumRecPhases)
	for i := range out {
		out[i] = RecPhase(i)
	}
	return out
}

// RecLedger accumulates modeled recovery nanoseconds per phase. Like
// Ledger it is a plain value type: copying snapshots it, Merge reduces
// across trials, and the zero value is an empty ledger.
type RecLedger [NumRecPhases]uint64

// Add charges ns to phase p.
func (l *RecLedger) Add(p RecPhase, ns uint64) { l[p] += ns }

// Get returns the accumulated time of phase p.
func (l *RecLedger) Get(p RecPhase) uint64 { return l[p] }

// Total returns the sum over all phases (== modeled recovery time when
// the ledger covers a whole recovery pass).
func (l *RecLedger) Total() uint64 {
	var t uint64
	for _, v := range l {
		t += v
	}
	return t
}

// Merge adds another ledger phase-wise (cross-trial reduction).
func (l *RecLedger) Merge(other *RecLedger) {
	for i := range l {
		l[i] += other[i]
	}
}

// Map returns the ledger as a name → ns map (JSON-report shape).
func (l *RecLedger) Map() map[string]uint64 {
	m := make(map[string]uint64, NumRecPhases)
	for i, v := range l {
		m[recPhaseNames[i]] = v
	}
	return m
}

// MarshalJSON renders the ledger as an object with stable, named keys
// in phase order, e.g. {"image_load":0,"counter_osiris_scan":800,...}.
func (l RecLedger) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, v := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", recPhaseNames[i], v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON accepts the object form produced by MarshalJSON.
// Unknown keys are ignored so older tools can read newer reports.
func (l *RecLedger) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for name, v := range m {
		if p, ok := RecPhaseByName(name); ok {
			l[p] = v
		}
	}
	return nil
}
