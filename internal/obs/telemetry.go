package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Telemetry publishes a registry over HTTP while a sweep or fuzz
// campaign runs. The hot path never touches it: workers report at cell
// (or trial) granularity through Update, which takes the mutex; the
// HTTP handlers take the same mutex only while rendering a snapshot.
//
// Endpoints:
//
//	/metrics      — Prometheus text exposition (plus process gauges:
//	                heap bytes, goroutines, uptime) for scraping.
//	/vars         — expvar-style JSON snapshot of every metric + memstats.
//	/debug/events — flight-recorder tail as JSON lines (404 when no
//	                recorder is attached).
//	/dash         — embedded live dashboard (dash.go).
//	/debug/dash.json — structured snapshot the dashboard polls.
//	/             — tiny index page.
type Telemetry struct {
	mu    sync.Mutex
	reg   *Registry
	start time.Time
	rec   *Recorder // nil until AttachRecorder
}

// AttachRecorder publishes a flight recorder on /debug/events and in
// the dashboard's event tail. Attach before serving; a nil recorder
// detaches.
func (t *Telemetry) AttachRecorder(r *Recorder) {
	t.mu.Lock()
	t.rec = r
	t.mu.Unlock()
}

func (t *Telemetry) recorder() *Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// NewTelemetry returns an empty live-telemetry publisher.
func NewTelemetry() *Telemetry {
	return &Telemetry{reg: NewRegistry(), start: time.Now()}
}

// Update runs f against the published registry under the lock. Callers
// report coarse progress (one call per completed simulation cell or
// fuzz trial), so contention is negligible.
func (t *Telemetry) Update(f func(r *Registry)) {
	t.mu.Lock()
	f(t.reg)
	t.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (t *Telemetry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/metrics":
		t.serveMetrics(w)
	case "/vars", "/debug/vars":
		t.serveVars(w)
	case "/debug/events":
		rec := t.recorder()
		if rec == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = rec.WriteJSONL(w)
	case "/dash":
		t.serveDash(w)
	case "/debug/dash.json":
		t.serveDashJSON(w)
	case "/":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "anubis telemetry: /metrics (Prometheus), /vars (JSON), /dash (dashboard), /debug/events (flight recorder)")
	default:
		http.NotFound(w, req)
	}
}

// processGauges adds point-in-time process stats to a registry copy.
func (t *Telemetry) processGauges(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("anubis_heap_alloc_bytes", float64(ms.HeapAlloc))
	r.Gauge("anubis_heap_sys_bytes", float64(ms.HeapSys))
	r.Gauge("anubis_gc_cycles_total", float64(ms.NumGC))
	r.Gauge("anubis_goroutines", float64(runtime.NumGoroutine()))
	r.Gauge("anubis_uptime_seconds", time.Since(t.start).Seconds())
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter) {
	t.mu.Lock()
	snap := NewRegistry()
	snap.Merge(t.reg)
	t.mu.Unlock()
	t.processGauges(snap)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w)
}

func (t *Telemetry) serveVars(w http.ResponseWriter) {
	t.mu.Lock()
	vars := t.reg.Snapshot()
	t.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	vars["heap_alloc_bytes"] = float64(ms.HeapAlloc)
	vars["goroutines"] = float64(runtime.NumGoroutine())
	vars["uptime_seconds"] = time.Since(t.start).Seconds()

	// Deterministic key order for readable diffs.
	names := make([]string, 0, len(vars))
	for k := range vars {
		names = append(names, k)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, "{")
	for i, k := range names {
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		kb, _ := json.Marshal(k)
		fmt.Fprintf(w, "  %s: %s%s\n", kb, formatFloat(vars[k]), comma)
	}
	fmt.Fprintln(w, "}")
}

// Server is a handle to a running telemetry HTTP server: the bound
// address plus a way to shut it down. Earlier revisions leaked the
// listener and serving goroutine until process exit; every caller now
// owns a handle and closes it when the campaign ends, so the port is
// released (and tests can re-bind it immediately).
type Server struct {
	srv  *http.Server
	ln   net.Listener
	addr string

	mu     sync.Mutex
	closed bool
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Close shuts the server down gracefully, waiting (up to a short
// deadline) for in-flight scrapes to finish before releasing the port.
// Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	// Shutdown only closes listeners the serve goroutine has already
	// registered; close ours directly so the port is guaranteed free the
	// moment Close returns, however the startup/shutdown race fell.
	_ = s.ln.Close()
	return err
}

// Serve starts the telemetry HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and returns a handle with
// the bound address. The caller must Close the handle on exit —
// otherwise the goroutine and port live until the process dies.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: t, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln, addr: ln.Addr().String()}, nil
}
