package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses the tracer's output back as a JSON array of
// loosely-typed events.
func decodeTrace(t *testing.T, tr *Tracer) []map[string]any {
	t.Helper()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, sb.String())
	}
	return evs
}

func TestTracerJSONShape(t *testing.T) {
	tr := NewTracer(1)
	s := tr.Scope("cell-0")
	var l Ledger
	l.Add(CompDataRead, 70)
	l.Add(CompCrypto, 30)
	s.Request(EvReadReq, 0x1000, 500, 600, &l)
	s.Event(EvCommit, 700, 900, 3)
	s.Event(EvOverflow, 950, 950, 1) // instant

	evs := decodeTrace(t, tr)
	if len(evs) != 4 { // thread_name + request + 2 events
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for _, e := range evs {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
	}
	if evs[0]["ph"] != "M" || evs[0]["name"] != "thread_name" {
		t.Fatalf("first event not thread_name metadata: %v", evs[0])
	}
	req := evs[1]
	if req["name"] != "read" || req["ph"] != "X" {
		t.Fatalf("request event wrong: %v", req)
	}
	// ns → µs conversion.
	if req["ts"].(float64) != 0.5 || req["dur"].(float64) != 0.1 {
		t.Fatalf("ts/dur not microseconds: %v", req)
	}
	args := req["args"].(map[string]any)
	if args["data_read_ns"].(float64) != 70 || args["crypto_ns"].(float64) != 30 {
		t.Fatalf("attribution args wrong: %v", args)
	}
	if evs[3]["ph"] != "i" {
		t.Fatalf("zero-duration event not instant: %v", evs[3])
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	const n, sample = 100, 7
	countRequests := func() int {
		tr := NewTracer(sample)
		s := tr.Scope("w")
		for i := 0; i < n; i++ {
			s.Request(EvWriteReq, uint64(i), uint64(i)*10, uint64(i)*10+5, nil)
		}
		evs := decodeTrace(t, tr)
		reqs := 0
		for _, e := range evs {
			if e["cat"] == "request" {
				reqs++
			}
		}
		return reqs
	}
	want := (n + sample - 1) / sample // first of every window kept
	a, b := countRequests(), countRequests()
	if a != want || b != want {
		t.Fatalf("sampled %d then %d requests, want %d both times", a, b, want)
	}
}

func TestTracerScopesGetDistinctTIDs(t *testing.T) {
	tr := NewTracer(1)
	s1, s2 := tr.Scope("a"), tr.Scope("b")
	s1.Event(EvPhase, 0, 0, 0)
	s2.Event(EvPhase, 0, 0, 0)
	evs := decodeTrace(t, tr)
	tids := map[float64]bool{}
	for _, e := range evs {
		if e["name"] == "phase" {
			tids[e["tid"].(float64)] = true
		}
	}
	if len(tids) != 2 {
		t.Fatalf("phase events share a tid: %v", evs)
	}
}

func TestTracerCPUGapExcludedFromArgs(t *testing.T) {
	tr := NewTracer(1)
	s := tr.Scope("x")
	var l Ledger
	l.Add(CompCPUGap, 999)
	l.Add(CompBankBusy, 5)
	s.Request(EvReadReq, 1, 0, 5, &l)
	evs := decodeTrace(t, tr)
	args := evs[1]["args"].(map[string]any)
	if _, ok := args["cpu_gap_ns"]; ok {
		t.Fatalf("cpu_gap leaked into request args: %v", args)
	}
	if args["bank_busy_ns"].(float64) != 5 {
		t.Fatalf("bank_busy missing: %v", args)
	}
}
