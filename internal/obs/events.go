package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EvtKind classifies a flight-recorder event: the life of a request
// through the serving plane (enqueue → exec, or shed), plus tenant
// lifecycle and crash/recovery audit events.
type EvtKind uint8

const (
	// EvtEnqueue records a request passing admission control into a
	// tenant's queue.
	EvtEnqueue EvtKind = iota
	// EvtShed records a request rejected by admission control; Reason
	// carries the shed family (inflight, queue, wpq, tenant_quota,
	// blocks_quota).
	EvtShed
	// EvtExec records a request completing execution; DurNS is the wall
	// time from admission to completion, Err a typed error if any.
	EvtExec
	// EvtDrain records a tenant worker draining its queue and stopping.
	EvtDrain
	// EvtCreate / EvtFork / EvtClose are tenant lifecycle events.
	EvtCreate
	EvtFork
	EvtClose
	// EvtCrash records an injected power failure.
	EvtCrash
	// EvtRecover records a completed recovery; DurNS is the modeled
	// recovery time and Phases carries its per-phase breakdown.
	EvtRecover
	// EvtAudit records a full-image audit.
	EvtAudit

	numEvtKinds = iota
)

var evtKindNames = [numEvtKinds]string{
	"enqueue", "shed", "exec", "drain", "create", "fork", "close",
	"crash", "recover", "audit",
}

// String returns the kind's stable snake_case name (part of the
// JSON-lines event schema).
func (k EvtKind) String() string {
	if int(k) < len(evtKindNames) {
		return evtKindNames[k]
	}
	return fmt.Sprintf("evt(%d)", uint8(k))
}

// Event is one flight-recorder entry. It is a plain value type — no
// pointers, no interfaces — so recording copies it into the ring
// without allocating and a snapshot cannot race with later writes.
type Event struct {
	Seq    uint64    // monotone sequence number, assigned by Record
	WallNS int64     // wall-clock ns (UnixNano), assigned by Record if zero
	Kind   EvtKind   // what happened
	Tenant string    // tenant id ("" for server-wide events)
	Op     string    // operation name (read, write, flush, ...)
	Reason string    // shed reason, fork parent, error class, ...
	DurNS  uint64    // duration: exec wall time or modeled recovery ns
	Err    string    // error text for failed operations
	Phases RecLedger // recovery-phase breakdown (EvtRecover only)
}

// eventJSON is the stable wire shape of one JSON-lines entry.
type eventJSON struct {
	Seq    uint64     `json:"seq"`
	WallNS int64      `json:"wall_ns"`
	Kind   string     `json:"kind"`
	Tenant string     `json:"tenant,omitempty"`
	Op     string     `json:"op,omitempty"`
	Reason string     `json:"reason,omitempty"`
	DurNS  uint64     `json:"dur_ns,omitempty"`
	Err    string     `json:"err,omitempty"`
	Phases *RecLedger `json:"recovery_phase_ns,omitempty"`
}

// MarshalJSON renders the event as one stable JSON object; the phase
// breakdown appears only when non-empty (recovery events).
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		Seq: e.Seq, WallNS: e.WallNS, Kind: e.Kind.String(),
		Tenant: e.Tenant, Op: e.Op, Reason: e.Reason,
		DurNS: e.DurNS, Err: e.Err,
	}
	if e.Phases.Total() > 0 {
		p := e.Phases
		j.Phases = &p
	}
	return json.Marshal(j)
}

// Recorder is a fixed-size ring buffer of Events: the serving plane's
// flight recorder. Recording takes one short mutex hold and copies the
// event by value — no allocation, no I/O — so it is safe on the request
// path; a nil *Recorder is the disabled state and costs a single
// predictable branch (the same contract as the nil-checked Probe,
// DESIGN.md §11). When the ring is full the oldest events are
// overwritten: after a crash or SIGTERM the tail holds the last
// Cap() things the server did.
type Recorder struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever recorded
}

// DefaultRecorderCap is the ring capacity used when NewRecorder is
// given a non-positive one.
const DefaultRecorderCap = 4096

// NewRecorder returns a flight recorder holding the last capacity
// events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends one event, stamping its sequence number and (when the
// caller left it zero) its wall-clock time. Safe for concurrent use;
// a nil receiver records nothing.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	r.mu.Lock()
	e.Seq = r.n
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
	r.mu.Unlock()
}

// Enabled reports whether events are being kept.
func (r *Recorder) Enabled() bool { return r != nil }

// Cap returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many events have ever been recorded (including
// overwritten ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the retained events oldest → newest.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	capacity := uint64(len(r.buf))
	count := r.n
	if count > capacity {
		count = capacity
	}
	out := make([]Event, 0, count)
	for i := r.n - count; i < r.n; i++ {
		out = append(out, r.buf[i%capacity])
	}
	return out
}

// WriteJSONL writes the retained events oldest → newest, one JSON
// object per line (the /debug/events format and the SIGTERM dump).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Snapshot() {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		bw.Write(data)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
