package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDashSmoke drives the embedded dashboard headlessly: the HTML
// page must serve with its section markers and poll loop, and the
// /debug/dash.json payload it polls must parse and carry the metrics
// and events the page renders from.
func TestDashSmoke(t *testing.T) {
	tel := NewTelemetry()
	tel.Update(func(r *Registry) {
		r.Counter(Label("anubis_serve_tenant_requests_total", "tenant", "t0", "op", "write"), 7)
		r.Counter(Label("anubis_serve_tenant_shed_total", "tenant", "t0", "reason", "wpq"), 2)
		r.Counter(Label("anubis_stall_ns_total", "component", "crypto"), 1000)
		r.Counter(Label("anubis_serve_recovery_phase_ns_total", "phase", "merkle_rebuild"), 4200)
		r.Observe("anubis_serve_op_wall_ns{op=\"write\"}", 1500)
	})
	rec := NewRecorder(8)
	rec.Record(Event{Kind: EvtEnqueue, Tenant: "t0", Op: "write"})
	var phases RecLedger
	phases.Add(RPMerkleRebuild, 4200)
	rec.Record(Event{Kind: EvtRecover, Tenant: "t0", DurNS: 4200, Phases: phases})
	tel.AttachRecorder(rec)

	// The HTML page.
	w := httptest.NewRecorder()
	tel.ServeHTTP(w, httptest.NewRequest("GET", "/dash", nil))
	if w.Code != 200 {
		t.Fatalf("GET /dash: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("GET /dash: Content-Type %q", ct)
	}
	body := w.Body.String()
	for _, marker := range []string{
		"<!DOCTYPE html>", "anubis dashboard",
		`id="tenants"`, `id="lat"`, `id="stalls"`, `id="phases"`, `id="events"`,
		"/debug/dash.json", "setInterval(tick",
	} {
		if !strings.Contains(body, marker) {
			t.Errorf("GET /dash: missing marker %q", marker)
		}
	}

	// The JSON snapshot it polls.
	w = httptest.NewRecorder()
	tel.ServeHTTP(w, httptest.NewRequest("GET", "/debug/dash.json", nil))
	if w.Code != 200 {
		t.Fatalf("GET /debug/dash.json: status %d", w.Code)
	}
	var snap struct {
		Counters      map[string]uint64          `json:"counters"`
		Gauges        map[string]float64         `json:"gauges"`
		Hists         map[string]json.RawMessage `json:"hists"`
		Events        []json.RawMessage          `json:"events"`
		RecorderTotal uint64                     `json:"recorder_total"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("GET /debug/dash.json: %v\nbody: %s", err, w.Body.String())
	}
	if got := snap.Counters[`anubis_serve_tenant_requests_total{tenant="t0",op="write"}`]; got != 7 {
		t.Errorf("counter lost in snapshot: got %d, want 7", got)
	}
	if _, ok := snap.Gauges["anubis_goroutines"]; !ok {
		t.Errorf("process gauges missing from snapshot: %v", snap.Gauges)
	}
	if len(snap.Hists) != 1 {
		t.Errorf("want 1 hist in snapshot, got %v", snap.Hists)
	}
	if len(snap.Events) != 2 || snap.RecorderTotal != 2 {
		t.Errorf("want 2 events / total 2, got %d events / total %d", len(snap.Events), snap.RecorderTotal)
	}
	if !strings.Contains(string(snap.Events[1]), `"merkle_rebuild":4200`) {
		t.Errorf("recover event lost its phase breakdown: %s", snap.Events[1])
	}

	// The JSON-lines event log.
	w = httptest.NewRecorder()
	tel.ServeHTTP(w, httptest.NewRequest("GET", "/debug/events", nil))
	if w.Code != 200 {
		t.Fatalf("GET /debug/events: status %d", w.Code)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("GET /debug/events: want 2 lines, got %d:\n%s", len(lines), w.Body.String())
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Errorf("event line not valid JSON: %v: %s", err, ln)
		}
	}
}

// TestDashJSONWithoutRecorder: the dashboard endpoints stay up when no
// flight recorder is attached (events are simply empty), while
// /debug/events 404s — the page's "no flight recorder" state.
func TestDashJSONWithoutRecorder(t *testing.T) {
	tel := NewTelemetry()

	w := httptest.NewRecorder()
	tel.ServeHTTP(w, httptest.NewRequest("GET", "/debug/dash.json", nil))
	if w.Code != 200 {
		t.Fatalf("GET /debug/dash.json: status %d", w.Code)
	}
	var snap dashSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(snap.Events) != 0 || snap.RecorderTotal != 0 {
		t.Errorf("recorder-less snapshot carries events: %+v", snap)
	}

	w = httptest.NewRecorder()
	tel.ServeHTTP(w, httptest.NewRequest("GET", "/debug/events", nil))
	if w.Code != 404 {
		t.Errorf("GET /debug/events without recorder: status %d, want 404", w.Code)
	}
}
