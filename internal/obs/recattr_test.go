package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func TestRecPhaseNamesStable(t *testing.T) {
	// The names are part of the schema_version-3 report format: any
	// rename is a breaking change and must bump the schema.
	want := []string{
		"image_load", "counter_osiris_scan", "shadow_table_replay",
		"merkle_rebuild", "epoch_journal_passA", "epoch_journal_passB",
		"ecc_verify", "root_anchor",
	}
	if NumRecPhases != len(want) {
		t.Fatalf("NumRecPhases = %d, want %d", NumRecPhases, len(want))
	}
	for i, w := range want {
		if got := RecPhase(i).String(); got != w {
			t.Errorf("RecPhase(%d) = %q, want %q", i, got, w)
		}
		p, ok := RecPhaseByName(w)
		if !ok || p != RecPhase(i) {
			t.Errorf("RecPhaseByName(%q) = %v,%v, want %d,true", w, p, ok, i)
		}
	}
	if _, ok := RecPhaseByName("no_such_phase"); ok {
		t.Error("RecPhaseByName accepted unknown name")
	}
}

func TestRecLedgerArithmetic(t *testing.T) {
	var l RecLedger
	l.Add(RPCounterScan, 300)
	l.Add(RPCounterScan, 200)
	l.Add(RPMerkleRebuild, 1000)
	if got := l.Get(RPCounterScan); got != 500 {
		t.Fatalf("Get = %d, want 500", got)
	}
	if got := l.Total(); got != 1500 {
		t.Fatalf("Total = %d, want 1500", got)
	}
	var m RecLedger
	m.Add(RPMerkleRebuild, 1)
	m.Add(RPRootAnchor, 2)
	m.Merge(&l)
	if m.Get(RPMerkleRebuild) != 1001 || m.Get(RPRootAnchor) != 2 || m.Total() != 1503 {
		t.Fatalf("Merge wrong: %v", m)
	}
}

func TestRecLedgerJSONRoundTrip(t *testing.T) {
	var l RecLedger
	for i := 0; i < NumRecPhases; i++ {
		l.Add(RecPhase(i), uint64(i*i+1))
	}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	// Keys must appear in declaration order (stable byte output).
	var first string
	dec := json.NewDecoder(bytes.NewReader(data))
	if _, err := dec.Token(); err != nil { // {
		t.Fatal(err)
	}
	tok, err := dec.Token()
	if err != nil {
		t.Fatal(err)
	}
	first = tok.(string)
	if first != "image_load" {
		t.Fatalf("first key = %q, want image_load", first)
	}
	var back RecLedger
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, back) {
		t.Fatalf("round trip changed ledger: %v vs %v", l, back)
	}
	// Map agrees with the ledger.
	mp := l.Map()
	for i := 0; i < NumRecPhases; i++ {
		if mp[RecPhase(i).String()] != l.Get(RecPhase(i)) {
			t.Fatalf("Map mismatch at %v", RecPhase(i))
		}
	}
	// Unknown keys ignored.
	var l2 RecLedger
	if err := json.Unmarshal([]byte(`{"image_load":7,"future_phase":9}`), &l2); err != nil {
		t.Fatal(err)
	}
	if l2.Get(RPImageLoad) != 7 || l2.Total() != 7 {
		t.Fatalf("unknown-key decode wrong: %v", l2)
	}
}
