package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Registry is a merge-able collection of named metrics: counters,
// gauges, and log-bucket histograms. It is deliberately NOT safe for
// concurrent use and contains no atomics: each worker owns a private
// registry (or, equivalently, private RunStats/Ledger values that are
// folded into one at reduction time), and Merge combines them
// deterministically — commutatively and associatively — after the
// parallel phase. Serving a registry over HTTP is the Telemetry type's
// job, which guards a published snapshot with a mutex at the serving
// boundary only.
//
// Metric names follow Prometheus conventions and may carry a literal
// label set: `anubis_stall_ns_total{component="crypto"}`. The renderer
// groups metrics by family (the name up to '{') for TYPE lines.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Hist),
	}
}

// Counter adds delta to the named counter (creating it at zero).
func (r *Registry) Counter(name string, delta uint64) {
	r.counters[name] += delta
}

// CounterValue returns the current value of a counter.
func (r *Registry) CounterValue(name string) uint64 { return r.counters[name] }

// Gauge sets the named gauge to v (last write wins; on Merge the
// other registry's value wins, so publish gauges from one place).
func (r *Registry) Gauge(name string, v float64) {
	r.gauges[name] = v
}

// GaugeValue returns the current value of a gauge.
func (r *Registry) GaugeValue(name string) float64 { return r.gauges[name] }

// Observe records one sample into the named histogram.
func (r *Registry) Observe(name string, v uint64) {
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	h.Add(v)
}

// Histogram returns the named histogram (nil if never observed).
func (r *Registry) Histogram(name string) *Hist { return r.hists[name] }

// Merge folds another registry into this one: counters add, gauges
// take the other's value, histograms merge bucket-wise. Merging is
// commutative and associative for counters and histograms (the
// property the parallel reduction relies on); gauges are last-write
// status values and are overwritten.
func (r *Registry) Merge(other *Registry) {
	for k, v := range other.counters {
		r.counters[k] += v
	}
	for k, v := range other.gauges {
		r.gauges[k] = v
	}
	for k, h := range other.hists {
		mine := r.hists[k]
		if mine == nil {
			mine = &Hist{}
			r.hists[k] = mine
		}
		mine.Merge(h)
	}
}

// EscapeLabelValue escapes a raw label value per the Prometheus text
// exposition format: backslash, double-quote, and newline become `\\`,
// `\"`, and `\n`. Everything else — tabs, unicode, control bytes —
// passes through verbatim, which is what the format specifies (and
// where Go's %q over-escapes: `%q` turns a tab into `\t` and é into a
// `\u` sequence, both of which a strict scraper must reject).
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// UnescapeLabelValue inverts EscapeLabelValue. It reports an error on
// any escape sequence the exposition format does not define — the
// strictness the round-trip test leans on.
func UnescapeLabelValue(v string) (string, error) {
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var sb strings.Builder
	sb.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' {
			sb.WriteByte(v[i])
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("obs: dangling backslash in label value %q", v)
		}
		switch v[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("obs: invalid escape \\%c in label value %q", v[i], v)
		}
	}
	return sb.String(), nil
}

// Label builds a metric name with a literal label set from raw label
// values, escaping each value per the exposition format:
//
//	Label("f", "tenant", `a"b`) == `f{tenant="a\"b"}`
//
// kv alternates key, value; keys must be legal label names already.
// Every label-in-name metric built from externally influenced strings
// must go through Label (or equivalent escaping) — the renderer emits
// names verbatim.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var sb strings.Builder
	sb.Grow(len(name) + 16*len(kv))
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(kv[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// MergeLedger adds a ledger's components as
// `<prefix>{component="<name>"}` counters.
func (r *Registry) MergeLedger(prefix string, l *Ledger) {
	for i, v := range l {
		if v != 0 {
			r.Counter(Label(prefix, "component", compNames[i]), v)
		}
	}
}

// MergeRecLedger adds a recovery-phase ledger's phases as
// `<prefix>{phase="<name>"}` counters.
func (r *Registry) MergeRecLedger(prefix string, l *RecLedger) {
	for i, v := range l {
		if v != 0 {
			r.Counter(Label(prefix, "phase", recPhaseNames[i]), v)
		}
	}
}

// Snapshot returns every metric as a sorted name → value map
// (histograms contribute _count/_sum/_max series). The order and the
// content are deterministic for a given registry state.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+3*len(r.hists))
	for k, v := range r.counters {
		out[k] = float64(v)
	}
	for k, v := range r.gauges {
		out[k] = v
	}
	for k, h := range r.hists {
		out[k+"_count"] = float64(h.Count)
		out[k+"_sum"] = float64(h.Sum)
		out[k+"_max"] = float64(h.Max)
	}
	return out
}

// family returns the metric family name: everything before the label
// braces.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, then the
// samples, all in sorted order. Histograms render as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`, with power-of-
// two bucket boundaries matching Hist's layout.
func (r *Registry) WritePrometheus(w io.Writer) {
	writeFamilies(w, r.counters, "counter", func(v uint64) string { return fmt.Sprintf("%d", v) })
	writeFamilies(w, r.gauges, "gauge", formatFloat)

	names := make([]string, 0, len(r.hists))
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		fam := family(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		var cum uint64
		for i, c := range h.Buckets {
			cum += c
			if c == 0 && i != len(h.Buckets)-1 {
				continue // keep the exposition compact; cumulative counts stay correct
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, bucketLE(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", fam, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", fam, h.Count)
	}
}

// bucketLE returns the inclusive upper bound label of Hist bucket i.
func bucketLE(i int) string {
	if i == 0 {
		return "1"
	}
	return fmt.Sprintf("%d", uint64(1)<<uint(i+1)-1)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// writeFamilies renders one metric kind sorted by name, emitting a
// TYPE line once per family.
func writeFamilies[V uint64 | float64](w io.Writer, m map[string]V, typ string, format func(V) string) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	lastFam := ""
	for _, name := range names {
		if f := family(name); f != lastFam {
			fmt.Fprintf(w, "# TYPE %s %s\n", f, typ)
			lastFam = f
		}
		fmt.Fprintf(w, "%s %s\n", name, format(m[name]))
	}
}

// Hist is a power-of-two log-bucket histogram — the same shape as
// sim.LatencyHist (bucket i counts samples in [2^i, 2^(i+1)), bucket 0
// also absorbs zero) so the two merge views stay comparable, but
// defined here so the observability layer has no simulator dependency.
type Hist struct {
	Buckets [40]uint64 `json:"buckets"`
	Count   uint64     `json:"count"`
	Sum     uint64     `json:"sum"`
	Max     uint64     `json:"max"`
}

// Add records one sample.
func (h *Hist) Add(v uint64) {
	i := 0
	for b := v; b > 1; b >>= 1 {
		i++
	}
	if v > 0 && i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds other into h bucket-wise.
func (h *Hist) Merge(other *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Mean returns the average sample.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile approximates the p-th percentile by the geometric
// midpoint of the containing bucket.
func (h *Hist) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(h.Count) * p / 100))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << uint(i) // bucket i covers [2^i, 2^(i+1))
			return lo + lo/2
		}
	}
	return h.Max
}

// String renders a compact summary.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d",
		h.Count, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max)
}
