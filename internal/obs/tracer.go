package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind classifies a probe event.
type EventKind uint8

const (
	// EvReadReq / EvWriteReq are completed simulated requests
	// (emitted by sim.RunObserved with their attribution delta).
	EvReadReq EventKind = iota
	EvWriteReq
	// EvEviction is a dirty metadata-cache victim writeback.
	EvEviction
	// EvCommit is one atomic commit group draining into the WPQ
	// (arg = staged entry count).
	EvCommit
	// EvOverflow is a split-counter page re-encryption.
	EvOverflow
	// EvRecovery is a post-crash recovery run (duration in modeled ns,
	// arg = fetch+crypto op count).
	EvRecovery
	// EvPhase is a harness-level phase marker (warm-up, sweep, trial).
	EvPhase
	// EvEpochClose is one coalesced epoch drain: the deferred integrity-
	// tree updates of a whole epoch hitting the WPQ as one commit group
	// (arg = coalesced ancestor count).
	EvEpochClose

	numEventKinds = iota
)

var eventNames = [numEventKinds]string{
	"read", "write", "eviction", "commit", "page_overflow", "recovery", "phase",
	"epoch_close",
}

// String returns the kind's trace-event name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Probe observes simulation events. Controllers and the simulator hold
// a Probe field that is nil by default: every emission site is guarded
// by a single nil check, so the disabled probe path costs one
// predictable branch and zero allocations, and a probe can never
// change simulated timing (it only ever receives completed facts).
type Probe interface {
	// Request reports one completed request: op is EvReadReq or
	// EvWriteReq, addr the block address, issue/done the request's
	// virtual-time window, attr the per-component latency breakdown
	// (summing exactly to done-issue).
	Request(op EventKind, addr, issueNS, doneNS uint64, attr *Ledger)
	// Event reports a non-request event occupying [startNS, endNS]
	// (endNS == startNS for instants); arg is kind-specific.
	Event(kind EventKind, startNS, endNS, arg uint64)
}

// Tracer collects sampled probe events and writes them as Chrome
// trace-event JSON (the "JSON Array Format" chrome://tracing and
// Perfetto load). Request events are sampled 1/N per scope; structural
// events (commits, evictions, recovery, phases) are always kept.
//
// A Tracer is shared by every simulation cell of a sweep: each cell
// attaches its own Scope (one trace "thread"), so the only
// synchronization is an append under the Tracer's mutex on the sampled
// slow path. Simulated nanoseconds map to trace microseconds.
type Tracer struct {
	mu     sync.Mutex
	sample uint64 // keep 1 in `sample` request events (min 1)
	events []traceEvent
	scopes int
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer creates a tracer keeping 1 in sampleN request events
// (sampleN <= 1 keeps every request).
func NewTracer(sampleN int) *Tracer {
	if sampleN < 1 {
		sampleN = 1
	}
	return &Tracer{sample: uint64(sampleN)}
}

// Scope returns a Probe bound to a named trace thread (one per
// simulation cell). The scope carries its own deterministic sampling
// counter, so which requests are sampled does not depend on worker
// interleaving.
func (t *Tracer) Scope(name string) *Scope {
	t.mu.Lock()
	t.scopes++
	tid := t.scopes
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
	return &Scope{t: t, tid: tid}
}

// add appends one event under the lock.
func (t *Tracer) add(e traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of collected events (metadata included).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the collected events as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// One array, one event per line: encoding/json handles escaping.
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range t.events {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// Scope is a Tracer view bound to one trace thread.
type Scope struct {
	t    *Tracer
	tid  int
	nReq uint64
}

var _ Probe = (*Scope)(nil)

// Request implements Probe with 1/N sampling.
func (s *Scope) Request(op EventKind, addr, issueNS, doneNS uint64, attr *Ledger) {
	s.nReq++
	if (s.nReq-1)%s.t.sample != 0 {
		return
	}
	args := map[string]any{"addr": addr}
	if attr != nil {
		for i, v := range attr {
			if v != 0 && Comp(i) != CompCPUGap {
				args[compNames[i]+"_ns"] = v
			}
		}
	}
	s.t.add(traceEvent{
		Name: op.String(), Cat: "request", Ph: "X",
		TS: float64(issueNS) / 1e3, Dur: float64(doneNS-issueNS) / 1e3,
		PID: 1, TID: s.tid, Args: args,
	})
}

// Event implements Probe. Structural events are never sampled away.
func (s *Scope) Event(kind EventKind, startNS, endNS, arg uint64) {
	e := traceEvent{
		Name: kind.String(), Cat: "sim", Ph: "X",
		TS: float64(startNS) / 1e3, PID: 1, TID: s.tid,
		Args: map[string]any{"arg": arg},
	}
	if endNS > startNS {
		e.Dur = float64(endNS-startNS) / 1e3
	} else {
		e.Ph = "i" // instant
	}
	s.t.add(e)
}
