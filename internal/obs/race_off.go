//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in. The
// race runtime allocates on instrumented accesses, so steady-state
// zero-allocation assertions are only meaningful without it (mirrors
// the sim/nvm/cryptoeng race_on/race_off gate).
const raceEnabled = false
