package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		got, err := Map(Pool{Workers: workers}, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("cell-%03d", i), nil
	}
	seq, err := Map(Pool{Workers: 1}, 57, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(Pool{Workers: 16}, 57, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("out[%d]: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Pool{}, 0, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	if (Pool{}).workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("default workers != GOMAXPROCS")
	}
	if (Pool{Workers: -3}).workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative workers != GOMAXPROCS")
	}
	if (Pool{Workers: 7}).workers() != 7 {
		t.Fatal("explicit workers not honoured")
	}
}

func TestMapPoisonedCell(t *testing.T) {
	// One poisoned cell: the pool must return promptly with exactly that
	// error, and queued cells after the failure must be skipped.
	poison := errors.New("cell 7 is poisoned")
	var ran atomic.Int64
	start := time.Now()
	got, err := Map(Pool{Workers: 4}, 10_000, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 7 {
			return 0, poison
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, poison) {
		t.Fatalf("err = %v, want poison", err)
	}
	if got != nil {
		t.Fatal("partial results returned alongside error")
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("all %d cells ran despite early poison", n)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pool took %v to abort", elapsed)
	}
}

func TestMapSequentialPoison(t *testing.T) {
	poison := errors.New("boom")
	var ran int
	_, err := Map(Pool{Workers: 1}, 100, func(_ context.Context, i int) (int, error) {
		ran++
		if i == 3 {
			return 0, poison
		}
		return i, nil
	})
	if !errors.Is(err, poison) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("sequential path ran %d cells after error, want stop at 4", ran)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	// When several cells fail, the reported error is the lowest-indexed
	// one among those that actually ran — deterministic for the common
	// case of one true failure plus cascading ones.
	errA, errB := errors.New("a"), errors.New("b")
	var release sync.WaitGroup
	release.Add(1)
	done := make(chan error, 1)
	go func() {
		_, err := Map(Pool{Workers: 2}, 2, func(_ context.Context, i int) (int, error) {
			release.Wait() // both cells fail together
			if i == 0 {
				return 0, errA
			}
			return 0, errB
		})
		done <- err
	}()
	release.Done()
	if err := <-done; !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errA)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		err := Do(Pool{Workers: 2, Ctx: ctx}, 1_000_000, func(ctx context.Context, i int) error {
			ran.Add(1)
			time.Sleep(50 * time.Microsecond)
			return nil
		})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not return after parent cancellation")
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Fatal("cancellation did not skip any cells")
	}
}

func TestMapSequentialParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(Pool{Workers: 1, Ctx: ctx}, 10, func(_ context.Context, i int) (int, error) {
		t.Fatal("cell ran under a cancelled context")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := Do(Pool{Workers: workers}, 200, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent cells, pool bound is %d", p, workers)
	}
}
