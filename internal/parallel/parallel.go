// Package parallel provides the evaluation engine's bounded worker
// pool: independent work items (simulation cells) fan out across up to
// Workers goroutines while results are collected in deterministic input
// order.
//
// Every (scheme, app, cache-size) cell of the paper's evaluation
// constructs its own controller and its own seeded trace source, so
// cells share no mutable state and the fan-out is embarrassingly
// parallel. Because Map writes result i to slot i regardless of which
// worker ran it — and the figure code reduces those slots in exactly
// the order the old sequential loops used — a run with Workers=N is
// byte-identical to Workers=1 (see DESIGN.md § Parallel evaluation).
//
// Error handling follows the "first error wins, abort the sweep"
// policy: the first failing cell cancels the pool's context, in-flight
// cells finish, queued cells are skipped, and Map returns the error of
// the lowest-indexed failed cell (deterministic under races where two
// cells fail near-simultaneously).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool describes a bounded fan-out.
//
// Workers is the maximum number of concurrently running items; zero or
// negative means runtime.GOMAXPROCS(0). Ctx is the parent context (nil
// means context.Background()); cancelling it aborts the sweep between
// items.
type Pool struct {
	Workers int
	Ctx     context.Context
}

// workers resolves the effective worker count.
func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctx resolves the parent context.
func (p Pool) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// Map runs fn(ctx, i) for every i in [0, n) on up to p.Workers
// goroutines and returns the results indexed by input position.
//
// With one worker, Map degenerates to the plain sequential loop (no
// goroutines), which is the legacy evaluation path. With more, items
// are claimed from an atomic cursor — items therefore *start* in input
// order, and the deterministic result placement makes completion order
// irrelevant.
//
// On error, the returned slice is nil and the error is the failing
// item's (wrapped by fn, not by Map). Cancellation of p.Ctx surfaces as
// that context's error unless an item failed first.
func Map[T any](p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	parent := p.ctx()
	w := p.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Sequential fast path: identical to the pre-pool evaluation
		// loop, plus cooperative cancellation between cells.
		for i := 0; i < n; i++ {
			if err := parent.Err(); err != nil {
				return nil, err
			}
			v, err := fn(parent, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	cursor.Store(-1)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel() // abort queued cells promptly
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := parent.Err(); err != nil {
		// The parent was cancelled mid-sweep: some cells were skipped,
		// so the result slice is incomplete and must not be used.
		return nil, err
	}
	return out, nil
}

// Do runs fn(ctx, i) for every i in [0, n) with the same scheduling and
// error semantics as Map, for item functions with no result value.
func Do(p Pool, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
