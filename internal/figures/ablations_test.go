package figures

import (
	"bytes"
	"strings"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/nvm"
)

func ablationRC() RunConfig {
	rc := QuickRunConfig()
	rc.Requests = 4000
	return rc
}

func TestAblationStopLossTradeoff(t *testing.T) {
	rows, err := AblationStopLoss(ablationRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger stop-loss ⇒ fewer run-time persists.
	if rows[0].StopLossWrites <= rows[4].StopLossWrites {
		t.Fatalf("stop-loss 1 persists (%d) not above stop-loss 16 (%d)",
			rows[0].StopLossWrites, rows[4].StopLossWrites)
	}
	// Larger stop-loss ⇒ at least as many recovery trials.
	if rows[4].RecoveryCrypto < rows[0].RecoveryCrypto {
		t.Fatalf("stop-loss 16 trials (%d) below stop-loss 1 (%d)",
			rows[4].RecoveryCrypto, rows[0].RecoveryCrypto)
	}
	// Run-time overhead must not increase with the limit.
	if rows[4].Normalized > rows[0].Normalized+0.01 {
		t.Fatalf("overhead grew with stop-loss: %.3f -> %.3f",
			rows[0].Normalized, rows[4].Normalized)
	}
}

func TestAblationRecoveryBackend(t *testing.T) {
	rows, err := AblationRecoveryBackend(ablationRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ecc, phase := rows[0], rows[1]
	if ecc.Backend != memctrl.RecoveryECC || phase.Backend != memctrl.RecoveryPhase {
		t.Fatal("backend order wrong")
	}
	if phase.StopLossWrites != 0 {
		t.Fatalf("phase backend made %d stop-loss writes", phase.StopLossWrites)
	}
	if ecc.StopLossWrites == 0 {
		t.Fatal("ECC backend made no stop-loss writes")
	}
	// Phase must not be slower than ECC at run time (it removes writes).
	if phase.Normalized > ecc.Normalized+0.01 {
		t.Fatalf("phase (%.3f) slower than ECC (%.3f)", phase.Normalized, ecc.Normalized)
	}
}

func TestAblationEndurance(t *testing.T) {
	rows, err := AblationEndurance(ablationRC())
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[memctrl.Scheme]EnduranceRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	wb := byScheme[memctrl.SchemeWriteBack]
	strict := byScheme[memctrl.SchemeStrict]
	plus := byScheme[memctrl.SchemeAGITPlus]
	// §6.2: strict causes many extra writes per memory write.
	if strict.WritesPerRequest < wb.WritesPerRequest+3 {
		t.Fatalf("strict writes/req %.2f not far above write-back %.2f",
			strict.WritesPerRequest, wb.WritesPerRequest)
	}
	// Strict must shorten lifetime substantially (factor < 0.5).
	if strict.LifetimeFactor > 0.5 {
		t.Fatalf("strict lifetime factor %.2f; expected heavy wear", strict.LifetimeFactor)
	}
	// AGIT-Plus stays within ~2x of write-back's hottest wear.
	if plus.LifetimeFactor < 0.3 {
		t.Fatalf("agit-plus lifetime factor %.2f implausibly bad", plus.LifetimeFactor)
	}
	if wb.LifetimeFactor != 1.0 {
		t.Fatalf("write-back lifetime factor = %.2f, want 1.0", wb.LifetimeFactor)
	}
}

func TestAblationPrinters(t *testing.T) {
	rc := ablationRC()
	rc.Requests = 1500
	var buf bytes.Buffer
	if err := PrintAblationStopLoss(&buf, rc); err != nil {
		t.Fatal(err)
	}
	if err := PrintAblationRecoveryBackend(&buf, rc); err != nil {
		t.Fatal(err)
	}
	if err := PrintAblationEndurance(&buf, rc); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stop-loss", "backend", "endurance", "lifetime"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestWearRegionName(t *testing.T) {
	if wearRegionName(nvm.RegionData) != "data" {
		t.Fatal("region name passthrough broken")
	}
}

func TestAblationTriad(t *testing.T) {
	rows, err := AblationTriad(ablationRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Recovery8TBS >= rows[i-1].Recovery8TBS {
			t.Fatal("recovery not decreasing with persisted levels")
		}
		if rows[i].MeasuredOps >= rows[i-1].MeasuredOps {
			t.Fatal("measured recovery ops not decreasing with persisted levels")
		}
	}
	// Run-time cost must grow with levels (more persists per write).
	if rows[3].Normalized <= rows[0].Normalized {
		t.Fatalf("level-3 run time (%.3f) not above level-0 (%.3f)",
			rows[3].Normalized, rows[0].Normalized)
	}
}
