package figures

import (
	"context"
	"fmt"
	"sort"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/parallel"
	"anubis/internal/sim"
	"anubis/internal/trace"
	"io"
)

// Crash/recovery sweep with warm-state forking.
//
// The paper validates its recovery-time claims by crashing the same
// warmed-up system at many points and measuring each recovery (the
// Phoenix/Triad-NVM evaluation shape). Re-building a controller and
// replaying the fill phase per trial makes the fill dominate the sweep;
// instead, RecoverySweep warms ONE controller per (scheme, app, seed)
// and forks it per trial via Controller.Clone — the NVM image is shared
// copy-on-write, so N trials pay one fill plus N×(measurement window +
// recovery). Forked trials are byte-identical to cold-started ones
// (asserted by TestRecoverySweepForkEqualsCold), so ColdStart exists
// only for that equivalence check and for timing A/B runs.

// RecoverySweepConfig parameterizes a crash/recovery sweep.
type RecoverySweepConfig struct {
	// Run supplies scale, seed, cache overrides, the worker pool, and
	// the shared trace arenas.
	Run RunConfig
	// Scheme/Family select the controller under test.
	Scheme memctrl.Scheme
	Family sim.Family
	// App names the workload profile (default: first of Run's set).
	App string
	// Warm is the fill-phase length in requests: the state every trial
	// starts from. Defaults to Run.Requests.
	Warm int
	// Trials is the number of crash points. Trial t executes
	// (t+1)*ExtraPerTrial requests past the warm point, crashes, and
	// recovers, so crash points spread over a growing window.
	Trials int
	// ExtraPerTrial is the crash-point stride (default 200 requests).
	ExtraPerTrial int
	// ColdStart disables forking: every trial re-fills a fresh
	// controller from scratch. Exists for the fork-vs-cold golden
	// equivalence tests and for timing A/B; results are byte-identical.
	ColdStart bool
}

// RecoveryTrial is one crash point's outcome.
type RecoveryTrial struct {
	Extra  int                    `json:"extra"`  // requests executed past the warm point before the crash
	Window sim.Result             `json:"window"` // the post-warm measurement window
	Report memctrl.RecoveryReport `json:"report"`
}

// RecoverySweepResult aggregates a sweep.
type RecoverySweepResult struct {
	Scheme memctrl.Scheme  `json:"scheme"`
	App    string          `json:"app"`
	Warm   int             `json:"warm"`
	Cold   bool            `json:"cold"`
	Trials []RecoveryTrial `json:"trials"`

	// ReadLat/WriteLat merge every trial's measurement-window histogram
	// (via LatencyHist.Merge), in trial order.
	ReadLat  sim.LatencyHist `json:"read_latency"`
	WriteLat sim.LatencyHist `json:"write_latency"`

	// PhaseTotals merges every trial's recovery-phase ledger; its total
	// equals the sum of the trials' modeled recovery times exactly
	// (each trial's ledger is sum-exact, DESIGN.md §16).
	PhaseTotals obs.RecLedger `json:"recovery_phase_ns"`
}

// ModeledRecoveryNS returns the min/mean/max of the modeled recovery
// time across trials.
func (r *RecoverySweepResult) ModeledRecoveryNS() (min, mean, max uint64) {
	if len(r.Trials) == 0 {
		return 0, 0, 0
	}
	var sum uint64
	for i, t := range r.Trials {
		ns := t.Report.ModeledNS()
		sum += ns
		if i == 0 || ns < min {
			min = ns
		}
		if ns > max {
			max = ns
		}
	}
	return min, sum / uint64(len(r.Trials)), max
}

// RecoveryPercentileNS returns the p-th percentile of the modeled
// recovery-time distribution across trials.
func (r *RecoverySweepResult) RecoveryPercentileNS(p float64) uint64 {
	if len(r.Trials) == 0 {
		return 0
	}
	ns := make([]uint64, len(r.Trials))
	for i, t := range r.Trials {
		ns[i] = t.Report.ModeledNS()
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	k := int(float64(len(ns))*p/100) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(ns) {
		k = len(ns) - 1
	}
	return ns[k]
}

func (c *RecoverySweepConfig) defaults() (trace.Profile, error) {
	if c.Warm <= 0 {
		c.Warm = c.Run.Requests
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.ExtraPerTrial <= 0 {
		c.ExtraPerTrial = 200
	}
	if c.App == "" {
		c.App = c.Run.profiles()[0].Name
	}
	p, ok := trace.ByName(c.App)
	if !ok {
		return trace.Profile{}, fmt.Errorf("figures: unknown app %q", c.App)
	}
	return p, nil
}

// RecoverySweep executes the sweep and returns the per-trial recovery
// reports plus the merged measurement-window histograms. Results are
// deterministic and independent of the worker count, and identical
// between forked and cold-started modes.
func RecoverySweep(c RecoverySweepConfig) (*RecoverySweepResult, error) {
	prof, err := c.defaults()
	if err != nil {
		return nil, err
	}
	maxReq := c.Warm + c.Trials*c.ExtraPerTrial
	// Forked trials resume consumption mid-stream, which needs a
	// materialized arena; build a private one if the RunConfig doesn't
	// carry a cache.
	var arena *trace.Arena
	if c.Run.Arenas != nil {
		arena = c.Run.Arenas.Get(prof, c.Run.Seed, maxReq)
	} else {
		arena = trace.NewArena(prof, c.Run.Seed, maxReq)
	}
	cfg := c.Run.config(c.Scheme)

	// Fill and window phases honor the RunConfig's hit-burst fast path:
	// RunFast is contractually byte-identical to Run, so the trials (and
	// the forked-equals-cold property) are unchanged, only faster.
	run := sim.Run
	if c.Run.Fastpath {
		run = sim.RunFast
	}

	out := &RecoverySweepResult{Scheme: c.Scheme, App: c.App, Warm: c.Warm, Cold: c.ColdStart}
	out.Trials = make([]RecoveryTrial, c.Trials)

	var warm memctrl.Controller
	if !c.ColdStart {
		// One fill for the whole sweep.
		warm, err = sim.NewController(c.Family, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := run(warm, arena.Source(), c.Warm); err != nil {
			return nil, fmt.Errorf("figures: recovery warm-up: %w", err)
		}
	}
	// Clone sequentially (Fork freezes the parent's page stores, which
	// must not race), then run the trials on the pool: forked children
	// only read the shared frozen pages and copy-on-write into their own
	// directories, so trials are mutually independent.
	children := make([]memctrl.Controller, c.Trials)
	if !c.ColdStart {
		for t := range children {
			children[t] = warm.Clone()
		}
	}
	trials, err := parallel.Map(c.Run.pool(), c.Trials, func(_ context.Context, t int) (RecoveryTrial, error) {
		extra := (t + 1) * c.ExtraPerTrial
		ctrl := children[t]
		if c.ColdStart {
			// Cold start replays the identical fill phase as its own
			// first Run call, matching the forked path request-for-
			// request and fill-pattern-for-fill-pattern.
			cold, err := sim.NewController(c.Family, cfg)
			if err != nil {
				return RecoveryTrial{}, err
			}
			if _, err := run(cold, arena.Source(), c.Warm); err != nil {
				return RecoveryTrial{}, fmt.Errorf("figures: trial %d cold fill: %w", t, err)
			}
			ctrl = cold
		}
		window, err := run(ctrl, arena.SourceAt(c.Warm), extra)
		if err != nil {
			return RecoveryTrial{}, fmt.Errorf("figures: trial %d window: %w", t, err)
		}
		ctrl.Crash()
		rep, err := ctrl.Recover()
		if err != nil {
			return RecoveryTrial{}, fmt.Errorf("figures: trial %d recovery: %w", t, err)
		}
		return RecoveryTrial{Extra: extra, Window: window, Report: *rep}, nil
	})
	if err != nil {
		return nil, err
	}
	for t := range trials {
		out.Trials[t] = trials[t]
		out.ReadLat.Merge(&trials[t].Window.ReadLat)
		out.WriteLat.Merge(&trials[t].Window.WriteLat)
		out.PhaseTotals.Merge(&trials[t].Report.Phases)
	}
	return out, nil
}

// PrintRecoverySweep renders a sweep for both Anubis schemes.
func PrintRecoverySweep(w io.Writer, rc RunConfig, trials int) error {
	fmt.Fprintln(w, "Recovery-time distribution (forked warm state; modeled at 100 ns/op)")
	fmt.Fprintf(w, "  %-10s %-12s %8s %12s %12s %12s %12s  %s\n",
		"scheme", "app", "trials", "min", "mean", "p95", "max", "dominant phase")
	for _, sc := range []struct {
		scheme memctrl.Scheme
		family sim.Family
	}{
		{memctrl.SchemeAGITPlus, sim.FamilyBonsai},
		{memctrl.SchemeASIT, sim.FamilySGX},
	} {
		res, err := RecoverySweep(RecoverySweepConfig{
			Run: rc, Scheme: sc.scheme, Family: sc.family, Trials: trials,
		})
		if err != nil {
			return err
		}
		min, mean, max := res.ModeledRecoveryNS()
		fmt.Fprintf(w, "  %-10s %-12s %8d %10dns %10dns %10dns %10dns  %s\n",
			sc.scheme, res.App, len(res.Trials), min, mean, res.RecoveryPercentileNS(95), max,
			dominantPhase(&res.PhaseTotals))
	}
	return nil
}

// dominantPhase names the phase carrying the largest share of the
// sweep's merged recovery time, with its percentage.
func dominantPhase(l *obs.RecLedger) string {
	total := l.Total()
	if total == 0 {
		return "-"
	}
	best := obs.RPImageLoad
	for _, p := range obs.RecPhases() {
		if l.Get(p) > l.Get(best) {
			best = p
		}
	}
	return fmt.Sprintf("%s %.0f%%", best, 100*float64(l.Get(best))/float64(total))
}
