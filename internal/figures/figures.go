// Package figures regenerates every evaluation artifact of the paper:
// Table 1 and Figures 5, 7, 10, 11, 12, 13, plus the headline recovery
// numbers. cmd/anubis-bench prints them; the root bench_test.go wraps
// them in testing.B benchmarks; EXPERIMENTS.md records the outputs next
// to the paper's values.
package figures

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"

	"anubis/internal/memctrl"
	"anubis/internal/obs"
	"anubis/internal/parallel"
	"anubis/internal/recmodel"
	"anubis/internal/sim"
	"anubis/internal/trace"
)

// RunConfig scales the simulated experiments.
type RunConfig struct {
	// MemoryBytes is the simulated capacity for performance runs (the
	// geometry is exact; storage is sparse).
	MemoryBytes uint64
	// Requests per (app, scheme) simulation.
	Requests int
	// Seed for the trace generators.
	Seed int64
	// Apps restricts the benchmark list (nil = all 11).
	Apps []string
	// CounterCacheBytes / TreeCacheBytes / MetaCacheBytes override
	// Table 1's cache sizes when nonzero (used by Figure 13).
	CounterCacheBytes int
	TreeCacheBytes    int
	MetaCacheBytes    int
	// Epoch is the bank-parallel epoch pipeline's window size in write
	// requests (memctrl.Config.EpochRequests). 0 or 1 selects the legacy
	// eager path, byte-identical to pre-epoch builds; the zero value
	// deliberately stays legacy so existing sweeps reproduce exactly.
	Epoch int
	// Shard is the intra-trial parallel engine's worker count: each
	// simulation cell precomputes its content plane (crypto, counters,
	// codecs) across this many shard workers while the timing spine
	// replays sequentially (sim.RunSharded). 0 selects the legacy
	// single-plane engine; any value >= 1 routes through the sharded
	// engine, whose simulated metrics are byte-identical at every
	// count — the shard-sweep bench gate enforces it.
	Shard int
	// Fastpath enables the hit-burst fast lane (sim.RunFast /
	// sim.RunShardedFast): steady-state full-hit requests retire in
	// closed-form batches with an exact fallback. Simulated metrics are
	// byte-identical either way — only host wall-clock changes — which
	// the -fastpath-sweep bench gate enforces. Cells with a trace probe
	// attached fall back to the stepped engine (the lane takes no
	// per-request observation).
	Fastpath bool
	// Parallel is the evaluation engine's worker count: how many
	// (scheme, app, size) simulation cells run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the legacy sequential path.
	// Results are identical for any value — see DESIGN.md § Parallel
	// evaluation.
	Parallel int
	// Ctx, when non-nil, cancels in-flight sweeps between cells.
	Ctx context.Context
	// Arenas, when non-nil, interns each (profile, seed) request stream
	// into an immutable arena shared read-only across every simulation
	// cell (and across workers), instead of re-running the trace
	// generator per cell. Streams are deterministic per (profile, seed),
	// so outputs are byte-identical either way — see DESIGN.md §9.
	// RunConfig is copied by value inside sweeps (e.g. Figure 13's
	// per-size configs), which is why this is a pointer: every copy
	// shares the same cache.
	Arenas *trace.ArenaCache
	// OnCell, when non-nil, observes every completed simulation cell.
	// It runs on worker goroutines and must be safe for concurrent use
	// (cmd/anubis-bench feeds a mutex-guarded telemetry registry).
	// Observation only: it cannot change results.
	OnCell func(res sim.Result)
	// Trace, when non-nil, records sampled probe events for every
	// simulation cell, one trace thread per cell. Tracing never alters
	// simulated timing (probes receive completed facts only), so sweep
	// outputs stay byte-identical with or without it.
	Trace *obs.Tracer
}

// pool returns the worker pool every figure sweep fans out on.
func (rc RunConfig) pool() parallel.Pool {
	return parallel.Pool{Workers: rc.Parallel, Ctx: rc.Ctx}
}

// DefaultRunConfig mirrors Table 1 but at a simulation-friendly scale:
// full 11-app suite, 40k requests each, 256 MB sparse memory.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		MemoryBytes: 256 << 20,
		Requests:    40000,
		Seed:        99,
		Arenas:      trace.NewArenaCache(),
	}
}

// QuickRunConfig is a reduced configuration for benchmarks and smoke
// tests.
func QuickRunConfig() RunConfig {
	rc := DefaultRunConfig()
	rc.Requests = 5000
	rc.Apps = []string{"mcf", "lbm", "libquantum"}
	return rc
}

func (rc RunConfig) profiles() []trace.Profile {
	all := trace.SPEC2006()
	if rc.Apps == nil {
		return all
	}
	var out []trace.Profile
	for _, name := range rc.Apps {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

func (rc RunConfig) config(s memctrl.Scheme) memctrl.Config {
	cfg := memctrl.DefaultConfig(s)
	cfg.MemoryBytes = rc.MemoryBytes
	if rc.CounterCacheBytes > 0 {
		cfg.CounterCacheBlocks = rc.CounterCacheBytes / memctrl.BlockBytes
	}
	if rc.TreeCacheBytes > 0 {
		cfg.TreeCacheBlocks = rc.TreeCacheBytes / memctrl.BlockBytes
	}
	if rc.MetaCacheBytes > 0 {
		cfg.MetaCacheBlocks = rc.MetaCacheBytes / memctrl.BlockBytes
	}
	cfg.EpochRequests = rc.Epoch
	return cfg
}

// source returns the request stream for one simulation cell: a cursor
// into the shared immutable arena when arenas are enabled, otherwise a
// fresh per-cell generator. Both produce byte-identical streams.
func (rc RunConfig) source(p trace.Profile) trace.Source {
	return rc.sourceN(p, rc.Requests)
}

// sourceN is source for a cell that consumes n requests (recovery
// trials consume more than rc.Requests; the arena must cover them).
func (rc RunConfig) sourceN(p trace.Profile, n int) trace.Source {
	if rc.Arenas != nil {
		return rc.Arenas.Get(p, rc.Seed, n).Source()
	}
	return trace.NewGenerator(p, rc.Seed)
}

// run executes one simulation cell. Each cell constructs its own
// controller and gets an independent read cursor into the shared
// per-(profile, seed) arena (or its own generator when arenas are
// disabled), so cells are fully independent — the property that lets
// the worker pool run them concurrently with bit-identical results.
func (rc RunConfig) run(f sim.Family, s memctrl.Scheme, p trace.Profile) (sim.Result, error) {
	ctrl, err := sim.NewController(f, rc.config(s))
	if err != nil {
		return sim.Result{}, err
	}
	var probe obs.Probe
	if rc.Trace != nil {
		probe = rc.Trace.Scope(fmt.Sprintf("%s/%s/%s", f, s, p.Name))
	}
	ctx := rc.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var res sim.Result
	// Label the cell for CPU/heap profiles: `go tool pprof` can then
	// slice a whole-sweep profile by app, scheme, family or engine
	// (-tagfocus/-tagshow). Labels only annotate samples — they never
	// change what runs. See README § Profiling a sweep.
	pprof.Do(ctx, pprof.Labels(
		"cell", fmt.Sprintf("%s/%s/%s", f, s, p.Name),
		"profile", p.Name,
		"scheme", s.String(),
		"family", f.String(),
		"fastpath", fmt.Sprintf("%t", rc.Fastpath),
	), func(context.Context) {
		switch {
		case rc.Shard > 0 && rc.Fastpath && probe == nil:
			res, err = sim.RunShardedFast(ctrl, rc.source(p), rc.Requests, rc.Shard)
		case rc.Shard > 0:
			res, err = sim.RunSharded(ctrl, rc.source(p), rc.Requests, rc.Shard, probe)
		case rc.Fastpath && probe == nil:
			res, err = sim.RunFast(ctrl, rc.source(p), rc.Requests)
		default:
			res, err = sim.RunObserved(ctrl, rc.source(p), rc.Requests, probe)
		}
	})
	if err == nil && rc.OnCell != nil {
		rc.OnCell(res)
	}
	return res, err
}

// NumApps reports how many application profiles the configuration runs
// (used by cmd/anubis-bench to derive cell counts for the JSON report).
func (rc RunConfig) NumApps() int { return len(rc.profiles()) }

// --- Table 1 -------------------------------------------------------------------

// Table1 renders the simulated system configuration.
func Table1(w io.Writer) {
	cfg := memctrl.DefaultConfig(memctrl.SchemeAGITPlus)
	fmt.Fprintln(w, "Table 1: Configuration of the Simulated System")
	fmt.Fprintf(w, "  %-22s %s\n", "Engine", "trace-driven secure-NVM controller model (gem5 substitute)")
	fmt.Fprintf(w, "  %-22s %d GB (geometry; sparse backing)\n", "Capacity", cfg.MemoryBytes>>30)
	fmt.Fprintf(w, "  %-22s read %d ns, write %d ns, %d banks, %d write ports\n", "PCM latencies",
		cfg.Timing.ReadNS, cfg.Timing.WriteNS, cfg.Timing.Banks, cfg.Timing.WritePorts)
	fmt.Fprintf(w, "  %-22s %d entries (ADR-protected), drain watermark %d\n", "WPQ",
		cfg.Timing.WPQEntries, cfg.Timing.DrainWatermark)
	fmt.Fprintf(w, "  %-22s %d KB, %d-way, 64 B blocks\n", "Counter cache",
		cfg.CounterCacheBlocks*memctrl.BlockBytes/1024, cfg.CounterCacheWays)
	fmt.Fprintf(w, "  %-22s %d KB, %d-way, 64 B blocks\n", "Merkle tree cache",
		cfg.TreeCacheBlocks*memctrl.BlockBytes/1024, cfg.TreeCacheWays)
	fmt.Fprintf(w, "  %-22s %d KB, %d-way (SGX family)\n", "Metadata cache",
		cfg.MetaCacheBlocks*memctrl.BlockBytes/1024, cfg.MetaCacheWays)
	fmt.Fprintf(w, "  %-22s %d KB SCT + %d KB SMT (AGIT), %d KB ST (ASIT)\n", "Shadow regions",
		cfg.CounterCacheBlocks*memctrl.BlockBytes/1024,
		cfg.TreeCacheBlocks*memctrl.BlockBytes/1024,
		cfg.MetaCacheBlocks*memctrl.BlockBytes/1024)
	fmt.Fprintf(w, "  %-22s %d (Osiris)\n", "Stop-loss limit", cfg.StopLoss)
}

// --- Figure 5 -------------------------------------------------------------------

// Fig5Row is one point of the Osiris recovery-time curve.
type Fig5Row struct {
	MemBytes uint64 `json:"mem_bytes"`
	NS       uint64 `json:"recovery_ns"`
}

// Fig5 computes Osiris whole-memory recovery time for the paper's
// capacity axis (analytic, like the paper's footnote 1).
func Fig5() []Fig5Row {
	caps := []uint64{128 << 30, 256 << 30, 512 << 30, 1 << 40, 2 << 40, 4 << 40, 8 << 40}
	rows := make([]Fig5Row, 0, len(caps))
	for _, c := range caps {
		rows = append(rows, Fig5Row{MemBytes: c, NS: recmodel.OsirisFullNS(c, 1.05)})
	}
	return rows
}

// PrintFig5 renders Figure 5.
func PrintFig5(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: Recovery Time for Different Memory Sizes (Using Osiris)")
	fmt.Fprintf(w, "  %-10s %14s %16s\n", "memory", "seconds", "human")
	for _, r := range Fig5() {
		fmt.Fprintf(w, "  %-10s %14.1f %16s\n", memName(r.MemBytes),
			recmodel.Seconds(r.NS), recmodel.FormatDuration(r.NS))
	}
}

// --- Figure 7 -------------------------------------------------------------------

// Fig7Row reports per-app counter-cache eviction cleanliness.
type Fig7Row struct {
	App        string  `json:"app"`
	CleanFrac  float64 `json:"clean_frac"`
	Evictions  uint64  `json:"evictions"`
	FirstDirty uint64  `json:"first_dirty"`
}

// Fig7 measures the fraction of clean counter-cache evictions per app
// under the write-back baseline (the observation motivating AGIT-Plus).
// Apps run concurrently on the evaluation pool; rows come back in
// profile order.
func Fig7(rc RunConfig) ([]Fig7Row, error) {
	profiles := rc.profiles()
	results, err := parallel.Map(rc.pool(), len(profiles), func(_ context.Context, i int) (sim.Result, error) {
		res, err := rc.run(sim.FamilyBonsai, memctrl.SchemeWriteBack, profiles[i])
		if err != nil {
			return sim.Result{}, fmt.Errorf("fig7 %s: %w", profiles[i].Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for i, res := range results {
		cs := res.Stats.CounterCache
		rows = append(rows, Fig7Row{
			App:        profiles[i].Name,
			CleanFrac:  res.CleanEvictionFrac(),
			Evictions:  cs.Evictions,
			FirstDirty: cs.FirstDirties,
		})
	}
	return rows, nil
}

// PrintFig7 renders Figure 7.
func PrintFig7(w io.Writer, rc RunConfig) error {
	rows, err := Fig7(rc)
	if err != nil {
		return err
	}
	PrintFig7Rows(w, rows)
	return nil
}

// PrintFig7Rows renders already-computed Figure 7 rows (used by
// cmd/anubis-bench, which also feeds the rows into its JSON report).
func PrintFig7Rows(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: Fraction of Clean Counter-Cache Evictions")
	fmt.Fprintf(w, "  %-12s %10s %12s\n", "app", "clean", "evictions")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %9.1f%% %12d\n", r.App, 100*r.CleanFrac, r.Evictions)
	}
}

// --- Figures 10 and 11 ------------------------------------------------------------

// PerfRow is one app's normalized execution times per scheme.
type PerfRow struct {
	App  string                     `json:"app"`
	Norm map[memctrl.Scheme]float64 `json:"normalized"`
}

// Fig10Schemes lists the AGIT evaluation's schemes in the paper's order.
var Fig10Schemes = []memctrl.Scheme{
	memctrl.SchemeWriteBack, memctrl.SchemeStrict, memctrl.SchemeOsiris,
	memctrl.SchemeAGITRead, memctrl.SchemeAGITPlus,
}

// Fig11Schemes lists the ASIT evaluation's schemes.
var Fig11Schemes = []memctrl.Scheme{
	memctrl.SchemeWriteBack, memctrl.SchemeStrict, memctrl.SchemeOsiris,
	memctrl.SchemeASIT,
}

// perfFigure runs every (app, scheme) pair and normalizes to write-back.
//
// All len(profiles)×len(schemes) cells fan out on the evaluation pool;
// the reduction below consumes the results in exactly the order the old
// sequential loop produced them (profile-major, scheme-minor, baseline
// first), so the output — including the floating-point accumulation of
// the averages — is identical for any worker count.
func perfFigure(rc RunConfig, f sim.Family, schemes []memctrl.Scheme) ([]PerfRow, map[memctrl.Scheme]float64, error) {
	profiles := rc.profiles()
	nS := len(schemes)
	results, err := parallel.Map(rc.pool(), len(profiles)*nS, func(_ context.Context, i int) (sim.Result, error) {
		p, s := profiles[i/nS], schemes[i%nS]
		res, err := rc.run(f, s, p)
		if err != nil {
			return sim.Result{}, fmt.Errorf("%s/%s: %w", p.Name, s, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []PerfRow
	avg := map[memctrl.Scheme]float64{}
	for pi, p := range profiles {
		base := results[pi*nS]
		row := PerfRow{App: p.Name, Norm: map[memctrl.Scheme]float64{schemes[0]: 1}}
		for si := 1; si < nS; si++ {
			row.Norm[schemes[si]] = results[pi*nS+si].Normalized(base)
		}
		rows = append(rows, row)
		for s, v := range row.Norm {
			avg[s] += v / float64(len(profiles))
		}
	}
	return rows, avg, nil
}

// Fig10 runs the AGIT performance evaluation (general tree family).
func Fig10(rc RunConfig) ([]PerfRow, map[memctrl.Scheme]float64, error) {
	return perfFigure(rc, sim.FamilyBonsai, Fig10Schemes)
}

// Fig11 runs the ASIT performance evaluation (SGX tree family).
func Fig11(rc RunConfig) ([]PerfRow, map[memctrl.Scheme]float64, error) {
	return perfFigure(rc, sim.FamilySGX, Fig11Schemes)
}

// PrintPerf renders Figure 10 or 11.
func PrintPerf(w io.Writer, title string, rows []PerfRow, avg map[memctrl.Scheme]float64, schemes []memctrl.Scheme) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %-12s", "app")
	for _, s := range schemes {
		fmt.Fprintf(w, "%12s", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s", r.App)
		for _, s := range schemes {
			fmt.Fprintf(w, "%12.3f", r.Norm[s])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-12s", "average")
	for _, s := range schemes {
		fmt.Fprintf(w, "%12.3f", avg[s])
	}
	fmt.Fprintln(w)
}

// --- Figure 12 -----------------------------------------------------------------

// Fig12Row is one point of the Anubis recovery-time curves.
type Fig12Row struct {
	CacheBytes uint64 `json:"cache_bytes"` // per-cache size (counter cache = tree cache)
	AGITNS     uint64 `json:"agit_ns"`
	ASITNS     uint64 `json:"asit_ns"`
}

// Fig12 computes Anubis recovery time versus metadata cache size
// (analytic, per §6.3.1's op accounting). The x axis grows both AGIT
// caches together; ASIT's combined metadata cache has their total size.
func Fig12() []Fig12Row {
	sizes := []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	rows := make([]Fig12Row, 0, len(sizes))
	for _, c := range sizes {
		rows = append(rows, Fig12Row{
			CacheBytes: c,
			AGITNS:     recmodel.AGITNS(c, c),
			ASITNS:     recmodel.ASITNS(2 * c),
		})
	}
	return rows
}

// PrintFig12 renders Figure 12.
func PrintFig12(w io.Writer) {
	fmt.Fprintln(w, "Figure 12: Recovery Time vs Metadata Cache Size")
	fmt.Fprintf(w, "  %-10s %14s %14s\n", "cache", "AGIT", "ASIT")
	for _, r := range Fig12() {
		fmt.Fprintf(w, "  %-10s %14s %14s\n", memName(r.CacheBytes),
			recmodel.FormatDuration(r.AGITNS), recmodel.FormatDuration(r.ASITNS))
	}
}

// MeasuredRecovery executes a real crash+recovery at the given scale and
// returns the recovery report — validating the analytic op counts with
// the actual implementation.
func MeasuredRecovery(scheme memctrl.Scheme, family sim.Family, rc RunConfig) (*memctrl.RecoveryReport, error) {
	ctrl, err := sim.NewController(family, rc.config(scheme))
	if err != nil {
		return nil, err
	}
	prof := rc.profiles()[0]
	if _, err := sim.Run(ctrl, rc.source(prof), rc.Requests); err != nil {
		return nil, err
	}
	ctrl.Crash()
	return ctrl.Recover()
}

// --- Figure 13 -----------------------------------------------------------------

// Fig13Row is one cache-size point of the sensitivity study.
type Fig13Row struct {
	CacheBytes uint64                     `json:"cache_bytes"`
	Norm       map[memctrl.Scheme]float64 `json:"normalized"` // averaged over apps, normalized to same-size write-back
}

// Fig13Schemes are the schemes whose sensitivity the paper plots.
var Fig13Schemes = []memctrl.Scheme{
	memctrl.SchemeAGITRead, memctrl.SchemeAGITPlus, memctrl.SchemeASIT,
}

// Fig13 sweeps metadata cache sizes (per-cache; ASIT uses the combined
// total) and reports each scheme's average normalized performance.
//
// This is the evaluation's biggest sweep — sizes × apps × (2 baselines
// + 3 schemes) cells — and the flagship case for the parallel engine:
// every cell fans out, and the per-(size, app) normalization plus the
// per-size averaging happen afterwards in the legacy accumulation
// order, keeping the output independent of the worker count.
func Fig13(rc RunConfig) ([]Fig13Row, error) {
	sizes := []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	type cell struct {
		fam    sim.Family
		scheme memctrl.Scheme
	}
	// Per (size, profile): the two write-back baselines first, then the
	// plotted schemes in Fig13Schemes order.
	cells := []cell{
		{sim.FamilyBonsai, memctrl.SchemeWriteBack},
		{sim.FamilySGX, memctrl.SchemeWriteBack},
	}
	for _, s := range Fig13Schemes {
		fam := sim.FamilyBonsai
		if s == memctrl.SchemeASIT {
			fam = sim.FamilySGX
		}
		cells = append(cells, cell{fam, s})
	}
	profiles := rc.profiles()
	nP, nC := len(profiles), len(cells)
	withCaches := func(size uint64) RunConfig {
		cc := rc
		cc.CounterCacheBytes = int(size)
		cc.TreeCacheBytes = int(size)
		cc.MetaCacheBytes = int(2 * size)
		return cc
	}
	results, err := parallel.Map(rc.pool(), len(sizes)*nP*nC, func(_ context.Context, i int) (sim.Result, error) {
		si, rem := i/(nP*nC), i%(nP*nC)
		pi, ci := rem/nC, rem%nC
		cc := withCaches(sizes[si])
		res, err := cc.run(cells[ci].fam, cells[ci].scheme, profiles[pi])
		if err != nil {
			return sim.Result{}, fmt.Errorf("fig13 %s/%s/%s: %w",
				memName(sizes[si]), profiles[pi].Name, cells[ci].scheme, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig13Row
	for si, size := range sizes {
		row := Fig13Row{CacheBytes: size, Norm: map[memctrl.Scheme]float64{}}
		for pi := range profiles {
			at := func(ci int) sim.Result { return results[si*nP*nC+pi*nC+ci] }
			baseB, baseS := at(0), at(1)
			for k, s := range Fig13Schemes {
				base := baseB
				if s == memctrl.SchemeASIT {
					base = baseS
				}
				row.Norm[s] += at(2+k).Normalized(base) / float64(nP)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig13 renders Figure 13.
func PrintFig13(w io.Writer, rc RunConfig) error {
	rows, err := Fig13(rc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 13: Performance Sensitivity to Cache Size (normalized to write-back)")
	fmt.Fprintf(w, "  %-10s", "cache")
	for _, s := range Fig13Schemes {
		fmt.Fprintf(w, "%12s", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s", memName(r.CacheBytes))
		for _, s := range Fig13Schemes {
			fmt.Fprintf(w, "%12.3f", r.Norm[s])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- headline -------------------------------------------------------------------

// PrintHeadline renders the abstract's headline comparison.
func PrintHeadline(w io.Writer) {
	osiris := recmodel.OsirisFullNS(8<<40, 1.05)
	agit := recmodel.AGITNS(256<<10, 256<<10)
	asit := recmodel.ASITNS(512 << 10)
	fmt.Fprintln(w, "Headline (abstract): recovery time, 8 TB NVM, Table 1 caches")
	fmt.Fprintf(w, "  %-28s %s\n", "Osiris (full rebuild):", recmodel.FormatDuration(osiris))
	fmt.Fprintf(w, "  %-28s %s\n", "Anubis AGIT:", recmodel.FormatDuration(agit))
	fmt.Fprintf(w, "  %-28s %s\n", "Anubis ASIT:", recmodel.FormatDuration(asit))
	fmt.Fprintf(w, "  %-28s %.1ex\n", "AGIT speedup:", recmodel.Speedup(osiris, agit))
}

func memName(b uint64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%dTB", b>>40)
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// SortSchemes returns schemes in a stable display order.
func SortSchemes(m map[memctrl.Scheme]float64) []memctrl.Scheme {
	out := make([]memctrl.Scheme, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
