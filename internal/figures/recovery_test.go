package figures

import (
	"bytes"
	"reflect"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/sim"
)

// sweepQuick is a small but non-trivial sweep configuration: enough
// warm-up to dirty the caches and shadow tables, several crash points,
// and a parallel pool so the fork path's concurrency is exercised.
func sweepQuick(scheme memctrl.Scheme, family sim.Family, cold bool) RecoverySweepConfig {
	rc := QuickRunConfig()
	rc.MemoryBytes = 32 << 20
	rc.Requests = 2500
	rc.Parallel = 4
	return RecoverySweepConfig{
		Run:           rc,
		Scheme:        scheme,
		Family:        family,
		App:           "libquantum",
		Trials:        6,
		ExtraPerTrial: 150,
		ColdStart:     cold,
	}
}

// TestRecoverySweepForkEqualsCold is the harness-level golden
// equivalence check promised in the RecoverySweep doc comment: every
// trial of a forked-from-warm sweep — measurement-window results,
// recovery reports, and merged latency histograms — must be identical
// to the cold-start sweep that re-fills a fresh controller per trial.
func TestRecoverySweepForkEqualsCold(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme memctrl.Scheme
		family sim.Family
	}{
		{"agit-plus", memctrl.SchemeAGITPlus, sim.FamilyBonsai},
		{"asit", memctrl.SchemeASIT, sim.FamilySGX},
	} {
		t.Run(tc.name, func(t *testing.T) {
			forked, err := RecoverySweep(sweepQuick(tc.scheme, tc.family, false))
			if err != nil {
				t.Fatal(err)
			}
			cold, err := RecoverySweep(sweepQuick(tc.scheme, tc.family, true))
			if err != nil {
				t.Fatal(err)
			}
			if len(forked.Trials) != len(cold.Trials) {
				t.Fatalf("trial counts differ: %d vs %d", len(forked.Trials), len(cold.Trials))
			}
			for i := range forked.Trials {
				if !reflect.DeepEqual(forked.Trials[i], cold.Trials[i]) {
					t.Errorf("trial %d diverged\nforked: %+v\ncold:   %+v",
						i, forked.Trials[i], cold.Trials[i])
				}
			}
			if !reflect.DeepEqual(forked.ReadLat, cold.ReadLat) {
				t.Error("merged read-latency histograms diverged")
			}
			if !reflect.DeepEqual(forked.WriteLat, cold.WriteLat) {
				t.Error("merged write-latency histograms diverged")
			}
		})
	}
}

// TestRecoverySweepDeterministicAcrossWorkers pins the sweep output to
// the worker count: 1 worker (sequential) and many workers must agree.
func TestRecoverySweepDeterministicAcrossWorkers(t *testing.T) {
	base := sweepQuick(memctrl.SchemeAGITPlus, sim.FamilyBonsai, false)
	base.Run.Parallel = 1
	seq, err := RecoverySweep(base)
	if err != nil {
		t.Fatal(err)
	}
	par := sweepQuick(memctrl.SchemeAGITPlus, sim.FamilyBonsai, false)
	par.Run.Parallel = 8
	got, err := RecoverySweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Fatal("sweep output depends on worker count")
	}
}

// TestRecoverySweepShape sanity-checks aggregation: trials carry
// growing crash windows, recovery times are positive, and the
// percentile/mean helpers stay within [min, max].
func TestRecoverySweepShape(t *testing.T) {
	res, err := RecoverySweep(sweepQuick(memctrl.SchemeASIT, sim.FamilySGX, false))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trials {
		if want := (i + 1) * 150; tr.Extra != want {
			t.Fatalf("trial %d extra = %d, want %d", i, tr.Extra, want)
		}
		if tr.Report.ModeledNS() == 0 {
			t.Fatalf("trial %d modeled recovery time is zero", i)
		}
	}
	min, mean, max := res.ModeledRecoveryNS()
	if min == 0 || min > mean || mean > max {
		t.Fatalf("min/mean/max not ordered: %d/%d/%d", min, mean, max)
	}
	if p95 := res.RecoveryPercentileNS(95); p95 < min || p95 > max {
		t.Fatalf("p95 %d outside [min=%d, max=%d]", p95, min, max)
	}
	if res.ReadLat.Count == 0 || res.WriteLat.Count == 0 {
		t.Fatal("merged histograms are empty")
	}
}

// TestPrintRecoverySweepRuns smoke-tests the CLI-facing renderer.
func TestPrintRecoverySweepRuns(t *testing.T) {
	rc := QuickRunConfig()
	rc.MemoryBytes = 32 << 20
	rc.Requests = 1500
	rc.Apps = []string{"libquantum"}
	var buf bytes.Buffer
	if err := PrintRecoverySweep(&buf, rc, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"agit-plus", "asit", "Recovery-time distribution"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// benchSweep is the fork-vs-cold A/B shape at benchmark scale: a long
// warm fill with crash points scattered over a short post-warm window,
// run sequentially so the ratio reflects pure work, not pool effects.
func benchSweep(b *testing.B, cold bool) {
	rc := QuickRunConfig()
	rc.MemoryBytes = 32 << 20
	rc.Requests = 20000
	rc.Parallel = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := RecoverySweep(RecoverySweepConfig{
			Run:           rc,
			Scheme:        memctrl.SchemeAGITPlus,
			Family:        sim.FamilyBonsai,
			App:           "libquantum",
			Trials:        20,
			ExtraPerTrial: 40,
			ColdStart:     cold,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverySweepForked measures the one-fill-N-forks sweep.
func BenchmarkRecoverySweepForked(b *testing.B) { benchSweep(b, false) }

// BenchmarkRecoverySweepCold measures the per-trial re-fill baseline.
func BenchmarkRecoverySweepCold(b *testing.B) { benchSweep(b, true) }

// TestFigureSweepArenaByteIdentity asserts the satellite contract that
// interning traces into shared arenas does not change a single output
// bit: Figure 7 and Figure 10 rows computed with Arenas enabled match
// the generator-per-cell path exactly at the default seed.
func TestFigureSweepArenaByteIdentity(t *testing.T) {
	with := QuickRunConfig() // Arenas enabled by default
	without := QuickRunConfig()
	without.Arenas = nil

	r7a, err := Fig7(with)
	if err != nil {
		t.Fatal(err)
	}
	r7b, err := Fig7(without)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r7a, r7b) {
		t.Fatal("Fig7 rows differ between arena and generator paths")
	}

	r10a, avgA, err := Fig10(with)
	if err != nil {
		t.Fatal(err)
	}
	r10b, avgB, err := Fig10(without)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r10a, r10b) {
		t.Fatal("Fig10 rows differ between arena and generator paths")
	}
	if !reflect.DeepEqual(avgA, avgB) {
		t.Fatal("Fig10 averages differ between arena and generator paths")
	}
}
