package figures

import (
	"context"
	"fmt"
	"io"

	"anubis/internal/memctrl"
	"anubis/internal/nvm"
	"anubis/internal/parallel"
	"anubis/internal/recmodel"
	"anubis/internal/sim"
	"anubis/internal/trace"
)

// This file contains ablations of the design choices DESIGN.md calls
// out — experiments the paper motivates but does not plot:
//
//   - stop-loss limit sweep (the Osiris run-time/recovery-time knob),
//   - ECC-trial vs phase-bits counter recovery (the §2.4 alternatives),
//   - write endurance per scheme (the paper's lifetime argument:
//     "[strict persistence] causes at least an additional ten writes
//     per memory write operation, which can significantly reduce the
//     lifetime of NVMs", §6.2).

// StopLossRow is one point of the stop-loss sweep.
type StopLossRow struct {
	StopLoss       int     `json:"stop_loss"`
	Normalized     float64 `json:"normalized"`       // exec time vs write-back
	StopLossWrites uint64  `json:"stop_loss_writes"` // extra counter persists at run time
	RecoveryCrypto uint64  `json:"recovery_crypto"`  // decrypt+check trials during recovery
}

// AblationStopLoss sweeps the Osiris stop-loss limit on a write-heavy
// workload, exposing the run-time-cost vs recovery-trials trade-off.
// Each stop-loss point is one independent cell (baseline + Osiris run +
// reduced-scale crash/recovery) and the points run concurrently.
func AblationStopLoss(rc RunConfig) ([]StopLossRow, error) {
	prof, _ := trace.ByName("libquantum")
	limits := []int{1, 2, 4, 8, 16}
	return parallel.Map(rc.pool(), len(limits), func(_ context.Context, i int) (StopLossRow, error) {
		sl := limits[i]
		cfg := rc.config(memctrl.SchemeWriteBack)
		base, err := runWith(cfg, prof, rc)
		if err != nil {
			return StopLossRow{}, err
		}
		cfg = rc.config(memctrl.SchemeOsiris)
		cfg.StopLoss = sl
		res, err := runWith(cfg, prof, rc)
		if err != nil {
			return StopLossRow{}, err
		}
		// Measure recovery trials at a reduced scale.
		rep, err := miniRecovery(cfg, prof, rc)
		if err != nil {
			return StopLossRow{}, err
		}
		return StopLossRow{
			StopLoss:       sl,
			Normalized:     res.Normalized(base),
			StopLossWrites: res.Stats.StopLossWrites,
			RecoveryCrypto: rep.CryptoOps,
		}, nil
	})
}

// miniRecovery runs a reduced-scale workload on a fresh Bonsai
// controller, crashes it, and returns the recovery report. The warm-up,
// crash, and recovery are inherently sequential within one cell; the
// warm-up stream comes from the shared arena (scaled profiles have
// their own arena key, so all stop-loss/backend/triad points share one
// materialization).
func miniRecovery(cfg memctrl.Config, prof trace.Profile, rc RunConfig) (*memctrl.RecoveryReport, error) {
	mcfg := cfg
	mcfg.MemoryBytes = 16 << 20
	ctrl, err := memctrl.NewBonsai(mcfg)
	if err != nil {
		return nil, err
	}
	if _, err := sim.Run(ctrl, rc.sourceN(prof.Scaled(mcfg.MemoryBytes/64), 3000), 3000); err != nil {
		return nil, err
	}
	ctrl.Crash()
	return ctrl.Recover()
}

func runWith(cfg memctrl.Config, prof trace.Profile, rc RunConfig) (sim.Result, error) {
	ctrl, err := memctrl.NewBonsai(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(ctrl, rc.source(prof), rc.Requests)
}

// PrintAblationStopLoss renders the sweep.
func PrintAblationStopLoss(w io.Writer, rc RunConfig) error {
	rows, err := AblationStopLoss(rc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: Osiris stop-loss limit (libquantum)")
	fmt.Fprintf(w, "  %-10s %12s %16s %16s\n", "stop-loss", "normalized", "extra persists", "recovery trials")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10d %12.3f %16d %16d\n", r.StopLoss, r.Normalized, r.StopLossWrites, r.RecoveryCrypto)
	}
	return nil
}

// BackendRow compares the two counter-recovery backends.
type BackendRow struct {
	Backend        memctrl.CounterRecovery `json:"backend"`
	Normalized     float64                 `json:"normalized"`
	StopLossWrites uint64                  `json:"stop_loss_writes"`
	RecoveryOps    uint64                  `json:"recovery_ops"`
}

// AblationRecoveryBackend compares ECC-trial recovery (Osiris proper)
// against phase-bit recovery (§2.4's data-bus extension) under the
// AGIT-Plus scheme.
func AblationRecoveryBackend(rc RunConfig) ([]BackendRow, error) {
	prof, _ := trace.ByName("libquantum")
	base, err := runWith(rc.config(memctrl.SchemeWriteBack), prof, rc)
	if err != nil {
		return nil, err
	}
	backends := []memctrl.CounterRecovery{memctrl.RecoveryECC, memctrl.RecoveryPhase}
	return parallel.Map(rc.pool(), len(backends), func(_ context.Context, i int) (BackendRow, error) {
		backend := backends[i]
		cfg := rc.config(memctrl.SchemeAGITPlus)
		cfg.Recovery = backend
		res, err := runWith(cfg, prof, rc)
		if err != nil {
			return BackendRow{}, err
		}
		rep, err := miniRecovery(cfg, prof, rc)
		if err != nil {
			return BackendRow{}, err
		}
		return BackendRow{
			Backend:        backend,
			Normalized:     res.Normalized(base),
			StopLossWrites: res.Stats.StopLossWrites,
			RecoveryOps:    rep.FetchOps + rep.CryptoOps,
		}, nil
	})
}

// PrintAblationRecoveryBackend renders the comparison.
func PrintAblationRecoveryBackend(w io.Writer, rc RunConfig) error {
	rows, err := AblationRecoveryBackend(rc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: counter-recovery backend (AGIT-Plus, libquantum)")
	fmt.Fprintf(w, "  %-8s %12s %16s %14s\n", "backend", "normalized", "extra persists", "recovery ops")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %12.3f %16d %14d\n", r.Backend, r.Normalized, r.StopLossWrites, r.RecoveryOps)
	}
	return nil
}

// EnduranceRow is one scheme's write-endurance footprint.
type EnduranceRow struct {
	Scheme           memctrl.Scheme `json:"scheme"`
	Family           sim.Family     `json:"family"`
	WearLeveled      bool           `json:"wear_leveled"`
	WritesPerRequest float64        `json:"writes_per_request"` // NVM writes per CPU write request
	HottestWear      uint64         `json:"hottest_wear"`       // writes absorbed by the hottest block
	LifetimeFactor   float64        `json:"lifetime_factor"`    // write-back hottest wear / this hottest wear
}

// AblationEndurance measures NVM write amplification and hot-spot wear
// per scheme on a write-heavy workload: the paper's lifetime argument
// quantified. LifetimeFactor < 1 means the scheme wears the device out
// faster than plain write-back.
func AblationEndurance(rc RunConfig) ([]EnduranceRow, error) {
	prof, _ := trace.ByName("libquantum")
	type entry struct {
		s    memctrl.Scheme
		f    sim.Family
		wear int // Start-Gap period; 0 = no leveling
	}
	entries := []entry{
		{memctrl.SchemeWriteBack, sim.FamilyBonsai, 0},
		{memctrl.SchemeOsiris, sim.FamilyBonsai, 0},
		{memctrl.SchemeAGITRead, sim.FamilyBonsai, 0},
		{memctrl.SchemeAGITPlus, sim.FamilyBonsai, 0},
		{memctrl.SchemeAGITPlus, sim.FamilyBonsai, 64},
		{memctrl.SchemeStrict, sim.FamilyBonsai, 0},
		{memctrl.SchemeASIT, sim.FamilySGX, 0},
	}
	// Every entry's simulation is independent; only the lifetime factor
	// references entry 0's wear, so the runs fan out and the factors are
	// computed in a sequential reduction afterwards.
	type measured struct {
		res  sim.Result
		wear uint64
	}
	results, err := parallel.Map(rc.pool(), len(entries), func(_ context.Context, i int) (measured, error) {
		e := entries[i]
		cfg := rc.config(e.s)
		cfg.WearPeriod = e.wear
		ctrl, err := sim.NewController(e.f, cfg)
		if err != nil {
			return measured{}, err
		}
		res, err := sim.Run(ctrl, rc.source(prof), rc.Requests)
		if err != nil {
			return measured{}, err
		}
		_, _, wear := ctrl.Device().MaxWearAll()
		return measured{res: res, wear: wear}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []EnduranceRow
	baseWear := results[0].wear
	for i, e := range entries {
		m := results[i]
		lf := 0.0
		if m.wear > 0 {
			lf = float64(baseWear) / float64(m.wear)
		}
		rows = append(rows, EnduranceRow{
			Scheme:           e.s,
			Family:           e.f,
			WearLeveled:      e.wear > 0,
			WritesPerRequest: m.res.WritesPerRequest(),
			HottestWear:      m.wear,
			LifetimeFactor:   lf,
		})
	}
	return rows, nil
}

// PrintAblationEndurance renders the endurance table.
func PrintAblationEndurance(w io.Writer, rc RunConfig) error {
	rows, err := AblationEndurance(rc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: NVM write endurance (libquantum; lifetime relative to write-back)")
	fmt.Fprintf(w, "  %-15s %-8s %14s %14s %12s\n", "scheme", "tree", "writes/req", "hottest wear", "lifetime ×")
	for _, r := range rows {
		name := r.Scheme.String()
		if r.WearLeveled {
			name += "+wl"
		}
		fmt.Fprintf(w, "  %-15s %-8s %14.2f %14d %12.3f\n",
			name, r.Family, r.WritesPerRequest, r.HottestWear, r.LifetimeFactor)
	}
	return nil
}

// wearRegionName is kept for test introspection.
func wearRegionName(r nvm.Region) string { return r.String() }

// TriadRow is one point of the Triad-NVM resilience sweep.
type TriadRow struct {
	Levels       int     `json:"levels"`
	Normalized   float64 `json:"normalized"`     // exec time vs write-back
	Recovery8TBS float64 `json:"recovery_8tb_s"` // analytic recovery seconds at 8 TB
	MeasuredOps  uint64  `json:"measured_ops"`   // executed recovery ops at test scale
}

// AblationTriad sweeps the Triad-NVM persisted-levels knob, exposing
// the resilience/recovery/performance trade-off the paper contrasts
// Anubis against (§7): each persisted level costs run-time writes and
// divides the remaining rebuild work by the tree arity — but recovery
// stays memory-bound at every setting.
func AblationTriad(rc RunConfig) ([]TriadRow, error) {
	prof, _ := trace.ByName("libquantum")
	base, err := runWith(rc.config(memctrl.SchemeWriteBack), prof, rc)
	if err != nil {
		return nil, err
	}
	allLevels := []int{0, 1, 2, 3}
	return parallel.Map(rc.pool(), len(allLevels), func(_ context.Context, i int) (TriadRow, error) {
		levels := allLevels[i]
		cfg := rc.config(memctrl.SchemeTriad)
		cfg.TriadLevels = levels
		res, err := runWith(cfg, prof, rc)
		if err != nil {
			return TriadRow{}, err
		}
		rep, err := miniRecovery(cfg, prof, rc)
		if err != nil {
			return TriadRow{}, err
		}
		return TriadRow{
			Levels:       levels,
			Normalized:   res.Normalized(base),
			Recovery8TBS: recmodel.Seconds(recmodel.TriadNS(8<<40, levels)),
			MeasuredOps:  rep.FetchOps + rep.CryptoOps,
		}, nil
	})
}

// PrintAblationTriad renders the sweep, with the Anubis row for contrast.
func PrintAblationTriad(w io.Writer, rc RunConfig) error {
	rows, err := AblationTriad(rc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: Triad-NVM persisted levels (libquantum; recovery at 8 TB, analytic)")
	fmt.Fprintf(w, "  %-10s %12s %16s %14s\n", "levels", "normalized", "recovery@8TB", "measured ops")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10d %12.3f %16s %14d\n",
			r.Levels, r.Normalized, recmodel.FormatDuration(uint64(r.Recovery8TBS*1e9)), r.MeasuredOps)
	}
	fmt.Fprintf(w, "  %-10s %12s %16s\n", "anubis", "1.036 (avg)",
		recmodel.FormatDuration(recmodel.AGITNS(256<<10, 256<<10)))
	return nil
}
