package figures

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestFig10ParallelDeterminism is the evaluation engine's core
// guarantee: Fig10 rows and averages with 8 workers are exactly equal
// (reflect.DeepEqual, i.e. bit-for-bit on the float64s) to the
// sequential single-worker run.
func TestFig10ParallelDeterminism(t *testing.T) {
	rc := QuickRunConfig()
	rc.Requests = 1500

	rc.Parallel = 1
	rows1, avg1, err := Fig10(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Parallel = 8
	rows8, avg8, err := Fig10(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows8) {
		t.Fatalf("Fig10 rows differ between -parallel 1 and -parallel 8:\nseq: %+v\npar: %+v", rows1, rows8)
	}
	if !reflect.DeepEqual(avg1, avg8) {
		t.Fatalf("Fig10 averages differ between -parallel 1 and -parallel 8:\nseq: %v\npar: %v", avg1, avg8)
	}
}

// TestFig7AndFig13ParallelDeterminism extends the guarantee to the
// single-scheme sweep (Fig7) and the cache-size sweep (Fig13).
func TestFig7AndFig13ParallelDeterminism(t *testing.T) {
	rc := QuickRunConfig()
	rc.Requests = 1200
	rc.Apps = []string{"mcf", "libquantum"}

	rc.Parallel = 1
	f7seq, err := Fig7(rc)
	if err != nil {
		t.Fatal(err)
	}
	f13seq, err := Fig13(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Parallel = 8
	f7par, err := Fig7(rc)
	if err != nil {
		t.Fatal(err)
	}
	f13par, err := Fig13(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f7seq, f7par) {
		t.Fatal("Fig7 rows differ between worker counts")
	}
	if !reflect.DeepEqual(f13seq, f13par) {
		t.Fatal("Fig13 rows differ between worker counts")
	}
}

// TestAblationParallelDeterminism pins the ablation sweeps to their
// sequential results as well.
func TestAblationParallelDeterminism(t *testing.T) {
	rc := QuickRunConfig()
	rc.Requests = 1200

	rc.Parallel = 1
	seq, err := AblationEndurance(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Parallel = 6
	par, err := AblationEndurance(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("endurance rows differ:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestSweepCancellation checks that a figure sweep aborts promptly when
// its context is cancelled: no hang, and the context's error surfaces.
func TestSweepCancellation(t *testing.T) {
	rc := DefaultRunConfig() // full 11-app suite: plenty of cells to skip
	rc.Requests = 2000
	rc.Parallel = 2
	ctx, cancel := context.WithCancel(context.Background())
	rc.Ctx = ctx

	done := make(chan error, 1)
	go func() {
		_, _, err := Fig10(rc)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
}
