package figures

import (
	"bytes"
	"strings"
	"testing"

	"anubis/internal/memctrl"
	"anubis/internal/recmodel"
	"anubis/internal/sim"
)

func TestFig5Shape(t *testing.T) {
	rows := Fig5()
	if len(rows) != 7 {
		t.Fatalf("fig5 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NS <= rows[i-1].NS {
			t.Fatal("fig5 not monotonically increasing with memory size")
		}
	}
	last := rows[len(rows)-1]
	if last.MemBytes != 8<<40 {
		t.Fatalf("last capacity = %d, want 8TB", last.MemBytes)
	}
	if s := recmodel.Seconds(last.NS); s < 25000 || s > 31000 {
		t.Fatalf("8TB point = %.0f s, paper reports ≈28193 s", s)
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	rc := QuickRunConfig()
	rows, err := Fig7(rc)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]float64{}
	for _, r := range rows {
		byApp[r.App] = r.CleanFrac
	}
	// Paper Figure 7: most applications evict a large number of clean
	// blocks; read-intensive mcf must be the cleanest of the trio.
	if byApp["mcf"] <= byApp["lbm"] {
		t.Fatalf("mcf clean frac (%.2f) not above lbm (%.2f)", byApp["mcf"], byApp["lbm"])
	}
}

func TestFig10QuickShape(t *testing.T) {
	rows, avg, err := Fig10(QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Figure 10 ordering: strict ≫ agit-read ≥ agit-plus ≥ osiris ≥ 1.
	if avg[memctrl.SchemeStrict] < 1.3 {
		t.Fatalf("strict avg %.3f too low", avg[memctrl.SchemeStrict])
	}
	if avg[memctrl.SchemeAGITPlus] > avg[memctrl.SchemeAGITRead]+0.005 {
		t.Fatalf("agit-plus (%.3f) above agit-read (%.3f)",
			avg[memctrl.SchemeAGITPlus], avg[memctrl.SchemeAGITRead])
	}
	if avg[memctrl.SchemeStrict] <= avg[memctrl.SchemeAGITRead] {
		t.Fatal("strict not the most expensive scheme")
	}
	if avg[memctrl.SchemeOsiris] < 0.99 {
		t.Fatalf("osiris avg %.3f below baseline", avg[memctrl.SchemeOsiris])
	}
}

func TestFig11QuickShape(t *testing.T) {
	_, avg, err := Fig11(QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if avg[memctrl.SchemeStrict] <= avg[memctrl.SchemeASIT] {
		t.Fatalf("strict (%.3f) not above ASIT (%.3f)",
			avg[memctrl.SchemeStrict], avg[memctrl.SchemeASIT])
	}
	if avg[memctrl.SchemeASIT] < 1.0 {
		t.Fatalf("ASIT avg %.3f below baseline", avg[memctrl.SchemeASIT])
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.ASITNS >= r.AGITNS {
			t.Fatalf("row %d: ASIT (%d) not below AGIT (%d)", i, r.ASITNS, r.AGITNS)
		}
		if i > 0 && (r.AGITNS <= rows[i-1].AGITNS || r.ASITNS <= rows[i-1].ASITNS) {
			t.Fatal("recovery time not increasing with cache size")
		}
	}
	// Paper anchors: 0.03 s at 256 KB, 0.48 s at 4 MB for AGIT.
	if s := recmodel.Seconds(rows[0].AGITNS); s < 0.025 || s > 0.035 {
		t.Fatalf("AGIT@256KB = %.4f s, want ≈0.03", s)
	}
	if s := recmodel.Seconds(rows[4].AGITNS); s < 0.42 || s > 0.53 {
		t.Fatalf("AGIT@4MB = %.4f s, want ≈0.48", s)
	}
}

func TestMeasuredRecoveryAGITBelowOsiris(t *testing.T) {
	rc := QuickRunConfig()
	rc.MemoryBytes = 16 << 20
	rc.Requests = 3000
	agit, err := MeasuredRecovery(memctrl.SchemeAGITPlus, sim.FamilyBonsai, rc)
	if err != nil {
		t.Fatal(err)
	}
	osiris, err := MeasuredRecovery(memctrl.SchemeOsiris, sim.FamilyBonsai, rc)
	if err != nil {
		t.Fatal(err)
	}
	if agit.ModeledNS() >= osiris.ModeledNS() {
		t.Fatalf("measured AGIT recovery (%d ns) not below Osiris (%d ns)",
			agit.ModeledNS(), osiris.ModeledNS())
	}
}

func TestMeasuredRecoveryASIT(t *testing.T) {
	rc := QuickRunConfig()
	rc.MemoryBytes = 16 << 20
	rc.Requests = 3000
	rep, err := MeasuredRecovery(memctrl.SchemeASIT, sim.FamilySGX, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesScanned == 0 {
		t.Fatal("no shadow entries scanned")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	PrintFig5(&buf)
	PrintFig12(&buf)
	PrintHeadline(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 5", "Figure 12", "Headline", "8TB", "Osiris"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestPrintFig7AndPerf(t *testing.T) {
	rc := QuickRunConfig()
	rc.Requests = 1500
	var buf bytes.Buffer
	if err := PrintFig7(&buf, rc); err != nil {
		t.Fatal(err)
	}
	rows, avg, err := Fig10(rc)
	if err != nil {
		t.Fatal(err)
	}
	PrintPerf(&buf, "Figure 10", rows, avg, Fig10Schemes)
	if !strings.Contains(buf.String(), "average") {
		t.Fatal("perf table missing average row")
	}
}

func TestFig13Shape(t *testing.T) {
	rc := QuickRunConfig()
	rc.Requests = 1500
	rc.Apps = []string{"libquantum"}
	rows, err := Fig13(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, s := range Fig13Schemes {
			if r.Norm[s] < 0.9 {
				t.Fatalf("cache %d scheme %v: normalized %.3f implausible", r.CacheBytes, s, r.Norm[s])
			}
		}
	}
	var buf bytes.Buffer
	if err := PrintFig13(&buf, rc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatal("missing title")
	}
}

func TestMemName(t *testing.T) {
	cases := map[uint64]string{
		8 << 40:   "8TB",
		16 << 30:  "16GB",
		4 << 20:   "4MB",
		256 << 10: "256KB",
	}
	for b, want := range cases {
		if got := memName(b); got != want {
			t.Fatalf("memName(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestRunConfigProfiles(t *testing.T) {
	rc := DefaultRunConfig()
	if len(rc.profiles()) != 11 {
		t.Fatalf("default profiles = %d", len(rc.profiles()))
	}
	rc.Apps = []string{"mcf", "bogus"}
	if len(rc.profiles()) != 1 {
		t.Fatal("unknown app names must be skipped")
	}
}

func TestSortSchemes(t *testing.T) {
	m := map[memctrl.Scheme]float64{memctrl.SchemeASIT: 1, memctrl.SchemeWriteBack: 1}
	got := SortSchemes(m)
	if len(got) != 2 || got[0] != memctrl.SchemeWriteBack {
		t.Fatalf("SortSchemes = %v", got)
	}
}
