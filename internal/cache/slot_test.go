package cache

import "testing"

func TestInsertAtSlotBasic(t *testing.T) {
	c := New(16, 4)
	// Determine the set of a key, then place it into a specific way.
	set := c.setOf(77)
	slot := set*c.Ways() + 2
	l := c.InsertAtSlot(slot, 77, blockOf(9))
	if l.Slot() != slot {
		t.Fatalf("slot = %d, want %d", l.Slot(), slot)
	}
	got, ok := c.Lookup(77)
	if !ok || got.Data != blockOf(9) {
		t.Fatal("lookup after InsertAtSlot failed")
	}
}

func TestInsertAtSlotPanics(t *testing.T) {
	c := New(16, 4)
	set := c.setOf(77)
	slot := set*c.Ways() + 1

	// Occupied slot.
	c.InsertAtSlot(slot, 77, blockOf(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("occupied slot accepted")
			}
		}()
		// Key 77+16*k maps to a different set in general; use a key of
		// the same set by probing.
		var other uint64
		for k := uint64(0); ; k++ {
			if k != 77 && c.setOf(k) == set {
				other = k
				break
			}
		}
		c.InsertAtSlot(slot, other, blockOf(2))
	}()

	// Resident key.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("resident key accepted")
			}
		}()
		c.InsertAtSlot(slot+1, 77, blockOf(3))
	}()

	// Set mismatch.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("set mismatch accepted")
			}
		}()
		var wrong uint64
		for k := uint64(0); ; k++ {
			if c.setOf(k) != set {
				wrong = k
				break
			}
		}
		c.InsertAtSlot(slot+2, wrong, blockOf(4))
	}()

	// Out of range.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range slot accepted")
			}
		}()
		c.InsertAtSlot(999, 5, blockOf(5))
	}()
}

func TestInsertAtSlotIsEvictableLater(t *testing.T) {
	c := New(4, 4) // single set
	for k := uint64(0); k < 4; k++ {
		c.InsertAtSlot(int(k), k, blockOf(byte(k)))
	}
	// Normal insert must evict the LRU of those.
	_, v := c.Insert(99, blockOf(9))
	if v == nil {
		t.Fatal("no eviction from full set")
	}
	if v.Key != 0 {
		t.Fatalf("victim = %d, want 0 (oldest)", v.Key)
	}
}
