package cache

import (
	"testing"
	"testing/quick"
)

func blockOf(b byte) (d [BlockBytes]byte) {
	for i := range d {
		d[i] = b
	}
	return d
}

func TestNewGeometry(t *testing.T) {
	c := New(64, 4)
	if c.NumSlots() != 64 || c.Sets() != 16 || c.Ways() != 4 {
		t.Fatalf("geometry = %d slots / %d sets / %d ways", c.NumSlots(), c.Sets(), c.Ways())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, g := range [][2]int{{0, 4}, {5, 4}, {12, 4}, {8, 0}, {-8, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", g[0], g[1])
				}
			}()
			New(g[0], g[1])
		}()
	}
}

func TestInsertLookup(t *testing.T) {
	c := New(16, 4)
	l, v := c.Insert(100, blockOf(7))
	if v != nil {
		t.Fatal("eviction from an empty cache")
	}
	if l.Dirty {
		t.Fatal("fresh insert is dirty")
	}
	got, ok := c.Lookup(100)
	if !ok || got.Data != blockOf(7) {
		t.Fatal("lookup after insert failed")
	}
	if _, ok := c.Lookup(101); ok {
		t.Fatal("lookup of absent key succeeded")
	}
}

func TestStableSlot(t *testing.T) {
	c := New(16, 4)
	l, _ := c.Insert(55, blockOf(1))
	slot := l.Slot()
	// Insert other keys and re-lookup; slot must not move.
	for k := uint64(0); k < 10; k++ {
		if k != 55 {
			c.Insert(k+1000, blockOf(byte(k)))
		}
	}
	got, ok := c.Peek(55)
	if !ok {
		// May have been evicted depending on set mapping; re-insert and re-check.
		l2, _ := c.Insert(55, blockOf(1))
		got = l2
	}
	_ = slot
	if got.Slot() < 0 || got.Slot() >= c.NumSlots() {
		t.Fatalf("slot %d out of range", got.Slot())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-per-set scenario: fill one set, touch the first key,
	// insert one more; the untouched key must be the victim.
	c := New(4, 4) // single set
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, blockOf(byte(k)))
	}
	c.Lookup(0) // make key 0 most recently used
	_, v := c.Insert(99, blockOf(9))
	if v == nil {
		t.Fatal("no eviction from a full set")
	}
	if v.Key == 0 {
		t.Fatal("LRU evicted the most recently used line")
	}
	if v.Key != 1 {
		t.Fatalf("victim = %d, want 1 (LRU)", v.Key)
	}
}

func TestEvictionCleanDirtyAccounting(t *testing.T) {
	c := New(4, 4)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, blockOf(byte(k)))
	}
	c.MarkDirty(1)
	c.Insert(10, blockOf(1)) // evicts key 0 (clean, LRU)
	c.Insert(11, blockOf(2)) // evicts key 1 (dirty)
	s := c.Stats()
	if s.Evictions != 2 || s.CleanEvictions != 1 || s.DirtyEvictions != 1 {
		t.Fatalf("evictions=%d clean=%d dirty=%d", s.Evictions, s.CleanEvictions, s.DirtyEvictions)
	}
}

func TestMarkDirtyFirstTransition(t *testing.T) {
	c := New(8, 2)
	c.Insert(5, blockOf(0))
	if !c.MarkDirty(5) {
		t.Fatal("first MarkDirty not reported as first")
	}
	if c.MarkDirty(5) {
		t.Fatal("second MarkDirty reported as first")
	}
	if c.Stats().FirstDirties != 1 {
		t.Fatalf("FirstDirties = %d, want 1", c.Stats().FirstDirties)
	}
}

func TestPinProtectsFromEviction(t *testing.T) {
	c := New(2, 2) // single set, two ways
	c.Insert(1, blockOf(1))
	c.Insert(2, blockOf(2))
	c.Pin(1)
	_, v := c.Insert(3, blockOf(3))
	if v == nil || v.Key != 2 {
		t.Fatalf("victim = %v, want key 2 (key 1 pinned)", v)
	}
	c.Unpin(1)
	_, v = c.Insert(4, blockOf(4))
	if v == nil {
		t.Fatal("expected an eviction")
	}
}

func TestAllPinnedPanics(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, blockOf(1))
	c.Insert(2, blockOf(2))
	c.Pin(1)
	c.Pin(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when every way is pinned")
		}
	}()
	c.Insert(3, blockOf(3))
}

func TestUnbalancedUnpinPanics(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, blockOf(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbalanced Unpin")
		}
	}()
	c.Unpin(1)
}

func TestDoubleInsertPanics(t *testing.T) {
	c := New(8, 2)
	c.Insert(7, blockOf(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double insert")
		}
	}()
	c.Insert(7, blockOf(1))
}

func TestFlushAllWritesOnlyDirty(t *testing.T) {
	c := New(8, 2)
	c.Insert(1, blockOf(1))
	c.Insert(2, blockOf(2))
	c.MarkDirty(2)
	flushed := map[uint64]bool{}
	c.FlushAll(func(k uint64, _ [BlockBytes]byte) { flushed[k] = true })
	if flushed[1] || !flushed[2] {
		t.Fatalf("flushed = %v, want only key 2", flushed)
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty lines remain after flush")
	}
	// Data must still be resident after flush.
	if !c.Contains(2) {
		t.Fatal("flush evicted a line")
	}
}

func TestDropAllLosesEverything(t *testing.T) {
	c := New(8, 2)
	c.Insert(1, blockOf(1))
	c.MarkDirty(1)
	c.DropAll()
	if c.Contains(1) {
		t.Fatal("line survived DropAll")
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty count nonzero after DropAll")
	}
	// Slots must be reusable with correct indices.
	l, _ := c.Insert(2, blockOf(2))
	if l.Slot() < 0 || l.Slot() >= 8 {
		t.Fatalf("bad slot after DropAll: %d", l.Slot())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8, 2)
	c.Insert(1, blockOf(1))
	if !c.Invalidate(1) {
		t.Fatal("Invalidate missed a resident key")
	}
	if c.Invalidate(1) {
		t.Fatal("Invalidate found an absent key")
	}
}

func TestIterateVisitsAllValid(t *testing.T) {
	c := New(16, 4)
	keys := []uint64{3, 17, 99, 1024}
	for _, k := range keys {
		c.Insert(k, blockOf(byte(k)))
	}
	seen := map[uint64]bool{}
	c.Iterate(func(l *Line) { seen[l.Key] = true })
	for _, k := range keys {
		if !seen[k] {
			t.Fatalf("Iterate skipped key %d", k)
		}
	}
	if len(seen) != len(keys) {
		t.Fatalf("Iterate visited %d lines, want %d", len(seen), len(keys))
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New(8, 2)
	c.Insert(1, blockOf(1))
	c.Lookup(1)
	c.Lookup(2)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits, s.Misses)
	}
}

// Property: after any sequence of inserts, every resident key is found
// by Lookup and residency never exceeds capacity.
func TestQuickResidency(t *testing.T) {
	f := func(keys []uint64) bool {
		c := New(32, 4)
		resident := map[uint64]bool{}
		for _, k := range keys {
			if _, ok := c.Peek(k); ok {
				continue
			}
			_, v := c.Insert(k, blockOf(byte(k)))
			resident[k] = true
			if v != nil {
				delete(resident, v.Key)
			}
		}
		count := 0
		for k := range resident {
			if !c.Contains(k) {
				return false
			}
			count++
		}
		return count <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a victim reported by VictimFor is exactly the line Insert
// would then evict.
func TestVictimForConsistency(t *testing.T) {
	c := New(4, 4)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, blockOf(byte(k)))
	}
	want := c.VictimFor(50)
	wantKey := want.Key
	_, v := c.Insert(50, blockOf(5))
	if v == nil || v.Key != wantKey {
		t.Fatalf("Insert evicted %v, VictimFor predicted %d", v, wantKey)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(4096, 8)
	for k := uint64(0); k < 1024; k++ {
		c.Insert(k, blockOf(byte(k)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i) & 1023)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New(4096, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		if !c.Contains(k) {
			c.Insert(k, blockOf(byte(i)))
		}
	}
}
