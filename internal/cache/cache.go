// Package cache implements the on-chip security-metadata caches of a
// secure memory controller: set-associative, write-back, true-LRU.
//
// Two properties matter specifically for Anubis:
//
//   - Every cached block occupies a stable slot (set × way) for its whole
//     residency. The paper's shadow tables (SCT/SMT/ST) mirror the cache's
//     data array one-to-one, writing the shadow entry at the offset of the
//     slot the block occupies (Figure 6), so the slot index is part of the
//     public API.
//   - MarkDirty reports whether the line was clean before, which is the
//     trigger event for AGIT-Plus ("track only the first modification").
//
// Lines can be pinned to exclude them from victim selection; controllers
// pin a parent node while recursively fetching further ancestors so that
// a fill cannot evict a block that is being worked on.
package cache

import "fmt"

// BlockBytes is the cached block size.
const BlockBytes = 64

// Line is one cache line. Callers receive pointers to lines on lookup
// and may mutate Data directly (the cache is the backing store).
type Line struct {
	Key   uint64
	Data  [BlockBytes]byte
	Valid bool
	Dirty bool

	lru  uint64
	pins int
	slot int
}

// Slot returns the line's stable slot index in the data array.
func (l *Line) Slot() int { return l.slot }

// Victim describes an evicted line.
type Victim struct {
	Key   uint64
	Data  [BlockBytes]byte
	Dirty bool
	Slot  int
}

// Stats accumulates cache events. Clean/dirty eviction counts feed the
// paper's Figure 7.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Insertions     uint64 `json:"insertions"`
	Evictions      uint64 `json:"evictions"`
	CleanEvictions uint64 `json:"clean_evictions"`
	DirtyEvictions uint64 `json:"dirty_evictions"`
	FirstDirties   uint64 `json:"first_dirties"` // MarkDirty transitions clean->dirty
}

// Cache is a set-associative write-back cache keyed by 64-bit block
// addresses. It is not safe for concurrent use.
type Cache struct {
	sets  int
	ways  int
	lines []Line // sets*ways entries; slot = set*ways + way
	tick  uint64
	stats Stats

	// victim is the scratch cell Insert returns a pointer to on
	// eviction. Reusing one cell keeps the eviction path allocation-free
	// (evictions happen on every metadata miss once a cache warms up);
	// the returned *Victim is only valid until the next Insert, which
	// matches every caller: controllers either write the victim back
	// immediately or copy it by value into their writeback queue.
	victim Victim
}

// New creates a cache with the given total number of blocks and
// associativity. numBlocks must be a positive multiple of ways and the
// number of sets must be a power of two (hardware-indexable).
func New(numBlocks, ways int) *Cache {
	if numBlocks <= 0 || ways <= 0 || numBlocks%ways != 0 {
		panic(fmt.Sprintf("cache: invalid geometry %d blocks / %d ways", numBlocks, ways))
	}
	sets := numBlocks / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets is not a power of two", sets))
	}
	// Lines carry their slot index lazily: a line's slot is assigned the
	// first time the line is filled (Insert / InsertAtSlot). Eagerly
	// writing slot = i here would touch the whole data array — for a
	// 4 MB cache that is megabytes of stores per constructed controller,
	// and figure sweeps construct one controller per (scheme, app) cell.
	// With lazy assignment the constructor is a single zeroing
	// allocation, and invalid lines (the only ones with an unset slot)
	// are never surfaced by Lookup, Iterate, FlushAll, or eviction.
	return &Cache{sets: sets, ways: ways, lines: make([]Line, numBlocks)}
}

// NumSlots returns the total number of lines (the shadow table size).
func (c *Cache) NumSlots() int { return len(c.lines) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// setOf maps a key to its set index. Keys are block addresses (already
// block-granular), so the low bits index the set directly; a multiplier
// spreads composite region-tagged keys.
func (c *Cache) setOf(key uint64) int {
	return int((key * 0x9e3779b97f4a7c15 >> 17) & uint64(c.sets-1))
}

func (c *Cache) set(key uint64) []Line {
	s := c.setOf(key)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup finds a cached block, updating LRU state and hit/miss counters.
func (c *Cache) Lookup(key uint64) (*Line, bool) {
	set := c.set(key)
	for i := range set {
		if set[i].Valid && set[i].Key == key {
			c.tick++
			set[i].lru = c.tick
			c.stats.Hits++
			return &set[i], true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Touch replays the hit half of Lookup on a line obtained from Peek:
// LRU freshening plus the hit count, without re-scanning the set. The
// fast lane guards with Peek (pure) and, on acceptance, Touches the
// line so hit statistics and recency order stay identical to a Lookup.
func (c *Cache) Touch(l *Line) {
	c.tick++
	l.lru = c.tick
	c.stats.Hits++
}

// AddHits credits n extra cache hits in one step. Used by the fast lane
// for walks it provably skipped on lines whose recency a later walk of
// the same path re-establishes (the deferred Merkle-path update touches
// each level once per page run instead of once per write).
func (c *Cache) AddHits(n uint64) { c.stats.Hits += n }

// Peek finds a cached block without disturbing LRU state or statistics.
func (c *Cache) Peek(key uint64) (*Line, bool) {
	set := c.set(key)
	for i := range set {
		if set[i].Valid && set[i].Key == key {
			return &set[i], true
		}
	}
	return nil, false
}

// Contains reports whether the key is cached, without side effects.
func (c *Cache) Contains(key uint64) bool {
	_, ok := c.Peek(key)
	return ok
}

// VictimFor returns the line that Insert(key, …) would evict: the LRU
// unpinned valid line of the key's set, or nil if a free (or invalid)
// way exists. It panics if key is already present.
func (c *Cache) VictimFor(key uint64) *Line {
	set := c.set(key)
	var victim *Line
	for i := range set {
		l := &set[i]
		if l.Valid && l.Key == key {
			panic("cache: VictimFor on resident key")
		}
		if !l.Valid {
			return nil
		}
		if l.pins > 0 {
			continue
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	if victim == nil {
		panic("cache: all ways pinned; associativity too small for the working path")
	}
	return victim
}

// Insert places a new block in the cache, evicting the LRU unpinned line
// of the set if necessary. It returns the line now holding the block and
// the victim (nil if no valid line was displaced). The victim pointer
// aliases a per-cache scratch cell overwritten by the next Insert:
// consume or copy it before inserting again. The new line is inserted
// clean and unpinned. Insert panics if key is already resident; use
// Lookup first.
func (c *Cache) Insert(key uint64, data [BlockBytes]byte) (*Line, *Victim) {
	s := c.setOf(key)
	set := c.lines[s*c.ways : (s+1)*c.ways]
	var target *Line
	for i := range set {
		l := &set[i]
		if l.Valid && l.Key == key {
			panic("cache: Insert of resident key")
		}
		if !l.Valid {
			target = l
			target.slot = s*c.ways + i // lazy slot assignment (see New)
			break
		}
	}
	var victim *Victim
	if target == nil {
		vl := c.VictimFor(key) // cannot be nil: no invalid way found
		c.victim = Victim{Key: vl.Key, Data: vl.Data, Dirty: vl.Dirty, Slot: vl.slot}
		victim = &c.victim
		c.stats.Evictions++
		if vl.Dirty {
			c.stats.DirtyEvictions++
		} else {
			c.stats.CleanEvictions++
		}
		target = vl
	}
	c.tick++
	target.Key = key
	target.Data = data
	target.Valid = true
	target.Dirty = false
	target.pins = 0
	target.lru = c.tick
	c.stats.Insertions++
	return target, victim
}

// CanInsertAtSlot reports whether InsertAtSlot(slot, key, …) would be
// legal: slot in range and inside key's set, key not already resident,
// slot free. Recovery code validates untrusted (crash-corrupted)
// shadow-table placements with this before calling InsertAtSlot, whose
// panics are a programming-error contract that must not be reachable
// from a corrupt NVM image.
func (c *Cache) CanInsertAtSlot(slot int, key uint64) bool {
	if slot < 0 || slot >= len(c.lines) {
		return false
	}
	if c.setOf(key) != slot/c.ways {
		return false
	}
	if _, ok := c.Peek(key); ok {
		return false
	}
	return !c.lines[slot].Valid
}

// InsertAtSlot places a block into a specific (free) slot. Recovery
// uses it to reinstall blocks in exactly the slots the shadow table
// mirrors; a block inserted elsewhere would desynchronize future shadow
// writes from the table. It panics if the slot is occupied, the key is
// already resident, or the slot does not belong to the key's set.
func (c *Cache) InsertAtSlot(slot int, key uint64, data [BlockBytes]byte) *Line {
	if slot < 0 || slot >= len(c.lines) {
		panic("cache: InsertAtSlot out of range")
	}
	if c.setOf(key) != slot/c.ways {
		panic("cache: InsertAtSlot set mismatch")
	}
	if _, ok := c.Peek(key); ok {
		panic("cache: InsertAtSlot of resident key")
	}
	l := &c.lines[slot]
	if l.Valid {
		panic("cache: InsertAtSlot into occupied slot")
	}
	l.slot = slot // lazy slot assignment (see New)
	c.tick++
	l.Key = key
	l.Data = data
	l.Valid = true
	l.Dirty = false
	l.pins = 0
	l.lru = c.tick
	c.stats.Insertions++
	return l
}

// MarkDirty marks a resident block dirty and reports whether this is its
// first dirtying since insertion (the AGIT-Plus tracking trigger). It
// panics if the key is not resident.
func (c *Cache) MarkDirty(key uint64) (first bool) {
	l, ok := c.Peek(key)
	if !ok {
		panic("cache: MarkDirty on absent key")
	}
	return c.MarkDirtyLine(l)
}

// MarkDirtyLine is MarkDirty for a line already in hand: identical
// statistics without the set re-scan. The fast lane holds the line
// pointer across a run, so paying the Peek per retired write would be
// pure waste.
func (c *Cache) MarkDirtyLine(l *Line) (first bool) {
	first = !l.Dirty
	l.Dirty = true
	if first {
		c.stats.FirstDirties++
	}
	return first
}

// Pin increments a resident line's pin count, excluding it from victim
// selection. It panics if the key is not resident.
func (c *Cache) Pin(key uint64) {
	l, ok := c.Peek(key)
	if !ok {
		panic("cache: Pin on absent key")
	}
	l.pins++
}

// Unpin decrements a line's pin count. It panics on unbalanced unpins or
// absent keys.
func (c *Cache) Unpin(key uint64) {
	l, ok := c.Peek(key)
	if !ok {
		panic("cache: Unpin on absent key")
	}
	if l.pins == 0 {
		panic("cache: unbalanced Unpin")
	}
	l.pins--
}

// Invalidate removes a block without writeback, returning whether it was
// present. Used when a block's home region is rewritten out of band.
func (c *Cache) Invalidate(key uint64) bool {
	l, ok := c.Peek(key)
	if !ok {
		return false
	}
	l.Valid = false
	l.Dirty = false
	l.pins = 0
	return true
}

// FlushAll invokes fn for every dirty line (in slot order) and marks it
// clean. Used for orderly shutdown.
func (c *Cache) FlushAll(fn func(key uint64, data [BlockBytes]byte)) {
	for i := range c.lines {
		l := &c.lines[i]
		if l.Valid && l.Dirty {
			fn(l.Key, l.Data)
			l.Dirty = false
		}
	}
}

// DropAll discards every line without writeback: the power-failure
// semantics of a volatile cache.
func (c *Cache) DropAll() {
	for i := range c.lines {
		c.lines[i] = Line{slot: i}
	}
}

// Iterate calls fn for every valid line in slot order; fn may mutate the
// line's Data.
func (c *Cache) Iterate(fn func(l *Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// Clone returns an independent deep copy: same geometry, same resident
// lines in the same slots with identical LRU ordering, dirty bits, pin
// counts, and statistics. A cloned cache and its source evolve exactly
// alike under identical request streams, which is what makes forked
// warm controllers byte-equivalent to cold-started ones.
func (c *Cache) Clone() *Cache {
	n := *c
	n.lines = append([]Line(nil), c.lines...)
	return &n
}

// DirtyCount returns the number of dirty resident lines.
func (c *Cache) DirtyCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid && c.lines[i].Dirty {
			n++
		}
	}
	return n
}
